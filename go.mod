module fsdinference

go 1.21
