// Command fsdpart partitions a synthetic sparse DNN offline and compares
// the communication statistics of the available schemes — the paper's
// offline PaToH post-processing step (§III) and the Table III comparison.
//
// Usage:
//
//	fsdpart [-neurons N] [-layers L] [-workers P]
package main

import (
	"flag"
	"fmt"
	"os"

	"fsdinference"
	"fsdinference/internal/partition"
)

func main() {
	neurons := flag.Int("neurons", 1024, "neurons per layer")
	layers := flag.Int("layers", 24, "layer count")
	workers := flag.Int("workers", 42, "worker parallelism")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(*neurons, *layers, *seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsdpart: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("model: N=%d L=%d nnz=%d (%d KB raw), P=%d\n\n",
		*neurons, *layers, m.NNZ(), m.WeightBytes()/1024, *workers)
	fmt.Printf("%-8s  %12s  %8s  %10s  %8s  %8s\n",
		"scheme", "rowTransfers", "pairs", "rows/pair", "maxRows", "nnzImbal")
	for _, scheme := range []partition.Scheme{partition.Block, partition.Random, partition.HGPDNN} {
		plan, err := fsdinference.BuildPlan(m, *workers, scheme, fsdinference.PartitionOptions{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsdpart: %v: %v\n", scheme, err)
			os.Exit(1)
		}
		st := plan.Stats(m)
		fmt.Printf("%-8s  %12d  %8d  %10.1f  %8d  %7.1f%%\n",
			scheme, st.RowTransfers, st.Pairs, st.RowsPerPair, st.MaxRows, st.NNZImbalance*100)
	}
	fmt.Println("\nrowTransfers is the connectivity-1 objective: activation rows shipped per request")
}
