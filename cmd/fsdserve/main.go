// Command fsdserve replays a sporadic query trace (paper §VI-C) through a
// multi-model FSD-Inference Service on the simulated cloud and prints the
// measured serving report: latency percentiles, per-endpoint cost,
// coalesced-batch statistics and cold-start counts.
//
// Usage:
//
//	fsdserve [-queries N] [-sizes 256,512] [-batch B] [-layers L]
//	         [-workers P] [-channel serial|queue|object|memory]
//	         [-replicas R] [-coalesce-batch S] [-coalesce-delay D]
//	         [-autoscale] [-max-replicas M] [-run-concurrency C]
//	         [-admission fifo|priority|deadline]
//	         [-trace out.json] [-trace-sample N]
//	         [-monitor] [-slo SPEC]... [-monitor-interval D]
//	         [-monitor-csv out.csv]
//	         [-seed S] [-verify]
//
// With -trace, the replay records simulated-time spans (sampling one in
// -trace-sample requests), writes a Perfetto-loadable Chrome trace to the
// given path and prints a flame summary plus the metrics registry after
// the report.
//
// With -monitor (or any -slo), the replay scrapes the metrics registry
// every -monitor-interval of simulated time into per-endpoint series,
// evaluates multi-window burn-rate rules against the given SLOs (each
// -slo adds one; the default is availability@0.999 across endpoints) and
// prints the alert log plus a Prometheus-style snapshot after the report.
// Firing pages feed back into serving: endpoints re-plan or grow their
// pool instead of waiting for drift triggers. -monitor-csv dumps the full
// time-series. SLO syntax:
//
//	-slo 'latency:p99<=250ms@0.99,endpoint=n512,window=720h'
//	-slo 'availability@0.999'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fsdinference"
)

func main() {
	queries := flag.Int("queries", 200, "queries over the simulated day")
	sizesArg := flag.String("sizes", "256,512", "comma-separated model sizes (one endpoint each)")
	batch := flag.Int("batch", 32, "buffered samples per query")
	layers := flag.Int("layers", 12, "layer count per model")
	workers := flag.Int("workers", 1, "FaaS worker parallelism per endpoint")
	channel := flag.String("channel", "", "channel: serial, queue, object, memory or hybrid (default: serial, or queue when workers > 1)")
	replicas := flag.Int("replicas", 2, "warm deployment replicas per endpoint (fixed pool)")
	autoscale := flag.Bool("autoscale", false, "scale each endpoint's pool from queue depth and arrival rate instead of a fixed size")
	maxReplicas := flag.Int("max-replicas", 4, "autoscaler pool bound (with -autoscale)")
	runConc := flag.Int("run-concurrency", 1, "engine runs one replica may overlap")
	admission := flag.String("admission", "fifo", "admission policy: fifo, priority or deadline")
	coalesceBatch := flag.Int("coalesce-batch", 128, "max samples per coalesced engine run")
	coalesceDelay := flag.Duration("coalesce-delay", 100*time.Millisecond, "max wait before a coalescing batch closes")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto) and print flame/metrics summaries")
	traceSample := flag.Int("trace-sample", 100, "trace one in N requests (with -trace; 1 traces all)")
	monitorOn := flag.Bool("monitor", false, "scrape simulated-time SLO series and burn-rate alerts (implied by -slo)")
	monInterval := flag.Duration("monitor-interval", time.Minute, "simulated-time scrape interval (with -monitor)")
	monCSV := flag.String("monitor-csv", "", "write the monitor time-series as CSV (with -monitor)")
	var sloArgs stringList
	flag.Var(&sloArgs, "slo", "SLO spec, repeatable: latency:pNN<=DUR@OBJ or availability@OBJ, plus endpoint=,window=,name= options")
	seed := flag.Int64("seed", 7, "trace and input seed")
	verify := flag.Bool("verify", false, "check every output against reference inference")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fatal("bad size %q", s)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		fatal("need at least one model size")
	}

	opts := []fsdinference.ServiceOption{
		fsdinference.WithCoalescing(*coalesceBatch, *coalesceDelay),
		fsdinference.WithRunConcurrency(*runConc),
	}
	if *autoscale {
		opts = append(opts, fsdinference.WithScaling(fsdinference.Autoscaler(
			fsdinference.AutoscalerOptions{Min: 1, Max: *maxReplicas})))
	} else {
		opts = append(opts, fsdinference.WithReplicas(*replicas))
	}
	switch *admission {
	case "fifo":
	case "priority":
		opts = append(opts, fsdinference.WithAdmission(fsdinference.PriorityAdmission()))
	case "deadline":
		opts = append(opts, fsdinference.WithAdmission(fsdinference.DeadlineAdmission(true)))
	default:
		fatal("unknown admission policy %q", *admission)
	}
	if *tracePath != "" {
		opts = append(opts, fsdinference.WithTracing(*traceSample))
	}
	monitoring := *monitorOn || len(sloArgs) > 0
	if monitoring {
		var slos []fsdinference.SLO
		for _, arg := range sloArgs {
			slo, err := fsdinference.ParseSLO(arg)
			if err != nil {
				fatal("%v", err)
			}
			slos = append(slos, slo)
		}
		if len(slos) == 0 {
			slos = append(slos, fsdinference.SLO{
				Name: "availability", Kind: fsdinference.Availability,
				Window: 30 * 24 * time.Hour, Objective: 0.999,
			})
		}
		opts = append(opts, fsdinference.WithMonitor(fsdinference.MonitorSpec{
			Interval: *monInterval,
			SLOs:     slos,
		}))
	}
	var epOpts []fsdinference.EndpointOption
	if *workers > 1 {
		epOpts = append(epOpts, fsdinference.WithWorkers(*workers))
	}
	switch *channel {
	case "":
	case "serial":
		epOpts = append(epOpts, fsdinference.WithChannel(fsdinference.Serial))
	case "queue":
		epOpts = append(epOpts, fsdinference.WithChannel(fsdinference.Queue))
	case "object":
		epOpts = append(epOpts, fsdinference.WithChannel(fsdinference.Object))
	case "memory":
		epOpts = append(epOpts, fsdinference.WithChannel(fsdinference.Memory))
	case "hybrid":
		epOpts = append(epOpts, fsdinference.WithChannel(fsdinference.Hybrid))
	default:
		fatal("unknown channel %q", *channel)
	}
	for _, n := range sizes {
		fmt.Printf("generating %d-neuron, %d-layer sparse DNN...\n", n, *layers)
		m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(n, *layers, 1))
		if err != nil {
			fatal("%v", err)
		}
		opts = append(opts, fsdinference.WithEndpoint(fmt.Sprintf("n%d", n), m, epOpts...))
	}

	svc, err := fsdinference.NewService(fsdinference.NewEnv(), opts...)
	if err != nil {
		fatal("%v", err)
	}
	trace := fsdinference.WorkloadDay(*queries**batch, sizes, *batch, *seed)
	fmt.Printf("replaying %d queries over one simulated day on endpoints %v...\n",
		len(trace), svc.Endpoints())
	rep, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: *seed, Verify: *verify})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println()
	fmt.Print(rep)
	if *verify {
		fmt.Println("all outputs verified against reference inference")
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("%v", err)
		}
		if err := svc.Tracer().WriteChrome(f); err != nil {
			fatal("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("writing trace: %v", err)
		}
		fmt.Printf("\nwrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n", *tracePath)
		fmt.Printf("\nflame summary (1 in %d requests sampled):\n", *traceSample)
		svc.Tracer().WriteFlame(os.Stdout)
		fmt.Println("\nmetrics:")
		svc.Metrics().WriteText(os.Stdout)
	}
	if monitoring {
		mon := svc.Monitor()
		fmt.Printf("\nburn-rate alerts (scrape every %v of simulated time):\n", *monInterval)
		if err := mon.WriteAlerts(os.Stdout); err != nil {
			fatal("%v", err)
		}
		fmt.Println("\nmonitor snapshot (prometheus text):")
		if err := mon.WriteProm(os.Stdout); err != nil {
			fatal("%v", err)
		}
		if *monCSV != "" {
			f, err := os.Create(*monCSV)
			if err != nil {
				fatal("%v", err)
			}
			if err := mon.WriteCSV(f); err != nil {
				fatal("writing monitor csv: %v", err)
			}
			if err := f.Close(); err != nil {
				fatal("writing monitor csv: %v", err)
			}
			fmt.Printf("\nwrote %s (one row per endpoint scrape window)\n", *monCSV)
		}
	}
}

// stringList collects a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ";") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsdserve: "+format+"\n", args...)
	os.Exit(1)
}
