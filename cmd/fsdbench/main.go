// Command fsdbench regenerates the paper's tables and figures (§VI) on the
// simulated cloud.
//
// Usage:
//
//	fsdbench [-exp id|all] [-scale quick|default] [-list]
//
// Experiment ids follow the paper: fig4, fig5, fig6, table2, table3,
// costval, plus the extensions channels (three-way channel comparison)
// and planner (workload-aware planning vs static one-shot selection),
// and the ablations polling, launch, compression and quota.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fsdinference/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or \"all\"")
	scale := flag.String("scale", "quick", "evaluation grid: quick or default")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", r.ID, r.Desc)
		}
		return
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "default":
		s = experiments.DefaultScale()
	default:
		fmt.Fprintf(os.Stderr, "fsdbench: unknown scale %q (want quick or default)\n", *scale)
		os.Exit(2)
	}
	lab := experiments.NewLab(s)

	run := func(r experiments.Runner) {
		//simlint:allow walltime — host-side timing of how long the experiment itself took to regenerate; never feeds a simulated outcome
		t0 := time.Now()
		tab, err := r.Run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsdbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab)
		//simlint:allow walltime — host-side timing of the regeneration, printed for the operator; not simulated state
		fmt.Printf("(%s regenerated in %v)\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, r := range experiments.Registry() {
			run(r)
		}
		return
	}
	r, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "fsdbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(r)
}
