// Command fsdcost explores the FSD-Inference cost model (§IV): it evaluates
// the channel recommendation for a workload, prints the API-cost
// comparison behind the paper's design guidance, and previews which
// channels the planner's analytic pre-filter would prune before paying
// for simulated trials.
//
// Usage:
//
//	fsdcost [-neurons N] [-layers L] [-workers P] [-batch B] [-queries Q]
package main

import (
	"flag"
	"fmt"

	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/cost"
	"fsdinference/internal/plan"
)

func main() {
	neurons := flag.Int("neurons", 16384, "neurons per layer (paper scale)")
	layers := flag.Int("layers", 120, "layer count")
	workers := flag.Int("workers", 42, "worker parallelism")
	batch := flag.Int("batch", 10000, "samples per request")
	queries := flag.Int64("queries", 0, "expected queries per day (0 = unknown/sporadic)")
	flag.Parse()

	nnz := int64(*neurons) * 32 * int64(*layers)
	modelBytes := nnz*8 + int64(*neurons+1)*4*int64(*layers)
	// Rough per-pair volume: cut fraction ~10% of a worker's rows, 4 B
	// per value, batch columns.
	rowsPerWorker := *neurons / *workers
	bytesPerPair := int64(float64(rowsPerWorker) * 0.1 * float64(*batch) * 4 * 0.6)

	w := cost.Workload{
		ModelBytes:           modelBytes,
		MemOverhead:          5.5,
		InstanceCapMB:        10240,
		Workers:              *workers,
		BytesPerPairPerLayer: bytesPerPair,
		PairsPerLayer:        int64(*workers) * 6,
		Layers:               *layers,
		QueriesPerDay:        *queries,
	}
	adv := cost.Recommend(w)
	fmt.Printf("workload: N=%d L=%d P=%d batch=%d (model %d MB raw)\n",
		*neurons, *layers, *workers, *batch, modelBytes>>20)
	fmt.Printf("recommendation: %s\n", adv.Channel)
	for _, r := range adv.Reasons {
		fmt.Printf("  - %s\n", r)
	}

	cat := pricing.Default()
	fmt.Printf("\nAPI request cost per layer (pairs=%d):\n", w.PairsPerLayer)
	fmt.Printf("%12s  %12s  %12s  %8s\n", "bytes/pair", "queue $", "object $", "ratio")
	for _, bytes := range []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20, 16 << 20, 256 << 20} {
		q, o := cost.APICost(cat, w.PairsPerLayer, bytes)
		fmt.Printf("%12d  %12.6f  %12.6f  %8.3f\n", bytes, q, o, q/o)
	}
	fmt.Println("\nqueue API requests are ~1 OOM cheaper until volumes saturate publish capacity (§IV-C)")

	be := cost.MemoryBreakEvenQueriesPerDay(cat, w)
	fmt.Printf("\nprovisioned memory store: $%.2f/day flat (no per-request charge), break-even ~%d queries/day\n",
		cost.MemoryDailyCost(cat, w), be)
	fmt.Println("below the break-even the node bills while idle — the sporadic-workload killer (§II-D)")

	fmt.Println("\nplanner pre-filter preview (cost objective): channels pruned before simulated trials")
	for _, v := range plan.PrefilterChannels(w) {
		verdict := "trial"
		if v.Pruned {
			verdict = "prune: " + v.Reason
		}
		fmt.Printf("  %-16v %s\n", v.Channel, verdict)
	}
}
