// Command fsdinfer runs a single FSD-Inference request on the simulated
// cloud and reports latency, cost and per-worker activity.
//
// Usage:
//
//	fsdinfer [-neurons N] [-layers L] [-workers P] [-batch B]
//	         [-channel serial|queue|object|memory|hybrid] [-scheme block|random|hgp]
//	         [-verify]
package main

import (
	"flag"
	"fmt"
	"os"

	"fsdinference"
)

func main() {
	neurons := flag.Int("neurons", 1024, "neurons per layer")
	layers := flag.Int("layers", 24, "layer count")
	workers := flag.Int("workers", 8, "FaaS worker parallelism")
	batch := flag.Int("batch", 64, "samples per request")
	channel := flag.String("channel", "queue", "communication channel: serial, queue, object, memory or hybrid")
	scheme := flag.String("scheme", "hgp", "partitioning: block, random or hgp")
	seed := flag.Int64("seed", 1, "generation seed")
	verify := flag.Bool("verify", true, "check the output against reference inference")
	flag.Parse()

	var kind fsdinference.ChannelKind
	switch *channel {
	case "serial":
		kind = fsdinference.Serial
	case "queue":
		kind = fsdinference.Queue
	case "object":
		kind = fsdinference.Object
	case "memory":
		kind = fsdinference.Memory
	case "hybrid":
		kind = fsdinference.Hybrid
	default:
		fatal("unknown channel %q", *channel)
	}
	var sch fsdinference.PartitionScheme
	switch *scheme {
	case "block":
		sch = fsdinference.Block
	case "random":
		sch = fsdinference.Random
	case "hgp":
		sch = fsdinference.HGPDNN
	default:
		fatal("unknown scheme %q", *scheme)
	}

	fmt.Printf("generating %d-neuron, %d-layer sparse DNN...\n", *neurons, *layers)
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(*neurons, *layers, *seed))
	if err != nil {
		fatal("%v", err)
	}
	cfg := fsdinference.Config{Model: m, Channel: kind}
	if kind != fsdinference.Serial {
		fmt.Printf("partitioning across %d workers (%s)...\n", *workers, *scheme)
		plan, err := fsdinference.BuildPlan(m, *workers, sch, fsdinference.PartitionOptions{Seed: *seed})
		if err != nil {
			fatal("%v", err)
		}
		cfg.Plan = plan
	}
	d, err := fsdinference.Deploy(fsdinference.NewEnv(), cfg)
	if err != nil {
		fatal("%v", err)
	}
	input := fsdinference.GenerateInputs(*neurons, *batch, 0.2, *seed+1)
	res, err := d.Infer(input)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("\n%s, P=%d, batch=%d\n", kind, cfg.Workers(), *batch)
	fmt.Printf("  query latency:   %v (virtual)\n", res.Latency)
	fmt.Printf("  per-sample:      %v\n", res.PerSample())
	fmt.Printf("  launch complete: %v\n", res.LaunchComplete)
	fmt.Printf("  cost:            %s\n", res.Cost)
	fmt.Printf("  bytes shipped:   %d across %d workers\n", res.TotalBytesSent(), len(res.Workers))
	if *verify {
		want := fsdinference.Reference(m, input)
		if fsdinference.OutputsClose(res.Output, want, 1e-2) {
			fmt.Println("  output verified against reference inference")
		} else {
			fatal("output DIVERGES from reference inference")
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsdinfer: "+format+"\n", args...)
	os.Exit(1)
}
