// Package lintutil holds the small set of helpers the simlint
// analyzers share: resolving calls to package-level functions and
// classifying packages into the simulation domain the discipline
// applies to.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// PkgFunc reports whether call invokes a package-level function, and if
// so returns the imported package's path and the function name. It
// resolves through the type checker, so import aliases and shadowed
// identifiers are handled correctly.
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsKernel reports whether path is the simulation kernel package — the
// one place allowed to read goroutine primitives and own the clock.
func IsKernel(path string) bool {
	return path == "internal/sim" || strings.HasSuffix(path, "/internal/sim")
}

// IsSimDomain reports whether code at path runs inside the simulation:
// everything except the kernel itself and host-side trees (cmd, tools,
// examples), whose code runs on the real machine and may use real
// concurrency and real clocks subject to walltime directives.
func IsSimDomain(path string) bool {
	if IsKernel(path) {
		return false
	}
	for _, seg := range strings.Split(path, "/") {
		switch seg {
		case "cmd", "tools", "examples":
			return false
		}
	}
	return true
}

// Walk visits every node under n in source order, passing each visit
// the stack of ancestor nodes (outermost first, excluding the node
// itself).
func Walk(n ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	walk(n, nil, visit)
}

func walk(n ast.Node, parents []ast.Node, visit func(ast.Node, []ast.Node)) {
	if n == nil {
		return
	}
	visit(n, parents)
	parents = append(parents, n)
	for _, c := range children(n) {
		walk(c, parents, visit)
	}
}

// children returns n's direct AST children, using ast.Inspect's first
// recursion level.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// HasMethod reports whether typ's method set (value or pointer) holds a
// method with the given name.
func HasMethod(typ types.Type, name string) bool {
	ms := types.NewMethodSet(typ)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	if _, isPtr := typ.(*types.Pointer); !isPtr {
		ms = types.NewMethodSet(types.NewPointer(typ))
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}
