// Package loader type-checks Go packages for simlint without any
// dependency beyond the standard library. Package enumeration shells
// out to `go list -json` (which works offline); type checking uses
// go/types with the stdlib source importer, so dependencies — standard
// library and module-local alike — are checked from source rather than
// from export data that the container may not have.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string // import path
	Dir       string
	Files     []*ast.File
	Fset      *token.FileSet
	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader owns the FileSet and importer shared by every package it
// loads, so each dependency is source-checked at most once per run.
type Loader struct {
	Fset *token.FileSet
	imp  types.ImporterFrom
}

// New returns a Loader backed by the stdlib source importer.
func New() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// List enumerates the non-test packages matching patterns under root,
// in deterministic (import path) order.
func (l *Loader) List(root string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// Load lists and type-checks every package matching patterns under
// root. Test files are not loaded: simlint guards the simulation's
// production surfaces, and the determinism suites themselves exercise
// wall-clock-free behavior directly.
func (l *Loader) Load(root string, patterns ...string) ([]*Package, error) {
	listed, err := l.List(root, patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package rooted at dir under the given
// import path. Used by the analysistest harness, whose fixture
// packages live outside the module under testdata/src.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return l.check(path, dir, files)
}

func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importFrom{l.imp, dir},
		Error:    func(error) {}, // collect all errors; first one returned below
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Files:     files,
		Fset:      l.Fset,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// importFrom adapts the source importer to plain Importer calls,
// resolving relative to the importing package's directory so
// module-local import paths work.
type importFrom struct {
	imp types.ImporterFrom
	dir string
}

func (i importFrom) Import(path string) (*types.Package, error) {
	return i.imp.ImportFrom(path, i.dir, 0)
}
