// Command simlint mechanizes the simulator's determinism discipline.
//
// Every headline guarantee in this repo — bit-for-bit lane-vs-single
// ServiceReport equality, byte-identical Chrome traces across
// Replay/ReplayLanes/ReplayStream — rests on conventions that used to
// live only in review comments: simulated code reads the simulated
// clock, random streams are scoped per entity, concurrency goes
// through the kernel, and nothing observable is produced in map
// iteration order. simlint turns each convention into an analyzer:
//
//	walltime    no time.Now/Sleep/... outside the simulation kernel
//	globalrand  no process-global math/rand, no shared/constant seeds
//	kernelgo    no raw go statements in simulation-domain packages
//	maporder    no order-sensitive work inside range-over-map bodies
//	spanend     every span started is ended (or handed off)
//
// Findings are suppressed only by a reasoned directive on the line or
// the line above:
//
//	//simlint:allow <analyzer> — <reason>
//
// A directive without a reason, naming an unknown analyzer, or
// suppressing nothing is itself an error, so the suppression inventory
// stays honest.
//
// Usage:
//
//	go run ./tools/simlint [-v] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 1 if any finding survives suppression.
package main

import (
	"flag"
	"fmt"
	"os"

	"fsdinference/tools/simlint/analysis"
	"fsdinference/tools/simlint/loader"
	"fsdinference/tools/simlint/passes/globalrand"
	"fsdinference/tools/simlint/passes/kernelgo"
	"fsdinference/tools/simlint/passes/maporder"
	"fsdinference/tools/simlint/passes/spanend"
	"fsdinference/tools/simlint/passes/walltime"
)

// Analyzers is the full simlint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	walltime.Analyzer,
	globalrand.Analyzer,
	kernelgo.Analyzer,
	maporder.Analyzer,
	spanend.Analyzer,
}

func main() {
	verbose := flag.Bool("v", false, "print each package as it is checked")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-v] [packages]\n\nAnalyzers:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nSuppress with: //simlint:allow <analyzer> — <reason>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	l := loader.New()
	pkgs, err := l.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "simlint: checking %s\n", pkg.Path)
		}
		diags, err := analysis.RunAnalyzers(Analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Path, pkg.TypesInfo, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
