package spanend_test

import (
	"testing"

	"fsdinference/tools/simlint/analysis/analysistest"
	"fsdinference/tools/simlint/passes/spanend"
)

func TestSpanend(t *testing.T) {
	analysistest.Run(t, "testdata", spanend.Analyzer,
		"spanend/a",
		"spanend/suppressed",
	)
}
