// Package spanend is the lostcancel of the tracing layer: every span
// opened with Tracer.Start (or SpanRef.Child, or any Start* helper
// returning an End-able handle) must be ended. An un-ended span never
// reaches the exporter's finished list, so the trace silently loses an
// interval — and because the loss depends on which code path ran, the
// byte-identity guarantee between replay modes is the first casualty.
//
// The check is intraprocedural and deliberately conservative about
// escapes: a handle that is returned, stored in a struct, passed to
// another function, or assigned through anything but a plain local
// variable is assumed to be ended by its new owner. What it catches is
// the everyday leak: a span started, used for attributes, and dropped
// on the floor of the function that created it.
package spanend

import (
	"go/ast"
	"go/types"
	"strings"

	"fsdinference/tools/simlint/analysis"
	"fsdinference/tools/simlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "require every span-producing Start*/Child call to be End()ed or handed off",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkScope(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkScope examines the span-producing calls whose results are bound
// directly in body (not in nested function literals, which get their
// own checkScope visit).
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	lintutil.Walk(body, func(n ast.Node, parents []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSpanProducer(pass.TypesInfo, call) {
			return
		}
		// Calls inside a nested FuncLit belong to that scope.
		for i := len(parents) - 1; i >= 0; i-- {
			if _, isLit := parents[i].(*ast.FuncLit); isLit {
				return
			}
		}
		stmtIdx := len(parents) - 1
		for stmtIdx >= 0 {
			if _, isStmt := parents[stmtIdx].(ast.Stmt); isStmt {
				break
			}
			stmtIdx--
		}
		if stmtIdx < 0 {
			return
		}
		// The call is "directly bound" only when its statement is an
		// assignment whose sole RHS is the call, or a bare expression
		// statement. Anything deeper (argument, return value, struct
		// literal field) is an escape: someone else owns the handle.
		switch stmt := parents[stmtIdx].(type) {
		case *ast.ExprStmt:
			if stmt.X == call {
				pass.Reportf(call.Pos(), "result of %s dropped: the span can never be ended and will be missing from the trace", callName(call))
			}
		case *ast.AssignStmt:
			if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 || stmt.Rhs[0] != call {
				return // multi-assign or nested: treat as handed off
			}
			id, isIdent := stmt.Lhs[0].(*ast.Ident)
			if !isIdent {
				return // field/index destination: handed off
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "result of %s assigned to _: the span can never be ended", callName(call))
				return
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return
			}
			if !endedOrEscapes(pass, body, obj) {
				pass.Reportf(call.Pos(), "span %s from %s is never ended in this function and never handed off", id.Name, callName(call))
			}
		}
	})
}

// neutralMethods are SpanRef methods that neither end the span nor
// transfer ownership of it.
var neutralMethods = map[string]bool{"SetAttr": true, "SetAsync": true, "ID": true, "Active": true}

// endedOrEscapes scans body (nested closures included — a deferred
// closure calling v.End() counts) for a use of obj that ends it or
// hands it off.
func endedOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	done := false
	lintutil.Walk(body, func(n ast.Node, parents []ast.Node) {
		if done {
			return
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || pass.TypesInfo.Uses[id] != obj {
			return
		}
		if len(parents) == 0 {
			return
		}
		sel, isSel := parents[len(parents)-1].(*ast.SelectorExpr)
		if isSel && sel.X == id {
			switch {
			case sel.Sel.Name == "End":
				done = true // v.End (called or deferred)
			case neutralMethods[sel.Sel.Name]:
				// annotation-only use; keep scanning
			case sel.Sel.Name == "Child":
				// derives a new span; does not end this one
			default:
				done = true // unknown method: assume it may consume the span
			}
			return
		}
		// Any non-selector use — argument, return, composite literal,
		// assignment to something else, channel send — is a hand-off.
		done = true
	})
	return done
}

// isSpanProducer reports whether call is a Start*/Child invocation
// whose result type carries an End method.
func isSpanProducer(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion, not a call
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if name != "Child" && !strings.HasPrefix(name, "Start") {
		return false
	}
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return false
	}
	return lintutil.HasMethod(tv.Type, "End")
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return types.ExprString(fun.X) + "." + fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "Start"
}
