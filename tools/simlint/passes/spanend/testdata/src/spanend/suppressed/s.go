// Package suppressed shows a reasoned spanend suppression.
// simlint-fixture: clean
package suppressed

type Ref struct{}

func (Ref) End() {}

type Tracer struct{}

func (Tracer) Start(name string) Ref { return Ref{} }

func processSpan(tr Tracer) {
	//simlint:allow spanend — fixture: process-lifetime span; the exporter ends it at shutdown
	tr.Start("root")
}
