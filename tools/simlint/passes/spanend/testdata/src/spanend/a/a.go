package a

func dropped(tr Tracer) {
	tr.Start("op") // want `result of tr\.Start dropped`
}

func blanked(tr Tracer) {
	_ = tr.Start("op") // want `result of tr\.Start assigned to _`
}

func neverEnded(tr Tracer) {
	s := tr.Start("op") // want `span s from tr\.Start is never ended in this function and never handed off`
	s.SetAttr("k", "v")
}

func childNeverEnded(tr Tracer) {
	s := tr.Start("op")
	c := s.Child("sub") // want `span c from s\.Child is never ended in this function and never handed off`
	c.SetAttr("k", "v")
	s.End()
}
