package a

func deferred(tr Tracer) {
	s := tr.Start("op")
	defer s.End()
	s.SetAttr("k", "v")
}

func deferredClosure(tr Tracer) {
	s := tr.Start("op")
	defer func() {
		s.End()
	}()
}

// returned hands the span to the caller, who owns ending it.
func returned(tr Tracer) Ref {
	return tr.Start("op")
}

func returnedVar(tr Tracer) Ref {
	s := tr.Start("op")
	s.SetAttr("k", "v")
	return s
}

// passed hands the span to a helper.
func passed(tr Tracer) {
	finish(tr.Start("op"))
}

func passedVar(tr Tracer) {
	s := tr.Start("op")
	finish(s)
}

// stored parks the handle in a struct; the new owner ends it.
type holder struct{ span Ref }

func stored(tr Tracer, h *holder) {
	h.span = tr.Start("op")
}

func finish(r Ref) { r.End() }
