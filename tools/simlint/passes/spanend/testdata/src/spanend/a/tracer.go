// Package a exercises spanend against a miniature tracing API shaped
// like the repo's internal/obs: Start/Child return an End-able handle.
package a

// Ref is a span handle.
type Ref struct{}

func (Ref) End()                  {}
func (Ref) SetAttr(k, v string)   {}
func (Ref) ID() int               { return 0 }
func (Ref) Child(name string) Ref { return Ref{} }

// Tracer opens spans.
type Tracer struct{}

func (Tracer) Start(name string) Ref { return Ref{} }
