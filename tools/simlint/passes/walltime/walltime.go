// Package walltime bans wall-clock reads outside the simulation
// kernel. Every simulated outcome in this repo is a function of the
// virtual clock (sim.Kernel.Now); a time.Now or time.Sleep inside
// simulated code silently couples results to the host machine, which
// is exactly the class of bug the byte-identity replay tests exist to
// rule out.
//
// Host-side code that legitimately times the simulation itself (cmd/,
// tools/, examples/ measuring how long a replay took to run) must
// carry a reasoned //simlint:allow walltime directive; the analyzer
// deliberately fires there too so every real-clock read in the module
// is either kernel-owned or visibly justified.
package walltime

import (
	"go/ast"

	"fsdinference/tools/simlint/analysis"
	"fsdinference/tools/simlint/internal/lintutil"
)

// banned are the package time functions that read or react to the
// host clock. Constructors of durations (time.Duration arithmetic,
// unit constants) are untouched: durations are values, clocks are
// effects.
var banned = map[string]string{
	"Now":       "read the simulated clock (Kernel.Now / Kernel.Clock()) instead",
	"Since":     "subtract simulated timestamps instead",
	"Until":     "subtract simulated timestamps instead",
	"Sleep":     "block on simulated time (Kernel.At / Proc.Sleep) instead",
	"After":     "schedule on the kernel (Kernel.After) instead",
	"Tick":      "schedule repeating work on the kernel instead",
	"NewTimer":  "use the kernel's timers (Kernel.After) instead",
	"NewTicker": "schedule repeating work on the kernel instead",
	"AfterFunc": "schedule the callback on the kernel (Kernel.At) instead",
}

var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads (time.Now, time.Sleep, ...) outside the simulation kernel",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if lintutil.IsKernel(pass.Path) {
		return nil // the kernel owns the mapping from host to virtual time
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := lintutil.PkgFunc(pass.TypesInfo, call)
			if !ok || pkg != "time" {
				return true
			}
			if hint, bad := banned[name]; bad {
				pass.Reportf(call.Pos(), "wall-clock call time.%s outside the simulation kernel: %s", name, hint)
			}
			return true
		})
	}
	return nil
}
