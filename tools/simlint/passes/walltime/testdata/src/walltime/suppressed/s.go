// Package suppressed exercises the directive machinery end to end:
// reasoned suppressions silence findings, bare or unknown-name
// directives are themselves findings.
package suppressed

import "time"

func reasonedAbove() {
	//simlint:allow walltime — fixture: host-side timing of the run itself
	_ = time.Now()
}

func reasonedSameLine() {
	_ = time.Now() //simlint:allow walltime — fixture: reasoned on the same line
}

func reasonedDoubleHyphen() {
	//simlint:allow walltime -- fixture: ascii separator works too
	_ = time.Now()
}

func bare() {
	//simlint:allow walltime // want `bare //simlint:allow walltime: suppressions must carry a reason`
	_ = time.Now() // want `wall-clock call time\.Now`
}

func unknownName() {
	//simlint:allow nosuchcheck — fixture: reason present but name wrong // want `unknown analyzer "nosuchcheck"`
	_ = time.Now() // want `wall-clock call time\.Now`
}
