package a

// fakeClock shadows nothing from package time; a Now method on a local
// value must not be mistaken for the wall clock.
type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

func notTime() int {
	var clock fakeClock
	return clock.Now()
}
