// Package a exercises the walltime analyzer: every host-clock read or
// host-timer construction is a hit; duration arithmetic and injected
// simulated clocks are misses.
package a

import "time"

func hits() {
	_ = time.Now()                             // want `wall-clock call time\.Now`
	_ = time.Since(time.Time{})                // want `wall-clock call time\.Since`
	_ = time.Until(time.Time{})                // want `wall-clock call time\.Until`
	time.Sleep(time.Millisecond)               // want `wall-clock call time\.Sleep`
	_ = time.After(time.Second)                // want `wall-clock call time\.After`
	_ = time.Tick(time.Second)                 // want `wall-clock call time\.Tick`
	_ = time.NewTimer(time.Second)             // want `wall-clock call time\.NewTimer`
	_ = time.NewTicker(time.Second)            // want `wall-clock call time\.NewTicker`
	_ = time.AfterFunc(time.Second, func() {}) // want `wall-clock call time\.AfterFunc`
}

// misses: durations are values, not clock reads, and a clock function
// handed in by the kernel is exactly the sanctioned alternative.
func misses(clock func() time.Duration) time.Duration {
	d := 5 * time.Millisecond
	d += time.Duration(3) * time.Second
	if d > time.Second {
		d = time.Second
	}
	return clock() + d
}
