package a

import wall "time"

// aliased proves the check resolves the import, not the identifier
// spelling.
func aliased() wall.Time {
	return wall.Now() // want `wall-clock call time\.Now`
}
