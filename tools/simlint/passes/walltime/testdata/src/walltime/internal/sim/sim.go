// Package sim stands in for the simulation kernel, the one package
// allowed to touch the host clock: it owns the mapping from real time
// to virtual time. simlint-fixture: clean
package sim

import "time"

// HostNow is kernel-internal and exempt.
func HostNow() time.Time { return time.Now() }
