package walltime_test

import (
	"testing"

	"fsdinference/tools/simlint/analysis/analysistest"
	"fsdinference/tools/simlint/passes/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", walltime.Analyzer,
		"walltime/a",
		"walltime/internal/sim",
		"walltime/suppressed",
	)
}
