// Package svc is a simulation-domain fixture for kernelgo: every raw
// go statement is a hit — simulated work must be scheduled through the
// kernel so virtual time, not the host scheduler, orders it.
package svc

type kernel struct{}

func (kernel) Go(fn func()) {}

func raw() {
	go work()   // want `raw go statement in simulation-domain code`
	go func() { // want `raw go statement in simulation-domain code`
		work()
	}()
}

func nested() {
	fn := func() {
		go work() // want `raw go statement in simulation-domain code`
	}
	fn()
}

// sanctioned runs simulated work as a kernel process.
func sanctioned(k kernel) {
	k.Go(work)
}

func work() {}
