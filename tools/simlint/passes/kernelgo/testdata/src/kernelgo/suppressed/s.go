// Package suppressed shows a reasoned kernelgo suppression, mirroring
// the lane fan-out in internal/serve/lanes.go. simlint-fixture: clean
package suppressed

func fanOut(lanes int) {
	for i := 0; i < lanes; i++ {
		//simlint:allow kernelgo — fixture: host-side fan-out; lanes share nothing until the deterministic merge
		go func() {}()
	}
}
