// Package main is a host-side fixture: cmd/ binaries run real
// goroutines (lane fan-out, signal handling) and are exempt.
// simlint-fixture: clean
package main

func main() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}
