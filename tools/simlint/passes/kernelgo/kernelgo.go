// Package kernelgo bans raw go statements inside simulation-domain
// packages. Simulated concurrency must be expressed as kernel
// processes (sim.Kernel.Go / GoAfter): the kernel runs exactly one
// process at a time and schedules wakeups in deterministic order, so
// a raw goroutine that touches simulated state races the kernel's
// single-threaded world and can reorder observable events between
// runs.
//
// The kernel itself (internal/sim) is exempt — implementing
// cooperative processes on top of goroutines is its whole job — as
// are host-side trees (cmd/, tools/, examples/), which run on the
// real machine. Sim-domain code that genuinely needs a host-side
// goroutine (e.g. fanning out independent lane kernels, each with its
// own sealed state) must say why with //simlint:allow kernelgo.
package kernelgo

import (
	"go/ast"

	"fsdinference/tools/simlint/analysis"
	"fsdinference/tools/simlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "kernelgo",
	Doc:  "forbid raw go statements in simulation-domain packages; concurrency goes through Kernel.Go/GoAfter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !lintutil.IsSimDomain(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw go statement in simulation-domain code: run simulated work as a kernel process (Kernel.Go/GoAfter)")
			}
			return true
		})
	}
	return nil
}
