package kernelgo_test

import (
	"testing"

	"fsdinference/tools/simlint/analysis/analysistest"
	"fsdinference/tools/simlint/passes/kernelgo"
)

func TestKernelgo(t *testing.T) {
	analysistest.Run(t, "testdata", kernelgo.Analyzer,
		"kernelgo/svc",
		"kernelgo/cmd/app",
		"kernelgo/suppressed",
	)
}
