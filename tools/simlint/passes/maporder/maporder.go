// Package maporder flags range-over-map loops whose bodies are
// sensitive to iteration order. Go randomizes map iteration per loop,
// so any such body produces different output on every run — the purest
// form of nondeterminism the replay engine's byte-identity guarantees
// cannot survive.
//
// A loop is reported when its body, in map iteration order, feeds an
// order-sensitive sink:
//
//   - appends to a slice that outlives the loop;
//   - writes bytes (strings.Builder, io.Writer, encoders, fmt
//     printing) to a destination that outlives the loop;
//   - emits trace events or spans;
//   - sends on a channel;
//   - folds with a non-commutative operator (float/complex/string
//     accumulation — integer counters, |=, &=, ^= are commutative and
//     allowed);
//   - overwrites a variable that outlives the loop with a value
//     derived from the iteration (last writer wins), except in the
//     max/min idiom where the write is guarded by a comparison against
//     the destination;
//   - exits early (break, or return of iteration-derived values):
//     which element wins depends on order.
//
// Two idioms are recognized as safe and never reported: bodies with no
// sink at all (map writes, delete, integer counters, max/min updates),
// and the canonical collect-then-sort pattern — a loop that only
// appends keys or values to a slice that is passed to sort.* or
// slices.Sort* later in the same block. Everything else needs either a
// restructure or a reasoned //simlint:allow maporder directive arguing
// commutativity.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fsdinference/tools/simlint/analysis"
	"fsdinference/tools/simlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map loops whose bodies depend on iteration order",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		lintutil.Walk(f, func(n ast.Node, parents []ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			checkLoop(pass, rng, parents)
		})
	}
	return nil
}

// A sink is one order-sensitive effect found in a loop body.
type sink struct {
	pos  token.Pos
	what string
	// appendDst is non-nil when the sink is an append to an outer
	// slice — the only sink kind the collect-then-sort exemption can
	// discharge.
	appendDst types.Object
}

func checkLoop(pass *analysis.Pass, rng *ast.RangeStmt, parents []ast.Node) {
	loopVars := loopVarObjects(pass, rng)
	tainted := taintedLocals(pass, rng.Body, loopVars)
	var sinks []sink

	lintutil.Walk(rng.Body, func(n ast.Node, ps []ast.Node) {
		// Nested function literals are their own world; calling one
		// still runs in iteration order, but classifying their bodies
		// here would double-count closures merely defined in the loop.
		for _, p := range ps {
			if _, isLit := p.(*ast.FuncLit); isLit {
				return
			}
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			sinks = append(sinks, classifyAssign(pass, rng, st, tainted, ps)...)
		case *ast.CallExpr:
			if s, bad := classifyCall(pass, rng, st); bad {
				sinks = append(sinks, s)
			}
		case *ast.SendStmt:
			sinks = append(sinks, sink{pos: st.Pos(), what: "sends on a channel in iteration order"})
		case *ast.BranchStmt:
			if st.Tok == token.BREAK && st.Label == nil && breaksThisLoop(rng, ps) {
				sinks = append(sinks, sink{pos: st.Pos(), what: "breaks out of map iteration: which element is reached last depends on order"})
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if usesAny(pass, res, tainted) {
					sinks = append(sinks, sink{pos: st.Pos(), what: "returns an iteration-derived value from inside map iteration: which element wins depends on order"})
					break
				}
			}
		}
	})

	if len(sinks) == 0 {
		return
	}
	// Collect-then-sort exemption: every sink is an append to the same
	// outer slice, and that slice is sorted later in the enclosing
	// block.
	if dst := soleAppendDst(sinks); dst != nil && sortedLater(pass, rng, parents, dst) {
		return
	}
	extra := ""
	if len(sinks) > 1 {
		extra = " (and more)"
	}
	pass.Reportf(rng.Pos(), "map iteration order reaches an order-sensitive sink: body %s%s; sort the keys first, or restructure the body to be commutative", sinks[0].what, extra)
}

// loopVarObjects returns the objects bound by the range statement's
// key and value variables.
func loopVarObjects(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true // for k = range m with outer k
			}
		}
	}
	return out
}

// taintedLocals extends the loop variables with body-local variables
// whose initializers derive from them, to a fixpoint, so `v2 := v;
// out = v2` is still recognized as iteration-derived.
func taintedLocals(pass *analysis.Pass, body *ast.BlockStmt, seed map[types.Object]bool) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for o := range seed {
		tainted[o] = true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || tainted[obj] || !declaredWithin(obj, body) {
					continue
				}
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				if usesAny(pass, rhs, tainted) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// classifyAssign reports the order-sensitive effects of one assignment
// statement inside the loop body.
func classifyAssign(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, tainted map[types.Object]bool, ps []ast.Node) []sink {
	var out []sink
	for i, lhs := range as.Lhs {
		// Writes into maps are insertion-order independent; writes to
		// loop-local variables die with the iteration.
		if isMapIndex(pass, lhs) || isLoopLocal(pass, lhs, rng) {
			continue
		}
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				if sameRoot(pass, lhs, call.Args[0]) {
					out = append(out, sink{
						pos:       as.Pos(),
						what:      "appends to a slice that outlives the loop",
						appendDst: rootObject(pass, lhs),
					})
					continue
				}
			}
			if usesAny(pass, rhs, tainted) && !maxMinGuarded(pass, lhs, ps) {
				out = append(out, sink{pos: as.Pos(), what: "overwrites an outer variable with an iteration-derived value (last writer wins)"})
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			t, ok := pass.TypesInfo.Types[lhs]
			if !ok {
				continue
			}
			b, isBasic := t.Type.Underlying().(*types.Basic)
			if !isBasic {
				continue
			}
			switch {
			case b.Info()&types.IsString != 0:
				out = append(out, sink{pos: as.Pos(), what: "concatenates strings in iteration order"})
			case b.Info()&(types.IsFloat|types.IsComplex) != 0:
				out = append(out, sink{pos: as.Pos(), what: "accumulates floating point in iteration order (float addition is not associative)"})
			}
			// Integer accumulation is commutative and associative.
		}
	}
	return out
}

// writeMethods are method names that serialize bytes or entries in
// call order.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true, "EncodeToken": true,
}

// emitMethods are tracing-layer methods that record an observable
// event stream.
var emitMethods = map[string]bool{"Event": true, "Start": true}

// classifyCall reports whether call is an order-sensitive sink.
func classifyCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) (sink, bool) {
	if pkg, name, ok := lintutil.PkgFunc(pass.TypesInfo, call); ok {
		if (pkg == "fmt" || pkg == "log") && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")) {
			return sink{pos: call.Pos(), what: "prints in iteration order"}, true
		}
		return sink{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return sink{}, false
	}
	if _, isMethod := pass.TypesInfo.Selections[sel]; !isMethod {
		return sink{}, false
	}
	if isLoopLocal(pass, sel.X, rng) {
		return sink{}, false
	}
	if writeMethods[sel.Sel.Name] {
		return sink{pos: call.Pos(), what: "writes bytes (" + sel.Sel.Name + ") in iteration order"}, true
	}
	if emitMethods[sel.Sel.Name] {
		return sink{pos: call.Pos(), what: "emits trace events (" + sel.Sel.Name + ") in iteration order"}, true
	}
	return sink{}, false
}

// breaksThisLoop reports whether an unlabeled break at the given
// ancestor stack targets rng rather than a nested loop/switch/select.
// The stack is rooted at rng.Body, so exhausting it without crossing
// another breakable statement means the break targets rng itself.
func breaksThisLoop(rng *ast.RangeStmt, ps []ast.Node) bool {
	for i := len(ps) - 1; i >= 0; i-- {
		switch ps[i].(type) {
		case *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false
		case *ast.RangeStmt:
			return ps[i] == rng
		}
	}
	return true
}

// maxMinGuarded reports whether the assignment destination sits inside
// an if whose condition reads a variable assigned within that if — the
// running-max/min idiom, which is order-independent up to ties.
func maxMinGuarded(pass *analysis.Pass, lhs ast.Expr, ps []ast.Node) bool {
	var ifStmt *ast.IfStmt
	for i := len(ps) - 1; i >= 0; i-- {
		if s, ok := ps[i].(*ast.IfStmt); ok {
			ifStmt = s
			break
		}
		if _, ok := ps[i].(*ast.RangeStmt); ok {
			break
		}
	}
	if ifStmt == nil || ifStmt.Cond == nil {
		return false
	}
	assigned := map[types.Object]bool{}
	ast.Inspect(ifStmt.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if o := rootObject(pass, l); o != nil {
				assigned[o] = true
			}
		}
		return true
	})
	return usesAny(pass, ifStmt.Cond, assigned)
}

// soleAppendDst returns the single append destination if every sink is
// an append to the same object, else nil.
func soleAppendDst(sinks []sink) types.Object {
	var dst types.Object
	for _, s := range sinks {
		if s.appendDst == nil {
			return nil
		}
		if dst == nil {
			dst = s.appendDst
		} else if dst != s.appendDst {
			return nil
		}
	}
	return dst
}

// sortedLater reports whether, after rng in its enclosing block, dst
// is passed to a sort.* / slices.Sort* call (directly or through a
// type conversion like sort.Sort(byName(dst))).
func sortedLater(pass *analysis.Pass, rng *ast.RangeStmt, parents []ast.Node, dst types.Object) bool {
	var block []ast.Stmt
	for i := len(parents) - 1; i >= 0; i-- {
		if b, ok := parents[i].(*ast.BlockStmt); ok {
			block = b.List
			break
		}
	}
	seen := false
	for _, st := range block {
		if st == ast.Stmt(rng) {
			seen = true
			continue
		}
		if ls, ok := st.(*ast.LabeledStmt); ok && ls.Stmt == ast.Stmt(rng) {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := lintutil.PkgFunc(pass.TypesInfo, call)
			if !ok {
				return true
			}
			isSortCall := pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort"))
			if !isSortCall {
				return true
			}
			for _, arg := range call.Args {
				if rootObject(pass, arg) == dst {
					found = true
				}
				// Conversions: sort.Sort(byCost(dst)).
				if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
					if rootObject(pass, inner.Args[0]) == dst {
						found = true
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// --- small predicates ---

// sameRoot reports whether two expressions resolve to the same
// non-nil root object (s and s in `s = append(s, ...)`).
func sameRoot(pass *analysis.Pass, a, b ast.Expr) bool {
	oa := rootObject(pass, a)
	return oa != nil && oa == rootObject(pass, b)
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isMapIndex(pass *analysis.Pass, e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isLoopLocal reports whether e's root identifier is declared inside
// the loop body (or is a loop variable): state that dies with the
// iteration cannot carry order dependence out of the loop.
func isLoopLocal(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	obj := rootObject(pass, e)
	if obj == nil {
		return false
	}
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// rootObject resolves e to the object of its leftmost identifier:
// x.f[i].g roots at x.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[v]; o != nil {
				return o
			}
			return pass.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// usesAny reports whether expression e references any object in objs.
func usesAny(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := pass.TypesInfo.Uses[id]; o != nil && objs[o] {
				found = true
			}
		}
		return !found
	})
	return found
}
