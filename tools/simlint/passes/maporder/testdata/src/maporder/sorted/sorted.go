// Package sorted holds the canonical collect-then-sort idiom: the
// loop only appends, and the destination is sorted before anything
// order-sensitive consumes it. simlint-fixture: clean
package sorted

import "sort"

func keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func byValue(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return m[ks[i]] < m[ks[j]] })
	return ks
}

type byLen []string

func (s byLen) Len() int           { return len(s) }
func (s byLen) Less(i, j int) bool { return len(s[i]) < len(s[j]) }
func (s byLen) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// viaConversion sorts through a named sort.Interface wrapper, the
// sort.Sort(byCost(dst)) shape used by the serving planner.
func viaConversion(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Sort(byLen(ks))
	return ks
}
