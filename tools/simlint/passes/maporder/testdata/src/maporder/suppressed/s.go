// Package suppressed shows a reasoned maporder suppression.
// simlint-fixture: clean
package suppressed

import "fmt"

func debugDump(m map[string]int) {
	//simlint:allow maporder — fixture: debug output whose line order is intentionally irrelevant
	for k, v := range m {
		fmt.Println(k, v)
	}
}
