// Package commutative holds loop bodies that are order-independent by
// construction: integer folds, bitmask folds, map writes, deletes,
// max/min updates, and iteration-local state. simlint-fixture: clean
package commutative

import "fmt"

func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func sumInt(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func orBits(m map[string]uint64) uint64 {
	var mask uint64
	for _, v := range m {
		mask |= v
	}
	return mask
}

func maxVal(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// perEntry formats into iteration-local state and writes it back into
// a map; nothing order-dependent escapes the iteration.
func perEntry(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		s := fmt.Sprintf("%s=%d", k, v)
		out[k] = s
	}
	return out
}
