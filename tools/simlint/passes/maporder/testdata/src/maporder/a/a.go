// Package a exercises every maporder sink kind: each loop below feeds
// map iteration order into an order-sensitive effect.
package a

import (
	"fmt"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order reaches an order-sensitive sink: body appends to a slice that outlives the loop`
		keys = append(keys, k)
	}
	return keys
}

func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `body writes bytes \(WriteString\) in iteration order`
		b.WriteString(k)
	}
	return b.String()
}

func printAndCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `body prints in iteration order \(and more\)`
		fmt.Println(k)
		keys = append(keys, k)
	}
	return keys
}

func sendChan(m map[string]int, ch chan<- string) {
	for k := range m { // want `body sends on a channel in iteration order`
		ch <- k
	}
}

func sumFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates floating point in iteration order`
		sum += v
	}
	return sum
}

func concat(m map[string]int) string {
	out := ""
	for k := range m { // want `concatenates strings in iteration order`
		out += k
	}
	return out
}

func lastWriter(m map[string]int) string {
	var last string
	for k := range m { // want `overwrites an outer variable with an iteration-derived value \(last writer wins\)`
		last = k
	}
	return last
}

func earlyBreak(m map[string]int) int {
	n := 0
	for k := range m { // want `breaks out of map iteration`
		if k == "stop" {
			break
		}
		n++
	}
	return n
}

func firstValue(m map[string]int) int {
	for _, v := range m { // want `returns an iteration-derived value from inside map iteration`
		return v
	}
	return 0
}
