package maporder_test

import (
	"testing"

	"fsdinference/tools/simlint/analysis/analysistest"
	"fsdinference/tools/simlint/passes/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer,
		"maporder/a",
		"maporder/sorted",
		"maporder/commutative",
		"maporder/suppressed",
	)
}
