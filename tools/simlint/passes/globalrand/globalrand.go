// Package globalrand polices randomness scoping. The determinism
// contract requires every random stream to be owned by exactly one
// simulated entity and seeded from that entity's identity, so that
// replaying a trace on one kernel, on sharded lanes, or as a stream
// consumes identical streams per entity. Three rules:
//
//  1. Package-level math/rand functions (rand.Intn, rand.Float64,
//     rand.Shuffle, ...) draw from the process-global source and are
//     banned everywhere — their output depends on every other caller
//     in the binary.
//
//  2. A package-level variable holding a *rand.Rand or rand.Source is
//     a service-wide stream shared by every entity that touches it.
//     This is the exact shape of the bug that broke lane composition
//     in PR 7, where a service-scoped source made per-lane replays
//     diverge from the single-kernel replay.
//
//  3. Inside simulation-domain packages, rand.NewSource with a
//     constant literal seed is flagged: two entities constructed from
//     the same literal share one stream by accident. Seeds must be
//     derived from per-entity identity (cfg.Seed, base seed + entity
//     index, ...). Host-side tools may use literal seeds freely.
package globalrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"fsdinference/tools/simlint/analysis"
	"fsdinference/tools/simlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "forbid the process-global math/rand source and non-per-entity seeding",
	Run:  run,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// constructors are the math/rand functions that build scoped sources
// rather than drawing from the global one.
var constructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewChaCha8": true, "NewPCG": true}

func run(pass *analysis.Pass) error {
	simDomain := lintutil.IsSimDomain(pass.Path)
	for _, f := range pass.Files {
		lintutil.Walk(f, func(n ast.Node, parents []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			pkg, name, ok := lintutil.PkgFunc(pass.TypesInfo, call)
			if !ok || !isRandPkg(pkg) {
				return
			}
			if !constructors[name] {
				// Rule 1: everything else at package level draws from
				// the global source.
				pass.Reportf(call.Pos(), "rand.%s draws from the process-global source; use a per-entity *rand.Rand (rand.New(rand.NewSource(seed)))", name)
				return
			}
			if inPackageVar(parents) {
				// Rule 2. Report only the outermost constructor so
				// rand.New(rand.NewSource(1)) yields one finding.
				if !hasConstructorAncestor(pass, parents) {
					pass.Reportf(call.Pos(), "package-level rand.%s: a service-wide random source is shared by every entity and breaks lane composition; scope the source per entity", name)
				}
				return
			}
			if simDomain && name == "NewSource" && len(call.Args) == 1 && isConstSeed(pass.TypesInfo, call.Args[0]) {
				// Rule 3: constant seeds inside the simulation.
				pass.Reportf(call.Pos(), "rand.NewSource with a constant seed: derive the seed from per-entity identity so distinct entities get distinct streams")
			}
		})
	}
	return nil
}

// inPackageVar reports whether the node whose ancestor stack is
// parents sits inside a package-level var declaration.
func inPackageVar(parents []ast.Node) bool {
	for i, p := range parents {
		if gd, ok := p.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			if i >= 1 {
				if _, isFile := parents[i-1].(*ast.File); isFile {
					return true
				}
			}
		}
	}
	return false
}

// hasConstructorAncestor reports whether any enclosing call is itself
// a math/rand constructor.
func hasConstructorAncestor(pass *analysis.Pass, parents []ast.Node) bool {
	for _, p := range parents {
		if c, ok := p.(*ast.CallExpr); ok {
			if pkg, name, ok := lintutil.PkgFunc(pass.TypesInfo, c); ok && isRandPkg(pkg) && constructors[name] {
				return true
			}
		}
	}
	return false
}

// isConstSeed reports whether e is a compile-time constant built from
// bare literals. A named constant (defaultSeed) or any variable in the
// expression means the seed was a deliberate, greppable choice —
// possibly still shared, but visibly so; bare literals (42, 1<<20+7,
// int64(3)) are the accident this rule hunts.
func isConstSeed(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	named := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		switch info.Uses[id].(type) {
		case *types.Const, *types.Var:
			named = true
		}
		return true
	})
	return !named
}
