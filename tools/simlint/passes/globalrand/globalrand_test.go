package globalrand_test

import (
	"testing"

	"fsdinference/tools/simlint/analysis/analysistest"
	"fsdinference/tools/simlint/passes/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, "testdata", globalrand.Analyzer,
		"globalrand/svc",
		"globalrand/tools/gen",
		"globalrand/suppressed",
	)
}
