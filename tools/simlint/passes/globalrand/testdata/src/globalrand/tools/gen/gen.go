// Package gen is a host-side fixture: literal seeds are fine outside
// the simulation domain, but the process-global source is still
// banned.
package gen

import "math/rand"

func literalSeedOK() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

func globalStillBanned() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global source`
}
