// Package suppressed shows reasoned directives silencing globalrand.
// simlint-fixture: clean
package suppressed

import "math/rand"

func sanctioned() int {
	//simlint:allow globalrand — fixture: warmup jitter outside the measured region
	return rand.Intn(10)
}
