// Package svc is a simulation-domain fixture for globalrand: global
// draws, package-level sources, and constant seeds are all hits;
// per-entity seeding is the sanctioned miss.
package svc

import "math/rand"

// shared is the PR 7 bug shape: one stream for every entity.
var shared = rand.New(rand.NewSource(1)) // want `package-level rand\.New: a service-wide random source`

var sharedSrc = rand.NewSource(7) // want `package-level rand\.NewSource: a service-wide random source`

const defaultSeed int64 = 99

func globals() {
	_ = rand.Intn(10)     // want `rand\.Intn draws from the process-global source`
	_ = rand.Float64()    // want `rand\.Float64 draws from the process-global source`
	rand.Shuffle(3, swap) // want `rand\.Shuffle draws from the process-global source`
}

func constSeeds() {
	_ = rand.NewSource(42)                  // want `rand\.NewSource with a constant seed`
	_ = rand.NewSource(int64(3))            // want `rand\.NewSource with a constant seed`
	_ = rand.New(rand.NewSource(1<<20 + 7)) // want `rand\.NewSource with a constant seed`
}

// perEntity is the sanctioned pattern: the stream is scoped to one
// entity and seeded from its identity.
func perEntity(seed int64, idx int) int {
	r := rand.New(rand.NewSource(seed + int64(idx)))
	named := rand.New(rand.NewSource(defaultSeed))
	return r.Intn(10) + named.Intn(10)
}

func swap(i, j int) {}
