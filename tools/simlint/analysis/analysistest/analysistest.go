// Package analysistest runs one simlint analyzer over fixture packages
// under testdata/src and checks its diagnostics against expectations
// embedded in the fixtures, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment of the form
//
//	// want "regexp" `another regexp`
//
// on the same line as the code that should be flagged. Each regexp
// must match the message of exactly one diagnostic reported on that
// line; diagnostics with no expectation and expectations with no
// diagnostic both fail the test. Directive suppression runs exactly as
// in the real driver, so fixtures can assert both that a reasoned
// //simlint:allow silences a finding (no want on the line) and that a
// bare or unknown-name directive is itself reported (a want matching
// the "directive" pseudo-analyzer's message).
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fsdinference/tools/simlint/analysis"
	"fsdinference/tools/simlint/loader"
)

// expectation is one want-regexp anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)
var strRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package dir under filepath.Join(testdata,
// "src") and applies a to it, comparing diagnostics to // want
// expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := loader.New()
	for _, pkgPath := range pkgs {
		dir := filepath.Join(testdata, "src", pkgPath)
		pkg, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			t.Errorf("%s: %v", pkgPath, err)
			continue
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, pkg.Fset, pkg.Files, pkg.Types, pkg.Path, pkg.TypesInfo, false)
		if err != nil {
			t.Errorf("%s: %v", pkgPath, err)
			continue
		}
		expects := collectExpectations(t, pkg)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !claim(expects, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", pos.Filename, pos.Line, d.Message, d.Analyzer)
			}
		}
		for _, e := range expects {
			if !e.met {
				t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
			}
		}
	}
}

// claim marks the first unmet expectation on (file, line) whose regexp
// matches message.
func claim(expects []*expectation, file string, line int, message string) bool {
	for _, e := range expects {
		if !e.met && e.file == file && e.line == line && e.re.MatchString(message) {
			e.met = true
			return true
		}
	}
	return false
}

// collectExpectations parses every // want comment in the package. The
// expectation anchors to the line the comment starts on.
func collectExpectations(t *testing.T, pkg *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range strRe.FindAllString(m[1], -1) {
					pattern := lit
					if strings.HasPrefix(lit, "`") {
						pattern = strings.Trim(lit, "`")
					} else {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							t.Errorf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
							continue
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
						continue
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}
	if len(out) == 0 {
		// A fixture with zero expectations usually means a typo in the
		// want syntax rather than a genuinely clean package; fixtures
		// that are intentionally clean state it.
		clean := false
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "simlint-fixture: clean") {
						clean = true
					}
				}
			}
		}
		if !clean {
			t.Errorf("%s: fixture has no // want expectations and no `simlint-fixture: clean` marker", pkg.Path)
		}
	}
	return out
}
