// Package analysis is a self-contained, dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer holds a name, a doc
// string and a Run function; a Pass hands the Run function one
// type-checked package; diagnostics are plain (position, message)
// pairs. The build environment vendors no third-party modules, so
// simlint carries this ~200-line reimplementation instead of the real
// framework. The API shape is kept deliberately close to upstream so
// the analyzers port mechanically if x/tools ever becomes available.
//
// On top of the upstream shape it adds the one piece simlint needs
// that upstream leaves to drivers: reasoned suppression directives.
// A finding is suppressed by a comment of the form
//
//	//simlint:allow <analyzer> — <reason>
//
// on the reported line or the line directly above it. The reason is
// mandatory: a bare //simlint:allow is itself reported as a "directive"
// diagnostic, as is an //simlint:allow naming an unknown analyzer or a
// directive that suppresses nothing (stale suppressions rot).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one simlint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by `simlint -help`.
	Doc string

	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// A Pass is the interface between one Analyzer and one package.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token positions to file/line for every file in the
	// package and its dependencies.
	Fset *token.FileSet

	// Files are the package's parsed source files, comments included.
	Files []*ast.File

	// Pkg is the type-checked package and Path its import path.
	Pkg  *types.Package
	Path string

	// TypesInfo records types and object resolutions for every
	// expression and identifier in Files.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The framework
// stamps the Analyzer name when collecting.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// directiveRe matches //simlint:allow comments. The reason separator
// accepts an em dash, a double hyphen or a single hyphen so directives
// survive editors with different typographic habits.
var directiveRe = regexp.MustCompile(`^//simlint:allow\s+([A-Za-z0-9_]*)\s*(?:(?:—|--|-)\s*(.*))?$`)

// A Directive is one parsed //simlint:allow comment.
type Directive struct {
	Analyzer string // analyzer the directive suppresses
	Reason   string // justification text; empty means the directive is invalid
	File     string // file the comment appears in
	Line     int    // line the comment appears on
	Pos      token.Pos
	used     bool
}

// ParseDirectives extracts every //simlint:allow directive from files.
func ParseDirectives(fset *token.FileSet, files []*ast.File) []*Directive {
	var ds []*Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				// Fixture files append analysistest expectations to the
				// directive comment; they are not part of the reason.
				if i := strings.Index(text, "// want"); i >= 0 {
					text = strings.TrimSpace(text[:i])
				}
				m := directiveRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				ds = append(ds, &Directive{
					Analyzer: m[1],
					Reason:   strings.TrimSpace(m[2]),
					File:     pos.Filename,
					Line:     pos.Line,
					Pos:      c.Pos(),
				})
			}
		}
	}
	return ds
}

// Suppress partitions diags into kept and suppressed findings using
// directives: a diagnostic is suppressed when a directive for its
// analyzer (with a non-empty reason) sits on the same line or the line
// immediately above. Directives consumed this way are marked used.
func Suppress(fset *token.FileSet, diags []Diagnostic, directives []*Directive) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, dir := range directives {
			if dir.Reason == "" || dir.Analyzer != d.Analyzer || dir.File != pos.Filename {
				continue
			}
			if dir.Line == pos.Line || dir.Line == pos.Line-1 {
				dir.used = true
				matched = true
				break
			}
		}
		if matched {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}

// DirectiveProblems reports malformed or stale directives as
// diagnostics from the pseudo-analyzer "directive": a missing reason, a
// name that is not a known analyzer, and — when checkUnused is set —
// a well-formed directive that suppressed nothing in this run.
func DirectiveProblems(directives []*Directive, known map[string]bool, checkUnused bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range directives {
		switch {
		case dir.Reason == "":
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      dir.Pos,
				Message:  fmt.Sprintf("bare //simlint:allow %s: suppressions must carry a reason (//simlint:allow %s — <why>)", dir.Analyzer, dir.Analyzer),
			})
		case !known[dir.Analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      dir.Pos,
				Message:  fmt.Sprintf("//simlint:allow names unknown analyzer %q", dir.Analyzer),
			})
		case checkUnused && !dir.used:
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      dir.Pos,
				Message:  fmt.Sprintf("stale //simlint:allow %s: no %s finding on this or the next line", dir.Analyzer, dir.Analyzer),
			})
		}
	}
	return out
}

// RunAnalyzers applies each analyzer to the pass inputs, then applies
// directive suppression and directive validation. checkUnused enables
// stale-directive reporting and should be set only when every analyzer
// a directive could name is actually running (the multichecker); the
// single-analyzer analysistest harness leaves it off. The returned
// diagnostics are sorted by position for deterministic output —
// simlint holds itself to the ordering discipline it enforces.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, path string, info *types.Info, checkUnused bool) ([]Diagnostic, error) {
	var all []Diagnostic
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			Path:      path,
			TypesInfo: info,
			report: func(d Diagnostic) {
				d.Analyzer = a.Name
				all = append(all, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", path, a.Name, err)
		}
	}
	directives := ParseDirectives(fset, files)
	kept, _ := Suppress(fset, all, directives)
	kept = append(kept, DirectiveProblems(directives, known, checkUnused)...)
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}
