// Command benchjson runs the serving-layer benchmark (the same workload as
// BenchmarkServiceReplay) through testing.Benchmark and writes a BENCH_N
// JSON file: wall-clock ns/op plus the replay's measured report stats, so
// every PR can append a point to the perf trajectory without parsing go
// test output. From BENCH_4 on, the point also carries the cluster-channel
// benchmark (the BenchmarkClusterChannel workload: one inference over a
// 2-shard, 1-replica memory-store cluster), from BENCH_5 on the
// collectives pair (BenchmarkAllreduce flat/tree at P=32) and the hybrid
// channel (BenchmarkHybridChannel), from BENCH_6 on the million-query
// streaming replay (BenchmarkMillionQueryReplay, in queries/sec), and from
// BENCH_7 on the traced serving replay (BenchmarkServiceReplayTraced, the
// same workload with 1%-sampled tracing, gated within-file at 15%
// overhead), and from BENCH_9 on the monitored serving replay
// (BenchmarkServiceReplayMonitored, the same workload under a 5m
// simulated-time SLO scrape, gated within-file at 10% overhead), all
// guarded by benchguard alongside the serving-replay gate.
//
// Usage:
//
//	go run ./tools/benchjson [-out BENCH_1.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"fsdinference"
	"fsdinference/internal/core"
	"fsdinference/internal/serve"
)

type benchReport struct {
	Benchmark  string `json:"benchmark"`
	NsPerOp    int64  `json:"ns_per_op"`
	Iterations int    `json:"iterations"`

	// Replay-report stats of the benchmarked workload (deterministic).
	Queries      int     `json:"queries"`
	Samples      int     `json:"samples"`
	Failed       int     `json:"failed"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	TotalCostUSD float64 `json:"total_cost_usd"`
	ColdStarts   int     `json:"cold_starts"`
	WarmStarts   int     `json:"warm_starts"`

	// Cluster-channel point (BENCH_4 onward; zero in earlier files, so
	// benchguard skips the comparison against pre-cluster baselines).
	ClusterBenchmark string `json:"cluster_benchmark,omitempty"`
	ClusterNsPerOp   int64  `json:"cluster_ns_per_op,omitempty"`

	// Collectives and hybrid-channel points (BENCH_5 onward): the
	// BenchmarkAllreduce flat/tree pair at P=32 and the
	// BenchmarkHybridChannel size-aware routing workload.
	AllreduceFlatNsPerOp int64 `json:"allreduce_flat_ns_per_op,omitempty"`
	AllreduceTreeNsPerOp int64 `json:"allreduce_tree_ns_per_op,omitempty"`
	HybridNsPerOp        int64 `json:"hybrid_ns_per_op,omitempty"`

	// Traced serving-replay point (BENCH_7 onward): the same workload as
	// NsPerOp with the observability layer on at 1% sampling
	// (BenchmarkServiceReplayTraced). benchguard gates the within-file
	// overhead (ReplayTracedNsPerOp vs NsPerOp) at 15%.
	ReplayTracedNsPerOp int64 `json:"replay_traced_ns_per_op,omitempty"`

	// Monitored serving-replay point (BENCH_9 onward): the same workload
	// as NsPerOp under a 5m simulated-time SLO scrape
	// (BenchmarkServiceReplayMonitored). benchguard gates the
	// within-file overhead (MonitorNsPerOp vs NsPerOp) at 10%.
	MonitorNsPerOp int64 `json:"monitor_ns_per_op,omitempty"`

	// Million-query streaming replay point (BENCH_6 onward): sustained
	// queries/sec of the BenchmarkMillionQueryReplay workload — a
	// one-million-query diurnal day streamed through ReplayStream.
	// Higher is better; benchguard inverts the regression sign and also
	// enforces the 100k queries/sec floor.
	MillionQueriesPerSec float64 `json:"million_queries_per_sec,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output path")
	flag.Parse()

	mSmall, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(128, 6, 1))
	if err != nil {
		log.Fatal(err)
	}
	mLarge, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		log.Fatal(err)
	}
	trace := fsdinference.WorkloadDay(40*8, []int{128, 256}, 8, 7)

	var rep *fsdinference.ServiceReport
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc, err := fsdinference.NewService(fsdinference.NewEnv(),
				fsdinference.WithEndpoint("small", mSmall),
				fsdinference.WithEndpoint("large", mLarge),
				fsdinference.WithCoalescing(64, 200*time.Millisecond),
				fsdinference.WithReplicas(2),
			)
			if err != nil {
				b.Fatal(err)
			}
			r, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			rep = r
		}
	})
	if rep == nil {
		log.Fatal("benchmark produced no report")
	}

	// The traced serving-replay point: identical workload with the
	// observability layer on at 1% sampling, matching
	// BenchmarkServiceReplayTraced.
	tracedRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc, err := fsdinference.NewService(fsdinference.NewEnv(),
				fsdinference.WithEndpoint("small", mSmall),
				fsdinference.WithEndpoint("large", mLarge),
				fsdinference.WithCoalescing(64, 200*time.Millisecond),
				fsdinference.WithReplicas(2),
				fsdinference.WithTracing(100),
			)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 11}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The monitored serving-replay point: identical workload under a 5m
	// simulated-time SLO scrape with the default burn-rate rules,
	// matching BenchmarkServiceReplayMonitored.
	monSpec := fsdinference.MonitorSpec{
		Interval: 5 * time.Minute,
		SLOs: []fsdinference.SLO{{
			Name: "availability", Kind: fsdinference.Availability,
			Window: 30 * 24 * time.Hour, Objective: 0.999,
		}},
	}
	monRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc, err := fsdinference.NewService(fsdinference.NewEnv(),
				fsdinference.WithEndpoint("small", mSmall),
				fsdinference.WithEndpoint("large", mLarge),
				fsdinference.WithCoalescing(64, 200*time.Millisecond),
				fsdinference.WithReplicas(2),
				fsdinference.WithMonitor(monSpec),
			)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 11}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The cluster-channel point: one inference over a 2-shard, 1-replica
	// memory-store cluster, matching BenchmarkClusterChannel.
	mCluster, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		log.Fatal(err)
	}
	clusterPlan, err := fsdinference.BuildPlan(mCluster, 4, fsdinference.Block, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	clusterInput := fsdinference.GenerateInputs(256, 16, 0.2, 2)
	clusterRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
				Model: mCluster, Plan: clusterPlan, Channel: fsdinference.Memory,
				KVNodes: 2, KVReplicas: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.Infer(clusterInput); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The collectives point: one closing allreduce at P=32 on the memory
	// channel, flat versus binomial tree, matching BenchmarkAllreduce.
	arPlan, err := fsdinference.BuildPlan(mCluster, 32, fsdinference.Block, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	arInput := fsdinference.GenerateInputs(256, 16, 0.2, 2)
	allreduce := func(alg fsdinference.CollectiveAlgorithm) int64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
					Model: mCluster, Plan: arPlan, Channel: fsdinference.Memory,
					Collective: alg, AllreduceOutput: true, Compress: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := d.Infer(arInput); err != nil {
					b.Fatal(err)
				}
			}
		})
		return r.NsPerOp()
	}

	// The hybrid-channel point: size-aware routing with both paths hot,
	// matching BenchmarkHybridChannel.
	hyPlan, err := fsdinference.BuildPlan(mCluster, 8, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	hyInput := fsdinference.GenerateInputs(256, 64, 0.2, 2)
	hybridRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
				Model: mCluster, Plan: hyPlan, Channel: fsdinference.Hybrid,
				HybridThresholdBytes: 2 << 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.Infer(hyInput); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The million-query streaming point: a 1M-query diurnal day through
	// ReplayStream on an uncompressed 64-neuron endpoint, matching
	// BenchmarkMillionQueryReplay. One pass is seconds, so a single
	// measured iteration is enough.
	m64, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(64, 2, 1))
	if err != nil {
		log.Fatal(err)
	}
	const millionTotal = 1_000_000
	//simlint:allow walltime — benchmarks the host's real throughput on the million-query replay; wall time is the measurement
	millionStart := time.Now()
	msvc, err := fsdinference.NewService(fsdinference.NewEnv(),
		fsdinference.WithEndpoint("m64", m64,
			serve.WithDeployOverride(func(c *core.Config) { c.Compress = false })),
		fsdinference.WithCoalescing(4096, 5*time.Minute),
	)
	if err != nil {
		log.Fatal(err)
	}
	mrep, err := msvc.ReplayStream(
		fsdinference.DiurnalDay(millionTotal, []int{64}, 1, 7, 8192),
		fsdinference.ReplayOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if mrep.Queries != millionTotal || mrep.Failed != 0 {
		log.Fatalf("million replay: %d queries, %d failed", mrep.Queries, mrep.Failed)
	}
	//simlint:allow walltime — the gate is real queries-per-wall-second; this is the divisor
	millionQPS := float64(millionTotal) / time.Since(millionStart).Seconds()

	br := benchReport{
		Benchmark:    "BenchmarkServiceReplay",
		NsPerOp:      res.NsPerOp(),
		Iterations:   res.N,
		Queries:      rep.Queries,
		Samples:      rep.Samples,
		Failed:       rep.Failed,
		P50Ms:        float64(rep.Latency.P50) / float64(time.Millisecond),
		P95Ms:        float64(rep.Latency.P95) / float64(time.Millisecond),
		P99Ms:        float64(rep.Latency.P99) / float64(time.Millisecond),
		TotalCostUSD: rep.TotalCost.Total(),
		ColdStarts:   rep.ColdStarts,
		WarmStarts:   rep.WarmStarts,

		ClusterBenchmark: "BenchmarkClusterChannel",
		ClusterNsPerOp:   clusterRes.NsPerOp(),

		AllreduceFlatNsPerOp: allreduce(fsdinference.FlatCollective),
		AllreduceTreeNsPerOp: allreduce(fsdinference.TreeCollective),
		HybridNsPerOp:        hybridRes.NsPerOp(),

		ReplayTracedNsPerOp: tracedRes.NsPerOp(),
		MonitorNsPerOp:      monRes.NsPerOp(),

		MillionQueriesPerSec: millionQPS,
	}
	data, err := json.MarshalIndent(br, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", *out, data)
}
