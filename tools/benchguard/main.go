// Command benchguard compares a freshly emitted BENCH_N.json against the
// most recent previous BENCH_*.json in the same directory and fails when
// the serving-replay ns/op regressed by more than the threshold. Together
// with tools/benchjson it turns the per-PR BENCH_N files into an enforced
// perf trajectory: every PR appends a point, and CI rejects a >25%
// slowdown of the serving hot path.
//
// The baseline was measured on whatever machine emitted it, so a slice of
// the threshold absorbs hardware variance; widen it with -threshold if a
// runner class change (not code) trips the gate.
//
// Usage:
//
//	go run ./tools/benchguard [-new BENCH_2.json] [-threshold 0.25]
//	go run ./tools/benchguard -history
//
// -history prints the full BENCH_* trajectory the guard is protecting —
// every point in sequence order with its ns/op and the step-to-step
// change — instead of guarding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

type benchPoint struct {
	Benchmark string `json:"benchmark"`
	NsPerOp   int64  `json:"ns_per_op"`
	Queries   int    `json:"queries"`
	Samples   int    `json:"samples"`
	Failed    int    `json:"failed"`

	// Cluster-channel gate (BENCH_4 onward): guarded like the serving
	// replay once both the new point and the baseline carry it.
	ClusterBenchmark string `json:"cluster_benchmark"`
	ClusterNsPerOp   int64  `json:"cluster_ns_per_op"`

	// Collectives and hybrid-channel gates (BENCH_5 onward), guarded the
	// same way. The tree allreduce and the hybrid channel are the guarded
	// series; the flat allreduce rides along as the comparison baseline.
	AllreduceFlatNsPerOp int64 `json:"allreduce_flat_ns_per_op"`
	AllreduceTreeNsPerOp int64 `json:"allreduce_tree_ns_per_op"`
	HybridNsPerOp        int64 `json:"hybrid_ns_per_op"`

	// Million-query streaming replay gate (BENCH_6 onward). Queries/sec,
	// so higher is better: the regression sign is inverted relative to the
	// ns/op series, and an absolute floor (-minqps) backs the relative
	// gate.
	MillionQueriesPerSec float64 `json:"million_queries_per_sec"`

	// Traced serving replay (BENCH_7 onward): the NsPerOp workload with
	// 1%-sampled tracing on. Gated two ways — across files like the other
	// ns/op series, and within the file against NsPerOp so the tracing
	// overhead itself stays under -traceoverhead.
	ReplayTracedNsPerOp int64 `json:"replay_traced_ns_per_op"`

	// Monitored serving replay (BENCH_9 onward): the NsPerOp workload
	// under a 5m simulated-time SLO scrape. Gated across files like the
	// other ns/op series and within the file against NsPerOp so the
	// monitoring overhead stays under -monitoroverhead.
	MonitorNsPerOp int64 `json:"monitor_ns_per_op"`
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestBench returns the highest-numbered BENCH_*.json in dir, so a bare
// benchguard run guards the newest trajectory point without duplicating
// the Makefile's BENCH_N.
func latestBench(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	seq, path := -1, ""
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > seq {
			seq, path = n, filepath.Join(dir, e.Name())
		}
	}
	if path == "" {
		return "", fmt.Errorf("no BENCH_*.json found in %s", dir)
	}
	return path, nil
}

func read(path string) (benchPoint, error) {
	var p benchPoint
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	return p, json.Unmarshal(data, &p)
}

// trajectory returns every BENCH_*.json in dir in sequence order.
func trajectory(dir string) (seqs []int, paths []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	bySeq := map[int]string{}
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		bySeq[n] = filepath.Join(dir, e.Name())
	}
	for n := range bySeq {
		seqs = append(seqs, n)
	}
	sort.Ints(seqs)
	for _, n := range seqs {
		paths = append(paths, bySeq[n])
	}
	return seqs, paths, nil
}

// printHistory renders the guarded trajectory: one row per BENCH_* point
// with its serving-replay ns/op and the change against the previous
// point.
func printHistory(dir string) error {
	seqs, paths, err := trajectory(dir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json found in %s", dir)
	}
	fmt.Printf("%-8s %-16s %14s %10s %9s %9s\n", "point", "benchmark", "ns/op", "queries", "samples", "change")
	var prev int64
	for i, p := range paths {
		pt, err := read(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		change := "-"
		if i > 0 && prev > 0 {
			change = fmt.Sprintf("%+.1f%%", 100*float64(pt.NsPerOp-prev)/float64(prev))
		}
		name := pt.Benchmark
		if name == "" {
			name = "?"
		}
		fmt.Printf("BENCH_%-2d %-16s %14d %10d %9d %9s",
			seqs[i], name, pt.NsPerOp, pt.Queries, pt.Samples, change)
		if pt.ClusterNsPerOp > 0 {
			fmt.Printf("  cluster %d ns/op", pt.ClusterNsPerOp)
		}
		if pt.AllreduceTreeNsPerOp > 0 {
			fmt.Printf("  allreduce flat/tree %d/%d ns/op", pt.AllreduceFlatNsPerOp, pt.AllreduceTreeNsPerOp)
		}
		if pt.HybridNsPerOp > 0 {
			fmt.Printf("  hybrid %d ns/op", pt.HybridNsPerOp)
		}
		if pt.MillionQueriesPerSec > 0 {
			fmt.Printf("  million-replay %.0f q/s", pt.MillionQueriesPerSec)
		}
		if pt.ReplayTracedNsPerOp > 0 {
			fmt.Printf("  traced %d ns/op", pt.ReplayTracedNsPerOp)
		}
		if pt.MonitorNsPerOp > 0 {
			fmt.Printf("  monitored %d ns/op", pt.MonitorNsPerOp)
		}
		fmt.Println()
		prev = pt.NsPerOp
	}
	return nil
}

func main() {
	newPath := flag.String("new", "", "freshly emitted bench point (default: highest-numbered BENCH_*.json)")
	threshold := flag.Float64("threshold", 0.25, "maximum allowed ns/op regression (fraction)")
	minQPS := flag.Float64("minqps", 100_000, "absolute floor for the million-query replay (queries/sec)")
	traceOverhead := flag.Float64("traceoverhead", 0.15, "maximum tracing overhead: traced vs untraced serving replay within one file (fraction)")
	monitorOverhead := flag.Float64("monitoroverhead", 0.10, "maximum monitoring overhead: monitored vs plain serving replay within one file (fraction)")
	history := flag.Bool("history", false, "print the full BENCH_* trajectory being guarded and exit")
	flag.Parse()

	if *history {
		if err := printHistory("."); err != nil {
			log.Fatalf("benchguard: %v", err)
		}
		return
	}

	if *newPath == "" {
		latest, err := latestBench(".")
		if err != nil {
			log.Fatalf("benchguard: %v", err)
		}
		*newPath = latest
	}
	m := benchFile.FindStringSubmatch(filepath.Base(*newPath))
	if m == nil {
		log.Fatalf("benchguard: %q is not a BENCH_N.json file", *newPath)
	}
	newSeq, _ := strconv.Atoi(m[1])

	cur, err := read(*newPath)
	if err != nil {
		log.Fatalf("benchguard: %v", err)
	}
	if cur.Failed > 0 {
		log.Fatalf("benchguard: %s reports %d failed queries", *newPath, cur.Failed)
	}

	// The comparison baseline is the highest-numbered earlier point.
	dir := filepath.Dir(*newPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatalf("benchguard: %v", err)
	}
	prevSeq, prevPath := -1, ""
	for _, e := range entries {
		sm := benchFile.FindStringSubmatch(e.Name())
		if sm == nil {
			continue
		}
		seq, _ := strconv.Atoi(sm[1])
		if seq < newSeq && seq > prevSeq {
			prevSeq, prevPath = seq, filepath.Join(dir, e.Name())
		}
	}
	if prevPath == "" {
		fmt.Printf("benchguard: no earlier BENCH_*.json; %s starts the trajectory at %d ns/op\n",
			*newPath, cur.NsPerOp)
		return
	}
	prev, err := read(prevPath)
	if err != nil {
		log.Fatalf("benchguard: %v", err)
	}
	if prev.NsPerOp <= 0 {
		log.Fatalf("benchguard: %s has no ns/op", prevPath)
	}

	change := float64(cur.NsPerOp-prev.NsPerOp) / float64(prev.NsPerOp)
	fmt.Printf("benchguard: %s %d ns/op vs %s %d ns/op (%+.1f%%)\n",
		*newPath, cur.NsPerOp, prevPath, prev.NsPerOp, 100*change)
	if change > *threshold {
		log.Fatalf("benchguard: serving replay regressed %.1f%% (> %.0f%% allowed)",
			100*change, 100**threshold)
	}
	// Later-joining series gate the same way once both the new point and
	// the baseline carry them: the cluster channel from BENCH_4, the tree
	// allreduce and the hybrid channel from BENCH_5. The first file
	// bearing a series just starts it.
	series := []struct {
		name      string
		cur, base int64
	}{
		{"cluster channel", cur.ClusterNsPerOp, prev.ClusterNsPerOp},
		{"tree allreduce", cur.AllreduceTreeNsPerOp, prev.AllreduceTreeNsPerOp},
		{"hybrid channel", cur.HybridNsPerOp, prev.HybridNsPerOp},
		{"traced replay", cur.ReplayTracedNsPerOp, prev.ReplayTracedNsPerOp},
		{"monitored replay", cur.MonitorNsPerOp, prev.MonitorNsPerOp},
	}
	for _, s := range series {
		switch {
		case s.cur > 0 && s.base > 0:
			schange := float64(s.cur-s.base) / float64(s.base)
			fmt.Printf("benchguard: %s %d ns/op vs %d ns/op (%+.1f%%)\n",
				s.name, s.cur, s.base, 100*schange)
			if schange > *threshold {
				log.Fatalf("benchguard: %s regressed %.1f%% (> %.0f%% allowed)",
					s.name, 100*schange, 100**threshold)
			}
		case s.cur > 0:
			fmt.Printf("benchguard: no earlier %s point; %s starts that series at %d ns/op\n",
				s.name, *newPath, s.cur)
		}
	}
	// The million-query replay series (BENCH_6 onward) is in queries/sec,
	// so a regression is a DROP: the sign inverts relative to the ns/op
	// series, and an absolute floor backs the relative gate so the series
	// cannot drift below the replay engine's throughput target 25% per PR.
	if qps := cur.MillionQueriesPerSec; qps > 0 {
		if qps < *minQPS {
			log.Fatalf("benchguard: million-query replay %.0f q/s below the %.0f q/s floor", qps, *minQPS)
		}
		if base := prev.MillionQueriesPerSec; base > 0 {
			drop := (base - qps) / base
			fmt.Printf("benchguard: million-query replay %.0f q/s vs %.0f q/s (%+.1f%%)\n",
				qps, base, 100*(qps-base)/base)
			if drop > *threshold {
				log.Fatalf("benchguard: million-query replay dropped %.1f%% (> %.0f%% allowed)",
					100*drop, 100**threshold)
			}
		} else {
			fmt.Printf("benchguard: no earlier million-query point; %s starts that series at %.0f q/s\n",
				*newPath, qps)
		}
	}
	// The tracing-overhead gate (BENCH_7 onward) is within-file: the traced
	// serving replay against the untraced one in the SAME point, so the
	// comparison is hardware-invariant — both numbers come from one run on
	// one machine, and the delta is the observability layer's price alone.
	if cur.ReplayTracedNsPerOp > 0 && cur.NsPerOp > 0 {
		overhead := float64(cur.ReplayTracedNsPerOp-cur.NsPerOp) / float64(cur.NsPerOp)
		fmt.Printf("benchguard: tracing overhead %d ns/op traced vs %d ns/op untraced (%+.1f%%)\n",
			cur.ReplayTracedNsPerOp, cur.NsPerOp, 100*overhead)
		if overhead > *traceOverhead {
			log.Fatalf("benchguard: tracing overhead %.1f%% (> %.0f%% allowed)",
				100*overhead, 100**traceOverhead)
		}
	}
	// The monitoring-overhead gate (BENCH_9 onward) mirrors the tracing
	// one: monitored against plain serving replay within the SAME point,
	// so the delta is the SLO monitor's price alone — per-request metric
	// increments plus scrape events on the kernel.
	if cur.MonitorNsPerOp > 0 && cur.NsPerOp > 0 {
		overhead := float64(cur.MonitorNsPerOp-cur.NsPerOp) / float64(cur.NsPerOp)
		fmt.Printf("benchguard: monitoring overhead %d ns/op monitored vs %d ns/op plain (%+.1f%%)\n",
			cur.MonitorNsPerOp, cur.NsPerOp, 100*overhead)
		if overhead > *monitorOverhead {
			log.Fatalf("benchguard: monitoring overhead %.1f%% (> %.0f%% allowed)",
				100*overhead, 100**monitorOverhead)
		}
	}
	fmt.Println("benchguard: within budget")
}
