package fsdinference_test

import (
	"os"
	"sync"
	"testing"
	"time"

	"fsdinference"
	"fsdinference/internal/core"
	"fsdinference/internal/experiments"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
	"fsdinference/internal/serve"
	"fsdinference/internal/sim"
	"fsdinference/internal/sparse"
	"fsdinference/internal/wire"
)

// benchScale picks the experiment grid: quick by default, the full default
// grid with FSD_BENCH_SCALE=default.
func benchScale() experiments.Scale {
	if os.Getenv("FSD_BENCH_SCALE") == "default" {
		return experiments.DefaultScale()
	}
	return experiments.QuickScale()
}

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func sharedLab() *experiments.Lab {
	benchLabOnce.Do(func() { benchLab = experiments.NewLab(benchScale()) })
	return benchLab
}

// benchExperiment runs one table/figure regenerator per iteration and logs
// its rendering once, so `go test -bench .` both regenerates and displays
// every paper artifact.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	lab := sharedLab()
	r, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var out *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := r.Run(lab)
		if err != nil {
			b.Fatal(err)
		}
		out = t
	}
	b.Log("\n" + out.String())
}

// One benchmark per paper table and figure (§VI).

func BenchmarkFig4DailyCost(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5QueryLatency(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6Scaling(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkChannelComparison(b *testing.B)  { benchExperiment(b, "channels") }
func BenchmarkClusterScaling(b *testing.B)     { benchExperiment(b, "cluster") }
func BenchmarkPlannerSelection(b *testing.B)   { benchExperiment(b, "planner") }
func BenchmarkTable2PerSample(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable3Partitioning(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkCostValidation(b *testing.B)     { benchExperiment(b, "costval") }

// Ablations the paper references without showing.

func BenchmarkAblationPolling(b *testing.B)     { benchExperiment(b, "polling") }
func BenchmarkAblationLaunch(b *testing.B)      { benchExperiment(b, "launch") }
func BenchmarkAblationCompression(b *testing.B) { benchExperiment(b, "compression") }
func BenchmarkAblationQuota(b *testing.B)       { benchExperiment(b, "quota") }

// Component micro-benchmarks.

func BenchmarkSparseMulGather(b *testing.B) {
	m, err := model.Generate(model.GraphChallengeSpec(1024, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	w := m.Layers[0]
	x := model.GenerateInputs(1024, 64, 0.2, 2)
	z := sparse.NewDense(w.Rows, 64)
	lookup := func(c int32) []float32 {
		if x.RowIsZero(int(c)) {
			return nil
		}
		return x.Row(int(c))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Zero()
		sparse.MulGatherInto(w, lookup, z)
	}
}

func BenchmarkWireEncodeChunksCompressed(b *testing.B) {
	rs := wire.NewRowSet(64)
	row := make([]float32, 64)
	for i := range row {
		if i%3 == 0 {
			row[i] = float32(i)
		}
	}
	for r := 0; r < 512; r++ {
		rs.Add(int32(r), row)
	}
	b.SetBytes(rs.RawBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.EncodeChunks(rs, 240*1024, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHypergraphPartition(b *testing.B) {
	m, err := model.Generate(model.GraphChallengeSpec(512, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.BuildPlan(m, 8, partition.HGPDNN, partition.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimKernelEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.New()
		c := sim.NewCond(k)
		for p := 0; p < 16; p++ {
			k.Go("w", func(p *sim.Proc) {
				for j := 0; j < 100; j++ {
					p.Sleep(1)
				}
				c.Broadcast()
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceReplay drives a small sporadic day through the serving
// layer — admission, coalescing, replica dispatch and the shared-kernel
// async engine path — so the serving hot path sits in the perf
// trajectory alongside the engine and kernel benchmarks.
func BenchmarkServiceReplay(b *testing.B) {
	mSmall, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(128, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	mLarge, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	trace := fsdinference.WorkloadDay(40*8, []int{128, 256}, 8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := fsdinference.NewService(fsdinference.NewEnv(),
			fsdinference.WithEndpoint("small", mSmall),
			fsdinference.WithEndpoint("large", mLarge),
			fsdinference.WithCoalescing(64, 200*time.Millisecond),
			fsdinference.WithReplicas(2),
		)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed != 0 {
			b.Fatalf("%d failed queries", rep.Failed)
		}
	}
}

// BenchmarkServiceReplayTraced is the same workload as
// BenchmarkServiceReplay with the observability layer on at 1%
// sampling. The delta between the two documents the tracing overhead;
// benchguard gates it at no more than 15% — the price of span hooks on
// every request path when only one in a hundred requests records spans.
func BenchmarkServiceReplayTraced(b *testing.B) {
	mSmall, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(128, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	mLarge, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	trace := fsdinference.WorkloadDay(40*8, []int{128, 256}, 8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := fsdinference.NewService(fsdinference.NewEnv(),
			fsdinference.WithEndpoint("small", mSmall),
			fsdinference.WithEndpoint("large", mLarge),
			fsdinference.WithCoalescing(64, 200*time.Millisecond),
			fsdinference.WithReplicas(2),
			fsdinference.WithTracing(100),
		)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed != 0 {
			b.Fatalf("%d failed queries", rep.Failed)
		}
		if len(svc.Tracer().Spans()) == 0 {
			b.Fatal("tracing produced no spans")
		}
	}
}

// BenchmarkServiceReplayMonitored is the same workload as
// BenchmarkServiceReplay with the SLO monitor on: a 5m simulated-time
// scrape over both endpoints feeding an availability SLO through the
// default burn-rate rules. The delta against the untraced replay is the
// monitoring overhead — scrape events on the kernel plus per-request
// metric increments — which benchguard gates at no more than 10%.
func BenchmarkServiceReplayMonitored(b *testing.B) {
	mSmall, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(128, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	mLarge, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	trace := fsdinference.WorkloadDay(40*8, []int{128, 256}, 8, 7)
	spec := fsdinference.MonitorSpec{
		Interval: 5 * time.Minute,
		SLOs: []fsdinference.SLO{{
			Name: "availability", Kind: fsdinference.Availability,
			Window: 30 * 24 * time.Hour, Objective: 0.999,
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, err := fsdinference.NewService(fsdinference.NewEnv(),
			fsdinference.WithEndpoint("small", mSmall),
			fsdinference.WithEndpoint("large", mLarge),
			fsdinference.WithCoalescing(64, 200*time.Millisecond),
			fsdinference.WithReplicas(2),
			fsdinference.WithMonitor(spec),
		)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed != 0 {
			b.Fatalf("%d failed queries", rep.Failed)
		}
		if len(svc.Monitor().Series("small")) == 0 {
			b.Fatal("monitoring produced no series")
		}
	}
}

// BenchmarkMillionQueryReplay streams a one-million-query diurnal day
// through a live endpoint end-to-end — streaming trace generation,
// admission, coalescing, batched inference, incremental report folding —
// in bounded memory. It reports sustained queries/sec; benchguard gates
// the replay engine on this number staying above 100k/s.
func BenchmarkMillionQueryReplay(b *testing.B) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(64, 2, 1))
	if err != nil {
		b.Fatal(err)
	}
	const total = 1_000_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Payload compression is the data plane's cost, measured by the
		// compression ablation; switching it off here keeps the gate on
		// the replay engine itself (scheduling, coalescing, dispatch,
		// folding) rather than on zlib throughput.
		svc, err := fsdinference.NewService(fsdinference.NewEnv(),
			fsdinference.WithEndpoint("m64", m,
				serve.WithDeployOverride(func(c *core.Config) { c.Compress = false })),
			fsdinference.WithCoalescing(4096, 5*time.Minute),
		)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := svc.ReplayStream(
			fsdinference.DiurnalDay(total, []int{64}, 1, 7, 8192),
			fsdinference.ReplayOptions{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Queries != total || rep.Failed != 0 {
			b.Fatalf("replayed %d queries, %d failed", rep.Queries, rep.Failed)
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkPlanner measures one full Plan/Replan cycle of the
// workload-aware planner: analytic pre-filter, probe trials for the
// surviving candidates, then a re-plan under a sustained profile that
// must re-score cached measurements rather than re-simulate.
func BenchmarkPlanner(b *testing.B) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := fsdinference.NewPlanner(m, fsdinference.PlannerOptions{
			Objective: fsdinference.CostObjective(),
			Grid: fsdinference.PlannerGrid{
				Channels: []fsdinference.ChannelKind{fsdinference.Queue, fsdinference.Memory},
				Workers:  []int{2},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		d, err := p.Plan(fsdinference.WorkloadProfile{QueriesPerDay: 20, BatchSamples: 8})
		if err != nil {
			b.Fatal(err)
		}
		d2, err := p.Replan(fsdinference.WorkloadProfile{QueriesPerDay: 200_000, BatchSamples: 8})
		if err != nil {
			b.Fatal(err)
		}
		if d.Best.Channel == d2.Best.Channel {
			b.Fatalf("replan did not flip the channel: %v", d.Best.Channel)
		}
	}
}

// BenchmarkClusterChannel drives one inference run over the sharded,
// replicated memory-store cluster — slot routing, async replication and
// per-shard limiters all on the hot path — so the cluster data path sits
// in the perf trajectory (BENCH_4 onward) alongside the serving replay.
func BenchmarkClusterChannel(b *testing.B) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := fsdinference.BuildPlan(m, 4, fsdinference.Block, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	input := fsdinference.GenerateInputs(256, 16, 0.2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
			Model: m, Plan: plan, Channel: fsdinference.Memory,
			KVNodes: 2, KVReplicas: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Infer(input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineQueueRun(b *testing.B) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := fsdinference.BuildPlan(m, 4, fsdinference.Block, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	input := fsdinference.GenerateInputs(256, 16, 0.2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
			Model: m, Plan: plan, Channel: fsdinference.Queue,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Infer(input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllreduce drives one inference whose closing reduce is a true
// allreduce at P=32 on the memory channel, flat versus binomial tree —
// the collectives subsystem's hot path (BENCH_5 onward), where the flat
// root frames the combined result once per target and the tree amortises
// that over ceil(log2 P) rounds.
func BenchmarkAllreduce(b *testing.B) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := fsdinference.BuildPlan(m, 32, fsdinference.Block, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	input := fsdinference.GenerateInputs(256, 16, 0.2, 2)
	for _, tc := range []struct {
		name string
		alg  fsdinference.CollectiveAlgorithm
	}{{"flat", fsdinference.FlatCollective}, {"tree", fsdinference.TreeCollective}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
					Model: m, Plan: plan, Channel: fsdinference.Memory,
					Collective: tc.alg, AllreduceOutput: true, Compress: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := d.Infer(input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHybridChannel drives one inference over the size-aware hybrid
// channel with a threshold low enough that both paths run hot: control
// values ride the in-memory store, bulk values chunk into object storage
// behind inline pointers with pipelined fetch (BENCH_5 onward).
func BenchmarkHybridChannel(b *testing.B) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := fsdinference.BuildPlan(m, 8, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	input := fsdinference.GenerateInputs(256, 64, 0.2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
			Model: m, Plan: plan, Channel: fsdinference.Hybrid,
			HybridThresholdBytes: 2 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := d.Infer(input)
		if err != nil {
			b.Fatal(err)
		}
		if res.Usage.HybridBulkValues == 0 || res.Usage.HybridSmallValues == 0 {
			b.Fatalf("hybrid split not exercised: %d small / %d bulk",
				res.Usage.HybridSmallValues, res.Usage.HybridBulkValues)
		}
	}
}
