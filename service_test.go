package fsdinference_test

import (
	"errors"
	"testing"
	"time"

	"fsdinference"
)

// The public serving API, end to end: a multi-model Service with
// asynchronous Submit and trace replay, exercised exactly as a library
// consumer would use it.

func TestPublicServiceSubmitAndReplay(t *testing.T) {
	mSmall, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(128, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	mLarge, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := fsdinference.NewService(fsdinference.NewEnv(),
		fsdinference.WithEndpoint("small", mSmall),
		fsdinference.WithEndpoint("large", mLarge,
			fsdinference.WithChannel(fsdinference.Queue),
			fsdinference.WithWorkers(3)),
		fsdinference.WithCoalescing(64, 200*time.Millisecond),
		fsdinference.WithReplicas(2),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Async submits: two overlapping requests to different endpoints in
	// one simulated-time run.
	inSmall := fsdinference.GenerateInputs(128, 8, 0.2, 2)
	inLarge := fsdinference.GenerateInputs(256, 8, 0.2, 3)
	hSmall := svc.Submit("small", inSmall, 0)
	hLarge := svc.Submit("large", inLarge, 0)
	rSmall, err := hSmall.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rLarge, err := hLarge.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !fsdinference.OutputsClose(rSmall.Output, fsdinference.Reference(mSmall, inSmall), 1e-2) {
		t.Fatal("small endpoint output diverges from reference")
	}
	if !fsdinference.OutputsClose(rLarge.Output, fsdinference.Reference(mLarge, inLarge), 1e-2) {
		t.Fatal("large endpoint output diverges from reference")
	}

	// Trace replay continues on the same service, after the submits.
	trace := fsdinference.WorkloadDay(30*8, []int{128, 256}, 8, 7)
	rep, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 11, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Queries != len(trace) {
		t.Fatalf("replay served %d/%d with %d failures", rep.Queries, len(trace), rep.Failed)
	}
	if rep.Latency.P50 <= 0 || rep.TotalCost.Total() <= 0 {
		t.Fatalf("report missing measurements: %+v", rep.Latency)
	}
}

// The scheduler surface of the public API: autoscaling replica pools,
// priority submits and deadline shedding, exercised as a library consumer
// would.
func TestPublicSchedulerPolicies(t *testing.T) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(128, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := fsdinference.NewService(fsdinference.NewEnv(),
		fsdinference.WithEndpoint("ep", m),
		fsdinference.WithCoalescing(4, 0),
		fsdinference.WithAdmission(fsdinference.DeadlineAdmission(false)),
		fsdinference.WithScaling(fsdinference.Autoscaler(fsdinference.AutoscalerOptions{Min: 1, Max: 2})),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Two fillers saturate the autoscaler's Max of 2 replicas, so the
	// tight-deadline request must queue — and shed once it cannot finish
	// in time.
	filler1 := svc.Submit("ep", fsdinference.GenerateInputs(128, 4, 0.2, 2), 0)
	filler2 := svc.Submit("ep", fsdinference.GenerateInputs(128, 4, 0.2, 4), 0)
	doomed := svc.SubmitWith("ep", fsdinference.GenerateInputs(128, 4, 0.2, 3), time.Millisecond,
		fsdinference.SubmitOptions{Deadline: 2 * time.Millisecond})
	if _, err := filler1.Wait(); err != nil {
		t.Fatalf("filler failed: %v", err)
	}
	if _, err := filler2.Wait(); err != nil {
		t.Fatalf("second filler failed: %v", err)
	}
	if _, err := doomed.Wait(); !errors.Is(err, fsdinference.ErrShed) {
		t.Fatalf("doomed: got %v, want ErrShed", err)
	}

	// A replay under autoscaling reports the scheduler metrics.
	trace := fsdinference.WorkloadDay(20*8, []int{128}, 8, 7)
	rep, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ep := rep.Endpoints[0]
	if ep.ReplicaSeconds <= 0 {
		t.Fatalf("replay reported no replica-seconds: %+v", ep)
	}
	if ep.Scaling == "" || ep.Admission == "" {
		t.Fatalf("replay missing policy names: %+v", ep)
	}
}

// Deploy/Infer must keep working unchanged as the one-shot compatibility
// path alongside the Service API.
func TestDeployInferCompatibilityPath(t *testing.T) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(128, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
		Model: m, Channel: fsdinference.Serial,
	})
	if err != nil {
		t.Fatal(err)
	}
	input := fsdinference.GenerateInputs(128, 8, 0.2, 2)
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if !fsdinference.OutputsClose(res.Output, fsdinference.Reference(m, input), 1e-2) {
		t.Fatal("compat path output diverges from reference")
	}
	if res.Cost.Total() <= 0 || res.Latency <= 0 {
		t.Fatal("compat path lost metering")
	}
}

// The public Planner API, exercised exactly as a library consumer would:
// plan under an assumed sporadic workload, observe the pruning stats,
// re-plan under a sustained one, deploy the pick, and keep the legacy
// AutoSelect wrapper agreeing with the planner it wraps.
func TestPublicPlannerPlanAndReplan(t *testing.T) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := fsdinference.NewPlanner(m, fsdinference.PlannerOptions{
		Objective: fsdinference.CostObjective(),
		Grid: fsdinference.PlannerGrid{
			Channels: []fsdinference.ChannelKind{fsdinference.Queue, fsdinference.Memory},
			Workers:  []int{2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Plan(fsdinference.WorkloadProfile{QueriesPerDay: 20, BatchSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d.Best.Channel != fsdinference.Queue {
		t.Fatalf("sporadic plan picked %v, want queue", d.Best.Channel)
	}
	if d.Pruned == 0 {
		t.Fatal("analytic pre-filter pruned nothing on the sporadic cost plan")
	}
	d2, err := p.Replan(fsdinference.WorkloadProfile{QueriesPerDay: 200_000, BatchSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Best.Channel != fsdinference.Memory || !d2.Changed {
		t.Fatalf("sustained replan picked %v (changed=%v), want a flip to memory", d2.Best.Channel, d2.Changed)
	}
	// The decision's config deploys and serves on a caller environment.
	dep, err := fsdinference.Deploy(fsdinference.NewEnv(), d2.Config)
	if err != nil {
		t.Fatal(err)
	}
	in := fsdinference.GenerateInputs(256, 8, 0.2, 2)
	res, err := dep.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if !fsdinference.OutputsClose(res.Output, fsdinference.Reference(m, in), 1e-2) {
		t.Fatal("planned config produced wrong output")
	}

	// The legacy facade wrapper still answers with its original shape.
	sel, err := fsdinference.AutoSelect(m, fsdinference.AutoSelectOptions{
		LatencyWeight: 1, Workers: []int{2}, ProbeBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Channel != fsdinference.Serial {
		t.Fatalf("latency-weighted AutoSelect picked %v, want serial for a model this small", sel.Best.Channel)
	}
}
