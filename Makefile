# Tier-1 verification: formatting, static checks, build, tests.
.PHONY: check fmt vet build test lint bench bench-guard profile

# BENCH_N is this PR's point on the perf trajectory: bump it each PR so
# `make bench` appends a new BENCH_N.json and benchguard compares it
# against the previous one.
BENCH_N := 9

check: fmt vet build test lint

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

# lint runs simlint, the repo's determinism discipline (see tools/simlint
# and the "Determinism discipline" section of README.md). Zero unsuppressed
# findings is a merge requirement; suppressions must carry a reason
# (//simlint:allow <analyzer> — <why>).
lint:
	go run ./tools/simlint ./...

bench: bench-guard
	go test -bench . -benchtime 1x .

# bench-guard appends this PR's perf-trajectory point and fails on a >25%
# serving-replay ns/op regression against the previous BENCH_*.json. CI
# runs this target, so the BENCH_N filename has a single source of truth.
bench-guard:
	go run ./tools/benchjson -out BENCH_$(BENCH_N).json
	go run ./tools/benchguard -new BENCH_$(BENCH_N).json

# profile captures CPU and heap profiles of the benchmark named by
# PROFILE_BENCH (default: the million-query replay) and prints the top-10
# flat-cost functions of each, so "where does the replay engine spend its
# time" is one command away. Profiles land in ./profiles/.
PROFILE_BENCH := BenchmarkMillionQueryReplay
profile:
	mkdir -p profiles
	go test -run '^$$' -bench $(PROFILE_BENCH) -benchtime 1x \
		-cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof \
		-o profiles/bench.test .
	go tool pprof -top -nodecount=10 profiles/bench.test profiles/cpu.prof
	go tool pprof -top -nodecount=10 -sample_index=alloc_space profiles/bench.test profiles/mem.prof
