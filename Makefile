# Tier-1 verification: formatting, static checks, build, tests.
.PHONY: check fmt vet build test bench bench-guard

# BENCH_N is this PR's point on the perf trajectory: bump it each PR so
# `make bench` appends a new BENCH_N.json and benchguard compares it
# against the previous one.
BENCH_N := 5

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

bench: bench-guard
	go test -bench . -benchtime 1x .

# bench-guard appends this PR's perf-trajectory point and fails on a >25%
# serving-replay ns/op regression against the previous BENCH_*.json. CI
# runs this target, so the BENCH_N filename has a single source of truth.
bench-guard:
	go run ./tools/benchjson -out BENCH_$(BENCH_N).json
	go run ./tools/benchguard -new BENCH_$(BENCH_N).json
