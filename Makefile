# Tier-1 verification: formatting, static checks, build, tests.
.PHONY: check fmt vet build test bench

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench . -benchtime 1x .
	go run ./tools/benchjson -out BENCH_1.json
