// Package fsdinference is a faithful reproduction of FSD-Inference (Oakley
// & Ferhatosmanoglu, ICDE 2024): fully serverless distributed DNN inference
// with scalable cloud communication, together with the complete simulated
// cloud substrate it runs on.
//
// The package exposes the library's public surface; implementations live in
// internal packages. A minimal session:
//
//	m, _ := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(1024, 120, 1))
//	plan, _ := fsdinference.BuildPlan(m, 20, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
//	d, _ := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
//		Model: m, Plan: plan, Channel: fsdinference.Queue,
//	})
//	input := fsdinference.GenerateInputs(1024, 64, 0.2, 2)
//	res, _ := d.Infer(input)
//	fmt.Println(res.Latency, res.Cost.Total())
//
// Everything runs on a deterministic discrete-event simulation of AWS-like
// services (Lambda, SNS, SQS, S3, EC2): latencies are virtual, costs are
// metered from billed requests, and the sparse math executes for real so
// outputs can be checked against Reference.
package fsdinference

import (
	"time"

	"fsdinference/internal/baselines"
	"fsdinference/internal/cloud/env"
	"fsdinference/internal/cloud/kvcluster"
	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/collective"
	"fsdinference/internal/core"
	"fsdinference/internal/cost"
	"fsdinference/internal/experiments"
	"fsdinference/internal/model"
	"fsdinference/internal/obs"
	"fsdinference/internal/obs/monitor"
	"fsdinference/internal/partition"
	"fsdinference/internal/plan"
	"fsdinference/internal/serve"
	"fsdinference/internal/sparse"
	"fsdinference/internal/workload"
)

// Model building blocks.
type (
	// Model is a sparse DNN (Graph Challenge-style).
	Model = model.Model
	// ModelSpec describes a synthetic sparse DNN.
	ModelSpec = model.Spec
	// Dense is a dense activation matrix (rows = neurons, cols = samples).
	Dense = sparse.Dense
	// CSR is a compressed sparse row weight matrix.
	CSR = sparse.CSR
)

// GraphChallengeSpec returns the paper's benchmark configuration for a
// neuron count and layer count.
func GraphChallengeSpec(neurons, layers int, seed int64) ModelSpec {
	return model.GraphChallengeSpec(neurons, layers, seed)
}

// GenerateModel builds a deterministic synthetic sparse DNN.
func GenerateModel(spec ModelSpec) (*Model, error) { return model.Generate(spec) }

// GenerateInputs builds a batch of thresholded sparse inputs.
func GenerateInputs(neurons, batch int, density float64, seed int64) *Dense {
	return model.GenerateInputs(neurons, batch, density, seed)
}

// Reference runs serial float64 inference as ground truth.
func Reference(m *Model, input *Dense) *Dense { return model.Reference(m, input) }

// OutputsClose compares activation matrices within a tolerance.
func OutputsClose(a, b *Dense, tol float64) bool { return model.OutputsClose(a, b, tol) }

// Partitioning.
type (
	// Plan is an offline model partitioning across P workers.
	Plan = partition.Plan
	// PartitionScheme selects Block, Random (RP) or HGPDNN.
	PartitionScheme = partition.Scheme
	// PartitionOptions controls plan construction.
	PartitionOptions = partition.Options
)

// Partitioning schemes (paper §III, Table III).
const (
	Block  = partition.Block
	Random = partition.Random
	HGPDNN = partition.HGPDNN
)

// BuildPlan partitions a model across the given worker count.
func BuildPlan(m *Model, workers int, scheme PartitionScheme, opts PartitionOptions) (*Plan, error) {
	return partition.BuildPlan(m, workers, scheme, opts)
}

// Simulated cloud environment.
type (
	// Env is one simulated cloud region (Lambda, SNS, SQS, S3, EC2).
	Env = env.Env
	// EnvConfig collects per-service configurations.
	EnvConfig = env.Config
)

// NewEnv builds an environment with calibrated AWS-like defaults.
func NewEnv() *Env { return env.NewDefault() }

// NewEnvWith builds an environment from a custom configuration.
func NewEnvWith(cfg EnvConfig) *Env { return env.New(cfg) }

// DefaultEnvConfig returns the calibrated defaults for customisation.
func DefaultEnvConfig() EnvConfig { return env.DefaultConfig() }

// The FSD-Inference engine.
type (
	// Config describes one FSD-Inference deployment.
	Config = core.Config
	// Deployment is a deployed FSD-Inference application.
	Deployment = core.Deployment
	// Result reports one inference request.
	Result = core.Result
	// WorkerMetrics reports one worker's activity.
	WorkerMetrics = core.WorkerMetrics
	// ChannelKind selects the communication variant.
	ChannelKind = core.ChannelKind
	// LaunchMode selects the worker-tree launch mechanism.
	LaunchMode = core.LaunchMode
)

// Communication variants (paper §III, plus the provisioned in-memory
// store of §II-D: memory-speed ops billed by node-hour, not per request,
// and the size-aware hybrid built on top of it).
const (
	Serial = core.Serial
	Queue  = core.Queue
	Object = core.Object
	Memory = core.Memory
	// Hybrid routes each value by size: control traffic at or below
	// Config.HybridThresholdBytes rides the in-memory store inline, bulk
	// tensors are chunked into object storage and announced by an inline
	// pointer, fetched through a pipelined chunk pool.
	Hybrid = core.Hybrid
)

// The collectives subsystem (internal/collective): Barrier, Broadcast,
// Reduce/Allreduce, Scatter and Gather over the deployment's channel,
// under flat (the paper's root-funnelled pattern), binomial-tree or ring
// topologies. Config.Collective selects one; AutoCollective picks the
// analytically cheapest per call from the channel's latency/bandwidth
// traits, and Config.AllreduceOutput materialises the reduced inference
// output at every worker instead of only worker 0.
type CollectiveAlgorithm = collective.Algorithm

// Collective topologies.
const (
	FlatCollective = collective.Flat
	TreeCollective = collective.Tree
	RingCollective = collective.Ring
	AutoCollective = collective.AutoAlgo
)

// DefaultKVNodeType is the provisioned store node the Memory channel uses
// unless Config.KVNodeType overrides it.
const DefaultKVNodeType = core.DefaultKVNodeType

// The sharded, replicated memory-store cluster behind the Memory channel
// (internal/cloud/kvcluster): keys hash into 16384 slots, rendezvous
// hashing maps slots to Config.KVNodes primary shards — each with its
// own request-rate and bandwidth ceiling, so channel throughput scales
// with the shard count — and Config.KVReplicas replicas per shard buy
// failover behaviour at replica node-hours (R=1 async promotion loses
// the replication pipe, R>=2 quorum writes lose nothing). KillNode and
// Partition inject faults mid-run; Deployment.KVCluster returns the
// handle:
//
//	d, _ := fsdinference.Deploy(env, fsdinference.Config{
//		Model: m, Plan: plan, Channel: fsdinference.Memory,
//		KVNodes: 2, KVReplicas: 1,
//	})
//	env.K.At(2*time.Second, func() { d.KVCluster().KillNode(0) })
type (
	// KVCluster is a deployment's sharded, replicated store cluster.
	KVCluster = kvcluster.Cluster
	// KVClusterConfig parameterises a standalone cluster.
	KVClusterConfig = kvcluster.Config
	// KVClusterClient is a caller's cached topology view (pays a
	// MOVED-style redirect after promotions).
	KVClusterClient = kvcluster.Client
)

// NewKVCluster provisions a standalone store cluster on the environment
// (outside any deployment), for direct experiments against the slot map,
// replication and failover machinery.
func NewKVCluster(e *Env, cfg KVClusterConfig) (*KVCluster, error) {
	return kvcluster.New(e.KV, cfg)
}

// MeasureClusterThroughput saturates a fresh cluster of the given shard
// count and node type and returns its steady-state aggregate ops/second
// — the measurement showing shards scale past one node's ceiling.
func MeasureClusterThroughput(shards int, nodeType string) float64 {
	return kvcluster.MeasureThroughput(shards, nodeType, nil)
}

// Launch mechanisms (paper §III and the launch ablation).
const (
	Hierarchical = core.Hierarchical
	Centralized  = core.Centralized
	TwoLevel     = core.TwoLevel
)

// Deploy validates a configuration, stages the model and creates all
// communication resources and functions. Deploy/Infer is the one-shot
// compatibility path: each Infer owns the kernel until its run drains.
// Long-lived, concurrent serving goes through NewService.
func Deploy(e *Env, cfg Config) (*Deployment, error) { return core.Deploy(e, cfg) }

// The serving layer: a long-lived multi-model endpoint with asynchronous
// Submit, per-endpoint admission queues under pluggable scheduling
// policies (FIFO, priority, deadline-aware with shedding/rerouting),
// request coalescing into batched engine runs (the upstream buffering the
// paper assumes in §V-B2), replica pools sized by pluggable scaling
// policies (fixed or autoscaling from queue depth and arrival rate, with
// metered cold starts and replica-hours), run multiplexing on every
// channel, and trace replay that turns the §VI-C daily-cost comparison
// from arithmetic into measurement:
//
//	svc, _ := fsdinference.NewService(env,
//		fsdinference.WithEndpoint("small", mSmall),
//		fsdinference.WithEndpoint("large", mLarge,
//			fsdinference.WithChannel(fsdinference.Queue), fsdinference.WithWorkers(20)),
//		fsdinference.WithCoalescing(64, 500*time.Millisecond),
//		fsdinference.WithScaling(fsdinference.Autoscaler(fsdinference.AutoscalerOptions{Min: 1, Max: 4})),
//		fsdinference.WithAdmission(fsdinference.DeadlineAdmission(true)),
//	)
//	h := svc.SubmitWith("small", input, at, fsdinference.SubmitOptions{Priority: 2})
//	resp, _ := h.Wait()                 // drives one shared simulated-time run
//	report, _ := svc.Replay(fsdinference.WorkloadDay(100*32, sizes, 32, 7), fsdinference.ReplayOptions{})
type (
	// Service is a long-lived multi-model serving endpoint.
	Service = serve.Service
	// ServiceOption configures a Service.
	ServiceOption = serve.Option
	// EndpointOption configures one Service endpoint.
	EndpointOption = serve.EndpointOption
	// Handle is the pending result of one Submit.
	Handle = serve.Handle
	// Response is one request's resolved result.
	Response = serve.Response
	// SubmitOptions carries per-request scheduling metadata (priority,
	// deadline).
	SubmitOptions = serve.SubmitOptions
	// ServiceReport is the measured outcome of a trace replay.
	ServiceReport = serve.Report
	// EndpointReport is one endpoint's share of a replay.
	EndpointReport = serve.EndpointReport
	// PriorityLatency is one priority class's latency distribution.
	PriorityLatency = serve.PriorityLatency
	// LatencyStats summarises a latency distribution (p50/p95/p99...).
	LatencyStats = serve.LatencyStats
	// ReplayOptions tunes a trace replay.
	ReplayOptions = serve.ReplayOptions

	// AdmissionPolicy orders an endpoint's admission queue and decides
	// shedding/rerouting at dispatch time.
	AdmissionPolicy = serve.AdmissionPolicy
	// ScalingPolicy sizes an endpoint's replica pool.
	ScalingPolicy = serve.ScalingPolicy
	// RequestInfo is a policy's view of one queued request.
	RequestInfo = serve.RequestInfo
	// PoolState is a scaling policy's view of one endpoint's scheduler.
	PoolState = serve.PoolState
	// AutoscalerOptions tunes the demand-driven scaling policy.
	AutoscalerOptions = serve.AutoscalerOptions
	// SLOOptions configures deploy-time planning and drift re-planning
	// for an endpoint.
	SLOOptions = serve.SLOOptions
)

// ErrShed marks a request rejected by a deadline admission policy; test
// with errors.Is.
var ErrShed = serve.ErrShed

// FIFO returns the default admission policy: strict arrival order.
func FIFO() AdmissionPolicy { return serve.FIFO() }

// PriorityAdmission dispatches higher-priority requests first.
func PriorityAdmission() AdmissionPolicy { return serve.PriorityAdmission() }

// DeadlineAdmission is earliest-deadline-first with shedding of requests
// that cannot meet their deadline; reroute offers shed requests to a
// sibling endpoint serving the same model size first.
func DeadlineAdmission(reroute bool) AdmissionPolicy { return serve.DeadlineAdmission(reroute) }

// FixedPool keeps a static replica pool of n (the WithReplicas behaviour).
func FixedPool(n int) ScalingPolicy { return serve.FixedPool(n) }

// Autoscaler grows and shrinks the pool from queue depth and arrival rate.
func Autoscaler(o AutoscalerOptions) ScalingPolicy { return serve.Autoscaler(o) }

// NewService builds a multi-model serving endpoint on the environment.
func NewService(e *Env, opts ...ServiceOption) (*Service, error) { return serve.NewService(e, opts...) }

// WithEndpoint registers a named model endpoint.
func WithEndpoint(name string, m *Model, opts ...EndpointOption) ServiceOption {
	return serve.WithEndpoint(name, m, opts...)
}

// WithCoalescing sets the service-wide request-coalescing policy: batches
// close at maxBatch buffered samples or after maxDelay from the first
// queued request.
func WithCoalescing(maxBatch int, maxDelay time.Duration) ServiceOption {
	return serve.WithCoalescing(maxBatch, maxDelay)
}

// WithReplicas sets the service-wide warm-pool size per endpoint
// (shorthand for WithScaling(FixedPool(n))).
func WithReplicas(n int) ServiceOption { return serve.WithReplicas(n) }

// WithAdmission sets the service-wide admission policy (default FIFO).
func WithAdmission(p AdmissionPolicy) ServiceOption { return serve.WithAdmission(p) }

// WithScaling sets the service-wide scaling policy (default FixedPool).
func WithScaling(p ScalingPolicy) ServiceOption { return serve.WithScaling(p) }

// WithRunConcurrency sets how many engine runs one replica may overlap
// (default 1); runs are isolated per run id on every channel.
func WithRunConcurrency(n int) ServiceOption { return serve.WithRunConcurrency(n) }

// WithChannel selects an endpoint's communication variant.
func WithChannel(k ChannelKind) EndpointOption { return serve.WithChannel(k) }

// WithWorkers sets an endpoint's FaaS worker parallelism (a partition
// plan is built automatically).
func WithWorkers(p int) EndpointOption { return serve.WithWorkers(p) }

// WithScheme selects the partitioning scheme for auto-built plans.
func WithScheme(s PartitionScheme) EndpointOption { return serve.WithScheme(s) }

// WithPlan supplies a pre-built partition plan for an endpoint.
func WithPlan(p *Plan) EndpointOption { return serve.WithPlan(p) }

// WithEndpointCoalescing overrides the coalescing policy per endpoint.
func WithEndpointCoalescing(maxBatch int, maxDelay time.Duration) EndpointOption {
	return serve.WithEndpointCoalescing(maxBatch, maxDelay)
}

// WithEndpointReplicas overrides the warm-pool size per endpoint.
func WithEndpointReplicas(n int) EndpointOption { return serve.WithEndpointReplicas(n) }

// WithEndpointAdmission overrides the admission policy per endpoint.
func WithEndpointAdmission(p AdmissionPolicy) EndpointOption {
	return serve.WithEndpointAdmission(p)
}

// WithEndpointScaling overrides the scaling policy per endpoint.
func WithEndpointScaling(p ScalingPolicy) EndpointOption { return serve.WithEndpointScaling(p) }

// WithEndpointRunConcurrency overrides the per-replica run concurrency per
// endpoint.
func WithEndpointRunConcurrency(n int) EndpointOption {
	return serve.WithEndpointRunConcurrency(n)
}

// Observability (internal/obs): a span tracer and metrics registry over
// simulated time. WithTracing turns both on; the tracer exports Chrome
// trace-event JSON (loadable in Perfetto or chrome://tracing, one track
// per replica, worker and KV shard) and a plain-text flame summary, the
// registry snapshots counters, gauges and log-linear latency histograms
// mid-replay. Sampling is keyed on the request's trace index, so the
// same workload at the same rate exports byte-identical traces whether
// it replays on one kernel, sharded across lanes, or streamed. With
// tracing off (the default) every hook is a single pointer check:
//
//	svc, _ := fsdinference.NewService(env, ..., fsdinference.WithTracing(100))
//	rep, _ := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 7})
//	f, _ := os.Create("trace.json")
//	svc.Tracer().WriteChrome(f)          // open in https://ui.perfetto.dev
//	svc.Tracer().WriteFlame(os.Stdout)   // where did simulated time go
//	svc.Metrics().WriteText(os.Stdout)   // counters, gauges, histograms
type (
	// Tracer records simulated-time spans; obtain one from
	// Service.Tracer after WithTracing.
	Tracer = obs.Tracer
	// TraceSpan is one finished interval of simulated time.
	TraceSpan = obs.Span
	// MetricsRegistry holds the service's counters, gauges and latency
	// histograms; obtain it from Service.Metrics.
	MetricsRegistry = obs.Registry
	// Metric is one snapshotted instrument.
	Metric = obs.Metric
	// LatencyHistogram is the bounded log-linear histogram behind both
	// the serving reports and the metrics registry.
	LatencyHistogram = obs.Histogram
)

// WithTracing enables the service's simulated-time tracer and metrics
// registry, sampling one in sampleEvery requests (<= 1 samples all).
func WithTracing(sampleEvery int) ServiceOption { return serve.WithTracing(sampleEvery) }

// Monitoring (internal/obs/monitor): a simulated-time SLO monitor over
// the metrics registry. WithMonitor schedules scrapes as kernel events on
// a fixed virtual-clock interval, folds each scrape into ring-buffered
// per-endpoint time-series (RPS, windowed p95/p99, queue depth, shed and
// reroute counts, KV failovers, pool size), evaluates multi-window
// burn-rate rules against the spec's SLOs, and — unless the spec is
// Passive — feeds firing pages back into the serving layer: an SLO
// endpoint re-plans immediately with a latency-biased objective and a
// fixed endpoint gets an emergency replica. Scrapes ride the kernel, so
// single, laned and streamed replays export byte-identical series and
// alert logs; with monitoring off every hook is one pointer check:
//
//	spec := fsdinference.MonitorSpec{
//		Interval: 30 * time.Second,
//		SLOs: []fsdinference.SLO{{
//			Name: "p99", Kind: fsdinference.LatencyQuantile,
//			Target: 250 * time.Millisecond, Window: 720 * time.Hour, Objective: 0.99,
//		}},
//	}
//	svc, _ := fsdinference.NewService(env, ..., fsdinference.WithMonitor(spec))
//	rep, _ := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 7})
//	svc.Monitor().WriteProm(os.Stdout)   // Prometheus-style text
//	svc.Monitor().WriteCSV(os.Stdout)    // per-window time-series
//	svc.Monitor().WriteAlerts(os.Stdout) // burn-rate alert transitions
type (
	// ServiceMonitor is the simulated-time SLO monitor; obtain one from
	// Service.Monitor after WithMonitor.
	ServiceMonitor = monitor.Monitor
	// MonitorSpec configures the monitor: scrape interval, SLOs,
	// burn-rate rules and the passive switch.
	MonitorSpec = monitor.Spec
	// SLO is one service-level objective the monitor alerts on.
	SLO = monitor.SLO
	// SLOKind selects what an SLO counts as a bad event.
	SLOKind = monitor.ObjectiveKind
	// BurnRule is one multi-window burn-rate alert rule.
	BurnRule = monitor.BurnRule
	// AlertEvent is one alert transition (a rule starting or stopping
	// to fire), stamped with its simulated window boundary.
	AlertEvent = monitor.AlertEvent
	// AlertSeverity ranks an alert: page or ticket.
	AlertSeverity = monitor.Severity
	// MonitorSample is one scraped window of an endpoint's time-series.
	MonitorSample = monitor.Sample
	// EndpointHealth is the monitor's per-endpoint health state.
	EndpointHealth = monitor.Health
)

// Re-exported monitor constants.
const (
	LatencyQuantile = monitor.LatencyQuantile
	Availability    = monitor.Availability
	PageAlert       = monitor.Page
	TicketAlert     = monitor.Ticket
)

// WithMonitor enables the simulated-time SLO monitor (and the metrics
// registry it scrapes) under the given spec.
func WithMonitor(spec MonitorSpec) ServiceOption { return serve.WithMonitor(spec) }

// DefaultBurnRules returns the classic multi-window pair: a fast 5m/1h
// page at 14.4× burn and a slow 30m/6h ticket at 6×.
func DefaultBurnRules() []BurnRule { return monitor.DefaultRules() }

// ParseSLO parses the fsdserve -slo flag syntax, e.g.
// "latency:p99<=250ms@0.99,endpoint=large" or "availability@0.999".
func ParseSLO(s string) (SLO, error) { return monitor.ParseSLO(s) }

// WithSLO lets an endpoint pick its channel and worker parallelism at
// deploy time via the workload-aware Planner, given latency/cost
// priorities, and re-plan when the observed workload drifts — batch width
// or arrival rate across the memory break-even, with the scheduler's live
// WorkloadProfile fed into Replan.
func WithSLO(o SLOOptions) EndpointOption { return serve.WithSLO(o) }

// WithDeployOverride mutates an endpoint's deployment configuration after
// defaults are applied (threads, polling, memory sizing).
func WithDeployOverride(mutate func(*Config)) EndpointOption {
	return serve.WithDeployOverride(mutate)
}

// Sporadic workload traces (paper §VI-C, Fig. 4).
type (
	// Query is one sporadic inference request in a trace.
	Query = workload.Query
	// PlatformCosts holds per-platform cost inputs for the Fig. 4
	// comparison.
	PlatformCosts = workload.PlatformCosts
	// CostRow is one point of the Fig. 4 daily-cost series.
	CostRow = workload.Row
	// TraceStream yields a workload trace incrementally for streaming
	// replay (Service.ReplayStream): million-query days never
	// materialise as one slice.
	TraceStream = workload.TraceStream
)

// WorkloadStream adapts an in-memory trace to a TraceStream, yielding it
// in batches of the given size (<= 0 yields the whole trace at once).
func WorkloadStream(trace []Query, batch int) TraceStream {
	return workload.Stream(trace, batch)
}

// DiurnalDay streams a day of total queries with a diurnal arrival
// profile (afternoon peak, pre-dawn trough) spread round-robin over the
// model sizes, in batches of batch queries, without materialising the
// trace. Deterministic in seed.
func DiurnalDay(total int, sizes []int, samplesPerQuery int, seed int64, batch int) TraceStream {
	return workload.DiurnalDay(total, sizes, samplesPerQuery, seed, batch)
}

// WorkloadDay generates a deterministic sporadic day of queries:
// totalSamples split into batches of samplesPerQuery, spread evenly over
// the model sizes, with seeded uniform-random arrival times.
func WorkloadDay(totalSamples int, sizes []int, samplesPerQuery int, seed int64) []Query {
	return workload.Day(totalSamples, sizes, samplesPerQuery, seed)
}

// DailyCosts evaluates the three platforms of Fig. 4 over a day of
// queries.
func DailyCosts(queries []Query, pc PlatformCosts) (CostRow, error) {
	return workload.DailyCosts(queries, pc)
}

// CostSeries evaluates daily costs across query volumes (the Fig. 4
// x-axis).
func CostSeries(volumes []int, sizes []int, samplesPerQuery int, pc PlatformCosts, seed int64) ([]CostRow, error) {
	return workload.Series(volumes, sizes, samplesPerQuery, pc, seed)
}

// CostCrossover returns the first volume at which FSD daily cost exceeds
// the always-on flat cost, or -1 if it never does.
func CostCrossover(rows []CostRow) int { return workload.Crossover(rows) }

// Workload-aware configuration planning (the extension the paper names in
// §VI-D1: runtime selection of the optimal configuration given latency and
// cost priorities, grown into one subsystem). A Planner enumerates
// candidates over the four channels, a worker grid and the provisioned
// store's node catalogue, prunes the grid with the §IV analytic cost model
// before simulated trials, and ranks the survivors under a pluggable
// objective. Plan scores an assumed workload; Replan re-scores an observed
// WorkloadProfile — the serving layer's scheduler emits one live, so under
// WithSLO the memory channel's idle billing is charged at the observed
// daily volume instead of one probe's share:
//
//	p, _ := fsdinference.NewPlanner(m, fsdinference.PlannerOptions{
//		Objective: fsdinference.CostObjective(),
//		Grid:      fsdinference.PlannerGrid{Workers: []int{8, 20}},
//	})
//	d, _ := p.Plan(fsdinference.WorkloadProfile{QueriesPerDay: 20})
//	fmt.Println(d.Best, d.Pruned, "of", d.Candidates, "pruned analytically")
//	d2, _ := p.Replan(fsdinference.WorkloadProfile{QueriesPerDay: 200000})
//	fmt.Println(d2.Changed, d2.Best) // sustained volume flips the channel
type (
	// Planner selects deployment configurations for one model.
	Planner = plan.Planner
	// PlannerOptions configures a Planner.
	PlannerOptions = plan.Options
	// PlannerGrid bounds the candidate enumeration (channels, worker
	// counts, provisioned-store node types).
	PlannerGrid = plan.Grid
	// PlanObjective ranks trialed candidates (lower score wins).
	PlanObjective = plan.Objective
	// PlanNorms carries the normalisation constants objectives score
	// against.
	PlanNorms = plan.Norms
	// WorkloadProfile describes an assumed or observed workload
	// (queries/day, batch width, arrival-rate EWMA, burstiness).
	WorkloadProfile = plan.WorkloadProfile
	// PlanDecision reports one Plan/Replan outcome: the pick, every
	// trial (pruned ones with reasons), the measured memory break-even
	// and whether the decision changed.
	PlanDecision = plan.Decision
	// PlanCandidate is one configuration the planner considers.
	PlanCandidate = plan.Candidate
	// PlanTrial is one candidate's analytic verdict or measured trial.
	PlanTrial = plan.Trial
	// ReplanEvent records one SLO-driven configuration change in a
	// ServiceReport.
	ReplanEvent = serve.ReplanEvent
)

// NewPlanner builds a workload-aware configuration planner for a model.
func NewPlanner(m *Model, opts PlannerOptions) (*Planner, error) { return plan.New(m, opts) }

// WeightedObjective blends normalised latency and cost at the given
// latency weight in [0,1] (the legacy AutoSelect objective).
func WeightedObjective(latencyWeight float64) PlanObjective {
	return plan.WeightedObjective(latencyWeight)
}

// LatencyObjective ranks candidates by probe latency alone.
func LatencyObjective() PlanObjective { return plan.LatencyObjective() }

// CostObjective ranks candidates by per-query cost alone, with the memory
// channel's node-hours amortised over the profile's daily volume.
func CostObjective() PlanObjective { return plan.CostObjective() }

// DeadlineObjective ranks deadline-feasible candidates by cost; the
// fastest candidate wins when none meets the deadline.
func DeadlineObjective(deadline time.Duration) PlanObjective {
	return plan.DeadlineObjective(deadline)
}

// Legacy one-shot selection, now a thin wrapper over the Planner: the
// weighted objective, no pre-filter, no workload profile — identical
// picks to the pre-Planner implementation.
type (
	// AutoSelectOptions tunes automatic configuration selection.
	AutoSelectOptions = plan.AutoSelectOptions
	// Selection reports the chosen configuration and trial measurements.
	Selection = plan.Selection
)

// AutoSelect trials serial/queue/object/memory candidates across a worker
// grid and returns the configuration minimising a weighted latency/cost
// objective. Workload-aware callers should prefer NewPlanner, whose
// Plan(WorkloadProfile) amortises provisioned idle billing over the
// observed daily volume.
func AutoSelect(m *Model, opts AutoSelectOptions) (*Selection, error) {
	return plan.AutoSelect(m, opts)
}

// DefaultWorkerMemoryMB returns the paper's worker sizing for a neuron
// count.
func DefaultWorkerMemoryMB(neurons int) int { return core.DefaultWorkerMemoryMB(neurons) }

// Baselines (paper §VI-A2, §VI-B).
type (
	// BaselineResult reports one baseline query.
	BaselineResult = baselines.Result
	// SageConfig models a commercial serverless inference endpoint.
	SageConfig = baselines.SageConfig
	// HSpFFConfig describes the simulated HPC cluster.
	HSpFFConfig = baselines.HSpFFConfig
	// LoadSource says where a server finds the model weights.
	LoadSource = baselines.LoadSource
)

// Model load sources for the always-on baseline.
const (
	FromMemory = baselines.FromMemory
	FromEBS    = baselines.FromEBS
	FromS3     = baselines.FromS3
)

// RunAlwaysOn serves one query on an always-on server.
func RunAlwaysOn(e *Env, m *Model, input *Dense, load LoadSource) (*BaselineResult, error) {
	return baselines.RunAlwaysOn(e, m, input, load)
}

// RunJobScoped provisions a right-sized server per query.
func RunJobScoped(e *Env, m *Model, input *Dense) (*BaselineResult, error) {
	return baselines.RunJobScoped(e, m, input)
}

// RunHSpFF runs the optimised HPC comparison system.
func RunHSpFF(e *Env, m *Model, plan *Plan, input *Dense, cfg HSpFFConfig) (*BaselineResult, error) {
	return baselines.RunHSpFF(e, m, plan, input, cfg)
}

// RunSageSL serves a batch through a constrained serverless endpoint.
func RunSageSL(e *Env, m *Model, input *Dense, cfg SageConfig) (*BaselineResult, error) {
	return baselines.RunSageSL(e, m, input, cfg)
}

// DefaultSageConfig returns the published endpoint limits.
func DefaultSageConfig() SageConfig { return baselines.DefaultSageConfig() }

// DefaultHSpFFConfig returns an InfiniBand-class cluster of the given size.
func DefaultHSpFFConfig(nodes int) HSpFFConfig { return baselines.DefaultHSpFFConfig(nodes) }

// Cost model (paper §IV).
type (
	// CostWorkload describes a workload for channel recommendation.
	CostWorkload = cost.Workload
	// CostAdvice is a channel recommendation with reasoning.
	CostAdvice = cost.Advice
)

// Recommend selects a communication channel per the paper's §IV-C design
// recommendations.
func Recommend(w CostWorkload) CostAdvice { return cost.Recommend(w) }

// MemoryDailyCost returns the provisioned memory store's flat daily spend
// for the workload under the default price catalogue — 24 node-hours,
// idle or busy, with no per-request term.
func MemoryDailyCost(w CostWorkload) float64 {
	return cost.MemoryDailyCost(pricing.Default(), w)
}

// MemoryBreakEvenQueriesPerDay returns the daily query volume above which
// the provisioned memory store undercuts the per-request channels.
func MemoryBreakEvenQueriesPerDay(w CostWorkload) int64 {
	return cost.MemoryBreakEvenQueriesPerDay(pricing.Default(), w)
}

// Experiments (paper §VI).
type (
	// Experiment is one registered table/figure regenerator.
	Experiment = experiments.Runner
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiments.Table
	// ExperimentScale configures the evaluation grid.
	ExperimentScale = experiments.Scale
	// ExperimentLab caches artifacts across experiments.
	ExperimentLab = experiments.Lab
)

// Experiments lists every table/figure regenerator in paper order.
func Experiments() []Experiment { return experiments.Registry() }

// FindExperiment returns the runner with the given id ("fig4", "table2"...).
func FindExperiment(id string) (Experiment, bool) { return experiments.Find(id) }

// NewExperimentLab builds a lab for the given scale.
func NewExperimentLab(s ExperimentScale) *ExperimentLab { return experiments.NewLab(s) }

// DefaultExperimentScale is the standard scaled evaluation grid.
func DefaultExperimentScale() ExperimentScale { return experiments.DefaultScale() }

// QuickExperimentScale is a reduced grid for fast runs.
func QuickExperimentScale() ExperimentScale { return experiments.QuickScale() }
