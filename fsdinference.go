// Package fsdinference is a faithful reproduction of FSD-Inference (Oakley
// & Ferhatosmanoglu, ICDE 2024): fully serverless distributed DNN inference
// with scalable cloud communication, together with the complete simulated
// cloud substrate it runs on.
//
// The package exposes the library's public surface; implementations live in
// internal packages. A minimal session:
//
//	m, _ := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(1024, 120, 1))
//	plan, _ := fsdinference.BuildPlan(m, 20, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
//	d, _ := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
//		Model: m, Plan: plan, Channel: fsdinference.Queue,
//	})
//	input := fsdinference.GenerateInputs(1024, 64, 0.2, 2)
//	res, _ := d.Infer(input)
//	fmt.Println(res.Latency, res.Cost.Total())
//
// Everything runs on a deterministic discrete-event simulation of AWS-like
// services (Lambda, SNS, SQS, S3, EC2): latencies are virtual, costs are
// metered from billed requests, and the sparse math executes for real so
// outputs can be checked against Reference.
package fsdinference

import (
	"fsdinference/internal/baselines"
	"fsdinference/internal/cloud/env"
	"fsdinference/internal/core"
	"fsdinference/internal/cost"
	"fsdinference/internal/experiments"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
	"fsdinference/internal/sparse"
)

// Model building blocks.
type (
	// Model is a sparse DNN (Graph Challenge-style).
	Model = model.Model
	// ModelSpec describes a synthetic sparse DNN.
	ModelSpec = model.Spec
	// Dense is a dense activation matrix (rows = neurons, cols = samples).
	Dense = sparse.Dense
	// CSR is a compressed sparse row weight matrix.
	CSR = sparse.CSR
)

// GraphChallengeSpec returns the paper's benchmark configuration for a
// neuron count and layer count.
func GraphChallengeSpec(neurons, layers int, seed int64) ModelSpec {
	return model.GraphChallengeSpec(neurons, layers, seed)
}

// GenerateModel builds a deterministic synthetic sparse DNN.
func GenerateModel(spec ModelSpec) (*Model, error) { return model.Generate(spec) }

// GenerateInputs builds a batch of thresholded sparse inputs.
func GenerateInputs(neurons, batch int, density float64, seed int64) *Dense {
	return model.GenerateInputs(neurons, batch, density, seed)
}

// Reference runs serial float64 inference as ground truth.
func Reference(m *Model, input *Dense) *Dense { return model.Reference(m, input) }

// OutputsClose compares activation matrices within a tolerance.
func OutputsClose(a, b *Dense, tol float64) bool { return model.OutputsClose(a, b, tol) }

// Partitioning.
type (
	// Plan is an offline model partitioning across P workers.
	Plan = partition.Plan
	// PartitionScheme selects Block, Random (RP) or HGPDNN.
	PartitionScheme = partition.Scheme
	// PartitionOptions controls plan construction.
	PartitionOptions = partition.Options
)

// Partitioning schemes (paper §III, Table III).
const (
	Block  = partition.Block
	Random = partition.Random
	HGPDNN = partition.HGPDNN
)

// BuildPlan partitions a model across the given worker count.
func BuildPlan(m *Model, workers int, scheme PartitionScheme, opts PartitionOptions) (*Plan, error) {
	return partition.BuildPlan(m, workers, scheme, opts)
}

// Simulated cloud environment.
type (
	// Env is one simulated cloud region (Lambda, SNS, SQS, S3, EC2).
	Env = env.Env
	// EnvConfig collects per-service configurations.
	EnvConfig = env.Config
)

// NewEnv builds an environment with calibrated AWS-like defaults.
func NewEnv() *Env { return env.NewDefault() }

// NewEnvWith builds an environment from a custom configuration.
func NewEnvWith(cfg EnvConfig) *Env { return env.New(cfg) }

// DefaultEnvConfig returns the calibrated defaults for customisation.
func DefaultEnvConfig() EnvConfig { return env.DefaultConfig() }

// The FSD-Inference engine.
type (
	// Config describes one FSD-Inference deployment.
	Config = core.Config
	// Deployment is a deployed FSD-Inference application.
	Deployment = core.Deployment
	// Result reports one inference request.
	Result = core.Result
	// WorkerMetrics reports one worker's activity.
	WorkerMetrics = core.WorkerMetrics
	// ChannelKind selects the communication variant.
	ChannelKind = core.ChannelKind
	// LaunchMode selects the worker-tree launch mechanism.
	LaunchMode = core.LaunchMode
)

// Communication variants (paper §III).
const (
	Serial = core.Serial
	Queue  = core.Queue
	Object = core.Object
)

// Launch mechanisms (paper §III and the launch ablation).
const (
	Hierarchical = core.Hierarchical
	Centralized  = core.Centralized
	TwoLevel     = core.TwoLevel
)

// Deploy validates a configuration, stages the model and creates all
// communication resources and functions.
func Deploy(e *Env, cfg Config) (*Deployment, error) { return core.Deploy(e, cfg) }

// Automatic configuration selection (the extension the paper names in
// §VI-D1: runtime selection of the optimal configuration given latency and
// cost priorities).
type (
	// AutoSelectOptions tunes automatic configuration selection.
	AutoSelectOptions = core.AutoSelectOptions
	// Selection reports the chosen configuration and trial measurements.
	Selection = core.Selection
)

// AutoSelect trials serial/queue/object candidates across a worker grid and
// returns the configuration minimising a weighted latency/cost objective.
func AutoSelect(m *Model, opts AutoSelectOptions) (*Selection, error) {
	return core.AutoSelect(m, opts)
}

// DefaultWorkerMemoryMB returns the paper's worker sizing for a neuron
// count.
func DefaultWorkerMemoryMB(neurons int) int { return core.DefaultWorkerMemoryMB(neurons) }

// Baselines (paper §VI-A2, §VI-B).
type (
	// BaselineResult reports one baseline query.
	BaselineResult = baselines.Result
	// SageConfig models a commercial serverless inference endpoint.
	SageConfig = baselines.SageConfig
	// HSpFFConfig describes the simulated HPC cluster.
	HSpFFConfig = baselines.HSpFFConfig
	// LoadSource says where a server finds the model weights.
	LoadSource = baselines.LoadSource
)

// Model load sources for the always-on baseline.
const (
	FromMemory = baselines.FromMemory
	FromEBS    = baselines.FromEBS
	FromS3     = baselines.FromS3
)

// RunAlwaysOn serves one query on an always-on server.
func RunAlwaysOn(e *Env, m *Model, input *Dense, load LoadSource) (*BaselineResult, error) {
	return baselines.RunAlwaysOn(e, m, input, load)
}

// RunJobScoped provisions a right-sized server per query.
func RunJobScoped(e *Env, m *Model, input *Dense) (*BaselineResult, error) {
	return baselines.RunJobScoped(e, m, input)
}

// RunHSpFF runs the optimised HPC comparison system.
func RunHSpFF(e *Env, m *Model, plan *Plan, input *Dense, cfg HSpFFConfig) (*BaselineResult, error) {
	return baselines.RunHSpFF(e, m, plan, input, cfg)
}

// RunSageSL serves a batch through a constrained serverless endpoint.
func RunSageSL(e *Env, m *Model, input *Dense, cfg SageConfig) (*BaselineResult, error) {
	return baselines.RunSageSL(e, m, input, cfg)
}

// DefaultSageConfig returns the published endpoint limits.
func DefaultSageConfig() SageConfig { return baselines.DefaultSageConfig() }

// DefaultHSpFFConfig returns an InfiniBand-class cluster of the given size.
func DefaultHSpFFConfig(nodes int) HSpFFConfig { return baselines.DefaultHSpFFConfig(nodes) }

// Cost model (paper §IV).
type (
	// CostWorkload describes a workload for channel recommendation.
	CostWorkload = cost.Workload
	// CostAdvice is a channel recommendation with reasoning.
	CostAdvice = cost.Advice
)

// Recommend selects a communication channel per the paper's §IV-C design
// recommendations.
func Recommend(w CostWorkload) CostAdvice { return cost.Recommend(w) }

// Experiments (paper §VI).
type (
	// Experiment is one registered table/figure regenerator.
	Experiment = experiments.Runner
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiments.Table
	// ExperimentScale configures the evaluation grid.
	ExperimentScale = experiments.Scale
	// ExperimentLab caches artifacts across experiments.
	ExperimentLab = experiments.Lab
)

// Experiments lists every table/figure regenerator in paper order.
func Experiments() []Experiment { return experiments.Registry() }

// FindExperiment returns the runner with the given id ("fig4", "table2"...).
func FindExperiment(id string) (Experiment, bool) { return experiments.Find(id) }

// NewExperimentLab builds a lab for the given scale.
func NewExperimentLab(s ExperimentScale) *ExperimentLab { return experiments.NewLab(s) }

// DefaultExperimentScale is the standard scaled evaluation grid.
func DefaultExperimentScale() ExperimentScale { return experiments.DefaultScale() }

// QuickExperimentScale is a reduced grid for fast runs.
func QuickExperimentScale() ExperimentScale { return experiments.QuickScale() }
