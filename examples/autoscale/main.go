// Autoscaling versus a fixed replica pool: replay the same sporadic day —
// mostly idle, with one clustered evening burst — through two identically
// configured services that differ only in scaling policy, and measure
// what the elasticity claim actually buys: provisioned replica-hours drop
// with the workload while tail latency holds, because the pool grows for
// the burst and shrinks back through the idle hours.
//
// The deadline-aware admission policy rides along: the burst is also
// replayed with per-query deadlines, showing how work that cannot meet
// its deadline is shed instead of dragging the tail.
package main

import (
	"fmt"
	"log"
	"time"

	"fsdinference"
)

const (
	neurons = 256
	layers  = 12
	batch   = 16
)

// trace is a sporadic day with an evening burst of closely spaced queries.
func trace() []fsdinference.Query {
	day := fsdinference.WorkloadDay(60*batch, []int{neurons}, batch, 7)
	for i := 0; i < 100; i++ {
		day = append(day, fsdinference.Query{
			At:      19*time.Hour + time.Duration(i)*20*time.Millisecond,
			Neurons: neurons,
			Samples: batch,
		})
	}
	return day
}

func replay(m *fsdinference.Model, scaling fsdinference.ScalingPolicy,
	admission fsdinference.AdmissionPolicy, submit func(int, fsdinference.Query) fsdinference.SubmitOptions,
) *fsdinference.ServiceReport {
	svc, err := fsdinference.NewService(fsdinference.NewEnv(),
		fsdinference.WithEndpoint("ep", m),
		fsdinference.WithCoalescing(4*batch, 100*time.Millisecond),
		fsdinference.WithScaling(scaling),
		fsdinference.WithAdmission(admission),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := svc.Replay(trace(), fsdinference.ReplayOptions{Seed: 11, Submit: submit})
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(neurons, layers, 1))
	if err != nil {
		log.Fatal(err)
	}

	fixed := replay(m, fsdinference.FixedPool(3), fsdinference.FIFO(), nil)
	auto := replay(m, fsdinference.Autoscaler(fsdinference.AutoscalerOptions{Min: 1, Max: 3}),
		fsdinference.FIFO(), nil)

	fmt.Printf("%-22s  %14s  %12s  %10s  %10s  %12s\n",
		"scaling", "replica-hours", "metered $", "p50", "p95", "scale up/dn")
	row := func(name string, r *fsdinference.ServiceReport) {
		ep := r.Endpoints[0]
		fmt.Printf("%-22s  %14.2f  %12.4f  %10v  %10v  %7d/%d\n",
			name, ep.ReplicaSeconds/3600, r.TotalCost.Total(),
			r.Latency.P50.Round(time.Millisecond), r.Latency.P95.Round(time.Millisecond),
			ep.ScaleUps, ep.ScaleDowns)
	}
	row("fixed(3)", fixed)
	row("autoscale(1..3)", auto)
	fe, ae := fixed.Endpoints[0], auto.Endpoints[0]
	fmt.Printf("\nautoscaling provisioned %.1fx fewer replica-hours (%.2f vs %.2f) at p95 %v vs %v\n",
		fe.ReplicaSeconds/ae.ReplicaSeconds, ae.ReplicaSeconds/3600, fe.ReplicaSeconds/3600,
		auto.Latency.P95.Round(time.Millisecond), fixed.Latency.P95.Round(time.Millisecond))

	// Deadline-aware admission: every query carries a 2 s completion
	// budget. On a starved fixed pool of one replica the evening burst
	// queues up and the policy sheds (ErrShed) the work that can no
	// longer meet its deadline instead of serving uselessly late answers;
	// the autoscaler grows through the burst and serves everything.
	deadline := func(int, fsdinference.Query) fsdinference.SubmitOptions {
		return fsdinference.SubmitOptions{Deadline: 2 * time.Second}
	}
	starved := replay(m, fsdinference.FixedPool(1), fsdinference.DeadlineAdmission(false), deadline)
	elastic := replay(m, fsdinference.Autoscaler(fsdinference.AutoscalerOptions{Min: 1, Max: 3}),
		fsdinference.DeadlineAdmission(false), deadline)
	fmt.Printf("\nwith 2s deadlines: fixed(1) served %d and shed %d; autoscale served %d and shed %d\n",
		starved.Queries-starved.Failed, starved.Endpoints[0].Shed,
		elastic.Queries-elastic.Failed, elastic.Endpoints[0].Shed)

	fmt.Println()
	fmt.Print(auto)
}
