package main

import (
	"testing"
	"time"
)

// TestMillionDayUnderBudget replays the full one-million-query day and
// holds it to a wall-clock budget: at the gated 100k queries/sec the day
// takes ten seconds, so ninety seconds means the streaming engine has
// catastrophically regressed (or fallen back to materialising the trace)
// even on a slow CI runner.
func TestMillionDayUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full million-query replay; skipped with -short")
	}
	const total = 1_000_000
	rep, wall, err := replayMillion(total)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != total || rep.Failed != 0 {
		t.Fatalf("replayed %d queries, %d failed; want %d and none", rep.Queries, rep.Failed, total)
	}
	if budget := 90 * time.Second; wall > budget {
		t.Fatalf("million-query day took %v wall-clock, budget %v", wall, budget)
	}
	t.Logf("replayed %d queries in %v (%.0f queries/sec)",
		rep.Queries, wall.Round(time.Millisecond), float64(rep.Queries)/wall.Seconds())
}
