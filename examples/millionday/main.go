// Million-query day: replay a one-million-query diurnal trace end-to-end
// through a Service in bounded memory. The trace is generated as a stream
// (DiurnalDay), submitted just-in-time as virtual time reaches each batch
// (ReplayStream), and folded into the report incrementally — the full day
// never exists as a slice of queries, handles or latency samples. The
// program prints the sustained replay throughput in queries per second of
// wall-clock time alongside the simulated day's own stats.
package main

import (
	"fmt"
	"log"
	"time"

	"fsdinference"
	"fsdinference/internal/core"
	"fsdinference/internal/serve"
)

// replayMillion streams a diurnal day of total queries through a fresh
// single-endpoint service and returns the report with the wall-clock the
// replay took. Split out so the example's test can hold it to a budget.
func replayMillion(total int) (*fsdinference.ServiceReport, time.Duration, error) {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(64, 2, 1))
	if err != nil {
		return nil, 0, err
	}
	// Compression is the data plane's concern; the example measures the
	// replay engine, so the endpoint ships raw payloads.
	svc, err := fsdinference.NewService(fsdinference.NewEnv(),
		fsdinference.WithEndpoint("m64", m,
			serve.WithDeployOverride(func(c *core.Config) { c.Compress = false })),
		fsdinference.WithCoalescing(4096, 5*time.Minute),
	)
	if err != nil {
		return nil, 0, err
	}
	//simlint:allow walltime — measures how long the host took to run the replay (the example's headline number); the simulated day itself is kernel time
	start := time.Now()
	rep, err := svc.ReplayStream(
		fsdinference.DiurnalDay(total, []int{64}, 1, 7, 8192),
		fsdinference.ReplayOptions{Seed: 11})
	if err != nil {
		return nil, 0, err
	}
	//simlint:allow walltime — host-side wall duration of the replay, reported alongside the simulated results
	return rep, time.Since(start), nil
}

func main() {
	const total = 1_000_000
	rep, wall, err := replayMillion(total)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d queries (%d failed) in %v wall-clock: %.0f queries/sec\n",
		rep.Queries, rep.Failed, wall.Round(time.Millisecond),
		float64(rep.Queries)/wall.Seconds())
	fmt.Printf("simulated day: horizon %v, p50 %v, p99 %v, metered $%.2f\n",
		rep.Horizon.Round(time.Second), rep.Latency.P50.Round(time.Millisecond),
		rep.Latency.P99.Round(time.Millisecond), rep.TotalCost.Total())
}
