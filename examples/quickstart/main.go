// Quickstart: generate a sparse DNN, deploy FSD-Inference on the simulated
// cloud, run one request on each variant and verify the outputs against
// reference inference.
package main

import (
	"fmt"
	"log"

	"fsdinference"
)

func main() {
	const (
		neurons = 512
		layers  = 12
		workers = 8
		batch   = 32
	)
	fmt.Printf("generating a %d-neuron, %d-layer Graph Challenge-style sparse DNN\n", neurons, layers)
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(neurons, layers, 1))
	if err != nil {
		log.Fatal(err)
	}
	input := fsdinference.GenerateInputs(neurons, batch, 0.2, 2)
	want := fsdinference.Reference(m, input)

	plan, err := fsdinference.BuildPlan(m, workers, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	for _, kind := range []fsdinference.ChannelKind{
		fsdinference.Serial, fsdinference.Queue, fsdinference.Object,
	} {
		cfg := fsdinference.Config{Model: m, Channel: kind}
		if kind != fsdinference.Serial {
			cfg.Plan = plan
		}
		d, err := fsdinference.Deploy(fsdinference.NewEnv(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Infer(input)
		if err != nil {
			log.Fatal(err)
		}
		ok := fsdinference.OutputsClose(res.Output, want, 1e-2)
		fmt.Printf("\n%-16s P=%-2d latency=%-14v per-sample=%-12v cost=$%.6f verified=%v\n",
			kind, cfg.Workers(), res.Latency, res.PerSample(), res.Cost.Total(), ok)
		fmt.Printf("  %s\n", res.Cost)
		if !ok {
			log.Fatal("output mismatch")
		}
	}
	fmt.Println("\nall three variants agree with reference inference")
}
