// SLO monitoring: close the loop from burn-rate alerts to control. A
// flash-crowd trace — a quiet morning, then a sustained crowd that
// saturates the cost-picked queue channel — replays twice under the same
// simulated-time monitor. The passive arm only observes: its re-plan
// waits for the scheduler's break-even drift trigger, gated on MinRuns
// completed runs. The active arm subscribes the planner to the alert
// sink, so the first firing page re-plans immediately with a
// latency-biased objective and flips the endpoint to the provisioned
// memory channel while the backlog is still shallow.
//
// The example renders the firing timeline: one row per scrape window
// showing requests, p95, queue depth, per-window health and the alert /
// re-plan marks, followed by the alert logs and the headline number —
// simulated time in SLO violation for each arm.
//
// Scrapes are kernel events, so the series and alert log are
// byte-identical across runs and replay modes at the same seed.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"fsdinference"
)

func main() {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 12, 1))
	if err != nil {
		log.Fatal(err)
	}

	// Flash crowd: 10 quiet minutes at one query per 30s, then four
	// minutes at 1.25 queries/s — beyond the queue channel's ~0.8 req/s
	// but within the memory channel's reach — and a tail for the drain.
	var trace []fsdinference.Query
	add := func(at time.Duration) {
		trace = append(trace, fsdinference.Query{At: at, Neurons: 256, Samples: 4})
	}
	for i := 0; i < 20; i++ {
		add(time.Duration(i) * 30 * time.Second)
	}
	crowd := 10 * time.Minute
	for i := 0; i < 300; i++ {
		add(crowd + time.Duration(i)*800*time.Millisecond)
	}
	for i := 0; i < 12; i++ {
		add(14*time.Minute + 30*time.Second + time.Duration(i)*30*time.Second)
	}

	run := func(passive bool) *fsdinference.ServiceMonitor {
		svc, err := fsdinference.NewService(fsdinference.NewEnv(),
			fsdinference.WithEndpoint("slo", m, fsdinference.WithSLO(fsdinference.SLOOptions{
				LatencyWeight: 0, // cost pick: the quiet morning chooses queue
				Channels:      []fsdinference.ChannelKind{fsdinference.Queue, fsdinference.Memory},
				Workers:       []int{2},
				ProbeBatch:    4,
				MinRuns:       64, // the drift trigger's anti-flap gate
			})),
			fsdinference.WithCoalescing(4, 0),
			fsdinference.WithMonitor(fsdinference.MonitorSpec{
				Interval: 15 * time.Second,
				SLOs: []fsdinference.SLO{{
					Name: "lat-p95", Endpoint: "slo", Kind: fsdinference.LatencyQuantile,
					Target: 4 * time.Second, Window: 24 * time.Hour, Objective: 0.99,
				}},
				Passive: passive,
			}),
		)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}

		arm := "alert-driven"
		if passive {
			arm = "drift-only (passive monitor)"
		}
		fmt.Printf("=== %s ===\n", arm)
		mon := svc.Monitor()
		type replanMark struct {
			at  time.Duration
			txt string
		}
		var replans []replanMark
		for _, ev := range rep.Endpoints[0].Replans {
			replans = append(replans, replanMark{ev.At,
				fmt.Sprintf("replan %v->%v (%s)", ev.From, ev.To, ev.Reason)})
			fmt.Printf("replan at %7v: %v->%v — %s\n", ev.At, ev.From, ev.To, ev.Reason)
		}
		alerts := map[int][]string{}
		for _, ev := range mon.Alerts() {
			verb := "resolve"
			if ev.Firing {
				verb = "FIRE"
			}
			alerts[int(ev.At/(15*time.Second))] = append(alerts[int(ev.At/(15*time.Second))],
				fmt.Sprintf("%s %s %s", verb, ev.Severity, ev.SLO))
		}

		fmt.Println("\nwindow    span       req   p95        depth  health     events")
		for _, s := range mon.Series("slo") {
			marks := ""
			for _, a := range alerts[s.Window] {
				marks += " [" + a + "]"
			}
			// A re-plan lands between scrape boundaries; attach it to the
			// window that contains it.
			for _, r := range replans {
				if r.at > s.Start && r.at <= s.End {
					marks += " [" + r.txt + "]"
				}
			}
			if s.Requests == 0 && marks == "" {
				continue // quiet window, nothing to show
			}
			fmt.Printf("w%03d  %5v-%5v  %4d  %-9v  %5.0f  %-9v %s\n",
				s.Window, s.Start, s.End, s.Requests,
				s.P95.Round(time.Millisecond), s.QueueDepth, s.Health, marks)
		}

		fmt.Println("\nalert log:")
		if err := mon.WriteAlerts(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntime in SLO violation: %v\n\n", mon.TimeInViolation("slo", "lat-p95"))
		return mon
	}

	passive := run(true)
	active := run(false)
	fmt.Printf("alert-driven control cut time-in-violation from %v to %v\n",
		passive.TimeInViolation("slo", "lat-p95"),
		active.TimeInViolation("slo", "lat-p95"))
}
