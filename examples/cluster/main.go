// Cluster (the §II-D memory store grown to its real multi-node shape):
// the Memory channel's provisioned store is a Redis-Cluster-style
// sharded, replicated deployment. This example measures the two sides of
// the new scenario axis:
//
//   - throughput: one node pins at its request-rate ceiling; hashing the
//     16384-slot keyspace across N primary shards serves ~N times it;
//   - availability vs cost: a mid-run node kill loses in-flight inbox
//     values at R=0/R=1 — the run completes only by re-sending from
//     sender buffers through the failover stall — while R=2's quorum
//     writes hide the failure entirely, at replica node-hour prices.
package main

import (
	"fmt"
	"log"
	"time"

	"fsdinference"
)

func main() {
	const nodeType = "cache.t3.small" // smallest catalogue node: 40k ops/s
	fmt.Println("aggregate throughput vs shard count (offered load >> one node's ceiling):")
	fmt.Printf("%8s  %12s  %14s\n", "shards", "ops/s", "vs 1-node cap")
	for _, shards := range []int{1, 2, 4} {
		ops := fsdinference.MeasureClusterThroughput(shards, nodeType)
		fmt.Printf("%8d  %12.0f  %13.2fx\n", shards, ops, ops/40000)
	}
	fmt.Println("each shard enforces its own limiter: the channel's ceiling scales with KVNodes")

	// Mid-run failover across the availability ladder: the same
	// inference request on a 2-shard deployment, shard 0 killed at
	// t=1.8s — while worker 0's layer-0 rows sit parked in inboxes of
	// still-launching workers, inside the 300ms replication lag.
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fsdinference.BuildPlan(m, 4, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	input := fsdinference.GenerateInputs(256, 8, 0.2, 2)

	fmt.Printf("\nmid-run KillNode on a 2-shard deployment (2s failover window):\n")
	fmt.Printf("%16s  %12s  %6s  %8s  %10s  %12s\n",
		"replicas/shard", "latency", "lost", "re-sent", "KV $", "replica $")
	for _, replicas := range []int{0, 1, 2} {
		e := fsdinference.NewEnv()
		d, err := fsdinference.Deploy(e, fsdinference.Config{
			Model: m, Plan: plan, Channel: fsdinference.Memory,
			KVNodes: 2, KVReplicas: replicas, KVNodeType: nodeType,
			KVFailoverWindow: 2 * time.Second,
			KVReplicationLag: 300 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		e.K.At(1800*time.Millisecond, func() {
			if err := d.KVCluster().KillNode(0); err != nil {
				log.Fatal(err)
			}
		})
		res, err := d.Infer(input)
		if err != nil {
			log.Fatal(err)
		}
		var resent int64
		for _, w := range res.Workers {
			resent += w.Resends
		}
		fmt.Printf("%16d  %12v  %6d  %8d  %10.4f  %12.4f\n",
			replicas, res.Latency.Round(time.Millisecond),
			e.Meter.KVLostValues, resent, res.Cost.KV, res.Cost.KVReplica)
	}
	fmt.Println("R=0 loses the shard's parked values, R=1 the async-replication pipe — both re-send;")
	fmt.Println("R=2's quorum writes lose nothing: the failure costs only the stall and replica node-hours")

	// The planner reaches the sharded candidate on its own: a sustained
	// volume past one node's op ceiling prunes the single node as
	// saturated, and the 2-shard memory cluster wins the cost objective.
	planner, err := fsdinference.NewPlanner(m, fsdinference.PlannerOptions{
		Objective: fsdinference.CostObjective(),
		Grid: fsdinference.PlannerGrid{
			Channels:    []fsdinference.ChannelKind{fsdinference.Queue, fsdinference.Memory},
			Workers:     []int{8},
			KVNodeTypes: []string{nodeType},
			KVNodes:     []int{1, 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := planner.Plan(fsdinference.WorkloadProfile{QueriesPerDay: 8_000_000, BatchSamples: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner at 8M queries/day: picked %v (%d of %d candidates pruned)\n",
		dec.Best, dec.Pruned, dec.Candidates)
	for _, tr := range dec.Trials {
		if tr.Pruned {
			fmt.Printf("  pruned %v: %s\n", tr.Candidate, tr.PruneReason)
		}
	}
}
