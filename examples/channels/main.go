// Channels (paper §III-A/B, §VI-D and the §II-D memory-store tradeoff):
// compare the three fully serverless communication channels across worker
// parallelism. Object storage bills per request so its cost climbs
// linearly with P; the queue channel's packed publishes grow far more
// slowly; the provisioned memory store answers in fractions of a
// millisecond and carries no per-request price at all — its bill is
// node-hours that accrue idle or busy, which makes it the cheapest
// channel under sustained load and the most expensive on a sporadic day.
package main

import (
	"fmt"
	"log"

	"fsdinference"
)

func main() {
	const (
		neurons = 512
		layers  = 8
		batch   = 32
	)
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(neurons, layers, 1))
	if err != nil {
		log.Fatal(err)
	}
	input := fsdinference.GenerateInputs(neurons, batch, 0.2, 2)

	fmt.Printf("%4s  %-14s  %14s  %10s  %12s  %12s\n",
		"P", "channel", "per-sample", "comms $", "API calls", "bytes")
	perRun := map[fsdinference.ChannelKind]float64{}
	for _, workers := range []int{4, 8, 16, 32} {
		plan, err := fsdinference.BuildPlan(m, workers, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		for _, kind := range []fsdinference.ChannelKind{fsdinference.Queue, fsdinference.Object, fsdinference.Memory} {
			d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
				Model: m, Plan: plan, Channel: kind,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := d.Infer(input)
			if err != nil {
				log.Fatal(err)
			}
			api := res.Usage.SQSRequests() + res.Usage.SNSBilledPublishes +
				res.Usage.S3PutCalls + res.Usage.S3GetCalls + res.Usage.S3ListCalls +
				res.Usage.KVOps
			fmt.Printf("%4d  %-14s  %14v  %10.6f  %12d  %12d\n",
				workers, kind, res.PerSample(), res.Cost.Comms(), api, res.TotalBytesSent())
			perRun[kind] = res.Cost.Comms()
		}
	}
	fmt.Println("\nqueue costs grow slowly with P; object costs climb ~linearly (paper §VI-D1);")
	fmt.Println("memory is fastest at every P — its per-run $ is almost entirely the provisioned-node billing floor")

	// The provisioned-versus-per-request regimes: queue and object spend
	// scales with daily volume; the memory node bills 24 flat hours.
	memDaily := fsdinference.MemoryDailyCost(fsdinference.CostWorkload{})
	fmt.Printf("\n%-22s  %12s  %12s  %12s\n", "daily volume", "queue $", "object $", "memory $")
	for _, q := range []float64{20, 200_000} {
		fmt.Printf("%-22.0f  %12.4f  %12.4f  %12.4f\n",
			q, perRun[fsdinference.Queue]*q, perRun[fsdinference.Object]*q, memDaily)
	}
	fmt.Println("\nsporadic days pay the memory node to sit idle (the paper's reason to rule it out);")
	fmt.Println("sustained load amortises it below every per-request channel")
}
