// Channels (paper §III-A/B, §VI-D): trade off the two fully serverless
// communication channels — pub-sub/queueing versus object storage — across
// worker parallelism, reproducing the Fig. 6 cost behaviour: object storage
// bills per request so its cost climbs linearly with P, while the queue
// channel's packed publishes grow far more slowly.
package main

import (
	"fmt"
	"log"

	"fsdinference"
)

func main() {
	const (
		neurons = 512
		layers  = 8
		batch   = 32
	)
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(neurons, layers, 1))
	if err != nil {
		log.Fatal(err)
	}
	input := fsdinference.GenerateInputs(neurons, batch, 0.2, 2)

	fmt.Printf("%4s  %-10s  %14s  %10s  %12s  %12s\n",
		"P", "channel", "per-sample", "comms $", "API calls", "bytes")
	for _, workers := range []int{4, 8, 16, 32} {
		plan, err := fsdinference.BuildPlan(m, workers, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		for _, kind := range []fsdinference.ChannelKind{fsdinference.Queue, fsdinference.Object} {
			d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
				Model: m, Plan: plan, Channel: kind,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := d.Infer(input)
			if err != nil {
				log.Fatal(err)
			}
			api := res.Usage.SQSRequests() + res.Usage.SNSBilledPublishes +
				res.Usage.S3PutCalls + res.Usage.S3GetCalls + res.Usage.S3ListCalls
			fmt.Printf("%4d  %-10s  %14v  %10.6f  %12d  %12d\n",
				workers, kind, res.PerSample(), res.Cost.Comms(), api, res.TotalBytesSent())
		}
	}
	fmt.Println("\nqueue costs grow slowly with P; object costs climb ~linearly (paper §VI-D1)")
}
