// Collectives and the size-aware hybrid channel: the closing barrier +
// allreduce under the flat (paper-original), binomial-tree and ring
// topologies as worker parallelism grows, then the Hybrid channel on a
// mixed small-control/bulk-tensor exchange. Flat funnels everything
// through one root, which frames and ships the combined result once per
// target, so its collectives grow linearly with P; the tree finishes in
// ceil(log2 P) rounds and the ring forwards exactly one contribution per
// rank per round. The hybrid channel rides the in-memory store for small
// control values and parks bulk tensors in object storage behind inline
// pointers, so the provisioned node only has to hold control traffic.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"fsdinference"
)

func main() {
	const (
		neurons = 1024
		layers  = 12
		batch   = 512
	)
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(neurons, layers, 1))
	if err != nil {
		log.Fatal(err)
	}
	input := fsdinference.GenerateInputs(neurons, batch, 0.2, 2)

	// Part 1: topology scaling. AllreduceOutput makes the closing reduce
	// a true allreduce — every worker materialises the result — which is
	// the regime the flat root handles worst.
	fmt.Printf("%4s  %-6s  %16s  %14s\n", "P", "algo", "barrier+reduce", "per-sample")
	for _, workers := range []int{8, 16, 32} {
		plan, err := fsdinference.BuildPlan(m, workers, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		for _, alg := range []fsdinference.CollectiveAlgorithm{
			fsdinference.FlatCollective, fsdinference.TreeCollective, fsdinference.RingCollective,
		} {
			d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
				Model: m, Plan: plan, Channel: fsdinference.Memory,
				Collective: alg, AllreduceOutput: true, Compress: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := d.Infer(input)
			if err != nil {
				log.Fatal(err)
			}
			var worst time.Duration
			for _, w := range res.Workers {
				if t := w.BarrierTime + w.ReduceTime; t > worst {
					worst = t
				}
			}
			fmt.Printf("%4d  %-6s  %16v  %14v\n", workers, alg, worst.Round(time.Millisecond), res.PerSample())
		}
	}
	fmt.Println("\nflat grows linearly with P; tree grows with log2(P); ring barely grows at all")

	// Part 2: the hybrid channel. The usage meter shows the split: small
	// values ride the store inline, bulk tensors become object-storage
	// chunks, and the per-collective counters record which topologies ran.
	plan, err := fsdinference.BuildPlan(m, 8, fsdinference.HGPDNN, fsdinference.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
		Model: m, Plan: plan, Channel: fsdinference.Hybrid,
		Collective: fsdinference.AutoCollective,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Infer(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid x8: per-sample %v, comms $%.6f\n", res.PerSample(), res.Cost.Comms())
	fmt.Printf("  inline store values: %d (KV ops %d)\n",
		res.Usage.HybridSmallValues, res.Usage.KVOps)
	fmt.Printf("  bulk values parked in object storage: %d (%d bytes in %d chunks, %d PUTs, %d GETs)\n",
		res.Usage.HybridBulkValues, res.Usage.HybridBulkBytes, res.Usage.HybridChunks,
		res.Usage.S3PutCalls, res.Usage.S3GetCalls)
	colls := make([]string, 0, len(res.Usage.Collectives))
	for k := range res.Usage.Collectives {
		colls = append(colls, k)
	}
	sort.Strings(colls)
	for _, k := range colls {
		fmt.Printf("  collective %-18s x%d\n", k, res.Usage.Collectives[k])
	}
	fmt.Println("\nbulk tensors never touch the provisioned node, so a burst of concurrent")
	fmt.Println("runs fits the small node type the memory channel would overflow")
}
