// Sporadic workloads (paper §VI-C): compare the daily cost of serving an
// irregular query stream on FSD-Inference versus keeping servers running.
// Queries arrive at random times over 24 hours and each carries a buffered
// batch of samples; FSD pays per query, the always-on fleet pays around the
// clock.
package main

import (
	"fmt"
	"log"

	"fsdinference"
	"fsdinference/internal/workload"
)

func main() {
	const batch = 32
	sizes := []int{256, 512}

	// Measure a per-query cost for each model size on the best simple
	// variant (serial here: these models fit one instance).
	fsdPer := map[int]float64{}
	jsPer := map[int]float64{}
	for _, n := range sizes {
		m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(n, 12, 1))
		if err != nil {
			log.Fatal(err)
		}
		d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
			Model: m, Channel: fsdinference.Serial,
		})
		if err != nil {
			log.Fatal(err)
		}
		input := fsdinference.GenerateInputs(n, batch, 0.2, 2)
		res, err := d.Infer(input)
		if err != nil {
			log.Fatal(err)
		}
		fsdPer[n] = res.Cost.Total()

		js, err := fsdinference.RunJobScoped(fsdinference.NewEnv(), m, input)
		if err != nil {
			log.Fatal(err)
		}
		jsPer[n] = js.Cost.Total()
		fmt.Printf("N=%-4d per-query: FSD $%.6f  job-scoped $%.4f\n", n, fsdPer[n], jsPer[n])
	}

	// Two always-on c5.12xlarge around the clock (paper §VI-C2).
	aoDaily := 2.0 * 24 * 2.04
	fmt.Printf("\n%12s  %12s  %12s  %12s\n", "queries/day", "FSD $", "always-on $", "job-scoped $")
	volumes := []int{1, 10, 100, 1000, 10000, 50000}
	for _, q := range volumes {
		day := workload.Day(q*batch, sizes, batch, 7)
		row, err := workload.DailyCosts(day, workload.PlatformCosts{
			FSDPerQuery: fsdPer, JSPerQuery: jsPer, AODaily: aoDaily,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d  %12.4f  %12.2f  %12.4f\n", q, row.FSD, row.AlwaysOn, row.JobScoped)
	}
	fmt.Println("\nFSD scales to zero with the workload; the always-on fleet bills regardless (Fig. 4)")
}
