// Sporadic workloads (paper §VI-C): compare the daily cost of serving an
// irregular query stream on FSD-Inference versus keeping servers running.
// Queries arrive at random times over 24 hours and each carries a buffered
// batch of samples; FSD pays per query, the always-on fleet pays around
// the clock.
//
// Unlike the paper's arithmetic (per-query cost x query count), the FSD
// side here is measured: a multi-model Service replays the whole day in
// one simulated-time run — with request coalescing, admission queueing
// and metered cold starts — and reports real latency percentiles and the
// real metered bill.
package main

import (
	"fmt"
	"log"

	"fsdinference"
)

func main() {
	const batch = 32
	sizes := []int{256, 512}

	models := map[int]*fsdinference.Model{}
	for _, n := range sizes {
		m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(n, 12, 1))
		if err != nil {
			log.Fatal(err)
		}
		models[n] = m
	}

	// Job-scoped per-query cost, measured once per size (that baseline
	// provisions a fresh right-sized server per query by definition).
	jsPer := map[int]float64{}
	for _, n := range sizes {
		js, err := fsdinference.RunJobScoped(fsdinference.NewEnv(),
			models[n], fsdinference.GenerateInputs(n, batch, 0.2, 2))
		if err != nil {
			log.Fatal(err)
		}
		jsPer[n] = js.Cost.Total()
	}

	// Two always-on c5.12xlarge around the clock (paper §VI-C2).
	aoDaily := 2.0 * 24 * 2.04

	fmt.Printf("%12s  %12s  %12s  %12s  %10s  %10s\n",
		"queries/day", "FSD $ (meas)", "always-on $", "job-scoped $", "p50", "p99")
	volumes := []int{10, 100, 1000}
	var lastReport *fsdinference.ServiceReport
	for _, q := range volumes {
		day := fsdinference.WorkloadDay(q*batch, sizes, batch, 7)

		// A fresh service per volume: one endpoint per model size, a
		// small warm pool, coalescing for bursts.
		svc, err := fsdinference.NewService(fsdinference.NewEnv(),
			fsdinference.WithEndpoint("n256", models[256]),
			fsdinference.WithEndpoint("n512", models[512]),
			fsdinference.WithCoalescing(4*batch, 0),
			fsdinference.WithReplicas(2),
		)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := svc.Replay(day, fsdinference.ReplayOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}

		jsDaily := 0.0
		for _, qq := range day {
			jsDaily += jsPer[qq.Neurons]
		}
		fmt.Printf("%12d  %12.4f  %12.2f  %12.4f  %10v  %10v\n",
			len(day), rep.TotalCost.Total(), aoDaily, jsDaily,
			rep.Latency.P50, rep.Latency.P99)
		lastReport = rep
	}

	// Detail for the largest volume.
	fmt.Println()
	fmt.Print(lastReport)
	fmt.Println("\nFSD scales to zero with the workload; the always-on fleet bills regardless (Fig. 4)")
}
