// The workload-aware Planner (§VI-D1 grown into a subsystem): one model,
// three objectives, and the decision loop that the one-shot AutoSelect
// could not close. The walk has three parts:
//
//  1. Objective choice — the same candidate grid ranked under latency,
//     cost and deadline-feasible objectives picks different channels.
//  2. Pre-filter pruning — under a cost objective with a sporadic
//     profile, the §IV analytic model prunes clear-cut losers (the
//     idle-billing memory node, object storage at sub-chunk volumes)
//     before any simulated trial runs.
//  3. A live re-plan — a serving endpoint under WithSLO starts on the
//     queue channel, a sustained burst pushes the observed arrival rate
//     over the memory break-even and flips it to the provisioned store,
//     and the cool-down flips it back; the ServiceReport records both
//     re-plan events.
package main

import (
	"fmt"
	"log"
	"time"

	"fsdinference"
)

const (
	neurons = 512
	layers  = 12
	workers = 42
	batch   = 32
)

func grid() fsdinference.PlannerGrid {
	return fsdinference.PlannerGrid{
		Channels: []fsdinference.ChannelKind{
			fsdinference.Queue, fsdinference.Object, fsdinference.Memory,
		},
		Workers: []int{workers},
	}
}

func main() {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(neurons, layers, 1))
	if err != nil {
		log.Fatal(err)
	}

	// 1. Objective choice: the pluggable ranking decides the channel.
	fmt.Println("== objective choice (sporadic 20 queries/day) ==")
	sporadic := fsdinference.WorkloadProfile{QueriesPerDay: 20, BatchSamples: batch}
	for _, obj := range []fsdinference.PlanObjective{
		fsdinference.LatencyObjective(),
		fsdinference.CostObjective(),
		fsdinference.DeadlineObjective(6 * time.Second),
	} {
		p, err := fsdinference.NewPlanner(m, fsdinference.PlannerOptions{
			Objective: obj, Grid: grid(), DisablePrefilter: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		d, err := p.Plan(sporadic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s -> %s  ($%.4f/day at 20 queries)\n", d.Objective, d.Best, pickDaily(d, 20))
	}

	// 2. Pre-filter pruning: the analytic §IV model prunes the grid
	// before paying for simulated trials.
	fmt.Println("\n== analytic pre-filter (cost objective, sporadic profile) ==")
	p, err := fsdinference.NewPlanner(m, fsdinference.PlannerOptions{
		Objective: fsdinference.CostObjective(), Grid: grid(),
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := p.Plan(sporadic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d candidates, %d pruned analytically, %d trialed -> %s\n",
		d.Candidates, d.Pruned, d.Trialed, d.Best)
	for _, t := range d.Trials {
		if t.Pruned {
			fmt.Printf("  pruned %-22s %s\n", t.Candidate, t.PruneReason)
		}
	}

	// A re-plan under a sustained profile flips the channel: the flat
	// node rate now amortises below the per-request spend.
	d2, err := p.Replan(fsdinference.WorkloadProfile{QueriesPerDay: 200_000, BatchSamples: batch})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replan at 200k queries/day: %s -> %s (changed=%v, break-even ~%d/day)\n",
		d.Best, d2.Best, d2.Changed, d2.MemoryBreakEvenQueriesPerDay)

	// 3. A live re-plan in the serving layer: the scheduler's observed
	// WorkloadProfile feeds Replan when the arrival rate crosses the
	// measured break-even.
	fmt.Println("\n== live re-plan under WithSLO ==")
	small, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		log.Fatal(err)
	}
	svc, err := fsdinference.NewService(fsdinference.NewEnv(),
		fsdinference.WithEndpoint("slo", small, fsdinference.WithSLO(fsdinference.SLOOptions{
			LatencyWeight: 0, // cost objective: the break-even decides
			Channels:      []fsdinference.ChannelKind{fsdinference.Queue, fsdinference.Memory},
			Workers:       []int{2},
			ProbeBatch:    4,
			MinRuns:       2,
		})),
		fsdinference.WithCoalescing(4, 0),
	)
	if err != nil {
		log.Fatal(err)
	}
	var trace []fsdinference.Query
	add := func(at time.Duration) {
		trace = append(trace, fsdinference.Query{At: at, Neurons: 256, Samples: 4})
	}
	for i := 0; i < 4; i++ { // sporadic morning: one query a minute
		add(time.Duration(i) * time.Minute)
	}
	for i := 0; i < 30; i++ { // sustained burst: ten a second
		add(4*time.Minute + time.Duration(i)*100*time.Millisecond)
	}
	for i := 0; i < 6; i++ { // cool-down: five-minute gaps
		add(10*time.Minute + time.Duration(i)*5*time.Minute)
	}
	rep, err := svc.Replay(trace, fsdinference.ReplayOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	ep := rep.Endpoints[0]
	fmt.Printf("%d queries served, %d re-plan(s), observed ~%d queries/day (burstiness %.0fx):\n",
		rep.Queries-rep.Failed, len(ep.Replans), ep.Observed.QueriesPerDay, ep.Observed.Burstiness)
	for _, ev := range ep.Replans {
		fmt.Printf("  @%-8v %v x%d -> %v x%d  (%s)\n",
			ev.At.Round(time.Second), ev.From, ev.FromWorkers, ev.To, ev.ToWorkers, ev.Reason)
	}
}

// pickDaily projects the decision's own pick to a daily cost at a volume.
func pickDaily(d *fsdinference.PlanDecision, queriesPerDay int64) float64 {
	for _, t := range d.Trials {
		if t.Candidate == d.Best {
			return t.DailyCost(queriesPerDay)
		}
	}
	return 0
}
