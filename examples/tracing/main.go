// Tracing: watch where simulated time goes. A multi-worker service
// replays a sporadic day with the observability layer on (every request
// sampled), then exports a Perfetto-loadable Chrome trace and prints the
// flame summary and metrics registry.
//
// The trace has one track per replica ("n256/r0"), per worker under it
// ("n256/r0/w1") and per KV shard ("n256/r0/kv/s0" when the memory
// channel is sharded): requests render as async envelopes spanning
// submit to completion with their coalesce/queue phases nested inside,
// runs as async envelopes on the replica that executed them, and worker
// load/layer/send/recv phases as duration slices. Load trace.json into
// https://ui.perfetto.dev to explore it.
//
// Everything is simulated time: the same trace at the same seed and
// sampling rate produces a byte-identical trace.json on every run — and
// on every replay mode (Replay, ReplayLanes, ReplayStream).
package main

import (
	"fmt"
	"log"
	"os"

	"fsdinference"
)

func main() {
	const batch = 32
	sizes := []int{256, 512}

	models := map[int]*fsdinference.Model{}
	for _, n := range sizes {
		m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(n, 12, 1))
		if err != nil {
			log.Fatal(err)
		}
		models[n] = m
	}

	// One serial endpoint and one distributed endpoint (4 workers on the
	// memory channel), so the trace shows both request-level serving
	// phases and engine-level worker/channel activity.
	svc, err := fsdinference.NewService(fsdinference.NewEnv(),
		fsdinference.WithEndpoint("n256", models[256]),
		fsdinference.WithEndpoint("n512", models[512],
			fsdinference.WithChannel(fsdinference.Memory),
			fsdinference.WithWorkers(4)),
		fsdinference.WithCoalescing(4*batch, 0),
		fsdinference.WithReplicas(2),
		fsdinference.WithTracing(1), // sample every request
	)
	if err != nil {
		log.Fatal(err)
	}

	day := fsdinference.WorkloadDay(100*batch, sizes, batch, 7)
	rep, err := svc.Replay(day, fsdinference.ReplayOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Tracer().WriteChrome(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote trace.json — open in https://ui.perfetto.dev")

	fmt.Println("\nflame summary (simulated time by span):")
	svc.Tracer().WriteFlame(os.Stdout)

	fmt.Println("\nmetrics registry:")
	svc.Metrics().WriteText(os.Stdout)
}
