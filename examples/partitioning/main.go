// Partitioning (paper §III, Table III): compare hypergraph partitioning
// (HGP-DNN) against random placement (RP) and contiguous blocks, both as
// offline plan statistics and as measured communication volumes of real
// FSD-Inf-Object runs.
package main

import (
	"fmt"
	"log"

	"fsdinference"
	"fsdinference/internal/partition"
)

func main() {
	const (
		neurons = 512
		layers  = 8
		workers = 8
		batch   = 32
	)
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(neurons, layers, 1))
	if err != nil {
		log.Fatal(err)
	}
	input := fsdinference.GenerateInputs(neurons, batch, 0.2, 2)

	fmt.Printf("N=%d L=%d P=%d\n\n", neurons, layers, workers)
	fmt.Printf("%-8s  %13s  %12s  %14s  %12s\n",
		"scheme", "plan transfers", "bytes sent", "per-sample", "comms $")
	for _, scheme := range []fsdinference.PartitionScheme{
		partition.HGPDNN, partition.Random, partition.Block,
	} {
		plan, err := fsdinference.BuildPlan(m, workers, scheme, fsdinference.PartitionOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		st := plan.Stats(m)
		d, err := fsdinference.Deploy(fsdinference.NewEnv(), fsdinference.Config{
			Model: m, Plan: plan, Channel: fsdinference.Object,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Infer(input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %13d  %12d  %14v  %12.6f\n",
			scheme, st.RowTransfers, res.TotalBytesSent(), res.PerSample(), res.Cost.Comms())
	}
	fmt.Println("\nHGP-DNN minimises the connectivity-1 objective = activation rows crossing workers;")
	fmt.Println("the paper reports ~1 OOM less data and much faster runs than RP (Table III)")
}
