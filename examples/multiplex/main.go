// Run multiplexing (the Fig. 4-style cost curve over WithRunConcurrency):
// replay the same burst through identical autoscaled services that differ
// only in how many engine runs one replica may overlap. Core isolates
// concurrent runs per run id on every channel, so a single deployment
// absorbs more of the burst as concurrency grows: the autoscaler
// provisions a much smaller pool (fewer replica-hours and scale events)
// while per-request tail latency drifts up as the tighter pool leaves
// less slack — provisioned capacity traded against the tail.
package main

import (
	"fmt"
	"log"
	"time"

	"fsdinference"
)

const (
	neurons = 256
	layers  = 12
	batch   = 16
)

// trace is one clustered burst: queries arriving faster than a single
// engine run completes, so serving them needs either a wide pool or
// multiplexed runs.
func trace() []fsdinference.Query {
	var qs []fsdinference.Query
	for i := 0; i < 80; i++ {
		qs = append(qs, fsdinference.Query{
			At:      time.Duration(i) * 120 * time.Millisecond,
			Neurons: neurons,
			Samples: batch,
		})
	}
	return qs
}

func main() {
	m, err := fsdinference.GenerateModel(fsdinference.GraphChallengeSpec(neurons, layers, 1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s  %14s  %13s  %11s  %10s  %10s  %12s\n",
		"runs/rep", "replica-hours", "peak replicas", "scale up/dn", "p50", "p95", "metered $")
	type point struct {
		rc    int
		hours float64
		p95   time.Duration
	}
	var pts []point
	for rc := 1; rc <= 4; rc++ {
		svc, err := fsdinference.NewService(fsdinference.NewEnv(),
			fsdinference.WithEndpoint("ep", m),
			fsdinference.WithCoalescing(batch, 50*time.Millisecond),
			fsdinference.WithScaling(fsdinference.Autoscaler(fsdinference.AutoscalerOptions{
				Min: 1, Max: 12, IdleGrace: 30 * time.Second,
			})),
			fsdinference.WithRunConcurrency(rc),
		)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := svc.Replay(trace(), fsdinference.ReplayOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		if rep.Failed > 0 {
			log.Fatalf("run concurrency %d: %d failed queries", rc, rep.Failed)
		}
		ep := rep.Endpoints[0]
		fmt.Printf("%8d  %14.4f  %13d  %8d/%-2d  %10v  %10v  %12.4f\n",
			rc, ep.ReplicaSeconds/3600, ep.PeakReplicas, ep.ScaleUps, ep.ScaleDowns,
			rep.Latency.P50.Round(time.Millisecond), rep.Latency.P95.Round(time.Millisecond),
			rep.TotalCost.Total())
		pts = append(pts, point{rc, ep.ReplicaSeconds / 3600, rep.Latency.P95})
	}

	first, last := pts[0], pts[len(pts)-1]
	fmt.Printf("\nrun concurrency %d held %.1fx fewer replica-hours than %d (%.4f vs %.4f) at p95 %v vs %v\n",
		last.rc, first.hours/last.hours, first.rc, last.hours, first.hours,
		last.p95.Round(time.Millisecond), first.p95.Round(time.Millisecond))
	fmt.Println("multiplexed runs share warm replicas: provisioned capacity falls while the burst's tail stretches")
}
