package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsdinference/internal/sparse"
)

func TestGenerateTopology(t *testing.T) {
	spec := GraphChallengeSpec(256, 8, 1)
	m, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 8 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	for k, w := range m.Layers {
		if w.Rows != 256 || w.Cols != 256 {
			t.Fatalf("layer %d dims %dx%d", k, w.Rows, w.Cols)
		}
		for r := 0; r < w.Rows; r++ {
			if w.RowNNZ(r) != spec.FanIn {
				t.Fatalf("layer %d row %d has %d in-edges, want %d", k, r, w.RowNNZ(r), spec.FanIn)
			}
			cols, _ := w.Row(r)
			for i := 1; i < len(cols); i++ {
				if cols[i] == cols[i-1] {
					t.Fatalf("layer %d row %d has duplicate source %d", k, r, cols[i])
				}
			}
		}
	}
	if m.NNZ() != int64(8*256*32) {
		t.Fatalf("total nnz = %d", m.NNZ())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(GraphChallengeSpec(128, 4, 7))
	b, _ := Generate(GraphChallengeSpec(128, 4, 7))
	for k := range a.Layers {
		la, lb := a.Layers[k], b.Layers[k]
		if la.NNZ() != lb.NNZ() {
			t.Fatalf("layer %d nnz differs", k)
		}
		for i := range la.Val {
			if la.Val[i] != lb.Val[i] || la.ColIdx[i] != lb.ColIdx[i] {
				t.Fatalf("layer %d entry %d differs", k, i)
			}
		}
	}
	c, _ := Generate(GraphChallengeSpec(128, 4, 8))
	same := true
	for i := range a.Layers[0].ColIdx {
		if a.Layers[0].ColIdx[i] != c.Layers[0].ColIdx[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical topology")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Spec{
		{Neurons: 0, Layers: 1, FanIn: 1},
		{Neurons: 10, Layers: 0, FanIn: 1},
		{Neurons: 10, Layers: 1, FanIn: 0},
		{Neurons: 10, Layers: 1, FanIn: 11},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}

func TestBiasFor(t *testing.T) {
	cases := map[int]float32{1024: -0.30, 4096: -0.35, 16384: -0.40, 65536: -0.45, 500: -0.30}
	for n, want := range cases {
		if got := BiasFor(n); got != want {
			t.Errorf("BiasFor(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestActivationsStayAliveAndSparse(t *testing.T) {
	// The synthetic dynamics must neither die nor fully saturate across a
	// deep network — otherwise the communication-sparsity machinery the
	// paper exploits would be untested.
	spec := GraphChallengeSpec(512, 60, 3)
	m, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cur := GenerateInputs(512, 16, 0.2, 4)
	for k, w := range m.Layers {
		z, _ := sparse.Mul(w, cur)
		sparse.ReLUBiasClamp(z, spec.Bias, spec.Clamp)
		cur = z
		if k < 4 {
			continue // let dynamics settle
		}
		elem := float64(cur.NNZ()) / float64(len(cur.Data))
		if elem < 0.05 || elem > 0.98 {
			t.Fatalf("layer %d element density %.3f outside (0.05, 0.98)", k, elem)
		}
		rows := float64(len(cur.NonzeroRows())) / float64(cur.Rows)
		if rows > 0.97 {
			t.Fatalf("layer %d row density %.3f: no dead neurons, .nul path untestable", k, rows)
		}
	}
	for _, v := range cur.Data {
		if v > spec.Clamp {
			t.Fatalf("activation %v exceeds clamp %v", v, spec.Clamp)
		}
	}
}

func TestGenerateInputsDensityAndDeterminism(t *testing.T) {
	x := GenerateInputs(1000, 50, 0.2, 9)
	density := float64(x.NNZ()) / float64(len(x.Data))
	if density < 0.17 || density > 0.23 {
		t.Fatalf("density = %.3f, want ~0.2", density)
	}
	for _, v := range x.Data {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary input value %v", v)
		}
	}
	y := GenerateInputs(1000, 50, 0.2, 9)
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatal("inputs not deterministic")
		}
	}
}

func TestReferenceMatchesLayerwiseFloat32(t *testing.T) {
	// float64 reference and float32 serial path agree closely on a small
	// model.
	spec := GraphChallengeSpec(128, 10, 5)
	m, _ := Generate(spec)
	x := GenerateInputs(128, 8, 0.2, 6)

	ref := Reference(m, x)

	cur := x.Clone()
	for _, w := range m.Layers {
		z, _ := sparse.Mul(w, cur)
		sparse.ReLUBiasClamp(z, spec.Bias, spec.Clamp)
		cur = z
	}
	if !OutputsClose(ref, cur, 1e-2) {
		t.Fatal("reference and float32 serial outputs diverge")
	}
}

func TestCategories(t *testing.T) {
	out := sparse.NewDense(4, 3)
	out.Set(2, 1, 5)
	cats := Categories(out)
	if cats[0] || !cats[1] || cats[2] {
		t.Fatalf("cats = %v", cats)
	}
}

func TestOutputsCloseShapeMismatch(t *testing.T) {
	a := sparse.NewDense(2, 2)
	b := sparse.NewDense(2, 3)
	if OutputsClose(a, b, 1) {
		t.Fatal("shape mismatch reported close")
	}
}

func TestEncodeDecodeCSRRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		var tr []sparse.Triplet
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Float64() < 0.25 {
					tr = append(tr, sparse.Triplet{Row: int32(r), Col: int32(c), Val: float32(rng.NormFloat64())})
				}
			}
		}
		m, err := sparse.NewCSR(rows, cols, tr)
		if err != nil {
			return false
		}
		got, err := DecodeCSR(EncodeCSR(m))
		if err != nil {
			return false
		}
		if got.Rows != m.Rows || got.Cols != m.Cols || got.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.Val {
			if got.Val[i] != m.Val[i] || got.ColIdx[i] != m.ColIdx[i] {
				return false
			}
		}
		for i := range m.RowPtr {
			if got.RowPtr[i] != m.RowPtr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCSRRejectsCorrupt(t *testing.T) {
	if _, err := DecodeCSR([]byte{1, 2, 3}); err == nil {
		t.Error("short blob accepted")
	}
	m, _ := sparse.NewCSR(2, 2, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	b := EncodeCSR(m)
	if _, err := DecodeCSR(b[:len(b)-2]); err == nil {
		t.Error("truncated blob accepted")
	}
}

func TestWeightBytes(t *testing.T) {
	m, _ := Generate(GraphChallengeSpec(256, 4, 1))
	// 4 layers x (nnz*8 + (rows+1)*4)
	want := int64(4 * (256*32*8 + 257*4))
	if m.WeightBytes() != want {
		t.Fatalf("WeightBytes = %d, want %d", m.WeightBytes(), want)
	}
}
