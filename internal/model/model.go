// Package model provides the sparse DNN workload of the paper's evaluation:
// synthetic Graph Challenge-style deep networks (MIT/IEEE/Amazon Sparse DNN
// Graph Challenge, paper §VI-A), thresholded sparse binary inputs, and a
// serial reference inference used as ground truth.
//
// The real benchmark distributes RadiX-Net topologies and MNIST-derived
// inputs; offline, this package generates seeded synthetic equivalents with
// the properties the evaluation depends on: L layers of N neurons, exactly
// FanIn (32) incoming connections per neuron, mixed-sign weights that keep
// activations alive and sparse across deep networks, the paper's per-size
// bias values, ReLU activation, and the Graph Challenge clamp of neuron
// activations at 32.
package model

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"fsdinference/internal/sparse"
)

// GraphChallengeSizes lists the per-layer neuron counts of the benchmark.
var GraphChallengeSizes = []int{1024, 4096, 16384, 65536}

// BiasFor returns the bias the paper applies for a given neuron count
// (§VI-A1: -0.30, -0.35, -0.40, -0.45 for N = 1024..65536).
func BiasFor(neurons int) float32 {
	switch {
	case neurons <= 1024:
		return -0.30
	case neurons <= 4096:
		return -0.35
	case neurons <= 16384:
		return -0.40
	default:
		return -0.45
	}
}

// Spec describes a synthetic sparse DNN.
type Spec struct {
	// Neurons is the per-layer neuron count N.
	Neurons int
	// Layers is the layer count L (120 in the paper's evaluation).
	Layers int
	// FanIn is the number of incoming connections per neuron (32).
	FanIn int
	// Bias is the per-layer bias added before activation.
	Bias float32
	// Clamp is the neuron activation ceiling (32 per the Graph
	// Challenge); 0 disables clamping.
	Clamp float32
	// Seed drives deterministic topology and weight generation.
	Seed int64
}

// GraphChallengeSpec returns the paper's configuration for a given neuron
// count and layer count: fan-in 32, the paper's bias, clamp 32.
func GraphChallengeSpec(neurons, layers int, seed int64) Spec {
	return Spec{
		Neurons: neurons,
		Layers:  layers,
		FanIn:   32,
		Bias:    BiasFor(neurons),
		Clamp:   32,
		Seed:    seed,
	}
}

// Validate checks the spec for basic consistency.
func (s Spec) Validate() error {
	if s.Neurons <= 0 {
		return fmt.Errorf("model: neurons must be positive, got %d", s.Neurons)
	}
	if s.Layers <= 0 {
		return fmt.Errorf("model: layers must be positive, got %d", s.Layers)
	}
	if s.FanIn <= 0 || s.FanIn >= s.Neurons {
		return fmt.Errorf("model: fan-in %d outside [1, %d)", s.FanIn, s.Neurons)
	}
	return nil
}

// Model is a sparse DNN: Layers[k] is the N x N weight matrix W^{k+1} whose
// row i holds the incoming weights of neuron i at layer k+1.
type Model struct {
	Spec   Spec
	Layers []*sparse.CSR
}

// Generate builds a deterministic synthetic model from the spec.
//
// Topology follows RadiX-Net's multi-scale structure: each neuron's FanIn
// sources are drawn at log-uniform distances (like the strides of the
// mixed-radix butterflies RadiX-Net composes), so most connections are
// local with a tail of long-range links. This preserves the property the
// paper's partitioning evaluation depends on — hypergraph partitioning can
// place communicating neurons together, cutting communication volume by
// close to an order of magnitude versus random placement (Table III). A
// fully random topology would be an expander, unpartitionable by any
// method.
//
// Weight values are mixed-sign — positive with probability 0.55, magnitudes
// uniform in [0.2, 0.6] — which keeps deep-layer activations alive (mean
// values near the clamp) but leaves ~20% of neuron rows dead per layer,
// exercising the engine's sparsity machinery. The exact RadiX-Net weights
// are not redistributable; what the evaluation requires is the benchmark's
// controlled structure, which this preserves.
func Generate(spec Spec) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Spec: spec, Layers: make([]*sparse.CSR, spec.Layers)}
	for k := 0; k < spec.Layers; k++ {
		rng := rand.New(rand.NewSource(spec.Seed + int64(k)*1_000_003))
		layer, err := generateLayer(spec, rng)
		if err != nil {
			return nil, err
		}
		m.Layers[k] = layer
	}
	return m, nil
}

func generateLayer(spec Spec, rng *rand.Rand) (*sparse.CSR, error) {
	n := spec.Neurons
	entries := make([]sparse.Triplet, 0, n*spec.FanIn)
	seen := make(map[int32]bool, spec.FanIn)
	// Local window: 96% of links land uniformly within it (RadiX-Net's
	// short butterfly strides); the rest are log-uniform global mixing
	// links. The window is kept well above FanIn so deduplication does
	// not force extra long links.
	window := n / 256
	if window < 2*spec.FanIn {
		window = 2 * spec.FanIn
	}
	if window > n/2 {
		window = n / 2
	}
	logN := math.Log(float64(n) / 2)
	for i := 0; i < n; i++ {
		for k := range seen {
			delete(seen, k)
		}
		attempts := 0
		for len(seen) < spec.FanIn {
			var dist int
			if attempts > 64*spec.FanIn {
				// Degenerate geometry (tiny N): fill from the
				// nearest unused sources.
				dist = attempts - 64*spec.FanIn
			} else if rng.Float64() < 0.96 {
				dist = 1 + rng.Intn(window)
			} else {
				dist = int(math.Exp(rng.Float64() * logN))
			}
			attempts++
			if rng.Intn(2) == 0 {
				dist = -dist
			}
			src := int32(((i+dist)%n + n) % n)
			if src == int32(i) || seen[src] {
				continue
			}
			seen[src] = true
			mag := 0.2 + rng.Float64()*0.4
			if rng.Float64() >= 0.55 {
				mag = -mag
			}
			entries = append(entries, sparse.Triplet{
				Row: int32(i), Col: src, Val: float32(mag),
			})
		}
	}
	return sparse.NewCSR(n, n, entries)
}

// NNZ returns the total nonzero count across all layers.
func (m *Model) NNZ() int64 {
	var n int64
	for _, l := range m.Layers {
		n += int64(l.NNZ())
	}
	return n
}

// WeightBytes returns the raw serialized size of all layer weights.
func (m *Model) WeightBytes() int64 {
	var b int64
	for _, l := range m.Layers {
		b += l.Bytes()
	}
	return b
}

// GenerateInputs returns a batch of synthetic thresholded inputs: an
// N x batch matrix of {0,1} values with approximately the given density
// (MNIST thresholded at the Graph Challenge level is ~0.2). Columns are
// samples.
func GenerateInputs(neurons, batch int, density float64, seed int64) *sparse.Dense {
	// Streaming replays generate inputs per query with a distinct seed, so
	// this runs a million times a day. Seeding a math/rand source costs
	// microseconds (it initialises a 607-word lagged-Fibonacci table); a
	// splitmix64 stream seeds for free and its two multiply-xor-shift
	// rounds per value are plenty for Bernoulli thresholding.
	s := uint64(seed)
	x := sparse.NewDense(neurons, batch)
	for i := range x.Data {
		s += 0x9e3779b97f4a7c15
		z := s
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		if float64(z>>11)*(1.0/(1<<53)) < density {
			x.Data[i] = 1
		}
	}
	return x
}

// inputMemo caches GenerateInputs results. Replays, planner probes and
// experiments re-simulate identical query streams over and over (the same
// (neurons, batch, density, seed) tuples across configurations and
// iterations), and input generation sat on that hot path. The memo is
// bounded: once full, further tuples generate fresh matrices, so a
// million-query stream of distinct seeds costs one map miss per query and
// a fixed amount of memory. Cached matrices are shared — callers must
// treat generated inputs as immutable, which the serving and engine paths
// already do (inputs are copied into merged batches and engine-local
// activation buffers, never written).
var (
	inputMemo     sync.Map // inputKey -> *sparse.Dense
	inputMemoSize atomic.Int64
)

const inputMemoCap = 8192

type inputKey struct {
	neurons, batch int
	density        float64
	seed           int64
}

// GenerateInputsCached is GenerateInputs behind a bounded process-wide
// memo; it returns a shared matrix that must not be mutated.
func GenerateInputsCached(neurons, batch int, density float64, seed int64) *sparse.Dense {
	key := inputKey{neurons, batch, density, seed}
	if v, ok := inputMemo.Load(key); ok {
		return v.(*sparse.Dense)
	}
	x := GenerateInputs(neurons, batch, density, seed)
	if inputMemoSize.Load() < inputMemoCap {
		if _, loaded := inputMemo.LoadOrStore(key, x); !loaded {
			inputMemoSize.Add(1)
		}
	}
	return x
}

// Reference runs serial float64 inference over the whole model and returns
// the final activations. It is the ground truth the distributed engines are
// checked against (the paper validates against the benchmark's provided
// ground truths).
func Reference(m *Model, input *sparse.Dense) *sparse.Dense {
	n, batch := input.Rows, input.Cols
	cur := make([]float64, n*batch)
	for i, v := range input.Data {
		cur[i] = float64(v)
	}
	next := make([]float64, n*batch)
	for _, w := range m.Layers {
		for i := range next {
			next[i] = 0
		}
		for r := 0; r < w.Rows; r++ {
			cols, vals := w.Row(r)
			out := next[r*batch : (r+1)*batch]
			for i, c := range cols {
				in := cur[int(c)*batch : (int(c)+1)*batch]
				v := float64(vals[i])
				for j, xv := range in {
					out[j] += v * xv
				}
			}
		}
		for i := range next {
			v := next[i] + float64(m.Spec.Bias)
			if v < 0 {
				v = 0
			} else if m.Spec.Clamp > 0 && v > float64(m.Spec.Clamp) {
				v = float64(m.Spec.Clamp)
			}
			next[i] = v
		}
		cur, next = next, cur
	}
	out := sparse.NewDense(n, batch)
	for i, v := range cur {
		out.Data[i] = float32(v)
	}
	return out
}

// Categories returns, per sample (column), whether the final activations
// contain any nonzero entry — the Graph Challenge's per-image category
// signal.
func Categories(output *sparse.Dense) []bool {
	cats := make([]bool, output.Cols)
	for r := 0; r < output.Rows; r++ {
		row := output.Row(r)
		for j, v := range row {
			if v != 0 {
				cats[j] = true
			}
		}
	}
	return cats
}

// OutputsClose reports whether two activation matrices agree within an
// absolute tolerance, allowing for float32 summation-order differences
// between serial and distributed execution.
func OutputsClose(a, b *sparse.Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i])-float64(b.Data[i])) > tol {
			return false
		}
	}
	return true
}

// EncodeCSR serializes a CSR matrix to a compact binary blob (little-endian
// dimensions, row pointers, column indices, values). It is the on-object-
// storage format for model partitions.
func EncodeCSR(m *sparse.CSR) []byte {
	buf := make([]byte, 0, 16+len(m.RowPtr)*4+len(m.ColIdx)*4+len(m.Val)*4)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(tmp[4:8], uint32(m.Cols))
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[0:4], uint32(len(m.ColIdx)))
	buf = append(buf, tmp[:4]...)
	for _, v := range m.RowPtr {
		binary.LittleEndian.PutUint32(tmp[0:4], uint32(v))
		buf = append(buf, tmp[:4]...)
	}
	for _, v := range m.ColIdx {
		binary.LittleEndian.PutUint32(tmp[0:4], uint32(v))
		buf = append(buf, tmp[:4]...)
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint32(tmp[0:4], math.Float32bits(v))
		buf = append(buf, tmp[:4]...)
	}
	return buf
}

// DecodeCSR parses a blob produced by EncodeCSR.
func DecodeCSR(b []byte) (*sparse.CSR, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("model: CSR blob too short (%d bytes)", len(b))
	}
	rows := int(binary.LittleEndian.Uint32(b[0:4]))
	cols := int(binary.LittleEndian.Uint32(b[4:8]))
	nnz := int(binary.LittleEndian.Uint32(b[8:12]))
	want := 12 + (rows+1)*4 + nnz*8
	if len(b) != want {
		return nil, fmt.Errorf("model: CSR blob is %d bytes, want %d for %dx%d nnz=%d",
			len(b), want, rows, cols, nnz)
	}
	m := &sparse.CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]float32, nnz),
	}
	off := 12
	for i := range m.RowPtr {
		m.RowPtr[i] = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	for i := range m.ColIdx {
		m.ColIdx[i] = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	for i := range m.Val {
		m.Val[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	return m, nil
}
