package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCSRBasic(t *testing.T) {
	m, err := NewCSR(3, 4, []Triplet{
		{0, 1, 2.0}, {2, 3, 5.0}, {0, 0, 1.0}, {1, 2, -3.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("row 0 = %v %v", cols, vals)
	}
	if m.RowNNZ(1) != 1 || m.RowNNZ(2) != 1 {
		t.Fatalf("row nnz = %d, %d", m.RowNNZ(1), m.RowNNZ(2))
	}
}

func TestNewCSRSumsDuplicates(t *testing.T) {
	m, err := NewCSR(2, 2, []Triplet{{0, 0, 1}, {0, 0, 2.5}, {1, 1, -1}, {1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want duplicates merged", m.NNZ())
	}
	if m.Val[0] != 3.5 {
		t.Fatalf("summed value = %v", m.Val[0])
	}
}

func TestNewCSRBoundsChecked(t *testing.T) {
	if _, err := NewCSR(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := NewCSR(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Error("negative col accepted")
	}
	if _, err := NewCSR(-1, 2, nil); err == nil {
		t.Error("negative dims accepted")
	}
}

func TestEmptyCSR(t *testing.T) {
	m, err := NewCSR(3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 0 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	x := NewDense(3, 2)
	x.Set(0, 0, 1)
	z, macs := Mul(m, x)
	if macs != 0 || z.NNZ() != 0 {
		t.Fatalf("empty matrix multiply: macs=%d nnz=%d", macs, z.NNZ())
	}
}

func TestColNNZ(t *testing.T) {
	m, _ := NewCSR(3, 3, []Triplet{{0, 0, 1}, {1, 0, 1}, {2, 2, 1}})
	got := m.ColNNZ()
	want := []int32{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColNNZ = %v, want %v", got, want)
		}
	}
}

func TestSelectRows(t *testing.T) {
	m, _ := NewCSR(4, 4, []Triplet{
		{0, 0, 1}, {1, 1, 2}, {2, 2, 3}, {3, 3, 4}, {3, 0, 5},
	})
	sub := m.SelectRows([]int32{3, 1})
	if sub.Rows != 2 || sub.Cols != 4 {
		t.Fatalf("dims = %dx%d", sub.Rows, sub.Cols)
	}
	cols, vals := sub.Row(0) // original row 3
	if len(cols) != 2 || cols[0] != 0 || vals[0] != 5 || cols[1] != 3 || vals[1] != 4 {
		t.Fatalf("row 0 = %v %v", cols, vals)
	}
	cols, vals = sub.Row(1) // original row 1
	if len(cols) != 1 || cols[0] != 1 || vals[0] != 2 {
		t.Fatalf("row 1 = %v %v", cols, vals)
	}
}

// naiveMul is the reference dense implementation used by property tests.
func naiveMul(w *CSR, x *Dense) *Dense {
	z := NewDense(w.Rows, x.Cols)
	for r := 0; r < w.Rows; r++ {
		cols, vals := w.Row(r)
		for i, c := range cols {
			for j := 0; j < x.Cols; j++ {
				z.Data[r*z.Cols+j] += vals[i] * x.At(int(c), j)
			}
		}
	}
	return z
}

func matricesClose(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > tol {
			return false
		}
	}
	return true
}

func randomCase(rng *rand.Rand) (*CSR, *Dense) {
	rows := 1 + rng.Intn(12)
	cols := 1 + rng.Intn(12)
	batch := 1 + rng.Intn(5)
	var tr []Triplet
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.3 {
				tr = append(tr, Triplet{int32(r), int32(c), float32(rng.NormFloat64())})
			}
		}
	}
	w, _ := NewCSR(rows, cols, tr)
	x := NewDense(cols, batch)
	for i := range x.Data {
		if rng.Float64() < 0.6 {
			x.Data[i] = float32(rng.NormFloat64())
		}
	}
	return w, x
}

func TestMulMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, x := randomCase(rng)
		got, _ := Mul(w, x)
		want := naiveMul(w, x)
		return matricesClose(got, want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulGatherMatchesMulProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, x := randomCase(rng)
		want, wantMACs := Mul(w, x)
		z := NewDense(w.Rows, x.Cols)
		gotMACs := MulGatherInto(w, func(c int32) []float32 {
			if x.RowIsZero(int(c)) {
				return nil
			}
			return x.Row(int(c))
		}, z)
		return matricesClose(z, want, 1e-4) && gotMACs == wantMACs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulGatherAccumulates(t *testing.T) {
	// Two gather passes over disjoint column subsets must equal one full
	// multiply — this is exactly how the distributed engine accumulates
	// local and received contributions (Algorithm 1 lines 8, 16-17).
	rng := rand.New(rand.NewSource(42))
	w, x := randomCase(rng)
	want, _ := Mul(w, x)

	z := NewDense(w.Rows, x.Cols)
	half := int32(w.Cols / 2)
	MulGatherInto(w, func(c int32) []float32 {
		if c >= half || x.RowIsZero(int(c)) {
			return nil
		}
		return x.Row(int(c))
	}, z)
	MulGatherInto(w, func(c int32) []float32 {
		if c < half || x.RowIsZero(int(c)) {
			return nil
		}
		return x.Row(int(c))
	}, z)
	if !matricesClose(z, want, 1e-4) {
		t.Fatal("split gather != full multiply")
	}
}

func TestMulSkipsZeroRowsInOpCount(t *testing.T) {
	w, _ := NewCSR(1, 2, []Triplet{{0, 0, 1}, {0, 1, 1}})
	x := NewDense(2, 8)
	for j := 0; j < 8; j++ {
		x.Set(0, j, 1) // row 0 nonzero, row 1 all zero
	}
	_, macs := Mul(w, x)
	if macs != 8 {
		t.Fatalf("macs = %d, want 8 (zero activation row skipped)", macs)
	}
}

func TestReLUBiasClamp(t *testing.T) {
	d := NewDense(1, 5)
	copy(d.Data, []float32{-1, 0.2, 0.5, 40, 31.9})
	ops := ReLUBiasClamp(d, -0.3, 32)
	if ops != 5 {
		t.Fatalf("ops = %d", ops)
	}
	want := []float32{0, 0, 0.2, 32, 31.6}
	for i, w := range want {
		if math.Abs(float64(d.Data[i]-w)) > 1e-5 {
			t.Fatalf("data[%d] = %v, want %v", i, d.Data[i], w)
		}
	}
}

func TestReLUBiasClampNoClamp(t *testing.T) {
	d := NewDense(1, 2)
	copy(d.Data, []float32{50, -50})
	ReLUBiasClamp(d, 0, 0)
	if d.Data[0] != 50 || d.Data[1] != 0 {
		t.Fatalf("data = %v", d.Data)
	}
}

func TestNonzeroRowsAndRowIsZero(t *testing.T) {
	d := NewDense(4, 3)
	d.Set(1, 2, 5)
	d.Set(3, 0, -1)
	nz := d.NonzeroRows()
	if len(nz) != 2 || nz[0] != 1 || nz[1] != 3 {
		t.Fatalf("nonzero rows = %v", nz)
	}
	if !d.RowIsZero(0) || d.RowIsZero(1) {
		t.Fatal("RowIsZero wrong")
	}
}

func TestDenseCloneIndependent(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(0, 0, 1)
	c := d.Clone()
	c.Set(0, 0, 9)
	if d.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestAccumulateRow(t *testing.T) {
	d := NewDense(2, 3)
	d.AccumulateRow(1, []float32{1, 2, 3})
	d.AccumulateRow(1, []float32{1, 1, 1})
	row := d.Row(1)
	if row[0] != 2 || row[1] != 3 || row[2] != 4 {
		t.Fatalf("row = %v", row)
	}
}

func TestBytes(t *testing.T) {
	m, _ := NewCSR(2, 2, []Triplet{{0, 0, 1}, {1, 1, 1}})
	if m.Bytes() != 2*8+3*4 {
		t.Fatalf("CSR bytes = %d", m.Bytes())
	}
	d := NewDense(3, 3)
	if d.Bytes() != 36 {
		t.Fatalf("dense bytes = %d", d.Bytes())
	}
}

func TestZero(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(1, 1, 7)
	d.Zero()
	if d.NNZ() != 0 {
		t.Fatal("Zero left nonzeros")
	}
}
