// Package sparse provides the float32 sparse/dense linear algebra used by
// the inference engine: CSR weight matrices, dense row-major activation
// matrices (rows = neurons, columns = batch samples), and the
// multiply-accumulate kernels for distributed MVP/MMP (paper §III-C).
//
// The kernels return exact operation counts so the simulator can charge
// calibrated virtual compute time for the work actually performed — sparsity
// in both weights and activations directly reduces the charged time, as it
// does for the paper's SciPy workers.
package sparse

import (
	"fmt"
	"sort"
)

// Triplet is one nonzero matrix entry in coordinate form.
type Triplet struct {
	Row, Col int32
	Val      float32
}

// CSR is a compressed sparse row float32 matrix. Column indices within each
// row are strictly increasing. Rows and Cols bound the index space; either
// may exceed the populated range (workers hold row blocks with global column
// indices).
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // len Rows+1
	ColIdx     []int32 // len NNZ
	Val        []float32
}

// NewCSR builds a CSR matrix from triplets. Duplicate (row, col) entries are
// summed. The input slice is reordered in place.
func NewCSR(rows, cols int, entries []Triplet) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimensions %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || int(e.Row) >= rows || e.Col < 0 || int(e.Col) >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Row != entries[j].Row {
			return entries[i].Row < entries[j].Row
		}
		return entries[i].Col < entries[j].Col
	})
	m := &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int32, rows+1),
	}
	m.ColIdx = make([]int32, 0, len(entries))
	m.Val = make([]float32, 0, len(entries))
	for i := 0; i < len(entries); {
		j := i
		v := float32(0)
		for j < len(entries) && entries[j].Row == entries[i].Row && entries[j].Col == entries[i].Col {
			v += entries[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, entries[i].Col)
		m.Val = append(m.Val, v)
		m.RowPtr[entries[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowNNZ returns the number of stored entries in row r.
func (m *CSR) RowNNZ(r int) int { return int(m.RowPtr[r+1] - m.RowPtr[r]) }

// Row returns the column indices and values of row r (shared slices; do not
// modify).
func (m *CSR) Row(r int) ([]int32, []float32) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// Bytes returns the raw in-memory footprint of the matrix data
// (values + column indices + row pointers).
func (m *CSR) Bytes() int64 {
	return int64(len(m.Val))*8 + int64(len(m.RowPtr))*4
}

// ColNNZ returns, for each column, the number of stored entries. Used by the
// partitioner to weigh communication nets.
func (m *CSR) ColNNZ() []int32 {
	counts := make([]int32, m.Cols)
	for _, c := range m.ColIdx {
		counts[c]++
	}
	return counts
}

// SelectRows returns a new CSR containing only the given rows of m, in the
// given order (the row block a worker owns). Column indices are preserved
// (global).
func (m *CSR) SelectRows(rows []int32) *CSR {
	sub := &CSR{
		Rows:   len(rows),
		Cols:   m.Cols,
		RowPtr: make([]int32, len(rows)+1),
	}
	nnz := 0
	for _, r := range rows {
		nnz += m.RowNNZ(int(r))
	}
	sub.ColIdx = make([]int32, 0, nnz)
	sub.Val = make([]float32, 0, nnz)
	for i, r := range rows {
		cols, vals := m.Row(int(r))
		sub.ColIdx = append(sub.ColIdx, cols...)
		sub.Val = append(sub.Val, vals...)
		sub.RowPtr[i+1] = sub.RowPtr[i] + int32(len(cols))
	}
	return sub
}

// Dense is a row-major dense float32 matrix. For activations, rows index
// neurons and columns index batch samples.
type Dense struct {
	Rows, Cols int
	Data       []float32
}

// NewDense returns a zeroed Rows x Cols dense matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row r as a slice backed by the matrix.
func (d *Dense) Row(r int) []float32 { return d.Data[r*d.Cols : (r+1)*d.Cols] }

// At returns element (r, c).
func (d *Dense) At(r, c int) float32 { return d.Data[r*d.Cols+c] }

// Set assigns element (r, c).
func (d *Dense) Set(r, c int, v float32) { d.Data[r*d.Cols+c] = v }

// Bytes returns the raw in-memory footprint of the matrix data.
func (d *Dense) Bytes() int64 { return int64(len(d.Data)) * 4 }

// Zero clears the matrix in place.
func (d *Dense) Zero() {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// NonzeroRows returns the indices of rows with at least one nonzero value.
func (d *Dense) NonzeroRows() []int32 {
	var out []int32
	for r := 0; r < d.Rows; r++ {
		row := d.Row(r)
		for _, v := range row {
			if v != 0 {
				out = append(out, int32(r))
				break
			}
		}
	}
	return out
}

// RowIsZero reports whether row r is entirely zero.
func (d *Dense) RowIsZero(r int) bool {
	for _, v := range d.Row(r) {
		if v != 0 {
			return false
		}
	}
	return true
}

// NNZ returns the number of nonzero elements.
func (d *Dense) NNZ() int64 {
	var n int64
	for _, v := range d.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// RowLookup maps a global column index of a weight matrix to the
// corresponding activation row vector, or nil if that row is zero/absent.
// The distributed kernel skips absent rows, exploiting activation sparsity.
type RowLookup func(col int32) []float32

// MulGatherInto computes z += W · x, where x rows are fetched through
// lookup, and z has W.Rows rows (local indexing). It returns the number of
// multiply-add operations actually performed: absent (nil) activation rows
// contribute nothing and cost nothing, matching sparse execution.
func MulGatherInto(w *CSR, lookup RowLookup, z *Dense) int64 {
	if z.Rows != w.Rows {
		panic(fmt.Sprintf("sparse: z has %d rows, want %d", z.Rows, w.Rows))
	}
	var macs int64
	for r := 0; r < w.Rows; r++ {
		cols, vals := w.Row(r)
		zrow := z.Row(r)
		for i, c := range cols {
			xrow := lookup(c)
			if xrow == nil {
				continue
			}
			v := vals[i]
			zr := zrow[:len(xrow)]
			for j, xv := range xrow {
				zr[j] += v * xv
			}
			macs += int64(len(xrow))
		}
	}
	return macs
}

// Mul computes z = W · x for a full-width dense activation matrix
// (x.Rows == W.Cols), the serial/baseline path. Zero activation rows are
// skipped and not charged, as in sparse execution. Returns z and the
// multiply-add count.
func Mul(w *CSR, x *Dense) (*Dense, int64) {
	if x.Rows != w.Cols {
		panic(fmt.Sprintf("sparse: x has %d rows, want %d", x.Rows, w.Cols))
	}
	zero := make([]bool, x.Rows)
	for r := 0; r < x.Rows; r++ {
		zero[r] = x.RowIsZero(r)
	}
	z := NewDense(w.Rows, x.Cols)
	var macs int64
	nc := x.Cols
	xd := x.Data
	for r := 0; r < w.Rows; r++ {
		cols, vals := w.Row(r)
		zrow := z.Row(r)
		for i, c := range cols {
			if zero[c] {
				continue
			}
			v := vals[i]
			xrow := xd[int(c)*nc : int(c)*nc+nc]
			// Reslice so the compiler can prove zr and xrow share a
			// length and drop the per-element bounds checks; the
			// accumulation order per output element is unchanged.
			zr := zrow[:len(xrow)]
			for j, xv := range xrow {
				zr[j] += v * xv
			}
			macs += int64(nc)
		}
	}
	return z, macs
}

// ReLUBiasClamp applies x = min(clamp, max(0, x + bias)) elementwise in
// place (the Graph Challenge activation: bias, ReLU, threshold at 32). A
// clamp of 0 or below disables clamping. Returns the element-op count.
func ReLUBiasClamp(d *Dense, bias, clamp float32) int64 {
	if clamp > 0 {
		for i, v := range d.Data {
			v += bias
			if v < 0 {
				v = 0
			} else if v > clamp {
				v = clamp
			}
			d.Data[i] = v
		}
		return int64(len(d.Data))
	}
	for i, v := range d.Data {
		v += bias
		if v < 0 {
			v = 0
		}
		d.Data[i] = v
	}
	return int64(len(d.Data))
}

// AccumulateRow adds src into row r of d.
func (d *Dense) AccumulateRow(r int, src []float32) {
	row := d.Row(r)
	for i, v := range src {
		row[i] += v
	}
}
