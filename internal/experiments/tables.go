package experiments

import (
	"fmt"
	"time"

	"fsdinference/internal/baselines"
	"fsdinference/internal/cloud/env"
	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/core"
	"fsdinference/internal/cost"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
)

// Table2PerSample regenerates Table II: end-to-end per-sample runtime of
// the best parallel FSD variant, FSD-Inf-Serial and Sage-SL-Inf per model
// size. Paper-scale feasibility gates mark the configurations the paper
// reports as failing (serial and the endpoint at N=65536).
func Table2PerSample(l *Lab) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "End-to-end per-sample runtime (ms)",
		Columns: []string{"N(paper)", "FSD-Inf-Parallel", "FSD-Inf-Serial", "Sage-SL-Inf", "Sage samples"},
	}
	for _, size := range l.Scale.Sizes {
		// Best parallel config across the worker grid and both channels,
		// projected to paper scale from time-dilated runs.
		bestMS := -1.0
		for _, p := range l.Scale.Workers {
			for _, kind := range []core.ChannelKind{core.Queue, core.Object} {
				r, err := l.RunDilated(size, p, kind, partition.Block, nil)
				if err != nil {
					return nil, fmt.Errorf("table2 N=%d P=%d %v: %w", size.Scaled, p, kind, err)
				}
				msv := l.ProjectPerSampleMS(size, r)
				if bestMS < 0 || msv < bestMS {
					bestMS = msv
				}
			}
		}

		serialCell := "-"
		if l.SerialFeasiblePaper(size.Paper) {
			r, err := l.RunDilated(size, 1, core.Serial, partition.Block, nil)
			if err != nil {
				return nil, fmt.Errorf("table2 serial N=%d: %w", size.Scaled, err)
			}
			serialCell = fmt.Sprintf("%.2f", l.ProjectPerSampleMS(size, r))
		}

		sageCell, sageSamples := "-", "-"
		if l.SageFeasiblePaper(size.Paper) {
			m, err := l.Model(size.Scaled)
			if err != nil {
				return nil, err
			}
			r, err := baselines.RunSageSL(env.NewDefault(), m, l.Input(size.Scaled, size.Batch), baselines.DefaultSageConfig())
			if err != nil {
				return nil, fmt.Errorf("table2 sage N=%d: %w", size.Scaled, err)
			}
			// Project the per-processed-sample time by the compute
			// ratio between paper and stand-in models.
			perSample := float64(r.Latency) / float64(r.SamplesProcessed) * l.macRatio(size)
			sageCell = fmt.Sprintf("%.2f*", perSample/float64(time.Millisecond))
			// The samples column reports the paper-scale payload cap
			// (the 8,000/2,500/1,000 observation).
			sageSamples = fmt.Sprintf("%d of %d", l.SageSamplesPaper(size.Paper), l.Scale.PaperBatch)
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size.Paper),
			fmt.Sprintf("%.2f", bestMS),
			serialCell,
			sageCell,
			sageSamples,
		})
	}
	t.Notes = append(t.Notes,
		"\"-\" marks configurations infeasible at paper scale: the N=65536 model exceeds the",
		"10,240 MB serial instance and the 6 GB endpoint cap, as the paper reports;",
		"* per processed sample; the endpoint's 6 MB payload truncates the batch (paper: 8000/2500/1000)",
		"paper shape: serial wins for small N, parallel overtakes from N=16384")
	return t, nil
}

// Table3Partitioning regenerates Table III: FSD-Inf-Object communication
// volumes and runtime under HGP-DNN versus random partitioning (RP), at the
// scaled stand-in for N=16384, P=42.
func Table3Partitioning(l *Lab) (*Table, error) {
	sizeIdx := 2 // stand-in for N=16384
	if sizeIdx >= len(l.Scale.Sizes) {
		sizeIdx = len(l.Scale.Sizes) - 1
	}
	size := l.Scale.Sizes[sizeIdx]
	workers := 42
	if len(l.Scale.Workers) < 3 {
		workers = l.Scale.Workers[len(l.Scale.Workers)-1]
	} else {
		workers = l.Scale.Workers[2]
	}

	t := &Table{
		ID:    "table3",
		Title: fmt.Sprintf("FSD-Inf-Object communication under HGP-DNN vs RP (N(paper)=%d, P=%d)", size.Paper, workers),
		Columns: []string{
			"scheme", "data volume sent (B)", "rows sent per target", "per-sample runtime (ms)",
		},
	}
	var volumes [2]int64
	for i, scheme := range []partition.Scheme{partition.HGPDNN, partition.Random} {
		r, err := l.RunFSD(size.Scaled, workers, size.Batch, core.Object, scheme, nil)
		if err != nil {
			return nil, fmt.Errorf("table3 %v: %w", scheme, err)
		}
		var pairs int64
		for _, w := range r.Workers {
			pairs += w.MessagesSent
		}
		rowsPerTarget := float64(r.TotalRowsSent()) / float64(max64(pairs, 1))
		volumes[i] = r.TotalBytesSent()
		t.Rows = append(t.Rows, []string{
			scheme.String(),
			fmt.Sprintf("%d", r.TotalBytesSent()),
			fmt.Sprintf("%.0f", rowsPerTarget),
			msPerSample(r.Latency, r.Batch),
		})
	}
	if volumes[1] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"HGP-DNN ships %.1fx less data than RP (paper: 9.3x at full scale)",
			float64(volumes[1])/float64(max64(volumes[0], 1))))
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// CostValidation regenerates the §VI-F check: costs predicted from
// worker-side fine-grained metrics via Equations (1)-(7) against the billed
// actuals from the usage meter, for both channels at the stand-in for
// N=16384, P=20.
func CostValidation(l *Lab) (*Table, error) {
	sizeIdx := 2
	if sizeIdx >= len(l.Scale.Sizes) {
		sizeIdx = len(l.Scale.Sizes) - 1
	}
	size := l.Scale.Sizes[sizeIdx]
	workers := 20
	if len(l.Scale.Workers) > 1 {
		workers = l.Scale.Workers[1]
	}
	cat := env.DefaultConfig().Pricing

	t := &Table{
		ID:    "costval",
		Title: fmt.Sprintf("Cost model validation (N(paper)=%d, P=%d)", size.Paper, workers),
		Columns: []string{
			"variant", "pred comp", "act comp", "pred comms", "act comms", "pred total", "act total", "agree<1%",
		},
	}
	for _, kind := range []core.ChannelKind{core.Queue, core.Object} {
		r, err := l.RunFSD(size.Scaled, workers, l.Scale.Batch, kind, partition.Block, nil)
		if err != nil {
			return nil, fmt.Errorf("costval %v: %w", kind, err)
		}
		v := ValidateRun(cat, r, kind, core.DefaultWorkerMemoryMB(size.Scaled))
		ok := v.ComputeAgrees(0.01) && v.CommsAgree(0.01) && v.TotalAgrees(0.01)
		t.Rows = append(t.Rows, []string{
			kind.String(),
			dollars(v.Predicted.Lambda), dollars(v.Actual.Lambda),
			dollars(v.Predicted.Comms()), dollars(v.Actual.Comms()),
			dollars(v.Predicted.Total()), dollars(v.Actual.Total()),
			fmt.Sprintf("%v", ok),
		})
	}
	t.Notes = append(t.Notes,
		"predictions use only worker-side ledgers (runtimes, billed-publish counts, byte counts,",
		"poll/delete/PUT/GET/LIST counts); actuals come from the metered billing records,",
		"mirroring the paper's Cost & Usage report comparison")
	return t, nil
}

// ValidateRun builds the §VI-F validation for one run: the prediction uses
// only worker-side fine-grained metrics evaluated through Equations
// (1)-(7); the actual side is the run's metered billing.
func ValidateRun(cat pricing.Catalog, r *core.Result, kind core.ChannelKind, workerMemMB int) cost.Validation {
	var workerRuntime time.Duration
	var billedPubs, msgBytes, polls, deletes int64
	var puts, gets, lists, storeGets, storePuts int64
	for _, w := range r.Workers {
		workerRuntime += w.Runtime()
		billedPubs += w.BilledPublishes
		msgBytes += w.BytesSent + w.AttrBytes
		polls += w.Polls
		deletes += w.Deletes
		storeGets += w.StoreGets
		storePuts += w.StorePuts
		if kind == core.Object {
			puts += w.Publishes
			gets += w.Fetches
			lists += w.Polls
		}
	}
	workers := cost.LambdaUsage{
		Invocations:  int64(len(r.Workers)),
		MemoryMB:     workerMemMB,
		TotalRuntime: workerRuntime,
	}
	coord := cost.LambdaUsage{MemoryMB: 128, TotalRuntime: r.CoordinatorRuntime}
	if r.CoordinatorRuntime > 0 {
		coord.Invocations = 1
	}

	var pred usage.Breakdown
	switch kind {
	case core.Queue:
		pred = cost.PredictQueue(cat, workers, cost.QueueUsage{
			BilledPublishes: billedPubs,
			DeliveredBytes:  msgBytes,
			SQSRequests:     polls + deletes,
		})
		pred.S3 = cost.S3(cat, cost.ObjectUsage{Puts: storePuts, Gets: storeGets})
	case core.Object:
		pred = cost.PredictObject(cat, workers, cost.ObjectUsage{
			Puts: puts + storePuts,
			Gets: gets + storeGets,
			// The non-root barrier waits poll LISTs too; Polls counts
			// them already via the channel's ledger.
			Lists: lists,
		})
	default:
		pred = cost.PredictSerial(cat, workers)
		pred.S3 = cost.S3(cat, cost.ObjectUsage{Puts: storePuts, Gets: storeGets})
	}
	pred.Lambda += cost.Lambda(cat, coord)
	return cost.Validation{Predicted: pred, Actual: r.Cost}
}

var _ = model.Model{}
