package experiments

import (
	"fmt"
	"time"

	"fsdinference/internal/collective"
	"fsdinference/internal/core"
	"fsdinference/internal/partition"
	"fsdinference/internal/plan"
)

// Mixed-workload scenario constants: a bursty bulk-tensor endpoint at
// moderate daily volume. Bursts stack many engine runs on the store at
// once, so the resident working set — not the request rate — is what
// sizes the control-plane node.
const (
	mixedQueriesPerDay = 400
	mixedConcurrency   = 64
)

// CollectivesExperiment evaluates the collectives subsystem on two axes
// the flat legacy implementation cannot win:
//
//  1. Topology: measured barrier+allreduce time of the flat, binomial-tree
//     and ring collectives on the memory channel as P grows. Flat's root
//     frames and ships the combined result once per target, so its
//     closing collectives grow linearly with P; the tree finishes in
//     ceil(log2 P) rounds and the ring forwards exactly one contribution
//     per rank per round, so both beat flat at every P and the gap
//     widens as P grows.
//  2. Channel routing under a mixed small-control/bulk-tensor workload:
//     the workload-aware Planner scores every monolithic channel against
//     the hybrid channel for a bursty bulk profile. Burst concurrency
//     multiplies the store-resident working set past the small node's
//     usable memory, so the memory channel is forced onto a bigger
//     (4x pricier) node, while the hybrid channel parks bulk tensors in
//     object storage and keeps the small node — nearly memory-speed at a
//     fraction of the daily bill, and ~1 OOM faster than the per-request
//     channels on the control traffic. The hybrid candidate therefore
//     scores best, which is the selection this experiment asserts.
//
// A third mini-grid demonstrates the analytic collective pre-filter: at
// P=32 the tree allreduce is modelled at less than half the flat time
// with no extra messages, so the flat candidate is pruned before any
// trial is paid for.
func CollectivesExperiment(l *Lab) (*Table, error) {
	t := &Table{
		ID:    "collectives",
		Title: "Collective topologies vs P, and hybrid channel selection on a mixed small-control/bulk-tensor workload",
		Columns: []string{
			"row", "flat ms", "tree ms", "ring ms", "detail",
		},
	}

	// Part 1: measured closing-collective latency (max worker barrier +
	// reduce time) per topology across P, with AllreduceOutput on so the
	// closing reduce is a true allreduce — the regime the paper's flat
	// root-gather handles worst — and the system's zlib payload
	// compression on (§IV-B), since framing cost is what separates the
	// topologies. The batch is widened so each rank's contribution is
	// compute-heavy to (re-)compress: flat's root frames the full result
	// once per target (O(P·V) work at one rank), the tree pays it over
	// ceil(log2 P) rounds, and the ring never forwards more than one
	// contribution per round (O(V) per rank). N=1024 is a stand-in
	// present in both scale grids.
	const neurons = 1024
	collBatch := 16 * l.Scale.Batch
	algos := []collective.Algorithm{collective.Flat, collective.Tree, collective.Ring}
	for _, p := range []int{8, 16, 32} {
		ms := make(map[collective.Algorithm]float64)
		for _, alg := range algos {
			alg := alg
			r, err := l.RunFSD(neurons, p, collBatch, core.Memory, partition.Block, func(c *core.Config) {
				c.Collective = alg
				c.AllreduceOutput = true
				c.Compress = true
			})
			if err != nil {
				return nil, fmt.Errorf("collectives %v P=%d: %w", alg, p, err)
			}
			var worst time.Duration
			for _, w := range r.Workers {
				if d := w.BarrierTime + w.ReduceTime; d > worst {
					worst = d
				}
			}
			ms[alg] = float64(worst.Microseconds()) / 1000
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("P=%d", p),
			fmt.Sprintf("%.2f", ms[collective.Flat]),
			fmt.Sprintf("%.2f", ms[collective.Tree]),
			fmt.Sprintf("%.2f", ms[collective.Ring]),
			"max worker barrier+reduce",
		})
	}

	// Part 2: the mixed-workload planner. Serial execution is excluded
	// from the grid: the stand-in models fit one instance, but the
	// experiment studies channel choice for the distributed regime the
	// paper targets, as the channels experiment does. HGP-DNN
	// partitioning gives the genuinely mixed pair-size distribution the
	// hybrid channel is built for: most worker pairs exchange small
	// control values that ride the store inline, a minority ship bulk
	// tensor slices.
	m, err := l.Model(neurons)
	if err != nil {
		return nil, err
	}
	planner, err := plan.New(m, plan.Options{
		Objective: plan.WeightedObjective(0.5),
		Scheme:    partition.HGPDNN,
		Grid: plan.Grid{
			Channels:    []core.ChannelKind{core.Queue, core.Object, core.Memory, core.Hybrid},
			Workers:     []int{8},
			KVNodeTypes: []string{"cache.t3.small", "cache.m6g.large"},
		},
		Seed: l.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	bulkBatch := 4096
	dec, err := planner.Plan(plan.WorkloadProfile{
		QueriesPerDay: mixedQueriesPerDay,
		BatchSamples:  bulkBatch,
		Concurrency:   mixedConcurrency,
	})
	if err != nil {
		return nil, fmt.Errorf("collectives mixed-workload plan: %w", err)
	}
	for _, tr := range dec.Trials {
		row := []string{"mixed " + tr.Candidate.String(), "-", "-", "-", ""}
		switch {
		case tr.Pruned:
			row[4] = "pruned: " + tr.PruneReason
		case tr.Err != nil:
			row[4] = "error: " + tr.Err.Error()
		default:
			row[4] = fmt.Sprintf("lat %.0fms, $%.4f/query, score %.3f",
				float64(tr.Latency.Microseconds())/1000, tr.Cost, tr.Score)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"mixed pick", "-", "-", "-", dec.Best.String()})

	// Part 3: the analytic collective pre-filter. At P=32 the model puts
	// the tree allreduce at under half the flat time with no extra
	// messages, so the flat candidate never reaches a trial.
	pruner, err := plan.New(m, plan.Options{
		Objective: plan.LatencyObjective(),
		Grid: plan.Grid{
			Channels:    []core.ChannelKind{core.Memory},
			Workers:     []int{32},
			Collectives: []collective.Algorithm{collective.Flat, collective.Tree},
		},
		Seed: l.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	pdec, err := pruner.Plan(plan.WorkloadProfile{BatchSamples: collBatch})
	if err != nil {
		return nil, fmt.Errorf("collectives prune plan: %w", err)
	}
	for _, tr := range pdec.Trials {
		if tr.Pruned {
			t.Rows = append(t.Rows, []string{"prune " + tr.Candidate.String(), "-", "-", "-", tr.PruneReason})
		}
	}
	t.Rows = append(t.Rows, []string{"prune pick", "-", "-", "-", pdec.Best.String()})

	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d, collective batch %d, allreduce output, compressed payloads; flat's root frames the result once per target, tree runs ceil(log2 P) rounds, ring forwards one contribution per rank per round", neurons, collBatch),
		fmt.Sprintf("mixed profile: %d bulk queries/day (batch %d) arriving in bursts of %d concurrent runs; weighted(0.50) objective",
			mixedQueriesPerDay, bulkBatch, mixedConcurrency),
		"the burst working set overflows cache.t3.small for the memory channel, which must pay for cache.m6g.large;",
		"the hybrid channel offloads bulk tensors to object storage, keeps the small node, and wins the score")
	return t, nil
}
