package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Experiments share one lab and run once; tests assert on the cached
// tables.
var (
	labOnce sync.Once
	lab     *Lab
	tables  map[string]*Table
	tabErr  map[string]error
)

func table(t *testing.T, id string) *Table {
	t.Helper()
	labOnce.Do(func() {
		lab = NewLab(QuickScale())
		tables = make(map[string]*Table)
		tabErr = make(map[string]error)
		for _, r := range Registry() {
			tab, err := r.Run(lab)
			tables[r.ID] = tab
			tabErr[r.ID] = err
		}
	})
	if err := tabErr[id]; err != nil {
		t.Fatalf("experiment %s failed: %v", id, err)
	}
	return tables[id]
}

func cellFloat(t *testing.T, tab *Table, key, col string) float64 {
	t.Helper()
	s, ok := tab.Cell(key, col)
	if !ok {
		t.Fatalf("%s: no cell (%s, %s)", tab.ID, key, col)
	}
	s = strings.TrimSuffix(strings.TrimSuffix(s, "*"), "k")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%s,%s)=%q not numeric", tab.ID, key, col, s)
	}
	return v
}

func TestRegistryCompleteAndUnique(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range Registry() {
		if ids[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		ids[r.ID] = true
		if r.Desc == "" || r.Run == nil {
			t.Fatalf("experiment %s incomplete", r.ID)
		}
	}
	for _, want := range []string{"fig4", "fig5", "fig6", "table2", "table3", "costval"} {
		if !ids[want] {
			t.Fatalf("missing paper experiment %s", want)
		}
	}
	if _, ok := Find("fig4"); !ok {
		t.Fatal("Find failed for fig4")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find invented an experiment")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	for _, r := range Registry() {
		tab := table(t, r.ID)
		if tab == nil || len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Fatalf("%s produced an empty table", r.ID)
		}
		if s := tab.String(); !strings.Contains(s, tab.Title) {
			t.Fatalf("%s: rendering lost the title", r.ID)
		}
	}
}

func TestFig4ShapeFSDGrowsAOFlat(t *testing.T) {
	tab := table(t, "fig4")
	first := cellFloat(t, tab, "10k", "FSD-Inference")
	last := cellFloat(t, tab, "5120k", "FSD-Inference")
	if last <= first {
		t.Fatalf("FSD daily cost flat: %v -> %v", first, last)
	}
	aoFirst := cellFloat(t, tab, "10k", "Server-Always-On")
	aoLast := cellFloat(t, tab, "5120k", "Server-Always-On")
	if aoFirst != aoLast {
		t.Fatal("always-on cost should be flat")
	}
	// At low volumes FSD must be dramatically cheaper (the paper's core
	// sporadic-workload claim).
	if first*100 > aoFirst {
		t.Fatalf("FSD at 10k/day ($%v) not far below always-on ($%v)", first, aoFirst)
	}
}

func TestFig5ShapeParallelismPaysOffAtScale(t *testing.T) {
	tab := table(t, "fig5")
	largest := tab.Rows[len(tab.Rows)-1][0]
	fsd := cellFloat(t, tab, largest, "FSD-Inf")
	aoHot := cellFloat(t, tab, largest, "AO-Hot")
	aoCold := cellFloat(t, tab, largest, "AO-Cold")
	js := cellFloat(t, tab, largest, "JS")
	if !(fsd < aoHot && fsd < aoCold && fsd < js) {
		t.Fatalf("at N=%s FSD (%v) should beat AO-Hot (%v), AO-Cold (%v) and JS (%v)",
			largest, fsd, aoHot, aoCold, js)
	}
	// At the smallest size the always-on hot server wins (paper Fig. 5).
	smallest := tab.Rows[0][0]
	if cellFloat(t, tab, smallest, "AO-Hot") >= cellFloat(t, tab, smallest, "FSD-Inf") {
		t.Fatalf("at N=%s AO-Hot should beat FSD", smallest)
	}
	// JS pays provisioning on every query: never the winner.
	for _, row := range tab.Rows {
		js := cellFloat(t, tab, row[0], "JS")
		if js < cellFloat(t, tab, row[0], "AO-Hot") {
			t.Fatalf("JS beat AO-Hot at N=%s", row[0])
		}
	}
}

func TestFig6ShapeObjectCostGrowsFasterWithP(t *testing.T) {
	tab := table(t, "fig6")
	// For each size: object cost at max P must exceed queue cost at max
	// P, and object cost must grow with P.
	type point struct{ q, o float64 }
	bySize := map[string][]point{}
	var order []string
	for _, row := range tab.Rows {
		if row[0] == "" {
			continue
		}
		q, _ := strconv.ParseFloat(row[2], 64)
		o, _ := strconv.ParseFloat(row[5], 64)
		qc, _ := strconv.ParseFloat(row[3], 64)
		oc, _ := strconv.ParseFloat(row[5], 64)
		_ = q
		_ = o
		if _, ok := bySize[row[0]]; !ok {
			order = append(order, row[0])
		}
		bySize[row[0]] = append(bySize[row[0]], point{qc, oc})
	}
	for _, size := range order {
		pts := bySize[size]
		lastP := pts[len(pts)-1]
		if lastP.o <= lastP.q {
			t.Fatalf("N=%s: object cost %v not above queue cost %v at max P", size, lastP.o, lastP.q)
		}
		if pts[len(pts)-1].o <= pts[0].o {
			t.Fatalf("N=%s: object cost did not grow with P", size)
		}
	}
}

func TestTable2SerialParallelCrossover(t *testing.T) {
	tab := table(t, "table2")
	rows := tab.Rows
	smallest := rows[0][0]
	third := rows[2][0]
	largest := rows[len(rows)-1][0]

	// Serial wins at the smallest size (paper: 2.00 vs 6.43 ms).
	if cellFloat(t, tab, smallest, "FSD-Inf-Serial") >= cellFloat(t, tab, smallest, "FSD-Inf-Parallel") {
		t.Fatalf("serial should win at N=%s", smallest)
	}
	// Parallel wins at the third size (paper: 12.97 vs 32.62 ms).
	if cellFloat(t, tab, third, "FSD-Inf-Parallel") >= cellFloat(t, tab, third, "FSD-Inf-Serial") {
		t.Fatalf("parallel should win at N=%s", third)
	}
	// Serial and Sage are infeasible at the largest size.
	if s, _ := tab.Cell(largest, "FSD-Inf-Serial"); s != "-" {
		t.Fatalf("serial at N=%s should be infeasible, got %q", largest, s)
	}
	if s, _ := tab.Cell(largest, "Sage-SL-Inf"); s != "-" {
		t.Fatalf("sage at N=%s should be infeasible, got %q", largest, s)
	}
	// Sage processes only a payload-capped sample count.
	if s, _ := tab.Cell(smallest, "Sage samples"); !strings.Contains(s, "8192 of 10000") {
		t.Fatalf("sage samples at N=%s = %q, want 8192 of 10000", smallest, s)
	}
}

func TestTable3HGPBeatsRandom(t *testing.T) {
	tab := table(t, "table3")
	hgp := cellFloat(t, tab, "HGP-DNN", "data volume sent (B)")
	rp := cellFloat(t, tab, "RP", "data volume sent (B)")
	if hgp*2 >= rp {
		t.Fatalf("HGP volume %v not well below RP %v", hgp, rp)
	}
	hgpMS := cellFloat(t, tab, "HGP-DNN", "per-sample runtime (ms)")
	rpMS := cellFloat(t, tab, "RP", "per-sample runtime (ms)")
	if hgpMS >= rpMS {
		t.Fatalf("HGP runtime %v not below RP %v", hgpMS, rpMS)
	}
}

func TestCostValidationAgrees(t *testing.T) {
	tab := table(t, "costval")
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("cost validation failed for %s: %v", row[0], row)
		}
	}
}

func TestPollingAblationLongWins(t *testing.T) {
	tab := table(t, "polling")
	longReq := cellFloat(t, tab, "long (W=2s)", "SQS requests")
	shortReq := cellFloat(t, tab, "short (W=0)", "SQS requests")
	if longReq >= shortReq {
		t.Fatalf("long polling requests %v not below short %v", longReq, shortReq)
	}
	longPer := cellFloat(t, tab, "long (W=2s)", "msgs/poll")
	shortPer := cellFloat(t, tab, "short (W=0)", "msgs/poll")
	if longPer <= shortPer {
		t.Fatalf("long polling msgs/poll %v not above short %v", longPer, shortPer)
	}
}

func TestLaunchAblationHierarchicalBeatsCentralized(t *testing.T) {
	tab := table(t, "launch")
	h := cellFloat(t, tab, "hierarchical", "tree populated (s)")
	c := cellFloat(t, tab, "centralized", "tree populated (s)")
	if h >= c {
		t.Fatalf("hierarchical %v not faster than centralized %v", h, c)
	}
}

func TestCompressionAblationShrinksBytes(t *testing.T) {
	tab := table(t, "compression")
	z := cellFloat(t, tab, "zlib", "bytes sent")
	o := cellFloat(t, tab, "off", "bytes sent")
	if z >= o {
		t.Fatalf("zlib bytes %v not below uncompressed %v", z, o)
	}
	if cellFloat(t, tab, "zlib", "total $") > cellFloat(t, tab, "off", "total $") {
		t.Fatal("compression should not raise total cost")
	}
}

func TestQuotaAblationCrossover(t *testing.T) {
	tab := table(t, "quota")
	small := cellFloat(t, tab, "1024", "queue/object")
	big := cellFloat(t, tab, "268435456", "queue/object")
	if small >= 0.1 {
		t.Fatalf("queue/object ratio at 1KB = %v, want ~1 OOM cheaper", small)
	}
	if big <= 1 {
		t.Fatalf("queue/object ratio at 256MB = %v, want object cheaper", big)
	}
}

func TestDilationArithmetic(t *testing.T) {
	l := NewLab(QuickScale())
	size := l.Scale.Sizes[0] // 256 -> 1024
	// macRatio = (1024/256) * (120/12) = 40; batch ratio = 10000/32.
	want := 40.0 * 10000 / 32
	if got := l.Dilation(size); got != want {
		t.Fatalf("dilation = %v, want %v", got, want)
	}
	if got := l.layerDilation(size); got != want*12/120 {
		t.Fatalf("layer dilation = %v, want %v", got, want*12/120)
	}
}

func TestPaperFeasibilityGates(t *testing.T) {
	l := NewLab(QuickScale())
	if !l.SerialFeasiblePaper(16384) {
		t.Fatal("N=16384 should fit the serial instance")
	}
	if l.SerialFeasiblePaper(65536) {
		t.Fatal("N=65536 should exceed the serial instance (paper)")
	}
	if !l.SageFeasiblePaper(16384) || l.SageFeasiblePaper(65536) {
		t.Fatal("sage feasibility gates wrong")
	}
	if got := l.SageSamplesPaper(1024); got != 8192 {
		t.Fatalf("sage samples at 1024 = %d, want 8192", got)
	}
}

func TestTableCellLookup(t *testing.T) {
	tab := &Table{
		Columns: []string{"k", "v"},
		Rows:    [][]string{{"a", "1"}, {"b", "2"}},
	}
	if v, ok := tab.Cell("b", "v"); !ok || v != "2" {
		t.Fatalf("Cell = %q, %v", v, ok)
	}
	if _, ok := tab.Cell("c", "v"); ok {
		t.Fatal("missing key found")
	}
	if _, ok := tab.Cell("a", "w"); ok {
		t.Fatal("missing column found")
	}
}

func TestPlannerBeatsStaticPicksAcrossRegimes(t *testing.T) {
	// The acceptance bar for the workload-aware planner: drift-aware
	// Replan beats both static one-shot AutoSelect picks on daily cost
	// for the sporadic trace (the statics keep an idle-billing memory
	// node the probe scoring undercounted) and matches them on the
	// sustained trace (where the flat node rate genuinely wins).
	tab := table(t, "planner")
	spor := fmt.Sprintf("sporadic(%d/day) $", sporadicQueriesPerDay)
	sus := fmt.Sprintf("sustained(%dk/day) $", sustainedQueriesPerDay/1000)
	planSpor := cellFloat(t, tab, "planner", spor)
	planSus := cellFloat(t, tab, "planner", sus)
	for _, static := range []string{"static-latency", "static-cost"} {
		sSpor := cellFloat(t, tab, static, spor)
		sSus := cellFloat(t, tab, static, sus)
		if planSpor >= sSpor {
			t.Fatalf("sporadic: planner $%.4f/day does not beat %s $%.4f/day", planSpor, static, sSpor)
		}
		if planSus > sSus*1.001 {
			t.Fatalf("sustained: planner $%.4f/day does not match %s $%.4f/day", planSus, static, sSus)
		}
	}
	// The undercount at the heart of it: both statics hold the memory
	// channel on the sporadic trace.
	for _, static := range []string{"static-latency", "static-cost"} {
		pick, ok := tab.Cell(static, "pick")
		if !ok || !strings.Contains(pick, "Memory") {
			t.Fatalf("%s picked %q; the probe-scored selection should keep the memory channel", static, pick)
		}
	}
	if pick, _ := tab.Cell("planner", "pick"); !strings.Contains(pick, "Queue") || !strings.Contains(pick, "Memory") {
		t.Fatalf("planner pick %q should flip queue -> memory across regimes", pick)
	}
}

func TestChannelComparisonRegimes(t *testing.T) {
	// The three-way comparison must show the paper's tradeoff: the
	// memory store is the fastest channel at every parallelism, the
	// cheapest under sustained load, and the most expensive on the
	// sporadic trace (idle node-hours).
	tab := table(t, "channels")
	for _, p := range lab.Scale.Workers {
		key := strconv.Itoa(p)
		qms := cellFloat(t, tab, key, "queue ms")
		mms := cellFloat(t, tab, key, "memory ms")
		if mms >= qms {
			t.Fatalf("P=%d: memory %.2f ms not below queue %.2f ms", p, mms, qms)
		}
	}
	for _, col := range []string{"queue $", "object $"} {
		sporadic := cellFloat(t, tab, "sporadic(20/day)", col)
		sustained := cellFloat(t, tab, "sustained(200k/day)", col)
		memSporadic := cellFloat(t, tab, "sporadic(20/day)", "memory $")
		memSustained := cellFloat(t, tab, "sustained(200k/day)", "memory $")
		if memSporadic <= sporadic {
			t.Fatalf("sporadic: memory $%.4f not above %s $%.4f", memSporadic, col, sporadic)
		}
		if memSustained >= sustained {
			t.Fatalf("sustained: memory $%.4f not below %s $%.4f", memSustained, col, sustained)
		}
	}
}

func TestClusterThroughputScalesPastCeiling(t *testing.T) {
	// Headline (a): one provisioned node pins at its request-rate
	// ceiling; hashing the keyspace across shards serves past it,
	// roughly linearly.
	tab := table(t, "cluster")
	ops := func(key string) float64 {
		t.Helper()
		s, ok := tab.Cell(key, "ops/s")
		if !ok {
			t.Fatalf("no cell (%s, ops/s)", key)
		}
		v, err := strconv.ParseFloat(strings.Fields(s)[0], 64)
		if err != nil {
			t.Fatalf("cell %q not numeric", s)
		}
		return v
	}
	one := ops("throughput 1 shard(s)")
	two := ops("throughput 2 shard(s)")
	four := ops("throughput 4 shard(s)")
	const ceiling = 40_000 // cache.t3.small MaxOpsPerSec
	if one > ceiling*1.10 {
		t.Fatalf("single node served %.0f ops/s, above its %d ceiling", one, ceiling)
	}
	if two <= ceiling*1.3 {
		t.Fatalf("2 shards served %.0f ops/s, not past the single-node ceiling", two)
	}
	if four <= two*1.3 {
		t.Fatalf("4 shards served %.0f ops/s, not meaningfully past 2 shards' %.0f", four, two)
	}
}

func TestClusterFailoverLadder(t *testing.T) {
	// Headline (b): a mid-run KillNode with R=2 completes with zero lost
	// messages; R=0 and R=1 lose in-flight values the run must re-send
	// and stall through the failover window — with replica node-hours
	// visible in the cost breakdown.
	tab := table(t, "cluster")
	baseLat := cellFloat(t, tab, "no failure R=0", "latency ms")
	for _, key := range []string{"kill mid-run R=0", "kill mid-run R=1"} {
		lost := cellFloat(t, tab, key, "lost")
		resent := cellFloat(t, tab, key, "resent")
		if lost <= 0 || resent <= 0 {
			t.Fatalf("%s: lost %.0f / resent %.0f, want both positive", key, lost, resent)
		}
		if lat := cellFloat(t, tab, key, "latency ms"); lat <= baseLat {
			t.Fatalf("%s: latency %.2f ms not above the %.2f ms no-failure baseline", key, lat, baseLat)
		}
	}
	if lost := cellFloat(t, tab, "kill mid-run R=2", "lost"); lost != 0 {
		t.Fatalf("R=2 lost %.0f values; quorum replication must hide a single kill", lost)
	}
	if resent := cellFloat(t, tab, "kill mid-run R=2", "resent"); resent != 0 {
		t.Fatalf("R=2 re-sent %.0f values; nothing should have been lost", resent)
	}
	kv := func(key string) (total, replicas float64) {
		t.Helper()
		s, ok := tab.Cell(key, "KV $ (replicas $)")
		if !ok {
			t.Fatalf("no cell (%s, KV $)", key)
		}
		parts := strings.Fields(s)
		total, err1 := strconv.ParseFloat(parts[0], 64)
		replicas, err2 := strconv.ParseFloat(strings.Trim(parts[1], "()"), 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("cell %q not parseable", s)
		}
		return total, replicas
	}
	t0, r0 := kv("kill mid-run R=0")
	t2, r2 := kv("kill mid-run R=2")
	if r0 != 0 {
		t.Fatalf("R=0 shows $%.4f replica spend", r0)
	}
	if r2 <= 0 || t2 <= t0 {
		t.Fatalf("R=2 replica premium not visible: total $%.4f (replicas $%.4f) vs R=0 $%.4f", t2, r2, t0)
	}
	// The planner note closes the loop: a saturating volume picks the
	// sharded candidate.
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "2 shards") && strings.Contains(n, "Plan picks") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no planner note picking the sharded candidate:\n%v", tab.Notes)
	}
}

func TestCollectivesShape(t *testing.T) {
	tab := table(t, "collectives")
	// Topology: tree and ring allreduce strictly beat flat from P=16 on,
	// and the flat gap widens with P.
	var prevFlat float64
	for _, p := range []string{"P=16", "P=32"} {
		flat := cellFloat(t, tab, p, "flat ms")
		tree := cellFloat(t, tab, p, "tree ms")
		ring := cellFloat(t, tab, p, "ring ms")
		if tree >= flat {
			t.Fatalf("%s: tree %.2fms does not beat flat %.2fms", p, tree, flat)
		}
		if ring >= flat {
			t.Fatalf("%s: ring %.2fms does not beat flat %.2fms", p, ring, flat)
		}
		if flat <= prevFlat {
			t.Fatalf("%s: flat %.2fms did not grow from %.2fms", p, flat, prevFlat)
		}
		prevFlat = flat
	}
	// Mixed workload: the planner picks a hybrid candidate on the small
	// node, and the hybrid score beats every monolithic channel's best.
	pick, ok := tab.Cell("mixed pick", "detail")
	if !ok || !strings.Contains(pick, "Hybrid") || !strings.Contains(pick, "cache.t3.small") {
		t.Fatalf("mixed pick is not hybrid on the small node: %q", pick)
	}
	bestScore := func(prefix string) float64 {
		best := -1.0
		for _, row := range tab.Rows {
			if !strings.HasPrefix(row[0], prefix) {
				continue
			}
			detail := row[len(row)-1]
			i := strings.Index(detail, "score ")
			if i < 0 {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(detail[i+len("score "):]), 64)
			if err != nil {
				t.Fatalf("%s: bad score in %q", row[0], detail)
			}
			if best < 0 || v < best {
				best = v
			}
		}
		if best < 0 {
			t.Fatalf("no scored trial rows with prefix %q", prefix)
		}
		return best
	}
	hybrid := bestScore("mixed FSD-Inf-Hybrid")
	for _, mono := range []string{"mixed FSD-Inf-Queue", "mixed FSD-Inf-Object", "mixed FSD-Inf-Memory"} {
		if s := bestScore(mono); hybrid >= s {
			t.Fatalf("hybrid score %.3f does not beat %s best %.3f", hybrid, mono, s)
		}
	}
	// The burst working set prunes the memory channel off the small node.
	pruned := false
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "mixed FSD-Inf-Memory") && strings.Contains(row[len(row)-1], "overflows") {
			pruned = true
		}
	}
	if !pruned {
		t.Fatal("memory channel on the small node was not capacity-pruned")
	}
	// The analytic pre-filter prunes the flat collective; tree wins.
	ppick, ok := tab.Cell("prune pick", "detail")
	if !ok || !strings.Contains(ppick, "[tree]") {
		t.Fatalf("prune pick did not select the tree collective: %q", ppick)
	}
}

func TestSLOMonitorAlertBeatsDrift(t *testing.T) {
	// The monitor's acceptance bar: on the flash crowd the burn-rate
	// page must fire within two scrape intervals of the crowd's onset,
	// the alert-driven re-plan must land before the drift arm's
	// break-even crossing, and acting on the page must cut simulated
	// time in SLO violation.
	tab := table(t, "slomonitor")
	driftReplan := cellFloat(t, tab, "drift-only", "first replan (s)")
	alertReplan := cellFloat(t, tab, "alert-driven", "first replan (s)")
	if alertReplan >= driftReplan {
		t.Fatalf("alert-driven replan at %.0fs not before drift replan at %.0fs", alertReplan, driftReplan)
	}
	page := cellFloat(t, tab, "alert-driven", "page (s)")
	const crowd, interval = 600, 15
	if page < crowd || page > crowd+2*interval {
		t.Fatalf("page at %.0fs, want within two scrapes of the crowd at %ds", page, crowd)
	}
	if alertReplan != page {
		t.Fatalf("alert-driven replan at %.0fs did not ride the page at %.0fs", alertReplan, page)
	}
	trigger, _ := tab.Cell("alert-driven", "trigger")
	if !strings.Contains(trigger, "slo alert") {
		t.Fatalf("alert-driven trigger %q is not the SLO alert", trigger)
	}
	trigger, _ = tab.Cell("drift-only", "trigger")
	if !strings.Contains(trigger, "break-even") {
		t.Fatalf("drift-only trigger %q is not the break-even crossing", trigger)
	}
	driftViol := cellFloat(t, tab, "drift-only", "violation (s)")
	alertViol := cellFloat(t, tab, "alert-driven", "violation (s)")
	if alertViol <= 0 || driftViol <= 0 {
		t.Fatalf("both arms must spend time in violation: drift %.0fs, alert %.0fs", driftViol, alertViol)
	}
	if alertViol >= driftViol {
		t.Fatalf("alert-driven violation %.0fs not below drift-only %.0fs", alertViol, driftViol)
	}
	// The passive arm still pages — observation is identical, only the
	// sink differs.
	if p := cellFloat(t, tab, "drift-only", "page (s)"); p != page {
		t.Fatalf("passive page at %.0fs diverged from active %.0fs", p, page)
	}
}
