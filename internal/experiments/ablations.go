package experiments

import (
	"fmt"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/core"
	"fsdinference/internal/cost"
	"fsdinference/internal/partition"
)

// AblationPolling regenerates the paper's polling analysis (§III-C1,
// "analysis not shown"): long polling returns more messages per poll,
// issues far fewer queueing API requests and therefore costs less than
// short polling, at comparable or better latency.
func AblationPolling(l *Lab) (*Table, error) {
	size := l.Scale.Sizes[min(1, len(l.Scale.Sizes)-1)]
	workers := l.Scale.Workers[min(1, len(l.Scale.Workers)-1)]
	t := &Table{
		ID:    "polling",
		Title: fmt.Sprintf("Long vs short queue polling (N(paper)=%d, P=%d)", size.Paper, workers),
		Columns: []string{
			"polling", "per-sample ms", "SQS requests", "msgs/poll", "comms $",
		},
	}
	for _, tc := range []struct {
		name string
		wait time.Duration
	}{
		{"long (W=2s)", 2 * time.Second},
		{"short (W=0)", 0},
	} {
		r, err := l.RunFSD(size.Scaled, workers, l.Scale.Batch, core.Queue, partition.Block,
			func(c *core.Config) { c.PollWait = tc.wait })
		if err != nil {
			return nil, fmt.Errorf("polling %s: %w", tc.name, err)
		}
		var polls, fetches int64
		for _, w := range r.Workers {
			polls += w.Polls
			fetches += w.Fetches
		}
		perPoll := 0.0
		if polls > 0 {
			perPoll = float64(fetches) / float64(polls)
		}
		t.Rows = append(t.Rows, []string{
			tc.name,
			msPerSample(r.Latency, r.Batch),
			fmt.Sprintf("%d", r.Usage.SQSRequests()),
			fmt.Sprintf("%.2f", perPoll),
			dollars(r.Cost.Comms()),
		})
	}
	t.Notes = append(t.Notes,
		"short polls sample a subset of queue shards and may return empty even when messages",
		"exist; long polling visits every shard and waits for arrivals, reducing request counts")
	return t, nil
}

// AblationLaunch regenerates the launch-mechanism comparison (§III,
// "experiments not shown"): the hierarchical worker_invoke_children tree
// versus a centralised single loop and a Lambada-style two-level loop.
func AblationLaunch(l *Lab) (*Table, error) {
	size := l.Scale.Sizes[min(1, len(l.Scale.Sizes)-1)]
	workers := l.Scale.Workers[len(l.Scale.Workers)-1]
	t := &Table{
		ID:      "launch",
		Title:   fmt.Sprintf("Worker-tree launch mechanisms (P=%d)", workers),
		Columns: []string{"mechanism", "tree populated (s)", "query latency (s)"},
	}
	for _, mode := range []core.LaunchMode{core.Hierarchical, core.Centralized, core.TwoLevel} {
		r, err := l.RunFSD(size.Scaled, workers, l.Scale.Batch, core.Queue, partition.Block,
			func(c *core.Config) { c.Launch = mode })
		if err != nil {
			return nil, fmt.Errorf("launch %v: %w", mode, err)
		}
		t.Rows = append(t.Rows, []string{
			mode.String(),
			fmt.Sprintf("%.3f", r.LaunchComplete.Seconds()),
			fmt.Sprintf("%.3f", r.Latency.Seconds()),
		})
	}
	t.Notes = append(t.Notes,
		"the centralised loop serialises every invoke on the CPU-starved 128 MB coordinator;",
		"the hierarchical tree spreads invocation work across full-size workers (paper §II-B)")
	return t, nil
}

// AblationCompression regenerates the §IV-B compression discussion: zlib
// shrinks communication volume, reducing billed publishes, transfer bytes
// and end-to-end cost for the queue channel.
func AblationCompression(l *Lab) (*Table, error) {
	size := l.Scale.Sizes[min(1, len(l.Scale.Sizes)-1)]
	workers := l.Scale.Workers[min(1, len(l.Scale.Workers)-1)]
	t := &Table{
		ID:    "compression",
		Title: fmt.Sprintf("ZLIB payload compression (N(paper)=%d, P=%d, queue)", size.Paper, workers),
		Columns: []string{
			"compression", "bytes sent", "billed publishes", "per-sample ms", "total $",
		},
	}
	for _, tc := range []struct {
		name     string
		compress bool
	}{
		{"zlib", true},
		{"off", false},
	} {
		r, err := l.RunFSD(size.Scaled, workers, l.Scale.Batch, core.Queue, partition.Block,
			func(c *core.Config) { c.Compress = tc.compress })
		if err != nil {
			return nil, fmt.Errorf("compression %s: %w", tc.name, err)
		}
		var billed int64
		for _, w := range r.Workers {
			billed += w.BilledPublishes
		}
		t.Rows = append(t.Rows, []string{
			tc.name,
			fmt.Sprintf("%d", r.TotalBytesSent()),
			fmt.Sprintf("%d", billed),
			msPerSample(r.Latency, r.Batch),
			dollars(r.Cost.Total()),
		})
	}
	t.Notes = append(t.Notes,
		"compression reduces S, Z and Q directly and shortens runtimes under the lower IPC load (§IV-B)")
	return t, nil
}

// AblationQuota regenerates the §IV-C API-cost analysis: per-layer
// communication request cost of the two channels as per-pair volume grows,
// locating the crossover where object storage becomes cheaper.
func AblationQuota(l *Lab) (*Table, error) {
	cat := env.DefaultConfig().Pricing
	t := &Table{
		ID:      "quota",
		Title:   "Channel API request cost per layer vs per-pair volume (100 pairs)",
		Columns: []string{"bytes/pair", "queue API $", "object API $", "queue/object"},
	}
	crossed := ""
	for _, bytes := range []int64{1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 16 << 20, 64 << 20, 256 << 20} {
		q, o := cost.APICost(cat, 100, bytes)
		ratio := q / o
		if crossed == "" && q > o {
			crossed = fmt.Sprintf("%d", bytes)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", bytes),
			fmt.Sprintf("%.6f", q),
			fmt.Sprintf("%.6f", o),
			fmt.Sprintf("%.3f", ratio),
		})
	}
	if crossed != "" {
		t.Notes = append(t.Notes, "object storage becomes cheaper per request from "+crossed+" bytes/pair")
	}
	t.Notes = append(t.Notes,
		"paper §IV-C: queue API requests are ~1 OOM cheaper (up to 2 OOM with best-case packing)",
		"until volumes saturate publish capacity, then object storage's size-independent pricing wins")
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
