package experiments

import (
	"fmt"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/core"
	"fsdinference/internal/cost"
	"fsdinference/internal/partition"
)

// Daily-volume regimes for the provisioned-versus-per-request comparison:
// the paper's sporadic traces sit far below the break-even, a
// production-serving stream sits far above it.
const (
	sporadicQueriesPerDay  = 20
	sustainedQueriesPerDay = 200_000
)

// ChannelComparison extends Fig. 6 with the memory-based store the paper
// weighs against its channels (§II-D) but could not measure: per-sample
// latency and per-run communication cost of Queue, Object and Memory
// across the worker grid, then the daily cost of each channel under a
// sporadic and a sustained volume. The memory store wins latency at every
// P (sub-millisecond ops versus 5-30 ms API hops) and its flat node-hour
// bill makes it cheapest under sustained load — while on the sporadic
// trace the same idle-billing node is the most expensive option, which is
// exactly why the paper ruled it out on cost.
func ChannelComparison(l *Lab) (*Table, error) {
	t := &Table{
		ID:    "channels",
		Title: "Three-way channel comparison: per-sample latency, per-run comms cost, and daily cost by volume regime",
		Columns: []string{
			"P / regime",
			"queue ms", "queue $", "object ms", "object $", "memory ms", "memory $",
		},
	}
	size := l.Scale.Sizes[1]
	var perRun map[core.ChannelKind]float64
	for _, p := range l.Scale.Workers {
		ms := make(map[core.ChannelKind]float64)
		comms := make(map[core.ChannelKind]float64)
		for _, kind := range []core.ChannelKind{core.Queue, core.Object, core.Memory} {
			r, err := l.RunFSD(size.Scaled, p, size.Batch, kind, partition.Block, nil)
			if err != nil {
				return nil, fmt.Errorf("channels %v P=%d: %w", kind, p, err)
			}
			ms[kind] = float64(r.PerSample().Microseconds()) / 1000
			comms[kind] = r.Cost.Comms()
		}
		perRun = comms
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.2f", ms[core.Queue]), fmt.Sprintf("%.6f", comms[core.Queue]),
			fmt.Sprintf("%.2f", ms[core.Object]), fmt.Sprintf("%.6f", comms[core.Object]),
			fmt.Sprintf("%.2f", ms[core.Memory]), fmt.Sprintf("%.6f", comms[core.Memory]),
		})
	}

	// Daily-cost regimes from the largest-P marginals: queue and object
	// bill per request, so their daily spend scales with volume; the
	// memory node bills 24 provisioned hours whether it serves 20 queries
	// or 200,000. The memory store's metered per-run share (which carries
	// the one-shot billing floor) is replaced by the flat daily rate —
	// under load the node is shared by every query of the day.
	memDaily := cost.MemoryDailyCost(env.DefaultConfig().Pricing, cost.Workload{})
	for _, regime := range []struct {
		name    string
		queries float64
	}{
		{"sporadic(20/day)", sporadicQueriesPerDay},
		{"sustained(200k/day)", sustainedQueriesPerDay},
	} {
		t.Rows = append(t.Rows, []string{
			regime.name,
			"-", fmt.Sprintf("%.4f", perRun[core.Queue]*regime.queries),
			"-", fmt.Sprintf("%.4f", perRun[core.Object]*regime.queries),
			"-", fmt.Sprintf("%.4f", memDaily),
		})
	}
	t.Notes = append(t.Notes,
		"memory ops are sub-millisecond and carry no per-request price; the bill is provisioned node-hours",
		"per-run memory $ includes the one-shot billing floor; the daily rows amortise the node across the day's queries",
		"sporadic: the idle-billing node is the most expensive channel (the paper's reason to rule it out);",
		"sustained: the flat node rate undercuts per-request queue/object charges (FMI-style memory channel)")
	return t, nil
}
