// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) on the simulated cloud, plus the ablations the paper
// mentions but does not show. Each experiment returns a Table that
// cmd/fsdbench renders and bench_test.go asserts on.
//
// Scaling: the paper evaluates N ∈ {1024, 4096, 16384, 65536} neurons over
// L=120 layers with 10,000-sample batches on real AWS. Offline, each paper
// size is mapped to a scaled stand-in model that executes for real inside
// the simulator; paper-scale *feasibility* (does the model fit a 10 GB
// Lambda? a 6 GB endpoint? how many samples fit a 6 MB payload?) is
// evaluated analytically at the true paper dimensions, so qualitative
// outcomes (the serial OOM at N=65536, the Sage sample truncation) appear
// exactly where the paper reports them. EXPERIMENTS.md records the mapping
// and the measured-versus-paper comparison for every experiment.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/core"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
	"fsdinference/internal/sparse"
)

// SizeMap pairs a scaled stand-in neuron count with the paper size it
// represents and the batch its runs use.
type SizeMap struct {
	Scaled int
	Paper  int
	// Batch is the scaled batch size for this size's runs (the paper
	// processes 10,000 samples per request).
	Batch int
}

// Scale configures the evaluation grid.
type Scale struct {
	// Sizes maps scaled stand-ins to paper sizes, smallest first.
	Sizes []SizeMap
	// Layers is the scaled layer count (paper: 120).
	Layers int
	// Batch is the default scaled batch size for ablations.
	Batch int
	// Workers is the parallelism grid (paper: 8, 20, 42, 62).
	Workers []int
	// PaperLayers and PaperBatch are the true evaluation dimensions,
	// used for analytic paper-scale feasibility and time-dilation
	// projections.
	PaperLayers int
	PaperBatch  int
	// Seed drives all generation.
	Seed int64
}

// DefaultScale is the standard scaled grid: four stand-in sizes, the
// paper's worker grid, 24 layers.
func DefaultScale() Scale {
	return Scale{
		Sizes: []SizeMap{
			{Scaled: 512, Paper: 1024, Batch: 64},
			{Scaled: 1024, Paper: 4096, Batch: 64},
			{Scaled: 2048, Paper: 16384, Batch: 64},
			{Scaled: 4096, Paper: 65536, Batch: 64},
		},
		Layers:      24,
		Batch:       64,
		Workers:     []int{8, 20, 42, 62},
		PaperLayers: 120,
		PaperBatch:  10000,
		Seed:        1,
	}
}

// QuickScale is a reduced grid for fast benchmark runs.
func QuickScale() Scale {
	return Scale{
		Sizes: []SizeMap{
			{Scaled: 256, Paper: 1024, Batch: 32},
			{Scaled: 512, Paper: 4096, Batch: 32},
			{Scaled: 1024, Paper: 16384, Batch: 32},
			{Scaled: 2048, Paper: 65536, Batch: 32},
		},
		Layers:      12,
		Batch:       32,
		Workers:     []int{8, 20, 42},
		PaperLayers: 120,
		PaperBatch:  10000,
		Seed:        1,
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Cell finds the row whose first column equals key and returns the cell in
// the named column, for assertions in tests and benches.
func (t *Table) Cell(key, column string) (string, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, row := range t.Rows {
		if len(row) > ci && row[0] == key {
			return row[ci], true
		}
	}
	return "", false
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(lab *Lab) (*Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Runner {
	return []Runner{
		{"fig4", "Daily cost vs query volume (Fig. 4)", Fig4DailyCost},
		{"fig5", "Query latency by platform (Fig. 5)", Fig5QueryLatency},
		{"fig6", "Per-sample runtime and cost vs parallelism (Fig. 6)", Fig6Scaling},
		{"channels", "Three-way channel comparison incl. provisioned memory store", ChannelComparison},
		{"cluster", "Sharded, replicated memory-store cluster: throughput scaling and failover", ClusterScaling},
		{"planner", "Workload-aware planner vs static one-shot selection (Sec. VI-D1)", PlannerSelection},
		{"slomonitor", "Burn-rate alert-driven re-planning vs break-even drift on a flash crowd", SLOMonitorControl},
		{"collectives", "Collective topologies vs P, and hybrid channel selection", CollectivesExperiment},
		{"table2", "Per-sample runtime of serverless variants (Table II)", Table2PerSample},
		{"table3", "HGP-DNN vs random partitioning (Table III)", Table3Partitioning},
		{"costval", "Cost model validation (Sec. VI-F)", CostValidation},
		{"polling", "Ablation: long vs short polling (Sec. III-C1)", AblationPolling},
		{"launch", "Ablation: launch-tree mechanisms (Sec. III)", AblationLaunch},
		{"compression", "Ablation: zlib payload compression (Sec. IV-B)", AblationCompression},
		{"quota", "Ablation: channel API cost vs volume (Sec. IV-C)", AblationQuota},
	}
}

// Find returns the runner with the given id.
func Find(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// Lab caches generated models, partition plans and inputs across
// experiments so the full suite does not regenerate shared artifacts.
type Lab struct {
	Scale  Scale
	models map[int]*model.Model
	plans  map[string]*partition.Plan
	inputs map[string]*sparse.Dense
	cuts   map[string]float64
}

// NewLab returns an empty lab for the given scale.
func NewLab(s Scale) *Lab {
	return &Lab{
		Scale:  s,
		models: make(map[int]*model.Model),
		plans:  make(map[string]*partition.Plan),
		inputs: make(map[string]*sparse.Dense),
		cuts:   make(map[string]float64),
	}
}

// Model returns (generating once) the scaled model for neurons.
func (l *Lab) Model(neurons int) (*model.Model, error) {
	if m, ok := l.models[neurons]; ok {
		return m, nil
	}
	m, err := model.Generate(model.GraphChallengeSpec(neurons, l.Scale.Layers, l.Scale.Seed))
	if err != nil {
		return nil, err
	}
	l.models[neurons] = m
	return m, nil
}

// Plan returns (building once) a partition plan.
func (l *Lab) Plan(neurons, workers int, scheme partition.Scheme) (*partition.Plan, error) {
	key := fmt.Sprintf("%d/%d/%v", neurons, workers, scheme)
	if p, ok := l.plans[key]; ok {
		return p, nil
	}
	m, err := l.Model(neurons)
	if err != nil {
		return nil, err
	}
	p, err := partition.BuildPlan(m, workers, scheme, partition.Options{Seed: l.Scale.Seed})
	if err != nil {
		return nil, err
	}
	l.plans[key] = p
	return p, nil
}

// Input returns (generating once) a batch of inputs for neurons.
func (l *Lab) Input(neurons, batch int) *sparse.Dense {
	key := fmt.Sprintf("%d/%d", neurons, batch)
	if x, ok := l.inputs[key]; ok {
		return x
	}
	x := model.GenerateInputs(neurons, batch, 0.2, l.Scale.Seed+100)
	l.inputs[key] = x
	return x
}

// RunFSD deploys and runs one FSD-Inference request on a fresh default
// environment. mutate may adjust the config before deployment.
func (l *Lab) RunFSD(neurons, workers, batch int, kind core.ChannelKind, scheme partition.Scheme, mutate func(*core.Config)) (*core.Result, error) {
	return l.run(env.NewDefault(), neurons, workers, batch, kind, scheme, 2*time.Second, mutate)
}

func (l *Lab) run(e *env.Env, neurons, workers, batch int, kind core.ChannelKind, scheme partition.Scheme, pollWait time.Duration, mutate func(*core.Config)) (*core.Result, error) {
	m, err := l.Model(neurons)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Model: m, Channel: kind, PollWait: pollWait}
	if kind != core.Serial {
		plan, err := l.Plan(neurons, workers, scheme)
		if err != nil {
			return nil, err
		}
		cfg.Plan = plan
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := core.Deploy(e, cfg)
	if err != nil {
		return nil, err
	}
	return d.Infer(l.Input(neurons, batch))
}

// Dilation returns the time-dilation factor λ for a size: the ratio of
// paper-scale per-query compute to the scaled stand-in's. Multiplying a
// dilated run's latency by λ projects it to paper scale. Costs are
// count-based and unaffected by dilation.
func (l *Lab) Dilation(size SizeMap) float64 {
	return l.macRatio(size) * float64(l.Scale.PaperBatch) / float64(size.Batch)
}

// layerDilation is the per-layer compute ratio: communication latencies are
// paid once per layer, so per-layer (not per-query) parity is what
// preserves the paper's compute-to-communication balance. It equals
// Dilation × Layers/PaperLayers.
func (l *Lab) layerDilation(size SizeMap) float64 {
	return l.Dilation(size) * float64(l.Scale.Layers) / float64(l.Scale.PaperLayers)
}

// dilatedEnv builds an environment for a scaled run that projects cleanly
// to paper scale by a single λ factor:
//
//   - per-query platform latencies (cold/warm starts, invokes) divide by λ,
//   - per-layer communication latencies (publish, delivery, poll, delete,
//     PUT/GET/LIST) divide by λ·L/120, since the scaled model pays them
//     over L layers where the paper pays them over 120,
//   - bandwidth terms are untouched — transferred volumes already shrink
//     with the workload,
//   - protocol windows (visibility timeout, max poll wait) are untouched.
func dilatedEnv(lambda, layerLambda float64) *env.Env {
	cfg := env.DefaultConfig()
	dq := func(t time.Duration) time.Duration { return time.Duration(float64(t) / lambda) }
	dl := func(t time.Duration) time.Duration { return time.Duration(float64(t) / layerLambda) }
	cfg.FaaS.ColdStart = dq(cfg.FaaS.ColdStart)
	cfg.FaaS.WarmStart = dq(cfg.FaaS.WarmStart)
	cfg.FaaS.InvokeAPILatency = dq(cfg.FaaS.InvokeAPILatency)
	cfg.FaaS.InvokeCPUSeconds /= lambda
	cfg.SNS.PublishLatency = dl(cfg.SNS.PublishLatency)
	cfg.SNS.DeliveryLatency = dl(cfg.SNS.DeliveryLatency)
	cfg.SQS.SendLatency = dl(cfg.SQS.SendLatency)
	cfg.SQS.ReceiveLatency = dl(cfg.SQS.ReceiveLatency)
	cfg.SQS.DeleteLatency = dl(cfg.SQS.DeleteLatency)
	cfg.S3.PutLatency = dl(cfg.S3.PutLatency)
	cfg.S3.GetLatency = dl(cfg.S3.GetLatency)
	cfg.S3.ListLatency = dl(cfg.S3.ListLatency)
	cfg.S3.DeleteLatency = dl(cfg.S3.DeleteLatency)
	return env.New(cfg)
}

// RunDilated runs one request for a size under time dilation, with worker
// memory set to the paper's sizing for the represented paper size. The
// returned result's latencies are in dilated (scaled) time; multiply by
// Dilation(size) to project to paper scale.
func (l *Lab) RunDilated(size SizeMap, workers int, kind core.ChannelKind, scheme partition.Scheme, mutate func(*core.Config)) (*core.Result, error) {
	lambda := l.Dilation(size)
	layerLambda := l.layerDilation(size)
	batchRatio := float64(l.Scale.PaperBatch) / float64(size.Batch)
	return l.run(dilatedEnv(lambda, layerLambda), size.Scaled, workers, size.Batch, kind, scheme,
		time.Duration(float64(2*time.Second)/layerLambda),
		func(c *core.Config) {
			c.WorkerMemoryMB = core.DefaultWorkerMemoryMB(size.Paper)
			// Model loads move weightBytes_paper/macRatio bytes but
			// should cost paper_load/λ: boost store bandwidth by the
			// remaining batch ratio.
			c.StoreBandwidthScale = batchRatio
			if mutate != nil {
				mutate(c)
			}
		})
}

// ProjectPerSampleMS converts a dilated run's latency into a paper-scale
// per-sample estimate in milliseconds.
func (l *Lab) ProjectPerSampleMS(size SizeMap, r *core.Result) float64 {
	paperLatency := float64(r.Latency) * l.Dilation(size)
	return paperLatency / float64(l.Scale.PaperBatch) / float64(time.Millisecond)
}

// ProjectQuerySeconds converts a dilated run's latency into a paper-scale
// query-latency estimate in seconds.
func (l *Lab) ProjectQuerySeconds(size SizeMap, r *core.Result) float64 {
	return float64(r.Latency) * l.Dilation(size) / float64(time.Second)
}

// Paper-scale feasibility gates (analytic, true dimensions).

// PaperWeightBytes returns the raw CSR bytes of the paper-scale model.
func (l *Lab) PaperWeightBytes(paperN int) int64 {
	nnz := int64(paperN) * 32 * int64(l.Scale.PaperLayers)
	return nnz*8 + int64(paperN+1)*4*int64(l.Scale.PaperLayers)
}

// SerialFeasiblePaper reports whether the paper-scale model fits the
// 10,240 MB serial instance under the modelled runtime footprint.
func (l *Lab) SerialFeasiblePaper(paperN int) bool {
	return float64(l.PaperWeightBytes(paperN))*5.5 <= 10240*float64(1<<20)
}

// SageFeasiblePaper reports whether the paper-scale model fits the 6 GB
// endpoint cap.
func (l *Lab) SageFeasiblePaper(paperN int) bool {
	return float64(l.PaperWeightBytes(paperN))*5.5 <= 6144*float64(1<<20)
}

// SageSamplesPaper returns how many samples fit the endpoint's 6 MB
// payload at the paper scale (~0.75 B per neuron per thresholded sample).
func (l *Lab) SageSamplesPaper(paperN int) int {
	return 6 * 1024 * 1024 / (paperN * 3 / 4)
}

// Formatting helpers shared by the runners.

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

func msPerSample(d time.Duration, samples int) string {
	if samples == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000/float64(samples))
}

func dollars(v float64) string { return fmt.Sprintf("%.4f", v) }

func microDollars(v float64) string { return fmt.Sprintf("%.3f", v*1e6) }
