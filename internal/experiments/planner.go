package experiments

import (
	"fmt"

	"fsdinference/internal/core"
	"fsdinference/internal/plan"
)

// PlannerSelection measures what the workload-aware Planner buys over the
// legacy one-shot AutoSelect (§VI-D1): two static strategies pick a
// channel once from probe trials — which undercounts the memory store's
// idle billing, because a probe charges one 60-second share of a node
// that in production bills 24 hours a day — while the drift-aware planner
// re-plans as the observed volume moves between the sporadic and
// sustained regimes. Daily costs are projected from the same measured
// trials (per-request billing scales with queries; the provisioned node
// bills flat), so the comparison isolates the selection policy.
//
// Serial execution is excluded from the grid: the stand-in models fit one
// instance, but the experiment studies channel choice for the
// distributed regime the paper targets, as the channels experiment does.
func PlannerSelection(l *Lab) (*Table, error) {
	size := l.Scale.Sizes[1]
	workers := l.Scale.Workers[len(l.Scale.Workers)-1]
	m, err := l.Model(size.Scaled)
	if err != nil {
		return nil, err
	}
	grid := plan.Grid{
		Channels: []core.ChannelKind{core.Queue, core.Object, core.Memory},
		Workers:  []int{workers},
	}
	probe := plan.WorkloadProfile{BatchSamples: size.Batch}

	// Static strategies: one probe-scored decision, no workload profile —
	// the legacy AutoSelect behaviour under each priority.
	static := func(obj plan.Objective) (*plan.Decision, error) {
		p, err := plan.New(m, plan.Options{
			Objective: obj, Grid: grid, DisablePrefilter: true, Seed: l.Scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		return p.Plan(probe)
	}
	latDec, err := static(plan.LatencyObjective())
	if err != nil {
		return nil, fmt.Errorf("planner static-latency: %w", err)
	}
	costDec, err := static(plan.CostObjective())
	if err != nil {
		return nil, fmt.Errorf("planner static-cost: %w", err)
	}

	// The drift-aware planner: a cost objective fed the observed volume,
	// with the analytic pre-filter pruning the grid before trials.
	planner, err := plan.New(m, plan.Options{
		Objective: plan.CostObjective(), Grid: grid, Seed: l.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	sporadic := probe
	sporadic.QueriesPerDay = sporadicQueriesPerDay
	sustained := probe
	sustained.QueriesPerDay = sustainedQueriesPerDay
	sporadicDec, err := planner.Plan(sporadic)
	if err != nil {
		return nil, fmt.Errorf("planner sporadic plan: %w", err)
	}
	sustainedDec, err := planner.Replan(sustained)
	if err != nil {
		return nil, fmt.Errorf("planner sustained replan: %w", err)
	}

	// Daily costs project from each decision's own trial of its pick.
	daily := func(d *plan.Decision, queries int64) float64 {
		for _, t := range d.Trials {
			if t.Candidate == d.Best {
				return t.DailyCost(queries)
			}
		}
		return 0
	}
	t := &Table{
		ID:    "planner",
		Title: "Workload-aware planning vs static one-shot selection: picks and daily cost by regime",
		Columns: []string{
			"strategy", "pick",
			fmt.Sprintf("sporadic(%d/day) $", sporadicQueriesPerDay),
			fmt.Sprintf("sustained(%dk/day) $", sustainedQueriesPerDay/1000),
		},
	}
	t.Rows = append(t.Rows,
		[]string{"static-latency", latDec.Best.String(),
			fmt.Sprintf("%.4f", daily(latDec, sporadicQueriesPerDay)),
			fmt.Sprintf("%.4f", daily(latDec, sustainedQueriesPerDay))},
		[]string{"static-cost", costDec.Best.String(),
			fmt.Sprintf("%.4f", daily(costDec, sporadicQueriesPerDay)),
			fmt.Sprintf("%.4f", daily(costDec, sustainedQueriesPerDay))},
		[]string{"planner", fmt.Sprintf("%s -> %s", sporadicDec.Best, sustainedDec.Best),
			fmt.Sprintf("%.4f", daily(sporadicDec, sporadicQueriesPerDay)),
			fmt.Sprintf("%.4f", daily(sustainedDec, sustainedQueriesPerDay))},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d (stand-in for %d), P=%d, batch %d; statics score one probe's metered cost, the planner amortises node-hours over the profile's volume",
			size.Scaled, size.Paper, workers, size.Batch),
		fmt.Sprintf("sporadic plan: pre-filter pruned %d of %d candidates before trials; measured memory break-even ~%d queries/day",
			sporadicDec.Pruned, sporadicDec.Candidates, sustainedDec.MemoryBreakEvenQueriesPerDay),
		fmt.Sprintf("replan flipped the channel: %v (changed=%v)", sustainedDec.Best, sustainedDec.Changed),
		"one-shot probes undercount idle billing: both statics keep the memory node at 20 queries/day, paying the flat daily rate for an idle store")
	return t, nil
}
