package experiments

import (
	"fmt"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/cloud/kvcluster"
	"fsdinference/internal/cloud/kvstore"
	"fsdinference/internal/core"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
	"fsdinference/internal/plan"
)

// clusterNodeType is the smallest catalogue node — its 40k ops/s ceiling
// is the one the sharding experiment pushes past.
const clusterNodeType = "cache.t3.small"

// ClusterScaling measures the two headline behaviours of the sharded,
// replicated memory-store cluster (the ElastiCache/Redis-class design
// the paper rules out, §II-D, grown to its real multi-node shape):
//
//  1. Throughput: one provisioned node pins at its request-rate ceiling;
//     hashing the keyspace across N primary shards serves ~N times it,
//     because each shard enforces its own limiter — the λScale-style
//     claim that the communication substrate must scale with the fleet.
//  2. Failover: a mid-run KillNode on a 2-shard deployment loses the
//     shard's in-flight inbox values at R=0 and the async-replication
//     pipe at R=1 — the run completes only by re-sending from sender
//     buffers — while quorum replicas (R=2) lose nothing, at the price
//     of replica node-hours visible in the cost breakdown.
//
// A planner note closes the loop: a sustained volume that saturates one
// node makes Plan pick the 2-shard cluster (the pre-filter rules the
// single node infeasible), so the new {KVNodes, Replicas} axes are
// reachable from workload-aware selection, not just manual config.
func ClusterScaling(l *Lab) (*Table, error) {
	t := &Table{
		ID:    "cluster",
		Title: "Sharded, replicated memory store: throughput past the single-node ceiling, and failover by replica count",
		Columns: []string{
			"scenario", "ops/s", "latency ms", "lost", "resent", "KV $ (replicas $)",
		},
	}
	ceiling := kvstore.Catalog[clusterNodeType].MaxOpsPerSec

	// (1) Aggregate throughput versus shard count, at saturating offered
	// load. The single node must pin at its ceiling; N shards ~N times it.
	for _, shards := range []int{1, 2, 4} {
		ops := kvcluster.MeasureThroughput(shards, clusterNodeType, nil)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("throughput %d shard(s)", shards),
			fmt.Sprintf("%.0f (%.2fx ceiling)", ops, ops/ceiling),
			"-", "-", "-", "-",
		})
	}

	// (2) Mid-run failover on a 2-shard deployment across the
	// availability ladder. The kill lands while worker 0's layer-0 rows
	// sit parked in inboxes of still-launching workers and inside the
	// replication lag, so R<2 has something to lose.
	m, err := model.Generate(model.GraphChallengeSpec(256, 6, l.Scale.Seed))
	if err != nil {
		return nil, err
	}
	pl, err := partition.BuildPlan(m, 4, partition.HGPDNN, partition.Options{Seed: l.Scale.Seed})
	if err != nil {
		return nil, err
	}
	input := model.GenerateInputs(256, 8, 0.2, l.Scale.Seed+100)

	runFailover := func(replicas int, kill bool) (*core.Result, *env.Env, error) {
		e := env.NewDefault()
		d, err := core.Deploy(e, core.Config{
			Model: m, Plan: pl, Channel: core.Memory,
			KVNodes: 2, KVReplicas: replicas, KVNodeType: clusterNodeType,
			KVFailoverWindow: 2 * time.Second,
			KVReplicationLag: 300 * time.Millisecond,
		})
		if err != nil {
			return nil, nil, err
		}
		if kill {
			e.K.At(1800*time.Millisecond, func() {
				if err := d.KVCluster().KillNode(0); err != nil {
					panic(fmt.Sprintf("cluster experiment kill: %v", err))
				}
			})
		}
		res, err := d.Infer(input)
		return res, e, err
	}

	base, _, err := runFailover(0, false)
	if err != nil {
		return nil, fmt.Errorf("cluster baseline: %w", err)
	}
	t.Rows = append(t.Rows, []string{
		"no failure R=0", "-", ms(base.Latency), "0", "0",
		fmt.Sprintf("%.4f (0)", base.Cost.KV),
	})
	for _, replicas := range []int{0, 1, 2} {
		res, e, err := runFailover(replicas, true)
		if err != nil {
			return nil, fmt.Errorf("cluster failover R=%d: %w", replicas, err)
		}
		var resent int64
		for _, w := range res.Workers {
			resent += w.Resends
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("kill mid-run R=%d", replicas),
			"-", ms(res.Latency),
			fmt.Sprintf("%d", e.Meter.KVLostValues),
			fmt.Sprintf("%d", resent),
			fmt.Sprintf("%.4f (%.4f)", res.Cost.KV, res.Cost.KVReplica),
		})
	}

	// (3) The planner reaches the sharded candidate on its own: a
	// sustained volume past one node's ceiling prunes the single node as
	// saturated and picks the 2-shard cluster.
	planner, err := plan.New(m, plan.Options{
		Objective: plan.CostObjective(),
		Grid: plan.Grid{
			Channels:    []core.ChannelKind{core.Queue, core.Memory},
			Workers:     []int{8},
			KVNodeTypes: []string{clusterNodeType},
			KVNodes:     []int{1, 2},
		},
		Seed: l.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	dec, err := planner.Plan(plan.WorkloadProfile{QueriesPerDay: 8_000_000, BatchSamples: 8})
	if err != nil {
		return nil, fmt.Errorf("cluster plan: %w", err)
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("%s ceiling is %.0f ops/s per node; shards own 16384-slot ranges and rate-limit independently", clusterNodeType, ceiling),
		"failover: 2-shard cluster, shard 0 killed at t=1.8s with a 2s failover window and 300ms async replication lag",
		"R=0 loses the shard's parked inbox values, R=1 the un-replicated pipe; both runs complete only by re-sending from sender buffers",
		"R=2 runs quorum writes: zero loss, failure hidden behind the promotion stall, paid in replica node-hours",
		fmt.Sprintf("planner: at 8M queries/day the pre-filter rules one %s out as saturated and Plan picks %q (%d of %d candidates pruned)",
			clusterNodeType, dec.Best, dec.Pruned, dec.Candidates),
	)
	return t, nil
}
