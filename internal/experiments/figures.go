package experiments

import (
	"fmt"
	"time"

	"fsdinference/internal/baselines"
	"fsdinference/internal/cloud/ec2"
	"fsdinference/internal/cloud/env"
	"fsdinference/internal/core"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
	"fsdinference/internal/workload"
)

// projectPerSampleCost converts a dilated run's cost into a paper-scale
// per-sample estimate: compute cost is time-based and scales back by λ;
// communication costs are count-based and scale with the layer ratio (the
// per-layer pair structure is preserved by the stand-in).
func (l *Lab) projectPerSampleCost(size SizeMap, r *core.Result) float64 {
	lambda := l.Dilation(size)
	layerRatio := float64(l.Scale.PaperLayers) / float64(l.Scale.Layers)
	paperCost := r.Cost.Lambda*lambda + r.Cost.Comms()*layerRatio
	return paperCost / float64(l.Scale.PaperBatch)
}

// Fig6Scaling regenerates Fig. 6: per-sample runtime and per-sample cost of
// FSD-Inf-Queue and FSD-Inf-Object across the worker grid, one block per
// model size. Values are paper-scale projections from time-dilated runs;
// costs print in the paper's 10^-4 dollar units.
func Fig6Scaling(l *Lab) (*Table, error) {
	t := &Table{
		ID:    "fig6",
		Title: "Per-sample runtime (ms) and cost (1e-4 $) vs Lambda workers (paper-scale projection)",
		Columns: []string{
			"N(paper)", "P",
			"queue ms/sample", "queue cost", "object ms/sample", "object cost",
		},
	}
	type best struct {
		p  int
		ms float64
	}
	for _, size := range l.Scale.Sizes {
		var bq, bo *best
		for _, p := range l.Scale.Workers {
			rq, err := l.RunDilated(size, p, core.Queue, partition.Block, nil)
			if err != nil {
				return nil, fmt.Errorf("fig6 queue N=%d P=%d: %w", size.Scaled, p, err)
			}
			ro, err := l.RunDilated(size, p, core.Object, partition.Block, nil)
			if err != nil {
				return nil, fmt.Errorf("fig6 object N=%d P=%d: %w", size.Scaled, p, err)
			}
			qms := l.ProjectPerSampleMS(size, rq)
			oms := l.ProjectPerSampleMS(size, ro)
			if bq == nil || qms < bq.ms {
				bq = &best{p, qms}
			}
			if bo == nil || oms < bo.ms {
				bo = &best{p, oms}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", size.Paper),
				fmt.Sprintf("%d", p),
				fmt.Sprintf("%.2f", qms),
				fmt.Sprintf("%.3f", l.projectPerSampleCost(size, rq)*1e4),
				fmt.Sprintf("%.2f", oms),
				fmt.Sprintf("%.3f", l.projectPerSampleCost(size, ro)*1e4),
			})
		}
		t.Rows = append(t.Rows, []string{"", "", "", "", "", ""})
		t.Notes = append(t.Notes, fmt.Sprintf(
			"N=%d: best queue P=%d (%.2f ms), best object P=%d (%.2f ms)",
			size.Paper, bq.p, bq.ms, bo.p, bo.ms))
	}
	t.Notes = append(t.Notes,
		"paper shape: few workers win for small N; parallelism pays off as N grows;",
		"object per-sample cost grows ~linearly with P; queue cost grows much more slowly (Sec. VI-D1)")
	return t, nil
}

// fsdBest runs the FSD variants for one size under dilation and returns the
// fastest with its name (the Fig. 5 "FSD-Inf" bar is the best configuration
// per size).
func (l *Lab) fsdBest(sizeIdx int) (*core.Result, string, error) {
	size := l.Scale.Sizes[sizeIdx]
	wi := sizeIdx
	if wi >= len(l.Scale.Workers) {
		wi = len(l.Scale.Workers) - 1
	}
	p := l.Scale.Workers[wi]

	var best *core.Result
	var name string
	consider := func(r *core.Result, n string, err error) error {
		if err != nil {
			return err
		}
		if best == nil || r.Latency < best.Latency {
			best, name = r, n
		}
		return nil
	}
	if l.SerialFeasiblePaper(size.Paper) {
		r, err := l.RunDilated(size, 1, core.Serial, partition.Block, nil)
		if err := consider(r, "serial", err); err != nil {
			return nil, "", err
		}
	}
	r, err := l.RunDilated(size, p, core.Queue, partition.Block, nil)
	if err := consider(r, fmt.Sprintf("queue P=%d", p), err); err != nil {
		return nil, "", err
	}
	r, err = l.RunDilated(size, p, core.Object, partition.Block, nil)
	if err := consider(r, fmt.Sprintf("object P=%d", p), err); err != nil {
		return nil, "", err
	}
	return best, name, nil
}

// Fig5QueryLatency regenerates Fig. 5: end-to-end query latency of
// FSD-Inference against the server baselines and H-SpFF, one row per model
// size, projected to paper scale (10,000-sample queries).
func Fig5QueryLatency(l *Lab) (*Table, error) {
	t := &Table{
		ID:    "fig5",
		Title: "Query latency (s) by platform (paper-scale projection)",
		Columns: []string{
			"N(paper)", "FSD-Inf", "AO-Cold", "AO-Hot", "JS", "H-SpFF",
		},
	}
	ecfg := ec2.DefaultConfig()
	for i, size := range l.Scale.Sizes {
		lambda := l.Dilation(size)
		macRatio := lambda * float64(size.Batch) / float64(l.Scale.PaperBatch)

		fsd, variant, err := l.fsdBest(i)
		if err != nil {
			return nil, fmt.Errorf("fig5 fsd N=%d: %w", size.Scaled, err)
		}
		m, err := l.Model(size.Scaled)
		if err != nil {
			return nil, err
		}
		input := l.Input(size.Scaled, size.Batch)

		// Server baselines: measure pure compute on the always-on
		// instance, then compose paper-scale latencies analytically
		// from projected compute and paper-scale model load times.
		aoMem, err := baselines.RunAlwaysOn(env.NewDefault(), m, input, baselines.FromMemory)
		if err != nil {
			return nil, fmt.Errorf("fig5 ao-mem: %w", err)
		}
		computeP := time.Duration(float64(aoMem.Latency) * lambda)
		paperBytes := l.PaperWeightBytes(size.Paper)
		ebsLoad := time.Duration(float64(paperBytes) / ecfg.EBSReadBytesPerSec * float64(time.Second))
		s3Load := time.Duration(float64(paperBytes) / ecfg.S3ReadBytesPerSec * float64(time.Second))
		aoHot := computeP + ebsLoad/2 // half the requests find the model resident
		aoCold := computeP + s3Load

		jsType := ec2.Catalog[baselines.JobScopedInstanceType(size.Paper)]
		aoType := ec2.Catalog[baselines.AlwaysOnInstanceType]
		jsCompute := time.Duration(float64(computeP) * float64(aoType.VCPUs) / float64(jsType.VCPUs))
		js := ecfg.ProvisionDelay + s3Load + jsCompute

		wi := i
		if wi >= len(l.Scale.Workers) {
			wi = len(l.Scale.Workers) - 1
		}
		nodes := l.Scale.Workers[wi]
		plan, err := l.Plan(size.Scaled, nodes, partition.Block)
		if err != nil {
			return nil, err
		}
		hspff, err := baselines.RunHSpFF(env.NewDefault(), m, plan, input, baselines.DefaultHSpFFConfig(nodes))
		if err != nil {
			return nil, fmt.Errorf("fig5 hspff: %w", err)
		}

		secs := func(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size.Paper),
			fmt.Sprintf("%.2f", l.ProjectQuerySeconds(size, fsd)),
			secs(aoCold), secs(aoHot), secs(js),
			secs(time.Duration(float64(hspff.Latency) * lambda)),
		})
		t.Notes = append(t.Notes, fmt.Sprintf("N=%d: FSD variant = %s", size.Paper, variant))
		_ = macRatio
	}
	t.Notes = append(t.Notes,
		"paper shape: JS pays provisioning on every query; FSD overtakes AO-Hot as N grows;",
		"H-SpFF (optimized HPC) stays fastest, with FSD within a small factor at the largest size")
	return t, nil
}

// macRatio is the per-sample multiply-accumulate ratio between the paper
// model and the scaled stand-in.
func (l *Lab) macRatio(size SizeMap) float64 {
	return float64(size.Paper) / float64(size.Scaled) *
		float64(l.Scale.PaperLayers) / float64(l.Scale.Layers)
}

// commRatio estimates the per-sample communication-volume ratio between
// paper and scaled models: cut-row counts are measured on a single
// generated layer at each dimension under a block partition.
func (l *Lab) commRatio(size SizeMap, workers int) (float64, error) {
	scaledCut, err := l.cutPerLayer(size.Scaled, workers)
	if err != nil {
		return 0, err
	}
	paperCut, err := l.cutPerLayer(size.Paper, workers)
	if err != nil {
		return 0, err
	}
	if scaledCut == 0 {
		return 1, nil
	}
	return paperCut * float64(l.Scale.PaperLayers) / (scaledCut * float64(l.Scale.Layers)), nil
}

// cutPerLayer measures activation-row transfers per layer for a one-layer
// model at the given dimension (cached).
func (l *Lab) cutPerLayer(neurons, workers int) (float64, error) {
	key := fmt.Sprintf("%d/%d", neurons, workers)
	if v, ok := l.cuts[key]; ok {
		return v, nil
	}
	m, err := model.Generate(model.GraphChallengeSpec(neurons, 1, l.Scale.Seed))
	if err != nil {
		return 0, err
	}
	plan, err := partition.BuildPlan(m, workers, partition.Block, partition.Options{Seed: l.Scale.Seed})
	if err != nil {
		return 0, err
	}
	v := float64(plan.Stats(m).RowTransfers)
	l.cuts[key] = v
	return v, nil
}

// Fig4DailyCost regenerates Fig. 4: daily cost of FSD-Inference versus
// Server-Always-On (two c5.12xlarge provisioned around the clock) and
// Server-Job-Scoped across sporadic query volumes, queries evenly spread
// over the model sizes at 10,000 samples per query.
func Fig4DailyCost(l *Lab) (*Table, error) {
	cat := env.DefaultConfig().Pricing
	fsdPer := make(map[int]float64)
	jsPer := make(map[int]float64)

	for i, size := range l.Scale.Sizes {
		// Best-variant choice per the paper's recommendations: serial
		// for models that fit one instance, queue for moderate sizes,
		// object for the largest.
		var kind core.ChannelKind
		workers := 1
		switch {
		case l.SerialFeasiblePaper(size.Paper) && i < 2:
			kind = core.Serial
		case i == len(l.Scale.Sizes)-1:
			kind = core.Object
			workers = l.Scale.Workers[len(l.Scale.Workers)-1]
		default:
			kind = core.Queue
			workers = l.Scale.Workers[len(l.Scale.Workers)/2]
		}
		b1 := size.Batch
		b2 := size.Batch * 3
		r1, err := l.RunFSD(size.Scaled, workers, b1, kind, partition.Block, nil)
		if err != nil {
			return nil, fmt.Errorf("fig4 N=%d b1: %w", size.Scaled, err)
		}
		r2, err := l.RunFSD(size.Scaled, workers, b2, kind, partition.Block, nil)
		if err != nil {
			return nil, fmt.Errorf("fig4 N=%d b2: %w", size.Scaled, err)
		}
		// Two-point fit, split into compute and comms marginals.
		mCompute := (r2.Cost.Lambda - r1.Cost.Lambda) / float64(b2-b1)
		mComms := (r2.Cost.Comms() - r1.Cost.Comms()) / float64(b2-b1)
		fixed := r1.Cost.Total() - (mCompute+mComms)*float64(b1)
		cr := 1.0
		if kind != core.Serial {
			var err error
			cr, err = l.commRatio(size, workers)
			if err != nil {
				return nil, err
			}
		}
		perQuery := fixed +
			(mCompute*l.macRatio(size)+mComms*cr)*float64(l.Scale.PaperBatch)
		fsdPer[size.Paper] = perQuery

		// Job-scoped projection: provision + paper-scale load + scaled
		// compute time projected by MAC ratio and instance speed.
		e := env.NewDefault()
		m, err := l.Model(size.Scaled)
		if err != nil {
			return nil, err
		}
		js, err := baselines.RunJobScoped(e, m, l.Input(size.Scaled, b1))
		if err != nil {
			return nil, err
		}
		ecfg := e.EC2.Config()
		scaledLoad := time.Duration(float64(m.WeightBytes()) / ecfg.S3ReadBytesPerSec * float64(time.Second))
		computeScaled := js.Latency - ecfg.ProvisionDelay - scaledLoad
		scaledType := ec2.Catalog[baselines.JobScopedInstanceType(size.Scaled)]
		paperType := ec2.Catalog[baselines.JobScopedInstanceType(size.Paper)]
		computePaper := time.Duration(float64(computeScaled) * l.macRatio(size) *
			float64(l.Scale.PaperBatch) / float64(b1) *
			float64(scaledType.VCPUs) / float64(paperType.VCPUs))
		loadPaper := time.Duration(float64(l.PaperWeightBytes(size.Paper)) / ecfg.S3ReadBytesPerSec * float64(time.Second))
		runtime := ecfg.ProvisionDelay + loadPaper + computePaper
		if runtime < ecfg.MinBilledDuration {
			runtime = ecfg.MinBilledDuration
		}
		jsPer[size.Paper] = runtime.Hours() * cat.EC2Hourly[paperType.Name]
	}

	aoDaily := 2 * 24 * cat.EC2Hourly[baselines.AlwaysOnInstanceType]
	var volumes []int
	for v := 10_000; v <= 5_120_000; v *= 2 {
		volumes = append(volumes, v)
	}
	var sizes []int
	for _, s := range l.Scale.Sizes {
		sizes = append(sizes, s.Paper)
	}
	rows, err := workload.Series(volumes, sizes, l.Scale.PaperBatch, workload.PlatformCosts{
		FSDPerQuery: fsdPer,
		JSPerQuery:  jsPer,
		AODaily:     aoDaily,
	}, l.Scale.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "fig4",
		Title:   "Daily cost ($) vs query volume (samples per 24h)",
		Columns: []string{"samples/day", "FSD-Inference", "Server-Always-On", "Server-Job-Scoped"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dk", r.SamplesPerDay/1000),
			dollars(r.FSD), dollars(r.AlwaysOn), dollars(r.JobScoped),
		})
	}
	if cross := workload.Crossover(rows); cross > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("FSD crosses the always-on flat cost at ~%dk samples/day (paper: ~4M)", cross/1000))
	} else {
		t.Notes = append(t.Notes, "FSD stays below the always-on flat cost across the plotted volumes")
	}
	t.Notes = append(t.Notes,
		"per-query costs projected to paper scale (10,000-sample queries) from two-point scaled measurements;",
		"see EXPERIMENTS.md for the projection method")
	return t, nil
}
