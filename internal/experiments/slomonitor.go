package experiments

import (
	"fmt"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/core"
	"fsdinference/internal/obs/monitor"
	"fsdinference/internal/serve"
	"fsdinference/internal/workload"
)

// SLOMonitorControl measures what closing the monitor→planner loop buys
// over drift-only re-planning on a flash-crowd trace: a quiet morning, a
// sudden sustained crowd that saturates the cost-picked queue channel,
// and a cool-down tail. Both arms run the same SLO endpoint under the
// same simulated-time monitor; the passive arm only observes, so its
// re-plan waits for the scheduler's break-even drift trigger (MinRuns
// completed runs into the crowd), while the active arm re-plans the
// moment the burn-rate page fires — scrape-aligned, within one interval
// of the crowd's onset. The headline number is simulated time in SLO
// violation: the alert-driven arm flips to the provisioned memory
// channel earlier, so the backlog never grows as deep and drains sooner.
func SLOMonitorControl(l *Lab) (*Table, error) {
	m, err := l.Model(256)
	if err != nil {
		return nil, err
	}

	// Flash-crowd trace: 10 quiet minutes (one query / 30s), four crowd
	// minutes at 1.25 queries/s — enough to saturate the cost-picked
	// queue channel (~0.8 req/s warm) but not the memory channel
	// (~1.6 req/s) — then a quiet tail for the drain.
	var trace []workload.Query
	add := func(at time.Duration) {
		trace = append(trace, workload.Query{At: at, Neurons: 256, Samples: 4})
	}
	for i := 0; i < 20; i++ {
		add(time.Duration(i) * 30 * time.Second)
	}
	crowd := 10 * time.Minute
	for i := 0; i < 300; i++ {
		add(crowd + time.Duration(i)*800*time.Millisecond)
	}
	for i := 0; i < 12; i++ {
		add(14*time.Minute + 30*time.Second + time.Duration(i)*30*time.Second)
	}

	const sloName = "lat-p95"
	type arm struct {
		name      string
		replanAt  time.Duration
		reason    string
		violation time.Duration
		pageAt    time.Duration
		alerts    int
	}
	run := func(name string, passive bool) (*arm, error) {
		spec := monitor.Spec{
			// A 15s scrape keeps alert latency well under the drift
			// trigger's MinRuns of saturated queue-channel runs.
			Interval: 15 * time.Second,
			SLOs: []monitor.SLO{{
				// 4s clears the quiet-phase cold start (~3.1s) but is far
				// below the first saturated crowd window's p95.
				Name: sloName, Endpoint: "slo", Kind: monitor.LatencyQuantile,
				Target: 4 * time.Second, Window: 24 * time.Hour, Objective: 0.99,
			}},
			Passive: passive,
		}
		svc, err := serve.NewService(env.NewDefault(),
			serve.WithEndpoint("slo", m, serve.WithSLO(serve.SLOOptions{
				LatencyWeight: 0, // cost pick: the quiet morning chooses queue
				Channels:      []core.ChannelKind{core.Queue, core.Memory},
				Workers:       []int{2},
				ProbeBatch:    4,
				// The drift trigger's anti-flap gate: 64 completed runs
				// since the last re-plan. The quiet morning banks 20, so
				// the break-even crossing waits for 44 saturated crowd
				// runs (~1.3s each) — alerting has almost a minute's head
				// start.
				MinRuns: 64,
			})),
			serve.WithCoalescing(4, 0),
			serve.WithMonitor(spec),
		)
		if err != nil {
			return nil, fmt.Errorf("slomonitor %s: %w", name, err)
		}
		rep, err := svc.Replay(trace, serve.ReplayOptions{Seed: l.Scale.Seed})
		if err != nil {
			return nil, fmt.Errorf("slomonitor %s: %w", name, err)
		}
		a := &arm{name: name, violation: svc.Monitor().TimeInViolation("slo", sloName)}
		if er := rep.Endpoints[0]; len(er.Replans) > 0 {
			a.replanAt = er.Replans[0].At
			a.reason = er.Replans[0].Reason
		}
		for _, ev := range svc.Monitor().Alerts() {
			a.alerts++
			if ev.Firing && ev.Severity == monitor.Page && a.pageAt == 0 {
				a.pageAt = ev.At
			}
		}
		return a, nil
	}

	passive, err := run("drift-only", true)
	if err != nil {
		return nil, err
	}
	active, err := run("alert-driven", false)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "slomonitor",
		Title: "Alert-driven re-planning vs break-even drift on a flash crowd",
		Columns: []string{
			"arm", "first replan (s)", "trigger", "page (s)", "violation (s)", "alerts",
		},
	}
	row := func(a *arm) []string {
		replan, trigger := "-", "-"
		if a.reason != "" {
			replan = fmt.Sprintf("%.0f", a.replanAt.Seconds())
			trigger = a.reason
		}
		page := "-"
		if a.pageAt > 0 {
			page = fmt.Sprintf("%.0f", a.pageAt.Seconds())
		}
		return []string{a.name, replan, trigger, page,
			fmt.Sprintf("%.0f", a.violation.Seconds()), fmt.Sprintf("%d", a.alerts)}
	}
	t.Rows = append(t.Rows, row(passive), row(active))
	t.Notes = append(t.Notes,
		fmt.Sprintf("flash crowd at t=%v: 1.25 queries/s for 4m against a cost-picked queue channel; SLO %s = p95 <= 4s at 99%%, scrape every 15s", crowd, sloName),
		fmt.Sprintf("alert-driven replan leads by %.0fs and cuts time-in-violation by %.0fs",
			(passive.replanAt-active.replanAt).Seconds(), (passive.violation-active.violation).Seconds()),
		"both arms run the identical monitor; the passive arm's alerts still fire but no sink acts on them")
	return t, nil
}
