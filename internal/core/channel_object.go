package core

import (
	"fmt"
	"strconv"
	"strings"

	"fsdinference/internal/cloud/s3"
	"fsdinference/internal/sim"
	"fsdinference/internal/wire"
)

// objectChannel implements FSD-Inf-Object (Algorithm 2): each worker writes
// a single object per target per layer — "{m}_{n}.dat" with data, or a
// zero-byte "{m}_{n}.nul" when it has nothing to communicate — into the
// target-keyed bucket bucket-{n%B} under the "{layer}/{n}/" prefix. Targets
// repeatedly LIST their own prefix, skip ".nul" markers and already-received
// sources, and GET the remaining objects from parallel threads. Multiple
// buckets and prefixes spread I/O to stay inside provider API quotas.
type objectChannel struct{}

func (oc *objectChannel) bucketFor(w *worker, target int32) *s3.Bucket {
	return w.d.buckets[int(target)%len(w.d.buckets)]
}

func (oc *objectChannel) dataKey(w *worker, phase string, layer int, src, target int32, empty bool) string {
	ext := ".dat"
	if empty {
		ext = ".nul"
	}
	return fmt.Sprintf("%s/%s/%d/%d/%d_%d%s", w.run.id, phase, layer, target, src, target, ext)
}

func (oc *objectChannel) prefix(w *worker, phase string, layer int, target int32) string {
	return fmt.Sprintf("%s/%s/%d/%d/", w.run.id, phase, layer, target)
}

// put writes one object for each (target, rows) entry from the thread pool.
func (oc *objectChannel) put(w *worker, phase string, layer int, outs []targetRows) error {
	tasks := make([]func(p *sim.Proc) error, 0, len(outs))
	for _, out := range outs {
		out := out
		bucket := oc.bucketFor(w, out.target)
		if out.rs.Len() == 0 {
			key := oc.dataKey(w, phase, layer, w.id, out.target, true)
			tasks = append(tasks, func(p *sim.Proc) error { return bucket.Put(p, key, nil) })
			w.metrics.MessagesSent++
			w.metrics.Publishes++
			continue
		}
		if w.d.Cfg.Compress {
			w.ctx.Compress(out.rs.RawBytes())
		}
		body, err := wire.Encode(out.rs, w.d.Cfg.Compress)
		if err != nil {
			return err
		}
		key := oc.dataKey(w, phase, layer, w.id, out.target, false)
		w.metrics.BytesSent += int64(len(body))
		w.metrics.MessagesSent++
		w.metrics.Publishes++
		tasks = append(tasks, func(p *sim.Proc) error { return bucket.Put(p, key, body) })
	}
	return w.threads("put", tasks)
}

func (oc *objectChannel) send(w *worker, layer int, outs []targetRows) error {
	return oc.put(w, "data", layer, outs)
}

func (oc *objectChannel) receive(w *worker, layer int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	return oc.scanCollect(w, "data", layer, sources, deliver)
}

// scanCollect runs the Algorithm 2 receive loop: repeatedly scan the
// worker's single bucket/prefix, drop ".nul" markers, ignore files from
// already-received sources, and fetch the rest in parallel threads.
func (oc *objectChannel) scanCollect(w *worker, phase string, layer int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	bucket := oc.bucketFor(w, w.id)
	prefix := oc.prefix(w, phase, layer, w.id)
	remaining := make(map[int32]bool, len(sources))
	for _, s := range sources {
		remaining[s] = true
	}
	for len(remaining) > 0 {
		if w.ctx.Remaining() <= 0 {
			return fmt.Errorf("core: worker %d out of runtime scanning %s/layer %d", w.id, phase, layer)
		}
		keys := bucket.List(w.ctx.P, prefix)
		w.metrics.Polls++
		var fetch []string
		var fetchSrc []int32
		for _, key := range keys {
			src, ext, ok := parseObjectKey(key)
			if !ok || !remaining[src] {
				continue // foreign or already-received source
			}
			if ext == ".nul" {
				delete(remaining, src) // nothing to read (Algorithm 2 line 14)
				continue
			}
			delete(remaining, src)
			fetch = append(fetch, key)
			fetchSrc = append(fetchSrc, src)
		}
		bodies := make([][]byte, len(fetch))
		w.metrics.Fetches += int64(len(fetch))
		tasks := make([]func(p *sim.Proc) error, len(fetch))
		for i, key := range fetch {
			i, key := i, key
			tasks[i] = func(p *sim.Proc) error {
				b, err := bucket.Get(p, key)
				if err != nil {
					return err
				}
				bodies[i] = b
				return nil
			}
		}
		if err := w.threads("get", tasks); err != nil {
			return err
		}
		for i, body := range bodies {
			rs, err := w.decodePayload(body)
			if err != nil {
				return err
			}
			if deliver != nil && rs.Len() > 0 {
				deliver(fetchSrc[i], rs)
			}
		}
	}
	return nil
}

// parseObjectKey extracts the source worker id and extension from a
// ".../{src}_{target}.{dat|nul}" object key.
func parseObjectKey(key string) (int32, string, bool) {
	base := key
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	var ext string
	switch {
	case strings.HasSuffix(base, ".dat"):
		ext = ".dat"
	case strings.HasSuffix(base, ".nul"):
		ext = ".nul"
	default:
		return 0, "", false
	}
	base = strings.TrimSuffix(base, ext)
	us := strings.IndexByte(base, '_')
	if us < 0 {
		return 0, "", false
	}
	src, err := strconv.Atoi(base[:us])
	if err != nil {
		return 0, "", false
	}
	return int32(src), ext, true
}

// sendTagged ships one row set under an (op, round) tag — the collective
// algorithms' point-to-point primitive, written as an ordinary
// "{op}/{round}" phase object the target's scan loop picks up.
func (oc *objectChannel) sendTagged(w *worker, op string, round int, target int32, rs *wire.RowSet) error {
	return oc.put(w, op, round, []targetRows{{target: target, rs: rs}})
}

func (oc *objectChannel) sendTaggedAll(w *worker, op string, round int, outs []targetRows) error {
	return oc.put(w, op, round, outs)
}

func (oc *objectChannel) gatherTagged(w *worker, op string, round int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	return oc.scanCollect(w, op, round, sources, deliver)
}
