package core

import (
	"fmt"
	"testing"

	"fsdinference/internal/collective"
	"fsdinference/internal/model"
)

// TestCollectivesMatrix runs the full correctness matrix: every collective
// topology (plus AutoAlgo) x every channel (including Hybrid) x
// P in {2, 8, 33}, each against the reference inference.
func TestCollectivesMatrix(t *testing.T) {
	channels := []ChannelKind{Queue, Object, Memory, Hybrid}
	algos := []collective.Algorithm{collective.Flat, collective.Tree, collective.Ring, collective.AutoAlgo}
	for _, kind := range channels {
		for _, alg := range algos {
			for _, p := range []int{2, 8, 33} {
				if testing.Short() && p == 33 {
					continue
				}
				t.Run(fmt.Sprintf("%v/%v/p=%d", kind, alg, p), func(t *testing.T) {
					d, m, input := testSetup(t, 128, 2, p, kind, func(c *Config) {
						c.Collective = alg
					})
					res, err := d.Infer(input)
					if err != nil {
						t.Fatal(err)
					}
					checkCorrect(t, m, input, res)
					if len(res.Workers) != p {
						t.Fatalf("worker metrics = %d, want %d", len(res.Workers), p)
					}
				})
			}
		}
	}
}

// TestAllreduceOutputAllWorkers is the satellite fix's acceptance: under
// AllreduceOutput every worker materialises the reduced result, on every
// channel, and all copies agree with each other and across channels.
func TestAllreduceOutputAllWorkers(t *testing.T) {
	const p = 4
	var baseline *Result
	for _, kind := range []ChannelKind{Queue, Object, Memory, Hybrid} {
		t.Run(kind.String(), func(t *testing.T) {
			d, m, input := testSetup(t, 128, 3, p, kind, func(c *Config) {
				c.AllreduceOutput = true
			})
			res, err := d.Infer(input)
			if err != nil {
				t.Fatal(err)
			}
			checkCorrect(t, m, input, res)
			if len(res.AllOutputs) != p {
				t.Fatalf("AllOutputs has %d entries, want %d", len(res.AllOutputs), p)
			}
			for id, out := range res.AllOutputs {
				if out == nil {
					t.Fatalf("worker %d did not materialise the reduced output", id)
				}
				if !model.OutputsClose(out, res.Output, 0) {
					t.Fatalf("worker %d's copy diverges from the root result", id)
				}
			}
			if baseline == nil {
				baseline = res
				return
			}
			if !model.OutputsClose(res.Output, baseline.Output, 1e-3) {
				t.Fatalf("%v allreduce output diverges from %s", kind, baseline.RunID)
			}
		})
	}
}

// TestAllreduceOutputOffByDefault protects the legacy behaviour: without
// the opt-in no per-worker copies are kept.
func TestAllreduceOutputOffByDefault(t *testing.T) {
	d, _, input := testSetup(t, 128, 2, 3, Memory, nil)
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllOutputs != nil {
		t.Fatalf("AllOutputs populated without AllreduceOutput: %d entries", len(res.AllOutputs))
	}
}

// TestHybridChannelBulkPath forces the Hybrid channel's bulk route with a
// tiny threshold and checks both correctness and the routing ledgers.
func TestHybridChannelBulkPath(t *testing.T) {
	d, m, input := testSetup(t, 128, 3, 4, Hybrid, func(c *Config) {
		c.HybridThresholdBytes = 256
		c.HybridChunkBytes = 1 << 12
	})
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	checkCorrect(t, m, input, res)
	if res.Usage.HybridBulkValues == 0 || res.Usage.HybridChunks == 0 {
		t.Fatalf("no bulk traffic routed: %+v", res.Usage)
	}
	if res.Usage.HybridSmallValues == 0 {
		t.Fatalf("no control traffic stayed on the memory path: %+v", res.Usage)
	}
	if res.Usage.KVOps == 0 {
		t.Fatalf("hybrid run metered no store ops: %+v", res.Usage)
	}
	if res.Usage.S3GetCalls <= 1 {
		t.Fatalf("hybrid run fetched no chunk objects: %+v", res.Usage)
	}
	if res.Cost.KV <= 0 {
		t.Fatalf("hybrid run billed no node-hours: %+v", res.Cost)
	}
}

// TestCollectiveCountersMetered checks the per-collective usage counters
// surface with the op/algorithm key, both in the environment meter and the
// per-run reconstruction.
func TestCollectiveCountersMetered(t *testing.T) {
	d, _, input := testSetup(t, 128, 2, 4, Memory, func(c *Config) {
		c.Collective = collective.Tree
	})
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage.Collectives["barrier/tree"] != 1 {
		t.Fatalf("barrier/tree = %d, want 1 (counters: %v)",
			res.Usage.Collectives["barrier/tree"], res.Usage.Collectives)
	}
	if res.Usage.Collectives["gather/tree"] != 1 {
		t.Fatalf("gather/tree = %d, want 1 (counters: %v)",
			res.Usage.Collectives["gather/tree"], res.Usage.Collectives)
	}
}

// TestCollectiveDeterminism re-runs a tree-collective Hybrid deployment
// and demands bit-identical latency, cost and output (run under -race by
// the matrix CI target).
func TestCollectiveDeterminism(t *testing.T) {
	run := func() *Result {
		d, _, input := testSetup(t, 128, 3, 8, Hybrid, func(c *Config) {
			c.Collective = collective.Tree
			c.HybridThresholdBytes = 256
		})
		res, err := d.Infer(input)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Latency != b.Latency {
		t.Fatalf("latencies differ: %v vs %v", a.Latency, b.Latency)
	}
	if a.Cost.Total() != b.Cost.Total() {
		t.Fatalf("costs differ: %v vs %v", a.Cost.Total(), b.Cost.Total())
	}
	for i := range a.Output.Data {
		if a.Output.Data[i] != b.Output.Data[i] {
			t.Fatal("outputs differ between identical runs")
		}
	}
}

// TestBarrierReduceTimesRecorded checks the collective-latency probes.
func TestBarrierReduceTimesRecorded(t *testing.T) {
	d, _, input := testSetup(t, 128, 2, 4, Memory, nil)
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Workers {
		if w.BarrierTime <= 0 {
			t.Fatalf("worker %d barrier time %v", w.ID, w.BarrierTime)
		}
		if w.ReduceTime <= 0 {
			t.Fatalf("worker %d reduce time %v", w.ID, w.ReduceTime)
		}
	}
}
