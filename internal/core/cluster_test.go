package core

import (
	"testing"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
)

// Overlapping runs on a sharded, replicated deployment: both produce
// reference outputs and the teardown unwinds every cluster node —
// primaries and replicas of every shard — to zero run keys.
func TestOverlappingRunsOnShardedClusterTearDownAllShards(t *testing.T) {
	e := env.NewDefault()
	m, err := model.Generate(model.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildPlan(m, 3, partition.HGPDNN, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(e, Config{Model: m, Plan: plan, Channel: Memory, KVNodes: 2, KVReplicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.KVCluster().Nodes()); got != 4 {
		t.Fatalf("sharded deployment provisioned %d nodes, want 2 shards x (1+1)", got)
	}

	inA := model.GenerateInputs(256, 8, 0.2, 2)
	inB := model.GenerateInputs(256, 8, 0.2, 3)
	var resA, resB *Result
	var errA, errB error
	if _, err := d.Start(inA, func(r *Result, err error) { resA, errA = r, err }); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Start(inB, func(r *Result, err error) { resB, errB = r, err }); err != nil {
		t.Fatal(err)
	}
	if err := e.K.Run(); err != nil {
		t.Fatal(err)
	}
	if errA != nil || errB != nil {
		t.Fatalf("run errors: a=%v b=%v", errA, errB)
	}
	if !model.OutputsClose(resA.Output, model.Reference(m, inA), 1e-2) {
		t.Fatal("run A output diverges from reference")
	}
	if !model.OutputsClose(resB.Output, model.Reference(m, inB), 1e-2) {
		t.Fatal("run B output diverges from reference")
	}
	// Give lagged replication applies time to land, then check the whole
	// cluster unwound — a leak on any replica would surface here.
	for node, keys := range d.KVCluster().NumKeysByNode() {
		if keys != 0 {
			t.Fatalf("node %s holds %d keys after overlapping runs", node, keys)
		}
	}
	if n := e.KV.NumKeys(); n != 0 {
		t.Fatalf("%d keys left in the store service after teardown", n)
	}
}

// A mid-run KillNode walks the availability ladder: with no replicas the
// shard's parked inbox values are destroyed and the run must re-send
// them from sender buffers; with one async replica the replication pipe
// is lost and re-sent; with quorum replicas (R=2) nothing is lost and
// nothing is re-sent — the failure hides behind the promotion stall,
// paid for in replica node-hours. In every case the run completes with
// the reference output.
func TestMidRunFailoverByReplicationMode(t *testing.T) {
	if testing.Short() {
		t.Skip("failover runs are long simulations")
	}
	m, err := model.Generate(model.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildPlan(m, 4, partition.HGPDNN, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	input := model.GenerateInputs(256, 8, 0.2, 2)
	ref := model.Reference(m, input)

	run := func(replicas int, kill bool) (*Result, *env.Env) {
		t.Helper()
		e := env.NewDefault()
		d, err := Deploy(e, Config{
			Model: m, Plan: plan, Channel: Memory,
			KVNodes: 2, KVReplicas: replicas,
			KVFailoverWindow: 2 * time.Second,
			KVReplicationLag: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if kill {
			// 1.8s is mid-launch: worker 0 has pushed its layer-0 rows
			// into inboxes of workers that have not started yet, and the
			// pushes are younger than the replication lag.
			e.K.At(1800*time.Millisecond, func() {
				if err := d.KVCluster().KillNode(0); err != nil {
					t.Errorf("kill: %v", err)
				}
			})
		}
		res, err := d.Infer(input)
		if err != nil {
			t.Fatalf("R=%d infer: %v", replicas, err)
		}
		if !model.OutputsClose(res.Output, ref, 1e-2) {
			t.Fatalf("R=%d output diverges from reference after failover", replicas)
		}
		return res, e
	}

	baseline, _ := run(0, false)

	resends := func(r *Result) int64 {
		var n int64
		for _, w := range r.Workers {
			n += w.Resends
		}
		return n
	}

	for _, replicas := range []int{0, 1} {
		res, e := run(replicas, true)
		cl := int64(0)
		if e.Meter.KVFailovers != 1 {
			t.Fatalf("R=%d metered %d failovers, want 1", replicas, e.Meter.KVFailovers)
		}
		cl = e.Meter.KVLostValues
		if cl <= 0 {
			t.Fatalf("R=%d lost %d values across the kill, want in-flight loss", replicas, cl)
		}
		if n := resends(res); n <= 0 {
			t.Fatalf("R=%d run completed without re-sending the %d lost values", replicas, cl)
		}
		if res.Latency <= baseline.Latency {
			t.Fatalf("R=%d failover latency %v not above the %v no-failure baseline",
				replicas, res.Latency, baseline.Latency)
		}
	}

	res2, e2 := run(2, true)
	if e2.Meter.KVLostValues != 0 {
		t.Fatalf("R=2 lost %d values; quorum replication must hide a single kill", e2.Meter.KVLostValues)
	}
	if n := resends(res2); n != 0 {
		t.Fatalf("R=2 re-sent %d values; nothing should have been lost", n)
	}
	// The availability premium is visible in the bill: replica node-hours
	// accrued, and the KV spend exceeds the replica-free run's.
	var replicaHours float64
	for _, h := range e2.Meter.KVReplicaHours {
		replicaHours += h
	}
	if replicaHours <= 0 {
		t.Fatal("R=2 metered no replica node-hours")
	}
	if res2.Cost.KV <= baseline.Cost.KV {
		t.Fatalf("R=2 KV cost $%.4f not above the replica-free $%.4f", res2.Cost.KV, baseline.Cost.KV)
	}
	if res2.Cost.KVReplica <= 0 {
		t.Fatal("R=2 breakdown carries no replica share")
	}
}
