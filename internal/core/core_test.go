package core

import (
	"strings"
	"testing"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
	"fsdinference/internal/sparse"
)

// testSetup builds a small model, plan and deployment.
func testSetup(t *testing.T, neurons, layers, workers int, kind ChannelKind, mutate func(*Config)) (*Deployment, *model.Model, *sparse.Dense) {
	t.Helper()
	m, err := model.Generate(model.GraphChallengeSpec(neurons, layers, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: m, Channel: kind, PollWait: 2 * time.Second}
	if kind != Serial {
		plan, err := partition.BuildPlan(m, workers, partition.HGPDNN, partition.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Plan = plan
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := Deploy(env.NewDefault(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	input := model.GenerateInputs(neurons, 8, 0.2, 2)
	return d, m, input
}

func checkCorrect(t *testing.T, m *model.Model, input *sparse.Dense, res *Result) {
	t.Helper()
	want := model.Reference(m, input)
	if !model.OutputsClose(res.Output, want, 1e-2) {
		t.Fatal("distributed output diverges from reference inference")
	}
	if res.Output.NNZ() == 0 {
		t.Fatal("degenerate all-zero output; test would not catch wiring bugs")
	}
}

func TestSerialMatchesReference(t *testing.T) {
	d, m, input := testSetup(t, 128, 6, 1, Serial, nil)
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	checkCorrect(t, m, input, res)
	if res.Latency <= 0 {
		t.Fatalf("latency = %v", res.Latency)
	}
	if res.Cost.Lambda <= 0 {
		t.Fatalf("no compute cost metered: %+v", res.Cost)
	}
	if res.Cost.Comms() != 0 {
		// Serial still reads the store (S3 GETs) — comms here means S3.
		// The paper's C_Serial = C_lambda covers the function only; store
		// reads exist in all variants. Just assert no SNS/SQS traffic.
		if res.Cost.SNS != 0 || res.Cost.SQS != 0 {
			t.Fatalf("serial run used messaging: %+v", res.Cost)
		}
	}
}

func TestQueueChannelMatchesReference(t *testing.T) {
	d, m, input := testSetup(t, 128, 6, 4, Queue, nil)
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	checkCorrect(t, m, input, res)
	if len(res.Workers) != 4 {
		t.Fatalf("worker metrics = %d, want 4", len(res.Workers))
	}
	if res.Usage.SNSBilledPublishes == 0 || res.Usage.SQSReceiveCalls == 0 {
		t.Fatalf("queue run metered no messaging: %+v", res.Usage)
	}
	if res.Usage.S3PutCalls != 1 {
		t.Fatalf("queue run S3 puts = %d, want 1 (result only)", res.Usage.S3PutCalls)
	}
}

func TestObjectChannelMatchesReference(t *testing.T) {
	d, m, input := testSetup(t, 128, 6, 4, Object, nil)
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	checkCorrect(t, m, input, res)
	if res.Usage.S3PutCalls == 0 || res.Usage.S3ListCalls == 0 {
		t.Fatalf("object run metered no storage traffic: %+v", res.Usage)
	}
	if res.Usage.SNSBilledPublishes != 0 {
		t.Fatalf("object run used pub-sub: %+v", res.Usage)
	}
}

func TestMemoryChannelMatchesReference(t *testing.T) {
	d, m, input := testSetup(t, 128, 6, 4, Memory, nil)
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	checkCorrect(t, m, input, res)
	if len(res.Workers) != 4 {
		t.Fatalf("worker metrics = %d, want 4", len(res.Workers))
	}
	if res.Usage.KVOps == 0 || res.Usage.KVBytesIn == 0 {
		t.Fatalf("memory run metered no store traffic: %+v", res.Usage)
	}
	if res.Usage.KVGBHours <= 0 {
		t.Fatalf("memory run metered no provisioned GB-hours: %+v", res.Usage)
	}
	if res.Cost.KV <= 0 {
		t.Fatalf("memory run billed no node-hours: %+v", res.Cost)
	}
	if res.Usage.SNSBilledPublishes != 0 || res.Usage.SQSReceiveCalls != 0 {
		t.Fatalf("memory run used messaging: %+v", res.Usage)
	}
	if res.Usage.S3PutCalls != 1 {
		t.Fatalf("memory run S3 puts = %d, want 1 (result only)", res.Usage.S3PutCalls)
	}
	// No per-request KV charge exists: the whole KV bill is node-hours.
	minBilled := d.Env.KV.Config().MinBilledDuration
	if res.Latency < minBilled && res.Usage.KVNodeHours[d.Cfg.KVNodeType] != minBilled.Hours() {
		t.Fatalf("metered %v node-hours, want the %v billing floor",
			res.Usage.KVNodeHours[d.Cfg.KVNodeType], minBilled.Hours())
	}
}

func TestMemoryChannelFasterThanQueue(t *testing.T) {
	// The memory store answers in fractions of a millisecond where the
	// pub-sub path pays tens of milliseconds per hop — the latency case
	// for the channel (FMI's memory-channel observation).
	dq, _, input := testSetup(t, 128, 6, 4, Queue, nil)
	dm, _, _ := testSetup(t, 128, 6, 4, Memory, nil)
	rq, err := dq.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := dm.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Latency >= rq.Latency {
		t.Fatalf("memory latency %v not below queue %v", rm.Latency, rq.Latency)
	}
}

func TestMemoryRunLeavesNoKeysBehind(t *testing.T) {
	d, _, input := testSetup(t, 128, 4, 3, Memory, nil)
	if _, err := d.Infer(input); err != nil {
		t.Fatal(err)
	}
	if n := d.Env.KV.NumKeys(); n != 0 {
		t.Fatalf("%d keys left after the run; keyspace teardown leaked", n)
	}
}

func TestQueueAndObjectAgree(t *testing.T) {
	dq, m, input := testSetup(t, 128, 4, 3, Queue, nil)
	do, _, _ := testSetup(t, 128, 4, 3, Object, nil)
	rq, err := dq.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := do.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if !model.OutputsClose(rq.Output, ro.Output, 1e-3) {
		t.Fatal("queue and object channels disagree")
	}
	dm, _, _ := testSetup(t, 128, 4, 3, Memory, nil)
	rm, err := dm.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if !model.OutputsClose(rq.Output, rm.Output, 1e-3) {
		t.Fatal("queue and memory channels disagree")
	}
	_ = m
}

func TestSequentialRequestsOnOneDeployment(t *testing.T) {
	d, m, _ := testSetup(t, 128, 4, 3, Queue, nil)
	for i := 0; i < 3; i++ {
		input := model.GenerateInputs(128, 4, 0.2, int64(10+i))
		res, err := d.Infer(input)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		checkCorrect(t, m, input, res)
	}
}

func TestWarmStartsOnSecondRequest(t *testing.T) {
	d, _, input := testSetup(t, 128, 4, 3, Queue, nil)
	if _, err := d.Infer(input); err != nil {
		t.Fatal(err)
	}
	res2, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for _, w := range res2.Workers {
		if w.Warm {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("second request used no warm instances")
	}
}

func TestHierarchicalRanksFollowTree(t *testing.T) {
	d, _, input := testSetup(t, 128, 6, 7, Queue, func(c *Config) { c.Branching = 2 })
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for _, w := range res.Workers {
		if w.ID < 0 || int(w.ID) >= 7 {
			t.Fatalf("worker id %d out of range", w.ID)
		}
		if seen[w.ID] {
			t.Fatalf("duplicate worker id %d", w.ID)
		}
		seen[w.ID] = true
	}
	if len(seen) != 7 {
		t.Fatalf("launched %d distinct workers, want 7", len(seen))
	}
}

func TestLaunchModesAllCorrect(t *testing.T) {
	for _, mode := range []LaunchMode{Hierarchical, Centralized, TwoLevel} {
		d, m, input := testSetup(t, 128, 4, 5, Queue, func(c *Config) { c.Launch = mode })
		res, err := d.Infer(input)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		checkCorrect(t, m, input, res)
		if res.LaunchComplete <= 0 {
			t.Fatalf("%v: launch-complete metric missing", mode)
		}
	}
}

func TestHierarchicalLaunchBeatsCentralized(t *testing.T) {
	// The paper's launch mechanism populates the tree faster than a
	// centralised single loop at its parallelism levels: the 128 MB
	// coordinator pays heavy per-call CPU for each invoke, while the
	// tree spreads calls across full-size workers.
	times := map[LaunchMode]time.Duration{}
	for _, mode := range []LaunchMode{Hierarchical, Centralized} {
		d, _, input := testSetup(t, 512, 2, 42, Queue, func(c *Config) { c.Launch = mode })
		res, err := d.Infer(input)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		times[mode] = res.LaunchComplete
	}
	if times[Hierarchical] >= times[Centralized] {
		t.Fatalf("hierarchical launch %v not faster than centralized %v",
			times[Hierarchical], times[Centralized])
	}
}

func TestCompressionReducesBytes(t *testing.T) {
	var bytes [2]int64
	for i, compress := range []bool{true, false} {
		d, _, input := testSetup(t, 128, 4, 4, Queue, func(c *Config) { c.Compress = compress })
		res, err := d.Infer(input)
		if err != nil {
			t.Fatal(err)
		}
		bytes[i] = res.TotalBytesSent()
	}
	if bytes[0] >= bytes[1] {
		t.Fatalf("compressed bytes %d not below uncompressed %d", bytes[0], bytes[1])
	}
}

func TestSerialOOMOnOversizedModel(t *testing.T) {
	// A model whose weights exceed the serial instance's memory must fail
	// with an out-of-memory invocation error (the paper's N=65536 case:
	// 2048 neurons x 60 layers is ~31 MB raw, ~173 MB with the modelled
	// Python/SciPy footprint — over a 128 MB instance).
	d, _, input := testSetup(t, 2048, 60, 1, Serial, func(c *Config) { c.SerialMemoryMB = 128 })
	_, err := d.Infer(input)
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("err = %v, want OOM", err)
	}
}

func TestConfigValidation(t *testing.T) {
	e := env.NewDefault()
	if _, err := Deploy(e, Config{}); err == nil {
		t.Error("nil model accepted")
	}
	m, _ := model.Generate(model.GraphChallengeSpec(128, 2, 1))
	if _, err := Deploy(e, Config{Model: m, Channel: Queue}); err == nil {
		t.Error("missing plan accepted")
	}
	other, _ := model.Generate(model.GraphChallengeSpec(256, 2, 1))
	plan, _ := partition.BuildPlan(other, 2, partition.Block, partition.Options{})
	if _, err := Deploy(e, Config{Model: m, Channel: Queue, Plan: plan}); err == nil {
		t.Error("mismatched plan accepted")
	}
}

func TestInputShapeChecked(t *testing.T) {
	d, _, _ := testSetup(t, 128, 2, 1, Serial, nil)
	bad := sparse.NewDense(64, 4)
	if _, err := d.Infer(bad); err == nil {
		t.Error("wrong-shaped input accepted")
	}
}

func TestLatencyAndCostAccounting(t *testing.T) {
	d, _, input := testSetup(t, 128, 4, 4, Queue, nil)
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerSample() <= 0 {
		t.Fatal("per-sample latency not positive")
	}
	if res.CostPerSample() <= 0 {
		t.Fatal("per-sample cost not positive")
	}
	// Workers' runtimes must fit inside the request latency window.
	for _, w := range res.Workers {
		if w.Runtime() <= 0 {
			t.Fatalf("worker %d runtime %v", w.ID, w.Runtime())
		}
		if w.Runtime() > res.Latency {
			t.Fatalf("worker %d runtime %v exceeds request latency %v", w.ID, w.Runtime(), res.Latency)
		}
		if w.PeakMemBytes <= 0 {
			t.Fatalf("worker %d has no memory accounting", w.ID)
		}
	}
	// Lambda GB-seconds must roughly cover the workers' runtimes.
	var wantGBs float64
	for _, w := range res.Workers {
		wantGBs += float64(d.Cfg.WorkerMemoryMB) / 1024 * w.Runtime().Seconds()
	}
	if res.Usage.LambdaGBSeconds < wantGBs*0.9 {
		t.Fatalf("GB-s %.3f below workers' own runtime %.3f", res.Usage.LambdaGBSeconds, wantGBs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (*Result, *sparse.Dense) {
		d, _, input := testSetup(t, 128, 4, 4, Queue, nil)
		res, err := d.Infer(input)
		if err != nil {
			t.Fatal(err)
		}
		return res, res.Output
	}
	a, ao := run()
	b, bo := run()
	if a.Latency != b.Latency {
		t.Fatalf("latencies differ: %v vs %v", a.Latency, b.Latency)
	}
	if a.Cost.Total() != b.Cost.Total() {
		t.Fatalf("costs differ: %v vs %v", a.Cost.Total(), b.Cost.Total())
	}
	for i := range ao.Data {
		if ao.Data[i] != bo.Data[i] {
			t.Fatal("outputs differ between identical runs")
		}
	}
}

func TestShortPollingStillCorrectButChattier(t *testing.T) {
	dLong, m, input := testSetup(t, 128, 4, 4, Queue, nil)
	dShort, _, _ := testSetup(t, 128, 4, 4, Queue, func(c *Config) { c.PollWait = 0 })
	rl, err := dLong.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := dShort.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	checkCorrect(t, m, input, rs)
	if rs.Usage.SQSReceiveCalls <= rl.Usage.SQSReceiveCalls {
		t.Fatalf("short polling receives (%d) not above long polling (%d)",
			rs.Usage.SQSReceiveCalls, rl.Usage.SQSReceiveCalls)
	}
}
