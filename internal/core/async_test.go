package core

import (
	"testing"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
)

// The prepare/run split: multiple runs, on deployments sharing one
// environment, progress inside a single Kernel.Run instead of each Infer
// owning the kernel.

func TestConcurrentStartsShareOneKernelRun(t *testing.T) {
	e := env.NewDefault()
	mSmall, err := model.Generate(model.GraphChallengeSpec(128, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	mLarge, err := model.Generate(model.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildPlan(mLarge, 3, partition.HGPDNN, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dSerial, err := Deploy(e, Config{Model: mSmall, Channel: Serial})
	if err != nil {
		t.Fatal(err)
	}
	dQueue, err := Deploy(e, Config{Model: mLarge, Plan: plan, Channel: Queue, PollWait: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	inSmall := model.GenerateInputs(128, 8, 0.2, 2)
	inLarge := model.GenerateInputs(256, 8, 0.2, 3)
	var rSerial, rQueue *Result
	var eSerial, eQueue error
	if _, err := dSerial.Start(inSmall, func(r *Result, err error) { rSerial, eSerial = r, err }); err != nil {
		t.Fatal(err)
	}
	if _, err := dQueue.Start(inLarge, func(r *Result, err error) { rQueue, eQueue = r, err }); err != nil {
		t.Fatal(err)
	}
	if err := e.K.Run(); err != nil {
		t.Fatal(err)
	}
	if eSerial != nil || eQueue != nil {
		t.Fatalf("run errors: serial=%v queue=%v", eSerial, eQueue)
	}
	if !model.OutputsClose(rSerial.Output, model.Reference(mSmall, inSmall), 1e-2) {
		t.Fatal("serial output diverges from reference")
	}
	if !model.OutputsClose(rQueue.Output, model.Reference(mLarge, inLarge), 1e-2) {
		t.Fatal("queue output diverges from reference")
	}
	// Overlap in virtual time: the serial run must finish before the
	// distributed one, proving neither monopolised the kernel.
	if rSerial.Latency >= rQueue.Latency {
		t.Fatalf("serial latency %v should be below distributed %v", rSerial.Latency, rQueue.Latency)
	}
}

// Run-id partitioned queue consumption: two Queue-channel runs started on
// ONE deployment must overlap in virtual time and both produce reference
// outputs — the restriction the replica pool used to enforce is gone.
func TestOverlappingQueueRunsOnOneDeployment(t *testing.T) {
	e := env.NewDefault()
	m, err := model.Generate(model.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildPlan(m, 3, partition.HGPDNN, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(e, Config{Model: m, Plan: plan, Channel: Queue, PollWait: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	inA := model.GenerateInputs(256, 8, 0.2, 2)
	inB := model.GenerateInputs(256, 8, 0.2, 3)
	type out struct {
		res *Result
		err error
		end time.Duration
	}
	var a, b out
	if _, err := d.Start(inA, func(r *Result, err error) { a = out{r, err, e.K.Now()} }); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Start(inB, func(r *Result, err error) { b = out{r, err, e.K.Now()} }); err != nil {
		t.Fatal(err)
	}
	if err := e.K.Run(); err != nil {
		t.Fatal(err)
	}
	if a.err != nil || b.err != nil {
		t.Fatalf("run errors: a=%v b=%v", a.err, b.err)
	}
	if !model.OutputsClose(a.res.Output, model.Reference(m, inA), 1e-2) {
		t.Fatal("run A output diverges from reference")
	}
	if !model.OutputsClose(b.res.Output, model.Reference(m, inB), 1e-2) {
		t.Fatal("run B output diverges from reference")
	}
	// Overlap: both started at t=0, so serialised execution would make
	// run B's completion time at least the sum of both latencies.
	if b.end >= a.res.Latency+b.res.Latency {
		t.Fatalf("runs serialised: B finished at %v, latencies %v + %v",
			b.end, a.res.Latency, b.res.Latency)
	}
}

// Per-run keyspace isolation: two Memory-channel runs started on ONE
// deployment must overlap in virtual time, both produce reference
// outputs, and leave no keys behind — the memory channel composes with
// run multiplexing exactly like the run-partitioned queues.
func TestOverlappingMemoryRunsOnOneDeployment(t *testing.T) {
	e := env.NewDefault()
	m, err := model.Generate(model.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildPlan(m, 3, partition.HGPDNN, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(e, Config{Model: m, Plan: plan, Channel: Memory})
	if err != nil {
		t.Fatal(err)
	}

	inA := model.GenerateInputs(256, 8, 0.2, 2)
	inB := model.GenerateInputs(256, 8, 0.2, 3)
	type out struct {
		res *Result
		err error
		end time.Duration
	}
	var a, b out
	if _, err := d.Start(inA, func(r *Result, err error) { a = out{r, err, e.K.Now()} }); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Start(inB, func(r *Result, err error) { b = out{r, err, e.K.Now()} }); err != nil {
		t.Fatal(err)
	}
	if err := e.K.Run(); err != nil {
		t.Fatal(err)
	}
	if a.err != nil || b.err != nil {
		t.Fatalf("run errors: a=%v b=%v", a.err, b.err)
	}
	if !model.OutputsClose(a.res.Output, model.Reference(m, inA), 1e-2) {
		t.Fatal("run A output diverges from reference")
	}
	if !model.OutputsClose(b.res.Output, model.Reference(m, inB), 1e-2) {
		t.Fatal("run B output diverges from reference")
	}
	if b.end >= a.res.Latency+b.res.Latency {
		t.Fatalf("runs serialised: B finished at %v, latencies %v + %v",
			b.end, a.res.Latency, b.res.Latency)
	}
	if n := e.KV.NumKeys(); n != 0 {
		t.Fatalf("%d keys left after overlapping runs", n)
	}
}

// Reconstructed per-run usage (the asynchronous path's Usage/Cost) must
// track the exact metered window when runs do not overlap.
func TestAsyncUsageReconstructionMatchesMeter(t *testing.T) {
	for _, kind := range []ChannelKind{Serial, Queue, Object, Memory} {
		d, _, input := testSetup(t, 128, 6, 4, kind, nil)
		snap := d.Env.Meter.Snapshot()
		var res *Result
		var runErr error
		if _, err := d.Start(input, func(r *Result, err error) { res, runErr = r, err }); err != nil {
			t.Fatal(err)
		}
		if err := d.Env.K.Run(); err != nil {
			t.Fatal(err)
		}
		if runErr != nil {
			t.Fatal(runErr)
		}
		used := d.Env.Meter.Sub(snap)
		metered := used.Cost(d.Env.Pricing)
		rec := res.Cost
		for _, pair := range [][2]float64{
			{rec.Lambda, metered.Lambda},
			{rec.SNS, metered.SNS},
			{rec.SQS, metered.SQS},
			{rec.S3, metered.S3},
			{rec.KV, metered.KV},
		} {
			diff := pair[0] - pair[1]
			if diff < 0 {
				diff = -diff
			}
			scale := pair[1]
			if scale < 1e-12 {
				if diff > 1e-12 {
					t.Fatalf("%v: reconstructed %v vs metered %v", kind, pair[0], pair[1])
				}
				continue
			}
			if diff/scale > 0.02 {
				t.Fatalf("%v: reconstructed %v vs metered %v (%.1f%% off)",
					kind, pair[0], pair[1], 100*diff/scale)
			}
		}
	}
}
