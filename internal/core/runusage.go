package core

import (
	"fsdinference/internal/cloud/usage"
)

// runUsage reconstructs one run's resource consumption from the run's own
// worker-side ledgers, following the same mapping the §VI-F cost-model
// validation uses (Equations (1)-(7) evaluate these counts into dollars).
// It exists because concurrent runs share a single environment meter:
// windowed snapshots cannot attribute interleaved billing to one run, but
// every billable event of a run is also counted in its workers' metrics,
// so the per-run view can be rebuilt exactly for Lambda/SNS/SQS and for
// the request-billed S3 calls. Transfer byte counters (S3BytesIn/Out) are
// approximated from payload ledgers; they carry no cost.
func (d *Deployment) runUsage(run *runState) usage.Meter {
	u := *usage.NewMeter()
	u.SQSBillFanout = d.Env.Meter.SQSBillFanout

	// Compute side: one client invocation of the serial function or the
	// coordinator, plus one invocation per worker instance.
	u.LambdaInvocations = 1 + int64(len(run.metrics))
	memMB := d.Cfg.WorkerMemoryMB
	if d.Cfg.Channel == Serial {
		u.LambdaInvocations = 1
		memMB = d.Cfg.SerialMemoryMB
	}
	for _, w := range run.metrics {
		u.LambdaGBSeconds += float64(memMB) / 1024 * w.Runtime().Seconds()
	}
	u.LambdaGBSeconds += float64(d.Cfg.CoordinatorMemoryMB) / 1024 * run.coordRuntime.Seconds()

	// Communication side, per channel, from the worker ledgers.
	for _, w := range run.metrics {
		switch d.Cfg.Channel {
		case Queue:
			u.SNSPublishCalls += w.Publishes
			u.SNSBilledPublishes += w.BilledPublishes
			u.SNSMessages += w.MessagesSent
			u.SNSDeliveredBytes += w.BytesSent + w.AttrBytes
			u.SQSReceiveCalls += w.Polls
			u.SQSDeleteCalls += w.Deletes
			u.SQSSendCalls += w.MessagesSent
			u.S3PutCalls += w.StorePuts
			u.S3GetCalls += w.StoreGets
		case Object:
			u.S3PutCalls += w.Publishes + w.StorePuts
			u.S3GetCalls += w.Fetches + w.StoreGets
			u.S3ListCalls += w.Polls
			u.S3BytesIn += w.BytesSent
			u.S3BytesOut += w.BytesRecv
		case Memory:
			u.KVOps += w.Publishes + w.Polls
			u.KVBytesIn += w.BytesSent
			u.KVBytesOut += w.BytesRecv
			u.S3PutCalls += w.StorePuts
			u.S3GetCalls += w.StoreGets
		case Hybrid:
			// Control plane through the store, bulk chunks through S3.
			u.KVOps += w.Publishes + w.Polls
			u.KVBytesIn += w.BytesSent
			u.KVBytesOut += w.BytesRecv
			u.S3PutCalls += w.HybridPuts + w.StorePuts
			u.S3GetCalls += w.HybridGets + w.StoreGets
		default:
			u.S3PutCalls += w.StorePuts
			u.S3GetCalls += w.StoreGets
		}
	}

	// Collective calls are tracked per run directly (rank 0 counts each
	// once).
	for k, v := range run.collectives {
		u.Collectives[k] += v
	}

	// Provisioned capacity: the memory channel bills node-hours, not
	// requests. A run's attributable share is its own wall time (with the
	// service's billing floor): each run "reserves" the node for its
	// duration, so overlapping runs each carry a full share and the
	// ledger sum can exceed the metered node-hours — deliberately
	// pessimistic per-run attribution of shared capacity. Idle hours
	// between runs belong to the deployment, not to any one request;
	// exact billing is always the metered window (Infer, Replay's
	// TotalCost).
	if (d.Cfg.Channel == Memory || d.Cfg.Channel == Hybrid) && d.kvcluster != nil {
		dur := run.end - run.start
		if min := d.Env.KV.Config().MinBilledDuration; dur < min {
			dur = min
		}
		// Every cluster node — primary shards and their replicas — bills
		// for the run's wall time: replicas are the availability premium
		// the run paid whether or not a failover happened.
		for _, n := range d.kvcluster.Nodes() {
			u.AddKVNodeHours(n.Type().Name, dur.Hours())
			u.KVGBHours += dur.Hours() * n.Type().MemoryGB
			if n.IsReplica() {
				u.AddKVReplicaHours(n.Type().Name, dur.Hours())
			}
		}
	}
	return u
}
