package core

import (
	"bytes"
	"fmt"
	"strconv"
	"time"

	"fsdinference/internal/cloud/kvstore"
	"fsdinference/internal/sim"
	"fsdinference/internal/wire"
)

// memoryChannel implements FSD-Inf-Memory: workers exchange row sets
// through a provisioned in-memory key-value store (ElastiCache/Redis
// class) instead of pub-sub queues or object storage. Every worker owns a
// per-run inbox list "{run}/inbox/{m}" on one of the deployment's cache
// nodes; senders RPUSH one framed value per (target, layer) — the store's
// value cap is far above the 256 KB pub-sub ceiling, so no chunking — and
// receivers BLPOP their inbox, buffering values for phases they have not
// reached yet. Keys are run-scoped, so any number of runs overlap on one
// deployment, and each push refreshes a TTL so an aborted run's keyspace
// expires on its own; normal completion tears the keyspace down
// explicitly. Latency is memory-speed (sub-millisecond ops); the bill is
// provisioned node-hours that accrue while the deployment sits idle — no
// per-request charge at all.
type memoryChannel struct{}

func (mc *memoryChannel) node(w *worker, target int32) *kvstore.Node {
	return w.d.kvnodes[int(target)%len(w.d.kvnodes)]
}

func inboxKey(runID string, target int32) string {
	return runID + "/inbox/" + strconv.Itoa(int(target))
}

// encodeMemValue frames one inbox value: a "kind:layer:src" header, a NUL
// separator, then the wire-encoded (possibly compressed) row set.
func encodeMemValue(kind string, layer int, src int32, body []byte) []byte {
	header := kind + ":" + strconv.Itoa(layer) + ":" + strconv.Itoa(int(src))
	val := make([]byte, 0, len(header)+1+len(body))
	val = append(val, header...)
	val = append(val, 0)
	return append(val, body...)
}

func decodeMemValue(val []byte) (kind string, layer int, src int32, body []byte, err error) {
	sep := bytes.IndexByte(val, 0)
	if sep < 0 {
		return "", 0, 0, nil, fmt.Errorf("core: malformed memory-channel value (no header)")
	}
	parts := bytes.SplitN(val[:sep], []byte(":"), 3)
	if len(parts) != 3 {
		return "", 0, 0, nil, fmt.Errorf("core: malformed memory-channel header %q", val[:sep])
	}
	layer, err = strconv.Atoi(string(parts[1]))
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("core: malformed memory-channel layer: %w", err)
	}
	src64, err := strconv.Atoi(string(parts[2]))
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("core: malformed memory-channel source: %w", err)
	}
	return string(parts[0]), layer, int32(src64), val[sep+1:], nil
}

// push encodes one (target, rows) entry and appends it to the target's
// inbox list, refreshing the run keyspace TTL. Even an empty row set is
// pushed so the target learns the transfer is complete.
func (mc *memoryChannel) push(w *worker, kind string, layer int, target int32, rs *wire.RowSet) (func(p *sim.Proc) error, error) {
	if w.d.Cfg.Compress && rs.Len() > 0 {
		w.ctx.Compress(rs.RawBytes())
	}
	body, err := wire.Encode(rs, w.d.Cfg.Compress)
	if err != nil {
		return nil, err
	}
	val := encodeMemValue(kind, layer, w.id, body)
	w.metrics.BytesSent += int64(len(body))
	w.metrics.MessagesSent++
	w.metrics.Publishes++
	node := mc.node(w, target)
	key := inboxKey(w.run.id, target)
	ttl := w.d.Cfg.FunctionTimeout
	return func(p *sim.Proc) error { return node.RPush(p, key, val, ttl) }, nil
}

func (mc *memoryChannel) send(w *worker, layer int, outs []targetRows) error {
	tasks := make([]func(p *sim.Proc) error, 0, len(outs))
	for _, out := range outs {
		task, err := mc.push(w, "data", layer, out.target, out.rs)
		if err != nil {
			return err
		}
		tasks = append(tasks, task)
	}
	return w.threads("push", tasks)
}

func (mc *memoryChannel) receive(w *worker, layer int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	return mc.collect(w, "data", layer, sources, deliver)
}

// blockWait is the BLPOP block per receive-loop iteration. Blocking reads
// are native to the store (no long-vs-short polling ablation applies), so
// the wait is fixed rather than taken from Config.PollWait.
const blockWait = time.Second

// collect runs the memory-channel receive loop for any value kind: BLPOP
// the worker's inbox, deliver matching values, and buffer values for
// future phases (a fast upstream worker may already be pushing the next
// layer). One value completes one source for the (kind, layer).
func (mc *memoryChannel) collect(w *worker, kind string, layer int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	node := mc.node(w, w.id)
	key := inboxKey(w.run.id, w.id)
	remaining := make(map[int32]bool, len(sources))
	for _, s := range sources {
		remaining[s] = true
	}

	process := func(src int32, body []byte) error {
		if !remaining[src] {
			return nil // duplicate or foreign source
		}
		rs, err := w.decodePayload(body)
		if err != nil {
			return err
		}
		if deliver != nil && rs.Len() > 0 {
			deliver(src, rs)
		}
		delete(remaining, src)
		return nil
	}

	// Drain anything buffered by earlier phases first.
	pkey := pendKey(kind, layer)
	for _, pm := range w.pending[pkey] {
		if err := process(pm.src, pm.body); err != nil {
			return err
		}
	}
	delete(w.pending, pkey)

	for len(remaining) > 0 {
		if w.ctx.Remaining() <= 0 {
			return fmt.Errorf("core: worker %d out of runtime collecting %s/layer %d", w.id, kind, layer)
		}
		w.metrics.Polls++
		val := node.BLPop(w.ctx.P, key, blockWait)
		if val == nil {
			continue
		}
		w.metrics.Fetches++
		vkind, vlayer, src, body, err := decodeMemValue(val)
		if err != nil {
			return err
		}
		if vkind == kind && vlayer == layer {
			if err := process(src, body); err != nil {
				return err
			}
			continue
		}
		// Buffer for the phase that expects it.
		k := pendKey(vkind, vlayer)
		w.pending[k] = append(w.pending[k], pendingMsg{src: src, chunks: 1, seq: 0, body: body})
	}
	return nil
}

// barrier synchronises all workers through worker 0's inbox: non-roots
// push a "done" value, the root gathers P-1 of them and pushes "go"
// values back to every inbox.
func (mc *memoryChannel) barrier(w *worker) error {
	p := w.d.Cfg.Workers()
	if w.id != 0 {
		task, err := mc.push(w, "done", 0, 0, wire.NewRowSet(w.run.batch))
		if err != nil {
			return err
		}
		if err := w.threads("push", []func(*sim.Proc) error{task}); err != nil {
			return err
		}
		return mc.collect(w, "go", 0, []int32{0}, nil)
	}
	srcs := make([]int32, 0, p-1)
	for m := 1; m < p; m++ {
		srcs = append(srcs, int32(m))
	}
	if err := mc.collect(w, "done", 0, srcs, nil); err != nil {
		return err
	}
	tasks := make([]func(*sim.Proc) error, 0, p-1)
	for m := 1; m < p; m++ {
		task, err := mc.push(w, "go", 0, int32(m), wire.NewRowSet(w.run.batch))
		if err != nil {
			return err
		}
		tasks = append(tasks, task)
	}
	return w.threads("push", tasks)
}

func (mc *memoryChannel) reduceSend(w *worker, rs *wire.RowSet) error {
	task, err := mc.push(w, "result", 0, 0, rs)
	if err != nil {
		return err
	}
	return w.threads("push", []func(*sim.Proc) error{task})
}

func (mc *memoryChannel) reduceGather(w *worker, expect int, deliver func(src int32, rs *wire.RowSet)) error {
	srcs := make([]int32, 0, expect)
	for m := 1; m <= expect; m++ {
		srcs = append(srcs, int32(m))
	}
	return mc.collect(w, "result", 0, srcs, deliver)
}
