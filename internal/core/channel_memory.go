package core

import (
	"bytes"
	"fmt"
	"strconv"
	"time"

	"fsdinference/internal/cloud/kvcluster"
	"fsdinference/internal/sim"
	"fsdinference/internal/wire"
)

// memoryChannel implements FSD-Inf-Memory: workers exchange row sets
// through a provisioned in-memory key-value cluster (ElastiCache/Redis
// class) instead of pub-sub queues or object storage. Every worker owns a
// per-run inbox list "{run}/inbox/{m}" whose key hashes into the
// cluster's 16384-slot map, scattering inboxes across the deployment's
// primary shards — each with its own request-rate and bandwidth ceiling,
// so channel throughput scales with KVNodes. Senders RPUSH one framed
// value per (target, layer) — the store's value cap is far above the
// 256 KB pub-sub ceiling, so no chunking — and receivers BLPOP their
// inbox, buffering values for phases they have not reached yet. Keys are
// run-scoped, so any number of runs overlap on one deployment; each push
// refreshes a TTL so an aborted run's keyspace expires on its own, and
// normal completion tears all shards down explicitly.
//
// Failures surface exactly as on a real cluster: while a killed shard
// fails over, operations on its slots stall; once a replica is promoted
// the worker's cached route pays a MOVED-style redirect. A lossy
// failover (R < 2) destroys in-flight inbox values — receivers detect
// the starvation, and the missing sources re-send from the run's
// host-side sender buffers (workers hold their layer outputs in memory),
// charged as fresh pushes and counted in WorkerMetrics.Resends. Quorum
// replication (R >= 2) hides the failure entirely, at replica node-hour
// prices.
type memoryChannel struct {
	// client caches the cluster topology; a failover charges it one
	// redirect round trip.
	client kvcluster.Client
	// resentAt tracks, per "kind:layer" phase, the cluster loss counter
	// up to which sender-buffer recovery already ran, so each lossy
	// failover triggers at most one re-send sweep per phase. The floor
	// for phases that never recovered is the run's baseLost: losses
	// predating the run cannot concern it, but a kill mid-run concerns
	// every worker — including instances that launch after it.
	resentAt map[string]int64
	// resolveBulk, when set (Hybrid channel), resolves the bulk-pointer
	// frames a receive loop collected: each frame names chunks parked in
	// object storage, and the hook fetches every named chunk — across all
	// pointers — through one wide transfer pool, then delivers them. The
	// pointer frames themselves still travel (and replay after a
	// failover) through the in-memory inbox like any other value; the
	// receive loop defers their resolution until the gather completes so
	// one pool round amortises the object store's read latency over every
	// bulk source instead of paying it per source.
	resolveBulk func(w *worker, pending []bulkRef, deliver func(src int32, rs *wire.RowSet)) error
}

// bulkRef is one deferred bulk-pointer frame: the source that announced
// it and the raw pointer body naming its parked chunks.
type bulkRef struct {
	src  int32
	body []byte
}

func newMemoryChannel(w *worker) *memoryChannel {
	return &memoryChannel{resentAt: make(map[string]int64)}
}

// sentValue is one sender-log entry: the framed inbox value a worker
// pushed, with enough addressing to replay it for a starved receiver.
type sentValue struct {
	kind   string
	layer  int
	src    int32
	target int32
	val    []byte
	ttl    time.Duration
}

func inboxKey(runID string, target int32) string {
	return runID + "/inbox/" + strconv.Itoa(int(target))
}

// encodeMemValue frames one inbox value: a "kind:layer:src" header, a NUL
// separator, then the wire-encoded (possibly compressed) row set.
func encodeMemValue(kind string, layer int, src int32, body []byte) []byte {
	header := kind + ":" + strconv.Itoa(layer) + ":" + strconv.Itoa(int(src))
	val := make([]byte, 0, len(header)+1+len(body))
	val = append(val, header...)
	val = append(val, 0)
	return append(val, body...)
}

func decodeMemValue(val []byte) (kind string, layer int, src int32, body []byte, err error) {
	sep := bytes.IndexByte(val, 0)
	if sep < 0 {
		return "", 0, 0, nil, fmt.Errorf("core: malformed memory-channel value (no header)")
	}
	parts := bytes.SplitN(val[:sep], []byte(":"), 3)
	if len(parts) != 3 {
		return "", 0, 0, nil, fmt.Errorf("core: malformed memory-channel header %q", val[:sep])
	}
	layer, err = strconv.Atoi(string(parts[1]))
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("core: malformed memory-channel layer: %w", err)
	}
	src64, err := strconv.Atoi(string(parts[2]))
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("core: malformed memory-channel source: %w", err)
	}
	return string(parts[0]), layer, int32(src64), val[sep+1:], nil
}

// push encodes one (target, rows) entry, appends it to the target's
// slot-routed inbox list (refreshing the run keyspace TTL) and records it
// in the run's sender log for failover recovery. Even an empty row set is
// pushed so the target learns the transfer is complete.
func (mc *memoryChannel) push(w *worker, kind string, layer int, target int32, rs *wire.RowSet) (func(p *sim.Proc) error, error) {
	if w.d.Cfg.Compress && rs.Len() > 0 {
		w.ctx.Compress(rs.RawBytes())
	}
	body, err := wire.Encode(rs, w.d.Cfg.Compress)
	if err != nil {
		return nil, err
	}
	return mc.pushRaw(w, kind, layer, target, body), nil
}

// pushRaw frames an already-encoded body and returns its RPUSH task,
// recording the value in the run's sender log for failover recovery.
func (mc *memoryChannel) pushRaw(w *worker, kind string, layer int, target int32, body []byte) func(p *sim.Proc) error {
	val := encodeMemValue(kind, layer, w.id, body)
	w.metrics.BytesSent += int64(len(body))
	w.metrics.MessagesSent++
	w.metrics.Publishes++
	cl := w.d.kvcluster
	key := inboxKey(w.run.id, target)
	ttl := w.d.Cfg.FunctionTimeout
	if w.run.sent == nil {
		w.run.sent = make(map[int32][]sentValue)
	}
	w.run.sent[target] = append(w.run.sent[target], sentValue{
		kind: kind, layer: layer, src: w.id, target: target, val: val, ttl: ttl,
	})
	return func(p *sim.Proc) error { return cl.RPush(p, &mc.client, key, val, ttl) }
}

func (mc *memoryChannel) send(w *worker, layer int, outs []targetRows) error {
	tasks := make([]func(p *sim.Proc) error, 0, len(outs))
	for _, out := range outs {
		task, err := mc.push(w, "data", layer, out.target, out.rs)
		if err != nil {
			return err
		}
		tasks = append(tasks, task)
	}
	return w.threads("push", tasks)
}

func (mc *memoryChannel) receive(w *worker, layer int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	return mc.collect(w, "data", layer, sources, deliver)
}

// blockWait is the BLPOP block per receive-loop iteration. Blocking reads
// are native to the store (no long-vs-short polling ablation applies), so
// the wait is fixed rather than taken from Config.PollWait.
const blockWait = time.Second

// collect runs the memory-channel receive loop for any value kind: BLPOP
// the worker's inbox, deliver matching values, and buffer values for
// future phases (a fast upstream worker may already be pushing the next
// layer). One value completes one source for the (kind, layer). A
// starved read after a lossy cluster failover triggers one sender-buffer
// re-send sweep for the phase's missing sources.
func (mc *memoryChannel) collect(w *worker, kind string, layer int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	cl := w.d.kvcluster
	key := inboxKey(w.run.id, w.id)
	remaining := make(map[int32]bool, len(sources))
	for _, s := range sources {
		remaining[s] = true
	}

	var bulk []bulkRef
	process := func(src int32, body []byte) error {
		if !remaining[src] {
			return nil // duplicate or foreign source
		}
		if mc.resolveBulk != nil && isBulkPointer(body) {
			bulk = append(bulk, bulkRef{src: src, body: body})
			delete(remaining, src)
			return nil
		}
		rs, err := w.decodePayload(body)
		if err != nil {
			return err
		}
		if deliver != nil && rs.Len() > 0 {
			deliver(src, rs)
		}
		delete(remaining, src)
		return nil
	}

	// Drain anything buffered by earlier phases first.
	pkey := pendKey(kind, layer)
	for _, pm := range w.pending[pkey] {
		if err := process(pm.src, pm.body); err != nil {
			return err
		}
	}
	delete(w.pending, pkey)

	for len(remaining) > 0 {
		if w.ctx.Remaining() <= 0 {
			return fmt.Errorf("core: worker %d out of runtime collecting %s/layer %d", w.id, kind, layer)
		}
		w.metrics.Polls++
		val := cl.BLPop(w.ctx.P, &mc.client, key, blockWait)
		if val == nil {
			if err := mc.recover(w, kind, layer, pkey, remaining); err != nil {
				return err
			}
			continue
		}
		w.metrics.Fetches++
		vkind, vlayer, src, body, err := decodeMemValue(val)
		if err != nil {
			return err
		}
		if vkind == kind && vlayer == layer {
			if err := process(src, body); err != nil {
				return err
			}
			continue
		}
		// Buffer for the phase that expects it.
		k := pendKey(vkind, vlayer)
		w.pending[k] = append(w.pending[k], pendingMsg{src: src, chunks: 1, seq: 0, body: body})
	}
	if len(bulk) > 0 {
		return mc.resolveBulk(w, bulk, deliver)
	}
	return nil
}

// recover runs after a starved blocking read: if the cluster lost values
// to a failover since this phase last recovered, every value the run's
// sender log holds for this worker, this phase, from a still-missing
// source is re-pushed — the re-send the paper-scale system performs from
// the sender's in-memory layer outputs — charged as fresh cluster
// pushes. Later phases that also lost values recover themselves when
// they starve. Quorum-replicated clusters never lose values, so this
// never fires for them and the failover stays hidden behind the
// promotion stall.
func (mc *memoryChannel) recover(w *worker, kind string, layer int, pkey string, remaining map[int32]bool) error {
	lost := w.d.kvcluster.LostValues()
	floor, seen := mc.resentAt[pkey]
	if !seen {
		floor = w.run.baseLost
	}
	if lost <= floor {
		return nil
	}
	mc.resentAt[pkey] = lost
	key := inboxKey(w.run.id, w.id)
	for _, sv := range w.run.sent[w.id] {
		if sv.kind != kind || sv.layer != layer || !remaining[sv.src] {
			continue
		}
		w.metrics.Resends++
		w.d.Env.Meter.KVResends++
		if err := w.d.kvcluster.RPush(w.ctx.P, &mc.client, key, sv.val, sv.ttl); err != nil {
			return err
		}
	}
	return nil
}

// sendTagged ships one row set under an (op, round) tag — the collective
// algorithms' point-to-point primitive, riding the same inbox framing as
// the data path.
func (mc *memoryChannel) sendTagged(w *worker, op string, round int, target int32, rs *wire.RowSet) error {
	return mc.sendTaggedAll(w, op, round, []targetRows{{target: target, rs: rs}})
}

func (mc *memoryChannel) sendTaggedAll(w *worker, op string, round int, outs []targetRows) error {
	tasks := make([]func(p *sim.Proc) error, 0, len(outs))
	for _, out := range outs {
		task, err := mc.push(w, op, round, out.target, out.rs)
		if err != nil {
			return err
		}
		tasks = append(tasks, task)
	}
	return w.threads("push", tasks)
}

func (mc *memoryChannel) gatherTagged(w *worker, op string, round int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	return mc.collect(w, op, round, sources, deliver)
}
