package core

import (
	"encoding/json"
	"fmt"
	"strconv"

	"fsdinference/internal/cloud/faas"
	"fsdinference/internal/cloud/kvstore"
	"fsdinference/internal/collective"
	"fsdinference/internal/obs"
	"fsdinference/internal/sim"
	"fsdinference/internal/sparse"
	"fsdinference/internal/wire"
)

// worker is the per-instance state of one FSI worker during a run.
type worker struct {
	d   *Deployment
	run *runState
	ctx *faas.Ctx
	id  int32

	localRows []int32
	weights   []*sparse.CSR // local row blocks, global column ids

	// x holds this layer's input activation rows by global id: the
	// worker's own rows plus rows received from other workers.
	x        [][]float32
	xTouched []int32
	// xr holds rows received during the current layer (accumulated after
	// the local multiply, Algorithm 1 lines 16-17).
	xr        [][]float32
	xrTouched []int32

	ch      channel
	metrics *WorkerMetrics

	// pending buffers queue messages that arrive for phases this worker
	// has not reached yet (a fast upstream worker may already be
	// publishing layer k+1 while this worker still collects layer k),
	// keyed by "kind:layer".
	pending map[string][]pendingMsg

	// Tracing state (set only when this run was sampled): the run's
	// tracer, this worker's track name, and its lifetime span.
	trace  *obs.Tracer
	ttrack string
	tspan  obs.SpanRef
}

// opSpan opens an engine-phase span on this worker's track. The nil
// check is the entire cost when the run is untraced.
func (w *worker) opSpan(name string) obs.SpanRef {
	if w.trace == nil {
		return obs.SpanRef{}
	}
	return w.trace.Start(w.ttrack, name, obs.KindOp, w.tspan.ID())
}

// failSpan closes the worker's lifetime span on an error path, tagging
// the stage that failed.
func (w *worker) failSpan(stage string) {
	if w.trace == nil {
		return
	}
	w.tspan.SetAttr("error", stage)
	w.tspan.End()
}

type pendingMsg struct {
	src    int32
	chunks int
	seq    int
	body   []byte
}

// targetRows is one (target, rows) send-map entry materialised with data.
type targetRows struct {
	target int32
	rs     *wire.RowSet
}

// channel is the communication variant used by the FSI loop. Every method
// runs in worker Proc context.
type channel interface {
	// send ships the prepared per-target row sets for one layer; it may
	// use the worker's thread pool and must return once all sends are
	// issued and acknowledged.
	send(w *worker, layer int, outs []targetRows) error
	// receive collects layer data until every source in sources has
	// delivered completely, invoking deliver per arriving row set.
	receive(w *worker, layer int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error
	// sendTagged and gatherTagged are the tagged point-to-point transport
	// the collective algorithms run on: an (op, round) pair names one
	// logical exchange the way ("data", layer) names the FSI data path.
	// sendTaggedAll ships a batch under one tag with the channel's native
	// fan-out concurrency (thread pools, publish batches).
	sendTagged(w *worker, op string, round int, target int32, rs *wire.RowSet) error
	sendTaggedAll(w *worker, op string, round int, outs []targetRows) error
	gatherTagged(w *worker, op string, round int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error
}

// workerLink lends the worker's channel to the collective algorithms as a
// collective.Link: rank/size from the deployment, tagged exchanges mapped
// onto the channel's (kind, layer) framing.
type workerLink struct{ w *worker }

func (l workerLink) Rank() int { return int(l.w.id) }
func (l workerLink) Size() int { return l.w.d.Cfg.Workers() }

func (l workerLink) Send(op string, round int, target int, rs *wire.RowSet) error {
	return l.w.ch.sendTagged(l.w, op, round, int32(target), rs)
}

func (l workerLink) SendAll(op string, round int, targets []int, sets []*wire.RowSet) error {
	outs := make([]targetRows, len(targets))
	for i, t := range targets {
		outs[i] = targetRows{target: int32(t), rs: sets[i]}
	}
	return l.w.ch.sendTaggedAll(l.w, op, round, outs)
}

func (l workerLink) Gather(op string, round int, sources []int, deliver func(src int, rs *wire.RowSet)) error {
	srcs := make([]int32, len(sources))
	for i, s := range sources {
		srcs[i] = int32(s)
	}
	return l.w.ch.gatherTagged(l.w, op, round, srcs, func(src int32, rs *wire.RowSet) {
		deliver(int(src), rs)
	})
}

// workerHandler is the FaaS body of a distributed FSI worker
// (Algorithms 1 and 2).
func (d *Deployment) workerHandler(ctx *faas.Ctx, payload []byte) ([]byte, error) {
	var req workerPayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("core: worker payload: %w", err)
	}
	run := d.runs[req.Run]
	if run == nil {
		return nil, fmt.Errorf("core: worker invoked for unknown run %q", req.Run)
	}

	w := &worker{
		d:       d,
		run:     run,
		ctx:     ctx,
		pending: make(map[string][]pendingMsg),
	}
	// Determine rank: derived from parent id, sibling number and the
	// branching factor under the hierarchical launch (§III).
	if req.Explicit >= 0 {
		w.id = req.Explicit
	} else if req.Parent < 0 {
		w.id = 0
	} else {
		w.id = req.Parent*int32(d.Cfg.Branching) + req.Sibling + 1
	}
	w.metrics = &WorkerMetrics{ID: w.id, StartedAt: ctx.P.Now(), Warm: ctx.Warm}
	if sc := run.scope; sc.T != nil {
		w.trace = sc.T
		w.ttrack = fmt.Sprintf("%s/w%d", sc.Track, w.id)
		w.tspan = sc.T.Start(w.ttrack, "worker", obs.KindWorker, sc.Parent)
		w.tspan.SetAttr("warm", strconv.FormatBool(ctx.Warm))
	}
	run.metrics = append(run.metrics, w.metrics)
	run.started = append(run.started, ctx.P.Now())
	if ctx.P.Now() > run.lastStart {
		run.lastStart = ctx.P.Now()
	}

	switch d.Cfg.Channel {
	case Queue:
		w.ch = &queueChannel{}
	case Object:
		w.ch = &objectChannel{}
	case Memory:
		w.ch = newMemoryChannel(w)
	case Hybrid:
		w.ch = newHybridChannel(w)
	default:
		return nil, fmt.Errorf("core: worker launched with %v channel", d.Cfg.Channel)
	}

	if err := w.invokeChildren(req); err != nil {
		run.workerErrs = append(run.workerErrs, err)
		w.failSpan("invoke-children")
		return nil, err
	}
	if err := w.load(); err != nil {
		run.workerErrs = append(run.workerErrs, err)
		w.failSpan("load")
		return nil, err
	}
	if err := w.runFSI(); err != nil {
		run.workerErrs = append(run.workerErrs, err)
		w.failSpan("fsi")
		return nil, err
	}
	w.metrics.FinishedAt = ctx.P.Now()
	w.metrics.PeakMemBytes = ctx.PeakMem()
	w.tspan.End()
	return []byte(`{"ok":true}`), nil
}

// invokeChildren populates this worker's subtree (worker_invoke_children):
// under the hierarchical launch each internal node starts its children
// before doing any other work, spreading launch responsibility across the
// tree (§II-B objective 2).
func (w *worker) invokeChildren(req workerPayload) error {
	d := w.d
	switch d.Cfg.Launch {
	case Hierarchical:
		b := int32(d.Cfg.Branching)
		for s := int32(0); s < b; s++ {
			child := w.id*b + s + 1
			if int(child) >= d.Cfg.Workers() {
				break
			}
			if _, err := w.ctx.InvokeAsync(d.fnWorker, mustJSON(workerPayload{
				Run: req.Run, Parent: w.id, Sibling: s, Explicit: -1,
			})); err != nil {
				return fmt.Errorf("core: worker %d invoking child %d: %w", w.id, child, err)
			}
		}
	case TwoLevel:
		if req.Leader {
			g := groupSize(d.Cfg.Workers())
			for m := int(w.id) + 1; m < int(w.id)+g && m < d.Cfg.Workers(); m++ {
				if _, err := w.ctx.InvokeAsync(d.fnWorker, mustJSON(workerPayload{
					Run: req.Run, Parent: w.id, Explicit: int32(m),
				})); err != nil {
					return fmt.Errorf("core: leader %d invoking member %d: %w", w.id, m, err)
				}
			}
		}
	case Centralized:
		// The coordinator invoked everyone.
	}
	return nil
}

// load reads this worker's weight row blocks, its input activation rows and
// accounts the send/receive maps, charging store reads and instance memory
// (§III: each worker reads its share of weights, inference data and
// per-layer send/recv maps upon launch).
func (w *worker) load() error {
	sp := w.opSpan("load")
	defer sp.End()
	p := w.ctx.P
	d := w.d
	t0 := p.Now()
	n := d.Cfg.Model.Spec.Neurons
	w.localRows = d.Cfg.Plan.Rows[w.id]
	w.weights = make([]*sparse.CSR, len(d.Cfg.Model.Layers))
	perf := w.ctx.Perf()
	for k := range d.Cfg.Model.Layers {
		key := fmt.Sprintf("model/w%d/layer-%d.w", w.id, k)
		blob, err := d.store.Get(p, key)
		if err != nil {
			return fmt.Errorf("core: worker %d loading layer %d: %w", w.id, k, err)
		}
		w.metrics.StoreGets++
		w.ctx.Serialize(int64(len(blob)))
		blk, err := d.stagedBlock(key, blob)
		if err != nil {
			return fmt.Errorf("core: worker %d decoding layer %d: %w", w.id, k, err)
		}
		w.ctx.Alloc(int64(float64(blk.Bytes()) * perf.MemOverheadWeights))
		w.weights[k] = blk
	}
	// Send/receive maps.
	w.ctx.Alloc(d.Cfg.Plan.MapBytes(int(w.id)) * 2)

	// Input rows.
	blob, err := d.store.Get(p, fmt.Sprintf("input/%s/w%d.x", w.run.id, w.id))
	if err != nil {
		return fmt.Errorf("core: worker %d loading input: %w", w.id, err)
	}
	w.metrics.StoreGets++
	w.ctx.Serialize(int64(len(blob)))
	w.ctx.Decompress(int64(len(blob)))
	rs, err := wire.Decode(blob)
	if err != nil {
		return fmt.Errorf("core: worker %d decoding input: %w", w.id, err)
	}
	w.x = make([][]float32, n)
	w.xr = make([][]float32, n)
	for i := 0; i < rs.Len(); i++ {
		w.setX(rs.IDs[i], rs.Row(i))
	}
	w.ctx.Alloc(int64(float64(rs.RawBytes()) * perf.MemOverheadData))
	w.metrics.LoadTime = p.Now() - t0
	return nil
}

func (w *worker) setX(id int32, vals []float32) {
	w.x[id] = vals
	w.xTouched = append(w.xTouched, id)
}

func (w *worker) setXR(id int32, vals []float32) {
	w.xr[id] = vals
	w.xrTouched = append(w.xrTouched, id)
}

func (w *worker) clearLayerState() {
	for _, id := range w.xTouched {
		w.x[id] = nil
	}
	w.xTouched = w.xTouched[:0]
	for _, id := range w.xrTouched {
		w.xr[id] = nil
	}
	w.xrTouched = w.xrTouched[:0]
}

// runFSI executes the FSI loop (Algorithm 1 for the queue channel,
// Algorithm 2 for the object channel; the structure is shared and the
// channel-specific send/receive mechanics differ).
func (w *worker) runFSI() error {
	d := w.d
	spec := d.Cfg.Model.Spec
	batch := w.run.batch
	perf := w.ctx.Perf()

	// prevBytes tracks the accounted size of the activation state carried
	// between layers; recvBytes tracks this layer's received-row buffers.
	var prevBytes, recvBytes int64
	for k := range w.weights {
		lsp := w.opSpan("layer")
		if lsp.Active() {
			lsp.SetAttr("k", strconv.Itoa(k))
		}
		// Extract and ship outgoing rows for this layer
		// (Algorithm 1 lines 3-7 / Algorithm 2 lines 3-8).
		outs := w.extractSendRows(k)
		ssp := w.opSpan("send")
		if err := w.ch.send(w, k, outs); err != nil {
			return fmt.Errorf("core: worker %d layer %d send: %w", w.id, k, err)
		}
		ssp.End()

		// Local multiply, overlapping communication with computation
		// (line 8/9): z = W_m · x_m using only locally held rows.
		z := sparse.NewDense(len(w.localRows), batch)
		zBytes := int64(float64(z.Bytes()) * perf.MemOverheadData)
		w.ctx.Alloc(zBytes)
		macs := sparse.MulGatherInto(w.weights[k], func(c int32) []float32 {
			return w.x[c]
		}, z)
		w.ctx.Compute(float64(macs))

		// Receive inbound rows until all sources for this layer have
		// delivered (lines 9-15 / 10-21).
		sources := d.Cfg.Plan.Recvs[k][w.id]
		recvBytes = 0
		if len(sources) > 0 {
			rsp := w.opSpan("recv")
			err := w.ch.receive(w, k, sources, func(src int32, rs *wire.RowSet) {
				for i := 0; i < rs.Len(); i++ {
					w.setXR(rs.IDs[i], rs.Row(i))
				}
				w.metrics.RowsRecv += int64(rs.Len())
				b := int64(float64(rs.RawBytes()) * perf.MemOverheadData)
				recvBytes += b
				w.ctx.Alloc(b)
			})
			rsp.End()
			if err != nil {
				return fmt.Errorf("core: worker %d layer %d receive: %w", w.id, k, err)
			}
		}

		// Accumulate received contributions (lines 16-17 / 22-23).
		rmacs := sparse.MulGatherInto(w.weights[k], func(c int32) []float32 {
			return w.xr[c]
		}, z)
		w.ctx.Compute(float64(rmacs))

		// Activation (line 18 / 24).
		ops := sparse.ReLUBiasClamp(z, spec.Bias, spec.Clamp)
		w.ctx.ComputeElem(float64(ops))

		// The layer output becomes next layer's local input rows;
		// the previous layer's activations and this layer's receive
		// buffers are released.
		w.clearLayerState()
		for i, r := range w.localRows {
			w.setX(r, z.Row(i))
		}
		w.ctx.Free(prevBytes + recvBytes)
		prevBytes = zBytes
		lsp.End()
	}

	// Barrier, then reduce the distributed output (lines 19-22 / 25-28) —
	// both through the collectives subsystem, under the configured (or
	// auto-picked) topology.
	t0 := w.ctx.P.Now()
	if err := w.barrier(); err != nil {
		return fmt.Errorf("core: worker %d barrier: %w", w.id, err)
	}
	w.metrics.BarrierTime = w.ctx.P.Now() - t0
	t0 = w.ctx.P.Now()
	if err := w.reduce(); err != nil {
		return err
	}
	w.metrics.ReduceTime = w.ctx.P.Now() - t0
	return nil
}

// channelTraits summarises the deployment's channel for the analytic
// collective cost model: per-message latency, effective bandwidth and
// sender-side fan-out, derived from the same service calibration the
// simulator charges.
func (w *worker) channelTraits(msgBytes int64) collective.Traits {
	d := w.d
	memTraits := func() collective.Traits {
		nt := kvstore.Catalog[d.Cfg.KVNodeType]
		return collective.Traits{
			// A value crosses the store twice: push and blocking pop.
			PerMsg:      2 * d.Env.KV.Config().OpLatency,
			BytesPerSec: nt.NetBytesPerSec / 2,
			Fan:         d.Cfg.Threads,
		}
	}
	objTraits := func(fan int) collective.Traits {
		s3cfg := d.Env.S3.Config()
		return collective.Traits{
			PerMsg:      s3cfg.PutLatency + s3cfg.ListLatency + s3cfg.GetLatency,
			BytesPerSec: 2 / (1/s3cfg.PutBytesPerSec + 1/s3cfg.GetBytesPerSec),
			Fan:         fan,
		}
	}
	switch d.Cfg.Channel {
	case Memory:
		return memTraits()
	case Hybrid:
		if msgBytes > int64(d.Cfg.HybridThresholdBytes) {
			return objTraits(d.Cfg.HybridFanout)
		}
		return memTraits()
	case Object:
		return objTraits(d.Cfg.Threads)
	default: // Queue
		snsCfg, sqsCfg := d.Env.SNS.Config(), d.Env.SQS.Config()
		return collective.Traits{
			PerMsg:      snsCfg.PublishLatency + snsCfg.DeliveryLatency + sqsCfg.ReceiveLatency,
			BytesPerSec: sqsCfg.TransferBytesPerSec,
			Fan:         d.Cfg.Threads,
		}
	}
}

// algoFor resolves the deployment's collective topology for one call.
// AutoAlgo consults the analytic model with a rank-independent payload
// estimate — every rank must resolve to the same topology or the exchange
// deadlocks, so the estimate uses the plan's even row split, not this
// rank's actual sparsity.
func (w *worker) algoFor(op collective.Op, msgBytes int64) collective.Algorithm {
	alg := w.d.Cfg.Collective
	if alg == collective.AutoAlgo {
		alg = collective.Pick(op, w.d.Cfg.Workers(), msgBytes, w.channelTraits(msgBytes))
	}
	return alg
}

// reduceEstimate is the rank-independent per-contribution payload estimate
// for the final reduce: the plan's even row share, dense.
func (w *worker) reduceEstimate() int64 {
	p := w.d.Cfg.Workers()
	if p <= 0 {
		p = 1
	}
	rows := int64(w.d.Cfg.Model.Spec.Neurons) / int64(p)
	return rows * int64(w.run.batch+1) * 4
}

// noteCollective records one collective call in the environment meter
// (rank 0 only, so a P-worker collective counts once).
func (w *worker) noteCollective(op collective.Op, alg collective.Algorithm) {
	if w.id == 0 {
		w.d.Env.Meter.AddCollective(op.String(), alg.String())
		if w.run.collectives == nil {
			w.run.collectives = make(map[string]int64)
		}
		w.run.collectives[op.String()+"/"+alg.String()]++
	}
}

// barrier synchronises all workers through the collectives subsystem.
func (w *worker) barrier() error {
	if w.d.Cfg.Workers() <= 1 {
		return nil
	}
	alg := w.algoFor(collective.OpBarrier, 0)
	w.noteCollective(collective.OpBarrier, alg)
	sp := w.opSpan("barrier")
	if sp.Active() {
		sp.SetAttr("alg", alg.String())
	}
	err := collective.For(alg).Barrier(workerLink{w})
	sp.End()
	return err
}

// extractSendRows materialises the layer's send map entries with data,
// skipping rows that are entirely zero (the sparsity optimisation; the
// channel still tells the target the transfer is complete). Serialization
// work is charged here; the channel charges transport.
func (w *worker) extractSendRows(k int) []targetRows {
	entries := w.d.Cfg.Plan.Sends[k][w.id]
	outs := make([]targetRows, 0, len(entries))
	batch := w.run.batch
	for _, e := range entries {
		rs := wire.NewRowSetCap(batch, len(e.Rows))
		for _, r := range e.Rows {
			row := w.x[r]
			if row == nil || allZero(row) {
				continue
			}
			rs.Add(r, row)
		}
		w.ctx.Serialize(rs.RawBytes())
		w.metrics.RowsSent += int64(rs.Len())
		outs = append(outs, targetRows{target: e.Target, rs: rs})
	}
	return outs
}

func allZero(row []float32) bool {
	for _, v := range row {
		if v != 0 {
			return false
		}
	}
	return true
}

// reduce combines every worker's final activation rows into the overall
// inference result x^L (§III-C3): a gather at worker 0 by default, or —
// under AllreduceOutput — an allreduce that materialises the result at all
// P workers (Result.AllOutputs), fixing the root-only reduction.
func (w *worker) reduce() error {
	batch := w.run.batch
	mine := wire.NewRowSetCap(batch, len(w.localRows))
	for _, r := range w.localRows {
		if row := w.x[r]; row != nil {
			mine.Add(r, row)
		}
	}
	w.ctx.Serialize(mine.RawBytes())
	est := w.reduceEstimate()

	if w.d.Cfg.AllreduceOutput {
		alg := w.algoFor(collective.OpAllreduce, est)
		w.noteCollective(collective.OpAllreduce, alg)
		sp := w.opSpan("allreduce")
		if sp.Active() {
			sp.SetAttr("alg", alg.String())
		}
		full, err := collective.For(alg).Allreduce(workerLink{w}, mine, collective.Union)
		sp.End()
		if err != nil {
			return fmt.Errorf("core: worker %d allreduce: %w", w.id, err)
		}
		out := w.fillDense(full)
		if w.run.outputs != nil && int(w.id) < len(w.run.outputs) {
			w.run.outputs[w.id] = out
		}
		if w.id != 0 {
			return nil
		}
		return w.storeResult(out)
	}

	alg := w.algoFor(collective.OpGather, est)
	w.noteCollective(collective.OpGather, alg)
	sp := w.opSpan("gather")
	if sp.Active() {
		sp.SetAttr("alg", alg.String())
	}
	full, err := collective.For(alg).Gather(workerLink{w}, 0, mine)
	sp.End()
	if err != nil {
		return fmt.Errorf("core: worker %d reduce: %w", w.id, err)
	}
	if w.id != 0 {
		return nil
	}
	return w.storeResult(w.fillDense(full))
}

// fillDense scatters a combined row set into a dense N x batch output.
func (w *worker) fillDense(rs *wire.RowSet) *sparse.Dense {
	out := sparse.NewDense(w.d.Cfg.Model.Spec.Neurons, w.run.batch)
	if rs != nil {
		for i := 0; i < rs.Len(); i++ {
			copy(out.Row(int(rs.IDs[i])), rs.Row(i))
		}
	}
	return out
}

// storeResult writes the result object (billed) and reports it to the
// client.
func (w *worker) storeResult(out *sparse.Dense) error {
	enc, err := wire.Encode(denseToRowSet(out), w.d.Cfg.Compress)
	if err != nil {
		return fmt.Errorf("core: encoding result: %w", err)
	}
	w.ctx.Serialize(int64(len(enc)))
	if err := w.d.store.Put(w.ctx.P, fmt.Sprintf("result/%s.out", w.run.id), enc); err != nil {
		return fmt.Errorf("core: storing result: %w", err)
	}
	w.metrics.StorePuts++
	w.run.output = out
	return nil
}

func denseToRowSet(d *sparse.Dense) *wire.RowSet {
	rs := wire.NewRowSetCap(d.Cols, d.Rows)
	for r := 0; r < d.Rows; r++ {
		if !d.RowIsZero(r) {
			rs.Add(int32(r), d.Row(r))
		}
	}
	return rs
}

// threads runs tasks on the worker's communication thread pool
// (ThreadPoolExecutor of §VI-A1): up to Threads simulated threads issue
// service calls concurrently; the call returns when all tasks finish.
// Returns the first task error, if any.
func (w *worker) threads(name string, tasks []func(p *sim.Proc) error) error {
	return w.threadsN(name, w.d.Cfg.Threads, tasks)
}

// threadsN is threads with an explicit pool width, for paths whose
// concurrency is configured separately (the Hybrid channel's bulk chunk
// fanout).
func (w *worker) threadsN(name string, width int, tasks []func(p *sim.Proc) error) error {
	if len(tasks) == 0 {
		return nil
	}
	nt := width
	if nt < 1 {
		nt = 1
	}
	if nt > len(tasks) {
		nt = len(tasks)
	}
	k := w.ctx.P.Kernel()
	wg := sim.NewWaitGroup(k)
	wg.Add(nt)
	next := 0
	var firstErr error
	for t := 0; t < nt; t++ {
		k.Go(fmt.Sprintf("w%d-%s-t%d", w.id, name, t), func(tp *sim.Proc) {
			defer wg.Done()
			for {
				if next >= len(tasks) {
					return
				}
				task := tasks[next]
				next++
				if err := task(tp); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		})
	}
	wg.Wait(w.ctx.P)
	return firstErr
}
