// Package core implements FSD-Inference (paper §III): fully serverless
// distributed DNN inference over a tree of FaaS workers that exchange
// intermediate activations through fully serverless channels.
//
// Three variants are provided, matching the paper:
//
//   - FSD-Inf-Serial: a single FaaS instance, no communication (§VI-A1),
//   - FSD-Inf-Queue: pub-sub topics fanning out to per-worker queues with
//     service-side filter policies (Algorithm 1),
//   - FSD-Inf-Object: object-storage buckets with `.dat`/`.nul` objects and
//     LIST-driven receive loops (Algorithm 2).
//
// Workers launch hierarchically (worker_invoke_children), derive their rank
// from parent id, sibling number and branching factor, load their row-block
// weights and send/receive maps from the model store, and run the FSI loop:
// extract and compress outgoing rows, publish in parallel threads, overlap
// the local multiply, then receive, accumulate, apply the activation, and
// finally barrier and reduce the output to worker 0.
package core

import (
	"fmt"
	"time"

	"fsdinference/internal/cloud/kvstore"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/collective"
	"fsdinference/internal/model"
	"fsdinference/internal/obs"
	"fsdinference/internal/partition"
	"fsdinference/internal/sparse"
)

// ChannelKind selects the communication channel variant.
type ChannelKind int

const (
	// Serial runs a single worker with no communication (FSD-Inf-Serial).
	Serial ChannelKind = iota
	// Queue uses pub-sub + queues (FSD-Inf-Queue).
	Queue
	// Object uses object storage (FSD-Inf-Object).
	Object
	// Memory uses a provisioned in-memory key-value store
	// (FSD-Inf-Memory): memory-speed list push/pop communication billed
	// by provisioned node-hours instead of per request — the
	// ElastiCache/Redis design the paper weighs against its channels.
	Memory
	// Hybrid routes each message by size: small control traffic (barriers,
	// reduce partials, sparse activations under HybridThresholdBytes) over
	// the in-memory store, bulk tensors chunked over object storage with
	// the chunks fetched in parallel — the FMI-style per-message channel
	// selection that lifts the one-channel-per-deployment restriction.
	Hybrid
)

// String returns the paper's name for the variant.
func (c ChannelKind) String() string {
	switch c {
	case Serial:
		return "FSD-Inf-Serial"
	case Queue:
		return "FSD-Inf-Queue"
	case Object:
		return "FSD-Inf-Object"
	case Memory:
		return "FSD-Inf-Memory"
	case Hybrid:
		return "FSD-Inf-Hybrid"
	default:
		return fmt.Sprintf("ChannelKind(%d)", int(c))
	}
}

// LaunchMode selects how the worker tree is populated (§III and the launch
// ablation; the paper reports the hierarchical mechanism beats a
// centralised single loop and Lambada's two-level loop).
type LaunchMode int

const (
	// Hierarchical is the paper's worker_invoke_children tree launch.
	Hierarchical LaunchMode = iota
	// Centralized has the coordinator invoke every worker itself.
	Centralized
	// TwoLevel has the coordinator invoke group leaders, each of which
	// invokes its group (the Lambada-style two-level loop).
	TwoLevel
)

// String names the launch mode.
func (l LaunchMode) String() string {
	switch l {
	case Hierarchical:
		return "hierarchical"
	case Centralized:
		return "centralized"
	case TwoLevel:
		return "two-level"
	default:
		return fmt.Sprintf("LaunchMode(%d)", int(l))
	}
}

// DefaultKVNodeType is the provisioned in-memory store node the Memory
// channel uses unless Config.KVNodeType overrides it.
const DefaultKVNodeType = kvstore.DefaultNodeType

// DefaultWorkerMemoryMB returns the paper's per-worker memory sizing for a
// given neuron count (§VI-A1: 1000/1500/2000/4000 MB for N = 1024..65536),
// chosen so partitioned weights fit with a small overhead.
func DefaultWorkerMemoryMB(neurons int) int {
	switch {
	case neurons <= 1024:
		return 1000
	case neurons <= 4096:
		return 1500
	case neurons <= 16384:
		return 2000
	default:
		return 4000
	}
}

// Config describes one FSD-Inference deployment.
type Config struct {
	// Model is the sparse DNN to serve.
	Model *model.Model
	// Plan is the offline partitioning (required unless Channel ==
	// Serial). Its worker count is the request parallelism P.
	Plan *partition.Plan
	// Channel selects the communication variant.
	Channel ChannelKind

	// Branching is the invocation-tree branching factor (default 3).
	Branching int
	// Launch selects the tree-launch mechanism (default Hierarchical).
	Launch LaunchMode

	// WorkerMemoryMB sizes worker functions (default: paper sizing for
	// the model's neuron count).
	WorkerMemoryMB int
	// SerialMemoryMB sizes the serial function (default 10240, the
	// platform maximum, as in §VI-A1).
	SerialMemoryMB int
	// CoordinatorMemoryMB sizes the lightweight coordinator (default
	// 128).
	CoordinatorMemoryMB int
	// FunctionTimeout is the worker runtime limit (default: platform
	// maximum, 15 minutes).
	FunctionTimeout time.Duration

	// Threads is the per-worker communication thread pool size
	// (default 4), the ThreadPoolExecutor of §VI-A1.
	Threads int
	// Collective selects the collective topology for barrier/reduce
	// (default Flat, the paper's root-funnelled pattern; AutoAlgo picks
	// the analytically cheapest per call from the channel's traits).
	Collective collective.Algorithm
	// AllreduceOutput delivers the reduced inference output to every
	// worker (Result.AllOutputs) instead of materialising it only at
	// worker 0. Off by default: the extra broadcast is pure cost when
	// only the client reads the result.
	AllreduceOutput bool
	// Compress enables zlib payload compression (default true; the
	// compression ablation switches it off).
	Compress bool

	// Topics is the number of parallel pub-sub topics (default 10,
	// topic-{m%10} in Algorithm 1).
	Topics int
	// Buckets is the number of parallel object buckets (default 10,
	// bucket-{n%10} in Algorithm 2).
	Buckets int
	// PollWait is the queue long-poll wait; 0 selects short polling
	// (the polling ablation).
	PollWait time.Duration

	// HybridThresholdBytes is the Hybrid channel's routing split: encoded
	// payloads at or under it travel through the in-memory store, larger
	// ones are chunked into object storage (default 128 KiB).
	HybridThresholdBytes int
	// HybridChunkBytes sizes the Hybrid channel's bulk chunks (default
	// 1 MiB): smaller chunks mean more parallel streams per transfer.
	HybridChunkBytes int
	// HybridFanout is the Hybrid channel's per-worker parallel chunk
	// transfer width (default 32), separate from Threads because bulk
	// tensor staging wants far wider concurrency than control pushes.
	HybridFanout int

	// KVNodeType sizes the provisioned in-memory store nodes (Memory
	// channel only; default cache.m6g.large).
	KVNodeType string
	// KVNodes is the number of primary shards of the provisioned store
	// cluster worker inboxes hash across (default 1). Each shard keeps
	// its own request-rate and bandwidth ceiling, so aggregate channel
	// throughput scales with the shard count.
	KVNodes int
	// KVReplicas is the replica count per shard (default 0). Replicas
	// bill node-hours like primaries and buy failover behaviour: R=1
	// promotes with the async-replication window lost, R>=2 runs quorum
	// writes and a single node failure loses nothing.
	KVReplicas int
	// KVFailoverWindow is how long a killed shard's slots stay
	// unavailable before promotion (default 5s).
	KVFailoverWindow time.Duration
	// KVReplicationLag bounds the async replication delay (default 50ms).
	KVReplicationLag time.Duration

	// StoreBandwidthScale multiplies the model store's transfer
	// bandwidth (default 1). The scaled-experiment harness uses it to
	// keep model-load time in proportion when projecting to paper scale.
	StoreBandwidthScale float64

	// Trace is the deployment's observability scope (internal/obs): the
	// serving layer stamps a tracer plus a per-replica track name here,
	// and the engine emits worker/channel/collective spans under it for
	// runs the tracer sampled. The zero scope disables engine tracing at
	// the cost of one pointer check per hook.
	Trace obs.Scope

	// KVFailoverCounter and KVLostValuesCounter thread the serving
	// layer's per-endpoint metrics counters down to the KV cluster, so
	// shard failovers and lost values are attributed to the endpoint
	// whose deployment owns the cluster (nil-safe; zero when metrics are
	// off).
	KVFailoverCounter   *obs.Counter
	KVLostValuesCounter *obs.Counter
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Branching <= 0 {
		c.Branching = 3
	}
	if c.WorkerMemoryMB <= 0 && c.Model != nil {
		c.WorkerMemoryMB = DefaultWorkerMemoryMB(c.Model.Spec.Neurons)
	}
	if c.SerialMemoryMB <= 0 {
		c.SerialMemoryMB = 10240
	}
	if c.CoordinatorMemoryMB <= 0 {
		c.CoordinatorMemoryMB = 128
	}
	if c.FunctionTimeout <= 0 {
		c.FunctionTimeout = 15 * time.Minute
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.HybridThresholdBytes <= 0 {
		c.HybridThresholdBytes = 128 << 10
	}
	if c.HybridChunkBytes <= 0 {
		c.HybridChunkBytes = 1 << 20
	}
	if c.HybridFanout <= 0 {
		c.HybridFanout = 32
	}
	if c.Topics <= 0 {
		c.Topics = 10
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.KVNodeType == "" {
		c.KVNodeType = DefaultKVNodeType
	}
	if c.KVNodes <= 0 {
		c.KVNodes = 1
	}
	if c.KVReplicas < 0 {
		c.KVReplicas = 0
	}
	return c
}

// Workers returns the parallelism of the deployment (1 for serial).
func (c Config) Workers() int {
	if c.Channel == Serial || c.Plan == nil {
		return 1
	}
	return c.Plan.Workers
}

// validate checks the configuration.
func (c Config) validate() error {
	if c.Model == nil {
		return fmt.Errorf("core: config requires a model")
	}
	if c.Channel != Serial {
		if c.Plan == nil {
			return fmt.Errorf("core: %v requires a partition plan", c.Channel)
		}
		if c.Plan.Neurons != c.Model.Spec.Neurons || c.Plan.Layers != len(c.Model.Layers) {
			return fmt.Errorf("core: plan (%d neurons, %d layers) does not match model (%d neurons, %d layers)",
				c.Plan.Neurons, c.Plan.Layers, c.Model.Spec.Neurons, len(c.Model.Layers))
		}
	}
	return nil
}

// WorkerMetrics reports one worker's activity during a run.
type WorkerMetrics struct {
	ID         int32
	StartedAt  time.Duration // virtual time the handler began
	FinishedAt time.Duration
	Warm       bool
	LoadTime   time.Duration // model/maps/input load from the store
	// BarrierTime and ReduceTime isolate the closing collectives'
	// latency (the tree/ring-versus-flat comparison metric).
	BarrierTime time.Duration
	ReduceTime  time.Duration

	MACs         float64
	RowsSent     int64
	RowsRecv     int64
	BytesSent    int64 // encoded payload bytes shipped
	BytesRecv    int64
	MessagesSent int64 // queue: messages published; object: objects written
	Publishes    int64 // queue: publish API calls; object: PUT calls
	// BilledPublishes is the worker-side ledger of 64 KiB-increment
	// billed publish requests (S), used to predict cost independently of
	// the provider's meter (§VI-F validation).
	BilledPublishes int64
	Polls           int64 // queue: receive calls; object: LIST calls
	Deletes         int64 // queue: delete-batch calls
	Fetches         int64 // queue: messages received; object: GET calls
	// Resends counts values this worker re-delivered from its run's
	// sender-side buffers after a lossy store failover (Memory channel
	// only): the recovery that lets an R<2 cluster run complete at the
	// price of extra ops and latency.
	Resends int64
	// AttrBytes is the worker-side ledger of message-attribute bytes,
	// which count toward SNS->SQS transfer volume (Z).
	AttrBytes int64
	// HybridPuts and HybridGets count the Hybrid channel's bulk chunk
	// objects written and read — S3-billed calls, kept separate from
	// Publishes/Fetches so the per-run cost reconstruction can split the
	// channel's memory-store and object-store sides.
	HybridPuts int64
	HybridGets int64
	// StoreGets counts model-store reads (weights, maps, inputs).
	StoreGets int64
	// StorePuts counts model-store writes (the root's result object).
	StorePuts    int64
	PeakMemBytes int64
}

// Runtime returns the worker's billed runtime.
func (w *WorkerMetrics) Runtime() time.Duration { return w.FinishedAt - w.StartedAt }

// Result reports one inference request.
type Result struct {
	RunID  string
	Output *sparse.Dense
	// AllOutputs holds every worker's copy of the reduced output when the
	// deployment runs with AllreduceOutput (index = worker id, nil
	// otherwise).
	AllOutputs []*sparse.Dense
	// Latency is the end-to-end query latency: client invoke to result
	// availability, in virtual time.
	Latency time.Duration
	// LaunchComplete is when the last worker instance began executing,
	// relative to the client invoke (the launch-tree ablation metric).
	LaunchComplete time.Duration
	// CoordinatorRuntime is the coordinator function's billed runtime
	// (zero for serial runs).
	CoordinatorRuntime time.Duration
	Batch              int
	Workers            []*WorkerMetrics
	// Usage is the resource consumption of this run only.
	Usage usage.Meter
	// Cost is Usage priced under the environment's catalogue.
	Cost usage.Breakdown
}

// PerSample returns the per-sample latency (Table II / Fig. 6 metric).
func (r *Result) PerSample() time.Duration {
	if r.Batch == 0 {
		return 0
	}
	return r.Latency / time.Duration(r.Batch)
}

// CostPerSample returns the per-sample dollar cost (Fig. 6 metric).
func (r *Result) CostPerSample() float64 {
	if r.Batch == 0 {
		return 0
	}
	return r.Cost.Total() / float64(r.Batch)
}

// TotalBytesSent sums encoded payload bytes shipped between workers.
func (r *Result) TotalBytesSent() int64 {
	var n int64
	for _, w := range r.Workers {
		n += w.BytesSent
	}
	return n
}

// TotalRowsSent sums activation rows shipped between workers.
func (r *Result) TotalRowsSent() int64 {
	var n int64
	for _, w := range r.Workers {
		n += w.RowsSent
	}
	return n
}
