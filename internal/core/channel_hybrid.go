package core

import (
	"fmt"
	"strconv"
	"strings"

	"fsdinference/internal/sim"
	"fsdinference/internal/wire"
)

// hybridChannel implements FSD-Inf-Hybrid: per-message channel selection
// in the FMI style. Every logical value still announces itself through the
// in-memory store inbox — the ordering, buffering and failover machinery
// of the Memory channel apply unchanged — but the payload's route depends
// on its size:
//
//   - control traffic and sparse activations at or under
//     HybridThresholdBytes travel inline through the store, paying its
//     sub-millisecond op latency;
//   - bulk tensors are split into HybridChunkBytes chunks written to
//     object storage from a HybridFanout-wide transfer pool, and only a
//     tiny pointer frame (chunk count + key prefix) rides the inbox. The
//     receiver streams the chunks back through the same wide pool, so the
//     transfer's aggregate bandwidth is fanout x the per-connection object
//     store rate — past the crossover point, more than the memory store's
//     per-caller network path delivers — and decodes each chunk as it
//     lands.
//
// Failover recovery is inherited: the pointer frame sits in the run's
// sender log like any inbox value, and the chunks it names persist in
// object storage across a store failover, so replaying the pointer is a
// complete re-delivery.
type hybridChannel struct {
	memoryChannel
}

func newHybridChannel(w *worker) *hybridChannel {
	hc := &hybridChannel{memoryChannel: memoryChannel{resentAt: make(map[string]int64)}}
	hc.resolveBulk = hc.fetchBulk
	return hc
}

// bulkMagic marks a pointer frame in an inbox value body. It is distinct
// from the wire codec's row-set magic, so the receive loop can tell a
// pointer from an inline payload by its first byte.
const bulkMagic = 0xF6

func isBulkPointer(body []byte) bool {
	return len(body) > 0 && body[0] == bulkMagic
}

// encodeBulkPointer frames "chunks:prefix": everything a receiver needs to
// stream the parked chunks back.
func encodeBulkPointer(chunks int, prefix string) []byte {
	s := strconv.Itoa(chunks) + ":" + prefix
	out := make([]byte, 0, 1+len(s))
	out = append(out, bulkMagic)
	return append(out, s...)
}

func decodeBulkPointer(body []byte) (chunks int, prefix string, err error) {
	if !isBulkPointer(body) {
		return 0, "", fmt.Errorf("core: not a bulk pointer frame")
	}
	s := string(body[1:])
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, "", fmt.Errorf("core: malformed bulk pointer %q", s)
	}
	chunks, err = strconv.Atoi(s[:colon])
	if err != nil || chunks < 1 {
		return 0, "", fmt.Errorf("core: malformed bulk chunk count %q", s)
	}
	return chunks, s[colon+1:], nil
}

func (hc *hybridChannel) bulkPrefix(w *worker, kind string, layer int, target int32) string {
	return fmt.Sprintf("%s/bulk/%s/%d/%d_%d", w.run.id, kind, layer, w.id, target)
}

func chunkKey(prefix string, i int) string {
	return prefix + "/" + strconv.Itoa(i)
}

// sendAll routes one batch of values: small ones become inline inbox
// pushes; bulk ones park their chunks in object storage first (all
// targets' chunks through one HybridFanout-wide pool), then announce
// themselves with pointer pushes. The chunk PUTs complete before any
// pointer is pushed, so a receiver's GETs never race the upload.
func (hc *hybridChannel) sendAll(w *worker, kind string, layer int, outs []targetRows) error {
	d := w.d
	var inline []func(p *sim.Proc) error // small pushes + pointer pushes
	var puts []func(p *sim.Proc) error

	for _, out := range outs {
		if int(out.rs.RawBytes()) <= d.Cfg.HybridThresholdBytes {
			task, err := hc.push(w, kind, layer, out.target, out.rs)
			if err != nil {
				return err
			}
			inline = append(inline, task)
			d.Env.Meter.HybridSmallValues++
			continue
		}
		if d.Cfg.Compress {
			w.ctx.Compress(out.rs.RawBytes())
		}
		chunks, err := wire.EncodeChunks(out.rs, d.Cfg.HybridChunkBytes, d.Cfg.Compress)
		if err != nil {
			return err
		}
		bucket := d.buckets[int(out.target)%len(d.buckets)]
		prefix := hc.bulkPrefix(w, kind, layer, out.target)
		for i, c := range chunks {
			c := c
			key := chunkKey(prefix, i)
			puts = append(puts, func(p *sim.Proc) error { return bucket.Put(p, key, c) })
			w.metrics.BytesSent += int64(len(c))
		}
		w.metrics.MessagesSent += int64(len(chunks))
		w.metrics.HybridPuts += int64(len(chunks))
		d.Env.Meter.HybridBulkValues++
		d.Env.Meter.HybridBulkBytes += out.rs.RawBytes()
		d.Env.Meter.HybridChunks += int64(len(chunks))
		inline = append(inline, hc.pushRaw(w, kind, layer, out.target, encodeBulkPointer(len(chunks), prefix)))
	}
	if err := w.threadsN("bput", d.Cfg.HybridFanout, puts); err != nil {
		return err
	}
	return w.threads("push", inline)
}

// fetchBulk resolves the pointer frames one receive loop collected:
// every named chunk, across all sources, streams back from object
// storage through a single HybridFanout-wide pool — one pool round
// amortises the store's read latency over the whole gather — then each
// source's chunks decode and deliver in pointer-arrival order.
func (hc *hybridChannel) fetchBulk(w *worker, pending []bulkRef, deliver func(src int32, rs *wire.RowSet)) error {
	// The chunk objects live in the bucket keyed by this worker (the
	// send-side routed by target).
	bucket := w.d.buckets[int(w.id)%len(w.d.buckets)]
	bodies := make([][][]byte, len(pending))
	var tasks []func(p *sim.Proc) error
	for pi, ref := range pending {
		chunks, prefix, err := decodeBulkPointer(ref.body)
		if err != nil {
			return err
		}
		bodies[pi] = make([][]byte, chunks)
		for i := 0; i < chunks; i++ {
			pi, i := pi, i
			key := chunkKey(prefix, i)
			tasks = append(tasks, func(p *sim.Proc) error {
				b, err := bucket.Get(p, key)
				if err != nil {
					return err
				}
				bodies[pi][i] = b
				return nil
			})
		}
	}
	w.metrics.HybridGets += int64(len(tasks))
	if err := w.threadsN("bget", w.d.Cfg.HybridFanout, tasks); err != nil {
		return err
	}
	for pi, ref := range pending {
		for _, b := range bodies[pi] {
			rs, err := w.decodePayload(b)
			if err != nil {
				return err
			}
			if deliver != nil && rs.Len() > 0 {
				deliver(ref.src, rs)
			}
		}
	}
	return nil
}

func (hc *hybridChannel) send(w *worker, layer int, outs []targetRows) error {
	return hc.sendAll(w, "data", layer, outs)
}

func (hc *hybridChannel) sendTagged(w *worker, op string, round int, target int32, rs *wire.RowSet) error {
	return hc.sendAll(w, op, round, []targetRows{{target: target, rs: rs}})
}

func (hc *hybridChannel) sendTaggedAll(w *worker, op string, round int, outs []targetRows) error {
	return hc.sendAll(w, op, round, outs)
}
