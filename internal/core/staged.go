package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fsdinference/internal/model"
	"fsdinference/internal/partition"
	"fsdinference/internal/sparse"
	"fsdinference/internal/wire"
)

// Staging a model — slicing per-worker row blocks and binary-encoding every
// layer — is pure in (model, plan), yet it used to run per Deploy and every
// handler re-decoded its weight blobs per run. At replay scale (replica
// pools, autoscaling, per-lane deployments) that made EncodeCSR/DecodeCSR
// the dominant allocator. stagedCache memoises the artifacts process-wide:
// the encoded blobs keep the store objects (and thus simulated transfer
// sizes, latencies and metered bytes) exactly as before, while handlers
// reuse the decoded CSR in place of decoding a private copy. Weight blocks
// are read-only in the compute path (sparse.Mul does not mutate its
// operands), so sharing one decoded block across runs, replicas and replay
// lanes is safe.
var stagedCache sync.Map // stagedKey -> *stagedModel

type stagedKey struct {
	model *model.Model
	plan  *partition.Plan // nil for Serial
}

// stagedModel holds one deployment shape's staging artifacts: store key →
// encoded blob, and store key → the decoded weight block the blob encodes.
type stagedModel struct {
	blobs  map[string][]byte
	blocks map[string]*sparse.CSR
}

func stagedFor(cfg Config) *stagedModel {
	key := stagedKey{model: cfg.Model}
	if cfg.Channel != Serial {
		key.plan = cfg.Plan
	}
	if v, ok := stagedCache.Load(key); ok {
		return v.(*stagedModel)
	}
	s := &stagedModel{
		blobs:  make(map[string][]byte),
		blocks: make(map[string]*sparse.CSR),
	}
	if cfg.Channel == Serial {
		for k, w := range cfg.Model.Layers {
			sk := fmt.Sprintf("model/full/layer-%d.w", k)
			s.blobs[sk] = model.EncodeCSR(w)
			s.blocks[sk] = w
		}
	} else {
		plan := cfg.Plan
		for worker := 0; worker < plan.Workers; worker++ {
			for k, w := range cfg.Model.Layers {
				blk := w.SelectRows(plan.Rows[worker])
				sk := fmt.Sprintf("model/w%d/layer-%d.w", worker, k)
				s.blobs[sk] = model.EncodeCSR(blk)
				s.blocks[sk] = blk
			}
		}
	}
	if v, loaded := stagedCache.LoadOrStore(key, s); loaded {
		return v.(*stagedModel)
	}
	return s
}

// inputEncMemo caches the encoded staging payloads of an input matrix
// (full-matrix for Serial, per-worker row blocks otherwise). Replays and
// planner probes stage the same (memoised) coalesced batches repeatedly,
// and the zlib encode of each staged input dominated the replay profile.
// Keying by input-matrix identity is sound because the serving layer
// memoises generated inputs and merged batches: identical batches arrive
// as identical pointers. Bounded like the other memos — a stream of a
// million distinct inputs pays one map probe each and fixed memory.
var (
	inputEncMemo     sync.Map // inputEncKey -> [][]byte
	inputEncMemoSize atomic.Int64
)

const inputEncMemoCap = 4096

type inputEncKey struct {
	input    *sparse.Dense
	plan     *partition.Plan // nil for Serial (full-matrix staging)
	compress bool
}

// encodedInput returns the staged payloads for one request input: a single
// full-matrix payload for Serial, one payload per worker otherwise.
func (d *Deployment) encodedInput(input *sparse.Dense, batch int) [][]byte {
	key := inputEncKey{input: input, compress: d.Cfg.Compress}
	if d.Cfg.Channel != Serial {
		key.plan = d.Cfg.Plan
	}
	if v, ok := inputEncMemo.Load(key); ok {
		return v.([][]byte)
	}
	var blobs [][]byte
	if d.Cfg.Channel == Serial {
		rs := wire.NewRowSetCap(batch, input.Rows)
		for r := 0; r < input.Rows; r++ {
			rs.Add(int32(r), input.Row(r))
		}
		p, err := wire.Encode(rs, d.Cfg.Compress)
		if err != nil {
			panic(fmt.Sprintf("core: encoding input: %v", err))
		}
		blobs = [][]byte{p}
	} else {
		plan := d.Cfg.Plan
		blobs = make([][]byte, plan.Workers)
		for worker := 0; worker < plan.Workers; worker++ {
			rs := wire.NewRowSetCap(batch, len(plan.Rows[worker]))
			for _, r := range plan.Rows[worker] {
				rs.Add(r, input.Row(int(r)))
			}
			p, err := wire.Encode(rs, d.Cfg.Compress)
			if err != nil {
				panic(fmt.Sprintf("core: encoding input: %v", err))
			}
			blobs[worker] = p
		}
	}
	if inputEncMemoSize.Load() < inputEncMemoCap {
		if _, loaded := inputEncMemo.LoadOrStore(key, blobs); !loaded {
			inputEncMemoSize.Add(1)
		}
	}
	return blobs
}

// serialMemo caches the serial engine's numeric run result. A run's output
// activations, per-layer MAC counts and encoded result payload are pure in
// (model, input, compress); replay harnesses — benchmark iterations,
// planner probes, experiment grids — drive identical runs repeatedly, and
// the float kernel work was the last flat cost on the replay profile. The
// simulated side is untouched: the handler charges the same per-layer
// compute, element ops and allocation high-water whether the numbers come
// from the memo or from a fresh layer loop. Cached outputs are shared and
// must be treated as immutable, which result consumers (response slicing,
// verification, experiment assertions) already do.
var (
	serialMemo     sync.Map // serialKey -> *serialResult
	serialMemoSize atomic.Int64
)

const serialMemoCap = 4096

type serialKey struct {
	m        *model.Model
	input    *sparse.Dense
	compress bool
}

type serialResult struct {
	output    *sparse.Dense
	encoded   []byte
	layerMACs []int64
	layerOps  []int64
}

// serialCompute runs (or recalls) the serial layer loop for one input and
// returns the output, the encoded result payload and per-layer op counts.
func (d *Deployment) serialCompute(input *sparse.Dense) (*serialResult, error) {
	key := serialKey{d.Cfg.Model, input, d.Cfg.Compress}
	if v, ok := serialMemo.Load(key); ok {
		return v.(*serialResult), nil
	}
	spec := d.Cfg.Model.Spec
	x := input.Clone()
	res := &serialResult{
		layerMACs: make([]int64, 0, len(d.Cfg.Model.Layers)),
		layerOps:  make([]int64, 0, len(d.Cfg.Model.Layers)),
	}
	for _, w := range d.Cfg.Model.Layers {
		z, macs := sparse.Mul(w, x)
		ops := sparse.ReLUBiasClamp(z, spec.Bias, spec.Clamp)
		res.layerMACs = append(res.layerMACs, macs)
		res.layerOps = append(res.layerOps, ops)
		x = z
	}
	res.output = x
	enc, err := wire.Encode(denseToRowSet(x), d.Cfg.Compress)
	if err != nil {
		return nil, err
	}
	res.encoded = enc
	if serialMemoSize.Load() < serialMemoCap {
		if _, loaded := serialMemo.LoadOrStore(key, res); !loaded {
			serialMemoSize.Add(1)
		}
	}
	return res, nil
}

// stagedBlock returns the decoded weight block for a staged model key,
// avoiding a per-run DecodeCSR of bytes this process encoded itself. The
// blob argument is the object just fetched (and metered) from the store; it
// is only decoded on the fallback path.
func (d *Deployment) stagedBlock(key string, blob []byte) (*sparse.CSR, error) {
	if d.staged != nil {
		if blk, ok := d.staged.blocks[key]; ok {
			return blk, nil
		}
	}
	return model.DecodeCSR(blob)
}
