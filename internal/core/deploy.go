package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/cloud/faas"
	"fsdinference/internal/cloud/kvcluster"
	"fsdinference/internal/cloud/s3"
	"fsdinference/internal/cloud/sns"
	"fsdinference/internal/cloud/sqs"
	"fsdinference/internal/obs"
	"fsdinference/internal/sim"
	"fsdinference/internal/sparse"
)

// Deployment is a deployed FSD-Inference application: pre-created
// communication resources (topics, queues, buckets — free to keep, as the
// paper notes), a staged model store, and registered functions. A
// deployment serves any number of sequential inference requests through
// Infer, or asynchronous requests through Start, which lets many runs —
// across deployments sharing one environment — progress inside a single
// simulated-time Kernel.Run.
type Deployment struct {
	Env *env.Env
	Cfg Config

	prefix    string
	topics    []*sns.Topic
	buckets   []*s3.Bucket
	kvcluster *kvcluster.Cluster
	store     *s3.Bucket

	fnWorker      string
	fnCoordinator string
	fnSerial      string

	// staged caches this deployment shape's encoded/decoded model
	// artifacts (see stagedCache).
	staged *stagedModel

	runSeq int
	// runs holds every in-flight request keyed by run id; handlers look
	// their run up by the id carried in the invocation payload.
	runs map[string]*runState
}

// runState is the per-request bookkeeping shared (host-side) between the
// client, coordinator and workers of one run.
type runState struct {
	id    string
	batch int
	input *sparse.Dense

	// queues are this run's per-worker receive queues (Queue channel
	// only): queue m is subscribed to every topic with a service-side
	// filter on (target=m, run=id), so concurrent runs of one deployment
	// never consume each other's messages.
	queues []*sqs.Queue

	// sent is the Memory channel's host-side sender log: every framed
	// value pushed during the run, keyed by target worker. Workers hold
	// their layer outputs in memory anyway, so after a lossy store
	// failover a receiver can have its missing sources re-send from
	// these buffers instead of deadlocking on values no node holds.
	// baseLost is the cluster's loss counter when the run began: only
	// failovers after it concern this run, even for workers whose
	// instances launch after the kill.
	sent     map[int32][]sentValue
	baseLost int64

	// outputs collects every worker's reduced result under
	// AllreduceOutput (index = worker id; nil otherwise).
	outputs []*sparse.Dense
	// collectives counts this run's collective calls by "op/alg" key, the
	// per-run share of the environment meter's Collectives.
	collectives map[string]int64

	rootFut      *faas.Future
	metrics      []*WorkerMetrics
	started      []time.Duration
	lastStart    time.Duration
	coordRuntime time.Duration
	output       *sparse.Dense
	workerErrs   []error
	// start and end bound the run in virtual time (client invoke to
	// result availability); the per-run usage reconstruction uses them to
	// attribute provisioned-capacity hours.
	start, end time.Duration

	// scope is the run's tracing scope — the deployment's scope narrowed
	// to the serving-side run span this run nests under. Zero (one
	// pointer check per hook) unless the run was sampled.
	scope obs.Scope
}

// Deploy validates the configuration, stages the partitioned model into the
// object store and creates all communication resources and functions.
// Staging happens offline (host-side) and is not billed, matching the
// paper's a-priori partitioning and resource pre-creation.
//
// Deployment names are sequenced per environment (not process-globally), so
// independent environments — e.g. parallel replay lanes — name and number
// their deployments identically and stay deterministic.
func Deploy(e *env.Env, cfg Config) (*Deployment, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	prefix := fmt.Sprintf("fsd%d", e.NextDeployID())
	d := &Deployment{
		Env:           e,
		Cfg:           cfg,
		prefix:        prefix,
		fnWorker:      prefix + "-worker",
		fnCoordinator: prefix + "-coordinator",
		fnSerial:      prefix + "-serial",
		runs:          make(map[string]*runState),
	}
	d.store = e.S3.CreateBucket(prefix + "-store")
	if cfg.StoreBandwidthScale > 0 && cfg.StoreBandwidthScale != 1 {
		d.store.GetBandwidth = e.S3.Config().GetBytesPerSec * cfg.StoreBandwidthScale
		d.store.PutBandwidth = e.S3.Config().PutBytesPerSec * cfg.StoreBandwidthScale
	}
	d.stageModel()

	if cfg.Channel == Queue {
		// Topics are created a priori (free to keep, §III-A); the
		// per-worker receive queues are created per run in bindRunQueues,
		// with filter policies keyed on (target, run), so any number of
		// runs can overlap on one deployment.
		d.topics = make([]*sns.Topic, cfg.Topics)
		for t := 0; t < cfg.Topics; t++ {
			d.topics[t] = e.SNS.CreateTopic(fmt.Sprintf("%s-topic-%d", prefix, t))
		}
	}
	if cfg.Channel == Object || cfg.Channel == Hybrid {
		d.buckets = make([]*s3.Bucket, cfg.Buckets)
		for b := 0; b < cfg.Buckets; b++ {
			d.buckets[b] = e.S3.CreateBucket(fmt.Sprintf("%s-bucket-%d", prefix, b))
		}
	}
	if cfg.Channel == Memory || cfg.Channel == Hybrid {
		// Unlike topics and buckets, provisioned cache nodes are NOT free
		// to keep: they bill node-hours from this moment, idle or busy —
		// the provisioned-versus-per-request tradeoff of §IV. The nodes
		// form a slot-mapped cluster: KVNodes primary shards (each with
		// its own request-rate ceiling) times KVReplicas replicas, so the
		// deployment buys throughput with shards and availability with
		// replica node-hours.
		cl, err := kvcluster.New(e.KV, kvcluster.Config{
			Name:              prefix + "-kv",
			Shards:            cfg.KVNodes,
			Replicas:          cfg.KVReplicas,
			NodeType:          cfg.KVNodeType,
			FailoverWindow:    cfg.KVFailoverWindow,
			ReplicationLag:    cfg.KVReplicationLag,
			Trace:             cfg.Trace.Sub("kv"),
			FailoverCounter:   cfg.KVFailoverCounter,
			LostValuesCounter: cfg.KVLostValuesCounter,
		})
		if err != nil {
			return nil, err
		}
		d.kvcluster = cl
	}

	if err := d.registerFunctions(); err != nil {
		return nil, err
	}
	return d, nil
}

// stageModel writes per-worker weight row blocks (or the whole model for
// serial) into the model store. The encode/slice work is memoised across
// deployments of the same (model, plan) shape — see stagedCache.
func (d *Deployment) stageModel() {
	d.staged = stagedFor(d.Cfg)
	for key, blob := range d.staged.blobs {
		d.putStore(key, blob)
	}
}

// putStore writes a staging object host-side (offline, unbilled, no
// virtual time). It is safe to call both between kernel runs and from
// kernel context while a simulation is in flight, which lets request
// inputs be staged for runs admitted mid-simulation.
func (d *Deployment) putStore(key string, data []byte) {
	d.store.Stage(key, data)
}

func (d *Deployment) registerFunctions() error {
	cfg := d.Cfg
	if cfg.Channel == Serial {
		return d.Env.FaaS.Register(faas.FunctionConfig{
			Name:     d.fnSerial,
			MemoryMB: cfg.SerialMemoryMB,
			Timeout:  cfg.FunctionTimeout,
			Handler:  d.serialHandler,
		})
	}
	if err := d.Env.FaaS.Register(faas.FunctionConfig{
		Name:     d.fnCoordinator,
		MemoryMB: cfg.CoordinatorMemoryMB,
		Timeout:  cfg.FunctionTimeout,
		Handler:  d.coordinatorHandler,
	}); err != nil {
		return err
	}
	return d.Env.FaaS.Register(faas.FunctionConfig{
		Name:     d.fnWorker,
		MemoryMB: cfg.WorkerMemoryMB,
		Timeout:  cfg.FunctionTimeout,
		Handler:  d.workerHandler,
	})
}

// workerPayload is the (JSON) invocation payload of worker functions. A
// worker derives its rank from parent id, sibling number and the branching
// factor (§III), except in the launch ablation modes which pass ids
// explicitly.
type workerPayload struct {
	Run     string `json:"run"`
	Parent  int32  `json:"parent"`  // -1 for the root
	Sibling int32  `json:"sibling"` // index among the parent's children
	// Explicit is the worker id for Centralized/TwoLevel launches
	// (-1 under Hierarchical, where the id is derived).
	Explicit int32 `json:"explicit"`
	// Leader marks a TwoLevel group leader that must invoke its group.
	Leader bool `json:"leader"`
}

// Start begins one asynchronous inference request and returns without
// driving the simulation: it stages the input, registers the run and
// spawns the client process on the shared kernel, so any number of runs —
// on this deployment or on other deployments sharing the environment — can
// be in flight inside a single Kernel.Run. done is invoked in simulation
// context when the run completes (successfully or not); the returned run
// id identifies the request in errors and result objects.
//
// A Result delivered through Start carries per-run Usage/Cost
// reconstructed from the run's own worker-side ledgers via the paper's
// cost model (Equations (1)-(7), the §VI-F predictor), because the shared
// environment meter cannot attribute concurrently metered usage to one
// run. The synchronous Infer path reports exact metered usage instead.
//
// Any number of runs may overlap on the same deployment, whatever its
// channel: object keys are run-scoped, and the Queue channel partitions
// consumption by run id — each run gets its own per-worker queues,
// subscribed to the shared topics with a service-side filter on
// (target, run), so concurrent runs never consume each other's messages.
func (d *Deployment) Start(input *sparse.Dense, done func(*Result, error)) (string, error) {
	return d.StartTraced(input, 0, done)
}

// StartTraced is Start for a run the serving layer's tracer sampled:
// parent is the serving-side run span the engine's spans — worker
// lifetimes, channel sends and receives, collective phases — nest
// under. A zero parent, or a deployment without a tracing scope, behaves
// exactly like Start.
func (d *Deployment) StartTraced(input *sparse.Dense, parent obs.SpanID, done func(*Result, error)) (string, error) {
	if input.Rows != d.Cfg.Model.Spec.Neurons {
		return "", fmt.Errorf("core: input has %d rows, model expects %d", input.Rows, d.Cfg.Model.Spec.Neurons)
	}
	d.runSeq++
	run := &runState{
		id:    fmt.Sprintf("r%d", d.runSeq),
		batch: input.Cols,
		input: input,
	}
	if d.Cfg.Trace.T != nil && parent != 0 {
		run.scope = obs.Scope{T: d.Cfg.Trace.T, Track: d.Cfg.Trace.Track, Parent: parent}
	}
	if d.kvcluster != nil {
		run.baseLost = d.kvcluster.LostValues()
	}
	if d.Cfg.AllreduceOutput {
		run.outputs = make([]*sparse.Dense, d.Cfg.Workers())
	}
	d.runs[run.id] = run
	d.stageInput(run)
	d.bindRunQueues(run)

	d.Env.K.Go("client-"+run.id, func(p *sim.Proc) {
		res, err := d.clientRun(p, run)
		delete(d.runs, run.id)
		d.unbindRunQueues(run)
		d.dropRunKeyspace(run)
		done(res, err)
	})
	return run.id, nil
}

// bindRunQueues creates the run's per-worker receive queues and subscribes
// each to every topic with a service-side filter on (target, run). Queue
// creation and subscription are free control-plane operations, like the
// paper's a-priori resource provisioning; scoping them per run is what
// lets Queue-channel runs overlap on one deployment.
func (d *Deployment) bindRunQueues(run *runState) {
	if d.Cfg.Channel != Queue {
		return
	}
	p := d.Cfg.Workers()
	run.queues = make([]*sqs.Queue, p)
	for m := 0; m < p; m++ {
		q := d.Env.SQS.CreateQueue(fmt.Sprintf("%s-%s-q-%d", d.prefix, run.id, m))
		run.queues[m] = q
		filter := sns.FilterPolicy{
			"target": {strconv.Itoa(m)},
			"run":    {run.id},
		}
		for _, t := range d.topics {
			t.Subscribe(q, filter)
		}
	}
}

// unbindRunQueues tears the run's queues down once the run completes, so a
// long-lived deployment does not accumulate dead subscriptions.
func (d *Deployment) unbindRunQueues(run *runState) {
	for _, q := range run.queues {
		for _, t := range d.topics {
			t.Unsubscribe(q)
		}
		d.Env.SQS.DeleteQueue(q.Name())
	}
	run.queues = nil
}

// dropRunKeyspace tears down a Memory-channel run's key prefix on every
// cluster node — all shards, primaries and replicas (free control-plane
// operation, like queue teardown). Keys of a run that never completes
// expire via their TTL instead.
func (d *Deployment) dropRunKeyspace(run *runState) {
	if d.kvcluster != nil {
		d.kvcluster.DropPrefix(run.id + "/")
	}
}

// KVCluster returns the Memory-channel deployment's provisioned store
// cluster (nil for other channels) — the handle fault-injection
// experiments use to kill or partition shards mid-run.
func (d *Deployment) KVCluster() *kvcluster.Cluster { return d.kvcluster }

// Decommission releases the deployment's provisioned resources that bill
// while idle — the Memory channel's cache nodes, which accrue node-hours
// until released. Topics, queues and buckets are free to keep, so only
// provisioned capacity needs this. Callers reclaiming a deployment (a
// replica pool scaling down or swapping configurations) must invoke it
// once in-flight runs have drained; the deployment must not start new
// runs afterwards.
func (d *Deployment) Decommission() {
	if d.kvcluster != nil {
		d.kvcluster.Release()
		d.kvcluster = nil
	}
}

// clientRun is the client-side body of one request: invoke the serial
// function or the coordinator, wait for the result and assemble the
// Result with ledger-reconstructed usage.
func (d *Deployment) clientRun(p *sim.Proc, run *runState) (*Result, error) {
	start := p.Now()
	wrap := func(err error) error { return fmt.Errorf("core: run %s: %w", run.id, err) }
	wait := func() error {
		if d.Cfg.Channel == Serial {
			fut, err := d.Env.FaaS.Invoke(p, d.fnSerial, mustJSON(workerPayload{Run: run.id}))
			if err != nil {
				return err
			}
			_, err = fut.Wait(p)
			return err
		}
		fut, err := d.Env.FaaS.Invoke(p, d.fnCoordinator, mustJSON(workerPayload{Run: run.id}))
		if err != nil {
			return err
		}
		if _, err := fut.Wait(p); err != nil {
			return err
		}
		// The coordinator returns once the tree is seeded; the result
		// is ready when the root worker finishes.
		if run.rootFut == nil {
			return fmt.Errorf("core: coordinator did not seed the worker tree")
		}
		_, err = run.rootFut.Wait(p)
		return err
	}
	if err := wait(); err != nil {
		return nil, wrap(err)
	}
	end := p.Now()
	if len(run.workerErrs) > 0 {
		return nil, fmt.Errorf("core: run %s: worker error: %w", run.id, run.workerErrs[0])
	}
	if run.output == nil {
		return nil, fmt.Errorf("core: run %s produced no output", run.id)
	}

	run.start, run.end = start, end
	// Accrue provisioned-capacity billing up to the run's end, so meter
	// snapshots taken right after the kernel drains include it.
	d.Env.KV.Settle()
	used := d.runUsage(run)
	res := &Result{
		RunID:              run.id,
		Output:             run.output,
		AllOutputs:         run.outputs,
		Latency:            end - start,
		CoordinatorRuntime: run.coordRuntime,
		Batch:              run.batch,
		Workers:            run.metrics,
		Usage:              used,
		Cost:               used.Cost(d.Env.Pricing),
	}
	if run.lastStart > 0 {
		res.LaunchComplete = run.lastStart - start
	}
	return res, nil
}

// Infer runs one inference request over the deployment and returns its
// result. The input is an N x batch activation matrix. Requests run
// sequentially on the deployment's environment; latencies and costs are
// reported in virtual time and metered dollars. Infer is the synchronous
// compatibility path over Start: it owns the kernel until the run drains,
// and replaces the reconstructed usage with the exact metered window.
func (d *Deployment) Infer(input *sparse.Dense) (*Result, error) {
	snap := d.Env.Meter.Snapshot()
	var res *Result
	var runErr error
	id, err := d.Start(input, func(r *Result, e error) { res, runErr = r, e })
	if err != nil {
		return nil, err
	}
	if err := d.Env.K.Run(); err != nil {
		return nil, fmt.Errorf("core: run %s: %w", id, err)
	}
	if runErr != nil {
		return nil, runErr
	}
	used := d.Env.Meter.Sub(snap)
	res.Usage = used
	res.Cost = used.Cost(d.Env.Pricing)
	return res, nil
}

// stageInput writes the request's input rows into the model store: the full
// matrix for serial, per-worker row blocks otherwise. Requests are assumed
// buffered and batched upstream (paper §V-B2), so staging is unbilled. The
// encode work is memoised by input-matrix identity (see inputEncMemo); the
// store keys stay run-scoped.
func (d *Deployment) stageInput(run *runState) {
	blobs := d.encodedInput(run.input, run.batch)
	if d.Cfg.Channel == Serial {
		d.putStore(fmt.Sprintf("input/%s/full.x", run.id), blobs[0])
		return
	}
	for worker, p := range blobs {
		d.putStore(fmt.Sprintf("input/%s/w%d.x", run.id, worker), p)
	}
}

// coordinatorHandler parses the request and seeds the worker tree
// (lightweight, 128 MB, §VI-A1).
func (d *Deployment) coordinatorHandler(ctx *faas.Ctx, payload []byte) ([]byte, error) {
	var req workerPayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("core: coordinator payload: %w", err)
	}
	run := d.runs[req.Run]
	if run == nil {
		return nil, fmt.Errorf("core: coordinator invoked for unknown run %q", req.Run)
	}
	switch d.Cfg.Launch {
	case Hierarchical:
		fut, err := ctx.InvokeAsync(d.fnWorker, mustJSON(workerPayload{
			Run: req.Run, Parent: -1, Sibling: 0, Explicit: -1,
		}))
		if err != nil {
			return nil, err
		}
		run.rootFut = fut
	case Centralized:
		for m := 0; m < d.Cfg.Workers(); m++ {
			fut, err := ctx.InvokeAsync(d.fnWorker, mustJSON(workerPayload{
				Run: req.Run, Parent: -1, Explicit: int32(m),
			}))
			if err != nil {
				return nil, err
			}
			if m == 0 {
				run.rootFut = fut
			}
		}
	case TwoLevel:
		g := groupSize(d.Cfg.Workers())
		for lead := 0; lead < d.Cfg.Workers(); lead += g {
			fut, err := ctx.InvokeAsync(d.fnWorker, mustJSON(workerPayload{
				Run: req.Run, Parent: -1, Explicit: int32(lead), Leader: true,
			}))
			if err != nil {
				return nil, err
			}
			if lead == 0 {
				run.rootFut = fut
			}
		}
	}
	run.coordRuntime = ctx.Elapsed()
	return []byte(`{"ok":true}`), nil
}

// groupSize returns the TwoLevel group size (~sqrt of the worker count).
func groupSize(p int) int {
	g := 1
	for g*g < p {
		g++
	}
	return g
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
