package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/cloud/faas"
	"fsdinference/internal/cloud/s3"
	"fsdinference/internal/cloud/sns"
	"fsdinference/internal/cloud/sqs"
	"fsdinference/internal/model"
	"fsdinference/internal/sim"
	"fsdinference/internal/sparse"
	"fsdinference/internal/wire"
)

// Deployment is a deployed FSD-Inference application: pre-created
// communication resources (topics, queues, buckets — free to keep, as the
// paper notes), a staged model store, and registered functions. A
// deployment serves any number of sequential inference requests.
type Deployment struct {
	Env *env.Env
	Cfg Config

	topics  []*sns.Topic
	queues  []*sqs.Queue
	buckets []*s3.Bucket
	store   *s3.Bucket

	fnWorker      string
	fnCoordinator string
	fnSerial      string

	runSeq int
	run    *runState
}

// runState is the per-request bookkeeping shared (host-side) between the
// client, coordinator and workers of one run.
type runState struct {
	id    string
	batch int
	input *sparse.Dense

	rootFut      *faas.Future
	metrics      []*WorkerMetrics
	started      []time.Duration
	lastStart    time.Duration
	coordRuntime time.Duration
	output       *sparse.Dense
	workerErrs   []error
}

var deploySeq int

// Deploy validates the configuration, stages the partitioned model into the
// object store and creates all communication resources and functions.
// Staging happens offline (host-side) and is not billed, matching the
// paper's a-priori partitioning and resource pre-creation.
func Deploy(e *env.Env, cfg Config) (*Deployment, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	deploySeq++
	prefix := fmt.Sprintf("fsd%d", deploySeq)
	d := &Deployment{
		Env:           e,
		Cfg:           cfg,
		fnWorker:      prefix + "-worker",
		fnCoordinator: prefix + "-coordinator",
		fnSerial:      prefix + "-serial",
	}
	d.store = e.S3.CreateBucket(prefix + "-store")
	if cfg.StoreBandwidthScale > 0 && cfg.StoreBandwidthScale != 1 {
		d.store.GetBandwidth = e.S3.Config().GetBytesPerSec * cfg.StoreBandwidthScale
		d.store.PutBandwidth = e.S3.Config().PutBytesPerSec * cfg.StoreBandwidthScale
	}
	d.stageModel()

	if cfg.Channel == Queue {
		p := cfg.Workers()
		d.queues = make([]*sqs.Queue, p)
		for m := 0; m < p; m++ {
			d.queues[m] = e.SQS.CreateQueue(fmt.Sprintf("%s-q-%d", prefix, m))
		}
		d.topics = make([]*sns.Topic, cfg.Topics)
		for t := 0; t < cfg.Topics; t++ {
			d.topics[t] = e.SNS.CreateTopic(fmt.Sprintf("%s-topic-%d", prefix, t))
			// Every worker's queue subscribes to every topic with a
			// service-side filter on its own id, so distribution is
			// offloaded to the pub-sub service (§III-A).
			for m := 0; m < p; m++ {
				d.topics[t].Subscribe(d.queues[m], sns.FilterPolicy{
					"target": {strconv.Itoa(m)},
				})
			}
		}
	}
	if cfg.Channel == Object {
		d.buckets = make([]*s3.Bucket, cfg.Buckets)
		for b := 0; b < cfg.Buckets; b++ {
			d.buckets[b] = e.S3.CreateBucket(fmt.Sprintf("%s-bucket-%d", prefix, b))
		}
	}

	if err := d.registerFunctions(); err != nil {
		return nil, err
	}
	return d, nil
}

// stageModel writes per-worker weight row blocks (or the whole model for
// serial) into the model store.
func (d *Deployment) stageModel() {
	m := d.Cfg.Model
	if d.Cfg.Channel == Serial {
		for k, w := range m.Layers {
			d.putStore(fmt.Sprintf("model/full/layer-%d.w", k), model.EncodeCSR(w))
		}
		return
	}
	plan := d.Cfg.Plan
	for worker := 0; worker < plan.Workers; worker++ {
		for k, w := range m.Layers {
			blk := w.SelectRows(plan.Rows[worker])
			d.putStore(fmt.Sprintf("model/w%d/layer-%d.w", worker, k), model.EncodeCSR(blk))
		}
	}
}

// putStore writes a staging object host-side (offline, unbilled).
func (d *Deployment) putStore(key string, data []byte) {
	// Use a throwaway proc so staging costs neither time nor requests.
	snap := d.Env.Meter.Snapshot()
	d.Env.K.Go("stage", func(p *sim.Proc) {
		if err := d.store.Put(p, key, data); err != nil {
			panic(fmt.Sprintf("core: staging %s: %v", key, err))
		}
	})
	if err := d.Env.K.Run(); err != nil {
		panic(fmt.Sprintf("core: staging %s: %v", key, err))
	}
	*d.Env.Meter = snap // roll back billing and counters
}

func (d *Deployment) registerFunctions() error {
	cfg := d.Cfg
	if cfg.Channel == Serial {
		return d.Env.FaaS.Register(faas.FunctionConfig{
			Name:     d.fnSerial,
			MemoryMB: cfg.SerialMemoryMB,
			Timeout:  cfg.FunctionTimeout,
			Handler:  d.serialHandler,
		})
	}
	if err := d.Env.FaaS.Register(faas.FunctionConfig{
		Name:     d.fnCoordinator,
		MemoryMB: cfg.CoordinatorMemoryMB,
		Timeout:  cfg.FunctionTimeout,
		Handler:  d.coordinatorHandler,
	}); err != nil {
		return err
	}
	return d.Env.FaaS.Register(faas.FunctionConfig{
		Name:     d.fnWorker,
		MemoryMB: cfg.WorkerMemoryMB,
		Timeout:  cfg.FunctionTimeout,
		Handler:  d.workerHandler,
	})
}

// workerPayload is the (JSON) invocation payload of worker functions. A
// worker derives its rank from parent id, sibling number and the branching
// factor (§III), except in the launch ablation modes which pass ids
// explicitly.
type workerPayload struct {
	Run     string `json:"run"`
	Parent  int32  `json:"parent"`  // -1 for the root
	Sibling int32  `json:"sibling"` // index among the parent's children
	// Explicit is the worker id for Centralized/TwoLevel launches
	// (-1 under Hierarchical, where the id is derived).
	Explicit int32 `json:"explicit"`
	// Leader marks a TwoLevel group leader that must invoke its group.
	Leader bool `json:"leader"`
}

// Infer runs one inference request over the deployment and returns its
// result. The input is an N x batch activation matrix. Requests run
// sequentially on the deployment's environment; latencies and costs are
// reported in virtual time and metered dollars.
func (d *Deployment) Infer(input *sparse.Dense) (*Result, error) {
	if input.Rows != d.Cfg.Model.Spec.Neurons {
		return nil, fmt.Errorf("core: input has %d rows, model expects %d", input.Rows, d.Cfg.Model.Spec.Neurons)
	}
	d.runSeq++
	run := &runState{
		id:    fmt.Sprintf("r%d", d.runSeq),
		batch: input.Cols,
		input: input,
	}
	d.run = run
	d.stageInput(run)

	snap := d.Env.Meter.Snapshot()
	var start, end time.Duration
	var invokeErr error

	d.Env.K.Go("client-"+run.id, func(p *sim.Proc) {
		start = p.Now()
		if d.Cfg.Channel == Serial {
			fut, err := d.Env.FaaS.Invoke(p, d.fnSerial, mustJSON(workerPayload{Run: run.id}))
			if err != nil {
				invokeErr = err
				return
			}
			if _, err := fut.Wait(p); err != nil {
				invokeErr = err
				return
			}
			end = p.Now()
			return
		}
		fut, err := d.Env.FaaS.Invoke(p, d.fnCoordinator, mustJSON(workerPayload{Run: run.id}))
		if err != nil {
			invokeErr = err
			return
		}
		if _, err := fut.Wait(p); err != nil {
			invokeErr = err
			return
		}
		// The coordinator returns once the tree is seeded; the result
		// is ready when the root worker finishes.
		if run.rootFut == nil {
			invokeErr = fmt.Errorf("core: coordinator did not seed the worker tree")
			return
		}
		if _, err := run.rootFut.Wait(p); err != nil {
			invokeErr = err
			return
		}
		end = p.Now()
	})
	if err := d.Env.K.Run(); err != nil {
		return nil, fmt.Errorf("core: run %s: %w", run.id, err)
	}
	if invokeErr != nil {
		return nil, fmt.Errorf("core: run %s: %w", run.id, invokeErr)
	}
	if len(run.workerErrs) > 0 {
		return nil, fmt.Errorf("core: run %s: worker error: %w", run.id, run.workerErrs[0])
	}
	if run.output == nil {
		return nil, fmt.Errorf("core: run %s produced no output", run.id)
	}

	used := d.Env.Meter.Sub(snap)
	res := &Result{
		RunID:              run.id,
		Output:             run.output,
		Latency:            end - start,
		CoordinatorRuntime: run.coordRuntime,
		Batch:              run.batch,
		Workers:            run.metrics,
		Usage:              used,
		Cost:               used.Cost(d.Env.Pricing),
	}
	if run.lastStart > 0 {
		res.LaunchComplete = run.lastStart - start
	}
	return res, nil
}

// stageInput writes the request's input rows into the model store: the full
// matrix for serial, per-worker row blocks otherwise. Requests are assumed
// buffered and batched upstream (paper §V-B2), so staging is unbilled.
func (d *Deployment) stageInput(run *runState) {
	if d.Cfg.Channel == Serial {
		rs := wire.NewRowSet(run.batch)
		for r := 0; r < run.input.Rows; r++ {
			rs.Add(int32(r), run.input.Row(r))
		}
		p, err := wire.Encode(rs, true)
		if err != nil {
			panic(fmt.Sprintf("core: encoding input: %v", err))
		}
		d.putStore(fmt.Sprintf("input/%s/full.x", run.id), p)
		return
	}
	plan := d.Cfg.Plan
	for worker := 0; worker < plan.Workers; worker++ {
		rs := wire.NewRowSet(run.batch)
		for _, r := range plan.Rows[worker] {
			rs.Add(r, run.input.Row(int(r)))
		}
		p, err := wire.Encode(rs, true)
		if err != nil {
			panic(fmt.Sprintf("core: encoding input: %v", err))
		}
		d.putStore(fmt.Sprintf("input/%s/w%d.x", run.id, worker), p)
	}
}

// coordinatorHandler parses the request and seeds the worker tree
// (lightweight, 128 MB, §VI-A1).
func (d *Deployment) coordinatorHandler(ctx *faas.Ctx, payload []byte) ([]byte, error) {
	var req workerPayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("core: coordinator payload: %w", err)
	}
	switch d.Cfg.Launch {
	case Hierarchical:
		fut, err := ctx.InvokeAsync(d.fnWorker, mustJSON(workerPayload{
			Run: req.Run, Parent: -1, Sibling: 0, Explicit: -1,
		}))
		if err != nil {
			return nil, err
		}
		d.run.rootFut = fut
	case Centralized:
		for m := 0; m < d.Cfg.Workers(); m++ {
			fut, err := ctx.InvokeAsync(d.fnWorker, mustJSON(workerPayload{
				Run: req.Run, Parent: -1, Explicit: int32(m),
			}))
			if err != nil {
				return nil, err
			}
			if m == 0 {
				d.run.rootFut = fut
			}
		}
	case TwoLevel:
		g := groupSize(d.Cfg.Workers())
		for lead := 0; lead < d.Cfg.Workers(); lead += g {
			fut, err := ctx.InvokeAsync(d.fnWorker, mustJSON(workerPayload{
				Run: req.Run, Parent: -1, Explicit: int32(lead), Leader: true,
			}))
			if err != nil {
				return nil, err
			}
			if lead == 0 {
				d.run.rootFut = fut
			}
		}
	}
	d.run.coordRuntime = ctx.Elapsed()
	return []byte(`{"ok":true}`), nil
}

// groupSize returns the TwoLevel group size (~sqrt of the worker count).
func groupSize(p int) int {
	g := 1
	for g*g < p {
		g++
	}
	return g
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
