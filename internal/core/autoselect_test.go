package core

import (
	"testing"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/model"
)

func autoModel(t *testing.T) *model.Model {
	t.Helper()
	m, err := model.Generate(model.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAutoSelectPicksSerialForSmallLatencyFocusedModels(t *testing.T) {
	m := autoModel(t)
	sel, err := AutoSelect(m, AutoSelectOptions{
		LatencyWeight: 1.0,
		Workers:       []int{4, 8},
		ProbeBatch:    8,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A 256-neuron model fits one instance; with comm latencies on the
	// query path, serial is fastest (paper §IV-C recommendation).
	if sel.Best.Channel != Serial {
		t.Fatalf("selected %v P=%d, want serial", sel.Best.Channel, sel.Best.Workers)
	}
	if len(sel.Trials) != 1+3*2 {
		t.Fatalf("trials = %d, want serial + 3 channels x 2 P", len(sel.Trials))
	}
	memTrials := 0
	for _, tr := range sel.Trials {
		if tr.Candidate.Channel == Memory {
			memTrials++
		}
	}
	if memTrials != 2 {
		t.Fatalf("memory-channel trials = %d, want one per worker count", memTrials)
	}
	// The returned config must deploy and run.
	d, err := Deploy(env.NewDefault(), sel.Config)
	if err != nil {
		t.Fatal(err)
	}
	input := model.GenerateInputs(256, 8, 0.2, 2)
	res, err := d.Infer(input)
	if err != nil {
		t.Fatal(err)
	}
	if !model.OutputsClose(res.Output, model.Reference(m, input), 1e-2) {
		t.Fatal("selected config produced wrong output")
	}
}

func TestAutoSelectCostPriorityAvoidsObject(t *testing.T) {
	m := autoModel(t)
	sel, err := AutoSelect(m, AutoSelectOptions{
		LatencyWeight: 0.0, // cost only
		Workers:       []int{8},
		ProbeBatch:    8,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Object storage is the most expensive candidate at this scale
	// (per-request pricing, §VI-D1); a pure cost objective must not pick
	// it.
	if sel.Best.Channel == Object {
		t.Fatalf("cost-prioritised selection picked the object channel")
	}
	// Trials carry comparable scores.
	for _, tr := range sel.Trials {
		if tr.Err == nil && tr.Score <= 0 {
			t.Fatalf("trial %+v has no score", tr.Candidate)
		}
	}
}

func TestAutoSelectSkipsInfeasibleWorkerCounts(t *testing.T) {
	m := autoModel(t)
	sel, err := AutoSelect(m, AutoSelectOptions{
		Workers:    []int{1, 300}, // both infeasible as parallel candidates
		ProbeBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Channel != Serial {
		t.Fatalf("only serial was feasible, picked %v", sel.Best.Channel)
	}
}
