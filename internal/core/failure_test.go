package core

import (
	"strings"
	"testing"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
)

// Failure-injection tests: the engine must fail loudly and cleanly when
// platform limits bite mid-run, rather than hanging or returning wrong
// results.

func TestWorkerOOMFailsRunWithRealError(t *testing.T) {
	// Workers sized far below the partition's needs die with OOM; the
	// run must surface that error (not a bare timeout, not a hang).
	m, err := model.Generate(model.GraphChallengeSpec(2048, 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildPlan(m, 2, partition.Block, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(env.NewDefault(), Config{
		Model: m, Plan: plan, Channel: Queue,
		// Each worker's row block is ~26 MB raw, ~144 MB at the modelled
		// runtime footprint: over the 128 MB instance.
		WorkerMemoryMB: 128,
		PollWait:       2 * time.Second,
		// Keep the run short: surviving workers stop at this timeout.
		FunctionTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Infer(model.GenerateInputs(2048, 4, 0.2, 2))
	if err == nil {
		t.Fatal("run with OOM-sized workers succeeded")
	}
	if !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("err = %v, want the OOM cause surfaced", err)
	}
}

func TestRuntimeLimitSurfacesAsTimeout(t *testing.T) {
	// A function timeout far below the workload's needs kills workers
	// mid-run; the request must fail rather than hang the simulation.
	m, err := model.Generate(model.GraphChallengeSpec(256, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildPlan(m, 3, partition.Block, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(env.NewDefault(), Config{
		Model: m, Plan: plan, Channel: Queue,
		FunctionTimeout: 1 * time.Second, // below launch + load + FSI
		PollWait:        2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Infer(model.GenerateInputs(256, 8, 0.2, 2))
	if err == nil {
		t.Fatal("run with impossible timeout succeeded")
	}
	if !strings.Contains(err.Error(), "timed out") && !strings.Contains(err.Error(), "out of runtime") {
		t.Fatalf("err = %v, want timeout cause", err)
	}
}

func TestDeploymentRecoversAfterFailedRun(t *testing.T) {
	// After a failed request, the same deployment must serve the next
	// request correctly (queues may hold stale messages from the dead
	// run; the run-id attribute filters them).
	m, err := model.Generate(model.GraphChallengeSpec(256, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildPlan(m, 3, partition.Block, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := env.NewDefault()
	d, err := Deploy(e, Config{
		Model: m, Plan: plan, Channel: Queue,
		FunctionTimeout: 400 * time.Millisecond, // enough to launch, not to finish FSI
		PollWait:        time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	input := model.GenerateInputs(256, 8, 0.2, 2)
	if _, err := d.Infer(input); err == nil {
		t.Fatal("expected the strangled run to fail")
	}

	// Relax the timeout and run again on the same deployment.
	d.Cfg.FunctionTimeout = 15 * time.Minute
	if err := redeployFunctions(d); err != nil {
		t.Fatal(err)
	}
	res, err := d.Infer(input)
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	want := model.Reference(m, input)
	if !model.OutputsClose(res.Output, want, 1e-2) {
		t.Fatal("recovery run produced wrong output")
	}
}

// redeployFunctions re-registers the deployment's functions with fresh
// settings under new names (FaaS registrations are immutable).
func redeployFunctions(d *Deployment) error {
	d.fnWorker += "-v2"
	d.fnCoordinator += "-v2"
	d.fnSerial += "-v2"
	return d.registerFunctions()
}
