package core

import (
	"fmt"
	"strconv"

	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/cloud/sqs"
	"fsdinference/internal/sim"
	"fsdinference/internal/wire"
)

// queueChannel implements FSD-Inf-Queue (Algorithm 1): outgoing row sets
// are chunked into size-limited byte strings, packed into publish batches
// (up to 10 messages, possibly for different targets, to maximise payload
// utilisation and minimise billed publishes), and published to the
// source-keyed topic topic-{m%T} from parallel threads. The pub-sub service
// distributes each message to the target's run-scoped queue via filter
// policies on (target, run) — consumption is partitioned by run id, so
// concurrent runs of one deployment never steal each other's messages —
// and targets long-poll their queue and delete after processing.
type queueChannel struct{}

// attrOverhead approximates the billed bytes of message attributes.
const attrOverhead = 96

func (qc *queueChannel) chunkLimit(w *worker) int {
	return w.d.Env.SNS.Config().MaxPayloadBytes - attrOverhead
}

// buildMessages encodes one target's row set into chunked messages carrying
// the paper's attributes: source worker id, total byte strings for this
// (source, target, layer), and the message layer.
func (qc *queueChannel) buildMessages(w *worker, kind string, layer int, target int32, rs *wire.RowSet) ([]sqs.Message, error) {
	if w.d.Cfg.Compress {
		w.ctx.Compress(rs.RawBytes())
	}
	chunks, err := wire.EncodeChunks(rs, qc.chunkLimit(w), w.d.Cfg.Compress)
	if err != nil {
		return nil, err
	}
	msgs := make([]sqs.Message, len(chunks))
	for i, c := range chunks {
		msgs[i] = sqs.Message{
			Body: c,
			Attributes: map[string]string{
				"run":    w.run.id,
				"kind":   kind,
				"layer":  strconv.Itoa(layer),
				"src":    strconv.Itoa(int(w.id)),
				"target": strconv.Itoa(int(target)),
				"chunks": strconv.Itoa(len(chunks)),
				"seq":    strconv.Itoa(i),
			},
		}
		w.metrics.BytesSent += int64(len(c))
		w.metrics.AttrBytes += int64(msgs[i].Size() - len(c))
	}
	w.metrics.MessagesSent += int64(len(msgs))
	return msgs, nil
}

// packBatches greedily packs messages (possibly for different targets) into
// publish batches respecting the service's entry-count and payload limits —
// a single publish can serve up to 10 targets at once (§IV-C).
func (qc *queueChannel) packBatches(w *worker, msgs []sqs.Message) [][]sqs.Message {
	cfg := w.d.Env.SNS.Config()
	var batches [][]sqs.Message
	var cur []sqs.Message
	size := 0
	for _, m := range msgs {
		sz := m.Size()
		if len(cur) > 0 && (len(cur) >= cfg.MaxBatchEntries || size+sz > cfg.MaxPayloadBytes) {
			batches = append(batches, cur)
			cur, size = nil, 0
		}
		cur = append(cur, m)
		size += sz
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// publish ships batches to this worker's source-keyed topic from the
// communication thread pool, keeping the worker-side billed-publish ledger
// used by the cost-model validation.
func (qc *queueChannel) publish(w *worker, batches [][]sqs.Message) error {
	topic := w.d.topics[int(w.id)%len(w.d.topics)]
	tasks := make([]func(p *sim.Proc) error, len(batches))
	for i, b := range batches {
		b := b
		var bytes int64
		for _, m := range b {
			bytes += int64(m.Size())
		}
		w.metrics.BilledPublishes += pricing.BilledPublishRequests(bytes)
		tasks[i] = func(p *sim.Proc) error { return topic.PublishBatch(p, b) }
	}
	w.metrics.Publishes += int64(len(batches))
	return w.threads("pub", tasks)
}

func (qc *queueChannel) send(w *worker, layer int, outs []targetRows) error {
	var msgs []sqs.Message
	for _, out := range outs {
		ms, err := qc.buildMessages(w, "data", layer, out.target, out.rs)
		if err != nil {
			return err
		}
		msgs = append(msgs, ms...)
	}
	return qc.publish(w, qc.packBatches(w, msgs))
}

func (qc *queueChannel) receive(w *worker, layer int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	return qc.collect(w, "data", layer, sources, deliver)
}

// collect runs the Algorithm 1 receive loop for any message kind: poll the
// worker's dedicated queue, deliver matching messages, buffer messages for
// future phases (a fast source may already be publishing the next layer),
// and delete processed messages. A source is complete when all its
// announced byte strings for this (kind, layer) have arrived.
func (qc *queueChannel) collect(w *worker, kind string, layer int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	queue := w.run.queues[w.id]
	key := pendKey(kind, layer)

	type progress struct {
		seen  map[int]bool
		total int
	}
	remaining := make(map[int32]*progress, len(sources))
	for _, s := range sources {
		remaining[s] = &progress{seen: make(map[int]bool), total: -1}
	}

	// process handles one byte string, deduplicating redeliveries by
	// chunk sequence number: standard queues deliver at least once, and a
	// visibility timeout elapsing mid-processing must not double-count.
	process := func(src int32, chunks, seq int, body []byte) error {
		pr, ok := remaining[src]
		if !ok || pr.seen[seq] {
			return nil // completed source or duplicate chunk
		}
		pr.seen[seq] = true
		pr.total = chunks
		rs, err := w.decodePayload(body)
		if err != nil {
			return err
		}
		if deliver != nil && rs.Len() > 0 {
			deliver(src, rs)
		}
		if len(pr.seen) >= pr.total {
			delete(remaining, src)
		}
		return nil
	}

	// Drain anything buffered by earlier phases first.
	for _, pm := range w.pending[key] {
		if err := process(pm.src, pm.chunks, pm.seq, pm.body); err != nil {
			return err
		}
	}
	delete(w.pending, key)

	for len(remaining) > 0 {
		if w.ctx.Remaining() <= 0 {
			return fmt.Errorf("core: worker %d out of runtime collecting %s/layer %d", w.id, kind, layer)
		}
		msgs := queue.Receive(w.ctx.P, 10, w.d.Cfg.PollWait)
		w.metrics.Polls++
		w.metrics.Fetches += int64(len(msgs))
		handles := make([]string, 0, len(msgs))
		for _, m := range msgs {
			handles = append(handles, m.ReceiptHandle)
			if m.Attributes["run"] != w.run.id {
				// Defensive: the (target, run) subscription filter should
				// make foreign-run messages impossible.
				continue
			}
			mkind := m.Attributes["kind"]
			mlayer, _ := strconv.Atoi(m.Attributes["layer"])
			src64, _ := strconv.Atoi(m.Attributes["src"])
			chunks, _ := strconv.Atoi(m.Attributes["chunks"])
			seq, _ := strconv.Atoi(m.Attributes["seq"])
			src := int32(src64)
			if mkind == kind && mlayer == layer {
				if err := process(src, chunks, seq, m.Body); err != nil {
					return err
				}
				continue
			}
			// Buffer for the phase that expects it.
			k := pendKey(mkind, mlayer)
			w.pending[k] = append(w.pending[k], pendingMsg{src: src, chunks: chunks, seq: seq, body: m.Body})
		}
		if len(handles) > 0 {
			if err := queue.DeleteBatch(w.ctx.P, handles); err != nil {
				return err
			}
			w.metrics.Deletes++
		}
	}
	return nil
}

func pendKey(kind string, layer int) string { return kind + ":" + strconv.Itoa(layer) }

// sendTagged ships one row set under an (op, round) tag — the collective
// algorithms' point-to-point primitive, chunked and published like any
// data-path message with kind=op, layer=round attributes.
func (qc *queueChannel) sendTagged(w *worker, op string, round int, target int32, rs *wire.RowSet) error {
	return qc.sendTaggedAll(w, op, round, []targetRows{{target: target, rs: rs}})
}

func (qc *queueChannel) sendTaggedAll(w *worker, op string, round int, outs []targetRows) error {
	var msgs []sqs.Message
	for _, out := range outs {
		ms, err := qc.buildMessages(w, op, round, out.target, out.rs)
		if err != nil {
			return err
		}
		msgs = append(msgs, ms...)
	}
	return qc.publish(w, qc.packBatches(w, msgs))
}

func (qc *queueChannel) gatherTagged(w *worker, op string, round int, sources []int32, deliver func(src int32, rs *wire.RowSet)) error {
	return qc.collect(w, op, round, sources, deliver)
}

// decodePayload decodes one received byte string, charging transfer-side
// CPU (parse plus decompression).
func (w *worker) decodePayload(body []byte) (*wire.RowSet, error) {
	w.metrics.BytesRecv += int64(len(body))
	w.ctx.Serialize(int64(len(body)))
	if w.d.Cfg.Compress {
		w.ctx.Decompress(int64(len(body)))
	}
	rs, err := wire.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("core: worker %d decoding payload: %w", w.id, err)
	}
	return rs, nil
}
