package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
)

// TestEngineMatchesReferenceProperty is the end-to-end invariant: for any
// small random configuration (model size, depth, batch, parallelism,
// channel, partitioning scheme, compression, polling mode), distributed
// inference must reproduce reference inference. This is the paper's
// ground-truth check quantified over the configuration space.
func TestEngineMatchesReferenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is heavy")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		neurons := 64 * (1 + rng.Intn(3)) // 64..192
		layers := 2 + rng.Intn(5)
		batch := 1 + rng.Intn(12)
		workers := 2 + rng.Intn(5)
		kind := []ChannelKind{Serial, Queue, Object, Memory}[rng.Intn(4)]
		scheme := []partition.Scheme{partition.Block, partition.Random, partition.HGPDNN}[rng.Intn(3)]
		spec := model.GraphChallengeSpec(neurons, layers, seed)
		spec.FanIn = 8 + rng.Intn(16)
		m, err := model.Generate(spec)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		cfg := Config{
			Model:    m,
			Channel:  kind,
			Compress: rng.Intn(2) == 0,
			PollWait: time.Duration(rng.Intn(3)) * time.Second, // includes short polling
			Threads:  1 + rng.Intn(4),
		}
		if kind != Serial {
			plan, err := partition.BuildPlan(m, workers, scheme, partition.Options{Seed: seed})
			if err != nil {
				t.Logf("seed %d: plan: %v", seed, err)
				return false
			}
			cfg.Plan = plan
		}
		d, err := Deploy(env.NewDefault(), cfg)
		if err != nil {
			t.Logf("seed %d: deploy: %v", seed, err)
			return false
		}
		input := model.GenerateInputs(neurons, batch, 0.1+rng.Float64()*0.3, seed+1)
		res, err := d.Infer(input)
		if err != nil {
			t.Logf("seed %d (%v, %v, P=%d): infer: %v", seed, kind, scheme, workers, err)
			return false
		}
		want := model.Reference(m, input)
		if !model.OutputsClose(res.Output, want, 1e-2) {
			t.Logf("seed %d (%v, %v, P=%d): output mismatch", seed, kind, scheme, workers)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
