package core

import (
	"encoding/json"
	"fmt"

	"fsdinference/internal/cloud/faas"
	"fsdinference/internal/model"
	"fsdinference/internal/sparse"
	"fsdinference/internal/wire"
)

// serialHandler is FSD-Inf-Serial (§VI-A1): Algorithm 1 with all
// communication removed, running on a single maximum-memory instance that
// loads the unpartitioned model and inference data, computes every layer
// locally and stores the result. Models too large for the instance fail
// with an out-of-memory error, exactly as the paper observes for N=65536.
func (d *Deployment) serialHandler(ctx *faas.Ctx, payload []byte) ([]byte, error) {
	var req workerPayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("core: serial payload: %w", err)
	}
	run := d.runs[req.Run]
	if run == nil {
		return nil, fmt.Errorf("core: serial worker invoked for unknown run %q", req.Run)
	}
	p := ctx.P
	wm := &WorkerMetrics{ID: 0, StartedAt: p.Now(), Warm: ctx.Warm}
	run.metrics = append(run.metrics, wm)
	run.started = append(run.started, p.Now())
	run.lastStart = p.Now()

	spec := d.Cfg.Model.Spec
	perf := ctx.Perf()

	// Load the full model.
	t0 := p.Now()
	layers := make([]*sparse.CSR, len(d.Cfg.Model.Layers))
	for k := range layers {
		blob, err := d.store.Get(p, fmt.Sprintf("model/full/layer-%d.w", k))
		if err != nil {
			return nil, fmt.Errorf("core: serial loading layer %d: %w", k, err)
		}
		wm.StoreGets++
		ctx.Serialize(int64(len(blob)))
		w, err := model.DecodeCSR(blob)
		if err != nil {
			return nil, fmt.Errorf("core: serial decoding layer %d: %w", k, err)
		}
		ctx.Alloc(int64(float64(w.Bytes()) * perf.MemOverheadWeights))
		layers[k] = w
	}
	blob, err := d.store.Get(p, fmt.Sprintf("input/%s/full.x", run.id))
	if err != nil {
		return nil, fmt.Errorf("core: serial loading input: %w", err)
	}
	wm.StoreGets++
	ctx.Serialize(int64(len(blob)))
	ctx.Decompress(int64(len(blob)))
	rs, err := wire.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("core: serial decoding input: %w", err)
	}
	x := sparse.NewDense(spec.Neurons, run.batch)
	for i := 0; i < rs.Len(); i++ {
		copy(x.Row(int(rs.IDs[i])), rs.Row(i))
	}
	xBytes := int64(float64(x.Bytes()) * perf.MemOverheadData)
	ctx.Alloc(xBytes)
	wm.LoadTime = p.Now() - t0

	// Layer loop: z = Wx, activation, repeat.
	for _, w := range layers {
		z, macs := sparse.Mul(w, x)
		ctx.Alloc(xBytes)
		ctx.Compute(float64(macs))
		wm.MACs += float64(macs)
		ops := sparse.ReLUBiasClamp(z, spec.Bias, spec.Clamp)
		ctx.ComputeElem(float64(ops))
		ctx.Free(xBytes)
		x = z
	}

	// Store the result.
	enc, err := wire.Encode(denseToRowSet(x), d.Cfg.Compress)
	if err != nil {
		return nil, fmt.Errorf("core: serial encoding result: %w", err)
	}
	ctx.Serialize(int64(len(enc)))
	if err := d.store.Put(p, fmt.Sprintf("result/%s.out", run.id), enc); err != nil {
		return nil, fmt.Errorf("core: serial storing result: %w", err)
	}
	wm.StorePuts++
	run.output = x
	wm.FinishedAt = p.Now()
	wm.PeakMemBytes = ctx.PeakMem()
	return []byte(`{"ok":true}`), nil
}
