package core

import (
	"encoding/json"
	"fmt"

	"fsdinference/internal/cloud/faas"
)

// serialHandler is FSD-Inf-Serial (§VI-A1): Algorithm 1 with all
// communication removed, running on a single maximum-memory instance that
// loads the unpartitioned model and inference data, computes every layer
// locally and stores the result. Models too large for the instance fail
// with an out-of-memory error, exactly as the paper observes for N=65536.
func (d *Deployment) serialHandler(ctx *faas.Ctx, payload []byte) ([]byte, error) {
	var req workerPayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("core: serial payload: %w", err)
	}
	run := d.runs[req.Run]
	if run == nil {
		return nil, fmt.Errorf("core: serial worker invoked for unknown run %q", req.Run)
	}
	p := ctx.P
	wm := &WorkerMetrics{ID: 0, StartedAt: p.Now(), Warm: ctx.Warm}
	run.metrics = append(run.metrics, wm)
	run.started = append(run.started, p.Now())
	run.lastStart = p.Now()

	spec := d.Cfg.Model.Spec
	perf := ctx.Perf()

	// Load the full model.
	t0 := p.Now()
	for k := range d.Cfg.Model.Layers {
		key := fmt.Sprintf("model/full/layer-%d.w", k)
		blob, err := d.store.Get(p, key)
		if err != nil {
			return nil, fmt.Errorf("core: serial loading layer %d: %w", k, err)
		}
		wm.StoreGets++
		ctx.Serialize(int64(len(blob)))
		w, err := d.stagedBlock(key, blob)
		if err != nil {
			return nil, fmt.Errorf("core: serial decoding layer %d: %w", k, err)
		}
		ctx.Alloc(int64(float64(w.Bytes()) * perf.MemOverheadWeights))
	}
	blob, err := d.store.Get(p, fmt.Sprintf("input/%s/full.x", run.id))
	if err != nil {
		return nil, fmt.Errorf("core: serial loading input: %w", err)
	}
	wm.StoreGets++
	ctx.Serialize(int64(len(blob)))
	ctx.Decompress(int64(len(blob)))
	// The fetched blob is this process's own encoding of run.input (the
	// transfer and decompression above are still charged on its real
	// length), so the numeric layer loop works from the host-side original
	// instead of re-decoding the bytes.
	xBytes := int64(float64(int64(spec.Neurons*run.batch)*4) * perf.MemOverheadData)
	ctx.Alloc(xBytes)
	wm.LoadTime = p.Now() - t0

	// Layer loop: z = Wx, activation, repeat. The numeric result is pure
	// in (model, input) and memoised across runs; the simulated side —
	// per-layer compute, element ops, allocation high-water — is charged
	// identically on hit and miss.
	res, err := d.serialCompute(run.input)
	if err != nil {
		return nil, fmt.Errorf("core: serial encoding result: %w", err)
	}
	for k := range res.layerMACs {
		ctx.Alloc(xBytes)
		ctx.Compute(float64(res.layerMACs[k]))
		wm.MACs += float64(res.layerMACs[k])
		ctx.ComputeElem(float64(res.layerOps[k]))
		ctx.Free(xBytes)
	}

	// Store the result.
	ctx.Serialize(int64(len(res.encoded)))
	if err := d.store.Put(p, fmt.Sprintf("result/%s.out", run.id), res.encoded); err != nil {
		return nil, fmt.Errorf("core: serial storing result: %w", err)
	}
	wm.StorePuts++
	run.output = res.output
	wm.FinishedAt = p.Now()
	wm.PeakMemBytes = ctx.PeakMem()
	return []byte(`{"ok":true}`), nil
}
