package core

import (
	"fmt"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
	"fsdinference/internal/sparse"
)

// The paper closes §VI-D1 with: "these findings (with our cost model) could
// enable automatic runtime selection of the optimal configuration for
// specific workloads, given latency and cost priorities". AutoSelect
// implements that extension: it trials candidate configurations on a
// scratch simulated environment with a representative probe batch and picks
// the configuration minimising a weighted latency/cost objective.

// Candidate is one configuration considered by AutoSelect.
type Candidate struct {
	Channel ChannelKind
	Workers int // 1 for serial
}

// Selection reports the chosen configuration and the trial measurements.
type Selection struct {
	Best   Candidate
	Config Config
	// Trials lists every candidate's measured probe latency and cost.
	Trials []Trial
}

// Trial is one candidate's probe measurement.
type Trial struct {
	Candidate Candidate
	Latency   time.Duration
	Cost      float64
	Score     float64
	Err       error
}

// AutoSelectOptions tunes the selection.
type AutoSelectOptions struct {
	// LatencyWeight in [0,1]: 1 optimises latency only, 0 cost only.
	LatencyWeight float64
	// Workers lists parallelism levels to trial (default 8, 20, 42, 62).
	Workers []int
	// ProbeBatch is the probe request size (default 32).
	ProbeBatch int
	// Scheme is the partitioning used for parallel candidates
	// (default HGPDNN).
	Scheme partition.Scheme
	// Seed drives probe generation.
	Seed int64
}

func (o AutoSelectOptions) withDefaults() AutoSelectOptions {
	if o.LatencyWeight < 0 {
		o.LatencyWeight = 0
	}
	if o.LatencyWeight > 1 {
		o.LatencyWeight = 1
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{8, 20, 42, 62}
	}
	if o.ProbeBatch <= 0 {
		o.ProbeBatch = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// AutoSelect trials serial execution (when the model fits a single
// instance) plus queue, object and provisioned-memory channels across the
// worker grid, and returns the candidate minimising
//
//	LatencyWeight·(latency/minLatency) + (1-LatencyWeight)·(cost/minCost).
//
// Trials run on fresh scratch environments; the returned Config is ready to
// Deploy on the caller's environment.
func AutoSelect(m *model.Model, opts AutoSelectOptions) (*Selection, error) {
	opts = opts.withDefaults()
	probe := model.GenerateInputs(m.Spec.Neurons, opts.ProbeBatch, 0.2, opts.Seed)

	var cands []Candidate
	perf := env.DefaultConfig().FaaS.Perf
	if float64(m.WeightBytes())*perf.MemOverheadWeights <= 10240*float64(1<<20) {
		cands = append(cands, Candidate{Channel: Serial, Workers: 1})
	}
	for _, p := range opts.Workers {
		if p < 2 || p > m.Spec.Neurons {
			continue
		}
		cands = append(cands,
			Candidate{Channel: Queue, Workers: p},
			Candidate{Channel: Object, Workers: p},
			Candidate{Channel: Memory, Workers: p})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: no feasible candidates for N=%d", m.Spec.Neurons)
	}

	sel := &Selection{}
	plans := make(map[int]*partition.Plan)
	for _, c := range cands {
		tr := Trial{Candidate: c}
		res, err := trialRun(m, c, plans, probe, opts)
		if err != nil {
			tr.Err = err
		} else {
			tr.Latency = res.Latency
			tr.Cost = res.Cost.Total()
		}
		sel.Trials = append(sel.Trials, tr)
	}

	minLat, minCost := time.Duration(0), 0.0
	for _, tr := range sel.Trials {
		if tr.Err != nil {
			continue
		}
		if minLat == 0 || tr.Latency < minLat {
			minLat = tr.Latency
		}
		if minCost == 0 || tr.Cost < minCost {
			minCost = tr.Cost
		}
	}
	if minLat == 0 {
		return nil, fmt.Errorf("core: every candidate failed; first error: %w", sel.Trials[0].Err)
	}
	bestIdx := -1
	for i := range sel.Trials {
		tr := &sel.Trials[i]
		if tr.Err != nil {
			continue
		}
		tr.Score = opts.LatencyWeight*float64(tr.Latency)/float64(minLat) +
			(1-opts.LatencyWeight)*tr.Cost/minCost
		if bestIdx < 0 || tr.Score < sel.Trials[bestIdx].Score {
			bestIdx = i
		}
	}
	sel.Best = sel.Trials[bestIdx].Candidate
	sel.Config = Config{Model: m, Channel: sel.Best.Channel, PollWait: 2 * time.Second}
	if sel.Best.Channel != Serial {
		sel.Config.Plan = plans[sel.Best.Workers]
	}
	return sel, nil
}

func trialRun(m *model.Model, c Candidate, plans map[int]*partition.Plan, probe *sparse.Dense, opts AutoSelectOptions) (*Result, error) {
	cfg := Config{Model: m, Channel: c.Channel, PollWait: 2 * time.Second}
	if c.Channel != Serial {
		plan, ok := plans[c.Workers]
		if !ok {
			var err error
			plan, err = partition.BuildPlan(m, c.Workers, opts.Scheme, partition.Options{Seed: opts.Seed})
			if err != nil {
				return nil, err
			}
			plans[c.Workers] = plan
		}
		cfg.Plan = plan
	}
	d, err := Deploy(env.NewDefault(), cfg)
	if err != nil {
		return nil, err
	}
	return d.Infer(probe)
}
