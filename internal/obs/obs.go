// Package obs is the simulated-time observability layer: a span tracer
// and a metrics registry that record where virtual time goes during a
// replay — request queueing and coalescing, run execution, worker
// phases, channel sends and receives, collective operations, store
// failovers — without perturbing the simulation they observe.
//
// Two invariants define the package:
//
// Determinism. Spans are stamped from the simulation clock, never the
// wall clock, and sampling is a pure function of the request's position
// in the workload trace (1-in-N by trace index). The Chrome exporter
// emits no allocation-order identifiers and canonically orders events by
// (timestamp, rendered bytes), so replaying the same trace at the same
// seed and sampling rate produces byte-identical trace files whether the
// replay ran on one shared kernel, sharded across concurrent lanes, or
// streamed just-in-time.
//
// Near-zero overhead when off. A nil *Tracer is a valid tracer: every
// method is nil-receiver safe and the zero SpanRef no-ops all
// operations, so an uninstrumented hot path pays one pointer comparison
// per hook and nothing else — no allocation, no map lookup, no clock
// read. When tracing is on, spans live in a free-list arena so steady
// state allocates only when the set of concurrently open spans grows.
package obs

import "time"

// Kind classifies a span for exporters: it selects the Chrome trace
// category and whether the span renders as an async request-scoped pair
// or a duration slice on its track.
type Kind uint8

const (
	// KindRequest is a request's whole lifetime, submit to completion.
	KindRequest Kind = iota
	// KindPhase is one serving-side stage of a request: coalesce, queue.
	KindPhase
	// KindRun is one coalesced batch executing on a replica.
	KindRun
	// KindWorker is one worker's lifetime within a run.
	KindWorker
	// KindOp is an engine-internal phase on a worker: load, layer,
	// send, recv, barrier, allreduce, gather.
	KindOp
	// KindFault is an injected-fault window: store failover, partition.
	KindFault
	// KindEvent is an instant: a MOVED redirect, a replan.
	KindEvent
)

func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindPhase:
		return "phase"
	case KindRun:
		return "run"
	case KindWorker:
		return "worker"
	case KindOp:
		return "op"
	case KindFault:
		return "fault"
	case KindEvent:
		return "event"
	}
	return "?"
}

// Attr is one key/value annotation on a span. Values are strings so the
// exporter never has to guess at formatting.
type Attr struct {
	Key, Val string
}

// SpanID identifies a live span within one tracer. IDs are allocation
// ordered and therefore NOT stable across replay modes — they exist to
// link child spans to parents while both are open, and exporters must
// not emit them.
type SpanID uint64

// Span is one finished (or open) interval of simulated time.
type Span struct {
	ID     SpanID
	Parent SpanID
	// Track names the timeline the span belongs to — a replica
	// ("ep/r1"), a worker ("ep/r1/w0"), a KV shard ("ep/r1/kv/s0").
	// Tracks are logical names chosen by the instrumentation, stable
	// across replay modes.
	Track string
	Name  string
	// AID is the async-correlation id for request- and run-scoped
	// spans ("q17", "ep/r1/r3"); empty for plain duration spans.
	AID   string
	Kind  Kind
	Start time.Duration
	End   time.Duration
	Attrs []Attr
}

// Tracer records spans against a simulated clock. It is single-threaded
// by design — each kernel (lane) owns its own tracer, and lane tracers
// are folded together with Merge after their kernels stop.
type Tracer struct {
	clock  func() time.Duration
	every  int
	nextID SpanID

	done   []Span  // finished spans, in End order
	active []Span  // open-span arena, indexed by SpanRef.slot
	free   []int32 // recycled arena slots
}

// New builds a tracer reading simulated time from clock and sampling one
// in every requests (every <= 1 samples all).
func New(clock func() time.Duration, every int) *Tracer {
	return &Tracer{clock: clock, every: every}
}

// Sample reports whether the request at trace index idx is traced. It is
// a pure function of idx and the sampling rate, so every replay mode
// selects the same requests.
func (t *Tracer) Sample(idx int) bool {
	if t == nil || idx < 0 {
		return false
	}
	if t.every <= 1 {
		return true
	}
	return idx%t.every == 0
}

// Start opens a span on track at the current simulated time. A nil
// tracer returns the zero SpanRef, on which every operation no-ops.
func (t *Tracer) Start(track, name string, kind Kind, parent SpanID) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.nextID++
	var slot int32
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		slot = int32(len(t.active))
		t.active = append(t.active, Span{})
	}
	sp := &t.active[slot]
	*sp = Span{ID: t.nextID, Parent: parent, Track: track, Name: name, Kind: kind, Start: t.clock()}
	return SpanRef{t: t, slot: slot, id: t.nextID}
}

// Event records an instant (zero-duration span) on track.
func (t *Tracer) Event(track, name string, kind Kind) {
	if t == nil {
		return
	}
	t.nextID++
	now := t.clock()
	t.done = append(t.done, Span{ID: t.nextID, Track: track, Name: name, Kind: kind, Start: now, End: now})
}

// Merge appends another tracer's finished spans, folding a lane's trace
// into the parent service's. The exporter's canonical ordering makes the
// final output independent of merge order.
func (t *Tracer) Merge(o *Tracer) {
	if t == nil || o == nil {
		return
	}
	t.done = append(t.done, o.done...)
}

// Spans returns the finished spans recorded so far, in End order. Spans
// still open (never ended — e.g. a worker that died mid-run) are not
// included.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.done
}

// SpanRef is a handle on an open span. The zero SpanRef is valid and
// inert: every method checks one pointer and returns, which is what
// makes call sites free when tracing is off or the request unsampled.
type SpanRef struct {
	t    *Tracer
	slot int32
	id   SpanID
}

// Active reports whether the ref points at a live span.
func (r SpanRef) Active() bool {
	return r.t != nil && r.t.active[r.slot].ID == r.id
}

// ID returns the span's id for parenting, or 0 for the zero ref.
func (r SpanRef) ID() SpanID {
	if r.t == nil {
		return 0
	}
	return r.id
}

// SetAttr annotates the span. No-op on the zero ref or after End.
func (r SpanRef) SetAttr(key, val string) {
	if r.t == nil {
		return
	}
	sp := &r.t.active[r.slot]
	if sp.ID != r.id {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Val: val})
}

// SetAsync tags the span with a mode-stable async-correlation id; the
// Chrome exporter keys request and run pairs on it instead of span IDs.
func (r SpanRef) SetAsync(aid string) {
	if r.t == nil {
		return
	}
	sp := &r.t.active[r.slot]
	if sp.ID != r.id {
		return
	}
	sp.AID = aid
}

// Child opens a sub-span on the same track, inheriting the parent's
// async id so phases render inside the request's async envelope. Returns
// the zero ref if the receiver is inert.
func (r SpanRef) Child(name string, kind Kind) SpanRef {
	if r.t == nil {
		return SpanRef{}
	}
	parent := &r.t.active[r.slot]
	if parent.ID != r.id {
		return SpanRef{}
	}
	track, aid := parent.Track, parent.AID
	child := r.t.Start(track, name, kind, r.id)
	if aid != "" {
		child.SetAsync(aid)
	}
	return child
}

// End closes the span at the current simulated time and moves it to the
// finished list, returning its arena slot to the free list. Idempotent:
// a second End (or an End racing a recycled slot) is a no-op.
func (r SpanRef) End() {
	if r.t == nil {
		return
	}
	t := r.t
	sp := &t.active[r.slot]
	if sp.ID != r.id {
		return
	}
	sp.End = t.clock()
	t.done = append(t.done, *sp)
	// The finished copy owns the attrs; clearing the slot's ID retires
	// the ref and nil Attrs prevents the next occupant appending into
	// the copied slice.
	sp.ID = 0
	sp.Attrs = nil
	t.free = append(t.free, r.slot)
}

// Scope carries a tracer plus the track and parent span a subsystem
// should emit under. The zero Scope disables tracing: engine hooks guard
// on T == nil and pay a single comparison. The serving layer stamps a
// per-replica Scope into each deployment's config; the deployment
// narrows it per run and per worker.
type Scope struct {
	T      *Tracer
	Track  string
	Parent SpanID
}

// Sub returns the scope narrowed to a child track ("kv" under "ep/r1"
// gives "ep/r1/kv"). The zero scope stays zero.
func (s Scope) Sub(name string) Scope {
	if s.T == nil {
		return Scope{}
	}
	return Scope{T: s.T, Track: s.Track + "/" + name, Parent: s.Parent}
}

// Event records an instant on the scope's track; no-op for the zero
// scope.
func (s Scope) Event(name string, kind Kind) {
	if s.T == nil {
		return
	}
	s.T.Event(s.Track, name, kind)
}
