package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Inc adds one. Nil-safe so uninstrumented paths cost one comparison.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct{ v float64 }

// Set records the current value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Registry holds named, labelled instruments. Like the tracer it is
// single-threaded: each lane owns a registry and lanes merge after their
// kernels stop. Instrument lookups are map hits, so hot paths should
// resolve their instruments once at build time and hold the pointers.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// instrumentKey renders "name{k=v,k=v}" from alternating label key/value
// pairs, preserving caller order so the same call site always produces
// the same key.
func instrumentKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter with the given name
// and alternating label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := instrumentKey(name, labels)
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name and
// labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := instrumentKey(name, labels)
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the given
// name and labels.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := instrumentKey(name, labels)
	h := r.hists[k]
	if h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// Merge folds another registry into this one: counters and histograms
// add, gauges keep the maximum (the only cross-lane reduction that makes
// sense for instantaneous depths).
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	for k, c := range o.counters {
		r.Counter(k).Add(c.v)
	}
	for k, h := range o.hists {
		r.Histogram(k).Merge(h)
	}
	for k, g := range o.gauges {
		if rg := r.Gauge(k); g.v > rg.v {
			rg.v = g.v
		}
	}
}

// Metric is one snapshotted instrument.
type Metric struct {
	Key  string // "name{label=value,...}"
	Type string // "counter", "gauge", "histogram"

	Count int64   // counter value or histogram count
	Value float64 // gauge value

	// Histogram percentiles (bucket upper bounds, max-clamped).
	P50, P95, P99 time.Duration
	Mean          time.Duration
}

// Snapshot returns every instrument sorted by key. It can be taken
// mid-replay (between kernel events) for time-series windows; it copies
// values, so later updates don't retroactively change a window.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, c := range r.counters {
		out = append(out, Metric{Key: k, Type: "counter", Count: c.v})
	}
	for k, g := range r.gauges {
		out = append(out, Metric{Key: k, Type: "gauge", Value: g.v})
	}
	for k, h := range r.hists {
		m := Metric{Key: k, Type: "histogram", Count: int64(h.count)}
		if h.count > 0 {
			m.Mean = h.sum / time.Duration(h.count)
			m.P50, m.P95, m.P99 = h.Quantile(50), h.Quantile(95), h.Quantile(99)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// WriteText renders the snapshot as aligned plain text, one instrument
// per line.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		var err error
		switch m.Type {
		case "counter":
			_, err = fmt.Fprintf(w, "%-56s %12d\n", m.Key, m.Count)
		case "gauge":
			_, err = fmt.Fprintf(w, "%-56s %12g\n", m.Key, m.Value)
		default:
			_, err = fmt.Fprintf(w, "%-56s %12d  mean %-10v p50 %-10v p95 %-10v p99 %v\n",
				m.Key, m.Count, m.Mean, m.P50, m.P95, m.P99)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
