package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

// manualClock returns a clock function plus a setter, so tests control
// simulated time exactly.
func manualClock() (func() time.Duration, func(time.Duration)) {
	var now time.Duration
	return func() time.Duration { return now }, func(d time.Duration) { now = d }
}

// TestNilTracerSafe is the zero-overhead contract: a nil tracer and the
// zero SpanRef/Scope must no-op every operation without panicking.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Sample(0) {
		t.Error("nil tracer samples")
	}
	ref := tr.Start("tk", "s", KindOp, 0)
	if ref.Active() {
		t.Error("zero ref active")
	}
	if ref.ID() != 0 {
		t.Error("zero ref has id")
	}
	ref.SetAttr("k", "v")
	ref.SetAsync("a")
	if c := ref.Child("c", KindOp); c.Active() {
		t.Error("child of zero ref active")
	}
	ref.End()
	ref.End()
	tr.Event("tk", "e", KindEvent)
	tr.Merge(nil)
	tr.Merge(New(func() time.Duration { return 0 }, 1))
	if tr.Spans() != nil {
		t.Error("nil tracer has spans")
	}

	var sc Scope
	if sub := sc.Sub("kv"); sub.T != nil || sub.Track != "" {
		t.Errorf("zero scope Sub not zero: %+v", sub)
	}
	sc.Event("e", KindEvent)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer chrome output invalid JSON: %v", err)
	}
	buf.Reset()
	if err := tr.WriteFlame(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "span") {
		t.Errorf("flame header missing: %q", buf.String())
	}
}

// TestSpanLifecycle checks timestamps, parenting, attrs and async-id
// inheritance through one request-shaped span tree.
func TestSpanLifecycle(t *testing.T) {
	clock, set := manualClock()
	tr := New(clock, 1)

	set(10 * time.Millisecond)
	req := tr.Start("ep", "request", KindRequest, 0)
	req.SetAsync("q0")
	req.SetAttr("samples", "8")
	if !req.Active() {
		t.Fatal("fresh span not active")
	}

	set(12 * time.Millisecond)
	phase := req.Child("queue", KindPhase)
	if !phase.Active() {
		t.Fatal("child not active")
	}
	set(15 * time.Millisecond)
	phase.End()
	set(20 * time.Millisecond)
	req.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// End order: phase first.
	ph, rq := spans[0], spans[1]
	if ph.Name != "queue" || ph.Start != 12*time.Millisecond || ph.End != 15*time.Millisecond {
		t.Errorf("phase span wrong: %+v", ph)
	}
	if ph.Parent != rq.ID {
		t.Errorf("phase parent %d, request id %d", ph.Parent, rq.ID)
	}
	if ph.AID != "q0" || ph.Track != "ep" {
		t.Errorf("child did not inherit aid/track: %+v", ph)
	}
	if rq.Start != 10*time.Millisecond || rq.End != 20*time.Millisecond {
		t.Errorf("request times wrong: %+v", rq)
	}
	if len(rq.Attrs) != 1 || rq.Attrs[0] != (Attr{"samples", "8"}) {
		t.Errorf("request attrs wrong: %+v", rq.Attrs)
	}
}

// TestArenaReuse verifies sequential spans recycle one arena slot instead
// of growing the active list.
func TestArenaReuse(t *testing.T) {
	clock, set := manualClock()
	tr := New(clock, 1)
	for i := 0; i < 100; i++ {
		set(time.Duration(i) * time.Microsecond)
		sp := tr.Start("tk", "s", KindOp, 0)
		sp.End()
	}
	if len(tr.active) != 1 {
		t.Errorf("arena grew to %d slots for sequential spans, want 1", len(tr.active))
	}
	if len(tr.done) != 100 {
		t.Errorf("got %d finished spans, want 100", len(tr.done))
	}
}

// TestEndIdempotent: a second End, and any operation through a stale ref
// whose slot has been recycled, must not corrupt the new occupant.
func TestEndIdempotent(t *testing.T) {
	clock, set := manualClock()
	tr := New(clock, 1)

	a := tr.Start("tk", "a", KindOp, 0)
	set(time.Millisecond)
	a.End()
	a.End() // idempotent
	if len(tr.done) != 1 {
		t.Fatalf("double End recorded %d spans", len(tr.done))
	}

	// b reuses a's slot; the stale ref must not touch it.
	b := tr.Start("tk", "b", KindOp, 0)
	a.SetAttr("stale", "1")
	a.SetAsync("stale")
	a.End()
	if !b.Active() {
		t.Fatal("stale End closed the slot's new occupant")
	}
	if c := a.Child("stale", KindOp); c.Active() {
		t.Error("stale ref spawned a child")
	}
	set(2 * time.Millisecond)
	b.End()
	got := tr.done[1]
	if got.Name != "b" || len(got.Attrs) != 0 || got.AID != "" {
		t.Errorf("stale ref corrupted new span: %+v", got)
	}
}

// TestSampling checks the pure 1-in-N rule every replay mode shares.
func TestSampling(t *testing.T) {
	clock, _ := manualClock()
	every3 := New(clock, 3)
	for idx, want := range map[int]bool{0: true, 1: false, 2: false, 3: true, 6: true, -1: false} {
		if got := every3.Sample(idx); got != want {
			t.Errorf("every=3 Sample(%d) = %v, want %v", idx, got, want)
		}
	}
	for _, every := range []int{0, 1} {
		tr := New(clock, every)
		for idx := 0; idx < 5; idx++ {
			if !tr.Sample(idx) {
				t.Errorf("every=%d Sample(%d) = false", every, idx)
			}
		}
	}
}

// fixtureTracer records one span of each exporter shape on two tracks.
func fixtureTracer(t *testing.T, reorder bool) *Tracer {
	t.Helper()
	clock, set := manualClock()
	tr := New(clock, 1)
	emitA := func() {
		set(time.Millisecond)
		req := tr.Start("epA", "request", KindRequest, 0)
		req.SetAsync("q0")
		req.SetAttr("samples", "4")
		set(3 * time.Millisecond)
		req.End()
	}
	emitB := func() {
		set(2 * time.Millisecond)
		op := tr.Start("epB/r0/w1", "layer", KindOp, 0)
		op.SetAttr("k", "2")
		set(4 * time.Millisecond)
		op.End()
		tr.Event("epB/r0/kv/s0", "moved", KindEvent)
	}
	if reorder {
		emitB()
		emitA()
	} else {
		emitA()
		emitB()
	}
	return tr
}

// TestWriteChromeOrderIndependent: the same spans recorded (or merged) in
// a different order must serialize to the same bytes — the property the
// laned replay's byte-identical-trace contract rests on.
func TestWriteChromeOrderIndependent(t *testing.T) {
	var a, b bytes.Buffer
	if err := fixtureTracer(t, false).WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := fixtureTracer(t, true).WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("record order leaked into export:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}

	// Merge order too: one lane's spans folded before vs after another's.
	clock, _ := manualClock()
	m1, m2 := New(clock, 1), New(clock, 1)
	laneA, laneB := fixtureTracer(t, false), fixtureTracer(t, true)
	m1.Merge(laneA)
	m1.Merge(laneB)
	m2.Merge(laneB)
	m2.Merge(laneA)
	var c, d bytes.Buffer
	if err := m1.WriteChrome(&c); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteChrome(&d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Bytes(), d.Bytes()) {
		t.Error("merge order leaked into export")
	}
}

// chromeEvent mirrors the trace-event fields the schema test checks.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	TS   json.Number     `json:"ts"`
	Dur  json.Number     `json:"dur"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	ID   string          `json:"id"`
	S    string          `json:"s"`
	Args json.RawMessage `json:"args"`
}

// validateChrome parses a Chrome trace export and checks every event
// against the trace-event schema. Shared with the serving-layer test.
func validateChrome(t *testing.T, data []byte) []chromeEvent {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, data)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	begins := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			t.Errorf("event %d has no name", i)
		}
		if ev.PID != 1 {
			t.Errorf("event %d pid = %d, want 1", i, ev.PID)
		}
		switch ev.Ph {
		case "M":
			// Metadata carries no timestamp.
		case "X":
			if _, err := strconv.ParseFloat(ev.Dur.String(), 64); err != nil {
				t.Errorf("event %d (%s) bad dur %q", i, ev.Name, ev.Dur)
			}
			fallthrough
		case "i":
			if ev.Ph == "i" && ev.S != "t" {
				t.Errorf("instant %d scope = %q, want t", i, ev.S)
			}
			fallthrough
		case "b", "e":
			if ev.TID < 1 {
				t.Errorf("event %d (%s) tid = %d", i, ev.Name, ev.TID)
			}
			if _, err := strconv.ParseFloat(ev.TS.String(), 64); err != nil {
				t.Errorf("event %d (%s) bad ts %q", i, ev.Name, ev.TS)
			}
			if ev.Ph == "b" || ev.Ph == "e" {
				if ev.ID == "" {
					t.Errorf("async event %d (%s) has no id", i, ev.Name)
				}
				if ev.Ph == "b" {
					begins[ev.Cat+"\x00"+ev.ID]++
				} else {
					begins[ev.Cat+"\x00"+ev.ID]--
				}
			}
		default:
			t.Errorf("event %d has unknown phase %q", i, ev.Ph)
		}
	}
	for k, n := range begins {
		if n != 0 {
			t.Errorf("unbalanced async pair %q: %+d begins", k, n)
		}
	}
	return doc.TraceEvents
}

// TestWriteChromeSchema validates the export of one span of each shape.
func TestWriteChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureTracer(t, false).WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	events := validateChrome(t, buf.Bytes())
	shapes := map[string]bool{}
	for _, ev := range events {
		shapes[ev.Ph] = true
	}
	for _, ph := range []string{"M", "X", "b", "e", "i"} {
		if !shapes[ph] {
			t.Errorf("export missing a %q event", ph)
		}
	}
	// No raw span IDs: async ids are the mode-stable strings we set.
	for _, ev := range events {
		if ev.Ph == "b" && ev.ID != "q0" {
			t.Errorf("async id %q, want mode-stable q0", ev.ID)
		}
	}
}

// TestWriteFlame checks aggregation and ordering of the text summary.
func TestWriteFlame(t *testing.T) {
	clock, set := manualClock()
	tr := New(clock, 1)
	for i := 0; i < 3; i++ {
		set(time.Duration(i) * time.Millisecond)
		sp := tr.Start("tk", "layer", KindOp, 0)
		set(time.Duration(i)*time.Millisecond + 2*time.Millisecond)
		sp.End()
	}
	set(10 * time.Millisecond)
	one := tr.Start("tk", "load", KindOp, 0)
	set(11 * time.Millisecond)
	one.End()

	var buf bytes.Buffer
	if err := tr.WriteFlame(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got:\n%s", out)
	}
	// layer (3 x 2ms = 6ms total) sorts above load (1ms).
	if !strings.HasPrefix(lines[1], "layer") || !strings.HasPrefix(lines[2], "load") {
		t.Errorf("rows out of order:\n%s", out)
	}
	if !strings.Contains(lines[1], " 3 ") {
		t.Errorf("layer row missing count 3:\n%s", out)
	}
}

// TestScopeSub checks track composition.
func TestScopeSub(t *testing.T) {
	clock, _ := manualClock()
	tr := New(clock, 1)
	sc := Scope{T: tr, Track: "ep/r1", Parent: 7}
	sub := sc.Sub("kv")
	if sub.Track != "ep/r1/kv" || sub.T != tr || sub.Parent != 7 {
		t.Errorf("Sub wrong: %+v", sub)
	}
	sub.Event("moved", KindEvent)
	if len(tr.Spans()) != 1 || tr.Spans()[0].Track != "ep/r1/kv" {
		t.Errorf("scope event wrong: %+v", tr.Spans())
	}
}

// TestRegistry exercises instrument identity, labels, nil-safety,
// snapshot ordering and the lane-merge reductions.
func TestRegistry(t *testing.T) {
	var nilReg *Registry
	if nilReg.Counter("x") != nil || nilReg.Gauge("x") != nil || nilReg.Histogram("x") != nil {
		t.Error("nil registry returned an instrument")
	}
	nilReg.Counter("x").Inc() // nil counter must be inert
	nilReg.Merge(NewRegistry())
	if nilReg.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}

	r := NewRegistry()
	c := r.Counter("requests_total", "endpoint", "a")
	if c != r.Counter("requests_total", "endpoint", "a") {
		t.Error("same key gave different counters")
	}
	if c == r.Counter("requests_total", "endpoint", "b") {
		t.Error("different labels gave the same counter")
	}
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	r.Gauge("queue_depth", "endpoint", "a").Set(5)
	h := r.Histogram("latency_ns", "endpoint", "a")
	h.Observe(time.Millisecond)

	o := NewRegistry()
	o.Counter("requests_total", "endpoint", "a").Add(2)
	o.Gauge("queue_depth", "endpoint", "a").Set(3) // lower: max keeps 5
	o.Gauge("queue_depth", "endpoint", "b").Set(9)
	o.Histogram("latency_ns", "endpoint", "a").Observe(2 * time.Millisecond)
	r.Merge(o)

	if got := c.Value(); got != 6 {
		t.Errorf("merged counter = %d, want 6", got)
	}
	if got := r.Gauge("queue_depth", "endpoint", "a").Value(); got != 5 {
		t.Errorf("merged gauge = %g, want max 5", got)
	}
	if got := r.Gauge("queue_depth", "endpoint", "b").Value(); got != 9 {
		t.Errorf("lane-only gauge = %g, want 9", got)
	}
	if got := h.Count(); got != 2 {
		t.Errorf("merged histogram count = %d, want 2", got)
	}

	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Key >= snap[i].Key {
			t.Errorf("snapshot not sorted: %q >= %q", snap[i-1].Key, snap[i].Key)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "requests_total{endpoint=a}") {
		t.Errorf("WriteText missing labelled key:\n%s", buf.String())
	}
}
