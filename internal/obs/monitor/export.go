package monitor

import (
	"fmt"
	"io"
	"time"
)

// WriteCSV dumps every retained window of every endpoint as a CSV
// time-series, endpoints in name order, windows oldest first. The column
// set is fixed and the row order canonical, so single, laned and
// streamed replays of the same trace produce byte-identical dumps.
func (m *Monitor) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "endpoint,window,start_s,end_s,requests,rps,failures,shed,rerouted,cold_starts,warm_starts,kv_failovers,kv_lost_values,queue_depth,replicas,lat_count,p50_ms,p95_ms,p99_ms,health"); err != nil {
		return err
	}
	for _, name := range m.Endpoints() {
		for _, s := range m.Series(name) {
			if _, err := fmt.Fprintf(w, "%s,%d,%g,%g,%d,%g,%d,%d,%d,%d,%d,%d,%d,%g,%g,%d,%g,%g,%g,%s\n",
				name, s.Window, s.Start.Seconds(), s.End.Seconds(),
				s.Requests, s.RPS(), s.Failures, s.Shed, s.Rerouted,
				s.ColdStarts, s.WarmStarts, s.KVFailovers, s.KVLostValues,
				s.QueueDepth, s.Replicas, s.LatencyCount,
				ms(s.P50), ms(s.P95), ms(s.P99), s.Health); err != nil {
				return err
			}
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteProm renders a Prometheus-style text exposition of the state at
// the last finalized window: cumulative counters, last-window gauges and
// windowed percentiles, health, and per-SLO burn rates with firing
// flags. Deterministic: endpoints in name order, one fixed metric order.
func (m *Monitor) WriteProm(w io.Writer) error {
	write := func(format string, args ...any) bool {
		_, err := fmt.Fprintf(w, format, args...)
		return err == nil
	}
	for _, name := range m.Endpoints() {
		t := m.byName[name]
		if t.n == 0 {
			continue
		}
		last := t.ring[(t.n-1)%m.capacity]
		counters := []struct {
			metric string
			v      int64
		}{
			{"fsd_requests_total", t.snap.requests},
			{"fsd_request_failures_total", t.snap.failures},
			{"fsd_requests_shed_total", t.snap.shed},
			{"fsd_requests_rerouted_total", t.snap.rerouted},
			{"fsd_cold_starts_total", t.snap.cold},
			{"fsd_warm_starts_total", t.snap.warm},
			{"fsd_kv_failovers_total", t.snap.kvFail},
			{"fsd_kv_lost_values_total", t.snap.kvLost},
		}
		for _, c := range counters {
			if !write("# TYPE %s counter\n%s{endpoint=%q} %d\n", c.metric, c.metric, name, c.v) {
				return fmt.Errorf("monitor: prom write failed")
			}
		}
		gauges := []struct {
			metric string
			v      float64
		}{
			{"fsd_rps", last.RPS()},
			{"fsd_queue_depth", last.QueueDepth},
			{"fsd_replica_pool_size", last.Replicas},
			{"fsd_request_latency_p50_ms", ms(last.P50)},
			{"fsd_request_latency_p95_ms", ms(last.P95)},
			{"fsd_request_latency_p99_ms", ms(last.P99)},
			{"fsd_health", float64(last.Health)},
		}
		for _, g := range gauges {
			if !write("# TYPE %s gauge\n%s{endpoint=%q} %g\n", g.metric, g.metric, name, g.v) {
				return fmt.Errorf("monitor: prom write failed")
			}
		}
		for _, ss := range t.slos {
			w0 := t.n - 1
			for ri, rule := range m.spec.Rules {
				burnS := ss.burn(w0, windowsIn(rule.Short, m.spec.Interval), m.capacity)
				burnL := ss.burn(w0, windowsIn(rule.Long, m.spec.Interval), m.capacity)
				firing := 0
				if ss.firing[ri] {
					firing = 1
				}
				if !write("fsd_slo_burn_rate{endpoint=%q,slo=%q,window=%q} %g\nfsd_slo_burn_rate{endpoint=%q,slo=%q,window=%q} %g\nfsd_alert_firing{endpoint=%q,slo=%q,severity=%q} %d\n",
					name, ss.slo.Name, rule.Short, burnS,
					name, ss.slo.Name, rule.Long, burnL,
					name, ss.slo.Name, rule.Severity, firing) {
					return fmt.Errorf("monitor: prom write failed")
				}
			}
		}
	}
	return nil
}

// WriteAlerts renders the alert log, one transition per line, in the
// canonical order Alerts returns.
func (m *Monitor) WriteAlerts(w io.Writer) error {
	events := m.Alerts()
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(no alerts fired)")
		return err
	}
	for _, ev := range events {
		state := "resolved"
		if ev.Firing {
			state = "FIRING"
		}
		if _, err := fmt.Fprintf(w, "[%10v] %-6s %-8s endpoint=%s slo=%s burn %.2fx/%.2fx over %v/%v (>= %gx)\n",
			ev.At, ev.Severity, state, ev.Endpoint, ev.SLO,
			ev.BurnShort, ev.BurnLong, ev.Rule.Short, ev.Rule.Long, ev.Rule.Burn); err != nil {
			return err
		}
	}
	return nil
}
