// Package monitor turns the metrics registry's point-in-time instruments
// into a continuously observed control signal: a simulated-time scrape
// loop samples each endpoint's counters, gauges and latency histogram on
// a fixed virtual-clock interval into ring-buffered time-series,
// evaluates SLO error budgets with Google-SRE-style multi-window
// burn-rate rules over those windows, derives per-endpoint health
// states, and feeds firing alerts to subscribed sinks so the serving
// layer can re-plan before a break-even crossing would have noticed.
//
// Determinism invariant: every scrape is a kernel event. The monitor
// never reads wall clocks and never samples from a goroutine — it
// schedules its next scrape on the owning service's simulated kernel,
// aligned to base + k·Interval boundaries, and each window is finalized
// exactly once, in window order, from the instruments' state at that
// simulated instant. Because windows are per-endpoint and replay lanes
// own disjoint endpoint sets, a laned replay produces the same
// per-endpoint windows as a single-kernel one; merging lanes is a union
// of series keyed by (endpoint, window index) plus an alert-log
// concatenation, and the exporters order both canonically. Single, laned
// and streamed replays therefore export byte-identical time-series CSVs
// and alert logs (tested in internal/serve).
//
// The scrape chain re-arms itself only while the service has unresolved
// requests, so a drained kernel terminates; a finishing replay advances
// dormant chains to the global end boundary (RunTo) so every lane
// finalizes the same number of windows.
package monitor

import (
	"fmt"
	"sort"
	"time"

	"fsdinference/internal/obs"
)

// Target wires one endpoint's registry instruments into the monitor.
// The monitor only ever reads them — scrapes cost the serving hot path
// nothing. All instruments are the nil-safe obs types, so a partially
// filled target is valid (missing instruments read as zero).
type Target struct {
	Endpoint string

	Requests   *obs.Counter // resolved requests (completed + failed + shed)
	Failures   *obs.Counter // failed requests, shed included
	Shed       *obs.Counter
	Rerouted   *obs.Counter
	ColdStarts *obs.Counter
	WarmStarts *obs.Counter

	KVFailovers  *obs.Counter
	KVLostValues *obs.Counter

	Latency *obs.Histogram // cumulative request latency

	QueueDepth *obs.Gauge
	Replicas   *obs.Gauge
}

// Health is a per-endpoint, per-window state derived from the firing
// alerts and KV failover activity of that window.
type Health int

const (
	Healthy Health = iota
	Degraded
	Unhealthy
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Unhealthy:
		return "unhealthy"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// Sample is one finalized scrape window of one endpoint. Counter fields
// are deltas over the window; gauges are the value at the window's
// closing boundary; percentiles come from the latency histogram's
// windowed bucket delta. Times are relative to the replay start.
type Sample struct {
	Window     int
	Start, End time.Duration

	Requests, Failures, Shed, Rerouted int64
	ColdStarts, WarmStarts             int64
	KVFailovers, KVLostValues          int64

	QueueDepth float64
	Replicas   float64

	LatencyCount  int64
	P50, P95, P99 time.Duration

	Health Health
}

// RPS is the window's completed-request rate in queries per second.
func (s Sample) RPS() float64 {
	if s.End <= s.Start {
		return 0
	}
	return float64(s.Requests) / (s.End - s.Start).Seconds()
}

// counters holds one target's cumulative counter values at a window
// boundary; the next window's deltas subtract them.
type counters struct {
	requests, failures, shed, rerouted int64
	cold, warm                         int64
	kvFail, kvLost                     int64
}

// snapshot pairs the boundary counters with the latency histogram as of
// the same boundary. The histogram dominates the struct's size, so the
// scrape path copies it only when it actually changed.
type snapshot struct {
	counters
	lat obs.Histogram
}

// sloSeries tracks one SLO's good/bad splits for one target as
// cumulative totals per finalized window (ring-buffered alongside the
// samples), so a burn rate over any lookback is two subtractions.
type sloSeries struct {
	slo     SLO
	cumGood []int64
	cumBad  []int64
	firing  []bool // per burn rule
}

type target struct {
	Target
	ring []Sample
	n    int // windows finalized so far; ring[w%cap] holds window w
	snap snapshot
	slos []*sloSeries
}

func (t *target) reset() {
	t.n = 0
	t.snap = t.scrape()
	for _, ss := range t.slos {
		for i := range ss.firing {
			ss.firing[i] = false
		}
	}
}

func (t *target) scrape() snapshot {
	s := snapshot{counters: t.scrapeCounters()}
	if t.Latency != nil {
		s.lat = *t.Latency
	}
	return s
}

func (t *target) scrapeCounters() counters {
	return counters{
		requests: t.Requests.Value(),
		failures: t.Failures.Value(),
		shed:     t.Shed.Value(),
		rerouted: t.Rerouted.Value(),
		cold:     t.ColdStarts.Value(),
		warm:     t.WarmStarts.Value(),
		kvFail:   t.KVFailovers.Value(),
		kvLost:   t.KVLostValues.Value(),
	}
}

// Monitor owns the scrape loop and the per-endpoint series. Build one
// with New, Register the targets, then Start it at the replay base; the
// serving layer does all three in WithMonitor.
type Monitor struct {
	spec     Spec
	capacity int

	clock    func() time.Duration
	schedule func(delay time.Duration, fn func())
	pending  func() bool

	targets []*target
	byName  map[string]*target

	base    time.Duration
	started bool
	armed   bool
	limit   time.Duration // RunTo catch-up bound; 0 = pending-driven

	alerts []AlertEvent
	sinks  []func(AlertEvent)
}

// New validates the spec and builds an idle monitor. clock and schedule
// bind it to a simulated kernel (the owning service's); pending reports
// whether the service still has unresolved requests, which is what keeps
// the scrape chain alive.
func New(spec Spec, clock func() time.Duration, schedule func(delay time.Duration, fn func()), pending func() bool) (*Monitor, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if clock == nil || schedule == nil {
		return nil, fmt.Errorf("monitor: New requires a clock and a scheduler")
	}
	// The ring must retain every window a burn-rate lookback can reach
	// back to, or rule evaluation would read overwritten slots.
	capacity := spec.Capacity
	for _, r := range spec.Rules {
		if need := windowsIn(r.Long, spec.Interval) + 2; need > capacity {
			capacity = need
		}
	}
	return &Monitor{
		spec:     spec,
		capacity: capacity,
		clock:    clock,
		schedule: schedule,
		pending:  pending,
		byName:   make(map[string]*target),
	}, nil
}

// windowsIn converts a lookback duration to a whole number of scrape
// windows, at least one.
func windowsIn(d, interval time.Duration) int {
	k := int(d / interval)
	if k < 1 {
		k = 1
	}
	return k
}

// Spec returns the validated, defaulted spec the monitor runs under.
func (m *Monitor) Spec() Spec {
	if m == nil {
		return Spec{}
	}
	return m.spec
}

// Register adds one endpoint's instruments. All targets must be
// registered before Start.
func (m *Monitor) Register(t Target) {
	tg := &target{
		Target: t,
		ring:   make([]Sample, m.capacity),
	}
	for i := range m.spec.SLOs {
		slo := m.spec.SLOs[i]
		if slo.Endpoint != "" && slo.Endpoint != t.Endpoint {
			continue
		}
		tg.slos = append(tg.slos, &sloSeries{
			slo:     slo,
			cumGood: make([]int64, m.capacity),
			cumBad:  make([]int64, m.capacity),
			firing:  make([]bool, len(m.spec.Rules)),
		})
	}
	m.targets = append(m.targets, tg)
	m.byName[t.Endpoint] = tg
}

// Subscribe adds an alert sink. Sinks run inside the finalizing kernel
// event, in registration order, for every alert transition — which makes
// their side effects (an early re-plan, a pool boost) land at the same
// simulated instant in single, laned and streamed replays.
func (m *Monitor) Subscribe(fn func(AlertEvent)) {
	m.sinks = append(m.sinks, fn)
}

// Start (re)sets the series to empty, snapshots every instrument as the
// window-zero baseline, and arms the first scrape at base + Interval.
// The serving layer calls it when a replay window opens.
func (m *Monitor) Start(base time.Duration) {
	m.base = base
	m.started = true
	m.limit = 0
	m.alerts = m.alerts[:0]
	for _, t := range m.targets {
		t.reset()
	}
	m.arm()
}

// arm schedules the next scrape on the kernel, aligned to the next
// base + k·Interval boundary strictly after now.
func (m *Monitor) arm() {
	if m.armed || !m.started {
		return
	}
	now := m.clock()
	k := (now-m.base)/m.spec.Interval + 1
	next := m.base + k*m.spec.Interval
	m.armed = true
	m.schedule(next-now, m.tick)
}

// tick is the scrape event: finalize every window that has closed by
// now, then re-arm while the service still has work in flight (or, in
// RunTo catch-up mode, while boundaries remain before the limit).
func (m *Monitor) tick() {
	m.armed = false
	if !m.started {
		return
	}
	now := m.clock()
	m.finalizeTo(now)
	if m.limit > 0 {
		if m.base+time.Duration(m.windows())*m.spec.Interval+m.spec.Interval <= m.limit {
			m.arm()
		}
		return
	}
	if m.pending != nil && m.pending() {
		m.arm()
	}
}

// windows returns the number of windows every target has finalized (the
// targets advance in lockstep).
func (m *Monitor) windows() int {
	if len(m.targets) == 0 {
		return 0
	}
	return m.targets[0].n
}

// RunTo arms the scrape chain, as kernel events, up to the global end
// boundary of a laned replay, so a lane whose own traffic drained early
// still finalizes the same windows — at the same simulated instants — as
// the single-kernel replay does while its other endpoints finish.
func (m *Monitor) RunTo(end time.Duration) {
	if !m.started || end <= m.clock() {
		return
	}
	m.limit = end
	m.arm()
}

// Flush finalizes every window that closed at or before end without a
// kernel event — the host-side safety net a replay's closing bookkeeping
// runs. In the replay flows all windows were already finalized by scrape
// events, so this is normally a no-op.
func (m *Monitor) Flush(end time.Duration) {
	if !m.started {
		return
	}
	m.finalizeTo(end)
}

// finalizeTo finalizes, in window order, every window whose closing
// boundary is at or before now.
func (m *Monitor) finalizeTo(now time.Duration) {
	if len(m.targets) == 0 {
		return
	}
	for m.base+time.Duration(m.windows()+1)*m.spec.Interval <= now {
		w := m.windows()
		for _, t := range m.targets {
			m.finalize(t, w)
		}
	}
}

// emptyWindow is the shared all-zero latency delta for windows with no
// new observations; it is read-only.
var emptyWindow obs.Histogram

// finalize closes window w of one target: delta the counters and the
// latency histogram against the previous boundary snapshot, read the
// gauges, evaluate the burn-rate rules and derive the health state.
// Quiet windows — no new latency observations since the last boundary —
// skip the histogram snapshot and delta entirely, so scraping an idle
// endpoint costs a few integer reads rather than bucket-array copies.
func (m *Monitor) finalize(t *target, w int) {
	cur := t.scrapeCounters()
	delta := &emptyWindow
	if t.Latency != nil && t.Latency.Count() != t.snap.lat.Count() {
		d := t.Latency.Delta(&t.snap.lat)
		delta = &d
		t.snap.lat = *t.Latency
	}
	s := Sample{
		Window:       w,
		Start:        time.Duration(w) * m.spec.Interval,
		End:          time.Duration(w+1) * m.spec.Interval,
		Requests:     cur.requests - t.snap.requests,
		Failures:     cur.failures - t.snap.failures,
		Shed:         cur.shed - t.snap.shed,
		Rerouted:     cur.rerouted - t.snap.rerouted,
		ColdStarts:   cur.cold - t.snap.cold,
		WarmStarts:   cur.warm - t.snap.warm,
		KVFailovers:  cur.kvFail - t.snap.kvFail,
		KVLostValues: cur.kvLost - t.snap.kvLost,
		QueueDepth:   t.QueueDepth.Value(),
		Replicas:     t.Replicas.Value(),
		LatencyCount: int64(delta.Count()),
		P50:          delta.Quantile(50),
		P95:          delta.Quantile(95),
		P99:          delta.Quantile(99),
	}
	t.snap.counters = cur

	health := Healthy
	if s.KVFailovers > 0 {
		// A shard failover window is in progress; the endpoint is
		// stalling writes regardless of what the burn rates say yet.
		health = Unhealthy
	}
	for _, ss := range t.slos {
		good, bad := ss.slo.split(&s, delta)
		prevGood, prevBad := int64(0), int64(0)
		if w > 0 {
			prevGood = ss.cumGood[(w-1)%m.capacity]
			prevBad = ss.cumBad[(w-1)%m.capacity]
		}
		ss.cumGood[w%m.capacity] = prevGood + good
		ss.cumBad[w%m.capacity] = prevBad + bad
		for ri := range m.spec.Rules {
			rule := m.spec.Rules[ri]
			burnS := ss.burn(w, windowsIn(rule.Short, m.spec.Interval), m.capacity)
			burnL := ss.burn(w, windowsIn(rule.Long, m.spec.Interval), m.capacity)
			firing := burnS >= rule.Burn && burnL >= rule.Burn
			if firing != ss.firing[ri] {
				ss.firing[ri] = firing
				ev := AlertEvent{
					At:        s.End,
					Endpoint:  t.Endpoint,
					SLO:       ss.slo.Name,
					Severity:  rule.Severity,
					Rule:      rule,
					Firing:    firing,
					BurnShort: burnS,
					BurnLong:  burnL,
				}
				m.alerts = append(m.alerts, ev)
				for _, sink := range m.sinks {
					sink(ev)
				}
			}
			if ss.firing[ri] {
				switch rule.Severity {
				case Page:
					health = Unhealthy
				case Ticket:
					if health == Healthy {
						health = Degraded
					}
				}
			}
		}
	}
	s.Health = health
	t.ring[w%m.capacity] = s
	t.n++
}

// burn returns the error-budget burn rate over the last k windows ending
// at window w: the bad fraction of events in that lookback divided by
// the budget (1 − objective). No traffic burns nothing.
func (ss *sloSeries) burn(w, k, capacity int) float64 {
	if k > w+1 {
		k = w + 1
	}
	good, bad := ss.cumGood[w%capacity], ss.cumBad[w%capacity]
	if w-k >= 0 {
		good -= ss.cumGood[(w-k)%capacity]
		bad -= ss.cumBad[(w-k)%capacity]
	}
	total := good + bad
	if total == 0 || bad == 0 {
		return 0
	}
	budget := 1 - ss.slo.Objective
	return (float64(bad) / float64(total)) / budget
}

// Series returns the retained windows of one endpoint, oldest first.
// With the default capacity that is the full replay; a longer run keeps
// the most recent Capacity windows.
func (m *Monitor) Series(endpoint string) []Sample {
	if m == nil {
		return nil
	}
	t := m.byName[endpoint]
	if t == nil {
		return nil
	}
	first := 0
	if t.n > m.capacity {
		first = t.n - m.capacity
	}
	out := make([]Sample, 0, t.n-first)
	for w := first; w < t.n; w++ {
		out = append(out, t.ring[w%m.capacity])
	}
	return out
}

// Endpoints returns the registered endpoint names, sorted.
func (m *Monitor) Endpoints() []string {
	if m == nil {
		return nil
	}
	names := make([]string, 0, len(m.targets))
	for _, t := range m.targets {
		names = append(names, t.Endpoint)
	}
	sort.Strings(names)
	return names
}

// Alerts returns the alert log in canonical order: by simulated time,
// then endpoint, SLO, severity and transition. The canonical sort is
// what makes a lane-merged log byte-equal to the single-kernel one.
func (m *Monitor) Alerts() []AlertEvent {
	if m == nil {
		return nil
	}
	out := make([]AlertEvent, len(m.alerts))
	copy(out, m.alerts)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Endpoint != b.Endpoint {
			return a.Endpoint < b.Endpoint
		}
		if a.SLO != b.SLO {
			return a.SLO < b.SLO
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity // pages before tickets
		}
		return !a.Firing && b.Firing
	})
	return out
}

// TimeInViolation sums the simulated time of windows where the named
// SLO's windowed bad fraction exceeded its error budget on the given
// endpoint — the flash-crowd experiments' headline number.
func (m *Monitor) TimeInViolation(endpoint, slo string) time.Duration {
	if m == nil {
		return 0
	}
	t := m.byName[endpoint]
	if t == nil {
		return 0
	}
	var ss *sloSeries
	for _, c := range t.slos {
		if c.slo.Name == slo {
			ss = c
			break
		}
	}
	if ss == nil {
		return 0
	}
	first := 0
	if t.n > m.capacity {
		first = t.n - m.capacity
	}
	budget := 1 - ss.slo.Objective
	var viol time.Duration
	for w := first; w < t.n; w++ {
		good, bad := ss.cumGood[w%m.capacity], ss.cumBad[w%m.capacity]
		if w > 0 {
			good -= ss.cumGood[(w-1)%m.capacity]
			bad -= ss.cumBad[(w-1)%m.capacity]
		}
		if total := good + bad; total > 0 && float64(bad)/float64(total) > budget {
			viol += m.spec.Interval
		}
	}
	return viol
}

// Absorb folds a lane's monitor into this one: per-endpoint series copy
// (lanes own disjoint endpoint sets, so this is a union keyed by window
// index) plus alert-log concatenation. The receiver must be the
// never-started monitor of the lane-owning service.
func (m *Monitor) Absorb(lane *Monitor) {
	if lane == nil {
		return
	}
	for _, lt := range lane.targets {
		if lt.n == 0 {
			continue
		}
		t := m.byName[lt.Endpoint]
		if t == nil {
			continue
		}
		t.ring, t.n, t.snap = lt.ring, lt.n, lt.snap
		t.slos = lt.slos
	}
	m.alerts = append(m.alerts, lane.alerts...)
}
