package monitor

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fsdinference/internal/obs"
	"fsdinference/internal/sim"
)

// harness binds a monitor to a bare kernel with synthetic instruments,
// standing in for the serving layer.
type harness struct {
	k        *sim.Kernel
	mon      *Monitor
	requests *obs.Counter
	failures *obs.Counter
	latency  *obs.Histogram
	queue    *obs.Gauge
	replicas *obs.Gauge
	busy     bool
}

func newHarness(t *testing.T, spec Spec) *harness {
	t.Helper()
	h := &harness{
		k:        sim.New(),
		requests: &obs.Counter{},
		failures: &obs.Counter{},
		latency:  &obs.Histogram{},
		queue:    &obs.Gauge{},
		replicas: &obs.Gauge{},
		busy:     true,
	}
	mon, err := New(spec, h.k.Clock(),
		func(d time.Duration, fn func()) { h.k.At(d, fn) },
		func() bool { return h.busy })
	if err != nil {
		t.Fatal(err)
	}
	mon.Register(Target{
		Endpoint: "ep",
		Requests: h.requests, Failures: h.failures,
		Latency: h.latency, QueueDepth: h.queue, Replicas: h.replicas,
	})
	h.mon = mon
	return h
}

// at schedules an event that records n requests with the given latency
// and failure split at simulated time d.
func (h *harness) at(d time.Duration, n int, lat time.Duration, failed int) {
	h.k.At(d, func() {
		for i := 0; i < n; i++ {
			h.requests.Inc()
			h.latency.Observe(lat)
		}
		h.failures.Add(int64(failed))
	})
}

func TestScrapeWindowsAndDeltas(t *testing.T) {
	h := newHarness(t, Spec{Interval: time.Minute})
	// Window 0: 10 fast requests. Window 2: 5 slow ones. Window 1 idle.
	h.at(10*time.Second, 10, 20*time.Millisecond, 0)
	h.at(2*time.Minute+30*time.Second, 5, 800*time.Millisecond, 1)
	// Keep the chain alive into window 3, then let it drain.
	h.k.At(3*time.Minute+10*time.Second, func() { h.busy = false })
	h.mon.Start(0)
	if err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
	series := h.mon.Series("ep")
	if len(series) != 4 {
		t.Fatalf("got %d windows, want 4 (chain stops at the first boundary after work drains)", len(series))
	}
	w0, w1, w2 := series[0], series[1], series[2]
	if w0.Requests != 10 || w0.LatencyCount != 10 || w0.Failures != 0 {
		t.Errorf("window 0 = %+v, want 10 requests", w0)
	}
	if w0.P95 < 20*time.Millisecond || w0.P95 > 22*time.Millisecond {
		t.Errorf("window 0 p95 = %v, want ~20ms", w0.P95)
	}
	if w1.Requests != 0 || w1.LatencyCount != 0 {
		t.Errorf("idle window 1 = %+v, want zero deltas", w1)
	}
	if w2.Requests != 5 || w2.Failures != 1 {
		t.Errorf("window 2 = %+v, want 5 requests 1 failure", w2)
	}
	if w2.P99 < 800*time.Millisecond || w2.P99 > 900*time.Millisecond {
		t.Errorf("window 2 p99 = %v, want ~800ms", w2.P99)
	}
	if got := w0.RPS(); got != 10.0/60 {
		t.Errorf("window 0 RPS = %v", got)
	}
	// Scrapes are kernel events: the kernel clock advanced to the last
	// scrape boundary.
	if h.k.Now() != 4*time.Minute {
		t.Errorf("kernel drained at %v, want the window-3 boundary", h.k.Now())
	}
}

func TestBurnRateAlertLifecycle(t *testing.T) {
	spec := Spec{
		Interval: time.Minute,
		SLOs: []SLO{{
			Name: "p95", Kind: LatencyQuantile,
			Target: 100 * time.Millisecond, Objective: 0.95,
		}},
	}
	h := newHarness(t, spec)
	var sunk []AlertEvent
	h.mon.Subscribe(func(ev AlertEvent) { sunk = append(sunk, ev) })

	// 10 healthy minutes, then an hour of hard violation, then quiet.
	for m := 0; m < 10; m++ {
		h.at(time.Duration(m)*time.Minute+5*time.Second, 20, 10*time.Millisecond, 0)
	}
	for m := 10; m < 70; m++ {
		h.at(time.Duration(m)*time.Minute+5*time.Second, 20, 2*time.Second, 0)
	}
	h.k.At(130*time.Minute, func() { h.busy = false })
	h.mon.Start(0)
	if err := h.k.Run(); err != nil {
		t.Fatal(err)
	}

	alerts := h.mon.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alerts fired")
	}
	var pageFire, pageResolve, ticketFire *AlertEvent
	for i := range alerts {
		ev := &alerts[i]
		switch {
		case ev.Severity == Page && ev.Firing && pageFire == nil:
			pageFire = ev
		case ev.Severity == Page && !ev.Firing && pageFire != nil && pageResolve == nil:
			pageResolve = ev
		case ev.Severity == Ticket && ev.Firing && ticketFire == nil:
			ticketFire = ev
		}
	}
	if pageFire == nil {
		t.Fatal("page never fired")
	}
	// The 5m burn hits 1/0.05 = 20x immediately; the page waits for the
	// 1h lookback to cross 14.4x (0.72 bad fraction), which the 10
	// healthy windows delay until ~26 violating windows have passed.
	if pageFire.At < 11*time.Minute || pageFire.At > 45*time.Minute {
		t.Errorf("page fired at %v, want during the violation hour", pageFire.At)
	}
	if pageFire.BurnShort < 14.4 || pageFire.BurnLong < 14.4 {
		t.Errorf("page burn rates %v/%v below threshold", pageFire.BurnShort, pageFire.BurnLong)
	}
	// The slow-burn ticket needs only a 6x burn, so a hard violation
	// trips it too (earlier than the page here — its long lookback
	// dilutes less).
	if ticketFire == nil {
		t.Error("ticket never fired")
	}
	if pageResolve == nil {
		t.Error("page never resolved after traffic quieted")
	}
	if len(sunk) != len(alerts) {
		t.Errorf("sink saw %d events, log has %d", len(sunk), len(alerts))
	}

	// Health tracks the firing rules: unhealthy during the violation.
	series := h.mon.Series("ep")
	sawUnhealthy := false
	for _, s := range series {
		if s.Window >= 40 && s.Window < 65 && s.Health == Unhealthy {
			sawUnhealthy = true
		}
	}
	if !sawUnhealthy {
		t.Error("no unhealthy window during the violation")
	}
	if v := h.mon.TimeInViolation("ep", "p95"); v != 60*time.Minute {
		t.Errorf("time in violation = %v, want the 60 violating windows", v)
	}
}

func TestRunToCatchesUpDormantChain(t *testing.T) {
	h := newHarness(t, Spec{Interval: time.Minute})
	h.at(30*time.Second, 4, 10*time.Millisecond, 0)
	h.k.At(90*time.Second, func() { h.busy = false })
	h.mon.Start(0)
	if err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(h.mon.Series("ep")); got != 2 {
		t.Fatalf("before RunTo: %d windows, want 2", got)
	}
	// Another lane ran to 10m; this lane must finalize the same windows
	// as kernel events.
	h.mon.RunTo(10 * time.Minute)
	if err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(h.mon.Series("ep")); got != 10 {
		t.Fatalf("after RunTo(10m): %d windows, want 10", got)
	}
	if h.k.Now() != 10*time.Minute {
		t.Errorf("kernel at %v after RunTo, want 10m", h.k.Now())
	}
	for _, s := range h.mon.Series("ep")[2:] {
		if s.Requests != 0 || s.LatencyCount != 0 {
			t.Errorf("catch-up window %d not idle: %+v", s.Window, s)
		}
	}
}

func TestExportsDeterministic(t *testing.T) {
	run := func() (string, string, string) {
		spec := Spec{
			Interval: time.Minute,
			SLOs:     []SLO{{Name: "avail", Kind: Availability, Objective: 0.9}},
		}
		h := newHarness(t, spec)
		h.at(10*time.Second, 10, 30*time.Millisecond, 0)
		h.at(70*time.Second, 10, 40*time.Millisecond, 8)
		h.k.At(3*time.Minute+1*time.Second, func() { h.busy = false })
		h.mon.Start(0)
		if err := h.k.Run(); err != nil {
			t.Fatal(err)
		}
		var csv, prom, alerts bytes.Buffer
		if err := h.mon.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := h.mon.WriteProm(&prom); err != nil {
			t.Fatal(err)
		}
		if err := h.mon.WriteAlerts(&alerts); err != nil {
			t.Fatal(err)
		}
		return csv.String(), prom.String(), alerts.String()
	}
	c1, p1, a1 := run()
	c2, p2, a2 := run()
	if c1 != c2 || p1 != p2 || a1 != a2 {
		t.Error("exports differ between identical runs")
	}
	if !strings.Contains(c1, "ep,0,") || !strings.Contains(c1, ",healthy") {
		t.Errorf("CSV missing expected rows:\n%s", c1)
	}
	if !strings.Contains(p1, `fsd_requests_total{endpoint="ep"} 20`) {
		t.Errorf("prom text missing cumulative counter:\n%s", p1)
	}
	if !strings.Contains(p1, "fsd_slo_burn_rate") {
		t.Errorf("prom text missing burn rates:\n%s", p1)
	}
}

func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("latency:p99<=250ms@0.99,endpoint=large,name=big,window=720h")
	if err != nil {
		t.Fatal(err)
	}
	want := SLO{Name: "big", Endpoint: "large", Kind: LatencyQuantile,
		Target: 250 * time.Millisecond, Window: 720 * time.Hour, Objective: 0.99}
	if slo != want {
		t.Errorf("parsed %+v, want %+v", slo, want)
	}
	// The quantile defaults the objective.
	slo, err = ParseSLO("latency:p95<=1s")
	if err != nil {
		t.Fatal(err)
	}
	if slo.Objective != 0.95 || slo.Name != "latency-p95" {
		t.Errorf("default objective wrong: %+v", slo)
	}
	if _, err := ParseSLO("availability@0.999,endpoint=small"); err != nil {
		t.Errorf("availability parse failed: %v", err)
	}
	for _, bad := range []string{"", "latency:p99", "availability", "latency:p0<=1s@0.5", "latency:p99<=1s,bogus=1"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) did not fail", bad)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	clock := func() time.Duration { return 0 }
	sched := func(time.Duration, func()) {}
	for _, spec := range []Spec{
		{Interval: -time.Second},
		{SLOs: []SLO{{Name: "x", Objective: 1.5}}},
		{SLOs: []SLO{{Objective: 0.9}}},
		{SLOs: []SLO{{Name: "lat", Kind: LatencyQuantile, Objective: 0.9}}},
		{Rules: []BurnRule{{Short: time.Hour, Long: time.Minute, Burn: 2}}},
		{Rules: []BurnRule{{Short: time.Minute, Long: time.Hour, Burn: 0}}},
	} {
		if _, err := New(spec, clock, sched, nil); err == nil {
			t.Errorf("spec %+v validated", spec)
		}
	}
	if _, err := New(Spec{}, nil, nil, nil); err == nil {
		t.Error("nil clock validated")
	}
	m, err := New(Spec{}, clock, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec().Interval != time.Minute || len(m.Spec().Rules) != 2 {
		t.Errorf("defaults not applied: %+v", m.Spec())
	}
}
