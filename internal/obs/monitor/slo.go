package monitor

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"fsdinference/internal/obs"
)

// ObjectiveKind selects what an SLO counts as a bad event.
type ObjectiveKind int

const (
	// LatencyQuantile promises that an Objective fraction of requests
	// complete within Target — "p99 ≤ 200ms" is Objective 0.99 with
	// Target 200ms. Bad events are requests slower than Target,
	// bucket-granular from the windowed histogram delta.
	LatencyQuantile ObjectiveKind = iota
	// Availability promises that an Objective fraction of requests
	// succeed. Bad events are failures, shed requests included.
	Availability
)

func (k ObjectiveKind) String() string {
	switch k {
	case LatencyQuantile:
		return "latency"
	case Availability:
		return "availability"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// SLO is one service-level objective: over any Window, an Objective
// fraction of events must be good, with the remaining budget consumed by
// bad events as the burn-rate rules measure.
type SLO struct {
	// Name labels the SLO in alerts and exports.
	Name string
	// Endpoint scopes the SLO to one endpoint; empty applies it to all.
	Endpoint string
	Kind     ObjectiveKind
	// Target is the latency threshold for LatencyQuantile objectives.
	Target time.Duration
	// Window is the error-budget period the objective is promised over
	// (e.g. 28 days). Burn rates are normalized, so it only documents
	// the budget the burn multiples refer to.
	Window time.Duration
	// Objective is the promised good fraction in (0, 1), e.g. 0.999.
	Objective float64
}

// split counts the window's good and bad events under this SLO.
func (s *SLO) split(smp *Sample, lat *obs.Histogram) (good, bad int64) {
	switch s.Kind {
	case Availability:
		bad = smp.Failures
		good = smp.Requests - bad
	default:
		total := int64(lat.Count())
		good = int64(lat.CountAtMost(s.Target))
		bad = total - good
	}
	if good < 0 {
		good = 0
	}
	if bad < 0 {
		bad = 0
	}
	return good, bad
}

// Severity ranks an alert: a Page demands immediate action, a Ticket is
// a slow burn worth a look.
type Severity int

const (
	Ticket Severity = iota
	Page
)

func (s Severity) String() string {
	switch s {
	case Page:
		return "page"
	case Ticket:
		return "ticket"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// BurnRule is one multi-window burn-rate alert rule in the Google SRE
// workbook's style: fire when the error budget burns at least Burn times
// its sustainable rate over both the Short and the Long lookback — the
// short window makes the alert reset quickly, the long one keeps a brief
// blip from paging.
type BurnRule struct {
	Severity    Severity
	Short, Long time.Duration
	Burn        float64
}

// DefaultRules returns the classic pair: a fast 5m/1h page at 14.4×
// burn (2% of a 30-day budget in an hour) and a slow 30m/6h ticket at
// 6× (5% in six hours).
func DefaultRules() []BurnRule {
	return []BurnRule{
		{Severity: Page, Short: 5 * time.Minute, Long: time.Hour, Burn: 14.4},
		{Severity: Ticket, Short: 30 * time.Minute, Long: 6 * time.Hour, Burn: 6},
	}
}

// AlertEvent records one alert transition: a rule starting or stopping
// to fire for one SLO on one endpoint, stamped with the simulated window
// boundary that evaluated it (relative to the replay start).
type AlertEvent struct {
	At       time.Duration
	Endpoint string
	SLO      string
	Severity Severity
	Rule     BurnRule
	Firing   bool
	// BurnShort and BurnLong are the burn rates that crossed (or
	// receded from) the rule's threshold.
	BurnShort, BurnLong float64
}

// Spec configures a Monitor.
type Spec struct {
	// Interval is the scrape period in simulated time (default 1m).
	Interval time.Duration
	// Capacity bounds each ring-buffered series in windows (default
	// 4096); it is raised automatically to cover the longest burn-rate
	// lookback.
	Capacity int
	SLOs     []SLO
	// Rules are the burn-rate alert rules (default DefaultRules).
	Rules []BurnRule
	// Passive records series and alerts but tells the serving layer not
	// to act on them — no alert-driven re-plan or pool boost. The
	// baseline arm of the flash-crowd experiment runs passive.
	Passive bool
}

func (s Spec) withDefaults() Spec {
	if s.Interval == 0 {
		s.Interval = time.Minute
	}
	if s.Capacity == 0 {
		s.Capacity = 4096
	}
	if s.Rules == nil {
		s.Rules = DefaultRules()
	}
	return s
}

func (s Spec) validate() error {
	if s.Interval <= 0 {
		return fmt.Errorf("monitor: scrape interval must be positive, got %v", s.Interval)
	}
	if s.Capacity < 2 {
		return fmt.Errorf("monitor: series capacity %d is too small", s.Capacity)
	}
	for i, slo := range s.SLOs {
		if slo.Name == "" {
			return fmt.Errorf("monitor: SLO %d has no name", i)
		}
		if slo.Objective <= 0 || slo.Objective >= 1 {
			return fmt.Errorf("monitor: SLO %q objective %v outside (0, 1)", slo.Name, slo.Objective)
		}
		if slo.Kind == LatencyQuantile && slo.Target <= 0 {
			return fmt.Errorf("monitor: latency SLO %q needs a positive target", slo.Name)
		}
	}
	for i, r := range s.Rules {
		if r.Short <= 0 || r.Long < r.Short {
			return fmt.Errorf("monitor: burn rule %d windows %v/%v are not 0 < short ≤ long", i, r.Short, r.Long)
		}
		if r.Burn <= 0 {
			return fmt.Errorf("monitor: burn rule %d threshold %v must be positive", i, r.Burn)
		}
	}
	return nil
}

// ParseSLO parses the fsdserve -slo flag syntax, a comma-separated
// key=value list:
//
//	latency:p99<=250ms@0.99[,endpoint=large][,window=720h][,name=large-p99]
//	availability@0.999[,endpoint=small]
//
// The leading clause is either "latency:pNN<=DUR@OBJ" (the quantile is
// documentation — the objective is what is enforced; pNN defaults OBJ to
// NN/100 when @OBJ is omitted) or "availability@OBJ".
func ParseSLO(s string) (SLO, error) {
	parts := strings.Split(s, ",")
	head := strings.TrimSpace(parts[0])
	slo := SLO{Window: 30 * 24 * time.Hour}
	headNoObj := head
	if at := strings.LastIndexByte(head, '@'); at >= 0 {
		obj, err := strconv.ParseFloat(head[at+1:], 64)
		if err != nil {
			return SLO{}, fmt.Errorf("monitor: bad objective in %q: %v", head, err)
		}
		slo.Objective = obj
		headNoObj = head[:at]
	}
	switch {
	case headNoObj == "availability":
		slo.Kind = Availability
		slo.Name = "availability"
		if slo.Objective == 0 {
			return SLO{}, fmt.Errorf("monitor: availability SLO %q needs @objective", s)
		}
	case strings.HasPrefix(headNoObj, "latency:p"):
		slo.Kind = LatencyQuantile
		rest := strings.TrimPrefix(headNoObj, "latency:p")
		le := strings.Index(rest, "<=")
		if le < 0 {
			return SLO{}, fmt.Errorf("monitor: latency SLO %q needs pNN<=duration", s)
		}
		q, err := strconv.Atoi(rest[:le])
		if err != nil || q <= 0 || q >= 100 {
			return SLO{}, fmt.Errorf("monitor: bad quantile in %q", s)
		}
		d, err := time.ParseDuration(rest[le+2:])
		if err != nil {
			return SLO{}, fmt.Errorf("monitor: bad latency target in %q: %v", s, err)
		}
		slo.Target = d
		slo.Name = fmt.Sprintf("latency-p%d", q)
		if slo.Objective == 0 {
			slo.Objective = float64(q) / 100
		}
	default:
		return SLO{}, fmt.Errorf("monitor: SLO %q must start with latency:pNN<=DUR or availability@OBJ", s)
	}
	for _, kv := range parts[1:] {
		kv = strings.TrimSpace(kv)
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return SLO{}, fmt.Errorf("monitor: SLO option %q is not key=value", kv)
		}
		switch k {
		case "endpoint":
			slo.Endpoint = v
		case "name":
			slo.Name = v
		case "window":
			d, err := time.ParseDuration(v)
			if err != nil {
				return SLO{}, fmt.Errorf("monitor: bad SLO window %q: %v", v, err)
			}
			slo.Window = d
		default:
			return SLO{}, fmt.Errorf("monitor: unknown SLO option %q", k)
		}
	}
	return slo, nil
}
