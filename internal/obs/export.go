package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteChrome renders the finished spans as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing. One track (thread) per
// logical timeline — replica, worker, KV shard — all under a single
// process.
//
// The output is canonical: events carry no allocation-order span IDs
// (request and run pairs correlate through their mode-stable async ids),
// threads are numbered from the sorted track names, and events are
// ordered by (timestamp, rendered bytes). Two tracers holding the same
// spans therefore serialize to the same bytes regardless of the order
// the spans were recorded or merged in — the property that makes
// single-kernel, laned and streamed replays byte-comparable.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n")
		return err
	}

	tids := map[string]int{}
	for i := range t.done {
		tids[t.done[i].Track] = 0
	}
	tracks := make([]string, 0, len(tids))
	for tr := range tids {
		tracks = append(tracks, tr)
	}
	sort.Strings(tracks)
	for i, tr := range tracks {
		tids[tr] = i + 1
	}

	type event struct {
		ts   int64 // start ns, for the primary sort key
		line string
	}
	events := make([]event, 0, 2*len(t.done))
	for i := range t.done {
		sp := &t.done[i]
		tid := tids[sp.Track]
		switch {
		case sp.Kind == KindEvent:
			var b strings.Builder
			b.WriteString(`{"name":`)
			b.WriteString(strconv.Quote(sp.Name))
			b.WriteString(`,"cat":"event","ph":"i","ts":`)
			b.WriteString(chromeTS(sp.Start))
			fmt.Fprintf(&b, `,"pid":1,"tid":%d,"s":"t"`, tid)
			writeArgs(&b, sp.Attrs)
			b.WriteString("}")
			events = append(events, event{int64(sp.Start), b.String()})
		case sp.AID != "":
			// Async begin/end pair keyed on the mode-stable async id;
			// requests and their phases share one id and nest, runs get
			// their own.
			cat := "req"
			if sp.Kind == KindRun {
				cat = "run"
			}
			var b strings.Builder
			b.WriteString(`{"name":`)
			b.WriteString(strconv.Quote(sp.Name))
			b.WriteString(`,"cat":"` + cat + `","ph":"b","ts":`)
			b.WriteString(chromeTS(sp.Start))
			fmt.Fprintf(&b, `,"pid":1,"tid":%d,"id":`, tid)
			b.WriteString(strconv.Quote(sp.AID))
			writeArgs(&b, sp.Attrs)
			b.WriteString("}")
			events = append(events, event{int64(sp.Start), b.String()})

			var e strings.Builder
			e.WriteString(`{"name":`)
			e.WriteString(strconv.Quote(sp.Name))
			e.WriteString(`,"cat":"` + cat + `","ph":"e","ts":`)
			e.WriteString(chromeTS(sp.End))
			fmt.Fprintf(&e, `,"pid":1,"tid":%d,"id":`, tid)
			e.WriteString(strconv.Quote(sp.AID))
			e.WriteString("}")
			events = append(events, event{int64(sp.End), e.String()})
		default:
			// Duration slice on its track; nesting is by time, which is
			// identical across modes.
			var b strings.Builder
			b.WriteString(`{"name":`)
			b.WriteString(strconv.Quote(sp.Name))
			b.WriteString(`,"cat":"` + sp.Kind.String() + `","ph":"X","ts":`)
			b.WriteString(chromeTS(sp.Start))
			b.WriteString(`,"dur":`)
			b.WriteString(chromeTS(sp.End - sp.Start))
			fmt.Fprintf(&b, `,"pid":1,"tid":%d`, tid)
			writeArgs(&b, sp.Attrs)
			b.WriteString("}")
			events = append(events, event{int64(sp.Start), b.String()})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		return events[i].line < events[j].line
	})

	var out strings.Builder
	out.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	out.WriteString("\n")
	out.WriteString(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"fsdinference"}}`)
	for _, tr := range tracks {
		tid := tids[tr]
		fmt.Fprintf(&out, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%s}}", tid, strconv.Quote(tr))
		fmt.Fprintf(&out, ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"sort_index\":%d}}", tid, tid)
	}
	for _, ev := range events {
		out.WriteString(",\n")
		out.WriteString(ev.line)
	}
	out.WriteString("\n]}\n")
	_, err := io.WriteString(w, out.String())
	return err
}

// chromeTS renders a simulated-time offset as trace-event microseconds
// with nanosecond precision — pure integer math, so the rendering is
// exact and deterministic.
func chromeTS(d time.Duration) string {
	ns := int64(d)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// writeArgs appends a trace-event "args" object preserving attr order.
func writeArgs(b *strings.Builder, attrs []Attr) {
	if len(attrs) == 0 {
		return
	}
	b.WriteString(`,"args":{`)
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(a.Key))
		b.WriteByte(':')
		b.WriteString(strconv.Quote(a.Val))
	}
	b.WriteByte('}')
}

// WriteFlame renders a plain-text flame summary: finished spans
// aggregated by (kind, name) with count, total, mean and max simulated
// time, widest totals first. It answers "where did simulated time go"
// without leaving the terminal.
func (t *Tracer) WriteFlame(w io.Writer) error {
	type row struct {
		kind  Kind
		name  string
		count int
		total time.Duration
		max   time.Duration
	}
	byKey := map[string]*row{}
	if t != nil {
		for i := range t.done {
			sp := &t.done[i]
			key := sp.Kind.String() + "\x00" + sp.Name
			r := byKey[key]
			if r == nil {
				r = &row{kind: sp.Kind, name: sp.Name}
				byKey[key] = r
			}
			d := sp.End - sp.Start
			r.count++
			r.total += d
			if d > r.max {
				r.max = d
			}
		}
	}
	rows := make([]*row, 0, len(byKey))
	for _, r := range byKey {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		if rows[i].name != rows[j].name {
			return rows[i].name < rows[j].name
		}
		return rows[i].kind < rows[j].kind
	})
	if _, err := fmt.Fprintf(w, "%-16s %-8s %8s %14s %14s %14s\n",
		"span", "kind", "count", "total", "mean", "max"); err != nil {
		return err
	}
	if len(rows) == 0 {
		// Sampling can filter out every request of a small replay; say so
		// instead of emitting a bare header that reads like lost data.
		_, err := fmt.Fprintln(w, "(no sampled spans — every request fell outside the sampling stride; lower the sampling interval)")
		return err
	}
	for _, r := range rows {
		mean := r.total / time.Duration(r.count)
		if _, err := fmt.Fprintf(w, "%-16s %-8s %8d %14v %14v %14v\n",
			r.name, r.kind, r.count, r.total, mean, r.max); err != nil {
			return err
		}
	}
	return nil
}
