package obs

import (
	"math"
	"testing"
	"time"
)

// TestHistSingleSample: the p99 of one observation is that observation,
// exactly — the max clamp must cancel the bucket's rounding-up.
func TestHistSingleSample(t *testing.T) {
	var h Histogram
	d := 137 * time.Millisecond
	h.Observe(d)
	for _, p := range []int{1, 50, 95, 99, 100} {
		if got := h.Quantile(p); got != d {
			t.Errorf("p%d of single sample = %v, want %v", p, got, d)
		}
	}
	if h.Count() != 1 || h.Sum() != d || h.Min() != d || h.Max() != d {
		t.Errorf("single-sample stats wrong: count=%d sum=%v min=%v max=%v",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
}

// TestHistBelowFirstDecades: values at or below the linear head of the
// bucket scale (including zero and negative clamped to bucket 0) report
// exactly.
func TestHistBelowFirstDecades(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{0, 1, 3, 15} {
		h.Observe(d)
	}
	if h.Min() != 0 || h.Max() != 15 {
		t.Errorf("min=%v max=%v", h.Min(), h.Max())
	}
	// Sub-16ns values index linearly, so each quantile is exact.
	if got := h.Quantile(25); got != 0 {
		t.Errorf("p25 = %v, want 0", got)
	}
	if got := h.Quantile(50); got != 1 {
		t.Errorf("p50 = %v, want 1ns", got)
	}
	if got := h.Quantile(75); got != 3 {
		t.Errorf("p75 = %v, want 3ns", got)
	}
	if got := h.Quantile(100); got != 15 {
		t.Errorf("p100 = %v, want 15ns", got)
	}

	// A negative duration (clock skew upstream) folds into bucket 0
	// rather than a panic or a wild index; quantiles report the bucket
	// bound (0) while Min stays exact.
	var n Histogram
	n.Observe(-time.Second)
	if got := n.Quantile(99); got != 0 {
		t.Errorf("negative sample p99 = %v, want bucket-0 bound 0", got)
	}
	if n.Min() != -time.Second {
		t.Errorf("negative sample min = %v", n.Min())
	}
}

// TestHistOverflowBucket: a duration near the top of the int64 range
// lands in the last decade and quantiles clamp to the exact max.
func TestHistOverflowBucket(t *testing.T) {
	var h Histogram
	huge := time.Duration(math.MaxInt64 - 7)
	h.Observe(time.Millisecond)
	h.Observe(huge)
	if got := h.Quantile(99); got != huge {
		t.Errorf("p99 = %v, want exact max %v", got, huge)
	}
	if got := h.Quantile(1); got < time.Millisecond || got > time.Millisecond+time.Millisecond/10 {
		t.Errorf("p1 = %v, want ~1ms bucket edge", got)
	}
	if h.Max() != huge {
		t.Errorf("max = %v", h.Max())
	}
}

// TestBucketMonotonic sweeps the bucket math at every supported
// geometry: indices never decrease with the value, the upper bound
// always covers the value, and the relative rounding error stays within
// one sub-bucket of its decade.
func TestBucketMonotonic(t *testing.T) {
	for _, sub := range []int{1, 2, 4, 8, 16} {
		prev := -1
		for _, v := range sweepDurations() {
			idx := bucketOf(v, sub)
			if idx < prev {
				t.Fatalf("sub=%d: bucketOf(%d) = %d < previous %d", sub, v, idx, prev)
			}
			prev = idx
			ub := upperBound(idx, sub)
			if ub < v {
				t.Fatalf("sub=%d: upperBound(bucketOf(%d)) = %d < value", sub, v, ub)
			}
			if sub == 16 && v >= 32 { // past the linear head the bound is within 1/16
				if float64(ub-v) > float64(v)/8 {
					t.Fatalf("bound %d too loose for %d", ub, v)
				}
			}
		}
	}
}

func sweepDurations() []time.Duration {
	var out []time.Duration
	for v := time.Duration(0); v < 200; v++ {
		out = append(out, v)
	}
	for e := uint(8); e < 62; e++ {
		base := time.Duration(1) << e
		out = append(out, base-1, base, base+base/16, base+base/3, base+base/2)
	}
	return out
}

// TestHistMerge: merging two halves equals observing everything in one
// histogram — bucket for bucket.
func TestHistMerge(t *testing.T) {
	var whole, a, b Histogram
	for i := 0; i < 500; i++ {
		d := time.Duration(i*i) * time.Microsecond
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	a.Merge(nil)          // no-op
	a.Merge(&Histogram{}) // empty no-op
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged stats diverge: count %d/%d sum %v/%v",
			a.Count(), whole.Count(), a.Sum(), whole.Sum())
	}
	for _, p := range []int{1, 25, 50, 75, 95, 99, 100} {
		if a.Quantile(p) != whole.Quantile(p) {
			t.Errorf("p%d: merged %v, whole %v", p, a.Quantile(p), whole.Quantile(p))
		}
	}

	// Merging into an empty histogram copies min/max exactly.
	var empty Histogram
	empty.Merge(&whole)
	if empty.Min() != whole.Min() || empty.Max() != whole.Max() {
		t.Errorf("empty-merge min/max wrong: %v/%v", empty.Min(), empty.Max())
	}
}

// TestHistMergeGeometryMismatch: merging histograms with different
// sub-bucket resolutions used to fold counts into the wrong decades
// silently; it must panic instead. An empty default-geometry receiver
// (the registry's zero value) still adopts the argument's geometry.
func TestHistMergeGeometryMismatch(t *testing.T) {
	coarse := NewHistogram(4)
	fine := NewHistogram(16)
	coarse.Observe(3 * time.Millisecond)
	fine.Observe(5 * time.Millisecond)

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: mismatched geometry did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Merge fine into coarse", func() { coarse.Merge(fine) })
	mustPanic("Merge coarse into fine", func() { fine.Merge(coarse) })
	snap := *fine
	mustPanic("Delta across geometries", func() { coarse.Delta(&snap) })

	// A zero-value (default-geometry) empty receiver adopts the
	// argument's geometry rather than panicking — registry folds start
	// from zero values.
	var zero Histogram
	zero.Merge(coarse)
	if zero.Count() != 1 || zero.Quantile(50) != coarse.Quantile(50) {
		t.Errorf("empty zero-value merge: count=%d p50=%v, want 1/%v",
			zero.Count(), zero.Quantile(50), coarse.Quantile(50))
	}
	mustPanic("adopted geometry then mismatch", func() { zero.Merge(fine) })

	// Same-geometry non-default merges still work.
	c2 := NewHistogram(4)
	c2.Observe(7 * time.Millisecond)
	coarse.Merge(c2)
	if coarse.Count() != 2 {
		t.Errorf("same-geometry merge count = %d, want 2", coarse.Count())
	}
}

// TestHistDelta: a snapshot copy plus Delta recovers exactly the
// observations made in between, with bucket-identical quantiles and
// bucket-derived (lane-order-independent) min/max.
func TestHistDelta(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	snap := h // plain struct copy is the snapshot
	var want Histogram
	for i := 101; i <= 250; i++ {
		d := time.Duration(i*i) * time.Microsecond
		h.Observe(d)
		want.Observe(d)
	}
	delta := h.Delta(&snap)
	if delta.Count() != want.Count() || delta.Sum() != want.Sum() {
		t.Fatalf("delta count/sum = %d/%v, want %d/%v",
			delta.Count(), delta.Sum(), want.Count(), want.Sum())
	}
	for _, p := range []int{50, 95, 99} {
		if delta.Quantile(p) > want.Quantile(p)+want.Quantile(p)/8 ||
			delta.Quantile(p) < want.Quantile(p)-want.Quantile(p)/8 {
			t.Errorf("delta p%d = %v, want ~%v", p, delta.Quantile(p), want.Quantile(p))
		}
	}
	// Min/max are bucket bounds, not exact extremes: still ordered and
	// covering.
	if delta.Min() > delta.Max() || delta.Max() < want.Max() {
		t.Errorf("delta min/max = %v/%v, want max ≥ %v", delta.Min(), delta.Max(), want.Max())
	}
	// An idle interval deltas to empty.
	idle := h
	if d := h.Delta(&idle); d.Count() != 0 {
		t.Errorf("idle delta count = %d, want 0", d.Count())
	}
}

// TestHistCountAtMost: the good/bad split the SLO monitor uses is
// bucket-granular and exact at bucket upper bounds.
func TestHistCountAtMost(t *testing.T) {
	var h Histogram
	for i := 1; i <= 64; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.CountAtMost(-1); got != 0 {
		t.Errorf("CountAtMost(-1) = %d", got)
	}
	if got := h.CountAtMost(time.Hour); got != 64 {
		t.Errorf("CountAtMost(1h) = %d, want 64", got)
	}
	// At a quantile (a bucket upper bound) the count covers at least the
	// nearest rank, and never exceeds the total.
	p95 := h.Quantile(95)
	got := h.CountAtMost(p95)
	if got < 61 || got > 64 {
		t.Errorf("CountAtMost(p95=%v) = %d, want ~61..64", p95, got)
	}
	// Monotonic in the threshold.
	if h.CountAtMost(10*time.Millisecond) > h.CountAtMost(20*time.Millisecond) {
		t.Error("CountAtMost not monotonic")
	}
}
