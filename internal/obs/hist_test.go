package obs

import (
	"math"
	"testing"
	"time"
)

// TestHistSingleSample: the p99 of one observation is that observation,
// exactly — the max clamp must cancel the bucket's rounding-up.
func TestHistSingleSample(t *testing.T) {
	var h Histogram
	d := 137 * time.Millisecond
	h.Observe(d)
	for _, p := range []int{1, 50, 95, 99, 100} {
		if got := h.Quantile(p); got != d {
			t.Errorf("p%d of single sample = %v, want %v", p, got, d)
		}
	}
	if h.Count() != 1 || h.Sum() != d || h.Min() != d || h.Max() != d {
		t.Errorf("single-sample stats wrong: count=%d sum=%v min=%v max=%v",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
}

// TestHistBelowFirstDecades: values at or below the linear head of the
// bucket scale (including zero and negative clamped to bucket 0) report
// exactly.
func TestHistBelowFirstDecades(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{0, 1, 3, 15} {
		h.Observe(d)
	}
	if h.Min() != 0 || h.Max() != 15 {
		t.Errorf("min=%v max=%v", h.Min(), h.Max())
	}
	// Sub-16ns values index linearly, so each quantile is exact.
	if got := h.Quantile(25); got != 0 {
		t.Errorf("p25 = %v, want 0", got)
	}
	if got := h.Quantile(50); got != 1 {
		t.Errorf("p50 = %v, want 1ns", got)
	}
	if got := h.Quantile(75); got != 3 {
		t.Errorf("p75 = %v, want 3ns", got)
	}
	if got := h.Quantile(100); got != 15 {
		t.Errorf("p100 = %v, want 15ns", got)
	}

	// A negative duration (clock skew upstream) folds into bucket 0
	// rather than a panic or a wild index; quantiles report the bucket
	// bound (0) while Min stays exact.
	var n Histogram
	n.Observe(-time.Second)
	if got := n.Quantile(99); got != 0 {
		t.Errorf("negative sample p99 = %v, want bucket-0 bound 0", got)
	}
	if n.Min() != -time.Second {
		t.Errorf("negative sample min = %v", n.Min())
	}
}

// TestHistOverflowBucket: a duration near the top of the int64 range
// lands in the last decade and quantiles clamp to the exact max.
func TestHistOverflowBucket(t *testing.T) {
	var h Histogram
	huge := time.Duration(math.MaxInt64 - 7)
	h.Observe(time.Millisecond)
	h.Observe(huge)
	if got := h.Quantile(99); got != huge {
		t.Errorf("p99 = %v, want exact max %v", got, huge)
	}
	if got := h.Quantile(1); got < time.Millisecond || got > time.Millisecond+time.Millisecond/10 {
		t.Errorf("p1 = %v, want ~1ms bucket edge", got)
	}
	if h.Max() != huge {
		t.Errorf("max = %v", h.Max())
	}
}

// TestBucketMonotonic sweeps the bucket math: indices never decrease with
// the value, the upper bound always covers the value, and the relative
// rounding error stays within one sub-bucket (~1/16 of a decade).
func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for _, v := range sweepDurations() {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
		ub := upperBound(idx)
		if ub < v {
			t.Fatalf("upperBound(bucketOf(%d)) = %d < value", v, ub)
		}
		if v >= 32 { // past the linear head the bound is within 1/16
			if float64(ub-v) > float64(v)/8 {
				t.Fatalf("bound %d too loose for %d", ub, v)
			}
		}
	}
}

func sweepDurations() []time.Duration {
	var out []time.Duration
	for v := time.Duration(0); v < 200; v++ {
		out = append(out, v)
	}
	for e := uint(8); e < 62; e++ {
		base := time.Duration(1) << e
		out = append(out, base-1, base, base+base/16, base+base/3, base+base/2)
	}
	return out
}

// TestHistMerge: merging two halves equals observing everything in one
// histogram — bucket for bucket.
func TestHistMerge(t *testing.T) {
	var whole, a, b Histogram
	for i := 0; i < 500; i++ {
		d := time.Duration(i*i) * time.Microsecond
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	a.Merge(nil)          // no-op
	a.Merge(&Histogram{}) // empty no-op
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged stats diverge: count %d/%d sum %v/%v",
			a.Count(), whole.Count(), a.Sum(), whole.Sum())
	}
	for _, p := range []int{1, 25, 50, 75, 95, 99, 100} {
		if a.Quantile(p) != whole.Quantile(p) {
			t.Errorf("p%d: merged %v, whole %v", p, a.Quantile(p), whole.Quantile(p))
		}
	}

	// Merging into an empty histogram copies min/max exactly.
	var empty Histogram
	empty.Merge(&whole)
	if empty.Min() != whole.Min() || empty.Max() != whole.Max() {
		t.Errorf("empty-merge min/max wrong: %v/%v", empty.Min(), empty.Max())
	}
}
