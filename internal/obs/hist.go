package obs

import (
	"math/bits"
	"time"
)

// Histogram folds durations into a bounded log-linear histogram so a
// streaming replay can report percentiles over a million-query day
// without retaining a million samples. Each power-of-two decade is split
// into histSub linear sub-buckets, so a reported percentile is the upper
// edge of a bucket at most 1/histSub of its decade wide — within ~6% of
// the exact nearest-rank value, deterministically. Count, sum, min and
// max are exact. Histograms merge by bucket-wise addition, so per-lane
// accounts combine losslessly.
//
// This is the serving layer's latency histogram (it began life in
// internal/serve); the serving reports and the metrics registry share
// the one implementation so their percentiles agree bucket for bucket.
type Histogram struct {
	count    int
	sum      time.Duration
	min, max time.Duration
	buckets  [64 * histSub]int
}

const histSub = 16

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	v := uint64(d)
	if d <= 0 {
		return 0
	}
	e := bits.Len64(v) // v in [2^(e-1), 2^e)
	if e <= 4 {
		// The first decades are narrower than histSub; index linearly.
		return int(v)
	}
	sub := (v - 1<<(e-1)) >> (uint(e) - 5) // 16 linear sub-buckets
	return e*histSub + int(sub)
}

// upperBound returns the largest duration a bucket can hold — the value
// a percentile falling in that bucket reports.
func upperBound(idx int) time.Duration {
	if idx < histSub {
		return time.Duration(idx)
	}
	e := idx / histSub
	sub := idx % histSub
	width := uint64(1) << (uint(e) - 5)
	return time.Duration(uint64(1)<<(e-1) + uint64(sub+1)*width - 1)
}

// Observe folds one duration into the histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return h.count }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Min returns the exact minimum observation (0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the exact maximum observation (0 when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the nearest-rank p-th percentile's bucket upper
// bound, clamped to the exact observed maximum.
func (h *Histogram) Quantile(p int) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := (p*h.count + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			ub := upperBound(i)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// Merge adds another histogram's observations bucket-wise; count, sum,
// min and max stay exact.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.buckets {
		if c != 0 {
			h.buckets[i] += c
		}
	}
}
