package obs

import (
	"fmt"
	"math/bits"
	"time"
)

// Histogram folds durations into a bounded log-linear histogram so a
// streaming replay can report percentiles over a million-query day
// without retaining a million samples. Each power-of-two decade is split
// into linear sub-buckets (histSub by default, configurable via
// NewHistogram), so a reported percentile is the upper edge of a bucket
// at most 1/sub of its decade wide — within ~6% of the exact
// nearest-rank value at the default resolution, deterministically.
// Count, sum, min and max are exact. Histograms merge by bucket-wise
// addition, so per-lane accounts combine losslessly — but only between
// identical bucket geometries: Merge panics on a sub-bucket mismatch
// rather than silently folding counts into the wrong decades.
//
// This is the serving layer's latency histogram (it began life in
// internal/serve); the serving reports and the metrics registry share
// the one implementation so their percentiles agree bucket for bucket.
type Histogram struct {
	count    int
	sum      time.Duration
	min, max time.Duration
	// sub is the linear sub-bucket count per decade; the zero value
	// means histSub, so a zero Histogram is ready to use.
	sub     int
	lo, hi  int // nonzero bucket index bounds, valid when count > 0
	buckets [64 * histSub]int
}

const histSub = 16

// NewHistogram returns a histogram with sub linear sub-buckets per
// power-of-two decade. sub must be a power of two in [1, 16]; coarser
// resolutions trade percentile precision for cheaper delta scans. The
// zero Histogram value is equivalent to NewHistogram(16).
func NewHistogram(sub int) *Histogram {
	if sub <= 0 || sub > histSub || sub&(sub-1) != 0 {
		panic(fmt.Sprintf("obs: NewHistogram: sub-bucket count %d is not a power of two in [1, %d]", sub, histSub))
	}
	return &Histogram{sub: sub}
}

// subdiv resolves the configured geometry; 0 (the zero value) means the
// default histSub resolution.
func (h *Histogram) subdiv() int {
	if h.sub == 0 {
		return histSub
	}
	return h.sub
}

// bucketOf maps a duration to its bucket index under a sub-buckets-per-
// decade geometry.
func bucketOf(d time.Duration, sub int) int {
	v := uint64(d)
	if d <= 0 {
		return 0
	}
	e := bits.Len64(v)                // v in [2^(e-1), 2^e)
	sb := bits.Len64(uint64(sub)) - 1 // log2(sub)
	if e <= sb {
		// The first decades are narrower than sub; index linearly.
		return int(v)
	}
	s := (v - 1<<(e-1)) >> (uint(e - 1 - sb)) // sub linear sub-buckets
	return e*sub + int(s)
}

// upperBound returns the largest duration a bucket can hold — the value
// a percentile falling in that bucket reports.
func upperBound(idx, sub int) time.Duration {
	if idx < sub {
		return time.Duration(idx)
	}
	sb := bits.Len64(uint64(sub)) - 1
	e := idx / sub
	s := idx % sub
	width := uint64(1) << uint(e-1-sb)
	return time.Duration(uint64(1)<<(e-1) + uint64(s+1)*width - 1)
}

// Observe folds one duration into the histogram.
func (h *Histogram) Observe(d time.Duration) {
	idx := bucketOf(d, h.subdiv())
	if h.count == 0 {
		h.min, h.lo, h.hi = d, idx, idx
	} else {
		if d < h.min {
			h.min = d
		}
		if idx < h.lo {
			h.lo = idx
		}
		if idx > h.hi {
			h.hi = idx
		}
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[idx]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return h.count }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Min returns the exact minimum observation (0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the exact maximum observation (0 when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the nearest-rank p-th percentile's bucket upper
// bound, clamped to the exact observed maximum.
func (h *Histogram) Quantile(p int) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := (p*h.count + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	sub := h.subdiv()
	seen := 0
	for i := h.lo; i <= h.hi; i++ {
		seen += h.buckets[i]
		if seen >= rank {
			ub := upperBound(i, sub)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// CountAtMost returns the number of observations in buckets whose upper
// bound is at most d. The answer is bucket-granular — observations that
// share d's bucket but exceed it are excluded along with the rest of the
// bucket — which keeps windowed SLO good/bad splits deterministic across
// replay modes. Passing a bucket upper bound (e.g. a Quantile result)
// counts that bucket in full.
func (h *Histogram) CountAtMost(d time.Duration) int {
	if h.count == 0 || d < 0 {
		return 0
	}
	sub := h.subdiv()
	lim := bucketOf(d, sub)
	if upperBound(lim, sub) > d {
		lim--
	}
	if lim > h.hi {
		lim = h.hi
	}
	n := 0
	for i := h.lo; i <= lim; i++ {
		n += h.buckets[i]
	}
	return n
}

// Delta returns the histogram of observations recorded since prev, an
// earlier snapshot (plain struct copy) of the same histogram. Count and
// sum are exact differences; min and max are bucket-derived (the lowest
// and highest nonzero delta bucket's upper bound) so that windowed
// percentiles depend only on bucket contents, never on which replay lane
// happened to observe the extremes first. Panics if the geometries
// differ.
func (h *Histogram) Delta(prev *Histogram) Histogram {
	if prev == nil || prev.count == 0 {
		return *h
	}
	if h.subdiv() != prev.subdiv() {
		panic(fmt.Sprintf("obs: Histogram.Delta: mismatched bucket geometry (%d vs %d sub-buckets per decade)", h.subdiv(), prev.subdiv()))
	}
	d := Histogram{sub: h.sub, count: h.count - prev.count, sum: h.sum - prev.sum}
	if d.count <= 0 {
		return Histogram{sub: h.sub}
	}
	first := true
	for i := h.lo; i <= h.hi; i++ {
		c := h.buckets[i]
		if i >= prev.lo && i <= prev.hi {
			c -= prev.buckets[i]
		}
		if c == 0 {
			continue
		}
		d.buckets[i] = c
		if first {
			d.lo, first = i, false
		}
		d.hi = i
	}
	sub := h.subdiv()
	d.min = upperBound(d.lo, sub)
	d.max = upperBound(d.hi, sub)
	return d
}

// Merge adds another histogram's observations bucket-wise; count, sum,
// min and max stay exact. The bucket geometries must match: merging a
// 4-sub-bucket histogram into a 16-sub-bucket one would scatter its
// counts across the wrong decades, so Merge panics instead (an empty
// default-geometry receiver adopts the argument's geometry first, which
// keeps registry folds over zero-value histograms working).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 && h.sub == 0 {
		h.sub = o.sub
	}
	if h.subdiv() != o.subdiv() {
		panic(fmt.Sprintf("obs: Histogram.Merge: mismatched bucket geometry (%d vs %d sub-buckets per decade)", h.subdiv(), o.subdiv()))
	}
	if h.count == 0 {
		h.min, h.lo, h.hi = o.min, o.lo, o.hi
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.lo < h.lo {
			h.lo = o.lo
		}
		if o.hi > h.hi {
			h.hi = o.hi
		}
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := o.lo; i <= o.hi; i++ {
		if c := o.buckets[i]; c != 0 {
			h.buckets[i] += c
		}
	}
}
