package collective

import "time"

// Op identifies a collective operation for the analytic model.
type Op int

const (
	OpBarrier Op = iota
	OpBroadcast
	OpReduce
	OpAllreduce
	OpScatter
	OpGather
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpBarrier:
		return "barrier"
	case OpBroadcast:
		return "broadcast"
	case OpReduce:
		return "reduce"
	case OpAllreduce:
		return "allreduce"
	case OpScatter:
		return "scatter"
	case OpGather:
		return "gather"
	default:
		return "op?"
	}
}

// Traits summarises a channel's communication characteristics for the
// analytic model — the alpha/beta terms of the classic collective cost
// formulas, in the channel's own units.
type Traits struct {
	// PerMsg is the end-to-end per-message latency (the alpha term):
	// push+pop round trips for the memory store, publish+delivery+receive
	// for pub-sub, put+list+get for object storage.
	PerMsg time.Duration
	// BytesPerSec is the effective per-transfer bandwidth (1/beta).
	BytesPerSec float64
	// Fan is the sender-side transfer concurrency (the worker's thread
	// pool, or the hybrid bulk fanout): a root pushing P-1 messages pays
	// ceil((P-1)/Fan) serialized rounds.
	Fan int
	// CostPerMsg is the billed dollars per message (0 for provisioned
	// stores, whose cost is node-hours independent of traffic).
	CostPerMsg float64
}

// Estimate is the analytic prediction for one collective call.
type Estimate struct {
	// Rounds is the number of serialized communication steps on the
	// critical path.
	Rounds int
	// Messages is the total message count across all ranks.
	Messages int64
	// Bytes is the total payload volume across all ranks.
	Bytes int64
	// Latency is the critical-path latency.
	Latency time.Duration
	// Cost is Messages priced at the channel's per-message rate.
	Cost float64
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		b = 1
	}
	return (a + b - 1) / b
}

// xfer returns the transfer time of n bytes at the traits' bandwidth.
func (tr Traits) xfer(n int64) time.Duration {
	if tr.BytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / tr.BytesPerSec * float64(time.Second))
}

// EstimateOp predicts latency, message count and bytes for one collective
// call: operation op over p ranks, each contributing msgBytes, on a
// channel with the given traits. The formulas mirror the implementations
// in this package: the flat root drains P-1 inbox values sequentially and
// fans out over its thread pool; the tree runs ceil(log2 P) rounds with
// subtree payloads doubling toward the root; the ring runs P-1 concurrent
// neighbour rounds (allreduce) or an accumulating chain (rooted ops).
func EstimateOp(op Op, alg Algorithm, p int, msgBytes int64, tr Traits) Estimate {
	if p <= 1 {
		return Estimate{}
	}
	if alg == AutoAlgo {
		alg = Pick(op, p, msgBytes, tr)
	}
	alpha := tr.PerMsg
	m := msgBytes
	n := int64(p)
	full := n * m // the combined result an allreduce broadcasts
	var e Estimate
	switch alg {
	case Tree:
		r := log2ceil(p)
		up := Estimate{
			Rounds:   r,
			Messages: n - 1,
			// Sum of subtree payloads over all non-root senders.
			Bytes:   m * n * int64(r) / 2,
			Latency: time.Duration(r)*alpha + tr.xfer(m*(n-1)),
		}
		down := func(payload int64) Estimate {
			return Estimate{
				Rounds:   r,
				Messages: n - 1,
				Bytes:    payload * (n - 1),
				Latency:  time.Duration(r) * (alpha + tr.xfer(payload)),
			}
		}
		switch op {
		case OpBarrier:
			e = addEst(Estimate{Rounds: up.Rounds, Messages: up.Messages, Latency: time.Duration(r) * alpha}, down(0))
		case OpBroadcast:
			e = down(m)
		case OpReduce, OpGather:
			e = up
		case OpAllreduce:
			e = addEst(up, down(full))
		case OpScatter:
			// Store-and-forward part routing: total messages are the sum
			// of subtree sizes; the critical path is the root peeling its
			// largest child bundle plus the depth of the tree.
			e = Estimate{
				Rounds:   r,
				Messages: n * int64(r) / 2,
				Bytes:    m * n * int64(r) / 2,
				Latency:  time.Duration(ceilDiv(p-1, maxInt(tr.Fan, 1)))*alpha + time.Duration(r)*tr.xfer(m),
			}
		}
	case Ring:
		switch op {
		case OpBarrier:
			e = Estimate{
				Rounds:   2 * (p - 1),
				Messages: 2 * (n - 1),
				Latency:  time.Duration(2*(p-1)) * alpha,
			}
		case OpBroadcast:
			e = Estimate{
				Rounds:   p - 1,
				Messages: n - 1,
				Bytes:    m * (n - 1),
				Latency:  time.Duration(p-1) * (alpha + tr.xfer(m)),
			}
		case OpReduce, OpGather:
			// The chain payload grows toward the root: hop k carries
			// k contributions.
			e = Estimate{
				Rounds:   p - 1,
				Messages: n - 1,
				Bytes:    m * n * (n - 1) / 2,
				Latency:  time.Duration(p-1)*alpha + tr.xfer(m*n*(n-1)/2),
			}
		case OpAllreduce:
			// Pass-around: every rank sends one contribution per round,
			// all ranks concurrently.
			e = Estimate{
				Rounds:   p - 1,
				Messages: n * (n - 1),
				Bytes:    m * n * (n - 1),
				Latency:  time.Duration(p-1) * (alpha + tr.xfer(m)),
			}
		case OpScatter:
			e = Estimate{
				Rounds:   p - 1,
				Messages: n * (n - 1) / 2,
				Bytes:    m * n * (n - 1) / 2,
				Latency:  time.Duration(p-1)*alpha + tr.xfer(m*(n-1)),
			}
		}
	default: // Flat
		fan := maxInt(tr.Fan, 1)
		// Root-side sequential inbox drain (gather) and thread-pooled
		// fan-out (broadcast/scatter).
		gatherLat := time.Duration(p-1) * (alpha + tr.xfer(m))
		fanLat := func(payload int64) time.Duration {
			return time.Duration(ceilDiv(p-1, fan)) * (alpha + tr.xfer(payload))
		}
		switch op {
		case OpBarrier:
			e = Estimate{
				Rounds:   2,
				Messages: 2 * (n - 1),
				Latency:  time.Duration(p-1)*alpha + time.Duration(ceilDiv(p-1, fan))*alpha,
			}
		case OpBroadcast, OpScatter:
			e = Estimate{Rounds: 1, Messages: n - 1, Bytes: m * (n - 1), Latency: fanLat(m)}
		case OpReduce, OpGather:
			e = Estimate{Rounds: 1, Messages: n - 1, Bytes: m * (n - 1), Latency: gatherLat}
		case OpAllreduce:
			e = Estimate{
				Rounds:   2,
				Messages: 2 * (n - 1),
				Bytes:    m*(n-1) + full*(n-1),
				Latency:  gatherLat + fanLat(full),
			}
		}
	}
	e.Cost = float64(e.Messages) * tr.CostPerMsg
	return e
}

func addEst(a, b Estimate) Estimate {
	return Estimate{
		Rounds:   a.Rounds + b.Rounds,
		Messages: a.Messages + b.Messages,
		Bytes:    a.Bytes + b.Bytes,
		Latency:  a.Latency + b.Latency,
		Cost:     a.Cost + b.Cost,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Pick resolves AutoAlgo: the analytically fastest concrete topology for
// the call, with Flat winning ties so small deployments keep the paper's
// original pattern.
func Pick(op Op, p int, msgBytes int64, tr Traits) Algorithm {
	// At P<=2 every topology degenerates to the same neighbour exchange;
	// keep the flat path rather than chase formula noise.
	if p <= 2 {
		return Flat
	}
	best := Flat
	bestLat := EstimateOp(op, Flat, p, msgBytes, tr).Latency
	for _, alg := range []Algorithm{Tree, Ring} {
		if lat := EstimateOp(op, alg, p, msgBytes, tr).Latency; lat < bestLat {
			best, bestLat = alg, lat
		}
	}
	return best
}
