package collective

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"fsdinference/internal/wire"
)

// memBus is an in-process Link transport: tagged mailboxes with blocking
// take, mirroring the channels' semantics (deliver skipped for empty row
// sets, completion tracked regardless).
type memBus struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    map[string][]*wire.RowSet
}

func newMemBus() *memBus {
	b := &memBus{q: make(map[string][]*wire.RowSet)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func busKey(op string, round, src, target int) string {
	return fmt.Sprintf("%s:%d:%d:%d", op, round, src, target)
}

func (b *memBus) put(op string, round, src, target int, rs *wire.RowSet) {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := busKey(op, round, src, target)
	b.q[k] = append(b.q[k], rs)
	b.cond.Broadcast()
}

func (b *memBus) take(op string, round, src, target int) *wire.RowSet {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := busKey(op, round, src, target)
	for len(b.q[k]) == 0 {
		b.cond.Wait()
	}
	rs := b.q[k][0]
	b.q[k] = b.q[k][1:]
	return rs
}

type memLink struct {
	bus  *memBus
	rank int
	size int
}

func (l memLink) Rank() int { return l.rank }
func (l memLink) Size() int { return l.size }

func (l memLink) Send(op string, round, target int, rs *wire.RowSet) error {
	// Copy, as a real transport serializes: the sender may keep mutating
	// its accumulator.
	cp := wire.NewRowSet(rs.Batch)
	cp.IDs = append(cp.IDs, rs.IDs...)
	cp.Vals = append(cp.Vals, rs.Vals...)
	l.bus.put(op, round, l.rank, target, cp)
	return nil
}

func (l memLink) SendAll(op string, round int, targets []int, sets []*wire.RowSet) error {
	for i, t := range targets {
		if err := l.Send(op, round, t, sets[i]); err != nil {
			return err
		}
	}
	return nil
}

func (l memLink) Gather(op string, round int, sources []int, deliver func(src int, rs *wire.RowSet)) error {
	for _, s := range sources {
		rs := l.bus.take(op, round, s, l.rank)
		if deliver != nil && rs != nil && rs.Len() > 0 {
			deliver(s, rs)
		}
	}
	return nil
}

// runRanks executes body concurrently on every rank and returns the
// per-rank results.
func runRanks(t *testing.T, p int, body func(lk Link) (*wire.RowSet, error)) []*wire.RowSet {
	t.Helper()
	bus := newMemBus()
	results := make([]*wire.RowSet, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[r], errs[r] = body(memLink{bus: bus, rank: r, size: p})
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results
}

// contribution builds rank r's disjoint row set: row id r with value r+1.
func contribution(r, batch int) *wire.RowSet {
	rs := wire.NewRowSet(batch)
	vals := make([]float32, batch)
	for i := range vals {
		vals[i] = float32(r + 1)
	}
	rs.Add(int32(r), vals)
	return rs
}

// ids returns the sorted row ids of a set (nil-safe).
func ids(rs *wire.RowSet) []int {
	if rs == nil {
		return nil
	}
	out := make([]int, 0, rs.Len())
	for _, id := range rs.IDs {
		out = append(out, int(id))
	}
	sort.Ints(out)
	return out
}

func wantAll(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllreduceAllAlgorithmsAllRanks(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, p := range []int{1, 2, 3, 8, 33} {
			t.Run(fmt.Sprintf("%v/p=%d", alg, p), func(t *testing.T) {
				c := For(alg)
				results := runRanks(t, p, func(lk Link) (*wire.RowSet, error) {
					return c.Allreduce(lk, contribution(lk.Rank(), 2), Union)
				})
				for r, rs := range results {
					if got := ids(rs); !eqInts(got, wantAll(p)) {
						t.Fatalf("rank %d got rows %v, want %v", r, got, wantAll(p))
					}
					// Row values must survive the trip intact.
					for i := 0; i < rs.Len(); i++ {
						if want := float32(rs.IDs[i] + 1); rs.Row(i)[0] != want {
							t.Fatalf("rank %d row %d value %v, want %v", r, rs.IDs[i], rs.Row(i)[0], want)
						}
					}
				}
			})
		}
	}
}

func TestReduceAndGatherAtRoot(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, root := range []int{0, 2} {
			t.Run(fmt.Sprintf("%v/root=%d", alg, root), func(t *testing.T) {
				c := For(alg)
				p := 5
				results := runRanks(t, p, func(lk Link) (*wire.RowSet, error) {
					return c.Gather(lk, root, contribution(lk.Rank(), 1))
				})
				if got := ids(results[root]); !eqInts(got, wantAll(p)) {
					t.Fatalf("root got rows %v, want %v", got, wantAll(p))
				}
			})
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, alg := range Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			c := For(alg)
			p, root := 6, 1
			payload := contribution(41, 1)
			results := runRanks(t, p, func(lk Link) (*wire.RowSet, error) {
				var rs *wire.RowSet
				if lk.Rank() == root {
					rs = payload
				}
				return c.Broadcast(lk, root, rs)
			})
			for r, rs := range results {
				if rs == nil || rs.Len() != 1 || rs.IDs[0] != 41 {
					t.Fatalf("rank %d got %v, want row 41", r, ids(rs))
				}
			}
		})
	}
}

func TestScatter(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, p := range []int{2, 5, 8} {
			t.Run(fmt.Sprintf("%v/p=%d", alg, p), func(t *testing.T) {
				c := For(alg)
				root := 1 % p
				parts := make([]*wire.RowSet, p)
				for i := range parts {
					parts[i] = contribution(100+i, 1)
				}
				results := runRanks(t, p, func(lk Link) (*wire.RowSet, error) {
					var in []*wire.RowSet
					if lk.Rank() == root {
						in = parts
					}
					return c.Scatter(lk, root, in)
				})
				for r, rs := range results {
					if rs == nil || rs.Len() != 1 || int(rs.IDs[0]) != 100+r {
						t.Fatalf("rank %d got %v, want row %d", r, ids(rs), 100+r)
					}
				}
			})
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	for _, alg := range Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			c := For(alg)
			runRanks(t, 9, func(lk Link) (*wire.RowSet, error) {
				return nil, c.Barrier(lk)
			})
		})
	}
}

func TestEstimateRegimes(t *testing.T) {
	// Memory-store-like traits: fast small ops.
	tr := Traits{PerMsg: 600 * time.Microsecond, BytesPerSec: 1.25e9, Fan: 4}

	// Small-message allreduce at P=32: tree must beat flat, and the ring
	// must beat flat too (concurrent rounds vs the root's serial drain).
	p, m := 32, int64(1024)
	flatL := EstimateOp(OpAllreduce, Flat, p, m, tr).Latency
	treeL := EstimateOp(OpAllreduce, Tree, p, m, tr).Latency
	ringL := EstimateOp(OpAllreduce, Ring, p, m, tr).Latency
	if treeL >= flatL {
		t.Fatalf("tree allreduce %v not faster than flat %v at P=%d", treeL, flatL, p)
	}
	if ringL >= flatL {
		t.Fatalf("ring allreduce %v not faster than flat %v at P=%d", ringL, flatL, p)
	}
	if Pick(OpAllreduce, p, m, tr) == Flat {
		t.Fatalf("Pick kept flat for a P=32 allreduce")
	}

	// Large messages: the ring's per-round payload stays m while flat and
	// tree ship the P*m result, so ring wins the bandwidth regime.
	big := int64(16 << 20)
	if got := Pick(OpAllreduce, p, big, tr); got != Ring {
		t.Fatalf("Pick(%d MB allreduce) = %v, want ring", big>>20, got)
	}

	// Tiny deployments keep the paper's flat pattern.
	if got := Pick(OpAllreduce, 2, m, tr); got != Flat {
		t.Fatalf("Pick(P=2) = %v, want flat", got)
	}
	if got := Pick(OpBarrier, 2, 0, tr); got != Flat {
		t.Fatalf("Pick(P=2 barrier) = %v, want flat", got)
	}

	// Message-count accounting: ring allreduce is P(P-1), the others
	// 2(P-1).
	if got := EstimateOp(OpAllreduce, Ring, p, m, tr).Messages; got != int64(p*(p-1)) {
		t.Fatalf("ring allreduce messages = %d, want %d", got, p*(p-1))
	}
	if got := EstimateOp(OpAllreduce, Flat, p, m, tr).Messages; got != int64(2*(p-1)) {
		t.Fatalf("flat allreduce messages = %d, want %d", got, 2*(p-1))
	}
	if got := EstimateOp(OpAllreduce, Tree, p, m, tr).Messages; got != int64(2*(p-1)) {
		t.Fatalf("tree allreduce messages = %d, want %d", got, 2*(p-1))
	}
}
