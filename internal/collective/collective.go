// Package collective implements the communication collectives FSD workers
// run over their serverless channels — Barrier, Broadcast, Reduce,
// Allreduce, Scatter and Gather — in three topologies:
//
//   - flat: every rank exchanges directly with the root, the paper's
//     original pattern (§III-C3). O(P) messages funnel through the root's
//     inbox, which is the raw-speed ceiling at high worker counts.
//   - tree: binomial trees, ceil(log2 P) rounds. The latency winner for
//     small payloads, since no single inbox drains more than log P values.
//   - ring: chains and the classic pass-around allreduce, P-1 concurrent
//     rounds of neighbour exchanges. The bandwidth winner: no rank ever
//     sends more than its own contribution per round.
//
// Algorithms address peers through a Link — the tagged point-to-point
// transport a channel lends them — so every channel (queue, object,
// memory, hybrid) runs every topology unchanged. An analytic cost model
// (cost.go) predicts latency, message count and bytes per (operation,
// topology, P, payload, channel traits) so AutoAlgo can pick the topology
// per call the way cost.Recommend picks channels.
package collective

import (
	"fmt"

	"fsdinference/internal/wire"
)

// Algorithm selects a collective topology. The zero value is Flat, the
// paper's original root-funnelled pattern, so existing deployments keep
// their behaviour unless they opt in.
type Algorithm int

const (
	// Flat exchanges directly with the root (O(P) at the root's inbox).
	Flat Algorithm = iota
	// Tree uses binomial trees (ceil(log2 P) rounds).
	Tree
	// Ring uses chains and the pass-around allreduce (P-1 rounds of
	// neighbour exchanges).
	Ring
	// AutoAlgo resolves to the analytically cheapest topology per call
	// via Pick; it must be resolved before For.
	AutoAlgo
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Flat:
		return "flat"
	case Tree:
		return "tree"
	case Ring:
		return "ring"
	case AutoAlgo:
		return "auto"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists the concrete topologies (AutoAlgo resolves to one of
// these).
func Algorithms() []Algorithm { return []Algorithm{Flat, Tree, Ring} }

// Link is the tagged point-to-point transport a channel lends to the
// collective algorithms. Send ships one row set to a peer under an
// (op, round) tag; Gather blocks until every listed source has delivered
// one row set under the tag, invoking deliver per arrival. A transport
// may skip deliver for empty row sets — completion is tracked
// independently of delivery, so algorithms treat a missing delivery as an
// empty contribution.
type Link interface {
	Rank() int
	Size() int
	Send(op string, round int, target int, rs *wire.RowSet) error
	// SendAll ships one row set per target under a single (op, round) tag.
	// Transports fan the batch out with whatever concurrency they have
	// (thread pools, publish batches), so a flat root's P-1 sends do not
	// serialize.
	SendAll(op string, round int, targets []int, sets []*wire.RowSet) error
	Gather(op string, round int, sources []int, deliver func(src int, rs *wire.RowSet)) error
}

// Combiner folds one received contribution into the accumulator and
// returns the (possibly newly allocated) accumulator. dst may be nil.
type Combiner func(dst, src *wire.RowSet) *wire.RowSet

// Union appends src's rows to dst — the combiner for FSD's final reduce,
// where workers hold disjoint row ranges.
func Union(dst, src *wire.RowSet) *wire.RowSet {
	if src == nil || src.Len() == 0 {
		return dst
	}
	if dst == nil {
		dst = wire.NewRowSet(src.Batch)
	}
	dst.IDs = append(dst.IDs, src.IDs...)
	dst.Vals = append(dst.Vals, src.Vals...)
	return dst
}

// Collective is one topology's implementation of the collective
// operations. Reduce and Gather return the combined set at root and the
// rank's own (possibly partially combined) contribution elsewhere;
// Broadcast and Allreduce return the result at every rank. Empty payloads
// may come back nil.
type Collective interface {
	Algorithm() Algorithm
	Barrier(lk Link) error
	Broadcast(lk Link, root int, rs *wire.RowSet) (*wire.RowSet, error)
	Reduce(lk Link, root int, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error)
	Allreduce(lk Link, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error)
	Scatter(lk Link, root int, parts []*wire.RowSet) (*wire.RowSet, error)
	Gather(lk Link, root int, mine *wire.RowSet) (*wire.RowSet, error)
}

// For returns the implementation of a concrete algorithm. AutoAlgo must
// be resolved (Pick) first; unresolved it falls back to Flat.
func For(alg Algorithm) Collective {
	switch alg {
	case Tree:
		return tree{}
	case Ring:
		return ring{}
	default:
		return flat{}
	}
}

// Operation tags. Each public operation owns distinct tags so composites
// (allreduce = reduce + broadcast) and back-to-back operations in one run
// phase never collide on the transport's (op, round) keying.
const (
	opBarrierUp   = "bar"
	opBarrierDown = "bgo"
	opBroadcast   = "bc"
	opReduce      = "rd"
	opAllreduceUp = "ar"
	opAllreduceBc = "ab"
	opScatter     = "sc"
	opGather      = "gt"
)

// orEmpty substitutes an empty row set for nil, so transports always get
// a payload to frame.
func orEmpty(rs *wire.RowSet) *wire.RowSet {
	if rs == nil {
		return wire.NewRowSet(0)
	}
	return rs
}

// recvOne gathers exactly one tagged row set from src (nil if the payload
// was empty).
func recvOne(lk Link, op string, round, src int) (*wire.RowSet, error) {
	var got *wire.RowSet
	err := lk.Gather(op, round, []int{src}, func(_ int, rs *wire.RowSet) { got = rs })
	return got, err
}

// vrank maps a rank into root-relative virtual rank space, where the root
// is virtual rank 0.
func vrank(rank, root, p int) int { return (rank - root + p) % p }

// rankOf inverts vrank.
func rankOf(vr, root, p int) int { return (vr + root) % p }

// log2ceil returns ceil(log2 p) (0 for p <= 1).
func log2ceil(p int) int {
	r := 0
	for 1<<r < p {
		r++
	}
	return r
}

// ---------------------------------------------------------------- flat --

// flat is the paper's original pattern: every rank exchanges directly
// with the root.
type flat struct{}

func (flat) Algorithm() Algorithm { return Flat }

func (f flat) reduce(lk Link, op string, root int, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		return mine, nil
	}
	if r != root {
		return mine, lk.Send(op, 0, root, orEmpty(mine))
	}
	acc := mine
	srcs := make([]int, 0, p-1)
	for m := 0; m < p; m++ {
		if m != root {
			srcs = append(srcs, m)
		}
	}
	err := lk.Gather(op, 0, srcs, func(_ int, rs *wire.RowSet) {
		if combine != nil {
			acc = combine(acc, rs)
		}
	})
	return acc, err
}

func (f flat) broadcast(lk Link, op string, root int, rs *wire.RowSet) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		return rs, nil
	}
	if r == root {
		targets := make([]int, 0, p-1)
		sets := make([]*wire.RowSet, 0, p-1)
		for t := 0; t < p; t++ {
			if t == root {
				continue
			}
			targets = append(targets, t)
			sets = append(sets, orEmpty(rs))
		}
		if err := lk.SendAll(op, 0, targets, sets); err != nil {
			return nil, err
		}
		return rs, nil
	}
	return recvOne(lk, op, 0, root)
}

func (f flat) Barrier(lk Link) error {
	if _, err := f.reduce(lk, opBarrierUp, 0, nil, nil); err != nil {
		return err
	}
	_, err := f.broadcast(lk, opBarrierDown, 0, nil)
	return err
}

func (f flat) Broadcast(lk Link, root int, rs *wire.RowSet) (*wire.RowSet, error) {
	return f.broadcast(lk, opBroadcast, root, rs)
}

func (f flat) Reduce(lk Link, root int, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error) {
	return f.reduce(lk, opReduce, root, mine, combine)
}

func (f flat) Allreduce(lk Link, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error) {
	acc, err := f.reduce(lk, opAllreduceUp, 0, mine, combine)
	if err != nil {
		return nil, err
	}
	return f.broadcast(lk, opAllreduceBc, 0, acc)
}

func (f flat) Scatter(lk Link, root int, parts []*wire.RowSet) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		if len(parts) > r {
			return parts[r], nil
		}
		return nil, nil
	}
	if r == root {
		if len(parts) < p {
			return nil, fmt.Errorf("collective: scatter root holds %d parts, need %d", len(parts), p)
		}
		targets := make([]int, 0, p-1)
		sets := make([]*wire.RowSet, 0, p-1)
		for t := 0; t < p; t++ {
			if t == root {
				continue
			}
			targets = append(targets, t)
			sets = append(sets, orEmpty(parts[t]))
		}
		if err := lk.SendAll(opScatter, 0, targets, sets); err != nil {
			return nil, err
		}
		return parts[root], nil
	}
	return recvOne(lk, opScatter, 0, root)
}

func (f flat) Gather(lk Link, root int, mine *wire.RowSet) (*wire.RowSet, error) {
	return f.reduce(lk, opGather, root, mine, Union)
}

// ---------------------------------------------------------------- tree --

// tree uses binomial trees rooted (in virtual rank space) at the
// operation's root: ceil(log2 P) rounds, no inbox ever drains more than
// log P values.
type tree struct{}

func (tree) Algorithm() Algorithm { return Tree }

func (t tree) reduce(lk Link, op string, root int, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		return mine, nil
	}
	vr := vrank(r, root, p)
	acc := mine
	round := 0
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			// Partial subtree combined; hand it to the parent and stop.
			return acc, lk.Send(op, round, rankOf(vr-mask, root, p), orEmpty(acc))
		}
		if vr+mask < p {
			got, err := recvOne(lk, op, round, rankOf(vr+mask, root, p))
			if err != nil {
				return nil, err
			}
			if combine != nil && got != nil {
				acc = combine(acc, got)
			}
		}
		round++
	}
	return acc, nil
}

func (t tree) broadcast(lk Link, op string, root int, rs *wire.RowSet) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		return rs, nil
	}
	vr := vrank(r, root, p)
	cur := rs
	have := vr == 0
	round := 0
	for mask := 1 << (log2ceil(p) - 1); mask > 0; mask >>= 1 {
		switch {
		case !have && vr&mask != 0 && vr&(mask-1) == 0:
			// mask is my lowest set bit: my parent sends me the payload
			// in this round.
			got, err := recvOne(lk, op, round, rankOf(vr-mask, root, p))
			if err != nil {
				return nil, err
			}
			cur, have = got, true
		case have && vr&(2*mask-1) == 0 && vr+mask < p:
			if err := lk.Send(op, round, rankOf(vr+mask, root, p), orEmpty(cur)); err != nil {
				return nil, err
			}
		}
		round++
	}
	return cur, nil
}

func (t tree) Barrier(lk Link) error {
	if _, err := t.reduce(lk, opBarrierUp, 0, nil, nil); err != nil {
		return err
	}
	_, err := t.broadcast(lk, opBarrierDown, 0, nil)
	return err
}

func (t tree) Broadcast(lk Link, root int, rs *wire.RowSet) (*wire.RowSet, error) {
	return t.broadcast(lk, opBroadcast, root, rs)
}

func (t tree) Reduce(lk Link, root int, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error) {
	return t.reduce(lk, opReduce, root, mine, combine)
}

func (t tree) Allreduce(lk Link, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error) {
	acc, err := t.reduce(lk, opAllreduceUp, 0, mine, combine)
	if err != nil {
		return nil, err
	}
	return t.broadcast(lk, opAllreduceBc, 0, acc)
}

// Scatter routes each destination's part down the binomial tree,
// store-and-forward: every internal node first receives its subtree's
// bundle, then peels off each child subtree. Messages are tagged by
// destination virtual rank, so forwarded parts never collide.
func (t tree) Scatter(lk Link, root int, parts []*wire.RowSet) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		if len(parts) > r {
			return parts[r], nil
		}
		return nil, nil
	}
	vr := vrank(r, root, p)
	have := make(map[int]*wire.RowSet, p)
	if vr == 0 {
		if len(parts) < p {
			return nil, fmt.Errorf("collective: scatter root holds %d parts, need %d", len(parts), p)
		}
		for d := 0; d < p; d++ {
			have[d] = parts[rankOf(d, root, p)]
		}
	}
	for mask := 1 << (log2ceil(p) - 1); mask > 0; mask >>= 1 {
		switch {
		case vr&mask != 0 && vr&(mask-1) == 0:
			parent := rankOf(vr-mask, root, p)
			for d := vr; d < vr+mask && d < p; d++ {
				got, err := recvOne(lk, opScatter, d, parent)
				if err != nil {
					return nil, err
				}
				have[d] = got
			}
		case vr&(2*mask-1) == 0:
			child := rankOf(vr+mask, root, p)
			for d := vr + mask; d < vr+2*mask && d < p; d++ {
				if err := lk.Send(opScatter, d, child, orEmpty(have[d])); err != nil {
					return nil, err
				}
			}
		}
	}
	return have[vr], nil
}

func (t tree) Gather(lk Link, root int, mine *wire.RowSet) (*wire.RowSet, error) {
	return t.reduce(lk, opGather, root, mine, Union)
}

// ---------------------------------------------------------------- ring --

// ring uses chains (reduce, broadcast, scatter, gather) and the classic
// pass-around allreduce: P-1 rounds in which every rank forwards to its
// successor the contribution it received last round, so no rank ever
// sends more than one contribution per round — the bandwidth-optimal
// regime.
type ring struct{}

func (ring) Algorithm() Algorithm { return Ring }

// chainReduce folds contributions down the chain vr=P-1 -> ... -> vr=0
// (the root). Hop into vr-1 is tagged with vr, the hop index.
func (g ring) chainReduce(lk Link, op string, root int, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		return mine, nil
	}
	vr := vrank(r, root, p)
	acc := mine
	if vr < p-1 {
		got, err := recvOne(lk, op, vr+1, rankOf(vr+1, root, p))
		if err != nil {
			return nil, err
		}
		if combine != nil && got != nil {
			acc = combine(acc, got)
		}
	}
	if vr > 0 {
		return acc, lk.Send(op, vr, rankOf(vr-1, root, p), orEmpty(acc))
	}
	return acc, nil
}

// chainBroadcast forwards the payload up the chain vr=0 -> ... -> vr=P-1.
func (g ring) chainBroadcast(lk Link, op string, root int, rs *wire.RowSet) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		return rs, nil
	}
	vr := vrank(r, root, p)
	cur := rs
	if vr > 0 {
		got, err := recvOne(lk, op, vr, rankOf(vr-1, root, p))
		if err != nil {
			return nil, err
		}
		cur = got
	}
	if vr < p-1 {
		if err := lk.Send(op, vr+1, rankOf(vr+1, root, p), orEmpty(cur)); err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func (g ring) Barrier(lk Link) error {
	if _, err := g.chainReduce(lk, opBarrierUp, 0, nil, nil); err != nil {
		return err
	}
	_, err := g.chainBroadcast(lk, opBarrierDown, 0, nil)
	return err
}

func (g ring) Broadcast(lk Link, root int, rs *wire.RowSet) (*wire.RowSet, error) {
	return g.chainBroadcast(lk, opBroadcast, root, rs)
}

func (g ring) Reduce(lk Link, root int, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error) {
	return g.chainReduce(lk, opReduce, root, mine, combine)
}

// Allreduce is the pass-around ring: in round s every rank sends its
// predecessor-received contribution (its own in round 0) to its successor
// and folds what arrives. After P-1 rounds every rank has folded every
// contribution.
func (g ring) Allreduce(lk Link, mine *wire.RowSet, combine Combiner) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		return mine, nil
	}
	next, prev := (r+1)%p, (r-1+p)%p
	acc := mine
	hold := mine
	for s := 0; s < p-1; s++ {
		if err := lk.Send(opAllreduceUp, s, next, orEmpty(hold)); err != nil {
			return nil, err
		}
		got, err := recvOne(lk, opAllreduceUp, s, prev)
		if err != nil {
			return nil, err
		}
		if combine != nil && got != nil {
			acc = combine(acc, got)
		}
		hold = got
	}
	return acc, nil
}

// Scatter relays parts along the chain, store-and-forward: node vr
// receives the bundles destined for [vr, P-1] and forwards all but its
// own. Messages are tagged by destination virtual rank.
func (g ring) Scatter(lk Link, root int, parts []*wire.RowSet) (*wire.RowSet, error) {
	p, r := lk.Size(), lk.Rank()
	if p <= 1 {
		if len(parts) > r {
			return parts[r], nil
		}
		return nil, nil
	}
	vr := vrank(r, root, p)
	if vr == 0 {
		if len(parts) < p {
			return nil, fmt.Errorf("collective: scatter root holds %d parts, need %d", len(parts), p)
		}
		next := rankOf(1, root, p)
		for d := 1; d < p; d++ {
			if err := lk.Send(opScatter, d, next, orEmpty(parts[rankOf(d, root, p)])); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	var own *wire.RowSet
	prev, next := rankOf(vr-1, root, p), rankOf(vr+1, root, p)
	for d := vr; d < p; d++ {
		got, err := recvOne(lk, opScatter, d, prev)
		if err != nil {
			return nil, err
		}
		if d == vr {
			own = got
			continue
		}
		if err := lk.Send(opScatter, d, next, orEmpty(got)); err != nil {
			return nil, err
		}
	}
	return own, nil
}

func (g ring) Gather(lk Link, root int, mine *wire.RowSet) (*wire.RowSet, error) {
	return g.chainReduce(lk, opGather, root, mine, Union)
}
