package partition

import (
	"testing"

	"fsdinference/internal/model"
)

func testModel(t *testing.T, n, layers int) *model.Model {
	t.Helper()
	m, err := model.Generate(model.GraphChallengeSpec(n, layers, 1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBlockOwnerContiguousBalanced(t *testing.T) {
	m := testModel(t, 256, 2)
	p, err := BuildPlan(m, 5, Block, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Contiguity: owner must be non-decreasing.
	for v := 1; v < 256; v++ {
		if p.Owner[v] < p.Owner[v-1] {
			t.Fatalf("block owners not contiguous at %d", v)
		}
	}
	// Balance: sizes differ by at most 1.
	for w := 0; w < 5; w++ {
		if len(p.Rows[w]) < 256/5 || len(p.Rows[w]) > 256/5+1 {
			t.Fatalf("worker %d owns %d rows", w, len(p.Rows[w]))
		}
	}
}

func TestRandomOwnerBalanced(t *testing.T) {
	m := testModel(t, 300, 2)
	p, err := BuildPlan(m, 7, Random, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 7; w++ {
		if len(p.Rows[w]) < 300/7 || len(p.Rows[w]) > 300/7+1 {
			t.Fatalf("worker %d owns %d rows", w, len(p.Rows[w]))
		}
	}
	// Different from block: not contiguous.
	contiguous := true
	for v := 1; v < 300; v++ {
		if p.Owner[v] < p.Owner[v-1] {
			contiguous = false
			break
		}
	}
	if contiguous {
		t.Fatal("random placement produced contiguous blocks")
	}
}

func TestHGPBeatsRandomOnCommunication(t *testing.T) {
	// The Table III effect at test scale: HGP-DNN must transfer far fewer
	// activation rows than random placement.
	m := testModel(t, 512, 6)
	hgp, err := BuildPlan(m, 8, HGPDNN, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := BuildPlan(m, 8, Random, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh, sr := hgp.Stats(m), rp.Stats(m)
	if sh.RowTransfers*3 >= sr.RowTransfers {
		t.Fatalf("HGP transfers %d not at least 3x below RP %d", sh.RowTransfers, sr.RowTransfers)
	}
	if sh.NNZImbalance > 0.35 {
		t.Fatalf("HGP nnz imbalance %.3f too high", sh.NNZImbalance)
	}
}

func TestSendRecvMapsConsistent(t *testing.T) {
	m := testModel(t, 256, 4)
	for _, scheme := range []Scheme{Block, Random, HGPDNN} {
		p, err := BuildPlan(m, 6, scheme, Options{Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for k := 0; k < p.Layers; k++ {
			// Every send entry must appear in the target's recv list.
			for s := 0; s < p.Workers; s++ {
				for _, e := range p.Sends[k][s] {
					found := false
					for _, src := range p.Recvs[k][e.Target] {
						if src == int32(s) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%v layer %d: send %d->%d missing from recv map", scheme, k, s, e.Target)
					}
					if e.Target == int32(s) {
						t.Fatalf("%v layer %d: self-send at worker %d", scheme, k, s)
					}
					// Rows must be owned by the sender and sorted.
					for i, r := range e.Rows {
						if p.Owner[r] != int32(s) {
							t.Fatalf("%v layer %d: worker %d sends unowned row %d", scheme, k, s, r)
						}
						if i > 0 && e.Rows[i-1] >= r {
							t.Fatalf("%v layer %d: unsorted rows", scheme, k)
						}
					}
				}
			}
			// Every recv edge must have a matching send entry.
			for tgt := 0; tgt < p.Workers; tgt++ {
				for _, src := range p.Recvs[k][tgt] {
					if !p.SendsTo(k, src, int32(tgt)) {
						t.Fatalf("%v layer %d: recv %d<-%d has no send entry", scheme, k, tgt, src)
					}
				}
			}
		}
	}
}

func TestMapsCoverWeightDependencies(t *testing.T) {
	// For every nonzero W^k[i,j] with owner(i) != owner(j), row j must be
	// in owner(j)'s send list toward owner(i).
	m := testModel(t, 128, 3)
	p, err := BuildPlan(m, 4, HGPDNN, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range m.Layers {
		// Build a lookup of sent rows per (src, tgt).
		sent := make(map[[2]int32]map[int32]bool)
		for s := 0; s < p.Workers; s++ {
			for _, e := range p.Sends[k][s] {
				key := [2]int32{int32(s), e.Target}
				set := make(map[int32]bool, len(e.Rows))
				for _, r := range e.Rows {
					set[r] = true
				}
				sent[key] = set
			}
		}
		for i := 0; i < 128; i++ {
			wi := p.Owner[i]
			cols, _ := w.Row(i)
			for _, j := range cols {
				oj := p.Owner[j]
				if oj == wi {
					continue
				}
				set := sent[[2]int32{oj, wi}]
				if set == nil || !set[j] {
					t.Fatalf("layer %d: W[%d,%d] needs row %d from %d to %d but plan omits it",
						k, i, j, j, oj, wi)
				}
			}
		}
	}
}

func TestSingleWorkerPlanHasNoComm(t *testing.T) {
	m := testModel(t, 64, 3)
	p, err := BuildPlan(m, 1, Block, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats(m)
	if st.RowTransfers != 0 || st.Pairs != 0 {
		t.Fatalf("single-worker plan communicates: %+v", st)
	}
	if len(p.Rows[0]) != 64 {
		t.Fatalf("worker 0 owns %d rows", len(p.Rows[0]))
	}
}

func TestBuildPlanErrors(t *testing.T) {
	m := testModel(t, 64, 1)
	if _, err := BuildPlan(m, 0, Block, Options{}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := BuildPlan(m, 128, Block, Options{}); err == nil {
		t.Error("more workers than neurons accepted")
	}
	if _, err := BuildPlan(m, 2, Scheme(99), Options{}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestPlanDeterministic(t *testing.T) {
	m := testModel(t, 256, 3)
	for _, scheme := range []Scheme{Random, HGPDNN} {
		a, _ := BuildPlan(m, 6, scheme, Options{Seed: 9})
		b, _ := BuildPlan(m, 6, scheme, Options{Seed: 9})
		for v := range a.Owner {
			if a.Owner[v] != b.Owner[v] {
				t.Fatalf("%v: owners differ at %d", scheme, v)
			}
		}
	}
}

func TestMapBytesPositiveWhenCommunicating(t *testing.T) {
	m := testModel(t, 256, 3)
	p, _ := BuildPlan(m, 4, Random, Options{Seed: 1})
	var total int64
	for w := 0; w < 4; w++ {
		total += p.MapBytes(w)
	}
	if total <= 0 {
		t.Fatal("map bytes should be positive for a communicating plan")
	}
}

func TestSchemeString(t *testing.T) {
	if Block.String() != "Block" || Random.String() != "RP" || HGPDNN.String() != "HGP-DNN" {
		t.Fatal("scheme names wrong")
	}
}

func TestRowsSortedAndComplete(t *testing.T) {
	m := testModel(t, 200, 2)
	p, _ := BuildPlan(m, 7, HGPDNN, Options{Seed: 4})
	seen := make([]bool, 200)
	for w, rows := range p.Rows {
		for i, r := range rows {
			if i > 0 && rows[i-1] >= r {
				t.Fatalf("worker %d rows unsorted", w)
			}
			if seen[r] {
				t.Fatalf("row %d owned twice", r)
			}
			seen[r] = true
			if p.Owner[r] != int32(w) {
				t.Fatalf("row %d in worker %d list but owned by %d", r, w, p.Owner[r])
			}
		}
	}
	for r, s := range seen {
		if !s {
			t.Fatalf("row %d unowned", r)
		}
	}
}
