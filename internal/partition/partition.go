// Package partition produces the offline model partitionings FSD-Inference
// runs on (paper §II-C, §III). A Plan assigns every neuron (weight-matrix
// row) to one of P workers and precomputes, for every layer, the send and
// receive maps (Xsend, Xrecv) each worker needs: which activation rows it
// must ship to which targets, and which sources it will hear from.
//
// Three schemes are provided:
//
//   - Block: contiguous equal row blocks (the simple baseline),
//   - Random: the paper's RP baseline (PaToH random placement, Table III),
//   - HGPDNN: row-wise hypergraph partitioning adapted from Demirci &
//     Ferhatosmanoglu [12] — vertices are neurons weighted by their
//     row nonzeros, and each (layer, column) pair contributes a net
//     {column} ∪ {rows with a nonzero in that column}, so the
//     connectivity-1 objective counts exactly the activation-row transfers
//     the engine will perform.
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"fsdinference/internal/hypergraph"
	"fsdinference/internal/model"
)

// Scheme selects a partitioning strategy.
type Scheme int

const (
	// Block assigns contiguous row ranges.
	Block Scheme = iota
	// Random assigns rows to workers uniformly at random (balanced),
	// the paper's RP baseline.
	Random
	// HGPDNN uses multilevel hypergraph partitioning (the paper's
	// HGP-DNN).
	HGPDNN
)

// String returns the scheme name as used in the paper.
func (s Scheme) String() string {
	switch s {
	case Block:
		return "Block"
	case Random:
		return "RP"
	case HGPDNN:
		return "HGP-DNN"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Options controls plan construction.
type Options struct {
	// Seed drives random placement and partitioner tie-breaking.
	Seed int64
	// Eps is the hypergraph balance tolerance (default 0.05).
	Eps float64
}

// SendEntry lists the activation rows a worker must deliver to one target
// in one layer (a (P_n, x̄) tuple of the paper's Xsend map).
type SendEntry struct {
	Target int32
	Rows   []int32 // global neuron ids, sorted
}

// Plan is a complete offline partitioning of one model across P workers.
// Plans are computed a priori (not per request), matching the paper's
// offline PaToH post-processing of trained models.
type Plan struct {
	Scheme  Scheme
	Workers int
	Neurons int
	Layers  int

	// Owner maps neuron id to worker id.
	Owner []int32
	// Rows lists each worker's owned neuron ids, sorted.
	Rows [][]int32

	// Sends[k][m] lists, for weight layer k (0-based), the rows of the
	// layer-k input activations that worker m must send to each target.
	Sends [][][]SendEntry
	// Recvs[k][m] lists the source workers m expects layer-k data from,
	// sorted.
	Recvs [][][]int32
}

// BuildPlan partitions the model across the given worker count.
func BuildPlan(m *model.Model, workers int, scheme Scheme, opts Options) (*Plan, error) {
	n := m.Spec.Neurons
	if workers <= 0 {
		return nil, fmt.Errorf("partition: workers must be positive, got %d", workers)
	}
	if workers > n {
		return nil, fmt.Errorf("partition: %d workers exceed %d neurons", workers, n)
	}
	var owner []int32
	var err error
	switch scheme {
	case Block:
		owner = blockOwner(n, workers)
	case Random:
		owner = randomOwner(n, workers, opts.Seed)
	case HGPDNN:
		owner, err = hgpOwner(m, workers, opts)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("partition: unknown scheme %v", scheme)
	}
	p := &Plan{
		Scheme:  scheme,
		Workers: workers,
		Neurons: n,
		Layers:  len(m.Layers),
		Owner:   owner,
	}
	p.Rows = make([][]int32, workers)
	for v, o := range owner {
		p.Rows[o] = append(p.Rows[o], int32(v))
	}
	for _, rows := range p.Rows {
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	}
	p.buildMaps(m)
	return p, nil
}

func blockOwner(n, workers int) []int32 {
	owner := make([]int32, n)
	for v := range owner {
		// Even split with remainders spread over the first parts.
		owner[v] = int32(v * workers / n)
	}
	return owner
}

func randomOwner(n, workers int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	owner := make([]int32, n)
	for i, v := range perm {
		owner[v] = int32(i % workers) // balanced: round-robin over a shuffle
	}
	return owner
}

func hgpOwner(m *model.Model, workers int, opts Options) ([]int32, error) {
	n := m.Spec.Neurons
	vw := make([]int64, n)
	for _, w := range m.Layers {
		for r := 0; r < n; r++ {
			vw[r] += int64(w.RowNNZ(r))
		}
	}
	// One net per (layer, column-with-nonzeros): the column's owner pin
	// plus every row that reads it.
	var nets [][]int32
	var costs []int64
	for _, w := range m.Layers {
		colRows := make([][]int32, n)
		for r := 0; r < n; r++ {
			cols, _ := w.Row(r)
			for _, c := range cols {
				colRows[c] = append(colRows[c], int32(r))
			}
		}
		for c, rows := range colRows {
			if len(rows) == 0 {
				continue
			}
			pins := make([]int32, 0, len(rows)+1)
			pins = append(pins, int32(c))
			pins = append(pins, rows...)
			nets = append(nets, pins)
			costs = append(costs, 1)
		}
	}
	h, err := hypergraph.New(n, vw, nets, costs)
	if err != nil {
		return nil, fmt.Errorf("partition: building hypergraph: %w", err)
	}
	return hypergraph.Partition(h, workers, hypergraph.Options{Seed: opts.Seed, Eps: opts.Eps})
}

// buildMaps fills Sends and Recvs from the weight structure: at layer k,
// worker m needs activation row j for every nonzero column j of its row
// block, so j's owner sends it (once per target, service-side fan-out does
// the rest).
func (p *Plan) buildMaps(m *model.Model) {
	L := len(m.Layers)
	p.Sends = make([][][]SendEntry, L)
	p.Recvs = make([][][]int32, L)
	for k, w := range m.Layers {
		// colTargets[j] = distinct parts needing column j.
		colTargets := make([][]int32, p.Neurons)
		for r := 0; r < p.Neurons; r++ {
			part := p.Owner[r]
			cols, _ := w.Row(r)
			for _, c := range cols {
				ts := colTargets[c]
				found := false
				for _, t := range ts {
					if t == part {
						found = true
						break
					}
				}
				if !found {
					colTargets[c] = append(ts, part)
				}
			}
		}
		// sendRows[src][tgt] accumulates row ids.
		sendRows := make([][][]int32, p.Workers)
		for s := range sendRows {
			sendRows[s] = make([][]int32, p.Workers)
		}
		for j, targets := range colTargets {
			src := p.Owner[j]
			for _, t := range targets {
				if t != src {
					sendRows[src][t] = append(sendRows[src][t], int32(j))
				}
			}
		}
		p.Sends[k] = make([][]SendEntry, p.Workers)
		p.Recvs[k] = make([][]int32, p.Workers)
		for s := 0; s < p.Workers; s++ {
			for t := 0; t < p.Workers; t++ {
				rows := sendRows[s][t]
				if len(rows) == 0 {
					continue
				}
				sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
				p.Sends[k][s] = append(p.Sends[k][s], SendEntry{Target: int32(t), Rows: rows})
				p.Recvs[k][t] = append(p.Recvs[k][t], int32(s))
			}
		}
		for t := 0; t < p.Workers; t++ {
			srcs := p.Recvs[k][t]
			sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		}
	}
}

// Stats summarises a plan's communication and balance properties.
type Stats struct {
	// RowTransfers is the total number of activation-row transfers across
	// all layers (the connectivity-1 objective the partitioner minimises).
	RowTransfers int64
	// Pairs is the number of communicating (layer, source, target)
	// triples.
	Pairs int64
	// RowsPerPair is RowTransfers / Pairs.
	RowsPerPair float64
	// MaxRows and MinRows are the largest and smallest per-worker row
	// counts (load balance).
	MaxRows, MinRows int
	// NNZImbalance is max worker nnz over ideal, minus 1 (aggregated
	// across layers).
	NNZImbalance float64
}

// Stats computes plan statistics against its model.
func (p *Plan) Stats(m *model.Model) Stats {
	var st Stats
	for k := range p.Sends {
		for s := range p.Sends[k] {
			for _, e := range p.Sends[k][s] {
				st.RowTransfers += int64(len(e.Rows))
				st.Pairs++
			}
		}
	}
	if st.Pairs > 0 {
		st.RowsPerPair = float64(st.RowTransfers) / float64(st.Pairs)
	}
	st.MinRows = p.Neurons
	for _, rows := range p.Rows {
		if len(rows) > st.MaxRows {
			st.MaxRows = len(rows)
		}
		if len(rows) < st.MinRows {
			st.MinRows = len(rows)
		}
	}
	nnz := make([]int64, p.Workers)
	var total int64
	for _, w := range m.Layers {
		for r := 0; r < p.Neurons; r++ {
			c := int64(w.RowNNZ(r))
			nnz[p.Owner[r]] += c
			total += c
		}
	}
	var max int64
	for _, c := range nnz {
		if c > max {
			max = c
		}
	}
	if total > 0 {
		ideal := float64(total) / float64(p.Workers)
		st.NNZImbalance = float64(max)/ideal - 1
	}
	return st
}

// MapBytes estimates the serialized size of worker m's send/receive maps
// across all layers (loaded from object storage at startup).
func (p *Plan) MapBytes(worker int) int64 {
	var b int64
	for k := range p.Sends {
		for _, e := range p.Sends[k][worker] {
			b += 8 + int64(len(e.Rows))*4
		}
		b += int64(len(p.Recvs[k][worker])) * 8
	}
	return b
}

// SendsTo reports whether worker src sends to worker tgt at layer k.
func (p *Plan) SendsTo(k int, src, tgt int32) bool {
	for _, e := range p.Sends[k][src] {
		if e.Target == tgt {
			return true
		}
	}
	return false
}
