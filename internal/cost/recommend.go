package cost

import (
	"fmt"

	"fsdinference/internal/cloud/pricing"
)

// Channel names a communication-channel recommendation.
type Channel string

// Recommended channels (§IV-C).
const (
	ChannelSerial Channel = "FSD-Inf-Serial"
	ChannelQueue  Channel = "FSD-Inf-Queue"
	ChannelObject Channel = "FSD-Inf-Object"
)

// Workload describes an inference workload for a-priori channel selection.
type Workload struct {
	// ModelBytes is the raw serialized model size.
	ModelBytes int64
	// MemOverhead is the in-memory blowup factor of the runtime.
	MemOverhead float64
	// InstanceCapMB is the largest single-instance memory available.
	InstanceCapMB int
	// Workers is the intended parallelism P.
	Workers int
	// BytesPerPairPerLayer is the expected encoded communication volume
	// for one (source, target) pair in one layer.
	BytesPerPairPerLayer int64
	// PairsPerLayer is the number of communicating pairs per layer.
	PairsPerLayer int64
	// Layers is the layer count.
	Layers int
}

// FitsSingleInstance reports whether the model fits one FaaS instance.
func (w Workload) FitsSingleInstance() bool {
	return float64(w.ModelBytes)*w.MemOverhead <= float64(w.InstanceCapMB)*1024*1024
}

// comfortFactor is the fraction of the instance cap a model may occupy and
// still count as "comfortably" fitting (§IV-C): beyond it, activation
// buffers and runtime overheads make single-instance processing
// inefficient even when the weights technically fit, as the paper observes
// for N=16384.
const comfortFactor = 0.25

// FitsComfortably reports whether single-instance execution is the
// recommended regime for this model.
func (w Workload) FitsComfortably() bool {
	return float64(w.ModelBytes)*w.MemOverhead <= comfortFactor*float64(w.InstanceCapMB)*1024*1024
}

// Advice is a channel recommendation with its reasoning, following the
// paper's design recommendations (§IV-C): serial for models that fit one
// instance; queue while per-pair volumes stay within a few publish payloads
// (API requests ~1 OOM cheaper, up to 10 targets per publish, up to 10
// sources per poll); object storage once data volumes saturate
// pub-sub/queueing capacity.
type Advice struct {
	Channel Channel
	Reasons []string
}

// publishCapacity is the maximum payload of one publish (10 messages of up
// to 256 KB share a 256 KB batch budget, so effectively 256 KB per call).
const publishCapacity = 256 * 1024

// saturationChunks is the per-pair chunk count beyond which the queue
// channel's publish amplification makes object storage competitive; the
// paper observes multiple publishes per target emerging beyond N=16384.
const saturationChunks = 8

// Recommend selects a channel for the workload.
func Recommend(w Workload) Advice {
	if w.FitsComfortably() {
		return Advice{
			Channel: ChannelSerial,
			Reasons: []string{
				fmt.Sprintf("model (%d MB in memory) fits comfortably in a single instance cap of %d MB; serial execution avoids all IPC latency",
					int64(float64(w.ModelBytes)*w.MemOverhead)/(1<<20), w.InstanceCapMB),
			},
		}
	}
	chunks := (w.BytesPerPairPerLayer + publishCapacity - 1) / publishCapacity
	if chunks <= saturationChunks {
		return Advice{
			Channel: ChannelQueue,
			Reasons: []string{
				fmt.Sprintf("per-pair layer volume %d B needs %d publish chunk(s); pub-sub/queueing API requests are ~1 OOM cheaper and amortise up to 10 targets per publish and 10 sources per poll",
					w.BytesPerPairPerLayer, chunks),
				"queue costs grow slowly with parallelism for a given data volume",
			},
		}
	}
	return Advice{
		Channel: ChannelObject,
		Reasons: []string{
			fmt.Sprintf("per-pair layer volume %d B needs %d publish chunks, saturating pub-sub payload capacity; object sizes are effectively unlimited",
				w.BytesPerPairPerLayer, chunks),
			"object storage bills per request regardless of size, so costs stay flat as volumes grow",
		},
	}
}

// APICost compares the per-layer communication API-request cost of the two
// channels for a given pair count and per-pair volume — the §IV-C quota
// analysis behind the "API costs ~1 OOM cheaper, up to 2 OOM in best-case
// conditions" claim. It covers request charges only (billed publishes,
// polls and deletes versus PUTs, GETs and amortised LISTs); the
// volume-proportional SNS→SQS byte charge enters the full Equation (5)
// model, not this per-request comparison. Best-case packing is assumed:
// 10 messages per publish serving 10 targets, 10 messages per poll.
func APICost(cat pricing.Catalog, pairs int64, bytesPerPair int64) (queue, object float64) {
	if pairs == 0 {
		return 0, 0
	}
	chunksPerPair := (bytesPerPair + publishCapacity - 1) / publishCapacity
	if chunksPerPair < 1 {
		chunksPerPair = 1
	}
	messages := pairs * chunksPerPair
	// Publishes: up to 10 messages per call when chunks are small; one
	// call per full-size chunk otherwise.
	publishes := (messages + 9) / 10
	if chunksPerPair > 1 {
		publishes = messages
	}
	billed := publishes
	if b := pricing.BilledPublishRequests(bytesPerPair * pairs); b > billed {
		billed = b
	}
	polls := (messages + 9) / 10
	deletes := polls
	queue = float64(billed)*cat.SNSPublish + float64(polls+deletes)*cat.SQSRequest

	// Object: one PUT and one GET per pair; LISTs amortise to roughly one
	// per target per layer (scans overlap other workers' write phases).
	object = float64(pairs)*cat.S3Put + float64(pairs)*cat.S3Get + float64(pairs)*cat.S3List/4
	return queue, object
}
