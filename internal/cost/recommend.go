package cost

import (
	"fmt"

	"fsdinference/internal/cloud/kvstore"
	"fsdinference/internal/cloud/pricing"
)

// Channel names a communication-channel recommendation.
type Channel string

// Recommended channels (§IV-C).
const (
	ChannelSerial Channel = "FSD-Inf-Serial"
	ChannelQueue  Channel = "FSD-Inf-Queue"
	ChannelObject Channel = "FSD-Inf-Object"
	ChannelMemory Channel = "FSD-Inf-Memory"
)

// Workload describes an inference workload for a-priori channel selection.
type Workload struct {
	// ModelBytes is the raw serialized model size.
	ModelBytes int64
	// MemOverhead is the in-memory blowup factor of the runtime.
	MemOverhead float64
	// InstanceCapMB is the largest single-instance memory available.
	InstanceCapMB int
	// Workers is the intended parallelism P.
	Workers int
	// BytesPerPairPerLayer is the expected encoded communication volume
	// for one (source, target) pair in one layer.
	BytesPerPairPerLayer int64
	// PairsPerLayer is the number of communicating pairs per layer.
	PairsPerLayer int64
	// Layers is the layer count.
	Layers int

	// ConcurrentRuns is the peak number of engine runs in flight at once
	// (the serving layer's observed MaxConcurrentRuns). 0 means a single
	// run. Overlapping runs multiply the store's resident working set:
	// every in-flight run parks a layer's worth of pair values in the
	// node until the receivers drain them.
	ConcurrentRuns int

	// QueriesPerDay is the expected sustained request volume. 0 means
	// unknown: the recommendation then stays within the pay-per-request
	// channels, since a provisioned memory node bills while idle — the
	// sporadic-workload killer the paper cites when ruling ElastiCache
	// out (§II-D).
	QueriesPerDay int64
	// MemoryNodeHourly overrides the provisioned in-memory node's hourly
	// price (0 uses the default catalogue's cache.m6g.large rate).
	MemoryNodeHourly float64
}

// FitsSingleInstance reports whether the model fits one FaaS instance.
func (w Workload) FitsSingleInstance() bool {
	return float64(w.ModelBytes)*w.MemOverhead <= float64(w.InstanceCapMB)*1024*1024
}

// comfortFactor is the fraction of the instance cap a model may occupy and
// still count as "comfortably" fitting (§IV-C): beyond it, activation
// buffers and runtime overheads make single-instance processing
// inefficient even when the weights technically fit, as the paper observes
// for N=16384.
const comfortFactor = 0.25

// FitsComfortably reports whether single-instance execution is the
// recommended regime for this model.
func (w Workload) FitsComfortably() bool {
	return float64(w.ModelBytes)*w.MemOverhead <= comfortFactor*float64(w.InstanceCapMB)*1024*1024
}

// Advice is a channel recommendation with its reasoning, following the
// paper's design recommendations (§IV-C): serial for models that fit one
// instance; queue while per-pair volumes stay within a few publish payloads
// (API requests ~1 OOM cheaper, up to 10 targets per publish, up to 10
// sources per poll); object storage once data volumes saturate
// pub-sub/queueing capacity; and a provisioned memory store once a known
// sustained volume amortises its flat node-hour bill below the
// per-request channels' metered spend.
type Advice struct {
	Channel Channel
	Reasons []string
}

// publishCapacity is the maximum payload of one publish (10 messages of up
// to 256 KB share a 256 KB batch budget, so effectively 256 KB per call).
const publishCapacity = 256 * 1024

// saturationChunks is the per-pair chunk count beyond which the queue
// channel's publish amplification makes object storage competitive; the
// paper observes multiple publishes per target emerging beyond N=16384.
const saturationChunks = 8

// PublishChunks returns the number of publish-payload chunks one
// (source, target) pair's layer volume needs on the queue channel.
func PublishChunks(bytesPerPair int64) int64 {
	c := (bytesPerPair + publishCapacity - 1) / publishCapacity
	if c < 1 {
		c = 1
	}
	return c
}

// QueueSaturated reports whether per-pair volumes chunk beyond the point
// where the queue channel's publish amplification makes object storage
// analytically competitive (§IV-C). Recommend and the planner's analytic
// pre-filter share this rule so they cannot drift apart.
func QueueSaturated(bytesPerPair int64) bool {
	return PublishChunks(bytesPerPair) > saturationChunks
}

// MemoryValueFeasible reports whether one pair's layer volume fits a
// single stored value of the provisioned memory store — the memory
// channel ships unchunked values, so volumes above the cap rule it out
// however favourable the billing.
func MemoryValueFeasible(bytesPerPair int64) bool {
	return bytesPerPair <= int64(kvstore.DefaultConfig().MaxValueBytes)
}

// storeHeadroom is the provisioning factor between a workload's resident
// working set and the node memory it needs: half of each node is held
// back for replication buffers and copy-on-write snapshot forks, per the
// managed-cache guidance to reserve memory on write-heavy workloads —
// and an engine-run inbox is nothing but writes.
const storeHeadroom = 2.0

// MemoryWorkingSetBytes estimates the peak bytes resident in the
// provisioned store: one layer's pair values per in-flight run, times
// the peak run concurrency.
func MemoryWorkingSetBytes(w Workload) int64 {
	runs := int64(w.ConcurrentRuns)
	if runs < 1 {
		runs = 1
	}
	return runs * w.PairsPerLayer * w.BytesPerPairPerLayer
}

// MemoryNodeCapacityExceeded reports whether the workload's peak working
// set, with the write-heavy headroom applied, overflows the usable
// memory of a cluster of shards of the node type. Capacity scales
// linearly with the shard count, like the request-rate ceiling: this is
// the second analytic rule that forces bigger nodes (or more shards)
// under bulk-tensor workloads — and the rule the hybrid channel escapes
// by parking bulk values in object storage.
func MemoryNodeCapacityExceeded(w Workload, nodeType string, shards int) bool {
	if shards < 1 {
		shards = 1
	}
	nt, ok := kvstore.Catalog[nodeType]
	if !ok {
		nt = kvstore.Catalog[kvstore.DefaultNodeType]
	}
	usable := nt.MemoryGB * float64(int64(1)<<30) * float64(shards)
	return float64(MemoryWorkingSetBytes(w))*storeHeadroom > usable
}

// MemoryOpsPerQuery estimates the store operations one query issues on
// the memory channel: one push and one pop per (pair, layer), plus the
// barrier and reduce traffic (roughly four ops per worker). It is the
// demand side of the per-node request-rate ceiling.
func MemoryOpsPerQuery(w Workload) int64 {
	return 2*w.PairsPerLayer*int64(w.Layers) + 4*int64(w.Workers)
}

// MemoryClusterSaturated reports whether the workload's sustained
// operation rate exceeds the aggregate request-rate ceiling of a cluster
// of shards primaries of the node type: each shard enforces its own
// ceiling, so capacity scales linearly with the shard count. A saturated
// configuration is infeasible however cheap — queries would back up
// behind the limiter without bound — which is the analytic rule that
// makes the planner reach for more shards under heavy sustained volume.
func MemoryClusterSaturated(w Workload, nodeType string, shards int) bool {
	if w.QueriesPerDay <= 0 {
		return false
	}
	if shards < 1 {
		shards = 1
	}
	nt, ok := kvstore.Catalog[nodeType]
	if !ok {
		nt = kvstore.Catalog[kvstore.DefaultNodeType]
	}
	demand := float64(MemoryOpsPerQuery(w)*w.QueriesPerDay) / 86400
	return demand > nt.MaxOpsPerSec*float64(shards)
}

// memoryNodeHourly resolves the provisioned node's hourly price: the
// workload's explicit override, else the catalogue's rate for the
// default node type deployments assume.
func (w Workload) memoryNodeHourly(cat pricing.Catalog) float64 {
	if w.MemoryNodeHourly > 0 {
		return w.MemoryNodeHourly
	}
	return cat.KVNodeHourly[kvstore.DefaultNodeType]
}

// RequestDailyCost returns the per-request channels' daily communication
// spend for the workload at its QueriesPerDay volume: the best of queue
// and object API pricing per query, times the volume.
func RequestDailyCost(cat pricing.Catalog, w Workload) float64 {
	q, o := APICost(cat, w.PairsPerLayer, w.BytesPerPairPerLayer)
	per := q
	if o < per {
		per = o
	}
	return per * float64(w.Layers) * float64(w.QueriesPerDay)
}

// MemoryDailyCost returns the provisioned memory store's daily spend:
// 24 node-hours whether one query arrives or a million — there is no
// per-request term at all.
func MemoryDailyCost(cat pricing.Catalog, w Workload) float64 {
	return 24 * w.memoryNodeHourly(cat)
}

// MemoryBreakEvenQueriesPerDay returns the daily query volume at which
// the provisioned memory store's flat node cost drops below the
// per-request channels' metered spend. Below it, idle billing makes the
// memory store the most expensive option.
func MemoryBreakEvenQueriesPerDay(cat pricing.Catalog, w Workload) int64 {
	w.QueriesPerDay = 1
	perQuery := RequestDailyCost(cat, w)
	if perQuery <= 0 {
		return 0
	}
	return int64(MemoryDailyCost(cat, w)/perQuery) + 1
}

// Recommend selects a channel for the workload.
func Recommend(w Workload) Advice {
	if w.FitsComfortably() {
		return Advice{
			Channel: ChannelSerial,
			Reasons: []string{
				fmt.Sprintf("model (%d MB in memory) fits comfortably in a single instance cap of %d MB; serial execution avoids all IPC latency",
					int64(float64(w.ModelBytes)*w.MemOverhead)/(1<<20), w.InstanceCapMB),
			},
		}
	}
	// Provisioned versus per-request: with a known sustained volume, a
	// flat-rate memory node can undercut the metered channels — and below
	// the break-even it bills while idle, which is why the paper rules it
	// out for sporadic workloads.
	cat := pricing.Default()
	var memReason string
	// The memory channel ships one unchunked value per (pair, layer), so
	// a per-pair volume above the store's value cap rules it out however
	// favourable the billing.
	memFeasible := MemoryValueFeasible(w.BytesPerPairPerLayer)
	if w.QueriesPerDay > 0 && memFeasible {
		memDaily := MemoryDailyCost(cat, w)
		reqDaily := RequestDailyCost(cat, w)
		if memDaily < reqDaily {
			return Advice{
				Channel: ChannelMemory,
				Reasons: []string{
					fmt.Sprintf("sustained volume (%d queries/day) amortises the provisioned node: $%.2f/day flat vs $%.2f/day in per-request charges (break-even ~%d queries/day)",
						w.QueriesPerDay, memDaily, reqDaily, MemoryBreakEvenQueriesPerDay(cat, w)),
					"memory-speed ops carry no per-request price and cut per-hop latency by ~1 OOM versus pub-sub",
				},
			}
		}
		memReason = fmt.Sprintf("a provisioned memory node would bill $%.2f/day while mostly idle at %d queries/day (break-even ~%d) — the sporadic-workload killer",
			MemoryDailyCost(cat, w), w.QueriesPerDay, MemoryBreakEvenQueriesPerDay(cat, w))
	}
	chunks := PublishChunks(w.BytesPerPairPerLayer)
	if !QueueSaturated(w.BytesPerPairPerLayer) {
		adv := Advice{
			Channel: ChannelQueue,
			Reasons: []string{
				fmt.Sprintf("per-pair layer volume %d B needs %d publish chunk(s); pub-sub/queueing API requests are ~1 OOM cheaper and amortise up to 10 targets per publish and 10 sources per poll",
					w.BytesPerPairPerLayer, chunks),
				"queue costs grow slowly with parallelism for a given data volume",
			},
		}
		if memReason != "" {
			adv.Reasons = append(adv.Reasons, memReason)
		}
		return adv
	}
	adv := Advice{
		Channel: ChannelObject,
		Reasons: []string{
			fmt.Sprintf("per-pair layer volume %d B needs %d publish chunks, saturating pub-sub payload capacity; object sizes are effectively unlimited",
				w.BytesPerPairPerLayer, chunks),
			"object storage bills per request regardless of size, so costs stay flat as volumes grow",
		},
	}
	if memReason != "" {
		adv.Reasons = append(adv.Reasons, memReason)
	}
	return adv
}

// APICost compares the per-layer communication API-request cost of the two
// channels for a given pair count and per-pair volume — the §IV-C quota
// analysis behind the "API costs ~1 OOM cheaper, up to 2 OOM in best-case
// conditions" claim. It covers request charges only (billed publishes,
// polls and deletes versus PUTs, GETs and amortised LISTs); the
// volume-proportional SNS→SQS byte charge enters the full Equation (5)
// model, not this per-request comparison. Best-case packing is assumed:
// 10 messages per publish serving 10 targets, 10 messages per poll.
func APICost(cat pricing.Catalog, pairs int64, bytesPerPair int64) (queue, object float64) {
	if pairs == 0 {
		return 0, 0
	}
	chunksPerPair := (bytesPerPair + publishCapacity - 1) / publishCapacity
	if chunksPerPair < 1 {
		chunksPerPair = 1
	}
	messages := pairs * chunksPerPair
	// Publishes: up to 10 messages per call when chunks are small; one
	// call per full-size chunk otherwise.
	publishes := (messages + 9) / 10
	if chunksPerPair > 1 {
		publishes = messages
	}
	billed := publishes
	if b := pricing.BilledPublishRequests(bytesPerPair * pairs); b > billed {
		billed = b
	}
	polls := (messages + 9) / 10
	deletes := polls
	queue = float64(billed)*cat.SNSPublish + float64(polls+deletes)*cat.SQSRequest

	// Object: one PUT and one GET per pair; LISTs amortise to roughly one
	// per target per layer (scans overlap other workers' write phases).
	object = float64(pairs)*cat.S3Put + float64(pairs)*cat.S3Get + float64(pairs)*cat.S3List/4
	return queue, object
}
