// Package cost implements the FSD-Inference cost model (paper §IV):
// Equations (1)-(7) for the Serial, Queue and Object variants, prediction
// of end-to-end run cost from worker-side fine-grained metrics (the §VI-F
// validation predicts from captured metrics and compares against billed
// actuals), a-priori workload estimation, and the §IV-C design
// recommendations.
package cost

import (
	"time"

	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/cloud/usage"
)

// LambdaUsage captures the compute-side inputs of Equation (4):
// C_lambda = P·C_inv + P·T̄·M·C_run. TotalRuntime is Σ T_i = P·T̄.
type LambdaUsage struct {
	Invocations  int64
	MemoryMB     int
	TotalRuntime time.Duration
}

// Lambda evaluates Equation (4).
func Lambda(cat pricing.Catalog, u LambdaUsage) float64 {
	return float64(u.Invocations)*cat.LambdaInvoke +
		float64(u.MemoryMB)/1024*u.TotalRuntime.Seconds()*cat.LambdaGBSecond
}

// QueueUsage captures the communication-side inputs of Equations (5)-(6):
// S billed publish requests, Z bytes transferred SNS→SQS, and Q queueing
// API requests.
type QueueUsage struct {
	BilledPublishes int64 // S
	DeliveredBytes  int64 // Z
	SQSRequests     int64 // Q
}

// SNS evaluates Equation (5): S·C_pub + Z·C_byte.
func SNS(cat pricing.Catalog, u QueueUsage) float64 {
	return float64(u.BilledPublishes)*cat.SNSPublish + float64(u.DeliveredBytes)*cat.SNSByte
}

// SQS evaluates Equation (6): Q·C_api.
func SQS(cat pricing.Catalog, u QueueUsage) float64 {
	return float64(u.SQSRequests) * cat.SQSRequest
}

// ObjectUsage captures the inputs of Equation (7): V PUTs, R GETs, L LISTs.
type ObjectUsage struct {
	Puts  int64 // V
	Gets  int64 // R
	Lists int64 // L
}

// S3 evaluates Equation (7): V·C_put + R·C_get + L·C_list.
func S3(cat pricing.Catalog, u ObjectUsage) float64 {
	return float64(u.Puts)*cat.S3Put + float64(u.Gets)*cat.S3Get + float64(u.Lists)*cat.S3List
}

// PredictSerial evaluates Equation (3): C_Serial = C_lambda.
func PredictSerial(cat pricing.Catalog, l LambdaUsage) usage.Breakdown {
	return usage.Breakdown{Lambda: Lambda(cat, l)}
}

// PredictQueue evaluates Equation (1): C_Queue = C_lambda + C_SNS + C_SQS.
func PredictQueue(cat pricing.Catalog, l LambdaUsage, q QueueUsage) usage.Breakdown {
	return usage.Breakdown{
		Lambda: Lambda(cat, l),
		SNS:    SNS(cat, q),
		SQS:    SQS(cat, q),
	}
}

// PredictObject evaluates Equation (2): C_Object = C_lambda + C_S3.
func PredictObject(cat pricing.Catalog, l LambdaUsage, o ObjectUsage) usage.Breakdown {
	return usage.Breakdown{
		Lambda: Lambda(cat, l),
		S3:     S3(cat, o),
	}
}

// Validation compares a cost prediction built from worker-side metrics
// against the billed actuals from the usage meter (§VI-F). The paper
// reports compute/comms/total agreement to the cent.
type Validation struct {
	Predicted usage.Breakdown
	Actual    usage.Breakdown
}

// ComputeAgrees reports whether predicted and actual compute costs agree
// within tol (relative).
func (v Validation) ComputeAgrees(tol float64) bool {
	return relClose(v.Predicted.Lambda+v.Predicted.EC2, v.Actual.Lambda+v.Actual.EC2, tol)
}

// CommsAgree reports whether predicted and actual communication costs
// agree within tol (relative).
func (v Validation) CommsAgree(tol float64) bool {
	return relClose(v.Predicted.Comms(), v.Actual.Comms(), tol)
}

// TotalAgrees reports whether totals agree within tol (relative).
func (v Validation) TotalAgrees(tol float64) bool {
	return relClose(v.Predicted.Total(), v.Actual.Total(), tol)
}

func relClose(a, b, tol float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1e-12 {
		return diff < 1e-12
	}
	return diff/scale <= tol
}
