package cost

import (
	"math"
	"strings"
	"testing"
	"time"

	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/cloud/usage"
)

func TestLambdaEquation(t *testing.T) {
	cat := pricing.Default()
	// 20 workers at 2000 MB running 30 s each: Eq (4).
	u := LambdaUsage{Invocations: 20, MemoryMB: 2000, TotalRuntime: 20 * 30 * time.Second}
	got := Lambda(cat, u)
	want := 20*cat.LambdaInvoke + 2000.0/1024*600*cat.LambdaGBSecond
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Lambda = %v, want %v", got, want)
	}
}

func TestQueueEquations(t *testing.T) {
	cat := pricing.Default()
	q := QueueUsage{BilledPublishes: 1_000_000, DeliveredBytes: 2e9, SQSRequests: 500_000}
	if got, want := SNS(cat, q), 0.50+2*0.09; math.Abs(got-want) > 1e-9 {
		t.Fatalf("SNS = %v, want %v", got, want)
	}
	if got, want := SQS(cat, q), 0.20; math.Abs(got-want) > 1e-9 {
		t.Fatalf("SQS = %v, want %v", got, want)
	}
}

func TestObjectEquation(t *testing.T) {
	cat := pricing.Default()
	o := ObjectUsage{Puts: 10_000, Gets: 50_000, Lists: 4_000}
	got := S3(cat, o)
	want := 10_000*cat.S3Put + 50_000*cat.S3Get + 4_000*cat.S3List
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("S3 = %v, want %v", got, want)
	}
}

func TestPredictTotalsCombine(t *testing.T) {
	cat := pricing.Default()
	l := LambdaUsage{Invocations: 5, MemoryMB: 1024, TotalRuntime: time.Minute}
	q := QueueUsage{BilledPublishes: 100, DeliveredBytes: 1e6, SQSRequests: 50}
	o := ObjectUsage{Puts: 10, Gets: 10, Lists: 5}

	serial := PredictSerial(cat, l)
	queue := PredictQueue(cat, l, q)
	object := PredictObject(cat, l, o)

	if serial.Comms() != 0 {
		t.Fatal("serial prediction has communication cost")
	}
	if queue.Total() <= serial.Total() {
		t.Fatal("queue prediction should add comms cost")
	}
	if object.S3 == 0 || object.SNS != 0 {
		t.Fatalf("object prediction wrong shape: %+v", object)
	}
}

func TestQueueAPIRequestsCheaperAtModerateVolume(t *testing.T) {
	// §IV-C: for payloads within publish capacity, pub-sub/queueing API
	// costs are 1-2 OOM below object storage.
	cat := pricing.Default()
	q, o := APICost(cat, 100, 32*1024)
	if q*10 > o {
		t.Fatalf("queue API cost %v not ~1 OOM below object %v", q, o)
	}
}

func TestObjectWinsAtHugeVolumes(t *testing.T) {
	// When each pair ships hundreds of MB, publish amplification makes the
	// queue channel more expensive than per-request object pricing.
	cat := pricing.Default()
	q, o := APICost(cat, 100, 512*1024*1024)
	if q < o {
		t.Fatalf("queue API cost %v should exceed object %v at 512 MB/pair", q, o)
	}
}

func TestAPICostZeroPairs(t *testing.T) {
	q, o := APICost(pricing.Default(), 0, 1000)
	if q != 0 || o != 0 {
		t.Fatalf("zero pairs costed %v/%v", q, o)
	}
}

func TestRecommendSerialForSmallModels(t *testing.T) {
	adv := Recommend(Workload{
		ModelBytes: 30 << 20, MemOverhead: 5.5, InstanceCapMB: 10240,
		Workers: 8, BytesPerPairPerLayer: 10_000, PairsPerLayer: 50, Layers: 120,
	})
	if adv.Channel != ChannelSerial {
		t.Fatalf("recommended %v, want serial (model fits)", adv.Channel)
	}
	if len(adv.Reasons) == 0 {
		t.Fatal("no reasoning returned")
	}
}

func TestRecommendQueueForModerateVolumes(t *testing.T) {
	adv := Recommend(Workload{
		ModelBytes: 4 << 30, MemOverhead: 5.5, InstanceCapMB: 10240,
		Workers: 42, BytesPerPairPerLayer: 100 * 1024, PairsPerLayer: 500, Layers: 120,
	})
	if adv.Channel != ChannelQueue {
		t.Fatalf("recommended %v, want queue", adv.Channel)
	}
}

func TestRecommendObjectForHugeVolumes(t *testing.T) {
	adv := Recommend(Workload{
		ModelBytes: 4 << 30, MemOverhead: 5.5, InstanceCapMB: 10240,
		Workers: 62, BytesPerPairPerLayer: 64 << 20, PairsPerLayer: 2000, Layers: 120,
	})
	if adv.Channel != ChannelObject {
		t.Fatalf("recommended %v, want object", adv.Channel)
	}
}

func TestValidationAgreement(t *testing.T) {
	v := Validation{
		Predicted: usage.Breakdown{Lambda: 0.10, SNS: 0.20, SQS: 0.05},
		Actual:    usage.Breakdown{Lambda: 0.10, SNS: 0.21, SQS: 0.05},
	}
	if !v.ComputeAgrees(0.01) {
		t.Fatal("identical compute should agree")
	}
	if v.CommsAgree(0.01) {
		t.Fatal("4% comms difference should fail 1% tolerance")
	}
	if !v.CommsAgree(0.05) {
		t.Fatal("4% comms difference should pass 5% tolerance")
	}
	if !v.TotalAgrees(0.05) {
		t.Fatal("totals should agree at 5%")
	}
}

func TestValidationZeroBaseline(t *testing.T) {
	v := Validation{}
	if !v.TotalAgrees(0.01) || !v.CommsAgree(0.01) || !v.ComputeAgrees(0.01) {
		t.Fatal("zero-vs-zero should agree")
	}
}

func TestRecommendMemoryForSustainedVolume(t *testing.T) {
	// 200k queries/day at moderate per-query request volume: metered
	// per-request charges dwarf a $3.58/day provisioned node.
	adv := Recommend(Workload{
		ModelBytes: 4 << 30, MemOverhead: 5.5, InstanceCapMB: 10240,
		Workers: 42, BytesPerPairPerLayer: 100 * 1024, PairsPerLayer: 500, Layers: 120,
		QueriesPerDay: 200_000,
	})
	if adv.Channel != ChannelMemory {
		t.Fatalf("recommended %v, want memory under sustained load", adv.Channel)
	}
	if len(adv.Reasons) == 0 {
		t.Fatal("no reasoning returned")
	}
}

func TestRecommendAvoidsMemoryForSporadicVolume(t *testing.T) {
	// 20 queries/day: the node bills while idle; queue stays cheapest and
	// the advice records why memory lost.
	adv := Recommend(Workload{
		ModelBytes: 4 << 30, MemOverhead: 5.5, InstanceCapMB: 10240,
		Workers: 42, BytesPerPairPerLayer: 100 * 1024, PairsPerLayer: 500, Layers: 120,
		QueriesPerDay: 20,
	})
	if adv.Channel != ChannelQueue {
		t.Fatalf("recommended %v, want queue on the sporadic trace", adv.Channel)
	}
	found := false
	for _, r := range adv.Reasons {
		if strings.Contains(r, "idle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("advice does not explain the idle-billing rejection: %v", adv.Reasons)
	}
}

func TestMemoryBreakEvenSeparatesRegimes(t *testing.T) {
	cat := pricing.Default()
	w := Workload{
		ModelBytes: 4 << 30, MemOverhead: 5.5, InstanceCapMB: 10240,
		Workers: 42, BytesPerPairPerLayer: 100 * 1024, PairsPerLayer: 500, Layers: 120,
	}
	be := MemoryBreakEvenQueriesPerDay(cat, w)
	if be <= 0 {
		t.Fatalf("break-even = %d", be)
	}
	w.QueriesPerDay = be * 2
	if MemoryDailyCost(cat, w) >= RequestDailyCost(cat, w) {
		t.Fatal("memory not cheaper above break-even")
	}
	w.QueriesPerDay = be / 2
	if MemoryDailyCost(cat, w) <= RequestDailyCost(cat, w) {
		t.Fatal("memory not dearer below break-even")
	}
}

func TestRecommendSkipsMemoryAboveValueCap(t *testing.T) {
	// A per-pair volume above the store's 64 MB value cap cannot ride
	// the chunk-free memory channel, however sustained the workload.
	adv := Recommend(Workload{
		ModelBytes: 4 << 30, MemOverhead: 5.5, InstanceCapMB: 10240,
		Workers: 62, BytesPerPairPerLayer: 100 << 20, PairsPerLayer: 2000, Layers: 120,
		QueriesPerDay: 200_000,
	})
	if adv.Channel == ChannelMemory {
		t.Fatal("recommended memory for values above the store's value cap")
	}
}
