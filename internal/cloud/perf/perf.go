// Package perf holds the calibrated performance model shared by the compute
// substrates (FaaS instances and EC2 servers).
//
// The simulator executes the real sparse kernels for correctness, but
// latencies are reported in virtual time: each unit of work (multiply-adds,
// element-wise ops, bytes serialised/compressed) is charged at a calibrated
// rate. Rates model the paper's Python 3.8 + SciPy workers and are calibrated
// so FSD-Inf-Serial per-sample times land on the paper's Table II
// measurements: at N=1024 the paper reports 2.00 ms/sample on a 10,240 MB
// Lambda (~5.79 vCPU); the 120-layer model performs ~3.93M multiply-adds per
// sample, giving ~340M MAC/s per vCPU, which also predicts the paper's
// N=4096 (7.88 ms) and N=16384 (32.62 ms) serial times within 2%.
package perf

// Model is the calibrated performance model for simulated compute.
type Model struct {
	// MACRatePerVCPU is sparse matrix multiply-adds per second per vCPU.
	MACRatePerVCPU float64
	// ElemRatePerVCPU is element-wise ops (bias add, ReLU, threshold)
	// per second per vCPU.
	ElemRatePerVCPU float64
	// SerializeBytesPerSec is the per-vCPU rate for packing/unpacking
	// row payloads.
	SerializeBytesPerSec float64
	// CompressBytesPerSec and DecompressBytesPerSec are per-vCPU zlib
	// throughputs.
	CompressBytesPerSec   float64
	DecompressBytesPerSec float64

	// MemOverheadWeights multiplies raw weight bytes to model the
	// Python/SciPy in-memory footprint (parse buffers, object headers).
	// Calibrated so the N=65536 model (≈2 GB raw CSR) does not fit the
	// 10,240 MB Lambda cap, matching §VI-D, while N=16384 (≈0.5 GB raw)
	// fits the 6 GB SageMaker cap.
	MemOverheadWeights float64
	// MemOverheadData multiplies raw activation/input bytes.
	MemOverheadData float64

	// MBPerVCPU is the Lambda memory-to-vCPU proportionality constant:
	// one full vCPU per 1,769 MB of configured memory.
	MBPerVCPU float64
	// MaxVCPU caps the vCPU allocation (6 at 10,240 MB).
	MaxVCPU float64
}

// Default returns the calibrated model described in the package comment.
func Default() Model {
	return Model{
		MACRatePerVCPU:        3.4e8,
		ElemRatePerVCPU:       3.4e9,
		SerializeBytesPerSec:  500e6,
		CompressBytesPerSec:   150e6,
		DecompressBytesPerSec: 300e6,
		MemOverheadWeights:    5.5,
		MemOverheadData:       2.0,
		MBPerVCPU:             1769,
		MaxVCPU:               6,
	}
}

// VCPUs returns the vCPU allocation for a FaaS instance configured with
// memMB megabytes of memory.
func (m Model) VCPUs(memMB int) float64 {
	v := float64(memMB) / m.MBPerVCPU
	if v > m.MaxVCPU {
		v = m.MaxVCPU
	}
	return v
}
