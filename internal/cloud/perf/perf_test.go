package perf

import "testing"

func TestCalibrationMatchesPaperSerialTimes(t *testing.T) {
	// The model is calibrated so FSD-Inf-Serial per-sample times land on
	// Table II: per-sample MACs / (rate x 10GB-instance vCPUs).
	m := Default()
	vcpus := m.VCPUs(10240)
	cases := []struct {
		neurons  int
		paperMS  float64
		tolerate float64
	}{
		{1024, 2.00, 0.5},
		{4096, 7.88, 2.0},
		{16384, 32.62, 8.0},
	}
	for _, c := range cases {
		macs := float64(c.neurons) * 32 * 120 // dense-activation upper bound
		sec := macs / (m.MACRatePerVCPU * vcpus)
		gotMS := sec * 1000
		if gotMS < c.paperMS-c.tolerate || gotMS > c.paperMS+c.tolerate {
			t.Errorf("N=%d: calibrated %.2f ms/sample, paper %.2f", c.neurons, gotMS, c.paperMS)
		}
	}
}

func TestVCPUMonotoneAndCapped(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, mem := range []int{128, 512, 1769, 4096, 10240} {
		v := m.VCPUs(mem)
		if v <= prev {
			t.Fatalf("VCPUs not monotone at %d MB", mem)
		}
		prev = v
	}
	if m.VCPUs(1_000_000) != m.MaxVCPU {
		t.Fatal("cap not applied")
	}
}

func TestMemoryOverheadGates(t *testing.T) {
	m := Default()
	// N=65536 raw CSR ~2.01 GB; with overhead it must exceed the 10,240 MB
	// Lambda cap (the paper's serial OOM) but N=16384 (~0.5 GB raw) must
	// fit the 6 GB endpoint.
	big := float64(65536*32*120*8) * m.MemOverheadWeights
	if big <= 10240*float64(1<<20) {
		t.Fatalf("N=65536 fits the serial instance (%.1f GB); paper says OOM", big/(1<<30))
	}
	mid := float64(16384*32*120*8) * m.MemOverheadWeights
	if mid > 6144*float64(1<<20) {
		t.Fatalf("N=16384 exceeds the 6 GB endpoint (%.1f GB); paper says it fits", mid/(1<<30))
	}
}
