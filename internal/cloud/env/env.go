// Package env bundles one simulated cloud environment: a discrete-event
// kernel plus the FaaS, pub-sub, queue, object-storage and server services
// that FSD-Inference and its baselines run on, all metering into a single
// usage meter so billed costs can be validated against the cost model
// (paper §VI-F).
package env

import (
	"fsdinference/internal/cloud/ec2"
	"fsdinference/internal/cloud/faas"
	"fsdinference/internal/cloud/kvstore"
	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/cloud/s3"
	"fsdinference/internal/cloud/sns"
	"fsdinference/internal/cloud/sqs"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

// Config collects the per-service configurations.
type Config struct {
	FaaS    faas.Config
	SNS     sns.Config
	SQS     sqs.Config
	S3      s3.Config
	EC2     ec2.Config
	KV      kvstore.Config
	Pricing pricing.Catalog
}

// DefaultConfig returns the calibrated AWS-like defaults for every service.
func DefaultConfig() Config {
	return Config{
		FaaS:    faas.DefaultConfig(),
		SNS:     sns.DefaultConfig(),
		SQS:     sqs.DefaultConfig(),
		S3:      s3.DefaultConfig(),
		EC2:     ec2.DefaultConfig(),
		KV:      kvstore.DefaultConfig(),
		Pricing: pricing.Default(),
	}
}

// Env is one simulated cloud region.
type Env struct {
	K       *sim.Kernel
	Meter   *usage.Meter
	FaaS    *faas.Platform
	SNS     *sns.Service
	SQS     *sqs.Service
	S3      *s3.Service
	EC2     *ec2.Service
	KV      *kvstore.Service
	Pricing pricing.Catalog

	// Cfg is the configuration the environment was built from, retained so
	// clones (e.g. per-lane replay environments) can be constructed.
	Cfg Config

	deploySeq int
}

// NextDeployID sequences deployment names within this environment. Scoping
// the counter per environment (not process-globally) keeps independent
// environments — parallel replay lanes, concurrent tests — deterministic
// and race-free.
func (e *Env) NextDeployID() int {
	e.deploySeq++
	return e.deploySeq
}

// New builds a fresh environment from the config.
func New(cfg Config) *Env {
	k := sim.New()
	m := usage.NewMeter()
	return &Env{
		Cfg:     cfg,
		K:       k,
		Meter:   m,
		FaaS:    faas.New(k, m, cfg.FaaS),
		SNS:     sns.New(k, m, cfg.SNS),
		SQS:     sqs.New(k, m, cfg.SQS),
		S3:      s3.New(k, m, cfg.S3),
		EC2:     ec2.New(k, m, cfg.EC2),
		KV:      kvstore.New(k, m, cfg.KV),
		Pricing: cfg.Pricing,
	}
}

// NewDefault builds an environment with default configuration.
func NewDefault() *Env { return New(DefaultConfig()) }
