package env

import (
	"testing"

	"fsdinference/internal/cloud/sqs"
	"fsdinference/internal/sim"
)

func TestNewDefaultWiresAllServices(t *testing.T) {
	e := NewDefault()
	if e.K == nil || e.Meter == nil || e.FaaS == nil || e.SNS == nil ||
		e.SQS == nil || e.S3 == nil || e.EC2 == nil {
		t.Fatal("environment not fully wired")
	}
	if e.Pricing.LambdaGBSecond <= 0 {
		t.Fatal("pricing catalogue missing")
	}
}

func TestServicesShareKernelAndMeter(t *testing.T) {
	e := NewDefault()
	// A queue send must land on the shared meter and advance only the
	// shared kernel's clock.
	q := e.SQS.CreateQueue("q")
	e.K.Go("w", func(p *sim.Proc) {
		q.Send(p, sqs.Message{Body: []byte("m")})
		b := e.S3.CreateBucket("b")
		b.Put(p, "k", []byte("x"))
	})
	if err := e.K.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Meter.SQSSendCalls != 1 || e.Meter.S3PutCalls != 1 {
		t.Fatalf("meter not shared: %+v", e.Meter)
	}
	if e.K.Now() == 0 {
		t.Fatal("kernel clock did not advance")
	}
}

func TestCustomConfigApplied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaaS.MaxMemoryMB = 4096
	e := New(cfg)
	if e.FaaS.Config().MaxMemoryMB != 4096 {
		t.Fatal("custom FaaS config ignored")
	}
}
