// Package kvstore simulates a provisioned in-memory key-value store
// modelled on AWS ElastiCache for Redis (paper §II-D: the memory-based
// store the paper weighs against its pub/sub and object-storage channels
// and rules out on cost for sporadic workloads). It reproduces the
// behaviours the FSD-Inf-Memory channel depends on:
//
//   - provisioned cache nodes with fixed GB capacity, ops/second and
//     network-bandwidth limits, chosen from an instance catalogue,
//   - list push/pop plus blocking-read operations (RPUSH / LPOP / BLPOP)
//     with sub-millisecond API latency — the memory-speed data path,
//   - per-key TTLs so abandoned keyspaces expire on their own,
//   - provisioned node-hour billing that accrues from Provision to
//     Release whether or not any request arrives — unlike SQS/SNS/S3,
//     there is no per-request charge, which is exactly why a memory store
//     wins under sustained load and loses on sporadic traces.
package kvstore

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

// NodeType describes a provisioned cache node size.
type NodeType struct {
	Name     string
	MemoryGB float64
	// MaxOpsPerSec is the node's request-rate ceiling.
	MaxOpsPerSec float64
	// NetBytesPerSec is the node's network bandwidth.
	NetBytesPerSec float64
}

// DefaultNodeType is the node size deployments and the analytic cost
// model assume unless configured otherwise — the single home of the
// default, so the simulator's bill and the break-even analysis cannot
// drift apart.
const DefaultNodeType = "cache.m6g.large"

// Catalog lists the cache node sizes available to deployments.
var Catalog = map[string]NodeType{
	"cache.t3.small":  {Name: "cache.t3.small", MemoryGB: 1.37, MaxOpsPerSec: 40_000, NetBytesPerSec: 600e6},
	"cache.m6g.large": {Name: "cache.m6g.large", MemoryGB: 6.38, MaxOpsPerSec: 100_000, NetBytesPerSec: 1.25e9},
	"cache.r6g.large": {Name: "cache.r6g.large", MemoryGB: 13.07, MaxOpsPerSec: 120_000, NetBytesPerSec: 1.25e9},
}

// Config holds service-wide behaviour and quotas.
type Config struct {
	// OpLatency is the API round-trip charged per operation — in-memory
	// stores answer in fractions of a millisecond where queue/object
	// services take 5-30 ms, which is the latency case for the channel.
	OpLatency time.Duration
	// MaxValueBytes caps one stored value (Redis allows 512 MB; the
	// default stays far above the pub-sub 256 KB ceiling, so the memory
	// channel never needs chunking).
	MaxValueBytes int
	// MinBilledDuration is the minimum billed lifetime of a provisioned
	// node: capacity reserved for a single query still pays a floor,
	// mirroring how provisioning latency and billing granularity make
	// memory stores uneconomical for one-shot use.
	MinBilledDuration time.Duration
	// KeyOverheadBytes approximates per-key metadata against capacity.
	KeyOverheadBytes int
}

// DefaultConfig returns ElastiCache-like defaults.
func DefaultConfig() Config {
	return Config{
		OpLatency:         300 * time.Microsecond,
		MaxValueBytes:     64 << 20,
		MinBilledDuration: 60 * time.Second,
		KeyOverheadBytes:  64,
	}
}

// Service is a simulated provisioned in-memory store endpoint.
type Service struct {
	k     *sim.Kernel
	meter *usage.Meter
	cfg   Config
	nodes map[string]*Node
}

// New returns a key-value store service on kernel k metering into meter.
func New(k *sim.Kernel, meter *usage.Meter, cfg Config) *Service {
	return &Service{k: k, meter: meter, cfg: cfg, nodes: make(map[string]*Node)}
}

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// Kernel returns the simulation kernel the service runs on, for layers
// (like the kvcluster subsystem) that schedule their own events.
func (s *Service) Kernel() *sim.Kernel { return s.k }

// Meter returns the usage meter the service bills into.
func (s *Service) Meter() *usage.Meter { return s.meter }

// Provision creates (or returns the existing) named node of the given
// type. Creation itself is a control-plane operation, but unlike queue or
// topic creation it is not free to keep: the node bills node-hours from
// this moment until Release, idle or not.
func (s *Service) Provision(name, typeName string) (*Node, error) {
	if n, ok := s.nodes[name]; ok {
		if n.typ.Name != typeName {
			return nil, fmt.Errorf("kvstore: node %q already provisioned as %s, not %s",
				name, n.typ.Name, typeName)
		}
		return n, nil
	}
	t, ok := Catalog[typeName]
	if !ok {
		return nil, fmt.Errorf("kvstore: unknown node type %q", typeName)
	}
	n := &Node{
		name:          name,
		typ:           t,
		svc:           s,
		provisionedAt: s.k.Now(),
		items:         make(map[string]*entry),
		limiter:       sim.NewLimiter(s.k, t.MaxOpsPerSec, t.MaxOpsPerSec),
		cond:          sim.NewCond(s.k),
	}
	s.nodes[name] = n
	return n, nil
}

// Node returns the named node, or nil if it does not exist.
func (s *Service) Node(name string) *Node { return s.nodes[name] }

// Settle accrues every live node's billing up to the current virtual
// time, so a meter snapshot taken now reflects all provisioned capacity
// consumed so far (the windowed-accounting hook: idle node-hours must
// land inside the window that held them).
func (s *Service) Settle() {
	// Accrue in sorted node order: accruals add float node-hours into
	// the shared meter, and float addition in map iteration order would
	// let the meter's low bits differ between runs of the same trace.
	names := make([]string, 0, len(s.nodes))
	for name := range s.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.nodes[name].accrue()
	}
}

// NumNodes returns the number of provisioned (billing) nodes
// (test/metrics helper): released nodes deregister, so a pool that
// decommissions correctly returns to its baseline.
func (s *Service) NumNodes() int { return len(s.nodes) }

// NumKeys returns the live (unexpired) keys across all nodes
// (test/metrics helper; free of charge).
func (s *Service) NumKeys() int {
	total := 0
	for _, n := range s.nodes {
		total += n.NumKeys()
	}
	return total
}

// entry is one key's stored state: a list of values plus an optional
// absolute expiry.
type entry struct {
	list      [][]byte
	bytes     int64
	expiresAt time.Duration // 0 = no TTL
}

// Node is one provisioned cache node.
type Node struct {
	name string
	typ  NodeType
	svc  *Service

	provisionedAt time.Duration
	billed        time.Duration // lifetime already metered
	released      bool

	// shard and replica attribute billed hours in cluster reports:
	// shard labels the cluster shard the node serves, replica marks it
	// as replica (not primary) capacity. Both are empty/false for
	// standalone nodes.
	shard   string
	replica bool

	items     map[string]*entry
	usedBytes int64
	limiter   *sim.Limiter
	cond      *sim.Cond

	// Stats for experiments and cost validation.
	Pushes     int64
	Pops       int64
	EmptyPops  int64
	Expired    int64
	PeakBytes  int64
	OutOfSpace int64
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// SetBillingTag attributes the node's future accruals to a cluster
// shard, optionally as replica capacity. Any already-billed lifetime is
// accrued first so a promotion retag (replica -> primary) cannot move
// hours that were served in the old role; a freshly provisioned node
// retags before its first accrual, so the up-front billing floor lands
// under the new tag.
func (n *Node) SetBillingTag(shard string, replica bool) {
	if n.billed > 0 {
		n.accrue()
	}
	n.shard = shard
	n.replica = replica
}

// Released reports whether the node has been released (its billing clock
// stopped and its contents discarded).
func (n *Node) Released() bool { return n.released }

// IsReplica reports whether the node bills as replica capacity.
func (n *Node) IsReplica() bool { return n.replica }

// Type returns the node's provisioned size.
func (n *Node) Type() NodeType { return n.typ }

// UsedBytes returns the currently stored bytes (values plus key
// overhead), without billing a request.
func (n *Node) UsedBytes() int64 { return n.usedBytes }

// CapacityBytes returns the node's memory capacity.
func (n *Node) CapacityBytes() int64 { return int64(n.typ.MemoryGB * float64(1<<30)) }

// accrue meters the node-hours consumed since the last accrual. Billing
// follows max(lifetime, MinBilledDuration): the floor is charged up front
// — reserving the capacity is what costs, not using it.
func (n *Node) accrue() {
	if n.released {
		return
	}
	lifetime := n.svc.k.Now() - n.provisionedAt
	if lifetime < n.svc.cfg.MinBilledDuration {
		lifetime = n.svc.cfg.MinBilledDuration
	}
	if delta := lifetime - n.billed; delta > 0 {
		n.svc.meter.AddKVNodeHours(n.typ.Name, delta.Hours())
		n.svc.meter.KVGBHours += delta.Hours() * n.typ.MemoryGB
		if n.shard != "" {
			n.svc.meter.AddKVShardHours(n.shard, delta.Hours())
		}
		if n.replica {
			n.svc.meter.AddKVReplicaHours(n.typ.Name, delta.Hours())
		}
		n.billed = lifetime
	}
}

// Release stops the node's billing clock and discards its contents.
func (n *Node) Release() {
	n.accrue()
	n.released = true
	n.items = make(map[string]*entry)
	n.usedBytes = 0
	delete(n.svc.nodes, n.name)
}

// dropExpired lazily removes the key if its TTL has elapsed.
func (n *Node) dropExpired(key string) {
	e := n.items[key]
	if e == nil || e.expiresAt == 0 || n.svc.k.Now() < e.expiresAt {
		return
	}
	n.usedBytes -= e.bytes + int64(n.svc.cfg.KeyOverheadBytes)
	n.Expired += int64(len(e.list))
	delete(n.items, key)
}

// sweepExpired drops every expired key. Expiry is normally lazy
// (per-key, on access), which never revisits keys an aborted run
// abandoned; the full sweep runs when a write is about to fail on
// capacity, so dead keyspaces cannot wedge the node.
func (n *Node) sweepExpired() {
	for key := range n.items {
		n.dropExpired(key)
	}
}

func (n *Node) transferTime(bytes int) time.Duration {
	if n.typ.NetBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / n.typ.NetBytesPerSec * float64(time.Second))
}

// chargeOp applies the rate limit, meters the op and accrues billing.
func (n *Node) chargeOp(p *sim.Proc, bytes int) {
	n.limiter.Take(p, 1)
	p.Sleep(n.svc.cfg.OpLatency + n.transferTime(bytes))
	n.svc.meter.KVOps++
	n.accrue()
}

// RPush appends a value to the list at key, creating it if needed. A
// non-zero ttl (re)sets the key's expiry relative to now, like a
// pipelined RPUSH+EXPIRE billed as one round trip. Fails when the value
// exceeds the size cap or the node is out of memory.
func (n *Node) RPush(p *sim.Proc, key string, val []byte, ttl time.Duration) error {
	if key == "" {
		return fmt.Errorf("kvstore: empty key")
	}
	if len(val) > n.svc.cfg.MaxValueBytes {
		return fmt.Errorf("kvstore: value of %d bytes exceeds %d limit", len(val), n.svc.cfg.MaxValueBytes)
	}
	n.chargeOp(p, len(val))
	n.dropExpired(key)
	need := int64(len(val))
	e := n.items[key]
	if e == nil {
		need += int64(n.svc.cfg.KeyOverheadBytes)
	}
	if n.usedBytes+need > n.CapacityBytes() {
		n.sweepExpired()
	}
	if n.usedBytes+need > n.CapacityBytes() {
		n.OutOfSpace++
		return fmt.Errorf("kvstore: node %s out of memory (%d of %d bytes used)",
			n.name, n.usedBytes, n.CapacityBytes())
	}
	if e == nil {
		e = &entry{}
		n.items[key] = e
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	e.list = append(e.list, cp)
	e.bytes += int64(len(val))
	n.usedBytes += need
	if n.usedBytes > n.PeakBytes {
		n.PeakBytes = n.usedBytes
	}
	if ttl > 0 {
		e.expiresAt = n.svc.k.Now() + ttl
	}
	n.Pushes++
	n.svc.meter.KVBytesIn += int64(len(val))
	n.cond.Broadcast()
	return nil
}

// BLPop pops the head of the list at key, blocking up to wait for a value
// to arrive. It returns nil on timeout. With wait <= 0 it degenerates to
// a non-blocking LPOP.
func (n *Node) BLPop(p *sim.Proc, key string, wait time.Duration) []byte {
	deadline := p.Now() + wait
	for {
		n.dropExpired(key)
		if e := n.items[key]; e != nil && len(e.list) > 0 {
			val := e.list[0]
			e.list = e.list[1:]
			e.bytes -= int64(len(val))
			n.usedBytes -= int64(len(val))
			if len(e.list) == 0 {
				n.usedBytes -= int64(n.svc.cfg.KeyOverheadBytes)
				delete(n.items, key)
			}
			n.chargeOp(p, len(val))
			n.Pops++
			n.svc.meter.KVBytesOut += int64(len(val))
			return val
		}
		if wait <= 0 || p.Now() >= deadline {
			n.chargeOp(p, 0)
			n.EmptyPops++
			return nil
		}
		n.cond.WaitTimeout(p, deadline-p.Now())
	}
}

// LPop is the non-blocking pop.
func (n *Node) LPop(p *sim.Proc, key string) []byte { return n.BLPop(p, key, 0) }

// Expire (re)sets the key's TTL relative to now. Expiring a missing key
// still bills the operation, as on Redis.
func (n *Node) Expire(p *sim.Proc, key string, ttl time.Duration) {
	n.chargeOp(p, 0)
	n.dropExpired(key)
	if e := n.items[key]; e != nil && ttl > 0 {
		e.expiresAt = n.svc.k.Now() + ttl
	}
}

// Del removes a key. Deleting a missing key succeeds.
func (n *Node) Del(p *sim.Proc, key string) {
	n.chargeOp(p, 0)
	n.drop(key)
}

func (n *Node) drop(key string) {
	if e := n.items[key]; e != nil {
		n.usedBytes -= e.bytes + int64(n.svc.cfg.KeyOverheadBytes)
		delete(n.items, key)
	}
}

// DropPrefix discards every key under prefix host-side, free of charge
// and virtual time — the control-plane teardown of a run's keyspace,
// analogous to DeleteQueue/Unsubscribe for the queue channel.
func (n *Node) DropPrefix(prefix string) {
	for key := range n.items {
		if strings.HasPrefix(key, prefix) {
			n.drop(key)
		}
	}
}

// ReplApply appends a value to the list at key host-side, free of charge
// and virtual time: the intra-cluster replication stream is not a billed
// API call — a replica's entire cost is its node-hours. Capacity is not
// enforced (the replica mirrors a primary of the same node type, so a
// write that fit the primary fits the replica).
func (n *Node) ReplApply(key string, val []byte, ttl time.Duration) {
	if n.released || key == "" {
		return
	}
	n.dropExpired(key)
	e := n.items[key]
	if e == nil {
		e = &entry{}
		n.items[key] = e
		n.usedBytes += int64(n.svc.cfg.KeyOverheadBytes)
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	e.list = append(e.list, cp)
	e.bytes += int64(len(val))
	n.usedBytes += int64(len(val))
	if n.usedBytes > n.PeakBytes {
		n.PeakBytes = n.usedBytes
	}
	if ttl > 0 {
		e.expiresAt = n.svc.k.Now() + ttl
	}
	n.cond.Broadcast()
}

// ReplApplyPop removes the head of the list at key host-side (the
// replication of a pop), free of charge. A missing or empty key is a
// no-op — the replica may simply not have received the value yet.
func (n *Node) ReplApplyPop(key string) {
	if n.released {
		return
	}
	n.dropExpired(key)
	e := n.items[key]
	if e == nil || len(e.list) == 0 {
		return
	}
	val := e.list[0]
	e.list = e.list[1:]
	e.bytes -= int64(len(val))
	n.usedBytes -= int64(len(val))
	if len(e.list) == 0 {
		n.usedBytes -= int64(n.svc.cfg.KeyOverheadBytes)
		delete(n.items, key)
	}
}

// ReplApplyDel removes a key host-side (the replication of a delete),
// free of charge. Deleting a missing key is a no-op.
func (n *Node) ReplApplyDel(key string) {
	if n.released {
		return
	}
	n.drop(key)
}

// SyncFrom replaces the node's contents with a host-side copy of src —
// the background full re-sync a fresh replica performs when it joins a
// shard. Free of charge and virtual time, like the replication stream.
func (n *Node) SyncFrom(src *Node) {
	if n.released {
		return
	}
	n.items = make(map[string]*entry, len(src.items))
	n.usedBytes = 0
	for key, e := range src.items {
		cp := &entry{
			list:      make([][]byte, len(e.list)),
			bytes:     e.bytes,
			expiresAt: e.expiresAt,
		}
		for i, v := range e.list {
			cv := make([]byte, len(v))
			copy(cv, v)
			cp.list[i] = cv
		}
		n.items[key] = cp
		n.usedBytes += e.bytes + int64(n.svc.cfg.KeyOverheadBytes)
	}
	if n.usedBytes > n.PeakBytes {
		n.PeakBytes = n.usedBytes
	}
	n.cond.Broadcast()
}

// NumValues returns the live (unexpired) list values stored on the node
// (test/metrics helper; free of charge) — what a failover with no
// replica to promote loses.
func (n *Node) NumValues() int {
	count := 0
	now := n.svc.k.Now()
	for _, e := range n.items {
		if e.expiresAt != 0 && now >= e.expiresAt {
			continue
		}
		count += len(e.list)
	}
	return count
}

// ListLens returns each live key's list length host-side, free of
// charge — the snapshot a cluster failover diffs against a replica to
// count exactly the values that die with the primary.
func (n *Node) ListLens() map[string]int {
	now := n.svc.k.Now()
	out := make(map[string]int, len(n.items))
	for key, e := range n.items {
		if e.expiresAt != 0 && now >= e.expiresAt {
			continue
		}
		out[key] = len(e.list)
	}
	return out
}

// NumKeys returns the node's live (unexpired) key count (test/metrics
// helper; free of charge).
func (n *Node) NumKeys() int {
	count := 0
	now := n.svc.k.Now()
	for _, e := range n.items {
		if e.expiresAt != 0 && now >= e.expiresAt {
			continue
		}
		count++
	}
	return count
}
