package kvstore

import (
	"fmt"
	"testing"
	"time"

	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

func newSvc(t *testing.T) (*sim.Kernel, *usage.Meter, *Service) {
	t.Helper()
	k := sim.New()
	m := usage.NewMeter()
	return k, m, New(k, m, DefaultConfig())
}

func TestPushPopRoundTrip(t *testing.T) {
	k, m, s := newSvc(t)
	n, err := s.Provision("n0", "cache.m6g.large")
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	k.Go("c", func(p *sim.Proc) {
		if err := n.RPush(p, "inbox/0", []byte("hello"), 0); err != nil {
			t.Error(err)
		}
		if err := n.RPush(p, "inbox/0", []byte("world"), 0); err != nil {
			t.Error(err)
		}
		got = n.LPop(p, "inbox/0")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("popped %q, want FIFO head", got)
	}
	if m.KVOps != 3 || m.KVBytesIn != 10 || m.KVBytesOut != 5 {
		t.Fatalf("metered ops=%d in=%d out=%d", m.KVOps, m.KVBytesIn, m.KVBytesOut)
	}
}

func TestBLPopBlocksUntilPush(t *testing.T) {
	k, _, s := newSvc(t)
	n, _ := s.Provision("n0", "cache.m6g.large")
	var got []byte
	var at time.Duration
	k.Go("consumer", func(p *sim.Proc) {
		got = n.BLPop(p, "q", 10*time.Second)
		at = p.Now()
	})
	k.GoAfter(2*time.Second, "producer", func(p *sim.Proc) {
		if err := n.RPush(p, "q", []byte("x"), 0); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "x" {
		t.Fatalf("blocking pop got %q", got)
	}
	if at < 2*time.Second || at > 3*time.Second {
		t.Fatalf("consumer woke at %v, want shortly after the 2s push", at)
	}
}

func TestBLPopTimesOut(t *testing.T) {
	k, _, s := newSvc(t)
	n, _ := s.Provision("n0", "cache.m6g.large")
	var got []byte
	k.Go("c", func(p *sim.Proc) { got = n.BLPop(p, "empty", time.Second) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("empty pop returned %q", got)
	}
	if n.EmptyPops != 1 {
		t.Fatalf("empty pops = %d", n.EmptyPops)
	}
}

func TestTTLExpiresKeys(t *testing.T) {
	k, _, s := newSvc(t)
	n, _ := s.Provision("n0", "cache.m6g.large")
	var after []byte
	k.Go("c", func(p *sim.Proc) {
		if err := n.RPush(p, "tmp", []byte("v"), time.Second); err != nil {
			t.Error(err)
		}
		p.Sleep(2 * time.Second)
		after = n.LPop(p, "tmp")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if after != nil {
		t.Fatalf("expired key still returned %q", after)
	}
	if n.NumKeys() != 0 || n.UsedBytes() != 0 {
		t.Fatalf("expired key leaked: %d keys, %d bytes", n.NumKeys(), n.UsedBytes())
	}
}

func TestCapacityEnforced(t *testing.T) {
	k, _, s := newSvc(t)
	n, _ := s.Provision("n0", "cache.t3.small") // 1.37 GB
	big := make([]byte, 32<<20)
	var pushErr error
	k.Go("c", func(p *sim.Proc) {
		for i := 0; i < 64; i++ { // 2 GB attempted in 32 MB values
			if pushErr = n.RPush(p, "k", big, 0); pushErr != nil {
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pushErr == nil {
		t.Fatal("node accepted more data than its capacity")
	}
	if n.OutOfSpace == 0 {
		t.Fatal("out-of-space not counted")
	}
}

func TestValueSizeCapEnforced(t *testing.T) {
	k, _, s := newSvc(t)
	n, _ := s.Provision("n0", "cache.m6g.large")
	var pushErr error
	k.Go("c", func(p *sim.Proc) {
		pushErr = n.RPush(p, "k", make([]byte, s.Config().MaxValueBytes+1), 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pushErr == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestProvisionedBillingAccruesWhileIdle(t *testing.T) {
	// The sporadic-workload killer: a node that serves nothing still bills
	// for its provisioned window (with the minimum-duration floor applied
	// up front).
	k, m, s := newSvc(t)
	n, _ := s.Provision("n0", "cache.m6g.large")
	k.GoAfter(2*time.Hour, "idle", func(p *sim.Proc) { s.Settle() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if h := m.KVNodeHours["cache.m6g.large"]; h < 1.99 || h > 2.01 {
		t.Fatalf("idle node accrued %.3f hours, want ~2", h)
	}
	if gb := m.KVGBHours; gb < 2*n.Type().MemoryGB*0.99 {
		t.Fatalf("GB-hours = %.2f, want ~%.2f", gb, 2*n.Type().MemoryGB)
	}
	cost := m.Cost(pricing.Default())
	if cost.KV <= 0 {
		t.Fatalf("idle provisioned node billed nothing: %+v", cost)
	}
	if m.KVOps != 0 {
		t.Fatalf("idle node metered %d ops", m.KVOps)
	}
}

func TestMinimumBilledDuration(t *testing.T) {
	k, m, s := newSvc(t)
	s.Provision("n0", "cache.m6g.large")
	k.Go("c", func(p *sim.Proc) {
		p.Sleep(time.Second)
		s.Settle()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := s.Config().MinBilledDuration.Hours()
	if h := m.KVNodeHours["cache.m6g.large"]; h != want {
		t.Fatalf("1s-old node accrued %.5f hours, want the %.5f floor", h, want)
	}
}

func TestReleaseStopsBilling(t *testing.T) {
	k, m, s := newSvc(t)
	n, _ := s.Provision("n0", "cache.m6g.large")
	k.GoAfter(time.Hour, "rel", func(p *sim.Proc) { n.Release() })
	k.GoAfter(3*time.Hour, "late", func(p *sim.Proc) { s.Settle() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if h := m.KVNodeHours["cache.m6g.large"]; h < 0.99 || h > 1.01 {
		t.Fatalf("released node accrued %.3f hours, want ~1", h)
	}
	if s.Node("n0") != nil {
		t.Fatal("released node still registered")
	}
}

func TestDropPrefixTearsDownKeyspace(t *testing.T) {
	k, _, s := newSvc(t)
	n, _ := s.Provision("n0", "cache.m6g.large")
	k.Go("c", func(p *sim.Proc) {
		n.RPush(p, "r1/inbox/0", []byte("a"), 0)
		n.RPush(p, "r1/inbox/1", []byte("b"), 0)
		n.RPush(p, "r2/inbox/0", []byte("c"), 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.DropPrefix("r1/")
	if n.NumKeys() != 1 {
		t.Fatalf("keys after drop = %d, want 1 (the r2 key)", n.NumKeys())
	}
}

func TestUnknownNodeType(t *testing.T) {
	_, _, s := newSvc(t)
	if _, err := s.Provision("n0", "cache.nonsense"); err == nil {
		t.Fatal("unknown node type accepted")
	}
}

func TestCapacitySweepReclaimsAbandonedTTLKeys(t *testing.T) {
	// Keys an aborted run abandons are never accessed again, so lazy
	// per-key expiry alone would leave their bytes counted forever; a
	// write that would fail on capacity must sweep them first.
	k, _, s := newSvc(t)
	n, _ := s.Provision("n0", "cache.t3.small") // 1.37 GB
	fill := make([]byte, 32<<20)
	live := make([]byte, 64<<20)
	var pushErr error
	k.Go("c", func(p *sim.Proc) {
		// ~1.31 GB of TTL'd keys, leaving less free capacity than the
		// upcoming 64 MB write needs.
		for i := 0; i < 42; i++ {
			if err := n.RPush(p, fmt.Sprintf("dead/%d", i), fill, 10*time.Second); err != nil {
				t.Error(err)
				return
			}
		}
		p.Sleep(11 * time.Second) // every dead key is now expired, none accessed
		pushErr = n.RPush(p, "live", live, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pushErr != nil {
		t.Fatalf("write failed on capacity held by expired keys: %v", pushErr)
	}
	if n.NumKeys() != 1 {
		t.Fatalf("keys = %d, want only the live one", n.NumKeys())
	}
	if n.UsedBytes() > int64(len(live))+int64(s.Config().KeyOverheadBytes) {
		t.Fatalf("used bytes %d still count abandoned keys", n.UsedBytes())
	}
}

func TestProvisionRejectsTypeMismatch(t *testing.T) {
	_, _, s := newSvc(t)
	if _, err := s.Provision("n0", "cache.r6g.large"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Provision("n0", "cache.t3.small"); err == nil {
		t.Fatal("name collision with a different node type accepted")
	}
	if n, err := s.Provision("n0", "cache.r6g.large"); err != nil || n == nil {
		t.Fatalf("same-type re-provision should return the existing node: %v", err)
	}
}

// TestSettleOrderDeterministic is the regression test for the latent
// determinism bug the maporder burndown surfaced: Settle accrued nodes
// in map iteration order, and each accrual adds float node-hours into
// the shared meter. Float addition is not associative, so two replays
// of the same trace could disagree in the meter's low bits depending on
// which order the node map happened to iterate. Settle now accrues in
// sorted node-name order; rebuilding the identical scenario must
// produce bit-identical meter totals every time.
func TestSettleOrderDeterministic(t *testing.T) {
	build := func() (float64, float64) {
		k := sim.New()
		m := usage.NewMeter()
		cfg := DefaultConfig()
		cfg.MinBilledDuration = 0 // no floor: distinct lifetimes stay distinct
		s := New(k, m, cfg)
		// Eight nodes of one type provisioned at staggered, binary-inexact
		// offsets, so the per-node hour values differ and the sum's low
		// bits depend on addition order.
		for i := 0; i < 8; i++ {
			i := i
			k.At(time.Duration(i)*737*time.Millisecond, func() {
				if _, err := s.Provision(fmt.Sprintf("n%d", i), DefaultNodeType); err != nil {
					t.Error(err)
				}
			})
		}
		k.At(10*time.Second, func() {})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		s.Settle()
		return m.KVGBHours, m.KVNodeHours[DefaultNodeType]
	}
	gb0, nh0 := build()
	for run := 1; run < 40; run++ {
		gb, nh := build()
		if gb != gb0 || nh != nh0 {
			t.Fatalf("Settle not deterministic: run %d got (%x, %x) want (%x, %x)",
				run, gb, nh, gb0, nh0)
		}
	}
}
