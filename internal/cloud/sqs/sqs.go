// Package sqs simulates a cloud message-queue service modelled on AWS SQS
// (paper §II-D5, §III-A). It reproduces the behaviours the FSD-Inf-Queue
// channel depends on:
//
//   - dedicated standard queues with at-least-once delivery and a
//     visibility timeout,
//   - up to 10 messages per receive, 256 KB maximum message size,
//   - long polling (wait up to W seconds, all storage shards consulted,
//     returns as soon as messages arrive) versus short polling (immediate
//     return, only a sampled subset of shards consulted, so messages can be
//     missed — the behaviour the paper's polling analysis exploits),
//   - per-API-request billing (receives, deletes, sends).
package sqs

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

// Config holds service-wide behaviour and quotas.
type Config struct {
	// SendLatency, ReceiveLatency and DeleteLatency are API round-trip
	// times charged to the calling Proc.
	SendLatency    time.Duration
	ReceiveLatency time.Duration
	DeleteLatency  time.Duration
	// TransferBytesPerSec models payload bandwidth between the service
	// and a function instance.
	TransferBytesPerSec float64

	// MaxMessageBytes is the maximum message size (256 KB).
	MaxMessageBytes int
	// MaxBatch is the maximum messages per receive or delete batch (10).
	MaxBatch int
	// MaxWaitTime is the longest allowed long-poll wait (20 s).
	MaxWaitTime time.Duration
	// VisibilityTimeout is how long a received message stays invisible
	// before redelivery if not deleted.
	VisibilityTimeout time.Duration

	// Shards models SQS storing messages across multiple servers.
	Shards int
	// ShortPollShardFraction is the probability each shard is consulted
	// by a short poll (long polls always consult every shard).
	ShortPollShardFraction float64
	// Seed drives deterministic shard sampling.
	Seed int64
}

// DefaultConfig returns SQS-like defaults.
func DefaultConfig() Config {
	return Config{
		SendLatency:            8 * time.Millisecond,
		ReceiveLatency:         6 * time.Millisecond,
		DeleteLatency:          5 * time.Millisecond,
		TransferBytesPerSec:    200e6,
		MaxMessageBytes:        256 * 1024,
		MaxBatch:               10,
		MaxWaitTime:            20 * time.Second,
		VisibilityTimeout:      30 * time.Second,
		Shards:                 4,
		ShortPollShardFraction: 0.5,
		Seed:                   7,
	}
}

// Message is a queue message: an opaque body plus string attributes
// (the FSD engine uses attributes for source worker ID, layer and
// chunk-count metadata, paper §III-C1).
type Message struct {
	Body       []byte
	Attributes map[string]string
}

// Size returns the billed size of the message: body plus attribute bytes.
func (m Message) Size() int {
	n := len(m.Body)
	for k, v := range m.Attributes {
		n += len(k) + len(v)
	}
	return n
}

// Received is a message returned by a poll, carrying the receipt handle
// needed to delete it.
type Received struct {
	Message
	ReceiptHandle string
}

type qmsg struct {
	msg   Message
	id    int64
	shard int
	state int // 0 available (in shard slice), 1 inflight, 2 deleted
	vis   *sim.Timer
}

const (
	stAvailable = 0
	stInflight  = 1
	stDeleted   = 2
)

// Service is a simulated SQS endpoint.
type Service struct {
	k      *sim.Kernel
	meter  *usage.Meter
	cfg    Config
	queues map[string]*Queue
}

// New returns a queue service on kernel k metering into meter.
func New(k *sim.Kernel, meter *usage.Meter, cfg Config) *Service {
	return &Service{
		k: k, meter: meter, cfg: cfg,
		queues: make(map[string]*Queue),
	}
}

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// CreateQueue creates (or returns the existing) queue with the given name.
// Pre-creating queues is free, matching the paper's observation that
// communication resources are provisioned a priori at no ongoing cost.
func (s *Service) CreateQueue(name string) *Queue {
	if q, ok := s.queues[name]; ok {
		return q
	}
	q := &Queue{
		name:     name,
		svc:      s,
		shards:   make([][]*qmsg, s.cfg.Shards),
		inflight: make(map[int64]*qmsg),
		cond:     sim.NewCond(s.k),
		rng:      rand.New(rand.NewSource(s.cfg.Seed)),
	}
	s.queues[name] = q
	return q
}

// Queue returns the named queue, or nil if it does not exist.
func (s *Service) Queue(name string) *Queue { return s.queues[name] }

// NumQueues returns the number of live queues (test/metrics helper): a
// long-lived deployment that tears its per-run queues down correctly
// returns to its baseline after every run.
func (s *Service) NumQueues() int { return len(s.queues) }

// DeleteQueue removes the named queue (free control-plane operation, like
// CreateQueue). Messages still held by the queue are discarded. Deleting a
// queue that does not exist is a no-op.
func (s *Service) DeleteQueue(name string) {
	if q, ok := s.queues[name]; ok {
		q.Purge()
		delete(s.queues, name)
	}
}

// Queue is a single simulated SQS queue.
type Queue struct {
	name     string
	svc      *Service
	shards   [][]*qmsg // available messages only
	inflight map[int64]*qmsg
	cond     *sim.Cond
	nextID   int64
	// rng drives this queue's short-poll shard sampling. Scoped per queue
	// (not service-wide) so a queue's sampling sequence depends only on
	// its own poll order, never on how other queues' polls interleave —
	// the property that lets sharded replay lanes reproduce a
	// shared-kernel run exactly.
	rng *rand.Rand

	// Stats for experiments and cost validation.
	MessagesSent     int64
	MessagesReceived int64
	MessagesDeleted  int64
	ReceiveCalls     int64
	EmptyReceives    int64
	Redeliveries     int64
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Depth returns the number of visible (receivable) messages.
func (q *Queue) Depth() int {
	n := 0
	for _, sh := range q.shards {
		n += len(sh)
	}
	return n
}

// Deliver places a message on the queue without charging any Proc latency.
// It is the path used by pub-sub fan-out, which happens service-side
// (the SNS delivery agent calls this from kernel context).
func (q *Queue) Deliver(msg Message) error {
	if msg.Size() > q.svc.cfg.MaxMessageBytes {
		return fmt.Errorf("sqs: message of %d bytes exceeds %d limit", msg.Size(), q.svc.cfg.MaxMessageBytes)
	}
	q.nextID++
	m := &qmsg{msg: msg, id: q.nextID, shard: int(q.nextID) % len(q.shards)}
	q.shards[m.shard] = append(q.shards[m.shard], m)
	q.MessagesSent++
	q.svc.meter.SQSSendCalls++
	q.cond.Broadcast()
	return nil
}

// Send enqueues a message from Proc p, charging API latency and transfer
// time. Used for direct worker-to-queue sends (collectives).
func (q *Queue) Send(p *sim.Proc, msg Message) error {
	p.Sleep(q.svc.cfg.SendLatency + q.transferTime(msg.Size()))
	return q.Deliver(msg)
}

func (q *Queue) transferTime(bytes int) time.Duration {
	if q.svc.cfg.TransferBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / q.svc.cfg.TransferBytesPerSec * float64(time.Second))
}

// Receive polls the queue from Proc p. With wait == 0 it performs a short
// poll: it returns immediately and consults only a sampled subset of shards,
// so it can come back empty even when messages exist. With wait > 0 it
// performs a long poll: all shards are consulted and the call blocks up to
// wait for messages to arrive, returning as soon as at least one is
// available. At most max messages (capped at the batch limit) are returned;
// each becomes invisible for the visibility timeout.
func (q *Queue) Receive(p *sim.Proc, max int, wait time.Duration) []Received {
	if max <= 0 || max > q.svc.cfg.MaxBatch {
		max = q.svc.cfg.MaxBatch
	}
	if wait > q.svc.cfg.MaxWaitTime {
		wait = q.svc.cfg.MaxWaitTime
	}
	q.svc.meter.SQSReceiveCalls++
	q.ReceiveCalls++

	deadline := p.Now() + wait
	for {
		var got []Received
		totalBytes := 0
		for _, shard := range q.sampleShards(wait > 0) {
			for len(q.shards[shard]) > 0 && len(got) < max {
				m := q.shards[shard][0]
				q.shards[shard] = q.shards[shard][1:]
				m.state = stInflight
				q.inflight[m.id] = m
				q.scheduleRedelivery(m)
				got = append(got, Received{
					Message:       m.msg,
					ReceiptHandle: q.name + "/" + strconv.FormatInt(m.id, 10),
				})
				totalBytes += m.msg.Size()
			}
			if len(got) >= max {
				break
			}
		}
		if len(got) > 0 {
			q.MessagesReceived += int64(len(got))
			p.Sleep(q.svc.cfg.ReceiveLatency + q.transferTime(totalBytes))
			return got
		}
		if wait <= 0 || p.Now() >= deadline {
			q.EmptyReceives++
			p.Sleep(q.svc.cfg.ReceiveLatency)
			return nil
		}
		q.cond.WaitTimeout(p, deadline-p.Now())
	}
}

// sampleShards returns the shard indexes a poll consults.
func (q *Queue) sampleShards(long bool) []int {
	n := len(q.shards)
	if long {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	var picked []int
	for i := 0; i < n; i++ {
		if q.rng.Float64() < q.svc.cfg.ShortPollShardFraction {
			picked = append(picked, i)
		}
	}
	if len(picked) == 0 {
		picked = append(picked, q.rng.Intn(n))
	}
	return picked
}

func (q *Queue) scheduleRedelivery(m *qmsg) {
	m.vis = q.svc.k.After(q.svc.cfg.VisibilityTimeout, func() {
		if m.state != stInflight {
			return
		}
		m.state = stAvailable
		delete(q.inflight, m.id)
		q.shards[m.shard] = append(q.shards[m.shard], m)
		q.Redeliveries++
		q.cond.Broadcast()
	})
}

// DeleteBatch deletes up to the batch limit of messages by receipt handle,
// charging one API request.
func (q *Queue) DeleteBatch(p *sim.Proc, handles []string) error {
	if len(handles) == 0 {
		return nil
	}
	if len(handles) > q.svc.cfg.MaxBatch {
		return fmt.Errorf("sqs: delete batch of %d exceeds %d limit", len(handles), q.svc.cfg.MaxBatch)
	}
	q.svc.meter.SQSDeleteCalls++
	p.Sleep(q.svc.cfg.DeleteLatency)
	for _, h := range handles {
		idStr, ok := strings.CutPrefix(h, q.name+"/")
		if !ok {
			return fmt.Errorf("sqs: receipt handle %q does not belong to queue %q", h, q.name)
		}
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			return fmt.Errorf("sqs: malformed receipt handle %q", h)
		}
		if m, ok := q.inflight[id]; ok {
			m.state = stDeleted
			if m.vis != nil {
				m.vis.Stop()
			}
			delete(q.inflight, id)
			q.MessagesDeleted++
		}
	}
	return nil
}

// Purge discards all messages (test/reset helper; free of charge).
func (q *Queue) Purge() {
	for i := range q.shards {
		q.shards[i] = nil
	}
	for id, m := range q.inflight {
		m.state = stDeleted
		delete(q.inflight, id)
	}
}
