package sqs

import (
	"fmt"
	"testing"
	"time"

	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

func newSvc() (*sim.Kernel, *usage.Meter, *Service) {
	k := sim.New()
	m := usage.NewMeter()
	return k, m, New(k, m, DefaultConfig())
}

func TestSendReceiveDelete(t *testing.T) {
	k, m, svc := newSvc()
	q := svc.CreateQueue("q")
	k.Go("worker", func(p *sim.Proc) {
		if err := q.Send(p, Message{Body: []byte("hello")}); err != nil {
			t.Errorf("send: %v", err)
		}
		got := q.Receive(p, 10, time.Second)
		if len(got) != 1 || string(got[0].Body) != "hello" {
			t.Errorf("received %v", got)
		}
		if err := q.DeleteBatch(p, []string{got[0].ReceiptHandle}); err != nil {
			t.Errorf("delete: %v", err)
		}
		if q.Depth() != 0 {
			t.Errorf("depth = %d after delete", q.Depth())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.SQSReceiveCalls != 1 || m.SQSDeleteCalls != 1 || m.SQSSendCalls != 1 {
		t.Fatalf("meter: recv=%d del=%d send=%d", m.SQSReceiveCalls, m.SQSDeleteCalls, m.SQSSendCalls)
	}
}

func TestLongPollWaitsForArrival(t *testing.T) {
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	var recvAt time.Duration
	k.Go("consumer", func(p *sim.Proc) {
		got := q.Receive(p, 10, 20*time.Second)
		if len(got) != 1 {
			t.Errorf("got %d messages", len(got))
		}
		recvAt = p.Now()
	})
	k.Go("producer", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		q.Send(p, Message{Body: []byte("x")})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Producer sends at 5s + send latency; consumer should wake right then,
	// not at the 20s timeout.
	if recvAt > 6*time.Second {
		t.Fatalf("long poll returned at %v, want shortly after 5s arrival", recvAt)
	}
}

func TestLongPollTimesOutEmpty(t *testing.T) {
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	k.Go("consumer", func(p *sim.Proc) {
		got := q.Receive(p, 10, 4*time.Second)
		if got != nil {
			t.Errorf("got %v from empty queue", got)
		}
		if p.Now() < 4*time.Second {
			t.Errorf("returned at %v, want after full 4s wait", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if q.EmptyReceives != 1 {
		t.Fatalf("empty receives = %d", q.EmptyReceives)
	}
}

func TestShortPollCanMissMessages(t *testing.T) {
	// With messages on all shards, repeated short polls must sometimes
	// return fewer messages than a long poll would, because only a subset
	// of shards is sampled.
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	missed := false
	k.Go("worker", func(p *sim.Proc) {
		for trial := 0; trial < 20 && !missed; trial++ {
			for i := 0; i < 8; i++ {
				q.Send(p, Message{Body: []byte{byte(i)}})
			}
			got := q.Receive(p, 10, 0)
			if len(got) < 8 {
				missed = true
			}
			// Drain for the next trial.
			for q.Depth() > 0 {
				rest := q.Receive(p, 10, time.Second)
				var hs []string
				for _, r := range rest {
					hs = append(hs, r.ReceiptHandle)
				}
				q.DeleteBatch(p, hs)
			}
			var hs []string
			for _, r := range got {
				hs = append(hs, r.ReceiptHandle)
			}
			q.DeleteBatch(p, hs)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !missed {
		t.Fatal("short polls never missed a message across 20 trials")
	}
}

func TestLongPollSeesAllShards(t *testing.T) {
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	k.Go("worker", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			q.Send(p, Message{Body: []byte{byte(i)}})
		}
		got := q.Receive(p, 8, time.Second)
		if len(got) != 8 {
			t.Errorf("long poll returned %d of 8", len(got))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchLimitTen(t *testing.T) {
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	k.Go("worker", func(p *sim.Proc) {
		for i := 0; i < 25; i++ {
			q.Send(p, Message{Body: []byte{byte(i)}})
		}
		got := q.Receive(p, 99, time.Second)
		if len(got) != 10 {
			t.Errorf("receive returned %d, want capped at 10", len(got))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVisibilityTimeoutRedelivers(t *testing.T) {
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	k.Go("worker", func(p *sim.Proc) {
		q.Send(p, Message{Body: []byte("x")})
		got := q.Receive(p, 10, time.Second)
		if len(got) != 1 {
			t.Fatalf("first receive got %d", len(got))
		}
		// Don't delete; wait past visibility timeout.
		p.Sleep(svc.Config().VisibilityTimeout + time.Second)
		again := q.Receive(p, 10, time.Second)
		if len(again) != 1 {
			t.Errorf("redelivery receive got %d", len(again))
		}
		var hs []string
		for _, r := range again {
			hs = append(hs, r.ReceiptHandle)
		}
		q.DeleteBatch(p, hs)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Redeliveries != 1 {
		t.Fatalf("redeliveries = %d, want 1", q.Redeliveries)
	}
}

func TestDeletedMessageNotRedelivered(t *testing.T) {
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	k.Go("worker", func(p *sim.Proc) {
		q.Send(p, Message{Body: []byte("x")})
		got := q.Receive(p, 10, time.Second)
		q.DeleteBatch(p, []string{got[0].ReceiptHandle})
		p.Sleep(svc.Config().VisibilityTimeout * 2)
		if q.Depth() != 0 {
			t.Errorf("depth = %d, want 0", q.Depth())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Redeliveries != 0 {
		t.Fatalf("redeliveries = %d, want 0", q.Redeliveries)
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	k.Go("worker", func(p *sim.Proc) {
		err := q.Send(p, Message{Body: make([]byte, 300*1024)})
		if err == nil {
			t.Error("oversize message accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMessageSizeIncludesAttributes(t *testing.T) {
	m := Message{Body: make([]byte, 100), Attributes: map[string]string{"src": "42"}}
	if m.Size() != 100+3+2 {
		t.Fatalf("size = %d, want 105", m.Size())
	}
}

func TestDeleteBatchLimitAndForeignHandle(t *testing.T) {
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	k.Go("worker", func(p *sim.Proc) {
		hs := make([]string, 11)
		for i := range hs {
			hs[i] = fmt.Sprintf("q/%d", i)
		}
		if err := q.DeleteBatch(p, hs); err == nil {
			t.Error("11-handle delete batch accepted")
		}
		if err := q.DeleteBatch(p, []string{"other/1"}); err == nil {
			t.Error("foreign receipt handle accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	k, _, svc := newSvc()
	q := svc.CreateQueue("q")
	k.Go("worker", func(p *sim.Proc) {
		q.Send(p, Message{Body: []byte("b"), Attributes: map[string]string{"layer": "3", "src": "7"}})
		got := q.Receive(p, 10, time.Second)
		if len(got) != 1 || got[0].Attributes["layer"] != "3" || got[0].Attributes["src"] != "7" {
			t.Errorf("attributes lost: %+v", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLongPollReturnsMoreMessagesPerCall(t *testing.T) {
	// The paper's polling analysis: long polling returns significantly
	// more messages per poll request than short polling. Reproduce the
	// aggregate effect.
	perMode := map[bool]float64{}
	for _, long := range []bool{false, true} {
		k, _, svc := newSvc()
		q := svc.CreateQueue("q")
		received := 0
		calls := 0
		k.Go("producer", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				q.Send(p, Message{Body: []byte{byte(i)}})
				p.Sleep(50 * time.Millisecond)
			}
		})
		k.Go("consumer", func(p *sim.Proc) {
			wait := time.Duration(0)
			if long {
				wait = 2 * time.Second
			}
			for received < 40 {
				got := q.Receive(p, 10, wait)
				calls++
				received += len(got)
				var hs []string
				for _, r := range got {
					hs = append(hs, r.ReceiptHandle)
				}
				q.DeleteBatch(p, hs)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		perMode[long] = 40.0 / float64(calls)
	}
	if perMode[true] <= perMode[false] {
		t.Fatalf("messages/poll long=%.2f short=%.2f, want long > short", perMode[true], perMode[false])
	}
}

func TestQueueLookup(t *testing.T) {
	_, _, svc := newSvc()
	q := svc.CreateQueue("a")
	if svc.Queue("a") != q {
		t.Fatal("Queue lookup failed")
	}
	if svc.Queue("missing") != nil {
		t.Fatal("missing queue should be nil")
	}
	if svc.CreateQueue("a") != q {
		t.Fatal("CreateQueue should be idempotent")
	}
}
