// Package s3 simulates a cloud object storage service modelled on AWS S3
// (paper §II-D6, §III-B). It reproduces the behaviours FSD-Inf-Object is
// designed around:
//
//   - buckets holding immutable objects under hierarchical key prefixes,
//   - PUT/GET/LIST requests billed per request, independent of object size
//     (which is why object-storage communication cost grows linearly with
//     worker parallelism but not data volume, paper §VI-D1),
//   - per-prefix API rate limits, so spreading traffic over k buckets
//     raises the aggregate limit k-fold (the paper's multi-bucket design),
//   - latency plus bandwidth transfer-time models for reads and writes,
//   - strong read-after-write consistency (as S3 provides today), which the
//     object channel's LIST-driven receive loop relies on.
package s3

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

// Config holds service-wide behaviour and quotas.
type Config struct {
	// PutLatency, GetLatency, ListLatency and DeleteLatency are
	// first-byte API latencies charged to the caller.
	PutLatency    time.Duration
	GetLatency    time.Duration
	ListLatency   time.Duration
	DeleteLatency time.Duration

	// PutBytesPerSec and GetBytesPerSec model single-connection transfer
	// bandwidth between a function instance and the service.
	PutBytesPerSec float64
	GetBytesPerSec float64

	// PutRatePerPrefix and GetRatePerPrefix are the provider API quotas
	// per bucket prefix (3,500 writes/s and 5,500 reads/s on S3). LIST
	// shares the read quota.
	PutRatePerPrefix float64
	GetRatePerPrefix float64

	// MaxKeysPerList caps keys returned by one LIST call (1,000).
	MaxKeysPerList int
}

// DefaultConfig returns S3-like defaults.
func DefaultConfig() Config {
	return Config{
		PutLatency:       25 * time.Millisecond,
		GetLatency:       15 * time.Millisecond,
		ListLatency:      30 * time.Millisecond,
		DeleteLatency:    15 * time.Millisecond,
		PutBytesPerSec:   90e6,
		GetBytesPerSec:   120e6,
		PutRatePerPrefix: 3500,
		GetRatePerPrefix: 5500,
		MaxKeysPerList:   1000,
	}
}

// Service is a simulated S3 endpoint.
type Service struct {
	k       *sim.Kernel
	meter   *usage.Meter
	cfg     Config
	buckets map[string]*Bucket
}

// New returns an object storage service on kernel k metering into meter.
func New(k *sim.Kernel, meter *usage.Meter, cfg Config) *Service {
	return &Service{k: k, meter: meter, cfg: cfg, buckets: make(map[string]*Bucket)}
}

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// CreateBucket creates (or returns the existing) bucket with the given name.
func (s *Service) CreateBucket(name string) *Bucket {
	if b, ok := s.buckets[name]; ok {
		return b
	}
	b := &Bucket{
		name:        name,
		svc:         s,
		objects:     make(map[string][]byte),
		putLimiters: make(map[string]*sim.Limiter),
		getLimiters: make(map[string]*sim.Limiter),
	}
	s.buckets[name] = b
	return b
}

// Bucket returns the named bucket, or nil if it does not exist.
func (s *Service) Bucket(name string) *Bucket { return s.buckets[name] }

// Bucket is a simulated S3 bucket.
type Bucket struct {
	name    string
	svc     *Service
	objects map[string][]byte

	putLimiters map[string]*sim.Limiter
	getLimiters map[string]*sim.Limiter

	// Bandwidth overrides; 0 uses the service defaults. Experiments use
	// these to model parallel multipart transfers for bulk model loads.
	PutBandwidth float64
	GetBandwidth float64

	// Stats.
	Puts    int64
	Gets    int64
	Lists   int64
	Deletes int64
	Bytes   int64
}

// Name returns the bucket name.
func (b *Bucket) Name() string { return b.name }

// prefixOf returns the rate-limit prefix of a key: everything up to and
// including the final '/'.
func prefixOf(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[:i+1]
	}
	return ""
}

func (b *Bucket) putLimiter(key string) *sim.Limiter {
	p := prefixOf(key)
	l, ok := b.putLimiters[p]
	if !ok {
		l = sim.NewLimiter(b.svc.k, b.svc.cfg.PutRatePerPrefix, b.svc.cfg.PutRatePerPrefix)
		b.putLimiters[p] = l
	}
	return l
}

func (b *Bucket) getLimiter(key string) *sim.Limiter {
	p := prefixOf(key)
	l, ok := b.getLimiters[p]
	if !ok {
		l = sim.NewLimiter(b.svc.k, b.svc.cfg.GetRatePerPrefix, b.svc.cfg.GetRatePerPrefix)
		b.getLimiters[p] = l
	}
	return l
}

func transfer(bytes int, rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / rate * float64(time.Second))
}

// Put writes an object, overwriting any existing object at key. PUTs are
// billed per request regardless of size, including zero-byte objects (the
// engine's ".nul" markers).
func (b *Bucket) Put(p *sim.Proc, key string, data []byte) error {
	if key == "" {
		return fmt.Errorf("s3: empty object key")
	}
	b.putLimiter(key).Take(p, 1)
	bw := b.svc.cfg.PutBytesPerSec
	if b.PutBandwidth > 0 {
		bw = b.PutBandwidth
	}
	p.Sleep(b.svc.cfg.PutLatency + transfer(len(data), bw))
	cp := make([]byte, len(data))
	copy(cp, data)
	b.objects[key] = cp
	b.Puts++
	b.Bytes += int64(len(data))
	b.svc.meter.S3PutCalls++
	b.svc.meter.S3BytesIn += int64(len(data))
	return nil
}

// Get reads an object. Missing keys return an error after the API latency,
// as a real request would.
func (b *Bucket) Get(p *sim.Proc, key string) ([]byte, error) {
	b.getLimiter(key).Take(p, 1)
	b.Gets++
	b.svc.meter.S3GetCalls++
	data, ok := b.objects[key]
	if !ok {
		p.Sleep(b.svc.cfg.GetLatency)
		return nil, fmt.Errorf("s3: no such key %q in bucket %q", key, b.name)
	}
	bw := b.svc.cfg.GetBytesPerSec
	if b.GetBandwidth > 0 {
		bw = b.GetBandwidth
	}
	p.Sleep(b.svc.cfg.GetLatency + transfer(len(data), bw))
	b.svc.meter.S3BytesOut += int64(len(data))
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// List returns up to MaxKeysPerList keys with the given prefix, in
// lexicographic order. One billed LIST request per call.
func (b *Bucket) List(p *sim.Proc, prefix string) []string {
	b.getLimiter(prefix+"x").Take(p, 1)
	p.Sleep(b.svc.cfg.ListLatency)
	b.Lists++
	b.svc.meter.S3ListCalls++
	var keys []string
	for k := range b.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) > b.svc.cfg.MaxKeysPerList {
		keys = keys[:b.svc.cfg.MaxKeysPerList]
	}
	return keys
}

// Delete removes an object. Deleting a missing key succeeds, as on S3.
func (b *Bucket) Delete(p *sim.Proc, key string) {
	p.Sleep(b.svc.cfg.DeleteLatency)
	delete(b.objects, key)
	b.Deletes++
}

// Stage writes an object host-side, free of charge and virtual time: no
// billed request, no transfer delay, no rate-limit token. Deployments use
// it for offline staging (a-priori model upload, buffered request inputs,
// paper §V-B2), which the engine models as happening outside the metered
// run. It must not be used for anything a function pays for.
func (b *Bucket) Stage(key string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.objects[key] = cp
}

// Size returns the stored byte size of an object and whether it exists,
// without billing a request (test/metrics helper).
func (b *Bucket) Size(key string) (int, bool) {
	data, ok := b.objects[key]
	return len(data), ok
}

// NumObjects returns the number of stored objects (test/metrics helper).
func (b *Bucket) NumObjects() int { return len(b.objects) }

// Clear discards all objects (test/reset helper; free of charge).
func (b *Bucket) Clear() { b.objects = make(map[string][]byte) }
