package s3

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

func newSvc() (*sim.Kernel, *usage.Meter, *Service) {
	k := sim.New()
	m := usage.NewMeter()
	return k, m, New(k, m, DefaultConfig())
}

func TestPutGetRoundTrip(t *testing.T) {
	k, m, svc := newSvc()
	b := svc.CreateBucket("bucket-0")
	k.Go("w", func(p *sim.Proc) {
		if err := b.Put(p, "1/2/3_2.dat", []byte("payload")); err != nil {
			t.Errorf("put: %v", err)
		}
		data, err := b.Get(p, "1/2/3_2.dat")
		if err != nil {
			t.Errorf("get: %v", err)
		}
		if !bytes.Equal(data, []byte("payload")) {
			t.Errorf("data = %q", data)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.S3PutCalls != 1 || m.S3GetCalls != 1 {
		t.Fatalf("puts=%d gets=%d", m.S3PutCalls, m.S3GetCalls)
	}
	if m.S3BytesIn != 7 || m.S3BytesOut != 7 {
		t.Fatalf("bytesIn=%d bytesOut=%d", m.S3BytesIn, m.S3BytesOut)
	}
}

func TestGetMissingKeyErrorsAndBills(t *testing.T) {
	k, m, svc := newSvc()
	b := svc.CreateBucket("b")
	k.Go("w", func(p *sim.Proc) {
		if _, err := b.Get(p, "nope"); err == nil {
			t.Error("missing key returned no error")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.S3GetCalls != 1 {
		t.Fatalf("gets = %d, want 1 (missing keys still bill)", m.S3GetCalls)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	k, _, svc := newSvc()
	b := svc.CreateBucket("b")
	k.Go("w", func(p *sim.Proc) {
		orig := []byte("abc")
		b.Put(p, "k", orig)
		orig[0] = 'Z' // caller mutation must not affect stored object
		got, _ := b.Get(p, "k")
		if string(got) != "abc" {
			t.Errorf("stored object affected by caller mutation: %q", got)
		}
		got[0] = 'Y' // reader mutation must not affect stored object
		got2, _ := b.Get(p, "k")
		if string(got2) != "abc" {
			t.Errorf("stored object affected by reader mutation: %q", got2)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestListPrefixSortedAndFiltered(t *testing.T) {
	k, m, svc := newSvc()
	b := svc.CreateBucket("b")
	k.Go("w", func(p *sim.Proc) {
		b.Put(p, "3/7/2_7.dat", nil)
		b.Put(p, "3/7/1_7.nul", nil)
		b.Put(p, "3/8/1_8.dat", nil)
		b.Put(p, "2/7/1_7.dat", nil)
		keys := b.List(p, "3/7/")
		want := []string{"3/7/1_7.nul", "3/7/2_7.dat"}
		if len(keys) != 2 || keys[0] != want[0] || keys[1] != want[1] {
			t.Errorf("keys = %v, want %v", keys, want)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.S3ListCalls != 1 {
		t.Fatalf("lists = %d", m.S3ListCalls)
	}
}

func TestListCapsKeys(t *testing.T) {
	k, _, svc := newSvc()
	cfg := DefaultConfig()
	cfg.MaxKeysPerList = 5
	svc = New(k, usage.NewMeter(), cfg)
	b := svc.CreateBucket("b")
	k.Go("w", func(p *sim.Proc) {
		for i := 0; i < 9; i++ {
			b.Put(p, fmt.Sprintf("x/%d", i), nil)
		}
		if got := b.List(p, "x/"); len(got) != 5 {
			t.Errorf("list returned %d keys, want 5", len(got))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPutOverwrites(t *testing.T) {
	k, _, svc := newSvc()
	b := svc.CreateBucket("b")
	k.Go("w", func(p *sim.Proc) {
		b.Put(p, "k", []byte("v1"))
		b.Put(p, "k", []byte("v2"))
		got, _ := b.Get(p, "k")
		if string(got) != "v2" {
			t.Errorf("got %q, want v2", got)
		}
		if b.NumObjects() != 1 {
			t.Errorf("objects = %d, want 1", b.NumObjects())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteObjectBillsPut(t *testing.T) {
	k, m, svc := newSvc()
	b := svc.CreateBucket("b")
	k.Go("w", func(p *sim.Proc) {
		if err := b.Put(p, "a/1_2.nul", nil); err != nil {
			t.Errorf("nul put: %v", err)
		}
		if sz, ok := b.Size("a/1_2.nul"); !ok || sz != 0 {
			t.Errorf("size=%d ok=%v", sz, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.S3PutCalls != 1 {
		t.Fatalf("puts = %d (zero-byte PUTs are billed)", m.S3PutCalls)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	k, _, svc := newSvc()
	b := svc.CreateBucket("b")
	k.Go("w", func(p *sim.Proc) {
		if err := b.Put(p, "", []byte("x")); err == nil {
			t.Error("empty key accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	k, _, svc := newSvc()
	b := svc.CreateBucket("b")
	var smallDur, bigDur time.Duration
	k.Go("w", func(p *sim.Proc) {
		t0 := p.Now()
		b.Put(p, "small", make([]byte, 1024))
		smallDur = p.Now() - t0
		t0 = p.Now()
		b.Put(p, "big", make([]byte, 64*1024*1024))
		bigDur = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if bigDur < 2*smallDur {
		t.Fatalf("big put %v not much slower than small put %v", bigDur, smallDur)
	}
}

func TestPerPrefixRateLimit(t *testing.T) {
	// Hammer one prefix with more than the burst of PUTs; the limiter
	// must spread them out in time. A second prefix is unaffected.
	k, _, svc := newSvc()
	cfg := DefaultConfig()
	cfg.PutRatePerPrefix = 10 // tiny quota for the test
	cfg.PutLatency = 0
	cfg.PutBytesPerSec = 0
	svc = New(k, usage.NewMeter(), cfg)
	b := svc.CreateBucket("b")
	var sameDur time.Duration
	k.Go("w", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 30; i++ {
			b.Put(p, fmt.Sprintf("hot/%d", i), nil)
		}
		sameDur = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 30 puts at 10/s with burst 10: ~2 s of throttling.
	if sameDur < time.Second {
		t.Fatalf("hot-prefix puts finished in %v, want throttled >= 1s", sameDur)
	}

	// Different prefixes (the multi-bucket/prefix design): no throttling.
	k2 := sim.New()
	svc2 := New(k2, usage.NewMeter(), cfg)
	b2 := svc2.CreateBucket("b")
	var spreadDur time.Duration
	k2.Go("w", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < 30; i++ {
			b2.Put(p, fmt.Sprintf("p%d/obj", i), nil)
		}
		spreadDur = p.Now() - t0
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if spreadDur != 0 {
		t.Fatalf("spread-prefix puts took %v, want 0 (independent quotas)", spreadDur)
	}
}

func TestDeleteMissingKeySucceeds(t *testing.T) {
	k, _, svc := newSvc()
	b := svc.CreateBucket("b")
	k.Go("w", func(p *sim.Proc) {
		b.Delete(p, "ghost")
		b.Put(p, "real", []byte("x"))
		b.Delete(p, "real")
		if _, ok := b.Size("real"); ok {
			t.Error("object still present after delete")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBucketLookupIdempotent(t *testing.T) {
	_, _, svc := newSvc()
	a := svc.CreateBucket("x")
	if svc.CreateBucket("x") != a || svc.Bucket("x") != a {
		t.Fatal("bucket identity not stable")
	}
	if svc.Bucket("y") != nil {
		t.Fatal("missing bucket should be nil")
	}
}

func TestPrefixOf(t *testing.T) {
	cases := map[string]string{
		"a/b/c.dat": "a/b/",
		"top":       "",
		"x/":        "x/",
		"":          "",
	}
	for key, want := range cases {
		if got := prefixOf(key); got != want {
			t.Errorf("prefixOf(%q) = %q, want %q", key, got, want)
		}
	}
}
