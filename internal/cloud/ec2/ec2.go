// Package ec2 simulates provisioned server instances for the paper's
// server-based baselines (§VI-A2, §VI-B): Server-Always-On (large VMs left
// running between queries) and Server-Job-Scoped (VMs provisioned per
// request and shut down afterwards). Only the behaviours the comparison
// depends on are modelled: instance sizing (vCPUs, memory), provisioning
// delay, hourly billing, compute scaled by vCPU count, and model-load
// bandwidth from block storage (EBS) or object storage.
package ec2

import (
	"fmt"
	"time"

	"fsdinference/internal/cloud/perf"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

// InstanceType describes a server instance size.
type InstanceType struct {
	Name     string
	VCPUs    int
	MemoryGB int
}

// Catalog lists the instance types used by the paper's baselines.
var Catalog = map[string]InstanceType{
	"c5.2xlarge":  {Name: "c5.2xlarge", VCPUs: 8, MemoryGB: 16},
	"c5.9xlarge":  {Name: "c5.9xlarge", VCPUs: 36, MemoryGB: 72},
	"c5.12xlarge": {Name: "c5.12xlarge", VCPUs: 48, MemoryGB: 96},
}

// Config holds baseline environment parameters.
type Config struct {
	// ProvisionDelay is the job-scoped instance startup time (boot +
	// environment preparation), the latency penalty Fig. 5 shows for JS.
	ProvisionDelay time.Duration
	// EBSReadBytesPerSec is model-load bandwidth from attached block
	// storage (the "hot-ish" path of Server-Always-On-Hot's miss case).
	EBSReadBytesPerSec float64
	// S3ReadBytesPerSec is model-load bandwidth from object storage
	// (Server-Always-On-Cold and Server-Job-Scoped).
	S3ReadBytesPerSec float64
	// MinBilledDuration is the minimum billed runtime per launched
	// instance (AWS bills per second with a 60 s minimum).
	MinBilledDuration time.Duration
	// EffectiveVCPUCap bounds how many vCPUs the baseline codebase can
	// exploit. The paper runs the FSD-Inf-Serial Python/SciPy code on
	// its servers (§VI-A2); SciPy sparse kernels have limited intra-op
	// parallelism, so a 48-vCPU server does not run 48x faster. 0 means
	// uncapped.
	EffectiveVCPUCap float64
	// Perf is the shared calibrated compute model.
	Perf perf.Model
}

// DefaultConfig returns EC2-like defaults.
func DefaultConfig() Config {
	return Config{
		ProvisionDelay:     105 * time.Second,
		EBSReadBytesPerSec: 350e6,
		S3ReadBytesPerSec:  180e6,
		MinBilledDuration:  60 * time.Second,
		EffectiveVCPUCap:   8,
		Perf:               perf.Default(),
	}
}

// Service launches and bills simulated instances.
type Service struct {
	k     *sim.Kernel
	meter *usage.Meter
	cfg   Config

	// Launches counts instances started.
	Launches int
}

// New returns an EC2 service on kernel k metering into meter.
func New(k *sim.Kernel, meter *usage.Meter, cfg Config) *Service {
	return &Service{k: k, meter: meter, cfg: cfg}
}

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// Instance is a running simulated server.
type Instance struct {
	Type InstanceType
	svc  *Service

	startedAt  time.Duration
	terminated bool
	alwaysOn   bool
}

// Launch provisions a fresh instance of the named type, charging the
// provisioning delay to p. The instance bills from launch until Terminate.
func (s *Service) Launch(p *sim.Proc, typeName string) (*Instance, error) {
	t, ok := Catalog[typeName]
	if !ok {
		return nil, fmt.Errorf("ec2: unknown instance type %q", typeName)
	}
	p.Sleep(s.cfg.ProvisionDelay)
	s.Launches++
	return &Instance{Type: t, svc: s, startedAt: p.Now()}, nil
}

// AlwaysOn returns an already-running instance whose billing is handled
// externally (the workload layer bills always-on capacity for the full
// provisioned window regardless of utilisation).
func (s *Service) AlwaysOn(typeName string) (*Instance, error) {
	t, ok := Catalog[typeName]
	if !ok {
		return nil, fmt.Errorf("ec2: unknown instance type %q", typeName)
	}
	return &Instance{Type: t, svc: s, alwaysOn: true}, nil
}

// Terminate stops the instance and bills its runtime (per-second billing
// with the configured minimum). Always-on instances are not billed here.
func (i *Instance) Terminate(p *sim.Proc) {
	if i.terminated || i.alwaysOn {
		i.terminated = true
		return
	}
	i.terminated = true
	dur := p.Now() - i.startedAt
	if dur < i.svc.cfg.MinBilledDuration {
		dur = i.svc.cfg.MinBilledDuration
	}
	i.svc.meter.AddEC2Hours(i.Type.Name, dur.Hours())
}

// effectiveVCPUs returns the vCPUs the baseline codebase actually exploits.
func (i *Instance) effectiveVCPUs() float64 {
	v := float64(i.Type.VCPUs)
	if cap := i.svc.cfg.EffectiveVCPUCap; cap > 0 && v > cap {
		v = cap
	}
	return v
}

// Compute charges virtual time for macs multiply-adds on the instance,
// bounded by the codebase's effective parallelism (the baselines run the
// serial engine, §VI-A2).
func (i *Instance) Compute(p *sim.Proc, macs float64) {
	sec := macs / (i.svc.cfg.Perf.MACRatePerVCPU * i.effectiveVCPUs())
	p.Sleep(time.Duration(sec * float64(time.Second)))
}

// ComputeElem charges virtual time for element-wise operations.
func (i *Instance) ComputeElem(p *sim.Proc, ops float64) {
	sec := ops / (i.svc.cfg.Perf.ElemRatePerVCPU * i.effectiveVCPUs())
	p.Sleep(time.Duration(sec * float64(time.Second)))
}

// LoadFromEBS charges the time to read bytes from attached block storage.
func (i *Instance) LoadFromEBS(p *sim.Proc, bytes int64) {
	p.Sleep(time.Duration(float64(bytes) / i.svc.cfg.EBSReadBytesPerSec * float64(time.Second)))
}

// LoadFromS3 charges the time to read bytes from object storage.
func (i *Instance) LoadFromS3(p *sim.Proc, bytes int64) {
	p.Sleep(time.Duration(float64(bytes) / i.svc.cfg.S3ReadBytesPerSec * float64(time.Second)))
}

// MemoryBytes returns the instance's memory capacity.
func (i *Instance) MemoryBytes() int64 { return int64(i.Type.MemoryGB) << 30 }
