package ec2

import (
	"testing"
	"time"

	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

func TestLaunchChargesProvisionDelay(t *testing.T) {
	k := sim.New()
	m := usage.NewMeter()
	svc := New(k, m, DefaultConfig())
	k.Go("w", func(p *sim.Proc) {
		inst, err := svc.Launch(p, "c5.2xlarge")
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		if p.Now() != svc.Config().ProvisionDelay {
			t.Errorf("launched at %v, want %v", p.Now(), svc.Config().ProvisionDelay)
		}
		inst.Terminate(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTerminateBillsMinimum(t *testing.T) {
	k := sim.New()
	m := usage.NewMeter()
	svc := New(k, m, DefaultConfig())
	k.Go("w", func(p *sim.Proc) {
		inst, _ := svc.Launch(p, "c5.12xlarge")
		p.Sleep(time.Second) // very short job
		inst.Terminate(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	wantHours := time.Minute.Hours()
	if got := m.EC2Hours["c5.12xlarge"]; got < wantHours*0.99 || got > wantHours*1.01 {
		t.Fatalf("billed hours = %v, want minimum %v", got, wantHours)
	}
}

func TestTerminateBillsActualDuration(t *testing.T) {
	k := sim.New()
	m := usage.NewMeter()
	svc := New(k, m, DefaultConfig())
	k.Go("w", func(p *sim.Proc) {
		inst, _ := svc.Launch(p, "c5.2xlarge")
		p.Sleep(30 * time.Minute)
		inst.Terminate(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.EC2Hours["c5.2xlarge"]; got < 0.49 || got > 0.51 {
		t.Fatalf("billed hours = %v, want ~0.5", got)
	}
	// And convert to dollars via the catalogue.
	cost := m.Cost(pricing.Default())
	want := 0.5 * 0.34
	if cost.EC2 < want*0.98 || cost.EC2 > want*1.02 {
		t.Fatalf("EC2 cost = %v, want ~%v", cost.EC2, want)
	}
}

func TestAlwaysOnNotBilledOnTerminate(t *testing.T) {
	k := sim.New()
	m := usage.NewMeter()
	svc := New(k, m, DefaultConfig())
	k.Go("w", func(p *sim.Proc) {
		inst, err := svc.AlwaysOn("c5.12xlarge")
		if err != nil {
			t.Errorf("always-on: %v", err)
			return
		}
		p.Sleep(time.Hour)
		inst.Terminate(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.EC2Hours["c5.12xlarge"] != 0 {
		t.Fatalf("always-on billed %v hours via Terminate", m.EC2Hours["c5.12xlarge"])
	}
}

func TestComputeScalesWithVCPUs(t *testing.T) {
	k := sim.New()
	cfg := DefaultConfig()
	cfg.EffectiveVCPUCap = 0 // measure raw hardware scaling
	svc := New(k, usage.NewMeter(), cfg)
	var t8, t48 time.Duration
	k.Go("w", func(p *sim.Proc) {
		small, _ := svc.AlwaysOn("c5.2xlarge")
		big, _ := svc.AlwaysOn("c5.12xlarge")
		t0 := p.Now()
		small.Compute(p, 1e9)
		t8 = p.Now() - t0
		t0 = p.Now()
		big.Compute(p, 1e9)
		t48 = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(t8) / float64(t48)
	if ratio < 5.9 || ratio > 6.1 {
		t.Fatalf("8 vs 48 vCPU compute ratio = %.2f, want 6.0", ratio)
	}
}

func TestEffectiveVCPUCapLimitsBaselineSpeed(t *testing.T) {
	// The default config models the paper's single-process SciPy
	// codebase: a 48-vCPU server computes no faster than the cap.
	k := sim.New()
	svc := New(k, usage.NewMeter(), DefaultConfig())
	var t8, t48 time.Duration
	k.Go("w", func(p *sim.Proc) {
		small, _ := svc.AlwaysOn("c5.2xlarge")
		big, _ := svc.AlwaysOn("c5.12xlarge")
		t0 := p.Now()
		small.Compute(p, 1e9)
		t8 = p.Now() - t0
		t0 = p.Now()
		big.Compute(p, 1e9)
		t48 = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if t8 != t48 {
		t.Fatalf("capped compute should be equal: %v vs %v", t8, t48)
	}
}

func TestLoadBandwidths(t *testing.T) {
	k := sim.New()
	svc := New(k, usage.NewMeter(), DefaultConfig())
	var ebs, s3 time.Duration
	k.Go("w", func(p *sim.Proc) {
		inst, _ := svc.AlwaysOn("c5.12xlarge")
		t0 := p.Now()
		inst.LoadFromEBS(p, 1<<30)
		ebs = p.Now() - t0
		t0 = p.Now()
		inst.LoadFromS3(p, 1<<30)
		s3 = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ebs >= s3 {
		t.Fatalf("EBS load %v should be faster than S3 load %v", ebs, s3)
	}
}

func TestUnknownInstanceType(t *testing.T) {
	k := sim.New()
	svc := New(k, usage.NewMeter(), DefaultConfig())
	k.Go("w", func(p *sim.Proc) {
		if _, err := svc.Launch(p, "m7g.humongous"); err == nil {
			t.Error("unknown type accepted by Launch")
		}
	})
	if _, err := svc.AlwaysOn("m7g.humongous"); err == nil {
		t.Error("unknown type accepted by AlwaysOn")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogSizes(t *testing.T) {
	// Paper §VI-A2 baseline sizing.
	if c := Catalog["c5.12xlarge"]; c.VCPUs != 48 || c.MemoryGB != 96 {
		t.Fatalf("c5.12xlarge = %+v", c)
	}
	if c := Catalog["c5.9xlarge"]; c.VCPUs != 36 || c.MemoryGB != 72 {
		t.Fatalf("c5.9xlarge = %+v", c)
	}
	if c := Catalog["c5.2xlarge"]; c.VCPUs != 8 || c.MemoryGB != 16 {
		t.Fatalf("c5.2xlarge = %+v", c)
	}
}

func TestDoubleTerminateBillsOnce(t *testing.T) {
	k := sim.New()
	m := usage.NewMeter()
	svc := New(k, m, DefaultConfig())
	k.Go("w", func(p *sim.Proc) {
		inst, _ := svc.Launch(p, "c5.2xlarge")
		p.Sleep(2 * time.Hour)
		inst.Terminate(p)
		inst.Terminate(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.EC2Hours["c5.2xlarge"]; got < 1.99 || got > 2.01 {
		t.Fatalf("billed hours = %v, want ~2 (single billing)", got)
	}
}
