package sns

import (
	"testing"
	"time"

	"fsdinference/internal/cloud/sqs"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

func newStack() (*sim.Kernel, *usage.Meter, *Service, *sqs.Service) {
	k := sim.New()
	m := usage.NewMeter()
	return k, m, New(k, m, DefaultConfig()), sqs.New(k, m, sqs.DefaultConfig())
}

func TestFanOutWithFilterPolicies(t *testing.T) {
	k, _, snsSvc, sqsSvc := newStack()
	topic := snsSvc.CreateTopic("t0")
	q1 := sqsSvc.CreateQueue("q1")
	q2 := sqsSvc.CreateQueue("q2")
	topic.Subscribe(q1, FilterPolicy{"target": {"1"}})
	topic.Subscribe(q2, FilterPolicy{"target": {"2"}})

	k.Go("pub", func(p *sim.Proc) {
		err := topic.PublishBatch(p, []sqs.Message{
			{Body: []byte("for1"), Attributes: map[string]string{"target": "1"}},
			{Body: []byte("for2a"), Attributes: map[string]string{"target": "2"}},
			{Body: []byte("for2b"), Attributes: map[string]string{"target": "2"}},
		})
		if err != nil {
			t.Errorf("publish: %v", err)
		}
		p.Sleep(time.Second) // let fan-out complete
		if q1.Depth() != 1 {
			t.Errorf("q1 depth = %d, want 1", q1.Depth())
		}
		if q2.Depth() != 2 {
			t.Errorf("q2 depth = %d, want 2", q2.Depth())
		}
		got := q1.Receive(p, 10, time.Second)
		if len(got) != 1 || string(got[0].Body) != "for1" {
			t.Errorf("q1 got %v", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmatchedMessageIsFiltered(t *testing.T) {
	k, _, snsSvc, sqsSvc := newStack()
	topic := snsSvc.CreateTopic("t")
	q := sqsSvc.CreateQueue("q")
	topic.Subscribe(q, FilterPolicy{"target": {"5"}})
	k.Go("pub", func(p *sim.Proc) {
		topic.PublishBatch(p, []sqs.Message{
			{Body: []byte("x"), Attributes: map[string]string{"target": "9"}},
		})
		p.Sleep(time.Second)
		if q.Depth() != 0 {
			t.Errorf("q depth = %d, want 0 (filtered)", q.Depth())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if topic.MessagesFiltered != 1 {
		t.Fatalf("filtered = %d, want 1", topic.MessagesFiltered)
	}
}

func TestNilFilterDeliversAll(t *testing.T) {
	k, _, snsSvc, sqsSvc := newStack()
	topic := snsSvc.CreateTopic("t")
	q := sqsSvc.CreateQueue("q")
	topic.Subscribe(q, nil)
	k.Go("pub", func(p *sim.Proc) {
		topic.PublishBatch(p, []sqs.Message{{Body: []byte("a")}, {Body: []byte("b")}})
		p.Sleep(time.Second)
		if q.Depth() != 2 {
			t.Errorf("depth = %d, want 2", q.Depth())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchQuotas(t *testing.T) {
	k, _, snsSvc, _ := newStack()
	topic := snsSvc.CreateTopic("t")
	k.Go("pub", func(p *sim.Proc) {
		// Too many entries.
		big := make([]sqs.Message, 11)
		for i := range big {
			big[i] = sqs.Message{Body: []byte("x")}
		}
		if err := topic.PublishBatch(p, big); err == nil {
			t.Error("11-entry batch accepted")
		}
		// Oversize single entry.
		if err := topic.PublishBatch(p, []sqs.Message{{Body: make([]byte, 300*1024)}}); err == nil {
			t.Error("oversize entry accepted")
		}
		// Batch total over 256 KB.
		over := []sqs.Message{
			{Body: make([]byte, 150*1024)},
			{Body: make([]byte, 150*1024)},
		}
		if err := topic.PublishBatch(p, over); err == nil {
			t.Error("oversize batch total accepted")
		}
		// Empty batch.
		if err := topic.PublishBatch(p, nil); err == nil {
			t.Error("empty batch accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBilledIn64KBIncrements(t *testing.T) {
	k, m, snsSvc, sqsSvc := newStack()
	topic := snsSvc.CreateTopic("t")
	topic.Subscribe(sqsSvc.CreateQueue("q"), nil)
	k.Go("pub", func(p *sim.Proc) {
		// 4 x 60 KB = 240 KB -> ceil(240/64) = 4 billed requests.
		var batch []sqs.Message
		for i := 0; i < 4; i++ {
			batch = append(batch, sqs.Message{Body: make([]byte, 60*1024)})
		}
		topic.PublishBatch(p, batch)
		// Tiny publish still bills 1.
		topic.PublishBatch(p, []sqs.Message{{Body: []byte("x")}})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.SNSPublishCalls != 2 {
		t.Fatalf("publish calls = %d, want 2", m.SNSPublishCalls)
	}
	if m.SNSBilledPublishes != 5 {
		t.Fatalf("billed publishes = %d, want 4+1=5", m.SNSBilledPublishes)
	}
}

func TestDeliveredBytesMetered(t *testing.T) {
	k, m, snsSvc, sqsSvc := newStack()
	topic := snsSvc.CreateTopic("t")
	qa := sqsSvc.CreateQueue("qa")
	qb := sqsSvc.CreateQueue("qb")
	topic.Subscribe(qa, nil)
	topic.Subscribe(qb, nil)
	k.Go("pub", func(p *sim.Proc) {
		topic.PublishBatch(p, []sqs.Message{{Body: make([]byte, 1000)}})
		p.Sleep(time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Delivered to two queues: 2000 bytes total.
	if m.SNSDeliveredBytes != 2000 {
		t.Fatalf("delivered bytes = %d, want 2000", m.SNSDeliveredBytes)
	}
}

func TestDeliveryDelayApplied(t *testing.T) {
	k, _, snsSvc, sqsSvc := newStack()
	topic := snsSvc.CreateTopic("t")
	q := sqsSvc.CreateQueue("q")
	topic.Subscribe(q, nil)
	var recvAt time.Duration
	k.Go("consumer", func(p *sim.Proc) {
		got := q.Receive(p, 10, 20*time.Second)
		if len(got) == 0 {
			t.Error("nothing received")
		}
		recvAt = p.Now()
	})
	k.Go("pub", func(p *sim.Proc) {
		topic.PublishBatch(p, []sqs.Message{{Body: []byte("x")}})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	min := snsSvc.Config().PublishLatency + snsSvc.Config().DeliveryLatency
	if recvAt < min {
		t.Fatalf("received at %v, want >= %v (publish + delivery latency)", recvAt, min)
	}
}

func TestFilterPolicyMatches(t *testing.T) {
	f := FilterPolicy{"target": {"1", "2"}, "kind": {"data"}}
	cases := []struct {
		attrs map[string]string
		want  bool
	}{
		{map[string]string{"target": "1", "kind": "data"}, true},
		{map[string]string{"target": "2", "kind": "data"}, true},
		{map[string]string{"target": "3", "kind": "data"}, false},
		{map[string]string{"target": "1"}, false},
		{map[string]string{"target": "1", "kind": "ctrl"}, false},
		{nil, false},
	}
	for i, c := range cases {
		if got := f.Matches(c.attrs); got != c.want {
			t.Errorf("case %d: Matches(%v) = %v, want %v", i, c.attrs, got, c.want)
		}
	}
	if !(FilterPolicy{}).Matches(nil) {
		t.Error("empty policy should match anything")
	}
}

func TestTopicLookupIdempotent(t *testing.T) {
	_, _, snsSvc, _ := newStack()
	a := snsSvc.CreateTopic("x")
	if snsSvc.CreateTopic("x") != a || snsSvc.Topic("x") != a {
		t.Fatal("topic identity not stable")
	}
	if snsSvc.Topic("y") != nil {
		t.Fatal("missing topic should be nil")
	}
}
