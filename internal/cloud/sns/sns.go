// Package sns simulates a cloud publish-subscribe service modelled on AWS
// SNS (paper §II-D4, §III-A). It reproduces the behaviours FSD-Inf-Queue is
// designed around:
//
//   - topics with queue subscriptions and service-side filter policies, so
//     targeted message distribution is offloaded from the
//     resource-constrained FaaS workers onto the back-end service,
//   - batch publishes of up to 10 messages and 256 KB total payload,
//   - billing in 64 KiB increments (a full 256 KB publish bills as 4
//     requests) plus per-byte SNS-to-SQS transfer charges,
//   - asynchronous fan-out delivery with a configurable service-side delay.
package sns

import (
	"fmt"
	"time"

	"fsdinference/internal/cloud/pricing"
	"fsdinference/internal/cloud/sqs"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

// Config holds service-wide behaviour and quotas.
type Config struct {
	// PublishLatency is the API round-trip charged to the publisher.
	PublishLatency time.Duration
	// PublishBytesPerSec models upload bandwidth from the caller.
	PublishBytesPerSec float64
	// DeliveryLatency is the service-side delay before a published
	// message lands on matching subscribed queues.
	DeliveryLatency time.Duration

	// MaxBatchEntries is the maximum messages per publish batch (10).
	MaxBatchEntries int
	// MaxPayloadBytes caps both a single message and the whole batch
	// (256 KB).
	MaxPayloadBytes int
}

// DefaultConfig returns SNS-like defaults.
func DefaultConfig() Config {
	return Config{
		PublishLatency:     10 * time.Millisecond,
		PublishBytesPerSec: 200e6,
		DeliveryLatency:    25 * time.Millisecond,
		MaxBatchEntries:    10,
		MaxPayloadBytes:    256 * 1024,
	}
}

// FilterPolicy is a service-side subscription filter: a message matches if,
// for every attribute key in the policy, the message carries that attribute
// with one of the allowed values.
type FilterPolicy map[string][]string

// Matches reports whether msg attributes satisfy the policy.
func (f FilterPolicy) Matches(attrs map[string]string) bool {
	for key, allowed := range f {
		v, ok := attrs[key]
		if !ok {
			return false
		}
		found := false
		for _, a := range allowed {
			if a == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

type subscription struct {
	queue  *sqs.Queue
	filter FilterPolicy
}

// Topic is a simulated SNS topic.
type Topic struct {
	name string
	svc  *Service
	subs []subscription

	// Stats.
	PublishCalls      int64
	MessagesPublished int64
	MessagesDelivered int64
	MessagesFiltered  int64
}

// Service is a simulated SNS endpoint.
type Service struct {
	k      *sim.Kernel
	meter  *usage.Meter
	cfg    Config
	topics map[string]*Topic
}

// New returns a pub-sub service on kernel k metering into meter.
func New(k *sim.Kernel, meter *usage.Meter, cfg Config) *Service {
	return &Service{k: k, meter: meter, cfg: cfg, topics: make(map[string]*Topic)}
}

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// CreateTopic creates (or returns the existing) topic with the given name.
func (s *Service) CreateTopic(name string) *Topic {
	if t, ok := s.topics[name]; ok {
		return t
	}
	t := &Topic{name: name, svc: s}
	s.topics[name] = t
	return t
}

// Topic returns the named topic, or nil if it does not exist.
func (s *Service) Topic(name string) *Topic { return s.topics[name] }

// NumSubscriptions returns the live subscription count across all topics
// (test/metrics helper): per-run subscriptions must unwind to zero once
// their runs end.
func (s *Service) NumSubscriptions() int {
	total := 0
	for _, t := range s.topics {
		total += len(t.subs)
	}
	return total
}

// NumSubscriptions returns this topic's live subscription count.
func (t *Topic) NumSubscriptions() int { return len(t.subs) }

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Subscribe attaches a queue to the topic with a filter policy. A nil
// policy delivers everything.
func (t *Topic) Subscribe(q *sqs.Queue, filter FilterPolicy) {
	t.subs = append(t.subs, subscription{queue: q, filter: filter})
}

// Unsubscribe detaches every subscription of q from the topic. Like
// Subscribe it is a free control-plane operation; messages already handed
// to the delivery agent still land on the queue.
func (t *Topic) Unsubscribe(q *sqs.Queue) {
	keep := t.subs[:0]
	for _, s := range t.subs {
		if s.queue != q {
			keep = append(keep, s)
		}
	}
	for i := len(keep); i < len(t.subs); i++ {
		t.subs[i] = subscription{}
	}
	t.subs = keep
}

// PublishBatch publishes up to MaxBatchEntries messages in one API call from
// Proc p. The publisher is charged the API latency plus upload time; the
// meter records one publish call, the 64 KiB-increment billed requests, and
// the bytes delivered to each matching queue. Delivery happens
// asynchronously after the configured fan-out delay.
func (t *Topic) PublishBatch(p *sim.Proc, entries []sqs.Message) error {
	if len(entries) == 0 {
		return fmt.Errorf("sns: empty publish batch")
	}
	if len(entries) > t.svc.cfg.MaxBatchEntries {
		return fmt.Errorf("sns: batch of %d exceeds %d entry limit", len(entries), t.svc.cfg.MaxBatchEntries)
	}
	total := 0
	for i, e := range entries {
		sz := e.Size()
		if sz > t.svc.cfg.MaxPayloadBytes {
			return fmt.Errorf("sns: entry %d of %d bytes exceeds %d limit", i, sz, t.svc.cfg.MaxPayloadBytes)
		}
		total += sz
	}
	if total > t.svc.cfg.MaxPayloadBytes {
		return fmt.Errorf("sns: batch payload of %d bytes exceeds %d limit", total, t.svc.cfg.MaxPayloadBytes)
	}

	t.PublishCalls++
	t.MessagesPublished += int64(len(entries))
	t.svc.meter.SNSPublishCalls++
	t.svc.meter.SNSMessages += int64(len(entries))
	t.svc.meter.SNSBilledPublishes += pricing.BilledPublishRequests(int64(total))

	upload := time.Duration(0)
	if t.svc.cfg.PublishBytesPerSec > 0 {
		upload = time.Duration(float64(total) / t.svc.cfg.PublishBytesPerSec * float64(time.Second))
	}
	p.Sleep(t.svc.cfg.PublishLatency + upload)

	// Service-side fan-out: deliver each entry to every matching queue
	// after the delivery delay, without occupying the publisher.
	for _, e := range entries {
		e := e
		matched := false
		for _, sub := range t.subs {
			if sub.filter != nil && !sub.filter.Matches(e.Attributes) {
				continue
			}
			matched = true
			sub := sub
			t.svc.meter.SNSDeliveredBytes += int64(e.Size())
			t.MessagesDelivered++
			t.svc.k.At(t.svc.cfg.DeliveryLatency, func() {
				// Delivery failures (oversize for SQS) cannot be
				// surfaced to the publisher, matching SNS's
				// asynchronous semantics; the message is dropped.
				_ = sub.queue.Deliver(e)
			})
		}
		if !matched {
			t.MessagesFiltered++
		}
	}
	return nil
}
