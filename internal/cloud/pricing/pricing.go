// Package pricing holds the cloud price catalogue used by the FSD-Inference
// cost model (paper §IV) and by the usage meter when converting metered
// request/byte/GB-second counts into billed dollars.
//
// Defaults follow the published AWS us-east-1 on-demand prices referenced by
// the paper (Lambda, SNS, SQS, S3 request pricing and EC2 c5 instances).
// Every field is overridable so experiments can test price sensitivity
// (e.g. the paper's observation that pub-sub/queueing API calls are roughly
// one order of magnitude cheaper than object storage requests).
package pricing

// Catalog is a complete set of unit prices, in US dollars.
type Catalog struct {
	// LambdaInvoke is the static cost per function invocation
	// (C_lambda(Inv) in the paper; $0.20 per million).
	LambdaInvoke float64
	// LambdaGBSecond is the cost per GB-second of function runtime
	// (C_lambda(Run) expressed per GB-s rather than MB-s).
	LambdaGBSecond float64

	// SNSPublish is the cost per billed publish request (C_SNS(Pub)).
	// Publishes are billed in 64 KiB increments: a 256 KB batch counts
	// as four requests.
	SNSPublish float64
	// SNSByte is the cost per byte transferred from the pub-sub service
	// to the queueing service (C_SNS(Byte)).
	SNSByte float64

	// SQSRequest is the cost per queueing API request (C_SQS(API)).
	SQSRequest float64

	// S3Put, S3Get and S3List are per-request object storage prices
	// (C_S3(Put), C_S3(Get), C_S3(List)). They are independent of object
	// size, which is what makes object-storage costs grow linearly with
	// worker parallelism (paper §VI-D1).
	S3Put  float64
	S3Get  float64
	S3List float64

	// EC2Hourly maps instance type to on-demand hourly price, for the
	// server-based baselines (paper §VI-A2).
	EC2Hourly map[string]float64

	// KVNodeHourly maps provisioned in-memory store node types
	// (ElastiCache-like) to their on-demand hourly price. Memory-channel
	// communication carries no per-request charge at all — the node bills
	// by the hour whether it serves traffic or sits idle, which is the
	// provisioned-versus-per-request tradeoff the paper cites when ruling
	// memory stores out for sporadic workloads.
	KVNodeHourly map[string]float64
}

// PublishIncrement is the SNS billing increment: each started 64 KiB chunk
// of a publish payload is billed as one request.
const PublishIncrement = 64 * 1024

// Default returns the AWS us-east-1 price catalogue used throughout the
// paper's evaluation.
func Default() Catalog {
	return Catalog{
		LambdaInvoke:   0.20 / 1e6,
		LambdaGBSecond: 0.0000166667,
		SNSPublish:     0.50 / 1e6,
		SNSByte:        0.09 / 1e9, // $0.09/GB SNS->SQS transfer
		SQSRequest:     0.40 / 1e6,
		S3Put:          0.005 / 1e3,
		S3Get:          0.0004 / 1e3,
		S3List:         0.005 / 1e3,
		EC2Hourly: map[string]float64{
			"c5.2xlarge":  0.34,
			"c5.9xlarge":  1.53,
			"c5.12xlarge": 2.04,
		},
		KVNodeHourly: map[string]float64{
			"cache.t3.small":  0.034,
			"cache.m6g.large": 0.149,
			"cache.r6g.large": 0.2016,
		},
	}
}

// BilledPublishRequests returns the number of billed SNS requests for a
// publish call carrying totalBytes of payload, per the 64 KiB increment
// rule. A zero-byte publish still bills one request.
func BilledPublishRequests(totalBytes int64) int64 {
	if totalBytes <= 0 {
		return 1
	}
	return (totalBytes + PublishIncrement - 1) / PublishIncrement
}
