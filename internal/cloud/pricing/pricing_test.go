package pricing

import "testing"

func TestDefaultCatalogueMagnitudes(t *testing.T) {
	c := Default()
	// The §IV-C relationship the design recommendations depend on:
	// pub-sub/queueing API requests are ~1 OOM cheaper than object
	// storage PUT/LIST requests.
	if c.SNSPublish*9 > c.S3Put {
		t.Fatalf("SNS publish %v not ~1 OOM below S3 PUT %v", c.SNSPublish, c.S3Put)
	}
	if c.SQSRequest*9 > c.S3List {
		t.Fatalf("SQS request %v not ~1 OOM below S3 LIST %v", c.SQSRequest, c.S3List)
	}
	// GETs are the cheap S3 request class.
	if c.S3Get >= c.S3Put {
		t.Fatal("S3 GET should be cheaper than PUT")
	}
	// EC2 baseline types priced.
	for _, typ := range []string{"c5.2xlarge", "c5.9xlarge", "c5.12xlarge"} {
		if c.EC2Hourly[typ] <= 0 {
			t.Fatalf("%s unpriced", typ)
		}
	}
	if c.EC2Hourly["c5.12xlarge"] <= c.EC2Hourly["c5.2xlarge"] {
		t.Fatal("bigger instance should cost more")
	}
}

func TestBilledPublishIncrements(t *testing.T) {
	// 64 KiB increments; zero-byte publishes still bill one request.
	cases := map[int64]int64{
		0:          1,
		1:          1,
		64 << 10:   1,
		64<<10 + 1: 2,
		256 << 10:  4,
	}
	for bytes, want := range cases {
		if got := BilledPublishRequests(bytes); got != want {
			t.Errorf("BilledPublishRequests(%d) = %d, want %d", bytes, got, want)
		}
	}
}
