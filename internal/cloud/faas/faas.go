// Package faas simulates a "scaled-by-request" Function-as-a-Service
// platform modelled on AWS Lambda (paper §II-A). It reproduces the service
// behaviours FSD-Inference depends on:
//
//   - memory-proportional vCPU allocation with a configurable cap,
//   - cold starts (seeded, deterministic jitter) and a warm-instance pool,
//   - hard runtime limits (15 minutes) enforced by killing the instance,
//   - hard memory limits enforced against instance-tracked allocations,
//   - invocation payload caps for synchronous and event (async) invokes,
//   - per-invocation and per-GB-second billing.
//
// Handlers run as simulation Procs; real computation executes inside the
// handler while virtual time is charged through the Ctx helpers (Compute,
// Serialize, ...) using the calibrated perf.Model.
package faas

import (
	"fmt"
	"math/rand"
	"time"

	"fsdinference/internal/cloud/perf"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

// Config holds platform-wide behaviour and limits.
type Config struct {
	// ColdStart is the mean cold-start delay (container provisioning +
	// runtime init). Actual delays get ±20% deterministic seeded jitter.
	ColdStart time.Duration
	// WarmStart is the invoke-to-running delay for a warm instance.
	WarmStart time.Duration
	// InvokeAPILatency is the caller-side latency of one Invoke API call.
	InvokeAPILatency time.Duration
	// InvokeCPUSeconds is the caller-side CPU work (in single-vCPU
	// seconds) of issuing one Invoke API call — request signing, TLS and
	// serialization. On memory-starved instances (a 128 MB coordinator
	// at ~0.07 vCPU) each call takes hundreds of milliseconds, which is
	// why a centralised launch loop is slow and the paper's hierarchical
	// worker_invoke_children tree wins (§II-B, §III).
	InvokeCPUSeconds float64
	// WarmKeep is how long an idle instance stays warm.
	WarmKeep time.Duration

	// MaxMemoryMB is the platform memory cap (10,240 MB on Lambda).
	MaxMemoryMB int
	// MinMemoryMB is the platform memory floor (128 MB on Lambda).
	MinMemoryMB int
	// MaxTimeout is the platform runtime cap (15 minutes on Lambda).
	MaxTimeout time.Duration
	// SyncPayloadLimit and AsyncPayloadLimit cap request payload sizes
	// (6 MB and 256 KB on Lambda).
	SyncPayloadLimit  int
	AsyncPayloadLimit int
	// MaxResponseBytes caps synchronous response payloads (6 MB).
	MaxResponseBytes int
	// ConcurrencyLimit caps simultaneously running instances
	// (account-level 1,000 on Lambda by default).
	ConcurrencyLimit int

	// Perf is the calibrated compute performance model.
	Perf perf.Model
	// Seed drives deterministic cold-start jitter.
	Seed int64
}

// DefaultConfig returns Lambda-like defaults. Cold start reflects a Python
// runtime importing numpy/scipy-sized dependencies.
func DefaultConfig() Config {
	return Config{
		ColdStart:         600 * time.Millisecond,
		WarmStart:         15 * time.Millisecond,
		InvokeAPILatency:  25 * time.Millisecond,
		InvokeCPUSeconds:  0.012,
		WarmKeep:          10 * time.Minute,
		MaxMemoryMB:       10240,
		MinMemoryMB:       128,
		MaxTimeout:        15 * time.Minute,
		SyncPayloadLimit:  6 * 1024 * 1024,
		AsyncPayloadLimit: 256 * 1024,
		MaxResponseBytes:  6 * 1024 * 1024,
		ConcurrencyLimit:  1000,
		Perf:              perf.Default(),
		Seed:              1,
	}
}

// Handler is a function body. It runs in a fresh (or warm) instance and may
// use ctx to charge compute time, allocate tracked memory and reach other
// simulated services.
type Handler func(ctx *Ctx, payload []byte) ([]byte, error)

// FunctionConfig describes one registered function.
type FunctionConfig struct {
	Name     string
	MemoryMB int
	Timeout  time.Duration
	Handler  Handler
}

// Platform is a simulated FaaS service.
type Platform struct {
	k     *sim.Kernel
	meter *usage.Meter
	cfg   Config

	fns  map[string]*function
	live int
	// PeakConcurrency records the maximum simultaneous instances seen.
	PeakConcurrency int

	// ColdStarts and WarmStarts count instance launches by kind.
	ColdStarts int
	WarmStarts int
}

type function struct {
	cfg  FunctionConfig
	warm []time.Duration // times at which idle warm instances became free
	// rng drives this function's cold-start jitter. It is scoped per
	// function (not platform-wide) so a function's jitter sequence depends
	// only on its own invocation order, never on how other functions'
	// launches interleave with it — the property that lets sharded replay
	// lanes reproduce a shared-kernel run exactly.
	rng *rand.Rand
}

// New returns a Platform on kernel k metering into meter.
func New(k *sim.Kernel, meter *usage.Meter, cfg Config) *Platform {
	return &Platform{
		k:     k,
		meter: meter,
		cfg:   cfg,
		fns:   make(map[string]*function),
	}
}

// Config returns the platform configuration.
func (pl *Platform) Config() Config { return pl.cfg }

// Register registers a function, validating its configuration against the
// platform limits.
func (pl *Platform) Register(fc FunctionConfig) error {
	if fc.Name == "" {
		return fmt.Errorf("faas: function name required")
	}
	if _, ok := pl.fns[fc.Name]; ok {
		return fmt.Errorf("faas: function %q already registered", fc.Name)
	}
	if fc.MemoryMB < pl.cfg.MinMemoryMB || fc.MemoryMB > pl.cfg.MaxMemoryMB {
		return fmt.Errorf("faas: function %q memory %d MB outside [%d, %d]",
			fc.Name, fc.MemoryMB, pl.cfg.MinMemoryMB, pl.cfg.MaxMemoryMB)
	}
	if fc.Timeout <= 0 || fc.Timeout > pl.cfg.MaxTimeout {
		return fmt.Errorf("faas: function %q timeout %v outside (0, %v]",
			fc.Name, fc.Timeout, pl.cfg.MaxTimeout)
	}
	if fc.Handler == nil {
		return fmt.Errorf("faas: function %q has no handler", fc.Name)
	}
	pl.fns[fc.Name] = &function{cfg: fc, rng: rand.New(rand.NewSource(pl.cfg.Seed))}
	return nil
}

// Future is the pending result of an invocation.
type Future struct {
	done   bool
	result []byte
	err    error
	cond   *sim.Cond
}

// Done reports whether the invocation has completed.
func (f *Future) Done() bool { return f.done }

// Wait blocks p until the invocation completes, then returns its response
// payload and error.
func (f *Future) Wait(p *sim.Proc) ([]byte, error) {
	for !f.done {
		f.cond.Wait(p)
	}
	return f.result, f.err
}

func (f *Future) finish(res []byte, err error) {
	f.done = true
	f.result = res
	f.err = err
	f.cond.Broadcast()
}

// Invoke performs a synchronous (RequestResponse) invocation from Proc p.
// The returned Future completes with the handler's response. The caller is
// charged the invoke API latency.
func (pl *Platform) Invoke(p *sim.Proc, name string, payload []byte) (*Future, error) {
	if len(payload) > pl.cfg.SyncPayloadLimit {
		return nil, fmt.Errorf("faas: sync payload %d bytes exceeds limit %d", len(payload), pl.cfg.SyncPayloadLimit)
	}
	return pl.invoke(p, name, payload)
}

// InvokeAsync performs an event (asynchronous) invocation. The caller pays
// only the API latency; the Future is still usable to observe completion.
func (pl *Platform) InvokeAsync(p *sim.Proc, name string, payload []byte) (*Future, error) {
	if len(payload) > pl.cfg.AsyncPayloadLimit {
		return nil, fmt.Errorf("faas: async payload %d bytes exceeds limit %d", len(payload), pl.cfg.AsyncPayloadLimit)
	}
	return pl.invoke(p, name, payload)
}

func (pl *Platform) invoke(p *sim.Proc, name string, payload []byte) (*Future, error) {
	fn, ok := pl.fns[name]
	if !ok {
		return nil, fmt.Errorf("faas: function %q not registered", name)
	}
	if pl.live >= pl.cfg.ConcurrencyLimit {
		return nil, fmt.Errorf("faas: concurrency limit %d reached", pl.cfg.ConcurrencyLimit)
	}
	p.Sleep(pl.cfg.InvokeAPILatency)
	pl.meter.LambdaInvocations++

	fut := &Future{cond: sim.NewCond(pl.k)}

	// Warm instance available?
	start := pl.cfg.ColdStart
	warm := false
	now := pl.k.Now()
	// Drop expired warm instances.
	keep := fn.warm[:0]
	for _, freedAt := range fn.warm {
		if now-freedAt <= pl.cfg.WarmKeep {
			keep = append(keep, freedAt)
		}
	}
	fn.warm = keep
	if len(fn.warm) > 0 {
		fn.warm = fn.warm[:len(fn.warm)-1]
		start = pl.cfg.WarmStart
		warm = true
		pl.WarmStarts++
	} else {
		jitter := 0.8 + 0.4*fn.rng.Float64()
		start = time.Duration(float64(start) * jitter)
		pl.ColdStarts++
	}

	pl.live++
	if pl.live > pl.PeakConcurrency {
		pl.PeakConcurrency = pl.live
	}

	pl.k.GoAfter(start, "faas:"+name, func(hp *sim.Proc) {
		pl.runInstance(hp, fn, fut, payload, warm)
	})
	return fut, nil
}

func (pl *Platform) runInstance(hp *sim.Proc, fn *function, fut *Future, payload []byte, warm bool) {
	ctx := &Ctx{
		P:        hp,
		pl:       pl,
		fn:       fn,
		memLimit: int64(fn.cfg.MemoryMB) * 1024 * 1024,
		vcpus:    pl.cfg.Perf.VCPUs(fn.cfg.MemoryMB),
		started:  hp.Now(),
		deadline: hp.Now() + fn.cfg.Timeout,
		Warm:     warm,
	}

	finished := false
	var watchdog *sim.Timer
	finish := func(res []byte, err error) {
		if finished {
			return
		}
		finished = true
		watchdog.Stop()
		dur := hp.Now() - ctx.started
		pl.meter.LambdaGBSeconds += float64(fn.cfg.MemoryMB) / 1024 * dur.Seconds()
		pl.live--
		fn.warm = append(fn.warm, hp.Now())
		fut.finish(res, err)
	}

	// Hard runtime-limit watchdog, cancelled on normal completion.
	watchdog = pl.k.After(fn.cfg.Timeout, func() {
		if finished {
			return
		}
		finish(nil, fmt.Errorf("faas: function %q timed out after %v", fn.cfg.Name, fn.cfg.Timeout))
		pl.k.Kill(hp)
	})

	defer func() {
		if hp.Killed() {
			// Watchdog already billed and failed the future.
			return
		}
		if r := recover(); r != nil {
			if oe, ok := r.(oomError); ok {
				finish(nil, fmt.Errorf("faas: function %q: %w", fn.cfg.Name, oe.err))
				return
			}
			finish(nil, fmt.Errorf("faas: function %q crashed: %v", fn.cfg.Name, r))
			return
		}
	}()

	res, err := fn.cfg.Handler(ctx, payload)
	if err == nil && len(res) > pl.cfg.MaxResponseBytes {
		err = fmt.Errorf("faas: response %d bytes exceeds limit %d", len(res), pl.cfg.MaxResponseBytes)
		res = nil
	}
	finish(res, err)
}

// oomError wraps an out-of-memory failure for panic-based unwinding.
type oomError struct{ err error }

// Ctx is the execution context handed to a Handler. Its helpers charge
// virtual time for computation scaled by the instance's vCPU allocation and
// track memory against the instance's hard limit.
type Ctx struct {
	P  *sim.Proc
	pl *Platform
	fn *function

	memLimit int64
	memUsed  int64
	peakMem  int64
	vcpus    float64
	started  time.Duration
	deadline time.Duration
	// Warm reports whether this instance was a warm start.
	Warm bool

	// MACs, ElemOps and IOBytes accumulate the work charged via the
	// helpers, for per-worker metrics.
	MACs    float64
	ElemOps float64
	IOBytes int64
}

// FunctionName returns the executing function's name.
func (c *Ctx) FunctionName() string { return c.fn.cfg.Name }

// MemoryMB returns the instance's configured memory.
func (c *Ctx) MemoryMB() int { return c.fn.cfg.MemoryMB }

// VCPUs returns the instance's fractional vCPU allocation.
func (c *Ctx) VCPUs() float64 { return c.vcpus }

// Deadline returns the virtual time at which the platform will kill this
// instance.
func (c *Ctx) Deadline() time.Duration { return c.deadline }

// Remaining returns the runtime budget left before the hard timeout.
func (c *Ctx) Remaining() time.Duration { return c.deadline - c.P.Now() }

// Elapsed returns the handler's virtual runtime so far.
func (c *Ctx) Elapsed() time.Duration { return c.P.Now() - c.started }

// Alloc records bytes of instance memory. It panics with an OOM failure
// (captured by the platform and surfaced as an invocation error) if the
// instance memory limit is exceeded, mirroring a Lambda OOM kill.
func (c *Ctx) Alloc(bytes int64) {
	c.memUsed += bytes
	if c.memUsed > c.peakMem {
		c.peakMem = c.memUsed
	}
	if c.memUsed > c.memLimit {
		panic(oomError{fmt.Errorf("out of memory: %d bytes used, limit %d (%d MB)",
			c.memUsed, c.memLimit, c.fn.cfg.MemoryMB)})
	}
}

// Free releases previously Alloc'd bytes.
func (c *Ctx) Free(bytes int64) {
	c.memUsed -= bytes
	if c.memUsed < 0 {
		c.memUsed = 0
	}
}

// MemUsed returns current tracked memory use in bytes.
func (c *Ctx) MemUsed() int64 { return c.memUsed }

// PeakMem returns the peak tracked memory use in bytes.
func (c *Ctx) PeakMem() int64 { return c.peakMem }

// Compute charges virtual time for macs sparse multiply-add operations.
func (c *Ctx) Compute(macs float64) {
	c.MACs += macs
	c.P.Sleep(c.scale(macs, c.pl.cfg.Perf.MACRatePerVCPU))
}

// ComputeElem charges virtual time for ops element-wise operations
// (bias add, activation, threshold).
func (c *Ctx) ComputeElem(ops float64) {
	c.ElemOps += ops
	c.P.Sleep(c.scale(ops, c.pl.cfg.Perf.ElemRatePerVCPU))
}

// Serialize charges virtual time for packing/unpacking n payload bytes.
func (c *Ctx) Serialize(n int64) {
	c.IOBytes += n
	c.P.Sleep(c.scale(float64(n), c.pl.cfg.Perf.SerializeBytesPerSec))
}

// Compress charges virtual time for zlib-compressing n input bytes.
func (c *Ctx) Compress(n int64) {
	c.P.Sleep(c.scale(float64(n), c.pl.cfg.Perf.CompressBytesPerSec))
}

// Decompress charges virtual time for zlib-decompressing to n output bytes.
func (c *Ctx) Decompress(n int64) {
	c.P.Sleep(c.scale(float64(n), c.pl.cfg.Perf.DecompressBytesPerSec))
}

func (c *Ctx) scale(work, ratePerVCPU float64) time.Duration {
	if work <= 0 {
		return 0
	}
	sec := work / (ratePerVCPU * c.vcpus)
	return time.Duration(sec * float64(time.Second))
}

// Perf returns the platform's calibrated performance model.
func (c *Ctx) Perf() perf.Model { return c.pl.cfg.Perf }

// chargeInvokeCPU charges the caller-side CPU cost of one Invoke API call,
// scaled by this instance's vCPU share.
func (c *Ctx) chargeInvokeCPU() {
	sec := c.pl.cfg.InvokeCPUSeconds / c.vcpus
	c.P.Sleep(time.Duration(sec * float64(time.Second)))
}

// Invoke performs a synchronous invocation from inside a function instance,
// charging the instance the CPU cost of issuing the API call.
func (c *Ctx) Invoke(name string, payload []byte) (*Future, error) {
	c.chargeInvokeCPU()
	return c.pl.Invoke(c.P, name, payload)
}

// InvokeAsync performs an event invocation from inside a function instance,
// charging the instance the CPU cost of issuing the API call.
func (c *Ctx) InvokeAsync(name string, payload []byte) (*Future, error) {
	c.chargeInvokeCPU()
	return c.pl.InvokeAsync(c.P, name, payload)
}
