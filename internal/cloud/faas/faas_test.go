package faas

import (
	"strings"
	"testing"
	"time"

	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

func testPlatform(t *testing.T) (*sim.Kernel, *usage.Meter, *Platform) {
	t.Helper()
	k := sim.New()
	m := usage.NewMeter()
	return k, m, New(k, m, DefaultConfig())
}

func TestRegisterValidation(t *testing.T) {
	_, _, pl := testPlatform(t)
	ok := FunctionConfig{Name: "f", MemoryMB: 1024, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) { return nil, nil }}

	if err := pl.Register(ok); err != nil {
		t.Fatalf("valid register failed: %v", err)
	}
	cases := []struct {
		name string
		mut  func(FunctionConfig) FunctionConfig
		want string
	}{
		{"dup", func(f FunctionConfig) FunctionConfig { return f }, "already registered"},
		{"noname", func(f FunctionConfig) FunctionConfig { f.Name = ""; return f }, "name required"},
		{"lowmem", func(f FunctionConfig) FunctionConfig { f.Name = "a"; f.MemoryMB = 64; return f }, "memory"},
		{"highmem", func(f FunctionConfig) FunctionConfig { f.Name = "b"; f.MemoryMB = 20480; return f }, "memory"},
		{"badtimeout", func(f FunctionConfig) FunctionConfig { f.Name = "c"; f.Timeout = time.Hour; return f }, "timeout"},
		{"nohandler", func(f FunctionConfig) FunctionConfig { f.Name = "d"; f.Handler = nil; return f }, "handler"},
	}
	for _, tc := range cases {
		if err := pl.Register(tc.mut(ok)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestInvokeReturnsResult(t *testing.T) {
	k, m, pl := testPlatform(t)
	err := pl.Register(FunctionConfig{
		Name: "echo", MemoryMB: 1024, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) {
			c.P.Sleep(time.Second)
			return append([]byte("got:"), p...), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var res []byte
	k.Go("caller", func(p *sim.Proc) {
		fut, err := pl.Invoke(p, "echo", []byte("hi"))
		if err != nil {
			t.Errorf("invoke: %v", err)
			return
		}
		res, err = fut.Wait(p)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(res) != "got:hi" {
		t.Fatalf("result = %q", res)
	}
	if m.LambdaInvocations != 1 {
		t.Fatalf("invocations = %d, want 1", m.LambdaInvocations)
	}
	if m.LambdaGBSeconds <= 0 {
		t.Fatalf("GB-seconds = %v, want > 0", m.LambdaGBSeconds)
	}
}

func TestColdThenWarmStart(t *testing.T) {
	k, _, pl := testPlatform(t)
	var starts []time.Duration
	pl.Register(FunctionConfig{
		Name: "f", MemoryMB: 1024, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) {
			starts = append(starts, c.P.Now())
			return nil, nil
		},
	})
	k.Go("caller", func(p *sim.Proc) {
		fut, _ := pl.Invoke(p, "f", nil)
		fut.Wait(p)
		t0 := p.Now()
		fut, _ = pl.Invoke(p, "f", nil)
		fut.Wait(p)
		_ = t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pl.ColdStarts != 1 || pl.WarmStarts != 1 {
		t.Fatalf("cold=%d warm=%d, want 1/1", pl.ColdStarts, pl.WarmStarts)
	}
	cfg := pl.Config()
	coldDelay := starts[0] - cfg.InvokeAPILatency
	if coldDelay < time.Duration(0.8*float64(cfg.ColdStart)) || coldDelay > time.Duration(1.2*float64(cfg.ColdStart)) {
		t.Fatalf("cold start delay %v outside jitter band around %v", coldDelay, cfg.ColdStart)
	}
}

func TestWarmPoolExpires(t *testing.T) {
	k, _, pl := testPlatform(t)
	pl.Register(FunctionConfig{
		Name: "f", MemoryMB: 1024, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) { return nil, nil },
	})
	k.Go("caller", func(p *sim.Proc) {
		fut, _ := pl.Invoke(p, "f", nil)
		fut.Wait(p)
		p.Sleep(pl.Config().WarmKeep + time.Minute)
		fut, _ = pl.Invoke(p, "f", nil)
		fut.Wait(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pl.ColdStarts != 2 {
		t.Fatalf("cold starts = %d, want 2 (warm pool expired)", pl.ColdStarts)
	}
}

func TestTimeoutKillsHandler(t *testing.T) {
	k, m, pl := testPlatform(t)
	reachedEnd := false
	pl.Register(FunctionConfig{
		Name: "slow", MemoryMB: 1024, Timeout: 10 * time.Second,
		Handler: func(c *Ctx, p []byte) ([]byte, error) {
			c.P.Sleep(time.Hour)
			reachedEnd = true
			return nil, nil
		},
	})
	var err error
	k.Go("caller", func(p *sim.Proc) {
		fut, _ := pl.Invoke(p, "slow", nil)
		_, err = fut.Wait(p)
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if reachedEnd {
		t.Fatal("handler ran past its kill point")
	}
	// Billed duration should be the full timeout: 1 GB * 10 s.
	if m.LambdaGBSeconds < 9.9 || m.LambdaGBSeconds > 10.1 {
		t.Fatalf("GB-seconds = %v, want ~10", m.LambdaGBSeconds)
	}
}

func TestOOMFailsInvocation(t *testing.T) {
	k, _, pl := testPlatform(t)
	pl.Register(FunctionConfig{
		Name: "hog", MemoryMB: 128, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) {
			c.Alloc(64 * 1024 * 1024)
			c.Alloc(100 * 1024 * 1024) // exceeds 128 MB
			return []byte("unreachable"), nil
		},
	})
	var err error
	k.Go("caller", func(p *sim.Proc) {
		fut, _ := pl.Invoke(p, "hog", nil)
		_, err = fut.Wait(p)
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("err = %v, want OOM", err)
	}
}

func TestAllocFreeTracking(t *testing.T) {
	k, _, pl := testPlatform(t)
	pl.Register(FunctionConfig{
		Name: "f", MemoryMB: 256, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) {
			c.Alloc(100 << 20)
			c.Free(50 << 20)
			c.Alloc(100 << 20) // 150 MB used, fits
			if c.MemUsed() != 150<<20 {
				t.Errorf("MemUsed = %d", c.MemUsed())
			}
			if c.PeakMem() != 150<<20 {
				t.Errorf("PeakMem = %d", c.PeakMem())
			}
			return nil, nil
		},
	})
	var err error
	k.Go("caller", func(p *sim.Proc) {
		fut, _ := pl.Invoke(p, "f", nil)
		_, err = fut.Wait(p)
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatalf("invocation failed: %v", err)
	}
}

func TestComputeScalesWithMemory(t *testing.T) {
	// Same work on a 2x-memory function should take half the time
	// (below the vCPU cap).
	times := map[int]time.Duration{}
	for _, mem := range []int{1024, 2048} {
		k := sim.New()
		pl := New(k, usage.NewMeter(), DefaultConfig())
		pl.Register(FunctionConfig{
			Name: "f", MemoryMB: mem, Timeout: 15 * time.Minute,
			Handler: func(c *Ctx, p []byte) ([]byte, error) {
				t0 := c.P.Now()
				c.Compute(1e9)
				times[mem] = c.P.Now() - t0
				return nil, nil
			},
		})
		k.Go("caller", func(p *sim.Proc) {
			fut, _ := pl.Invoke(p, "f", nil)
			fut.Wait(p)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	ratio := float64(times[1024]) / float64(times[2048])
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("compute time ratio = %.3f, want 2.0 (times: %v)", ratio, times)
	}
}

func TestVCPUCap(t *testing.T) {
	cfg := DefaultConfig()
	v := cfg.Perf.VCPUs(10240)
	if v < 5.7 || v > 5.9 {
		t.Fatalf("VCPUs(10240) = %v, want ~5.79", v)
	}
	v = cfg.Perf.VCPUs(1769)
	if v < 0.999 || v > 1.001 {
		t.Fatalf("VCPUs(1769) = %v, want 1", v)
	}
	// The cap kicks in for hypothetical allocations beyond the Lambda max.
	if got := cfg.Perf.VCPUs(20000); got != 6 {
		t.Fatalf("VCPUs(20000) = %v, want capped at 6", got)
	}
}

func TestPayloadLimits(t *testing.T) {
	k, _, pl := testPlatform(t)
	pl.Register(FunctionConfig{
		Name: "f", MemoryMB: 1024, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) { return nil, nil },
	})
	k.Go("caller", func(p *sim.Proc) {
		if _, err := pl.InvokeAsync(p, "f", make([]byte, 300*1024)); err == nil {
			t.Error("async payload over 256KB accepted")
		}
		if _, err := pl.Invoke(p, "f", make([]byte, 7*1024*1024)); err == nil {
			t.Error("sync payload over 6MB accepted")
		}
		if _, err := pl.Invoke(p, "f", make([]byte, 300*1024)); err != nil {
			t.Errorf("sync 300KB payload rejected: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResponseLimit(t *testing.T) {
	k, _, pl := testPlatform(t)
	pl.Register(FunctionConfig{
		Name: "big", MemoryMB: 1024, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) {
			return make([]byte, 7*1024*1024), nil
		},
	})
	var err error
	k.Go("caller", func(p *sim.Proc) {
		fut, _ := pl.Invoke(p, "big", nil)
		_, err = fut.Wait(p)
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil || !strings.Contains(err.Error(), "response") {
		t.Fatalf("err = %v, want response limit error", err)
	}
}

func TestHandlerPanicBecomesError(t *testing.T) {
	k, _, pl := testPlatform(t)
	pl.Register(FunctionConfig{
		Name: "boom", MemoryMB: 1024, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) { panic("logic bug") },
	})
	var err error
	k.Go("caller", func(p *sim.Proc) {
		fut, _ := pl.Invoke(p, "boom", nil)
		_, err = fut.Wait(p)
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("err = %v, want crash report", err)
	}
}

func TestUnknownFunction(t *testing.T) {
	k, _, pl := testPlatform(t)
	k.Go("caller", func(p *sim.Proc) {
		if _, err := pl.Invoke(p, "nope", nil); err == nil {
			t.Error("invoking unregistered function succeeded")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	k, _, pl := testPlatform(t)
	running := 0
	peak := 0
	pl.Register(FunctionConfig{
		Name: "f", MemoryMB: 1024, Timeout: time.Minute,
		Handler: func(c *Ctx, p []byte) ([]byte, error) {
			running++
			if running > peak {
				peak = running
			}
			c.P.Sleep(10 * time.Second)
			running--
			return nil, nil
		},
	})
	k.Go("caller", func(p *sim.Proc) {
		var futs []*Future
		for i := 0; i < 8; i++ {
			fut, err := pl.InvokeAsync(p, "f", nil)
			if err != nil {
				t.Errorf("invoke %d: %v", i, err)
				return
			}
			futs = append(futs, fut)
		}
		for _, f := range futs {
			f.Wait(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Fatalf("peak concurrent handlers = %d, want overlap", peak)
	}
	if pl.PeakConcurrency != 8 {
		t.Fatalf("PeakConcurrency = %d, want 8", pl.PeakConcurrency)
	}
}

func TestDeterministicColdStarts(t *testing.T) {
	run := func() []time.Duration {
		k := sim.New()
		pl := New(k, usage.NewMeter(), DefaultConfig())
		var starts []time.Duration
		pl.Register(FunctionConfig{
			Name: "f", MemoryMB: 1024, Timeout: time.Minute,
			Handler: func(c *Ctx, p []byte) ([]byte, error) {
				starts = append(starts, c.P.Now())
				return nil, nil
			},
		})
		k.Go("caller", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				fut, _ := pl.Invoke(p, "f", nil)
				fut.Wait(p)
				p.Sleep(time.Hour) // force cold every time
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return starts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
