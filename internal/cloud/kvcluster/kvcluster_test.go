package kvcluster

import (
	"fmt"
	"testing"
	"time"

	"fsdinference/internal/cloud/kvstore"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

func newTestCluster(t *testing.T, cfg Config) (*sim.Kernel, *usage.Meter, *Cluster) {
	t.Helper()
	k := sim.New()
	m := usage.NewMeter()
	kv := kvstore.New(k, m, kvstore.DefaultConfig())
	c, err := New(kv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, m, c
}

// The slot-map property test: every key routes to exactly one primary,
// slot coverage is total, and routing is stable under shard add/remove
// except for the migrated slots.
func TestSlotMapProperties(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8} {
		m := BuildSlotMap(shards)
		if len(m) != NumSlots {
			t.Fatalf("shards=%d: map covers %d slots, want %d", shards, len(m), NumSlots)
		}
		owned := make([]int, shards)
		for slot, owner := range m {
			if owner < 0 || owner >= shards {
				t.Fatalf("shards=%d: slot %d owned by out-of-range shard %d", shards, slot, owner)
			}
			owned[owner]++
		}
		for i, n := range owned {
			if n == 0 {
				t.Fatalf("shards=%d: shard %d owns no slots", shards, i)
			}
		}
	}

	// Every key routes to exactly one primary, deterministically.
	_, _, c := newTestCluster(t, Config{Name: "prop", Shards: 4})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("r%d/inbox/%d", i%7, i)
		s1, n1 := c.Route(key)
		s2, n2 := c.Route(key)
		if s1 != s2 || n1 != n2 || n1 == nil {
			t.Fatalf("key %q routed to (%d,%v) then (%d,%v)", key, s1, n1, s2, n2)
		}
		if want := c.Primary(s1); n1 != want {
			t.Fatalf("key %q routed to node %v, shard %d primary is %v", key, n1, s1, want)
		}
	}

	// Stability: growing n -> n+1 moves only slots the new shard wins;
	// shrinking n -> n-1 moves only the departed shard's slots.
	for n := 1; n <= 7; n++ {
		small, big := BuildSlotMap(n), BuildSlotMap(n+1)
		migrated := 0
		for slot := range small {
			if small[slot] != big[slot] {
				if big[slot] != n {
					t.Fatalf("grow %d->%d: slot %d moved %d -> %d, not to the new shard",
						n, n+1, slot, small[slot], big[slot])
				}
				migrated++
			}
		}
		if n > 1 && migrated == 0 {
			t.Fatalf("grow %d->%d: the new shard won no slots", n, n+1)
		}
		for slot := range small {
			// Shrinking is the same comparison read backwards: slots the
			// bigger map gave to shard n must redistribute, all others stay.
			if big[slot] == n && small[slot] == n {
				t.Fatalf("shrink %d->%d: slot %d still routed to the removed shard", n+1, n, slot)
			}
		}
	}
}

// Hash tags pin related keys to one slot, like Redis Cluster.
func TestSlotForKeyHashTags(t *testing.T) {
	a := SlotForKey("{run7}/inbox/1")
	b := SlotForKey("{run7}/inbox/2")
	if a != b {
		t.Fatalf("hash-tagged keys landed on slots %d and %d", a, b)
	}
	if SlotForKey("plain") != SlotForKey("plain") {
		t.Fatal("slot hashing is not deterministic")
	}
}

// Values pushed through the cluster route by slot, pop in order, and
// DropPrefix sweeps every shard — primaries and replicas.
func TestClusterOpsAndTeardown(t *testing.T) {
	k, _, c := newTestCluster(t, Config{Name: "ops", Shards: 3, Replicas: 1})
	const keys = 12
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("run/inbox/%d", i)
			for j := 0; j < 2; j++ {
				if err := c.RPush(p, nil, key, []byte{byte(i), byte(j)}, time.Minute); err != nil {
					t.Errorf("push %s: %v", key, err)
				}
			}
		}
		// Replication is asynchronous: let the lag drain before checking.
		p.Sleep(c.Config().ReplicationLag * 2)
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("run/inbox/%d", i)
			v := c.BLPop(p, nil, key, time.Second)
			if len(v) != 2 || v[0] != byte(i) || v[1] != 0 {
				t.Errorf("pop %s: got %v", key, v)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.NumKeys(); got != keys {
		t.Fatalf("cluster holds %d keys after one pop each, want %d", got, keys)
	}
	c.DropPrefix("run/")
	for name, n := range c.NumKeysByNode() {
		if n != 0 {
			t.Fatalf("node %s holds %d keys after DropPrefix", name, n)
		}
	}
}

// The availability ladder: a mid-stream KillNode loses the whole shard
// at R=0, the un-replicated asynchronous pipe at R=1, and nothing under
// quorum writes at R>=2 — and in every case the shard's slots block
// until promotion, after which reads resume against the new primary.
func TestFailoverLossByReplicationMode(t *testing.T) {
	for _, tc := range []struct {
		replicas  int
		wantLost  bool
		wantExact int64 // -1 = any positive
	}{
		{0, true, -1},
		{1, true, -1},
		{2, false, 0},
	} {
		t.Run(fmt.Sprintf("R=%d", tc.replicas), func(t *testing.T) {
			k, m, c := newTestCluster(t, Config{
				Name: "fo", Shards: 1, Replicas: tc.replicas,
				FailoverWindow: 2 * time.Second,
				ReplicationLag: 100 * time.Millisecond,
			})
			const vals = 8
			var got int
			k.Go("driver", func(p *sim.Proc) {
				for i := 0; i < vals; i++ {
					if err := c.RPush(p, nil, "k", []byte{byte(i)}, 0); err != nil {
						t.Errorf("push: %v", err)
					}
				}
				// Kill inside the replication lag: async R=1 still has the
				// last writes in the pipe.
				if err := c.KillNode(0); err != nil {
					t.Errorf("kill: %v", err)
				}
				start := p.Now()
				for {
					v := c.BLPop(p, nil, "k", 5*time.Second)
					if v == nil {
						break
					}
					got++
				}
				if stall := p.Now() - start; stall < 2*time.Second {
					t.Errorf("reads resumed after %v, inside the 2s failover window", stall)
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if c.Failovers() != 1 || m.KVFailovers != 1 {
				t.Fatalf("failovers=%d metered=%d, want 1", c.Failovers(), m.KVFailovers)
			}
			lost := c.LostValues()
			if tc.wantLost && lost <= 0 {
				t.Fatalf("R=%d lost %d values, want a loss", tc.replicas, lost)
			}
			if !tc.wantLost && lost != tc.wantExact {
				t.Fatalf("R=%d lost %d values, want %d", tc.replicas, lost, tc.wantExact)
			}
			if int64(got)+lost != vals {
				t.Fatalf("R=%d: recovered %d + lost %d != pushed %d", tc.replicas, got, lost, vals)
			}
			if m.KVLostValues != lost {
				t.Fatalf("meter lost %d, cluster lost %d", m.KVLostValues, lost)
			}
			// Promotion restored the configured replica count with fresh
			// billing nodes.
			wantNodes := 1 + tc.replicas
			if n := len(c.Nodes()); n != wantNodes {
				t.Fatalf("cluster has %d live nodes after failover, want %d", n, wantNodes)
			}
		})
	}
}

// Two successive quorum failovers on one shard lose nothing: promotion
// re-syncs the surviving replicas from the new primary (their stream
// from the dead primary was cut mid-flight), so the second promotion
// candidate holds the full keyspace.
func TestBackToBackQuorumFailoversLoseNothing(t *testing.T) {
	k, _, c := newTestCluster(t, Config{
		Name: "fo2", Shards: 1, Replicas: 2,
		FailoverWindow: time.Second,
		ReplicationLag: 100 * time.Millisecond,
	})
	const vals = 8
	got := 0
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < vals; i++ {
			if err := c.RPush(p, nil, "k", []byte{byte(i)}, 0); err != nil {
				t.Errorf("push: %v", err)
			}
		}
		// First kill lands inside the replication lag: the trailing
		// replica's async applies are dropped with the dead primary.
		if err := c.KillNode(0); err != nil {
			t.Errorf("first kill: %v", err)
		}
		p.Sleep(2 * time.Second) // past promotion and any residual lag
		if err := c.KillNode(0); err != nil {
			t.Errorf("second kill: %v", err)
		}
		for {
			v := c.BLPop(p, nil, "k", 5*time.Second)
			if v == nil {
				break
			}
			got++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Failovers() != 2 {
		t.Fatalf("failovers=%d, want 2", c.Failovers())
	}
	if c.LostValues() != 0 || got != vals {
		t.Fatalf("recovered %d of %d values, %d counted lost; quorum must survive back-to-back kills",
			got, vals, c.LostValues())
	}
}

// Releasing the cluster mid-failover must not let the pending promotion
// provision replacement nodes whose billing clocks never stop.
func TestReleaseDuringFailoverProvisionsNothing(t *testing.T) {
	k, m, c := newTestCluster(t, Config{
		Name: "rel", Shards: 1, Replicas: 1,
		FailoverWindow: time.Second,
	})
	kv := c.kv
	k.Go("driver", func(p *sim.Proc) {
		if err := c.RPush(p, nil, "k", []byte{1}, 0); err != nil {
			t.Errorf("push: %v", err)
		}
		if err := c.KillNode(0); err != nil {
			t.Errorf("kill: %v", err)
		}
		c.Release() // deployment decommissioned before the window elapses
		p.Sleep(5 * time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n := kv.NumNodes(); n != 0 {
		t.Fatalf("%d nodes still provisioned (and billing) after Release during failover", n)
	}
	kv.Settle()
	snap := m.Snapshot()
	var total float64
	for _, h := range snap.KVNodeHours {
		total += h
	}
	// Two nodes lived at most ~1s plus the 60s billing floor each; a
	// leaked replacement would keep accruing past this bound forever.
	if maxHours := 2 * (61 * time.Second).Hours(); total > maxHours {
		t.Fatalf("%.4f node-hours accrued, above the %.4f bound; a node leaked past Release", total, maxHours)
	}
}

// A cached client pays one MOVED-style redirect after a promotion; the
// redirect is metered.
func TestMovedRedirectAfterPromotion(t *testing.T) {
	k, m, c := newTestCluster(t, Config{
		Name: "mv", Shards: 1, Replicas: 2,
		FailoverWindow: time.Second,
	})
	cl := &Client{}
	k.Go("driver", func(p *sim.Proc) {
		if err := c.RPush(p, cl, "k", []byte{1}, 0); err != nil {
			t.Errorf("push: %v", err)
		}
		if err := c.KillNode(0); err != nil {
			t.Errorf("kill: %v", err)
		}
		if v := c.BLPop(p, cl, "k", 5*time.Second); v == nil {
			t.Error("value lost across quorum failover")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Moved() != 1 || m.KVMoved != 1 {
		t.Fatalf("moved=%d metered=%d, want 1 redirect", c.Moved(), m.KVMoved)
	}
}

// A partition stalls the shard's slots for its duration without losing
// data or promoting.
func TestPartitionStallsWithoutLoss(t *testing.T) {
	k, _, c := newTestCluster(t, Config{Name: "part", Shards: 1, Replicas: 1})
	k.Go("driver", func(p *sim.Proc) {
		if err := c.RPush(p, nil, "k", []byte{1}, 0); err != nil {
			t.Errorf("push: %v", err)
		}
		if err := c.Partition(0, 500*time.Millisecond); err != nil {
			t.Errorf("partition: %v", err)
		}
		start := p.Now()
		if v := c.BLPop(p, nil, "k", 5*time.Second); v == nil {
			t.Error("value unavailable after the partition healed")
		}
		if stall := p.Now() - start; stall < 500*time.Millisecond {
			t.Errorf("read served after %v, inside the partition", stall)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.LostValues() != 0 || c.Failovers() != 0 || c.Epoch() != 0 {
		t.Fatalf("partition lost %d values, %d failovers, epoch %d; want none",
			c.LostValues(), c.Failovers(), c.Epoch())
	}
	if c.Partitions() != 1 {
		t.Fatalf("partitions=%d, want 1", c.Partitions())
	}
}

// A kill during a partition supersedes it: the partition's heal must not
// reopen the shard early, and the promotion completes the failover.
func TestKillDuringPartitionSupersedesHeal(t *testing.T) {
	k, _, c := newTestCluster(t, Config{
		Name: "pk", Shards: 1, Replicas: 1,
		FailoverWindow: 2 * time.Second,
	})
	k.Go("driver", func(p *sim.Proc) {
		if err := c.RPush(p, nil, "k", []byte{1}, 0); err != nil {
			t.Errorf("push: %v", err)
		}
		p.Sleep(time.Second) // let the async replication land
		if err := c.Partition(0, 500*time.Millisecond); err != nil {
			t.Errorf("partition: %v", err)
		}
		if err := c.KillNode(0); err != nil {
			t.Errorf("kill during partition: %v", err)
		}
		start := p.Now()
		if v := c.BLPop(p, nil, "k", 10*time.Second); v == nil {
			t.Error("replicated value lost across the kill")
		}
		// The partition would have healed at +500ms; the kill's 2s
		// failover window must govern instead.
		if stall := p.Now() - start; stall < 2*time.Second {
			t.Errorf("reads resumed after %v; the partition heal reopened a failing shard", stall)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Failovers() != 1 || c.LostValues() != 0 {
		t.Fatalf("failovers=%d lost=%d, want 1 failover, 0 lost", c.Failovers(), c.LostValues())
	}
}

// Replica node-hours bill like primaries and are attributed per shard;
// promotion retags the promoted node as primary capacity.
func TestReplicaAndShardBilling(t *testing.T) {
	k, m, c := newTestCluster(t, Config{Name: "bill", Shards: 2, Replicas: 1})
	k.Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * time.Minute)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	wantHours := 4 * (2 * time.Minute).Hours() // 2 shards x (1 primary + 1 replica)
	var total, replica float64
	for _, h := range m.KVNodeHours {
		total += h
	}
	for _, h := range m.KVReplicaHours {
		replica += h
	}
	if diff := total - wantHours; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("total node-hours %.6f, want %.6f", total, wantHours)
	}
	if diff := replica - wantHours/2; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("replica node-hours %.6f, want %.6f", replica, wantHours/2)
	}
	var shardHours float64
	for label, h := range m.KVShardHours {
		if h <= 0 {
			t.Fatalf("shard %s accrued no hours", label)
		}
		shardHours += h
	}
	if len(m.KVShardHours) != 2 {
		t.Fatalf("%d shard labels, want 2: %v", len(m.KVShardHours), m.KVShardHours)
	}
	if diff := shardHours - total; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("shard breakdown %.6f does not sum to total %.6f", shardHours, total)
	}
}

// Aggregate cluster throughput scales past a single node's request-rate
// ceiling once the keyspace shards: the per-node limiter caps each
// primary independently.
func TestThroughputScalesPastSingleNodeCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("saturating the per-node limiter is a long simulation")
	}
	one := MeasureThroughput(1, "cache.t3.small", nil)
	two := MeasureThroughput(2, "cache.t3.small", nil)
	ceiling := kvstore.Catalog["cache.t3.small"].MaxOpsPerSec
	if one > ceiling*1.10 {
		t.Fatalf("single node served %.0f ops/s, above its %.0f ceiling", one, ceiling)
	}
	if two <= ceiling*1.3 {
		t.Fatalf("2 shards served %.0f ops/s, not meaningfully past the %.0f single-node ceiling", two, ceiling)
	}
}
