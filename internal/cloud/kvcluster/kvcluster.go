// Package kvcluster layers a Redis-Cluster-style sharded, replicated
// key-value cluster on the provisioned in-memory store (kvstore). Keys
// hash into 16384 slots; rendezvous hashing maps every slot to one of N
// primary shards, each backed by one primary node and R replica nodes of
// the same provisioned type. Replicas bill node-hours exactly like
// primaries — availability is bought with capacity — and every node
// keeps its own request-rate and bandwidth ceiling, so aggregate cluster
// throughput scales with the shard count past any single node's limit.
//
// Replication follows the availability ladder real deployments climb:
//
//   - R = 0: no replica. A node failure loses the shard's entire
//     keyspace; a fresh empty node replaces it after the failover window.
//   - R = 1: asynchronous replication with a bounded lag. Failover
//     promotes the replica; writes still in the replication pipe when the
//     primary died are lost (the Redis async-replication window).
//   - R >= 2: quorum writes. Each write is acknowledged only after it
//     reaches a majority of the shard's nodes (primary plus the first
//     replica), costing one extra round trip per operation; the remaining
//     replicas trail asynchronously. A single node failure then loses
//     nothing: promotion picks the synchronously caught-up replica.
//
// Fault injection (KillNode, Partition) makes the failover window
// observable: operations on the affected shard's slots block (or error)
// until a replica is promoted — or a replacement provisioned — and the
// cluster topology epoch advances, at which point clients holding cached
// routes pay one MOVED-style redirect round trip.
package kvcluster

import (
	"fmt"
	"strconv"
	"time"

	"fsdinference/internal/cloud/kvstore"
	"fsdinference/internal/obs"
	"fsdinference/internal/sim"
)

// Config sizes and parameterises one cluster.
type Config struct {
	// Name prefixes node names and shard billing labels.
	Name string
	// Shards is the number of primaries N (default 1).
	Shards int
	// Replicas is the replica count R per shard (default 0).
	Replicas int
	// NodeType is the provisioned node size for every cluster node
	// (default kvstore.DefaultNodeType).
	NodeType string
	// FailoverWindow is how long a failed shard's slots stay unavailable
	// before a replica is promoted or a replacement provisioned (default
	// 5s — the detection-plus-election window of a managed store).
	FailoverWindow time.Duration
	// ReplicationLag bounds the asynchronous replication delay (default
	// 50ms). Writes younger than the lag when the primary dies are lost
	// under R = 1.
	ReplicationLag time.Duration
	// ErrorDuringFailover makes operations on a failing shard's slots
	// return errors (CLUSTERDOWN-style) instead of blocking until
	// promotion.
	ErrorDuringFailover bool
	// Trace is the owning deployment's observability scope
	// (internal/obs): failover and partition windows become fault spans
	// on per-shard tracks, MOVED redirects become instants. The zero
	// scope disables it.
	Trace obs.Scope
	// FailoverCounter and LostValuesCounter, when set, count failovers
	// and lost values into the owning endpoint's metrics registry so the
	// SLO monitor can attribute KV availability incidents per endpoint
	// (the obs counters are nil-safe, so the zero Config stays valid).
	FailoverCounter   *obs.Counter
	LostValuesCounter *obs.Counter
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "kvc"
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Replicas < 0 {
		c.Replicas = 0
	}
	if c.NodeType == "" {
		c.NodeType = kvstore.DefaultNodeType
	}
	if c.FailoverWindow <= 0 {
		c.FailoverWindow = 5 * time.Second
	}
	if c.ReplicationLag <= 0 {
		c.ReplicationLag = 50 * time.Millisecond
	}
	return c
}

// Client is one caller's cached view of the cluster topology. Operations
// taking a non-nil client charge a MOVED-style redirect round trip the
// first time the client acts after a topology change, mirroring how real
// cluster clients discover promotions.
type Client struct {
	epoch int
}

// Cluster is a sharded, replicated key-value cluster over provisioned
// store nodes.
type Cluster struct {
	kv  *kvstore.Service
	k   *sim.Kernel
	cfg Config

	slots  []int
	shards []*shard
	epoch  int // topology version; bumps on every promotion

	released bool

	failovers  int64
	lostValues int64
	moved      int64
	partitions int64
}

// shard is one slot range owner: a primary plus R replicas.
type shard struct {
	c     *Cluster
	idx   int
	label string
	// strack is the shard's trace track ("ep/r1/kv/s0"); empty when the
	// cluster is untraced. faultSpan is the open failover span between
	// KillNode and promote.
	strack    string
	faultSpan obs.SpanRef
	primary   *kvstore.Node
	// replicas in promotion order: under quorum writes replicas[0] is
	// the synchronous majority partner and the failover candidate.
	replicas []*kvstore.Node
	nodeSeq  int

	failing bool
	cond    *sim.Cond

	// repEpoch invalidates in-flight asynchronous replication when the
	// primary dies: pending applies from a dead primary must not
	// resurrect on the promoted node.
	repEpoch int
}

// New provisions the cluster's nodes (N primaries, N*R replicas — all
// billing node-hours from this moment) and builds the slot map.
func New(kv *kvstore.Service, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		kv:    kv,
		k:     kv.Kernel(),
		cfg:   cfg,
		slots: BuildSlotMap(cfg.Shards),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			c:     c,
			idx:   i,
			label: fmt.Sprintf("%s-s%d", cfg.Name, i),
			cond:  sim.NewCond(c.k),
		}
		if cfg.Trace.T != nil {
			sh.strack = fmt.Sprintf("%s/s%d", cfg.Trace.Track, i)
		}
		var err error
		if sh.primary, err = c.provision(sh, false); err != nil {
			return nil, err
		}
		for r := 0; r < cfg.Replicas; r++ {
			rep, err := c.provision(sh, true)
			if err != nil {
				return nil, err
			}
			sh.replicas = append(sh.replicas, rep)
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

func (c *Cluster) provision(sh *shard, replica bool) (*kvstore.Node, error) {
	name := fmt.Sprintf("%s-n%d", sh.label, sh.nodeSeq)
	sh.nodeSeq++
	n, err := c.kv.Provision(name, c.cfg.NodeType)
	if err != nil {
		return nil, err
	}
	n.SetBillingTag(sh.label, replica)
	return n, nil
}

// Config returns the (defaults-applied) cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Epoch returns the topology version; it advances on every promotion.
func (c *Cluster) Epoch() int { return c.epoch }

// Failovers, LostValues, Moved and Partitions report the cluster's
// fault counters (also mirrored into the usage meter for windowed
// reports).
func (c *Cluster) Failovers() int64  { return c.failovers }
func (c *Cluster) LostValues() int64 { return c.lostValues }
func (c *Cluster) Moved() int64      { return c.moved }
func (c *Cluster) Partitions() int64 { return c.partitions }

// Shards returns the primary count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Nodes returns every live cluster node, primaries first then replicas,
// in shard order.
func (c *Cluster) Nodes() []*kvstore.Node {
	var out []*kvstore.Node
	for _, sh := range c.shards {
		if sh.primary != nil && !sh.primary.Released() {
			out = append(out, sh.primary)
		}
	}
	for _, sh := range c.shards {
		for _, r := range sh.replicas {
			if !r.Released() {
				out = append(out, r)
			}
		}
	}
	return out
}

// Primary returns the shard's current primary node (nil while the shard
// is failing over after a kill).
func (c *Cluster) Primary(shard int) *kvstore.Node { return c.shards[shard].primary }

// Route returns the shard index and current primary owning the key's
// slot — the single node every operation on that key lands on.
func (c *Cluster) Route(key string) (int, *kvstore.Node) {
	sh := c.shardFor(key)
	return sh.idx, sh.primary
}

func (c *Cluster) shardFor(key string) *shard {
	return c.shards[c.slots[SlotForKey(key)]]
}

// redirect charges a cached client the MOVED round trip when the
// topology moved underneath it.
func (c *Cluster) redirect(p *sim.Proc, cl *Client) {
	if cl == nil || cl.epoch == c.epoch {
		return
	}
	p.Sleep(c.kv.Config().OpLatency)
	c.moved++
	c.kv.Meter().KVMoved++
	c.cfg.Trace.Event("moved", obs.KindEvent)
	cl.epoch = c.epoch
}

// await blocks (or errors) while the shard is failing over.
func (sh *shard) await(p *sim.Proc) error {
	for sh.failing {
		if sh.c.cfg.ErrorDuringFailover {
			return fmt.Errorf("kvcluster: shard %d of %s unavailable during failover", sh.idx, sh.c.cfg.Name)
		}
		sh.cond.Wait(p)
	}
	return nil
}

// quorum reports whether the shard runs quorum writes (R >= 2: primary
// plus the first replica form a majority of the shard's nodes).
func (sh *shard) quorum() bool { return len(sh.replicas) >= 2 }

// ackLatency is the extra round trip a quorum write pays for the
// synchronous replica acknowledgement.
func (c *Cluster) ackLatency() time.Duration { return c.kv.Config().OpLatency }

// RPush routes the key to its slot owner, appends the value on the
// primary and replicates per the shard's mode. During a failover of the
// owning shard the call blocks until promotion (or errors, per config).
func (c *Cluster) RPush(p *sim.Proc, cl *Client, key string, val []byte, ttl time.Duration) error {
	sh := c.shardFor(key)
	if err := c.opReady(p, cl, sh); err != nil {
		return err
	}
	if err := sh.primary.RPush(p, key, val, ttl); err != nil {
		return err
	}
	sh.replicatePush(p, key, val, ttl)
	return nil
}

func (sh *shard) replicatePush(p *sim.Proc, key string, val []byte, ttl time.Duration) {
	if len(sh.replicas) == 0 {
		return
	}
	if sh.quorum() {
		// Majority ack: the first replica applies synchronously and the
		// write pays one extra round trip; the rest trail asynchronously.
		sh.replicas[0].ReplApply(key, val, ttl)
		p.Sleep(sh.c.ackLatency())
		for _, r := range sh.replicas[1:] {
			sh.asyncApply(r, func(n *kvstore.Node) { n.ReplApply(key, val, ttl) })
		}
		return
	}
	sh.asyncApply(sh.replicas[0], func(n *kvstore.Node) { n.ReplApply(key, val, ttl) })
}

func (sh *shard) replicatePop(p *sim.Proc, key string) {
	if len(sh.replicas) == 0 {
		return
	}
	if sh.quorum() {
		sh.replicas[0].ReplApplyPop(key)
		p.Sleep(sh.c.ackLatency())
		for _, r := range sh.replicas[1:] {
			sh.asyncApply(r, func(n *kvstore.Node) { n.ReplApplyPop(key) })
		}
		return
	}
	sh.asyncApply(sh.replicas[0], func(n *kvstore.Node) { n.ReplApplyPop(key) })
}

// asyncApply ships one replication-stream entry to a replica after the
// configured lag. Entries from a dead primary (the shard's replication
// epoch moved) are dropped: they were in the pipe when the primary
// failed and never reached any surviving node.
func (sh *shard) asyncApply(n *kvstore.Node, apply func(*kvstore.Node)) {
	e := sh.repEpoch
	sh.c.k.At(sh.c.cfg.ReplicationLag, func() {
		if sh.repEpoch != e {
			return // lost with the failed primary; counted at kill time
		}
		apply(n)
	})
}

// BLPop routes the key to its slot owner and pops with a blocking wait.
// Failover time on the owning shard counts against the wait; nil is
// returned on timeout exactly as for a plain node.
func (c *Cluster) BLPop(p *sim.Proc, cl *Client, key string, wait time.Duration) []byte {
	sh := c.shardFor(key)
	deadline := p.Now() + wait
	for {
		for sh.failing || sh.primary == nil {
			if c.cfg.ErrorDuringFailover || wait <= 0 || p.Now() >= deadline {
				return nil
			}
			sh.cond.WaitTimeout(p, deadline-p.Now())
		}
		c.redirect(p, cl)
		// The redirect round trip yields: another fault may have landed
		// on the shard during it.
		if !sh.failing && sh.primary != nil {
			break
		}
	}
	remaining := deadline - p.Now()
	if wait <= 0 || remaining < 0 {
		remaining = 0
	}
	val := sh.primary.BLPop(p, key, remaining)
	if val != nil {
		sh.replicatePop(p, key)
	}
	return val
}

// LPop is the non-blocking pop.
func (c *Cluster) LPop(p *sim.Proc, cl *Client, key string) []byte {
	return c.BLPop(p, cl, key, 0)
}

// Del removes a key on its owning shard, replicating the removal to the
// shard's replicas host-side.
func (c *Cluster) Del(p *sim.Proc, cl *Client, key string) error {
	sh := c.shardFor(key)
	if err := c.opReady(p, cl, sh); err != nil {
		return err
	}
	sh.primary.Del(p, key)
	for _, r := range sh.replicas {
		r.ReplApplyDel(key)
	}
	return nil
}

// Expire (re)sets a key's TTL on its owning shard.
func (c *Cluster) Expire(p *sim.Proc, cl *Client, key string, ttl time.Duration) error {
	sh := c.shardFor(key)
	if err := c.opReady(p, cl, sh); err != nil {
		return err
	}
	sh.primary.Expire(p, key, ttl)
	return nil
}

// DropPrefix discards every key under prefix host-side on every cluster
// node — primaries and replicas across all shards — the control-plane
// teardown of a run's keyspace. Free of charge and virtual time.
func (c *Cluster) DropPrefix(prefix string) {
	for _, sh := range c.shards {
		if sh.primary != nil {
			sh.primary.DropPrefix(prefix)
		}
		for _, r := range sh.replicas {
			r.DropPrefix(prefix)
		}
	}
}

// KillNode fails the shard's primary at the current virtual time: the
// node is released (its data is gone), the shard's slots become
// unavailable for the failover window, and losses are counted exactly —
// the values held on the primary that no surviving replica has yet
// received: everything for R = 0, the un-replicated pipe for
// asynchronous R = 1, nothing for quorum R >= 2 (the first replica is
// synchronously caught up). Values already consumed from the primary
// are not losses, however young. After the window a replica is promoted
// (or an empty replacement provisioned), fresh replicas restore R, and
// the topology epoch advances so cached clients pay a MOVED redirect.
// Killing a partitioned shard is allowed — the kill supersedes the
// partition's heal — but not a shard already failing over.
func (c *Cluster) KillNode(shardIdx int) error {
	if c.released {
		return fmt.Errorf("kvcluster: %s already released", c.cfg.Name)
	}
	if shardIdx < 0 || shardIdx >= len(c.shards) {
		return fmt.Errorf("kvcluster: no shard %d", shardIdx)
	}
	sh := c.shards[shardIdx]
	if sh.primary == nil {
		return fmt.Errorf("kvcluster: shard %d already failing over", shardIdx)
	}
	var lost int64
	if len(sh.replicas) == 0 {
		lost = int64(sh.primary.NumValues())
	} else {
		lost = diffValues(sh.primary, sh.replicas[0])
	}
	c.failovers++
	c.lostValues += lost
	c.cfg.FailoverCounter.Inc()
	c.cfg.LostValuesCounter.Add(lost)
	m := c.kv.Meter()
	m.KVFailovers++
	m.KVLostValues += lost
	sh.primary.Release()
	sh.primary = nil
	sh.failing = true
	sh.repEpoch++
	if t := c.cfg.Trace.T; t != nil {
		sh.faultSpan = t.Start(sh.strack, "failover", obs.KindFault, 0)
		sh.faultSpan.SetAttr("lost", strconv.FormatInt(lost, 10))
	}
	c.k.At(c.cfg.FailoverWindow, func() { sh.promote() })
	return nil
}

// diffValues counts the list values present on the primary that the
// replica has not yet received — per key, the primary's surplus. Values
// the replica holds beyond the primary are consumed-but-unreplicated
// pops: duplicates after promotion, not losses.
func diffValues(primary, replica *kvstore.Node) int64 {
	replicaLens := replica.ListLens()
	var lost int64
	for key, n := range primary.ListLens() {
		if d := n - replicaLens[key]; d > 0 {
			lost += int64(d)
		}
	}
	return lost
}

// promote completes a failover: the first replica (synchronously caught
// up under quorum, lag-bounded under async) becomes primary, or a fresh
// empty node replaces an unreplicated shard. Surviving replicas
// background-sync from the new primary — their replication stream from
// the dead primary was cut, so they may hold gaps — and new replicas
// are provisioned (billing from now) and synced, restoring the
// configured R.
func (sh *shard) promote() {
	c := sh.c
	if c.released {
		// The cluster was released while the shard was failing over:
		// provisioning replacements now would bill node-hours forever.
		return
	}
	// Close the billing window first: the promoted node's hours up to
	// this instant were served as replica capacity.
	c.kv.Settle()
	if len(sh.replicas) > 0 {
		sh.primary = sh.replicas[0]
		sh.replicas = sh.replicas[1:]
		sh.primary.SetBillingTag(sh.label, false)
	} else {
		n, err := c.provision(sh, false)
		if err != nil {
			// The node type was validated at New; re-provisioning the
			// same type cannot fail short of a programming error.
			panic(fmt.Sprintf("kvcluster: shard %d replacement: %v", sh.idx, err))
		}
		sh.primary = n
	}
	for _, r := range sh.replicas {
		r.SyncFrom(sh.primary)
	}
	for len(sh.replicas) < c.cfg.Replicas {
		r, err := c.provision(sh, true)
		if err != nil {
			panic(fmt.Sprintf("kvcluster: shard %d replica: %v", sh.idx, err))
		}
		r.SyncFrom(sh.primary)
		sh.replicas = append(sh.replicas, r)
	}
	sh.failing = false
	c.epoch++
	sh.faultSpan.End()
	sh.faultSpan = obs.SpanRef{}
	sh.cond.Broadcast()
}

// opReady brings an operation to a routable shard state: wait out any
// failover/partition, pay the topology redirect, and re-check — another
// fault may land during the redirect round trip itself.
func (c *Cluster) opReady(p *sim.Proc, cl *Client, sh *shard) error {
	for {
		if err := sh.await(p); err != nil {
			return err
		}
		// A client that blocked through a promotion resumes against a
		// moved topology: pay the redirect before the retry lands.
		c.redirect(p, cl)
		if !sh.failing && sh.primary != nil {
			return nil
		}
	}
}

// Partition makes the shard's slots unavailable for d without killing
// the primary: operations block (or error) and no data is lost — the
// network heals before the failover logic would have promoted.
func (c *Cluster) Partition(shardIdx int, d time.Duration) error {
	if c.released {
		return fmt.Errorf("kvcluster: %s already released", c.cfg.Name)
	}
	if shardIdx < 0 || shardIdx >= len(c.shards) {
		return fmt.Errorf("kvcluster: no shard %d", shardIdx)
	}
	sh := c.shards[shardIdx]
	if sh.failing {
		return fmt.Errorf("kvcluster: shard %d already unavailable", shardIdx)
	}
	c.partitions++
	sh.failing = true
	epoch := sh.repEpoch
	var psp obs.SpanRef
	if t := c.cfg.Trace.T; t != nil {
		psp = t.Start(sh.strack, "partition", obs.KindFault, 0)
	}
	c.k.At(d, func() {
		if sh.repEpoch != epoch || !sh.failing {
			return // a kill superseded the partition (its span stays open and is simply never exported)
		}
		sh.failing = false
		psp.End()
		sh.cond.Broadcast()
	})
	return nil
}

// NumKeys returns the live logical keys across the cluster (primaries
// only; replicas mirror them).
func (c *Cluster) NumKeys() int {
	total := 0
	for _, sh := range c.shards {
		if sh.primary != nil {
			total += sh.primary.NumKeys()
		}
	}
	return total
}

// NumKeysByNode returns the live key count of every cluster node —
// primaries and replicas — keyed by node name, so teardown checks can
// assert the whole cluster (not just the primaries) unwound.
func (c *Cluster) NumKeysByNode() map[string]int {
	out := make(map[string]int)
	for _, n := range c.Nodes() {
		out[n.Name()] = n.NumKeys()
	}
	return out
}

// Settle accrues all provisioned billing up to now (delegates to the
// underlying store service).
func (c *Cluster) Settle() { c.kv.Settle() }

// Release stops every cluster node's billing clock and discards the
// cluster's contents. The cluster must not be used afterwards.
func (c *Cluster) Release() {
	if c.released {
		return
	}
	c.released = true
	for _, sh := range c.shards {
		if sh.primary != nil {
			sh.primary.Release()
			sh.primary = nil
		}
		for _, r := range sh.replicas {
			r.Release()
		}
		sh.replicas = nil
	}
}
