package kvcluster

import (
	"fmt"
	"time"

	"fsdinference/internal/cloud/kvstore"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/sim"
)

// MeasureThroughput saturates a fresh cluster of the given shard count
// and node type with an offered RPUSH load well above one node's
// request-rate ceiling and returns the steady-state aggregate throughput
// in operations per second. The first half of the window warms the
// per-node token buckets through their burst allowance; only the second
// half is measured, so the figure is the sustained rate the per-node
// limiters actually enforce. It is the measurement behind the cluster
// experiment's headline: one node pins at its ceiling, N shards serve
// ~N times it.
func MeasureThroughput(shards int, nodeType string, cfg *Config) float64 {
	k := sim.New()
	kv := kvstore.New(k, usage.NewMeter(), kvstore.DefaultConfig())
	ccfg := Config{Name: "loadgen", Shards: shards, NodeType: nodeType}
	if cfg != nil {
		ccfg = *cfg
		ccfg.Shards = shards
		ccfg.NodeType = nodeType
	}
	c, err := New(kv, ccfg)
	if err != nil {
		panic(fmt.Sprintf("kvcluster: loadgen cluster: %v", err))
	}

	const window = time.Second
	warm := window / 2
	// Offered load: each pusher issues one op per OpLatency, so 48
	// pushers offer ~160k ops/s against the 40-120k ceilings in the
	// catalogue — enough to drain any burst inside the warmup.
	pushers := 48 * shards
	ops := 0
	for w := 0; w < pushers; w++ {
		key := fmt.Sprintf("load/%d", w)
		k.Go(fmt.Sprintf("pusher-%d", w), func(p *sim.Proc) {
			for p.Now() < window {
				if err := c.RPush(p, nil, key, []byte{1}, time.Minute); err != nil {
					return
				}
				if p.Now() >= warm {
					ops++
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		panic(fmt.Sprintf("kvcluster: loadgen run: %v", err))
	}
	c.Release()
	return float64(ops) / (window - warm).Seconds()
}
