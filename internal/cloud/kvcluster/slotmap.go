package kvcluster

import (
	"hash/fnv"
	"strconv"
	"strings"
)

// NumSlots is the cluster keyspace size, matching Redis Cluster's 16384
// hash slots: every key hashes to exactly one slot, and every slot is
// owned by exactly one shard, so routing is total and unambiguous.
const NumSlots = 16384

// SlotForKey hashes a key to its slot. Redis-style hash tags apply: when
// the key contains a non-empty "{...}" section, only that section is
// hashed, letting callers pin related keys to one slot. The engine's
// per-run inbox keys carry no tag, so worker inboxes scatter across
// shards — which is exactly what lets aggregate throughput scale past a
// single node's request-rate ceiling.
func SlotForKey(key string) int {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if j := strings.IndexByte(key[i+1:], '}'); j > 0 {
			key = key[i+1 : i+1+j]
		}
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % NumSlots)
}

// BuildSlotMap assigns every slot to one of shards owners by rendezvous
// (highest-random-weight) hashing: slot s belongs to the shard whose
// hash(s, shard) is largest. The assignment is total, deterministic, and
// minimally disruptive under topology change — growing from n to n+1
// shards moves only the slots the new shard wins, shrinking moves only
// the departed shard's slots — the property the MOVED-redirect protocol
// relies on and the slot-map property test pins.
func BuildSlotMap(shards int) []int {
	if shards < 1 {
		shards = 1
	}
	m := make([]int, NumSlots)
	for s := range m {
		best, bestH := 0, rendezvous(s, 0)
		for i := 1; i < shards; i++ {
			if h := rendezvous(s, i); h > bestH {
				best, bestH = i, h
			}
		}
		m[s] = best
	}
	return m
}

func rendezvous(slot, shard int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(strconv.Itoa(slot)))
	h.Write([]byte{'/'})
	h.Write([]byte(strconv.Itoa(shard)))
	return h.Sum64()
}
