// Package usage meters simulated cloud resource consumption. It is the
// in-simulation equivalent of the "detailed AWS Cost and Usage reports" the
// paper uses to validate its cost model (§VI-F): services record every
// billable event here, and the meter converts the raw counts into billed
// line items using a pricing.Catalog.
//
// The simulation kernel runs one process at a time, so the meter needs no
// locking.
package usage

import (
	"fmt"
	"sort"
	"strings"

	"fsdinference/internal/cloud/pricing"
)

// Meter accumulates billable usage counts for one simulation run.
type Meter struct {
	// Lambda.
	LambdaInvocations int64
	LambdaGBSeconds   float64

	// SNS.
	SNSPublishCalls    int64 // raw PublishBatch API calls
	SNSBilledPublishes int64 // 64 KiB-increment billed requests (S in the paper)
	SNSMessages        int64 // individual messages published
	SNSDeliveredBytes  int64 // bytes delivered SNS->SQS (Z in the paper)

	// SQS. Receives+deletes+sends are the billed API calls (Q).
	SQSReceiveCalls int64
	SQSDeleteCalls  int64
	SQSSendCalls    int64 // fan-out deliveries from SNS; billing configurable
	SQSBillFanout   bool  // whether fan-out sends count toward Q

	// S3.
	S3PutCalls  int64 // V in the paper
	S3GetCalls  int64 // R in the paper
	S3ListCalls int64 // L in the paper
	S3BytesIn   int64
	S3BytesOut  int64

	// EC2.
	EC2Hours map[string]float64

	// KV (provisioned in-memory store). Operations and bytes are metered
	// for usage reports but carry no per-request price; the billed line
	// item is the provisioned node-hours, accrued idle or busy.
	KVOps       int64
	KVBytesIn   int64
	KVBytesOut  int64
	KVGBHours   float64
	KVNodeHours map[string]float64

	// KVReplicaHours is the replica share of KVNodeHours by node type:
	// replica nodes bill exactly like primaries (node-hours, idle or
	// busy), and this map is what the availability-versus-cost tradeoff
	// is priced from. KVShardHours breaks all node-hours down by shard
	// label (primaries and replicas of one shard share a label).
	KVReplicaHours map[string]float64
	KVShardHours   map[string]float64

	// Cluster fault/topology counters (kvcluster): failovers triggered,
	// values lost to a failover (writes not yet replicated, or a whole
	// unreplicated shard), values the memory channel re-sent from sender
	// buffers to recover, and MOVED-style redirects clients paid after a
	// topology change.
	KVFailovers  int64
	KVLostValues int64
	KVResends    int64
	KVMoved      int64

	// Collectives counts collective operations by "op/algorithm" key
	// (e.g. "barrier/tree"), one count per P-worker collective.
	Collectives map[string]int64

	// Hybrid-channel routing counters: values that stayed on the
	// memory-store control path, values whose bulk payload was chunked
	// into object storage (with their pre-chunk byte volume), and the
	// total chunk objects written.
	HybridSmallValues int64
	HybridBulkValues  int64
	HybridBulkBytes   int64
	HybridChunks      int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{
		EC2Hours:       make(map[string]float64),
		KVNodeHours:    make(map[string]float64),
		KVReplicaHours: make(map[string]float64),
		KVShardHours:   make(map[string]float64),
		Collectives:    make(map[string]int64),
	}
}

// AddCollective records one collective operation run under the given
// algorithm ("barrier"/"tree", "allreduce"/"ring", ...).
func (m *Meter) AddCollective(op, alg string) {
	if m.Collectives == nil {
		m.Collectives = make(map[string]int64)
	}
	m.Collectives[op+"/"+alg]++
}

// AddEC2Hours records h hours of usage for the given instance type.
func (m *Meter) AddEC2Hours(instanceType string, h float64) {
	m.EC2Hours[instanceType] += h
}

// AddKVNodeHours records h provisioned hours for the given cache node
// type. An optional shard label attributes the hours to one cluster
// shard, and replica marks them as replica (not primary) capacity.
func (m *Meter) AddKVNodeHours(nodeType string, h float64) {
	m.KVNodeHours[nodeType] += h
}

// AddKVReplicaHours records h provisioned replica hours for the node
// type — the replica share of AddKVNodeHours, not an extra charge.
func (m *Meter) AddKVReplicaHours(nodeType string, h float64) {
	m.KVReplicaHours[nodeType] += h
}

// AddKVShardHours attributes h provisioned node-hours to a shard label.
func (m *Meter) AddKVShardHours(shard string, h float64) {
	m.KVShardHours[shard] += h
}

// SQSRequests returns Q, the billed queueing API request count.
func (m *Meter) SQSRequests() int64 {
	q := m.SQSReceiveCalls + m.SQSDeleteCalls
	if m.SQSBillFanout {
		q += m.SQSSendCalls
	}
	return q
}

// Snapshot returns a copy of the meter, for windowed accounting
// (subtract two snapshots to isolate one experiment's usage).
func (m *Meter) Snapshot() Meter {
	c := *m
	c.EC2Hours = make(map[string]float64, len(m.EC2Hours))
	for k, v := range m.EC2Hours {
		c.EC2Hours[k] = v
	}
	c.KVNodeHours = make(map[string]float64, len(m.KVNodeHours))
	for k, v := range m.KVNodeHours {
		c.KVNodeHours[k] = v
	}
	c.KVReplicaHours = make(map[string]float64, len(m.KVReplicaHours))
	for k, v := range m.KVReplicaHours {
		c.KVReplicaHours[k] = v
	}
	c.KVShardHours = make(map[string]float64, len(m.KVShardHours))
	for k, v := range m.KVShardHours {
		c.KVShardHours[k] = v
	}
	c.Collectives = make(map[string]int64, len(m.Collectives))
	for k, v := range m.Collectives {
		c.Collectives[k] = v
	}
	return c
}

// Sub returns the usage accumulated since the earlier snapshot prev.
func (m *Meter) Sub(prev Meter) Meter {
	d := m.Snapshot()
	d.LambdaInvocations -= prev.LambdaInvocations
	d.LambdaGBSeconds -= prev.LambdaGBSeconds
	d.SNSPublishCalls -= prev.SNSPublishCalls
	d.SNSBilledPublishes -= prev.SNSBilledPublishes
	d.SNSMessages -= prev.SNSMessages
	d.SNSDeliveredBytes -= prev.SNSDeliveredBytes
	d.SQSReceiveCalls -= prev.SQSReceiveCalls
	d.SQSDeleteCalls -= prev.SQSDeleteCalls
	d.SQSSendCalls -= prev.SQSSendCalls
	d.S3PutCalls -= prev.S3PutCalls
	d.S3GetCalls -= prev.S3GetCalls
	d.S3ListCalls -= prev.S3ListCalls
	d.S3BytesIn -= prev.S3BytesIn
	d.S3BytesOut -= prev.S3BytesOut
	d.KVOps -= prev.KVOps
	d.KVBytesIn -= prev.KVBytesIn
	d.KVBytesOut -= prev.KVBytesOut
	d.KVGBHours -= prev.KVGBHours
	d.KVFailovers -= prev.KVFailovers
	d.KVLostValues -= prev.KVLostValues
	d.KVResends -= prev.KVResends
	d.KVMoved -= prev.KVMoved
	for k, v := range prev.EC2Hours {
		d.EC2Hours[k] -= v
	}
	for k, v := range prev.KVNodeHours {
		d.KVNodeHours[k] -= v
	}
	for k, v := range prev.KVReplicaHours {
		d.KVReplicaHours[k] -= v
	}
	for k, v := range prev.KVShardHours {
		d.KVShardHours[k] -= v
	}
	d.HybridSmallValues -= prev.HybridSmallValues
	d.HybridBulkValues -= prev.HybridBulkValues
	d.HybridBulkBytes -= prev.HybridBulkBytes
	d.HybridChunks -= prev.HybridChunks
	for k, v := range prev.Collectives {
		d.Collectives[k] -= v
	}
	return d
}

// Breakdown is a billed cost report, one line item per service, mirroring
// the compute/communication split the paper reports in §VI-F.
type Breakdown struct {
	Lambda float64
	SNS    float64
	SQS    float64
	S3     float64
	EC2    float64
	// KV is the provisioned in-memory store spend (node-hours; no
	// per-request component). KVReplica is the replica share of KV —
	// informational, already included in KV, so Total does not add it.
	KV        float64
	KVReplica float64
}

// Comms returns the communication cost (everything except compute).
func (b Breakdown) Comms() float64 { return b.SNS + b.SQS + b.S3 + b.KV }

// Total returns the full billed cost.
func (b Breakdown) Total() float64 { return b.Lambda + b.SNS + b.SQS + b.S3 + b.EC2 + b.KV }

// String formats the breakdown as a compact dollar report.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "compute $%.4f", b.Lambda+b.EC2)
	fmt.Fprintf(&sb, ", comms $%.4f", b.Comms())
	fmt.Fprintf(&sb, " (SNS $%.4f, SQS $%.4f, S3 $%.4f", b.SNS, b.SQS, b.S3)
	if b.KV != 0 {
		fmt.Fprintf(&sb, ", KV $%.4f", b.KV)
		if b.KVReplica != 0 {
			fmt.Fprintf(&sb, " incl. replicas $%.4f", b.KVReplica)
		}
	}
	sb.WriteString(")")
	fmt.Fprintf(&sb, ", total $%.4f", b.Total())
	return sb.String()
}

// FoldSorted calls f for each entry of m in ascending key order. Use it
// wherever map entries feed a floating-point accumulation: float
// addition is not associative, so folding in map iteration order would
// make the low bits of a total differ run to run, which the replay
// engine's bit-for-bit report equality cannot tolerate.
func FoldSorted(m map[string]float64, f func(k string, v float64)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f(k, m[k])
	}
}

// Cost converts the metered usage into billed dollars under catalogue c.
func (m *Meter) Cost(c pricing.Catalog) Breakdown {
	var b Breakdown
	b.Lambda = float64(m.LambdaInvocations)*c.LambdaInvoke +
		m.LambdaGBSeconds*c.LambdaGBSecond
	b.SNS = float64(m.SNSBilledPublishes)*c.SNSPublish +
		float64(m.SNSDeliveredBytes)*c.SNSByte
	b.SQS = float64(m.SQSRequests()) * c.SQSRequest
	b.S3 = float64(m.S3PutCalls)*c.S3Put +
		float64(m.S3GetCalls)*c.S3Get +
		float64(m.S3ListCalls)*c.S3List
	FoldSorted(m.EC2Hours, func(typ string, h float64) {
		b.EC2 += h * c.EC2Hourly[typ]
	})
	FoldSorted(m.KVNodeHours, func(typ string, h float64) {
		b.KV += h * c.KVNodeHourly[typ]
	})
	FoldSorted(m.KVReplicaHours, func(typ string, h float64) {
		b.KVReplica += h * c.KVNodeHourly[typ]
	})
	return b
}

// KVShardCost prices the per-shard node-hours breakdown: shard label to
// billed dollars (primaries plus replicas of that shard). Shard labels
// do not carry the node type, so the breakdown assumes one node type per
// cluster — true for every deployment the engine creates — and prices
// each shard's hours at its cluster's node rate via the weighted average
// of KVNodeHours.
func (m *Meter) KVShardCost(c pricing.Catalog) map[string]float64 {
	var hours, dollars float64
	FoldSorted(m.KVNodeHours, func(typ string, h float64) {
		hours += h
		dollars += h * c.KVNodeHourly[typ]
	})
	if hours <= 0 {
		return nil
	}
	rate := dollars / hours
	out := make(map[string]float64, len(m.KVShardHours))
	for shard, h := range m.KVShardHours {
		if h > 0 {
			out[shard] = h * rate
		}
	}
	return out
}
