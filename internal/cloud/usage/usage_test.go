package usage

import (
	"math"
	"strings"
	"testing"

	"fsdinference/internal/cloud/pricing"
)

func TestCostBreakdown(t *testing.T) {
	m := NewMeter()
	m.LambdaInvocations = 1_000_000
	m.LambdaGBSeconds = 1000
	m.SNSBilledPublishes = 1_000_000
	m.SNSDeliveredBytes = 1e9
	m.SQSReceiveCalls = 500_000
	m.SQSDeleteCalls = 500_000
	m.S3PutCalls = 1000
	m.S3GetCalls = 10000
	m.S3ListCalls = 2000
	m.AddEC2Hours("c5.2xlarge", 10)
	m.AddKVNodeHours("cache.m6g.large", 24)

	b := m.Cost(pricing.Default())
	approx := func(got, want float64, what string) {
		if math.Abs(got-want) > 1e-9+0.001*math.Abs(want) {
			t.Errorf("%s = %v, want %v", what, got, want)
		}
	}
	approx(b.Lambda, 0.20+1000*0.0000166667, "Lambda")
	approx(b.SNS, 0.50+0.09, "SNS")
	approx(b.SQS, 0.40, "SQS")
	approx(b.S3, 1000*0.005/1e3+10000*0.0004/1e3+2000*0.005/1e3, "S3")
	approx(b.EC2, 3.4, "EC2")
	approx(b.KV, 24*0.149, "KV")
	approx(b.Total(), b.Lambda+b.SNS+b.SQS+b.S3+b.EC2+b.KV, "Total")
	approx(b.Comms(), b.SNS+b.SQS+b.S3+b.KV, "Comms")
}

func TestSQSFanoutBillingToggle(t *testing.T) {
	m := NewMeter()
	m.SQSReceiveCalls = 10
	m.SQSDeleteCalls = 5
	m.SQSSendCalls = 100
	if got := m.SQSRequests(); got != 15 {
		t.Fatalf("Q = %d, want 15 (fan-out sends not billed by default)", got)
	}
	m.SQSBillFanout = true
	if got := m.SQSRequests(); got != 115 {
		t.Fatalf("Q = %d, want 115 with fan-out billing", got)
	}
}

func TestSnapshotSubIsolatesWindow(t *testing.T) {
	m := NewMeter()
	m.S3PutCalls = 5
	m.LambdaGBSeconds = 1.5
	m.AddEC2Hours("c5.2xlarge", 1)
	snap := m.Snapshot()

	m.S3PutCalls += 7
	m.LambdaGBSeconds += 2.5
	m.AddEC2Hours("c5.2xlarge", 3)

	d := m.Sub(snap)
	if d.S3PutCalls != 7 {
		t.Errorf("window puts = %d, want 7", d.S3PutCalls)
	}
	if math.Abs(d.LambdaGBSeconds-2.5) > 1e-12 {
		t.Errorf("window GB-s = %v, want 2.5", d.LambdaGBSeconds)
	}
	if math.Abs(d.EC2Hours["c5.2xlarge"]-3) > 1e-12 {
		t.Errorf("window EC2 hours = %v, want 3", d.EC2Hours["c5.2xlarge"])
	}
	// Snapshot is a deep copy: mutating it doesn't touch the live meter.
	snap.EC2Hours["c5.2xlarge"] = 99
	if m.EC2Hours["c5.2xlarge"] != 4 {
		t.Error("snapshot shares EC2Hours map with meter")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Lambda: 0.10, SNS: 0.20, SQS: 0.05, S3: 0.0}
	s := b.String()
	for _, want := range []string{"compute $0.1000", "comms $0.2500", "total $0.3500"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestBilledPublishRequests(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int64
	}{
		{0, 1}, {1, 1}, {64 * 1024, 1}, {64*1024 + 1, 2},
		{256 * 1024, 4}, {200 * 1024, 4}, {128 * 1024, 2},
	}
	for _, c := range cases {
		if got := pricing.BilledPublishRequests(c.bytes); got != c.want {
			t.Errorf("BilledPublishRequests(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

// TestCostFoldOrderDeterministic is the regression test for the
// maporder burndown: Cost folds per-type hour maps into float totals,
// and float addition is not associative, so folding in map iteration
// order produced bit-different totals from one call to the next.
// FoldSorted pins the order; every call must now agree to the last bit.
func TestCostFoldOrderDeterministic(t *testing.T) {
	m := NewMeter()
	c := pricing.Default()
	// Several binary-inexact hour values per type, so any reordering of
	// the fold changes the low bits of the sum.
	i := 0
	for typ := range c.EC2Hourly {
		m.EC2Hours[typ] = 0.1 + 0.7*float64(i)
		i++
	}
	i = 0
	for typ := range c.KVNodeHourly {
		m.KVNodeHours[typ] = 0.3 + 1.7*float64(i)
		m.KVReplicaHours[typ] = 0.9 + 0.13*float64(i)
		i++
	}
	if len(m.EC2Hours) < 3 || len(m.KVNodeHours) < 3 {
		t.Skip("catalog too small to exercise fold order")
	}
	first := m.Cost(c)
	for run := 0; run < 100; run++ {
		b := m.Cost(c)
		for _, v := range [][2]float64{
			{b.EC2, first.EC2}, {b.KV, first.KV}, {b.KVReplica, first.KVReplica},
		} {
			if math.Float64bits(v[0]) != math.Float64bits(v[1]) {
				t.Fatalf("Cost fold not deterministic: run %d got %x want %x", run, math.Float64bits(v[0]), math.Float64bits(v[1]))
			}
		}
	}
}

// TestFoldSortedOrder pins FoldSorted's contract: ascending key order,
// every entry exactly once.
func TestFoldSortedOrder(t *testing.T) {
	m := map[string]float64{"b": 2, "a": 1, "c": 3}
	var keys []string
	var sum float64
	FoldSorted(m, func(k string, v float64) {
		keys = append(keys, k)
		sum += v
	})
	if strings.Join(keys, "") != "abc" || sum != 6 {
		t.Fatalf("FoldSorted visited %v (sum %v), want a,b,c (6)", keys, sum)
	}
}
