// Package serve implements the FSD-Inference serving layer: a long-lived,
// multi-model Service endpoint over the simulated cloud. Where core.Infer
// is one-shot — one request owning the whole kernel run — a Service
// accepts asynchronous Submits and keeps many requests in flight inside a
// single simulated-time run, realising the upstream buffering the paper
// assumes for its sporadic workloads (§V-B2, §VI-C).
//
// Each named endpoint owns one model and a warm pool of deployment
// replicas. Requests pass through a per-endpoint admission queue where
// they are coalesced into batches — requests arriving within the
// coalescing window (or queued behind busy replicas) ride the same engine
// run, amortising launch and communication cost — then dispatch to a free
// replica. Cold and warm starts are metered by the FaaS platform exactly
// as for one-shot runs, so a sporadic day pays realistic cold-start
// latency while a bursty hour reuses warm instances.
package serve

import (
	"fmt"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/core"
	"fsdinference/internal/model"
	"fsdinference/internal/partition"
	"fsdinference/internal/sim"
	"fsdinference/internal/sparse"
)

// coalescePolicy bounds one endpoint's request coalescing: a batch closes
// when it holds maxBatch samples or when maxDelay has elapsed since its
// first request, whichever comes first. Requests are never split across
// engine runs, so a single request larger than maxBatch rides alone in an
// oversized run.
type coalescePolicy struct {
	maxBatch int
	maxDelay time.Duration
}

// endpointConfig accumulates per-endpoint options before deployment.
type endpointConfig struct {
	name     string
	m        *model.Model
	channel  core.ChannelKind
	chanSet  bool
	workers  int
	scheme   partition.Scheme
	seed     int64
	plan     *partition.Plan
	policy   *coalescePolicy
	replicas int
	mutate   func(*core.Config)
}

// serviceConfig accumulates Service options.
type serviceConfig struct {
	policy   coalescePolicy
	replicas int
	eps      []*endpointConfig
	err      error
}

// Option configures a Service.
type Option func(*serviceConfig)

// EndpointOption configures one endpoint.
type EndpointOption func(*endpointConfig)

// WithCoalescing sets the service-wide default coalescing policy: batches
// close at maxBatch buffered samples or after maxDelay from the first
// queued request. maxBatch <= 0 leaves batch size unbounded; maxDelay 0
// coalesces only requests arriving at the same instant.
func WithCoalescing(maxBatch int, maxDelay time.Duration) Option {
	return func(c *serviceConfig) { c.policy = coalescePolicy{maxBatch, maxDelay} }
}

// WithReplicas sets the service-wide default warm-pool size: how many
// deployment replicas each endpoint keeps, bounding its run concurrency.
func WithReplicas(n int) Option {
	return func(c *serviceConfig) { c.replicas = n }
}

// WithEndpoint registers a named model endpoint.
func WithEndpoint(name string, m *model.Model, opts ...EndpointOption) Option {
	return func(c *serviceConfig) {
		ec := &endpointConfig{name: name, m: m, scheme: partition.HGPDNN, seed: 1}
		for _, o := range opts {
			o(ec)
		}
		c.eps = append(c.eps, ec)
	}
}

// WithChannel selects the endpoint's communication variant (default:
// Serial for single-worker endpoints, Queue otherwise).
func WithChannel(k core.ChannelKind) EndpointOption {
	return func(ec *endpointConfig) { ec.channel = k; ec.chanSet = true }
}

// WithWorkers sets the endpoint's FaaS worker parallelism; a partition
// plan is built automatically when none is supplied.
func WithWorkers(p int) EndpointOption {
	return func(ec *endpointConfig) { ec.workers = p }
}

// WithScheme selects the partitioning scheme for auto-built plans
// (default HGPDNN).
func WithScheme(s partition.Scheme) EndpointOption {
	return func(ec *endpointConfig) { ec.scheme = s }
}

// WithPlan supplies a pre-built partition plan, overriding WithWorkers
// and WithScheme.
func WithPlan(p *partition.Plan) EndpointOption {
	return func(ec *endpointConfig) { ec.plan = p }
}

// WithEndpointCoalescing overrides the service-wide coalescing policy for
// this endpoint.
func WithEndpointCoalescing(maxBatch int, maxDelay time.Duration) EndpointOption {
	return func(ec *endpointConfig) { ec.policy = &coalescePolicy{maxBatch, maxDelay} }
}

// WithEndpointReplicas overrides the service-wide warm-pool size for this
// endpoint.
func WithEndpointReplicas(n int) EndpointOption {
	return func(ec *endpointConfig) { ec.replicas = n }
}

// WithDeployOverride mutates the endpoint's deployment configuration
// after defaults are applied (tuning knob for threads, polling, memory).
func WithDeployOverride(mutate func(*core.Config)) EndpointOption {
	return func(ec *endpointConfig) { ec.mutate = mutate }
}

// Service is a long-lived multi-model serving endpoint. All endpoints
// share one simulated environment (and its kernel), so overlapping
// requests to different endpoints — and queued requests to the same
// endpoint — progress concurrently in virtual time.
type Service struct {
	env       *env.Env
	eps       []*Endpoint
	byName    map[string]*Endpoint
	byNeurons map[int]*Endpoint
}

// Endpoint is one named model behind the Service.
type Endpoint struct {
	svc      *Service
	name     string
	m        *model.Model
	cfg      core.Config
	policy   coalescePolicy
	replicas []*replica
	free     []*replica // LIFO: most recently freed first, to prefer warm pools

	window        []*request // open coalescing batch
	windowSamples int
	windowTimer   *sim.Timer
	backlog       []*batch

	stats endpointStats
}

// replica is one deployment in an endpoint's warm pool. A replica serves
// one engine run at a time (the Queue channel shares per-worker queues
// across runs of a deployment, so runs on one replica never overlap).
type replica struct {
	d *core.Deployment
}

type request struct {
	h       *Handle
	input   *sparse.Dense
	arrived time.Duration
}

type batch struct {
	reqs    []*request
	samples int
}

// endpointStats counts run-level activity. Request-level metrics live on
// the handles. Snapshot/sub pairs isolate one replay's window.
type endpointStats struct {
	Runs        int
	FailedRuns  int
	RunSamples  int
	RunRequests int
	MaxSamples  int
	ColdStarts  int
	WarmStarts  int
	Cost        usage.Breakdown
}

func (s endpointStats) sub(prev endpointStats) endpointStats {
	s.Runs -= prev.Runs
	s.FailedRuns -= prev.FailedRuns
	s.RunSamples -= prev.RunSamples
	s.RunRequests -= prev.RunRequests
	s.ColdStarts -= prev.ColdStarts
	s.WarmStarts -= prev.WarmStarts
	s.Cost.Lambda -= prev.Cost.Lambda
	s.Cost.SNS -= prev.Cost.SNS
	s.Cost.SQS -= prev.Cost.SQS
	s.Cost.S3 -= prev.Cost.S3
	s.Cost.EC2 -= prev.Cost.EC2
	return s
}

// NewService validates the options, builds partition plans and deploys
// every endpoint's replica pool onto the shared environment.
func NewService(e *env.Env, opts ...Option) (*Service, error) {
	cfg := &serviceConfig{
		policy:   coalescePolicy{maxBatch: 512},
		replicas: 1,
	}
	for _, o := range opts {
		o(cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	if len(cfg.eps) == 0 {
		return nil, fmt.Errorf("serve: a service needs at least one endpoint")
	}
	if cfg.replicas <= 0 {
		return nil, fmt.Errorf("serve: replicas must be positive, got %d", cfg.replicas)
	}
	s := &Service{
		env:       e,
		byName:    make(map[string]*Endpoint),
		byNeurons: make(map[int]*Endpoint),
	}
	for _, ec := range cfg.eps {
		ep, err := s.buildEndpoint(ec, cfg)
		if err != nil {
			return nil, err
		}
		s.eps = append(s.eps, ep)
		s.byName[ep.name] = ep
		if _, ok := s.byNeurons[ep.m.Spec.Neurons]; !ok {
			s.byNeurons[ep.m.Spec.Neurons] = ep
		}
	}
	return s, nil
}

func (s *Service) buildEndpoint(ec *endpointConfig, cfg *serviceConfig) (*Endpoint, error) {
	if ec.name == "" {
		return nil, fmt.Errorf("serve: endpoint name required")
	}
	if _, dup := s.byName[ec.name]; dup {
		return nil, fmt.Errorf("serve: duplicate endpoint %q", ec.name)
	}
	if ec.m == nil {
		return nil, fmt.Errorf("serve: endpoint %q has no model", ec.name)
	}
	workers := ec.workers
	if ec.plan != nil {
		workers = ec.plan.Workers
	}
	channel := ec.channel
	if !ec.chanSet {
		channel = core.Serial
		if workers > 1 {
			channel = core.Queue
		}
	}
	if channel != core.Serial && workers <= 1 {
		return nil, fmt.Errorf("serve: endpoint %q: %v needs at least 2 workers", ec.name, channel)
	}
	plan := ec.plan
	if channel != core.Serial && plan == nil {
		var err error
		plan, err = partition.BuildPlan(ec.m, workers, ec.scheme, partition.Options{Seed: ec.seed})
		if err != nil {
			return nil, fmt.Errorf("serve: endpoint %q: %w", ec.name, err)
		}
	}
	dcfg := core.Config{
		Model:    ec.m,
		Plan:     plan,
		Channel:  channel,
		PollWait: 2 * time.Second,
	}
	if ec.mutate != nil {
		ec.mutate(&dcfg)
	}
	policy := cfg.policy
	if ec.policy != nil {
		policy = *ec.policy
	}
	if policy.maxBatch < 0 || policy.maxDelay < 0 {
		return nil, fmt.Errorf("serve: endpoint %q: negative coalescing policy", ec.name)
	}
	replicas := cfg.replicas
	if ec.replicas != 0 {
		replicas = ec.replicas
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("serve: endpoint %q: replicas must be positive, got %d", ec.name, ec.replicas)
	}
	ep := &Endpoint{svc: s, name: ec.name, m: ec.m, policy: policy}
	for i := 0; i < replicas; i++ {
		d, err := core.Deploy(s.env, dcfg)
		if err != nil {
			return nil, fmt.Errorf("serve: endpoint %q replica %d: %w", ec.name, i, err)
		}
		ep.cfg = d.Cfg // defaults applied
		rep := &replica{d: d}
		ep.replicas = append(ep.replicas, rep)
		ep.free = append(ep.free, rep)
	}
	return ep, nil
}

// Env returns the shared simulated environment.
func (s *Service) Env() *env.Env { return s.env }

// Endpoints returns the registered endpoint names in registration order.
func (s *Service) Endpoints() []string {
	names := make([]string, len(s.eps))
	for i, ep := range s.eps {
		names[i] = ep.name
	}
	return names
}

// Now returns the current virtual time of the shared kernel.
func (s *Service) Now() time.Duration { return s.env.K.Now() }

// Submit enqueues one asynchronous request: input arrives at the named
// endpoint at virtual time at (clamped to now if already past). The
// returned handle resolves once the simulation has been driven past the
// request's completion — via Run, Replay, or the handle's own Wait.
func (s *Service) Submit(name string, input *sparse.Dense, at time.Duration) *Handle {
	h := &Handle{svc: s, endpoint: name}
	ep := s.byName[name]
	if ep == nil {
		h.fail(s.Now(), fmt.Errorf("serve: unknown endpoint %q", name))
		return h
	}
	if input == nil || input.Cols == 0 {
		h.fail(s.Now(), fmt.Errorf("serve: endpoint %q: empty input", name))
		return h
	}
	if input.Rows != ep.m.Spec.Neurons {
		h.fail(s.Now(), fmt.Errorf("serve: endpoint %q: input has %d rows, model expects %d",
			name, input.Rows, ep.m.Spec.Neurons))
		return h
	}
	delay := at - s.Now()
	s.env.K.At(delay, func() {
		ep.admit(&request{h: h, input: input, arrived: s.Now()})
	})
	return h
}

// Run drives the shared simulation until every submitted request has
// drained. It may be called repeatedly; submissions made after a Run are
// served by the next one.
func (s *Service) Run() error {
	if err := s.env.K.Run(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// admit adds a request to the endpoint's open coalescing batch, arming
// the flush trigger on the first request and force-flushing when the
// batch reaches the sample bound.
func (ep *Endpoint) admit(r *request) {
	ep.window = append(ep.window, r)
	ep.windowSamples += r.input.Cols
	if ep.policy.maxBatch > 0 && ep.windowSamples >= ep.policy.maxBatch {
		ep.flush()
		return
	}
	if len(ep.window) == 1 {
		if ep.policy.maxDelay > 0 {
			ep.windowTimer = ep.svc.env.K.After(ep.policy.maxDelay, ep.flush)
		} else {
			// Zero-delay coalescing still merges everything arriving at
			// this same virtual instant: the flush event is scheduled
			// behind all already-queued admissions.
			ep.svc.env.K.At(0, ep.flush)
		}
	}
}

// flush closes the open coalescing batch, splits it into engine-run
// batches of at most maxBatch samples (splitting only between requests:
// an oversized request forms its own larger batch) and dispatches to
// free replicas.
func (ep *Endpoint) flush() {
	if len(ep.window) == 0 {
		return
	}
	if ep.windowTimer != nil {
		ep.windowTimer.Stop()
		ep.windowTimer = nil
	}
	var cur *batch
	for _, r := range ep.window {
		if cur != nil && ep.policy.maxBatch > 0 && cur.samples+r.input.Cols > ep.policy.maxBatch {
			ep.backlog = append(ep.backlog, cur)
			cur = nil
		}
		if cur == nil {
			cur = &batch{}
		}
		cur.reqs = append(cur.reqs, r)
		cur.samples += r.input.Cols
	}
	if cur != nil {
		ep.backlog = append(ep.backlog, cur)
	}
	ep.window = nil
	ep.windowSamples = 0
	ep.dispatch()
}

// dispatch starts backlogged batches on free replicas, most recently
// freed first so warm instance pools are reused before cold ones.
func (ep *Endpoint) dispatch() {
	for len(ep.backlog) > 0 && len(ep.free) > 0 {
		b := ep.backlog[0]
		ep.backlog = ep.backlog[1:]
		rep := ep.free[len(ep.free)-1]
		ep.free = ep.free[:len(ep.free)-1]
		ep.startRun(rep, b)
	}
}

// startRun merges the batch's inputs and begins one engine run on the
// replica; completion redistributes results to the batch's handles.
func (ep *Endpoint) startRun(rep *replica, b *batch) {
	input := mergeInputs(ep.m.Spec.Neurons, b)
	_, err := rep.d.Start(input, func(res *core.Result, err error) {
		ep.finishRun(rep, b, res, err)
	})
	if err != nil {
		ep.free = append(ep.free, rep)
		now := ep.svc.Now()
		for _, r := range b.reqs {
			r.h.fail(now, err)
		}
		ep.stats.FailedRuns++
		ep.dispatch()
	}
}

// finishRun runs in simulation context when a replica's engine run
// completes: it frees the replica, splits the output columns back to the
// coalesced requests and dispatches any backlog.
func (ep *Endpoint) finishRun(rep *replica, b *batch, res *core.Result, err error) {
	ep.free = append(ep.free, rep)
	now := ep.svc.Now()
	if err != nil {
		ep.stats.FailedRuns++
		for _, r := range b.reqs {
			r.h.fail(now, err)
		}
		ep.dispatch()
		return
	}
	ep.stats.Runs++
	ep.stats.RunSamples += b.samples
	ep.stats.RunRequests += len(b.reqs)
	if b.samples > ep.stats.MaxSamples {
		ep.stats.MaxSamples = b.samples
	}
	ep.stats.Cost.Lambda += res.Cost.Lambda
	ep.stats.Cost.SNS += res.Cost.SNS
	ep.stats.Cost.SQS += res.Cost.SQS
	ep.stats.Cost.S3 += res.Cost.S3
	ep.stats.Cost.EC2 += res.Cost.EC2
	for _, w := range res.Workers {
		if w.Warm {
			ep.stats.WarmStarts++
		} else {
			ep.stats.ColdStarts++
		}
	}
	off := 0
	for _, r := range b.reqs {
		cols := r.input.Cols
		r.h.complete(now, &Response{
			Endpoint:      ep.name,
			RunID:         res.RunID,
			Output:        sliceCols(res.Output, off, cols),
			Latency:       now - r.arrived,
			RunLatency:    res.Latency,
			BatchSamples:  b.samples,
			BatchRequests: len(b.reqs),
			CostShare:     res.Cost.Total() * float64(cols) / float64(res.Batch),
		})
		off += cols
	}
	ep.dispatch()
}

// mergeInputs concatenates the batch's activation matrices column-wise
// into one engine input, in admission order.
func mergeInputs(neurons int, b *batch) *sparse.Dense {
	if len(b.reqs) == 1 {
		return b.reqs[0].input
	}
	out := sparse.NewDense(neurons, b.samples)
	off := 0
	for _, r := range b.reqs {
		for row := 0; row < neurons; row++ {
			copy(out.Row(row)[off:off+r.input.Cols], r.input.Row(row))
		}
		off += r.input.Cols
	}
	return out
}

// sliceCols copies columns [off, off+cols) of src into a fresh matrix.
func sliceCols(src *sparse.Dense, off, cols int) *sparse.Dense {
	if off == 0 && cols == src.Cols {
		return src
	}
	out := sparse.NewDense(src.Rows, cols)
	for row := 0; row < src.Rows; row++ {
		copy(out.Row(row), src.Row(row)[off:off+cols])
	}
	return out
}

// Handle is the pending result of one Submit.
type Handle struct {
	svc      *Service
	endpoint string
	done     bool
	resp     *Response
	err      error
	finished time.Duration
}

// Response is one request's resolved result.
type Response struct {
	// Endpoint and RunID identify where and in which engine run the
	// request was served.
	Endpoint string
	RunID    string
	// Output is this request's slice of the activation output.
	Output *sparse.Dense
	// Latency is arrival to result availability, including coalescing
	// wait and admission queueing.
	Latency time.Duration
	// RunLatency is the underlying engine run's latency.
	RunLatency time.Duration
	// BatchSamples and BatchRequests describe the coalesced engine run
	// this request rode in.
	BatchSamples  int
	BatchRequests int
	// CostShare is the request's per-sample share of the run's
	// ledger-reconstructed cost.
	CostShare float64
}

// Done reports whether the request has resolved.
func (h *Handle) Done() bool { return h.done }

// Err returns the request's error, if resolved and failed.
func (h *Handle) Err() error { return h.err }

// Wait drives the simulation until the request resolves and returns its
// response. Any number of handles may be waited in any order; the first
// Wait drains every in-flight request in one simulated-time run.
func (h *Handle) Wait() (*Response, error) {
	if !h.done {
		if err := h.svc.Run(); err != nil && !h.done {
			return nil, err
		}
	}
	if !h.done {
		return nil, fmt.Errorf("serve: request to %q did not complete", h.endpoint)
	}
	return h.resp, h.err
}

func (h *Handle) complete(now time.Duration, resp *Response) {
	if h.done {
		return
	}
	h.done = true
	h.resp = resp
	h.finished = now
}

func (h *Handle) fail(now time.Duration, err error) {
	if h.done {
		return
	}
	h.done = true
	h.err = err
	h.finished = now
}
