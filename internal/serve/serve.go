// Package serve implements the FSD-Inference serving layer: a long-lived,
// multi-model Service endpoint over the simulated cloud. Where core.Infer
// is one-shot — one request owning the whole kernel run — a Service
// accepts asynchronous Submits and keeps many requests in flight inside a
// single simulated-time run, realising the upstream buffering the paper
// assumes for its sporadic workloads (§V-B2, §VI-C).
//
// Each named endpoint owns one model and a replica pool of deployments
// managed by a policy-driven scheduler (scheduler.go, policy.go). Requests
// pass through a per-endpoint coalescing window into an admission queue
// ordered by a pluggable admission policy — FIFO, priority, or
// deadline-aware with shedding/rerouting — and dispatch to replicas with
// spare run capacity; since Queue-channel consumption is partitioned by
// run id in core, one replica can overlap runs on any channel. A pluggable
// scaling policy sizes the pool: fixed (WithReplicas) or an autoscaler
// growing and shrinking with queue depth and arrival rate, metering every
// scale event and replica-hour. Cold and warm starts are metered by the
// FaaS platform exactly as for one-shot runs, so a sporadic day pays
// realistic cold-start latency while a bursty hour reuses warm instances.
package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/core"
	"fsdinference/internal/model"
	"fsdinference/internal/obs"
	"fsdinference/internal/obs/monitor"
	"fsdinference/internal/partition"
	"fsdinference/internal/plan"
	"fsdinference/internal/sparse"
)

// coalescePolicy bounds one endpoint's request coalescing: a batch closes
// when it holds maxBatch samples or when maxDelay has elapsed since its
// first request, whichever comes first. Requests are never split across
// engine runs, so a single request larger than maxBatch rides alone in an
// oversized run.
type coalescePolicy struct {
	maxBatch int
	maxDelay time.Duration
}

// endpointConfig accumulates per-endpoint options before deployment.
type endpointConfig struct {
	name      string
	m         *model.Model
	channel   core.ChannelKind
	chanSet   bool
	workers   int
	scheme    partition.Scheme
	seed      int64
	plan      *partition.Plan
	policy    *coalescePolicy
	replicas  int
	admission AdmissionPolicy
	scaling   ScalingPolicy
	runConc   int
	slo       *SLOOptions
	mutate    func(*core.Config)
}

// serviceConfig accumulates Service options.
type serviceConfig struct {
	policy     coalescePolicy
	replicas   int
	admission  AdmissionPolicy
	scaling    ScalingPolicy
	runConc    int
	tracing    bool
	traceEvery int
	monitoring bool
	monSpec    monitor.Spec
	eps        []*endpointConfig
	err        error
}

// Option configures a Service.
type Option func(*serviceConfig)

// EndpointOption configures one endpoint.
type EndpointOption func(*endpointConfig)

// WithCoalescing sets the service-wide default coalescing policy: batches
// close at maxBatch buffered samples or after maxDelay from the first
// queued request. maxBatch <= 0 leaves batch size unbounded; maxDelay 0
// coalesces only requests arriving at the same instant.
func WithCoalescing(maxBatch int, maxDelay time.Duration) Option {
	return func(c *serviceConfig) { c.policy = coalescePolicy{maxBatch, maxDelay} }
}

// WithReplicas sets the service-wide default warm-pool size: how many
// deployment replicas each endpoint keeps. It is shorthand for
// WithScaling(FixedPool(n)) — whichever of the two appears later wins.
func WithReplicas(n int) Option {
	return func(c *serviceConfig) {
		c.replicas = n
		if n > 0 {
			c.scaling = FixedPool(n)
		}
	}
}

// WithAdmission sets the service-wide default admission policy (default
// FIFO()).
func WithAdmission(p AdmissionPolicy) Option {
	return func(c *serviceConfig) { c.admission = p }
}

// WithScaling sets the service-wide default scaling policy (default
// FixedPool of the WithReplicas size).
func WithScaling(p ScalingPolicy) Option {
	return func(c *serviceConfig) { c.scaling = p }
}

// WithRunConcurrency sets the service-wide default number of engine runs
// one replica may have in flight at once (default 1). Values above 1
// exploit the core engine's run-multiplexed channels: concurrent runs of
// one deployment are isolated per run id on every channel.
func WithRunConcurrency(n int) Option {
	return func(c *serviceConfig) { c.runConc = n }
}

// WithTracing enables the service's simulated-time tracer and metrics
// registry (internal/obs), sampling one in sampleEvery requests
// (sampleEvery <= 1 traces every request). Sampling is keyed on the
// request's position in the replayed trace, so the same workload at the
// same rate selects the same requests — and exports byte-identical
// Chrome traces — whether it replays on one shared kernel, sharded
// across lanes, or streamed. The option carries configuration rather
// than a tracer instance: each replay lane builds a tracer bound to its
// own kernel clock and the lanes merge afterwards.
func WithTracing(sampleEvery int) Option {
	return func(c *serviceConfig) { c.tracing = true; c.traceEvery = sampleEvery }
}

// WithMonitor enables the simulated-time SLO monitor (internal/obs/
// monitor): the metrics registry is turned on (tracing stays off unless
// WithTracing is also applied), every endpoint's instruments are
// registered as a scrape target, and replays drive the scrape loop as
// kernel events. Unless spec.Passive is set, a firing page-severity
// burn-rate alert also closes the control loop — an SLO endpoint
// re-plans immediately instead of waiting for the break-even drift
// trigger, and a fixed endpoint gets an emergency replica. Like
// WithTracing, the option carries configuration: each replay lane builds
// a monitor bound to its own kernel and the lanes merge afterwards.
func WithMonitor(spec monitor.Spec) Option {
	return func(c *serviceConfig) { c.monitoring = true; c.monSpec = spec }
}

// WithEndpoint registers a named model endpoint.
func WithEndpoint(name string, m *model.Model, opts ...EndpointOption) Option {
	return func(c *serviceConfig) {
		ec := &endpointConfig{name: name, m: m, scheme: partition.HGPDNN, seed: 1}
		for _, o := range opts {
			o(ec)
		}
		c.eps = append(c.eps, ec)
	}
}

// WithChannel selects the endpoint's communication variant (default:
// Serial for single-worker endpoints, Queue otherwise).
func WithChannel(k core.ChannelKind) EndpointOption {
	return func(ec *endpointConfig) { ec.channel = k; ec.chanSet = true }
}

// WithWorkers sets the endpoint's FaaS worker parallelism; a partition
// plan is built automatically when none is supplied.
func WithWorkers(p int) EndpointOption {
	return func(ec *endpointConfig) { ec.workers = p }
}

// WithScheme selects the partitioning scheme for auto-built plans
// (default HGPDNN).
func WithScheme(s partition.Scheme) EndpointOption {
	return func(ec *endpointConfig) { ec.scheme = s }
}

// WithPlan supplies a pre-built partition plan, overriding WithWorkers
// and WithScheme.
func WithPlan(p *partition.Plan) EndpointOption {
	return func(ec *endpointConfig) { ec.plan = p }
}

// WithEndpointCoalescing overrides the service-wide coalescing policy for
// this endpoint.
func WithEndpointCoalescing(maxBatch int, maxDelay time.Duration) EndpointOption {
	return func(ec *endpointConfig) { ec.policy = &coalescePolicy{maxBatch, maxDelay} }
}

// WithEndpointReplicas overrides the service-wide warm-pool size for this
// endpoint (shorthand for WithEndpointScaling(FixedPool(n)) — whichever
// of the two appears later wins).
func WithEndpointReplicas(n int) EndpointOption {
	return func(ec *endpointConfig) {
		ec.replicas = n
		if n > 0 {
			ec.scaling = FixedPool(n)
		}
	}
}

// WithEndpointAdmission overrides the admission policy for this endpoint.
func WithEndpointAdmission(p AdmissionPolicy) EndpointOption {
	return func(ec *endpointConfig) { ec.admission = p }
}

// WithEndpointScaling overrides the scaling policy for this endpoint.
func WithEndpointScaling(p ScalingPolicy) EndpointOption {
	return func(ec *endpointConfig) { ec.scaling = p }
}

// WithEndpointRunConcurrency overrides the per-replica run concurrency for
// this endpoint.
func WithEndpointRunConcurrency(n int) EndpointOption {
	return func(ec *endpointConfig) { ec.runConc = n }
}

// WithSLO lets the endpoint pick its own channel and worker parallelism at
// deploy time via the workload-aware Planner (internal/plan), given
// latency/cost priorities, and re-plan when the observed workload drifts:
// run batch width by ReselectFactor, or the arrival rate across the
// memory channel's break-even volume (SLOOptions). It conflicts with
// WithChannel, WithWorkers and WithPlan.
func WithSLO(o SLOOptions) EndpointOption {
	return func(ec *endpointConfig) { ec.slo = &o }
}

// WithDeployOverride mutates the endpoint's deployment configuration
// after defaults are applied (tuning knob for threads, polling, memory).
// Under WithSLO it is re-applied to every re-selected configuration.
func WithDeployOverride(mutate func(*core.Config)) EndpointOption {
	return func(ec *endpointConfig) { ec.mutate = mutate }
}

// Service is a long-lived multi-model serving endpoint. All endpoints
// share one simulated environment (and its kernel), so overlapping
// requests to different endpoints — and queued requests to the same
// endpoint — progress concurrently in virtual time.
type Service struct {
	env *env.Env
	// opts retains the applied options so replay lanes can rebuild
	// filtered clones of the service on fresh environments (lanes.go).
	opts   []Option
	eps    []*Endpoint
	byName map[string]*Endpoint
	// byNeuronsAll maps model size to its endpoints in registration
	// order; the first entry is the default route, later ones are
	// reroute siblings.
	byNeuronsAll map[int][]*Endpoint
	// pending holds every submitted handle that has not resolved, so a
	// failed kernel run can surface its error on all of them.
	pending map[*Handle]struct{}

	// trace is nil unless WithTracing was applied; metrics is nil unless
	// WithTracing or WithMonitor was; mon is nil unless WithMonitor was.
	// Every hot path guards on the nil, which is the whole cost of the
	// observability-off mode.
	trace   *obs.Tracer
	metrics *obs.Registry
	mon     *monitor.Monitor
	// submitSeq numbers interactive Submits for sampling. Replay paths
	// bypass it and sample on the query's trace index instead, which is
	// what makes lane-vs-single traces identical.
	submitSeq int
}

// Endpoint is one named model behind the Service. Its scheduling — window,
// admission queue, replica pool — lives in sched.
type Endpoint struct {
	svc  *Service
	name string
	m    *model.Model
	// dcfg is the deployment template replicas are created from; cfg is
	// the defaults-applied configuration of the latest deployment.
	dcfg   core.Config
	cfg    core.Config
	mutate func(*core.Config)
	sched  *scheduler
	slo    *sloState

	// replicaSeq numbers every replica this endpoint ever deploys, so a
	// traced replica's track name is stable across replay modes (pool
	// position is not: replaced replicas reuse slots).
	replicaSeq int
	// met caches the endpoint's registry instruments; nil when metrics
	// are off.
	met *epMetrics

	stats endpointStats
}

// sloState tracks an SLO-configured endpoint's observed workload for
// drift-triggered re-planning. The planner caches its trial measurements,
// so a re-plan under an unchanged batch width re-scores rather than
// re-simulates.
type sloState struct {
	opts       SLOOptions
	planner    *plan.Planner
	decision   *plan.Decision
	probeBatch float64
	ewmaBatch  float64
	runs       int
}

type request struct {
	h        *Handle
	input    *sparse.Dense
	arrived  time.Duration
	seq      int
	priority int
	deadline time.Duration // absolute virtual time; 0 = none
	samples  int
	rerouted bool
	// span is the request's trace span (zero when unsampled); phase is
	// the currently open serving stage within it (coalesce, queue).
	span  obs.SpanRef
	phase obs.SpanRef
}

func (r *request) info() RequestInfo {
	return RequestInfo{
		Seq:      r.seq,
		Arrived:  r.arrived,
		Priority: r.priority,
		Deadline: r.deadline,
		Samples:  r.samples,
	}
}

type batch struct {
	reqs    []*request
	samples int
}

// endpointStats counts run- and scheduler-level activity. Request-level
// metrics live on the handles. Snapshot/sub pairs isolate one replay's
// window; the high-water fields (MaxSamples, MaxConcurrent, PeakReplicas)
// are restarted instead of subtracted.
type endpointStats struct {
	Runs        int
	FailedRuns  int
	RunSamples  int
	RunRequests int
	MaxSamples  int
	ColdStarts  int
	WarmStarts  int
	Cost        usage.Breakdown

	Shed           int
	Rerouted       int
	DeadlineMissed int
	ScaleUps       int
	ScaleDowns     int
	Reselections   int
	MaxConcurrent  int
	PeakReplicas   int
	ReplicaSeconds float64
	// Replans records every SLO-driven configuration change in order;
	// Reselections also counts planner re-runs that kept the
	// configuration.
	Replans []ReplanEvent
}

func (s endpointStats) sub(prev endpointStats) endpointStats {
	s.Runs -= prev.Runs
	s.FailedRuns -= prev.FailedRuns
	s.RunSamples -= prev.RunSamples
	s.RunRequests -= prev.RunRequests
	s.ColdStarts -= prev.ColdStarts
	s.WarmStarts -= prev.WarmStarts
	s.Shed -= prev.Shed
	s.Rerouted -= prev.Rerouted
	s.DeadlineMissed -= prev.DeadlineMissed
	s.ScaleUps -= prev.ScaleUps
	s.ScaleDowns -= prev.ScaleDowns
	s.Reselections -= prev.Reselections
	s.ReplicaSeconds -= prev.ReplicaSeconds
	s.Replans = s.Replans[len(prev.Replans):]
	s.Cost.Lambda -= prev.Cost.Lambda
	s.Cost.SNS -= prev.Cost.SNS
	s.Cost.SQS -= prev.Cost.SQS
	s.Cost.S3 -= prev.Cost.S3
	s.Cost.EC2 -= prev.Cost.EC2
	s.Cost.KV -= prev.Cost.KV
	s.Cost.KVReplica -= prev.Cost.KVReplica
	return s
}

// NewService validates the options, builds partition plans and deploys
// every endpoint's replica pool onto the shared environment.
func NewService(e *env.Env, opts ...Option) (*Service, error) {
	return newService(e, nil, opts...)
}

// newService is NewService with an optional endpoint filter: when keep is
// non-nil, endpoints it rejects are dropped before deployment. Replay lanes
// use this to rebuild a subset of the service on a fresh environment
// without paying for (or metering) the endpoints the lane does not serve.
func newService(e *env.Env, keep func(name string) bool, opts ...Option) (*Service, error) {
	cfg := &serviceConfig{
		policy:   coalescePolicy{maxBatch: 512},
		replicas: 1,
		runConc:  1,
	}
	for _, o := range opts {
		o(cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	if keep != nil {
		kept := cfg.eps[:0]
		for _, ec := range cfg.eps {
			if keep(ec.name) {
				kept = append(kept, ec)
			}
		}
		cfg.eps = kept
	}
	if len(cfg.eps) == 0 {
		return nil, fmt.Errorf("serve: a service needs at least one endpoint")
	}
	if cfg.replicas <= 0 {
		return nil, fmt.Errorf("serve: replicas must be positive, got %d", cfg.replicas)
	}
	if cfg.runConc <= 0 {
		return nil, fmt.Errorf("serve: run concurrency must be positive, got %d", cfg.runConc)
	}
	s := &Service{
		env:          e,
		opts:         opts,
		byName:       make(map[string]*Endpoint),
		byNeuronsAll: make(map[int][]*Endpoint),
		pending:      make(map[*Handle]struct{}),
	}
	if cfg.tracing {
		// Built before the endpoints so initial replica deployments are
		// traced too. The tracer reads this environment's kernel clock,
		// so each lane clone gets one bound to its own kernel.
		s.trace = obs.New(e.K.Clock(), cfg.traceEvery)
	}
	if cfg.tracing || cfg.monitoring {
		s.metrics = obs.NewRegistry()
	}
	if cfg.monitoring {
		// The monitor scrapes on this environment's kernel, so each lane
		// clone gets one bound to its own kernel; the chain stays alive
		// only while requests are in flight, which is what lets the
		// kernel drain.
		mon, err := monitor.New(cfg.monSpec, e.K.Clock(),
			func(d time.Duration, fn func()) { e.K.At(d, fn) },
			func() bool { return len(s.pending) > 0 })
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.mon = mon
	}
	for _, ec := range cfg.eps {
		ep, err := s.buildEndpoint(ec, cfg)
		if err != nil {
			return nil, err
		}
		s.eps = append(s.eps, ep)
		s.byName[ep.name] = ep
		s.byNeuronsAll[ep.m.Spec.Neurons] = append(s.byNeuronsAll[ep.m.Spec.Neurons], ep)
	}
	if s.mon != nil {
		for _, ep := range s.eps {
			s.mon.Register(ep.met.target())
		}
		if !cfg.monSpec.Passive {
			s.mon.Subscribe(s.onAlert)
		}
	}
	return s, nil
}

// onAlert closes the monitor→control loop: a page-severity burn-rate
// alert starting to fire triggers an immediate, alert-driven re-plan on
// an SLO endpoint (bypassing the MinRuns drift gate) or an emergency
// replica on a fixed one. It runs inside the scrape's kernel event, so
// the action lands at the same simulated instant in every replay mode.
func (s *Service) onAlert(ev monitor.AlertEvent) {
	if !ev.Firing || ev.Severity != monitor.Page {
		return
	}
	if ep := s.byName[ev.Endpoint]; ep != nil {
		ep.alertReplan(ev)
	}
}

func (s *Service) buildEndpoint(ec *endpointConfig, cfg *serviceConfig) (*Endpoint, error) {
	if ec.name == "" {
		return nil, fmt.Errorf("serve: endpoint name required")
	}
	if _, dup := s.byName[ec.name]; dup {
		return nil, fmt.Errorf("serve: duplicate endpoint %q", ec.name)
	}
	if ec.m == nil {
		return nil, fmt.Errorf("serve: endpoint %q has no model", ec.name)
	}
	ep := &Endpoint{svc: s, name: ec.name, m: ec.m, mutate: ec.mutate}
	if ec.slo != nil {
		if ec.chanSet || ec.workers > 0 || ec.plan != nil {
			return nil, fmt.Errorf("serve: endpoint %q: WithSLO conflicts with WithChannel/WithWorkers/WithPlan", ec.name)
		}
		slo := ec.slo.withDefaults()
		obj := slo.Objective
		if obj == nil {
			obj = plan.WeightedObjective(slo.LatencyWeight)
		}
		// The pre-filter stays off so the initial pick matches the legacy
		// AutoSelect exactly; re-plans re-score cached trials anyway.
		planner, err := plan.New(ec.m, plan.Options{
			Objective:        obj,
			Grid:             plan.Grid{Channels: slo.Channels, Workers: slo.Workers},
			DisablePrefilter: true,
			Seed:             slo.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: endpoint %q: %w", ec.name, err)
		}
		ep.slo = &sloState{opts: slo, planner: planner, probeBatch: float64(slo.ProbeBatch)}
		dcfg, err := ep.selectConfig(plan.WorkloadProfile{BatchSamples: slo.ProbeBatch})
		if err != nil {
			return nil, fmt.Errorf("serve: endpoint %q: %w", ec.name, err)
		}
		ep.dcfg = dcfg
	} else {
		workers := ec.workers
		if ec.plan != nil {
			workers = ec.plan.Workers
		}
		channel := ec.channel
		if !ec.chanSet {
			channel = core.Serial
			if workers > 1 {
				channel = core.Queue
			}
		}
		if channel != core.Serial && workers <= 1 {
			return nil, fmt.Errorf("serve: endpoint %q: %v needs at least 2 workers", ec.name, channel)
		}
		plan := ec.plan
		if channel != core.Serial && plan == nil {
			var err error
			plan, err = partition.BuildPlan(ec.m, workers, ec.scheme, partition.Options{Seed: ec.seed})
			if err != nil {
				return nil, fmt.Errorf("serve: endpoint %q: %w", ec.name, err)
			}
		}
		ep.dcfg = core.Config{
			Model:    ec.m,
			Plan:     plan,
			Channel:  channel,
			PollWait: 2 * time.Second,
		}
		if ec.mutate != nil {
			ec.mutate(&ep.dcfg)
		}
	}

	policy := cfg.policy
	if ec.policy != nil {
		policy = *ec.policy
	}
	if policy.maxBatch < 0 || policy.maxDelay < 0 {
		return nil, fmt.Errorf("serve: endpoint %q: negative coalescing policy", ec.name)
	}
	admission := cfg.admission
	if ec.admission != nil {
		admission = ec.admission
	}
	if admission == nil {
		admission = FIFO()
	}
	replicas := cfg.replicas
	if ec.replicas != 0 {
		replicas = ec.replicas
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("serve: endpoint %q: replicas must be positive, got %d", ec.name, ec.replicas)
	}
	scaling := cfg.scaling
	if ec.scaling != nil {
		scaling = ec.scaling
	}
	if scaling == nil {
		scaling = FixedPool(replicas)
	}
	runConc := cfg.runConc
	if ec.runConc != 0 {
		runConc = ec.runConc
	}
	if runConc <= 0 {
		return nil, fmt.Errorf("serve: endpoint %q: run concurrency must be positive, got %d", ec.name, ec.runConc)
	}

	ep.sched = newScheduler(ep, policy, admission, scaling, runConc)
	if s.metrics != nil {
		ep.met = newEpMetrics(s.metrics, ep.name)
	}
	initial := scaling.Target(PoolState{RunCapacity: runConc})
	if initial < 1 {
		initial = 1
	}
	for i := 0; i < initial; i++ {
		rep, err := ep.deployReplica()
		if err != nil {
			return nil, fmt.Errorf("serve: endpoint %q replica %d: %w", ec.name, i, err)
		}
		ep.sched.pool = append(ep.sched.pool, rep)
	}
	ep.stats.PeakReplicas = len(ep.sched.pool)
	ep.met.setPoolSize(len(ep.sched.pool))
	return ep, nil
}

// deployReplica deploys one replica from the endpoint's current template.
// With tracing on, the deployment's trace scope is stamped with a
// replay-mode-independent track — the endpoint name plus a per-endpoint
// replica ordinal — so engine-side spans land on the same timeline
// whether the endpoint runs on the shared kernel or inside a lane.
func (ep *Endpoint) deployReplica() (*replica, error) {
	dcfg := ep.dcfg
	var track string
	if t := ep.svc.trace; t != nil {
		track = fmt.Sprintf("%s/r%d", ep.name, ep.replicaSeq)
		dcfg.Trace = obs.Scope{T: t, Track: track}
	}
	if m := ep.met; m != nil {
		// Thread the endpoint's KV instruments down to the deployment's
		// kvclusters so shard failovers land in the scrapeable registry.
		dcfg.KVFailoverCounter = m.kvFailovers
		dcfg.KVLostValuesCounter = m.kvLostValues
	}
	ep.replicaSeq++
	d, err := core.Deploy(ep.svc.env, dcfg)
	if err != nil {
		return nil, err
	}
	ep.cfg = d.Cfg // defaults applied
	return &replica{d: d, track: track}, nil
}

// selectConfig plans (or re-plans) the endpoint's configuration for a
// workload profile and returns the chosen deployment template.
func (ep *Endpoint) selectConfig(profile plan.WorkloadProfile) (core.Config, error) {
	st := ep.slo
	var d *plan.Decision
	var err error
	if st.decision == nil {
		d, err = st.planner.Plan(profile)
	} else {
		d, err = st.planner.Replan(profile)
	}
	if err != nil {
		return core.Config{}, err
	}
	st.decision = d
	dcfg := d.Config
	if ep.mutate != nil {
		ep.mutate(&dcfg)
	}
	return dcfg, nil
}

// observeRun feeds one completed run's batch width to the SLO machinery.
// Two drifts trigger a re-plan: the batch-width EWMA moving from the
// probe assumption by ReselectFactor, and the observed arrival rate
// crossing the memory channel's break-even daily volume — the signal that
// flips the provisioned-versus-per-request economics. A re-plan feeds the
// scheduler's live WorkloadProfile into Planner.Replan, so the decision
// finally accounts for provisioned idle billing, and replaces replicas
// (lazily, as they go idle) when the configuration changes.
func (ep *Endpoint) observeRun(samples int) {
	st := ep.slo
	if st == nil {
		return
	}
	if st.ewmaBatch == 0 {
		st.ewmaBatch = float64(samples)
	} else {
		st.ewmaBatch = 0.75*st.ewmaBatch + 0.25*float64(samples)
	}
	st.runs++
	if st.runs < st.opts.MinRuns {
		return
	}
	var reason string
	if f := st.opts.ReselectFactor; f > 1 &&
		(st.ewmaBatch >= st.probeBatch*f || st.ewmaBatch*f <= st.probeBatch) {
		reason = fmt.Sprintf("batch width drifted to %.0f from the %.0f-sample probe",
			st.ewmaBatch, st.probeBatch)
	}
	observedQPD := ep.sched.queriesPerDay()
	if d := st.decision; reason == "" && d != nil && observedQPD > 0 {
		be := d.MemoryBreakEvenQueriesPerDay
		// The hysteresis band keeps workloads hovering at the break-even
		// from flapping: the observed volume must clear the far edge of
		// the +-BreakEvenHysteresis band before the trigger fires.
		if plan.CrossedBreakEven(d.Profile.QueriesPerDay, observedQPD, be, st.opts.BreakEvenHysteresis) {
			reason = fmt.Sprintf("arrival rate crossed the memory break-even (%d vs ~%d queries/day)",
				observedQPD, be)
		}
	}
	if reason == "" {
		return
	}
	probe := int(math.Round(st.ewmaBatch))
	if probe < 1 {
		probe = 1
	}
	ep.replanTo(probe, nil, reason)
}

// replanTo re-plans the endpoint under its live workload profile at the
// given representative batch width and swaps the deployment template when
// the winning configuration changed. Shared by the drift trigger
// (observeRun) and the alert-driven path (alertReplan); obj, when
// non-nil, overrides the planner's objective for this decision only.
func (ep *Endpoint) replanTo(probe int, obj plan.Objective, reason string) {
	st := ep.slo
	st.runs = 0
	profile := ep.sched.observedProfile(probe)
	var dcfg core.Config
	var err error
	if obj != nil {
		var d *plan.Decision
		d, err = st.planner.ReplanWith(profile, obj)
		if err == nil {
			st.decision = d
			dcfg = d.Config
			if ep.mutate != nil {
				ep.mutate(&dcfg)
			}
		}
	} else {
		dcfg, err = ep.selectConfig(profile)
	}
	if err != nil {
		return // keep the current configuration; retry after MinRuns more runs
	}
	st.probeBatch = float64(probe)
	ep.stats.Reselections++
	if dcfg.Channel == ep.dcfg.Channel && dcfg.Workers() == ep.dcfg.Workers() {
		return // same configuration still wins; no redeploy needed
	}
	now := ep.svc.Now()
	ep.stats.Replans = append(ep.stats.Replans, ReplanEvent{
		At:            now,
		From:          ep.dcfg.Channel,
		FromWorkers:   ep.dcfg.Workers(),
		To:            dcfg.Channel,
		ToWorkers:     dcfg.Workers(),
		QueriesPerDay: profile.QueriesPerDay,
		Reason:        reason,
	})
	ep.dcfg = dcfg
	for _, rep := range ep.sched.pool {
		rep.stale = true
		if rep.active == 0 {
			// Swaps the deployment and refreshes ep.cfg; busy replicas
			// follow as they go idle.
			ep.sched.maybeReplace(rep, now)
		}
	}
}

// alertReplan is the alert-driven arm of the control loop, invoked from a
// firing page-severity burn-rate alert. An SLO endpoint re-plans
// immediately — the drift gate (MinRuns) is bypassed and the decision is
// re-scored under a latency-biased objective, since a burning error
// budget is exactly the regime where shaving run latency beats shaving
// cost. A fixed endpoint has no planner, so it gets an emergency replica
// instead. Alert events are edge-triggered (one per firing transition),
// which bounds the blast radius: a sustained violation re-plans once per
// rule transition, not once per scrape.
func (ep *Endpoint) alertReplan(ev monitor.AlertEvent) {
	st := ep.slo
	if st == nil {
		ep.sched.alertBoost()
		return
	}
	probe := int(math.Round(st.ewmaBatch))
	if probe < 1 {
		probe = int(math.Round(st.probeBatch))
	}
	if probe < 1 {
		probe = 1
	}
	reason := fmt.Sprintf("slo alert %s (%s): burn %.1fx/%.1fx",
		ev.SLO, ev.Severity, ev.BurnShort, ev.BurnLong)
	ep.replanTo(probe, plan.LatencyObjective(), reason)
}

// Env returns the shared simulated environment.
func (s *Service) Env() *env.Env { return s.env }

// Endpoints returns the registered endpoint names in registration order.
func (s *Service) Endpoints() []string {
	names := make([]string, len(s.eps))
	for i, ep := range s.eps {
		names[i] = ep.name
	}
	return names
}

// Now returns the current virtual time of the shared kernel.
func (s *Service) Now() time.Duration { return s.env.K.Now() }

// Tracer returns the service's span tracer, or nil when tracing is off
// (WithTracing not applied). After a laned replay it holds the merged
// spans of every lane.
func (s *Service) Tracer() *obs.Tracer { return s.trace }

// Metrics returns the service's metrics registry, or nil when both
// tracing and monitoring are off. Snapshots may be taken mid-replay for
// time-series windows.
func (s *Service) Metrics() *obs.Registry { return s.metrics }

// Monitor returns the service's SLO monitor, or nil when monitoring is
// off (WithMonitor not applied). The nil monitor is safe to read —
// Series/Alerts/Endpoints return empty, the exporters write nothing —
// so callers may chain without a guard. After a laned replay it holds
// the merged time-series and alert log of every lane.
func (s *Service) Monitor() *monitor.Monitor { return s.mon }

// SubmitOptions carries per-request scheduling metadata.
type SubmitOptions struct {
	// Priority orders dispatch under PriorityAdmission (higher first;
	// default class 0).
	Priority int
	// Deadline is the completion budget relative to the request's arrival
	// time; 0 means none. Under DeadlineAdmission, requests that cannot
	// meet their deadline are shed (ErrShed) or rerouted.
	Deadline time.Duration
}

// Submit enqueues one asynchronous request: input arrives at the named
// endpoint at virtual time at (clamped to now if already past). The
// returned handle resolves once the simulation has been driven past the
// request's completion — via Run, Replay, or the handle's own Wait.
func (s *Service) Submit(name string, input *sparse.Dense, at time.Duration) *Handle {
	return s.SubmitWith(name, input, at, SubmitOptions{})
}

// SubmitWith is Submit with per-request scheduling metadata: a priority
// class and/or a completion deadline for the admission policy.
func (s *Service) SubmitWith(name string, input *sparse.Dense, at time.Duration, opts SubmitOptions) *Handle {
	idx := s.submitSeq
	s.submitSeq++
	return s.submit(name, input, at, opts, nil, idx)
}

// submit is the common submission path. notify, when non-nil, is installed
// on the handle before any validation can fail it, so streaming replays
// observe every resolution — including synchronous rejects — through one
// hook and never need to retain the handle themselves. idx is the
// request's sampling index: replay paths pass the query's position in
// the original trace (mode-stable), interactive Submits a service-local
// sequence.
func (s *Service) submit(name string, input *sparse.Dense, at time.Duration, opts SubmitOptions, notify func(*Handle), idx int) *Handle {
	h := &Handle{svc: s, endpoint: name, priority: opts.Priority, notify: notify}
	s.pending[h] = struct{}{}
	ep := s.byName[name]
	if ep == nil {
		h.fail(s.Now(), fmt.Errorf("serve: unknown endpoint %q", name))
		return h
	}
	if input == nil || input.Cols == 0 {
		h.fail(s.Now(), fmt.Errorf("serve: endpoint %q: empty input", name))
		return h
	}
	if input.Rows != ep.m.Spec.Neurons {
		h.fail(s.Now(), fmt.Errorf("serve: endpoint %q: input has %d rows, model expects %d",
			name, input.Rows, ep.m.Spec.Neurons))
		return h
	}
	if opts.Deadline < 0 {
		h.fail(s.Now(), fmt.Errorf("serve: endpoint %q: negative deadline %v", name, opts.Deadline))
		return h
	}
	delay := at - s.Now()
	s.env.K.At(delay, func() {
		now := s.Now()
		r := &request{
			h:        h,
			input:    input,
			arrived:  now,
			priority: opts.Priority,
			samples:  input.Cols,
		}
		if opts.Deadline > 0 {
			r.deadline = now + opts.Deadline
		}
		if t := s.trace; t != nil && t.Sample(idx) {
			r.span = t.Start(ep.name, "request", obs.KindRequest, 0)
			r.span.SetAsync("q" + strconv.Itoa(idx))
			r.span.SetAttr("samples", strconv.Itoa(r.samples))
			if r.priority != 0 {
				r.span.SetAttr("priority", strconv.Itoa(r.priority))
			}
		}
		ep.sched.admit(r)
	})
	return h
}

// Run drives the shared simulation until every submitted request has
// drained. It may be called repeatedly; submissions made after a Run are
// served by the next one. If the simulation itself fails, the error is
// surfaced on every unresolved handle as well as returned, so no Wait
// silently loses it.
func (s *Service) Run() error {
	if err := s.env.K.Run(); err != nil {
		err = fmt.Errorf("serve: %w", err)
		now := s.env.K.Now()
		for h := range s.pending {
			h.fail(now, err)
		}
		return err
	}
	return nil
}

// mergeMemo caches merged coalescing batches by the identity of their
// member inputs. Replays and planner probes drive identical traces through
// the scheduler repeatedly, producing the same coalesced batches from the
// same (memoised) query inputs; returning the previous merged matrix keeps
// batch assembly — and, downstream, the input staging encode keyed off its
// pointer — off the replay hot path. Bounded like the input memo; merged
// batches are read-only in the engine (handlers copy into local activation
// buffers), so sharing one matrix across runs and lanes is safe.
var (
	mergeMemo     sync.Map // string key -> *sparse.Dense
	mergeMemoSize atomic.Int64
)

const mergeMemoCap = 4096

// mergeInputs concatenates the batch's activation matrices column-wise
// into one engine input, in admission order.
func mergeInputs(neurons int, b *batch) *sparse.Dense {
	if len(b.reqs) == 1 {
		return b.reqs[0].input
	}
	var kb strings.Builder
	fmt.Fprintf(&kb, "%d", neurons)
	for _, r := range b.reqs {
		fmt.Fprintf(&kb, "|%p", r.input)
	}
	key := kb.String()
	if v, ok := mergeMemo.Load(key); ok {
		return v.(*sparse.Dense)
	}
	out := sparse.NewDense(neurons, b.samples)
	off := 0
	for _, r := range b.reqs {
		for row := 0; row < neurons; row++ {
			copy(out.Row(row)[off:off+r.input.Cols], r.input.Row(row))
		}
		off += r.input.Cols
	}
	if mergeMemoSize.Load() < mergeMemoCap {
		if _, loaded := mergeMemo.LoadOrStore(key, out); !loaded {
			mergeMemoSize.Add(1)
		}
	}
	return out
}

// sliceCols copies columns [off, off+cols) of src into a fresh matrix.
func sliceCols(src *sparse.Dense, off, cols int) *sparse.Dense {
	if off == 0 && cols == src.Cols {
		return src
	}
	out := sparse.NewDense(src.Rows, cols)
	for row := 0; row < src.Rows; row++ {
		copy(out.Row(row), src.Row(row)[off:off+cols])
	}
	return out
}

// Handle is the pending result of one Submit.
type Handle struct {
	svc      *Service
	endpoint string
	priority int
	done     bool
	resp     *Response
	err      error
	finished time.Duration
	// notify, when set, observes the handle's resolution (success or
	// failure) exactly once. Streaming replays account and release handles
	// through it instead of holding them all until the run drains.
	notify func(*Handle)
}

// Response is one request's resolved result.
type Response struct {
	// Endpoint and RunID identify where and in which engine run the
	// request was served.
	Endpoint string
	RunID    string
	// Output is this request's slice of the activation output.
	Output *sparse.Dense
	// Latency is arrival to result availability, including coalescing
	// wait and admission queueing.
	Latency time.Duration
	// RunLatency is the underlying engine run's latency.
	RunLatency time.Duration
	// BatchSamples and BatchRequests describe the coalesced engine run
	// this request rode in.
	BatchSamples  int
	BatchRequests int
	// CostShare is the request's per-sample share of the run's
	// ledger-reconstructed cost.
	CostShare float64
}

// Done reports whether the request has resolved.
func (h *Handle) Done() bool { return h.done }

// Err returns the request's error, if resolved and failed.
func (h *Handle) Err() error { return h.err }

// Wait drives the simulation until the request resolves and returns its
// response. Any number of handles may be waited in any order; the first
// Wait drains every in-flight request in one simulated-time run.
func (h *Handle) Wait() (*Response, error) {
	if !h.done {
		if err := h.svc.Run(); err != nil && !h.done {
			return nil, err
		}
	}
	if !h.done {
		return nil, fmt.Errorf("serve: request to %q did not complete", h.endpoint)
	}
	return h.resp, h.err
}

func (h *Handle) complete(now time.Duration, resp *Response) {
	if h.done {
		return
	}
	h.done = true
	h.resp = resp
	h.finished = now
	delete(h.svc.pending, h)
	if h.notify != nil {
		h.notify(h)
	}
}

func (h *Handle) fail(now time.Duration, err error) {
	if h.done {
		return
	}
	h.done = true
	h.err = err
	h.finished = now
	delete(h.svc.pending, h)
	if h.notify != nil {
		h.notify(h)
	}
}
