package serve

import (
	"testing"
	"time"

	"fsdinference/internal/workload"
)

// TestReplayStreamMatchesBatchReplay drives the same trace through the
// batch and streaming replays on identical fresh services: the simulated
// timelines must be identical (exact counts, horizon, mean/min/max), with
// only the percentile fields bucket-quantised.
func TestReplayStreamMatchesBatchReplay(t *testing.T) {
	trace := workload.Day(40*6, []int{64, 128, 256}, 6, 9)
	opts := ReplayOptions{Seed: 17}

	batch, err := lanesTestService(t).Replay(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A small feed batch forces many JIT pulls mid-run.
	stream, err := lanesTestService(t).ReplayStream(workload.Stream(trace, 7), opts)
	if err != nil {
		t.Fatal(err)
	}

	if stream.Queries != batch.Queries || stream.Failed != batch.Failed || stream.Samples != batch.Samples {
		t.Fatalf("counts diverge: stream %d/%d/%d, batch %d/%d/%d",
			stream.Queries, stream.Failed, stream.Samples, batch.Queries, batch.Failed, batch.Samples)
	}
	if stream.Horizon != batch.Horizon {
		t.Fatalf("horizon diverges: stream %v, batch %v", stream.Horizon, batch.Horizon)
	}
	if stream.Latency.Count != batch.Latency.Count ||
		stream.Latency.Mean != batch.Latency.Mean ||
		stream.Latency.Min != batch.Latency.Min ||
		stream.Latency.Max != batch.Latency.Max {
		t.Fatalf("exact latency stats diverge:\nstream %+v\nbatch  %+v", stream.Latency, batch.Latency)
	}
	// Percentiles are bucket upper bounds: never below the exact value,
	// within a sub-bucket's width above it.
	for _, q := range []struct {
		name          string
		approx, exact time.Duration
	}{
		{"p50", stream.Latency.P50, batch.Latency.P50},
		{"p95", stream.Latency.P95, batch.Latency.P95},
		{"p99", stream.Latency.P99, batch.Latency.P99},
	} {
		if q.approx < q.exact {
			t.Errorf("%s: histogram %v below exact %v", q.name, q.approx, q.exact)
		}
		if float64(q.approx) > float64(q.exact)*1.07 {
			t.Errorf("%s: histogram %v more than ~6%% above exact %v", q.name, q.approx, q.exact)
		}
	}
	if stream.TotalCost.Total() != batch.TotalCost.Total() {
		t.Errorf("cost diverges: stream $%v, batch $%v", stream.TotalCost.Total(), batch.TotalCost.Total())
	}
	if len(stream.Endpoints) != len(batch.Endpoints) {
		t.Fatalf("endpoint count diverges")
	}
	for i := range stream.Endpoints {
		se, be := stream.Endpoints[i], batch.Endpoints[i]
		if se.Queries != be.Queries || se.Samples != be.Samples || se.Runs != be.Runs ||
			se.ColdStarts != be.ColdStarts || se.WarmStarts != be.WarmStarts {
			t.Errorf("endpoint %s diverges: stream %+v, batch %+v", se.Name, se, be)
		}
	}
}

// TestReplayStreamRejectsVerify pins the documented limitation.
func TestReplayStreamRejectsVerify(t *testing.T) {
	svc := lanesTestService(t)
	_, err := svc.ReplayStream(workload.Stream(workload.Day(6, []int{64}, 6, 1), 0), ReplayOptions{Verify: true})
	if err == nil {
		t.Fatal("streaming replay accepted Verify")
	}
}

// TestReplayStreamBoundedAhead checks the feeder's just-in-time property:
// the number of unresolved requests never exceeds the feed batch plus the
// requests genuinely in flight at one virtual instant.
func TestReplayStreamBoundedAhead(t *testing.T) {
	svc := lanesTestService(t)
	trace := workload.Day(60*6, []int{64, 128, 256}, 6, 4)
	peak := 0
	_, err := svc.ReplayStream(&peakStream{inner: workload.Stream(trace, 5), svc: svc, peak: &peak}, ReplayOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With a feed batch of 5 and sporadic day-spread arrivals, pending
	// should stay near the batch size — far below the 360-query trace.
	if peak > 60 {
		t.Fatalf("streaming kept %d requests pending at once (trace is 360)", peak)
	}
}

type peakStream struct {
	inner workload.TraceStream
	svc   *Service
	peak  *int
}

func (p *peakStream) Next() []workload.Query {
	if n := len(p.svc.pending); n > *p.peak {
		*p.peak = n
	}
	return p.inner.Next()
}
