package serve

import (
	"fmt"
	"sort"
	"time"

	"fsdinference/internal/model"
	"fsdinference/internal/workload"
)

// epStreamAcc is one endpoint's incremental accounting in a streaming
// replay: what the batch replay reconstructs from retained handles, folded
// on the fly instead.
type epStreamAcc struct {
	queries, failed, samples int
	lat                      latencyHist
	perPrio                  map[int]*latencyHist
}

// ReplayStream drives a TraceStream through the service inside one
// simulated-time run, submitting just-in-time as virtual time reaches each
// batch and folding results incrementally, so a million-query day runs in
// bounded memory: neither the trace, nor the handles, nor the latency
// samples are ever all live at once. The feeder pulls the next batch from
// inside the kernel when the clock reaches the current batch's last
// arrival, so at most one batch of unarrived requests is in flight ahead
// of the clock.
//
// The report matches Replay's except that latency percentiles are folded
// through a log-linear histogram (bucket upper bounds within ~6%, see
// latencyHist) rather than recomputed from retained samples — count,
// mean, min and max stay exact — and per-request outputs are released as
// queries resolve, so opts.Verify is not supported.
func (s *Service) ReplayStream(stream workload.TraceStream, opts ReplayOptions) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Verify {
		return nil, fmt.Errorf("serve: Verify is not supported in streaming replay (outputs are released as queries resolve)")
	}
	route := opts.Route
	if route == nil {
		route = func(q workload.Query) (string, bool) {
			eps := s.byNeuronsAll[q.Neurons]
			if len(eps) == 0 {
				return "", false
			}
			return eps[0].name, true
		}
	}

	// Drain any requests already in flight first, so the metered window
	// below measures this stream and nothing else.
	if err := s.Run(); err != nil {
		return nil, err
	}
	base := s.Now()
	win := s.openWindow(base)

	rep := &Report{}
	var all latencyHist
	perEp := make(map[*Endpoint]*epStreamAcc, len(s.eps))
	acc := func(ep *Endpoint) *epStreamAcc {
		a := perEp[ep]
		if a == nil {
			a = &epStreamAcc{}
			perEp[ep] = a
		}
		return a
	}
	submitted, resolved := 0, 0
	var feedErr error

	// notify fires once per resolved handle — completions and rejects
	// alike — folding the result and releasing it.
	notify := func(h *Handle) {
		resolved++
		ep := s.byName[h.endpoint]
		if h.err != nil {
			rep.Failed++
			if ep != nil {
				acc(ep).failed++
			}
			return
		}
		a := acc(ep)
		resp := h.resp
		rep.Samples += resp.Output.Cols
		a.samples += resp.Output.Cols
		all.Observe(resp.Latency)
		a.lat.Observe(resp.Latency)
		if h.priority != 0 || a.perPrio != nil {
			if a.perPrio == nil {
				a.perPrio = make(map[int]*latencyHist)
				// Reclassify nothing: earlier class-0 requests are in
				// a.lat only; the per-priority breakdown describes the
				// classes submitted from here on. Priority traces set
				// opts.Submit from the first query, so in practice every
				// request is classified.
			}
			ph := a.perPrio[h.priority]
			if ph == nil {
				ph = &latencyHist{}
				a.perPrio[h.priority] = ph
			}
			ph.Observe(resp.Latency)
		}
		if h.finished-base > rep.Horizon {
			rep.Horizon = h.finished - base
		}
	}

	var feed func()
	feed = func() {
		qs := stream.Next()
		if len(qs) == 0 {
			return
		}
		var prev time.Duration
		for _, q := range qs {
			if q.At < prev {
				feedErr = fmt.Errorf("serve: stream arrivals out of order (%v after %v)", q.At, prev)
				return
			}
			prev = q.At
			name, ok := route(q)
			if !ok {
				feedErr = fmt.Errorf("serve: no endpoint for query %d (N=%d)", submitted, q.Neurons)
				return
			}
			ep := s.byName[name]
			if ep == nil {
				feedErr = fmt.Errorf("serve: route returned unknown endpoint %q", name)
				return
			}
			in := model.GenerateInputsCached(q.Neurons, q.Samples, opts.Density, opts.Seed+int64(submitted))
			var so SubmitOptions
			if opts.Submit != nil {
				so = opts.Submit(submitted, q)
			}
			rep.Queries++
			acc(ep).queries++
			s.submit(name, in, base+q.At, so, notify, submitted)
			submitted++
		}
		// Pull the next batch when the clock reaches this batch's last
		// arrival; stream order guarantees the next batch arrives at or
		// after it.
		s.env.K.At(base+prev-s.Now(), feed)
	}
	feed()
	if feedErr != nil {
		return nil, feedErr
	}

	chaos, err := s.scheduleChaos(base, opts.Chaos)
	if err != nil {
		return nil, err
	}

	if err := s.Run(); err != nil {
		return nil, err
	}
	if feedErr != nil {
		return nil, feedErr
	}
	if resolved != submitted {
		return nil, fmt.Errorf("serve: %d of %d streamed queries did not resolve", submitted-resolved, submitted)
	}
	s.closeWindow(win)

	rep.Latency = histStats(&all)
	for _, ep := range s.eps {
		a := acc(ep)
		var perPrio []PriorityLatency
		if len(a.perPrio) > 1 {
			prios := make([]int, 0, len(a.perPrio))
			for p := range a.perPrio {
				prios = append(prios, p)
			}
			sort.Sort(sort.Reverse(sort.IntSlice(prios)))
			for _, p := range prios {
				perPrio = append(perPrio, PriorityLatency{Priority: p, Latency: histStats(a.perPrio[p])})
			}
		}
		rep.Endpoints = append(rep.Endpoints, s.endpointReport(ep, win,
			a.queries, a.failed, a.samples, histStats(&a.lat), perPrio))
	}
	s.meterReport(rep, win)
	rep.ChaosKills = chaos.kills
	rep.ChaosPartitions = chaos.partitions
	rep.ChaosSkipped = chaos.skipped
	return rep, nil
}
