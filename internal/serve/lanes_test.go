package serve

import (
	"math"
	"reflect"
	"testing"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/model"
	"fsdinference/internal/workload"
)

func lanesTestService(t *testing.T) *Service {
	t.Helper()
	sizes := []int{64, 128, 256}
	var opts []Option
	names := []string{"s64", "s128", "s256"}
	for i, n := range sizes {
		m, err := model.Generate(model.GraphChallengeSpec(n, 3, 1))
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithEndpoint(names[i], m))
	}
	opts = append(opts, WithCoalescing(32, 150*time.Millisecond), WithReplicas(2))
	svc, err := NewService(env.NewDefault(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestReplayLanesMatchesSingleLane is the lane-determinism contract: the
// sharded replay's merged report must equal the single-lane replay of the
// same trace — exactly for everything counted in integers or nanoseconds,
// and within float rounding for the cross-lane-summed metered totals.
// Run under -race this also exercises the per-lane kernels concurrently.
func TestReplayLanesMatchesSingleLane(t *testing.T) {
	trace := workload.Day(60*6, []int{64, 128, 256}, 6, 9)
	opts := ReplayOptions{Seed: 17}

	single, err := lanesTestService(t).Replay(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := lanesTestService(t).ReplayLanes(2, trace, opts)
	if err != nil {
		t.Fatal(err)
	}

	if single.Failed != 0 || sharded.Failed != 0 {
		t.Fatalf("failed queries: single %d, sharded %d", single.Failed, sharded.Failed)
	}

	// Exact equality on everything except the float-accumulated metered
	// totals, which lanes sum in a different order than one shared meter.
	a, b := *single, *sharded
	a.TotalCost, b.TotalCost = usage.Breakdown{}, usage.Breakdown{}
	a.KVGBHours, b.KVGBHours = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sharded report diverges from single-lane:\n--- single ---\n%s\n--- sharded ---\n%s",
			single, sharded)
	}
	if !closeUSD(single.TotalCost.Total(), sharded.TotalCost.Total()) {
		t.Errorf("total cost: single $%v, sharded $%v",
			single.TotalCost.Total(), sharded.TotalCost.Total())
	}
	if math.Abs(single.KVGBHours-sharded.KVGBHours) > 1e-9 {
		t.Errorf("KV GB-hours: single %v, sharded %v", single.KVGBHours, sharded.KVGBHours)
	}
}

// TestReplayLanesMoreLanesThanSizes clamps the lane count to the number of
// size groups and still matches the single-lane result.
func TestReplayLanesMoreLanesThanSizes(t *testing.T) {
	trace := workload.Day(30*6, []int{64, 128, 256}, 6, 3)
	opts := ReplayOptions{Seed: 5}
	single, err := lanesTestService(t).Replay(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := lanesTestService(t).ReplayLanes(8, trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Queries != single.Queries || sharded.Samples != single.Samples ||
		sharded.Latency != single.Latency || sharded.Horizon != single.Horizon {
		t.Fatalf("clamped lanes diverge:\n--- single ---\n%s\n--- sharded ---\n%s", single, sharded)
	}
}

// TestReplayLanesChaosFallsBack verifies a chaos trace replays on a single
// lane (a fresh clone) and still reports the injections.
func TestReplayLanesChaosFallsBack(t *testing.T) {
	trace := workload.Day(10*6, []int{64, 128}, 6, 3)
	svc := lanesTestService(t)
	rep, err := svc.ReplayLanes(2, trace, ReplayOptions{
		Seed:  5,
		Chaos: []ChaosEvent{{At: time.Hour, Kind: KillNode, Endpoint: "s64", Shard: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Serial endpoints have no provisioned cluster, so the event is
	// counted as skipped — the point is that it was processed at all.
	if rep.ChaosKills+rep.ChaosSkipped != 1 {
		t.Fatalf("chaos event not processed: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d failed queries", rep.Failed)
	}
}

func closeUSD(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}
