package serve

import (
	"fmt"
	"time"

	"fsdinference/internal/core"
	"fsdinference/internal/plan"
)

// This file is the pluggable half of the scheduler subsystem: admission
// policies decide the order in which queued requests dispatch (and which
// ones to shed or reroute), scaling policies decide how many warm replicas
// an endpoint keeps. The mechanics — admission heap, coalescing windows,
// replica pools, metering — live in scheduler.go.

// RequestInfo is a policy's read-only view of one queued request.
type RequestInfo struct {
	// Seq is the admission sequence number (FIFO tie-break).
	Seq int
	// Arrived is the request's arrival virtual time.
	Arrived time.Duration
	// Priority is the caller-supplied priority (higher dispatches first
	// under PriorityAdmission; 0 is the default class).
	Priority int
	// Deadline is the absolute virtual time by which the request must
	// complete (0 = none).
	Deadline time.Duration
	// Samples is the request's batch width (input columns).
	Samples int
}

// AdmissionPolicy orders an endpoint's admission queue and decides, at
// dispatch time, whether a request should be shed (or rerouted) instead of
// served. Implementations must be deterministic pure functions of their
// inputs; one policy instance may serve many endpoints.
type AdmissionPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Less reports whether a dispatches before b.
	Less(a, b RequestInfo) bool
	// Shed reports whether to reject r at dispatch time, given the
	// current virtual time and the endpoint's estimated engine-run
	// latency (an EWMA of observed runs; 0 until the first completes).
	Shed(now, estRun time.Duration, r RequestInfo) bool
	// Reroute reports whether shed requests should first be offered to
	// another endpoint serving the same model size.
	Reroute() bool
}

// FIFO returns the default admission policy: strict arrival order, never
// sheds.
func FIFO() AdmissionPolicy { return fifoAdmission{} }

type fifoAdmission struct{}

func (fifoAdmission) Name() string                                { return "fifo" }
func (fifoAdmission) Less(a, b RequestInfo) bool                  { return a.Seq < b.Seq }
func (fifoAdmission) Shed(_, _ time.Duration, _ RequestInfo) bool { return false }
func (fifoAdmission) Reroute() bool                               { return false }

// PriorityAdmission returns a policy dispatching higher Priority requests
// first, arrival order within a class. It never sheds.
func PriorityAdmission() AdmissionPolicy { return priorityAdmission{} }

type priorityAdmission struct{}

func (priorityAdmission) Name() string { return "priority" }
func (priorityAdmission) Less(a, b RequestInfo) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Seq < b.Seq
}
func (priorityAdmission) Shed(_, _ time.Duration, _ RequestInfo) bool { return false }
func (priorityAdmission) Reroute() bool                               { return false }

// DeadlineAdmission returns an earliest-deadline-first policy: requests
// with deadlines dispatch before those without, soonest deadline first. At
// dispatch time a request whose deadline has passed — or provably cannot
// be met given the endpoint's estimated run latency — is shed rather than
// run. With reroute true, a shed request is first offered once to another
// endpoint serving the same model size (Service routing by neuron count);
// only if none exists, or the reroute also fails, does its handle fail
// with ErrShed.
func DeadlineAdmission(reroute bool) AdmissionPolicy {
	return deadlineAdmission{reroute: reroute}
}

type deadlineAdmission struct{ reroute bool }

func (deadlineAdmission) Name() string { return "deadline" }
func (deadlineAdmission) Less(a, b RequestInfo) bool {
	ad, bd := a.Deadline, b.Deadline
	switch {
	case ad == 0 && bd == 0:
		return a.Seq < b.Seq
	case ad == 0:
		return false
	case bd == 0:
		return true
	case ad != bd:
		return ad < bd
	}
	return a.Seq < b.Seq
}
func (deadlineAdmission) Shed(now, estRun time.Duration, r RequestInfo) bool {
	if r.Deadline == 0 {
		return false
	}
	if now > r.Deadline {
		return true
	}
	return estRun > 0 && now+estRun > r.Deadline
}
func (d deadlineAdmission) Reroute() bool { return d.reroute }

// ErrShed marks a request rejected by an admission policy because its
// deadline could not be met. Test with errors.Is.
var ErrShed = fmt.Errorf("request shed: deadline cannot be met")

// PoolState is a scaling policy's view of one endpoint's scheduler at a
// decision point.
type PoolState struct {
	// Now is the current virtual time.
	Now time.Duration
	// Replicas is the current warm-pool size; BusyRuns the engine runs in
	// flight across it; RunCapacity the concurrent runs one replica
	// sustains (WithRunConcurrency).
	Replicas    int
	BusyRuns    int
	RunCapacity int
	// QueuedRequests and QueuedSamples describe the admission queue
	// (requests whose coalescing window has closed but which have not
	// dispatched).
	QueuedRequests int
	QueuedSamples  int
	// ArrivalRate is the endpoint's recent request arrival rate in
	// requests per second (EWMA over inter-arrival times).
	ArrivalRate float64
	// EstRunLatency is the EWMA of observed engine-run latency (0 until
	// the first run completes).
	EstRunLatency time.Duration
}

// ScalingPolicy sizes an endpoint's replica pool. Target is consulted
// whenever demand changes: on every coalescing-window flush (requests
// still inside an open window are not yet queued), on run completion, and
// on idle-grace expiry. Growth is applied immediately, shrinkage only
// reclaims replicas that have been idle for at least IdleGrace.
type ScalingPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Target returns the desired pool size for the observed state. The
	// scheduler clamps it to at least 1.
	Target(st PoolState) int
	// IdleGrace is how long a replica must sit idle before scale-down may
	// reclaim it (cold-start hysteresis).
	IdleGrace() time.Duration
}

// FixedPool returns the static scaling policy: always n replicas — the
// behaviour of WithReplicas.
func FixedPool(n int) ScalingPolicy { return fixedPool{n: n} }

type fixedPool struct{ n int }

func (f fixedPool) Name() string             { return fmt.Sprintf("fixed(%d)", f.n) }
func (f fixedPool) Target(PoolState) int     { return f.n }
func (f fixedPool) IdleGrace() time.Duration { return 0 }

// AutoscalerOptions tunes the demand-driven scaling policy.
type AutoscalerOptions struct {
	// Min and Max bound the pool (defaults 1 and 8).
	Min, Max int
	// IdleGrace is how long a replica must be idle before scale-down
	// reclaims it (default 2 minutes — long enough to ride out coalescing
	// gaps, short against the sporadic-day scale).
	IdleGrace time.Duration
}

func (o AutoscalerOptions) withDefaults() AutoscalerOptions {
	if o.Min <= 0 {
		o.Min = 1
	}
	if o.Max <= 0 {
		o.Max = 8
	}
	if o.Max < o.Min {
		o.Max = o.Min
	}
	if o.IdleGrace <= 0 {
		o.IdleGrace = 2 * time.Minute
	}
	return o
}

// Autoscaler returns a scaling policy that grows the pool to cover the
// observed demand — runs in flight plus the queued backlog, with headroom
// for the work expected to arrive during one run (arrival rate x estimated
// run latency) — and shrinks back once replicas sit idle past the grace
// period. Replica-hours follow the workload instead of its peak.
func Autoscaler(o AutoscalerOptions) ScalingPolicy {
	return autoscaler{o: o.withDefaults()}
}

type autoscaler struct{ o AutoscalerOptions }

func (a autoscaler) Name() string {
	return fmt.Sprintf("autoscale(%d..%d)", a.o.Min, a.o.Max)
}

func (a autoscaler) Target(st PoolState) int {
	cap := st.RunCapacity
	if cap <= 0 {
		cap = 1
	}
	// Demand in runs: in-flight plus queued requests (coalescing can only
	// merge queued requests, so this is an upper bound that decays as the
	// queue drains), plus the arrivals expected during one run.
	demand := st.BusyRuns + st.QueuedRequests
	if st.ArrivalRate > 0 && st.EstRunLatency > 0 {
		demand += int(st.ArrivalRate * st.EstRunLatency.Seconds())
	}
	target := (demand + cap - 1) / cap
	if target < a.o.Min {
		target = a.o.Min
	}
	if target > a.o.Max {
		target = a.o.Max
	}
	return target
}

func (a autoscaler) IdleGrace() time.Duration { return a.o.IdleGrace }

// SLOOptions asks an endpoint to pick its own deployment configuration —
// channel and worker parallelism — at deploy time via the workload-aware
// Planner (the §VI-D1 extension), given latency/cost priorities, and to
// re-plan when the observed workload drifts from the planning assumption:
// batch width by ReselectFactor, or arrival rate across the memory
// channel's break-even daily volume. Re-plans feed the scheduler's live
// WorkloadProfile into Planner.Replan, so provisioned idle billing is
// charged at the observed volume instead of one probe's share.
type SLOOptions struct {
	// LatencyWeight in [0,1]: 1 optimises latency only, 0 cost only.
	// Ignored when Objective is set.
	LatencyWeight float64
	// Objective overrides the planning objective (default: the weighted
	// latency/cost objective at LatencyWeight).
	Objective plan.Objective
	// Channels restricts the candidate channels (default: serial when
	// the model fits one instance, plus queue, object and memory).
	Channels []core.ChannelKind
	// Workers lists candidate parallelism levels (default: the paper's
	// 8, 20, 42, 62 grid).
	Workers []int
	// ProbeBatch is the assumed request batch width used for the initial
	// planning trials (default 32).
	ProbeBatch int
	// ReselectFactor re-plans when the EWMA of observed engine-run batch
	// width drifts from the probe batch by at least this factor in
	// either direction (values <= 1 disable the batch-drift trigger;
	// the break-even arrival-rate trigger is always armed).
	ReselectFactor float64
	// BreakEvenHysteresis widens the arrival-rate trigger into a band
	// around the memory break-even: the observed volume must clear the
	// break-even by this fraction (default 0.2, i.e. +-20%) before a
	// re-plan fires, so workloads hovering at the break-even stop
	// flapping between configurations. Negative disables the band.
	BreakEvenHysteresis float64
	// MinRuns is how many runs must be observed between re-plans
	// (default 16).
	MinRuns int
	// Seed drives probe generation (default 1).
	Seed int64
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.ProbeBatch <= 0 {
		o.ProbeBatch = 32
	}
	if o.BreakEvenHysteresis == 0 {
		o.BreakEvenHysteresis = 0.2
	}
	if o.BreakEvenHysteresis < 0 {
		o.BreakEvenHysteresis = 0
	}
	if o.MinRuns <= 0 {
		o.MinRuns = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}
