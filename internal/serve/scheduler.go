package serve

import (
	"container/heap"
	"fmt"
	"math"
	"strconv"
	"time"

	"fsdinference/internal/core"
	"fsdinference/internal/obs"
	"fsdinference/internal/plan"
	"fsdinference/internal/sim"
)

// scheduler owns one endpoint's scheduling mechanics: the coalescing
// window, the policy-ordered admission queue, the replica pool with its
// scaling decisions and replica-hour metering, and the run lifecycle. The
// policies it consults are pluggable (policy.go); the scheduler itself is
// deterministic — every decision happens at a virtual-time event.
type scheduler struct {
	ep *Endpoint

	coalesce  coalescePolicy
	admission AdmissionPolicy
	scaling   ScalingPolicy
	runConc   int // concurrent engine runs one replica sustains

	// Open coalescing window (requests whose batch has not closed yet).
	window        []*request
	windowSamples int
	windowTimer   *sim.Timer

	// Admission queue: closed-window requests awaiting dispatch, ordered
	// by the admission policy.
	queue         admissionHeap
	queuedSamples int
	seq           int

	pool     []*replica
	busyRuns int

	// Workload observation for deadline shedding, autoscaling and the
	// WorkloadProfile fed to SLO re-planning.
	estRun      time.Duration // EWMA of engine-run latency
	lastArrival time.Duration
	haveArrival bool
	interEWMA   float64 // EWMA inter-arrival seconds
	// arrivals, firstArrival and minInter describe the current
	// observation window (reset per replay so reports are not
	// contaminated by earlier traffic); the EWMA above is the live
	// re-planning signal and is never reset.
	arrivals     int
	firstArrival time.Duration
	minInter     float64 // smallest in-window inter-arrival gap, seconds

	// Pool metering.
	lastAccrue time.Duration
	graceTimer *sim.Timer
}

// replica is one deployment in an endpoint's warm pool. Since Queue-
// channel consumption is partitioned by run id (core.Deployment.Start),
// a replica can overlap up to runConc engine runs whatever its channel.
type replica struct {
	d         *core.Deployment
	active    int
	lastUsed  time.Duration
	idleSince time.Duration
	// track is the replica's trace timeline name ("ep/r3"); empty when
	// tracing is off. It survives SLO-driven deployment swaps unchanged
	// in spirit: the swap installs the fresh deployment's track.
	track string
	// stale marks a replica whose deployment predates an SLO
	// re-selection; it is replaced with the current configuration the
	// next time it goes idle.
	stale bool
}

// admissionHeap is a container/heap ordered by the admission policy.
type admissionHeap struct {
	pol  AdmissionPolicy
	reqs []*request
}

func (h *admissionHeap) Len() int           { return len(h.reqs) }
func (h *admissionHeap) Less(i, j int) bool { return h.pol.Less(h.reqs[i].info(), h.reqs[j].info()) }
func (h *admissionHeap) Swap(i, j int)      { h.reqs[i], h.reqs[j] = h.reqs[j], h.reqs[i] }
func (h *admissionHeap) Push(x any)         { h.reqs = append(h.reqs, x.(*request)) }
func (h *admissionHeap) Pop() any {
	old := h.reqs
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	h.reqs = old[:n-1]
	return r
}

func newScheduler(ep *Endpoint, coalesce coalescePolicy, admission AdmissionPolicy, scaling ScalingPolicy, runConc int) *scheduler {
	sc := &scheduler{
		ep:        ep,
		coalesce:  coalesce,
		admission: admission,
		scaling:   scaling,
		runConc:   runConc,
	}
	sc.queue.pol = admission
	return sc
}

func (sc *scheduler) now() time.Duration { return sc.ep.svc.Now() }

// admit adds a request to the endpoint's open coalescing window, arming
// the flush trigger on the first request and force-flushing when the
// window reaches the sample bound. It runs in simulation context.
func (sc *scheduler) admit(r *request) {
	now := sc.now()
	if sc.haveArrival {
		dt := (now - sc.lastArrival).Seconds()
		if sc.interEWMA == 0 {
			sc.interEWMA = dt
		} else {
			sc.interEWMA = 0.75*sc.interEWMA + 0.25*dt
		}
		if sc.arrivals > 0 && (sc.minInter == 0 || dt < sc.minInter) {
			sc.minInter = dt
		}
	}
	if sc.arrivals == 0 {
		sc.firstArrival = now
	}
	sc.arrivals++
	sc.haveArrival = true
	sc.lastArrival = now

	sc.seq++
	r.seq = sc.seq
	// Zero-ref no-op when the request is unsampled or tracing is off.
	r.phase = r.span.Child("coalesce", obs.KindPhase)
	sc.window = append(sc.window, r)
	sc.windowSamples += r.samples
	if sc.coalesce.maxBatch > 0 && sc.windowSamples >= sc.coalesce.maxBatch {
		sc.flush()
		return
	}
	if len(sc.window) == 1 {
		if sc.coalesce.maxDelay > 0 {
			sc.windowTimer = sc.ep.svc.env.K.After(sc.coalesce.maxDelay, sc.flush)
		} else {
			// Zero-delay coalescing still merges everything arriving at
			// this same virtual instant: the flush event is scheduled
			// behind all already-queued admissions.
			sc.ep.svc.env.K.At(0, sc.flush)
		}
	}
}

// flush closes the open coalescing window into the admission queue, lets
// the scaling policy see the new backlog, and dispatches.
func (sc *scheduler) flush() {
	if len(sc.window) == 0 {
		return
	}
	if sc.windowTimer != nil {
		sc.windowTimer.Stop()
		sc.windowTimer = nil
	}
	for _, r := range sc.window {
		heap.Push(&sc.queue, r)
		sc.queuedSamples += r.samples
		r.phase.End()
		r.phase = r.span.Child("queue", obs.KindPhase)
	}
	sc.window = nil
	sc.windowSamples = 0
	sc.evaluatePool()
	sc.dispatch()
}

// arrivalRate returns the EWMA request arrival rate in requests/second.
func (sc *scheduler) arrivalRate() float64 {
	if sc.interEWMA <= 0 {
		return 0
	}
	return 1 / math.Max(sc.interEWMA, 1e-3)
}

// queriesPerDay projects the EWMA arrival rate to a daily query volume —
// the number the provisioned-versus-per-request break-even is stated in.
func (sc *scheduler) queriesPerDay() int64 {
	return int64(sc.arrivalRate() * 86400)
}

// resetObservationWindow restarts the burstiness and mean-rate window
// (arrivals, first arrival, minimum gap). The arrival-rate EWMA is
// untouched: it is the live re-planning signal. Replay calls this at the
// window edge so each report's Observed profile describes that replay's
// traffic only.
func (sc *scheduler) resetObservationWindow() {
	sc.arrivals = 0
	sc.minInter = 0
}

// observedProfile emits the endpoint's live workload profile for the
// planner: arrival-rate EWMA, its daily-volume projection, the
// representative batch width and the peak-to-mean burstiness of what has
// arrived within the current observation window.
func (sc *scheduler) observedProfile(batch int) plan.WorkloadProfile {
	p := plan.WorkloadProfile{
		BatchSamples:  batch,
		Concurrency:   sc.ep.stats.MaxConcurrent,
		ArrivalRate:   sc.arrivalRate(),
		QueriesPerDay: sc.queriesPerDay(),
	}
	if sc.arrivals >= 2 && sc.minInter > 0 {
		if elapsed := (sc.lastArrival - sc.firstArrival).Seconds(); elapsed > 0 {
			mean := float64(sc.arrivals-1) / elapsed
			p.Burstiness = (1 / sc.minInter) / mean
		}
	}
	return p
}

func (sc *scheduler) poolState() PoolState {
	return PoolState{
		Now:            sc.now(),
		Replicas:       len(sc.pool),
		BusyRuns:       sc.busyRuns,
		RunCapacity:    sc.runConc,
		QueuedRequests: sc.queue.Len(),
		QueuedSamples:  sc.queuedSamples,
		ArrivalRate:    sc.arrivalRate(),
		EstRunLatency:  sc.estRun,
	}
}

// accrue charges replica-seconds for the pool size held since the last
// change, so ReplicaSeconds integrates pool size over virtual time.
func (sc *scheduler) accrue(now time.Duration) {
	sc.ep.stats.ReplicaSeconds += float64(len(sc.pool)) * (now - sc.lastAccrue).Seconds()
	sc.lastAccrue = now
}

// evaluatePool applies the scaling policy: growth immediately, shrinkage
// only over replicas idle past the grace period (arming a re-check timer
// for idle replicas still inside it).
func (sc *scheduler) evaluatePool() {
	now := sc.now()
	sc.accrue(now)
	target := sc.scaling.Target(sc.poolState())
	if target < 1 {
		target = 1
	}
	for len(sc.pool) < target {
		sc.addReplica(now)
		sc.ep.stats.ScaleUps++
	}
	if len(sc.pool) > sc.ep.stats.PeakReplicas {
		sc.ep.stats.PeakReplicas = len(sc.pool)
	}
	if target >= len(sc.pool) {
		return
	}
	grace := sc.scaling.IdleGrace()
	// Reclaim the coldest eligible idle replicas first.
	for len(sc.pool) > target {
		victim := -1
		for i, rep := range sc.pool {
			if rep.active > 0 || now-rep.idleSince < grace {
				continue
			}
			if victim < 0 || rep.lastUsed < sc.pool[victim].lastUsed {
				victim = i
			}
		}
		if victim < 0 {
			break
		}
		sc.accrue(now)
		// Release provisioned capacity (Memory-channel cache nodes) with
		// the replica, or it would bill node-hours forever.
		sc.pool[victim].d.Decommission()
		sc.pool = append(sc.pool[:victim], sc.pool[victim+1:]...)
		sc.ep.stats.ScaleDowns++
		sc.ep.met.setPoolSize(len(sc.pool))
	}
	// Still above target: some idle replicas are inside the grace period.
	// Arm a re-check at the earliest time one becomes reclaimable.
	if len(sc.pool) > target && sc.graceTimer == nil {
		earliest := time.Duration(math.MaxInt64)
		for _, rep := range sc.pool {
			if rep.active == 0 && rep.idleSince+grace < earliest {
				earliest = rep.idleSince + grace
			}
		}
		if earliest == time.Duration(math.MaxInt64) {
			return
		}
		delay := earliest - now
		if delay < 0 {
			delay = 0
		}
		sc.graceTimer = sc.ep.svc.env.K.After(delay, func() {
			sc.graceTimer = nil
			sc.evaluatePool()
			sc.dispatch()
		})
	}
}

func (sc *scheduler) addReplica(now time.Duration) {
	rep, err := sc.ep.deployReplica()
	if err != nil {
		// The configuration was validated when the endpoint was built (and
		// any re-planned configuration comes out of the Planner), so a
		// scale-up deploy cannot fail short of a programming error.
		panic(fmt.Sprintf("serve: endpoint %q scale-up deploy: %v", sc.ep.name, err))
	}
	sc.accrue(now)
	rep.lastUsed, rep.idleSince = now, now
	sc.pool = append(sc.pool, rep)
	sc.ep.met.setPoolSize(len(sc.pool))
}

// alertBoost is the alert-driven action for an endpoint without a
// planner: deploy one emergency replica immediately, metered like any
// scale-up. The scaling policy is not consulted — it already decided the
// current size and the burning error budget says that was not enough —
// but it reclaims the extra replica through the normal idle-grace path
// once the pressure passes.
func (sc *scheduler) alertBoost() {
	now := sc.now()
	sc.addReplica(now)
	sc.ep.stats.ScaleUps++
	if len(sc.pool) > sc.ep.stats.PeakReplicas {
		sc.ep.stats.PeakReplicas = len(sc.pool)
	}
	sc.dispatch()
}

// pickReplica returns the replica the next run should land on: the most
// recently used idle replica (warmest instance pools), else the least
// loaded replica with spare run capacity. nil when the pool is saturated.
func (sc *scheduler) pickReplica() *replica {
	var idle, busy *replica
	for _, rep := range sc.pool {
		switch {
		case rep.active == 0:
			if idle == nil || rep.lastUsed > idle.lastUsed {
				idle = rep
			}
		case rep.active < sc.runConc:
			if busy == nil || rep.active < busy.active ||
				(rep.active == busy.active && rep.lastUsed > busy.lastUsed) {
				busy = rep
			}
		}
	}
	if idle != nil {
		return idle
	}
	return busy
}

// dispatch forms batches from the admission queue in policy order and
// starts them on replicas with spare run capacity.
func (sc *scheduler) dispatch() {
	for sc.queue.Len() > 0 {
		rep := sc.pickReplica()
		if rep == nil {
			break
		}
		b := sc.nextBatch()
		if b == nil {
			break
		}
		sc.startRun(rep, b)
	}
	sc.ep.met.setQueueDepth(sc.queue.Len())
}

// nextBatch pops requests in admission order into one engine-run batch of
// at most maxBatch samples (an oversized request rides alone in a larger
// run), shedding requests the policy rejects at dispatch time. Returns nil
// if shedding emptied the queue.
func (sc *scheduler) nextBatch() *batch {
	now := sc.now()
	var cur *batch
	for sc.queue.Len() > 0 {
		r := sc.queue.reqs[0]
		if sc.admission.Shed(now, sc.estRun, r.info()) {
			heap.Pop(&sc.queue)
			sc.queuedSamples -= r.samples
			sc.shed(r, now)
			continue
		}
		if cur != nil && sc.coalesce.maxBatch > 0 && cur.samples+r.samples > sc.coalesce.maxBatch {
			break
		}
		heap.Pop(&sc.queue)
		sc.queuedSamples -= r.samples
		if cur == nil {
			cur = &batch{}
		}
		cur.reqs = append(cur.reqs, r)
		cur.samples += r.samples
	}
	return cur
}

// shed handles a policy-rejected request: offered once to the least
// loaded sibling endpoint serving the same model size when the policy
// reroutes, failed with ErrShed otherwise.
func (sc *scheduler) shed(r *request, now time.Duration) {
	r.phase.End()
	if sc.admission.Reroute() && !r.rerouted {
		if alt := sc.leastLoadedSibling(); alt != nil {
			r.rerouted = true
			r.span.SetAttr("rerouted", alt.name)
			sc.ep.stats.Rerouted++
			if m := sc.ep.met; m != nil {
				m.rerouted.Inc()
			}
			alt.sched.admit(r)
			return
		}
	}
	sc.ep.stats.Shed++
	if m := sc.ep.met; m != nil {
		m.requests.Inc()
		m.failures.Inc()
		m.shed.Inc()
	}
	r.span.SetAttr("error", "shed")
	r.span.End()
	r.h.fail(now, fmt.Errorf("serve: endpoint %q: %w (deadline %v, now %v)",
		sc.ep.name, ErrShed, r.deadline, now))
}

// pendingLoad is the scheduler's outstanding work — runs in flight plus
// requests queued or still inside the coalescing window — normalised by
// the pool's run capacity, so a big pool with one queued request reads
// lighter than a saturated single replica.
func (sc *scheduler) pendingLoad() float64 {
	capacity := len(sc.pool) * sc.runConc
	if capacity <= 0 {
		capacity = 1
	}
	return float64(sc.busyRuns+sc.queue.Len()+len(sc.window)) / float64(capacity)
}

// leastLoadedSibling returns the same-model-size endpoint with the
// lightest load, or nil when there is no sibling. A deadline-pressed
// request rerouted to a saturated sibling would only be shed again there;
// steering by queue depth and in-flight runs gives it a real second
// chance. Registration order breaks ties, so single-sibling behaviour is
// unchanged.
func (sc *scheduler) leastLoadedSibling() *Endpoint {
	var best *Endpoint
	bestLoad := 0.0
	for _, alt := range sc.ep.svc.byNeuronsAll[sc.ep.m.Spec.Neurons] {
		if alt == sc.ep {
			continue
		}
		load := alt.sched.pendingLoad()
		if best == nil || load < bestLoad {
			best, bestLoad = alt, load
		}
	}
	return best
}

// startRun merges the batch's inputs and begins one engine run on the
// replica; completion redistributes results to the batch's handles.
func (sc *scheduler) startRun(rep *replica, b *batch) {
	rep.active++
	rep.lastUsed = sc.now()
	sc.busyRuns++
	if rep.active > sc.ep.stats.MaxConcurrent {
		sc.ep.stats.MaxConcurrent = rep.active
	}
	// Close the queue phases and open the run span when any member
	// request is sampled: run-level sampling follows request-level
	// sampling, so coalescing — identical across replay modes — decides
	// identically everywhere.
	var runSpan obs.SpanRef
	if t := sc.ep.svc.trace; t != nil {
		sampled := false
		for _, r := range b.reqs {
			r.phase.End()
			if r.span.Active() {
				sampled = true
			}
		}
		if sampled {
			runSpan = t.Start(rep.track, "run", obs.KindRun, 0)
		}
	}
	input := mergeInputs(sc.ep.m.Spec.Neurons, b)
	id, err := rep.d.StartTraced(input, runSpan.ID(), func(res *core.Result, err error) {
		sc.finishRun(rep, b, runSpan, res, err)
	})
	if err != nil {
		runSpan.SetAttr("error", "start")
		runSpan.End()
		sc.releaseRun(rep)
		now := sc.now()
		for _, r := range b.reqs {
			r.span.SetAttr("error", "start")
			r.span.End()
			r.h.fail(now, err)
		}
		sc.ep.stats.FailedRuns++
		sc.dispatch()
		return
	}
	if runSpan.Active() {
		// The run's async id is its replica track plus the engine run id
		// — both replay-mode-stable, unlike raw span ids.
		runSpan.SetAsync(rep.track + "/" + id)
	}
}

func (sc *scheduler) releaseRun(rep *replica) {
	rep.active--
	sc.busyRuns--
	now := sc.now()
	rep.lastUsed = now
	if rep.active == 0 {
		rep.idleSince = now
		sc.maybeReplace(rep, now)
	}
}

// maybeReplace swaps an idle stale replica (one deployed before an SLO
// re-selection) for a fresh deployment of the current configuration.
func (sc *scheduler) maybeReplace(rep *replica, now time.Duration) {
	if !rep.stale {
		return
	}
	nrep, err := sc.ep.deployReplica()
	if err != nil {
		panic(fmt.Sprintf("serve: endpoint %q re-selection deploy: %v", sc.ep.name, err))
	}
	rep.d.Decommission()
	rep.d = nrep.d
	rep.track = nrep.track
	rep.stale = false
	rep.lastUsed = now
	rep.idleSince = now
}

// finishRun runs in simulation context when a replica's engine run
// completes: it releases the run slot, splits the output columns back to
// the coalesced requests, feeds the observations to the scaling/SLO
// machinery and dispatches any backlog.
func (sc *scheduler) finishRun(rep *replica, b *batch, runSpan obs.SpanRef, res *core.Result, err error) {
	sc.releaseRun(rep)
	ep := sc.ep
	now := sc.now()
	m := ep.met
	if err != nil {
		runSpan.SetAttr("error", "run")
		runSpan.End()
		ep.stats.FailedRuns++
		if m != nil {
			m.requests.Add(int64(len(b.reqs)))
			m.failures.Add(int64(len(b.reqs)))
			m.failedRuns.Inc()
		}
		for _, r := range b.reqs {
			r.span.SetAttr("error", "run")
			r.span.End()
			r.h.fail(now, err)
		}
		sc.evaluatePool()
		sc.dispatch()
		return
	}
	if sc.estRun == 0 {
		sc.estRun = res.Latency
	} else {
		sc.estRun = (3*sc.estRun + res.Latency) / 4
	}
	ep.stats.Runs++
	ep.stats.RunSamples += b.samples
	ep.stats.RunRequests += len(b.reqs)
	if b.samples > ep.stats.MaxSamples {
		ep.stats.MaxSamples = b.samples
	}
	ep.stats.Cost.Lambda += res.Cost.Lambda
	ep.stats.Cost.SNS += res.Cost.SNS
	ep.stats.Cost.SQS += res.Cost.SQS
	ep.stats.Cost.S3 += res.Cost.S3
	ep.stats.Cost.EC2 += res.Cost.EC2
	ep.stats.Cost.KV += res.Cost.KV
	ep.stats.Cost.KVReplica += res.Cost.KVReplica
	for _, w := range res.Workers {
		if w.Warm {
			ep.stats.WarmStarts++
		} else {
			ep.stats.ColdStarts++
		}
		if m != nil {
			if w.Warm {
				m.warmStarts.Inc()
			} else {
				m.coldStarts.Inc()
			}
		}
	}
	if runSpan.Active() {
		runSpan.SetAttr("samples", strconv.Itoa(b.samples))
		runSpan.SetAttr("requests", strconv.Itoa(len(b.reqs)))
		runSpan.End()
	}
	if m != nil {
		m.runFor(rep.d.Cfg.Channel).Inc()
		m.requests.Add(int64(len(b.reqs)))
	}
	off := 0
	for _, r := range b.reqs {
		cols := r.input.Cols
		if r.deadline > 0 && now > r.deadline {
			ep.stats.DeadlineMissed++
		}
		if r.span.Active() {
			r.span.SetAttr("run", res.RunID)
			r.span.End()
		}
		if m != nil {
			m.latency.Observe(now - r.arrived)
		}
		r.h.complete(now, &Response{
			Endpoint:      ep.name,
			RunID:         res.RunID,
			Output:        sliceCols(res.Output, off, cols),
			Latency:       now - r.arrived,
			RunLatency:    res.Latency,
			BatchSamples:  b.samples,
			BatchRequests: len(b.reqs),
			CostShare:     res.Cost.Total() * float64(cols) / float64(res.Batch),
		})
		off += cols
	}
	ep.observeRun(b.samples)
	sc.evaluatePool()
	sc.dispatch()
}
