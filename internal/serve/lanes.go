package serve

import (
	"fmt"
	"sync"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/workload"
)

// ReplayLanes shards a trace replay across independent replay lanes, each
// advancing its own discrete-event kernel on its own virtual clock, and
// merges the per-lane results into one Report at the end.
//
// The receiver acts as the routing registry only: queries are routed (by
// opts.Route or the model-size default) against its endpoints, then every
// lane rebuilds its share of the service — the same options the receiver
// was built with, filtered to the lane's endpoints — on a fresh clone of
// the receiver's environment configuration and replays its sub-trace
// there. The receiver's own endpoints, meters and clock are untouched.
//
// Lane assignment keeps interacting endpoints together: endpoints are
// grouped by model size (reroute siblings share a size, so a lane always
// contains every endpoint a rerouted request could land on) and size
// groups are dealt round-robin over the lanes in registration order.
// Cross-lane interactions cannot arise — disjoint endpoint sets touch
// disjoint buckets, functions, stores and limiters — which is exactly why
// the merged report equals the single-lane replay of the same trace:
// each query's timeline depends only on its own lane's endpoints, and the
// merge recomputes the cross-lane latency distribution from the raw
// per-request samples. Chaos traces are the exception (an unnamed chaos
// event targets "the first live cluster", a service-wide notion), so they
// fall back to a single lane.
//
// Float-accumulated metering (costs, GB-hours) is summed across lanes;
// the totals can differ from the single-lane run's by floating-point
// rounding in the last bits, since per-lane meters accumulate in a
// different order than one shared meter. Everything counted in integers
// or nanoseconds — queries, runs, starts, latencies, horizons — merges
// exactly. Per-shard node-hour breakdowns are keyed by lane-local
// deployment names and are summed on collision.
func (s *Service) ReplayLanes(lanes int, trace []workload.Query, opts ReplayOptions) (*Report, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("serve: lanes must be positive, got %d", lanes)
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("serve: empty trace")
	}
	opts = opts.withDefaults()
	items, err := s.routeTrace(trace, opts)
	if err != nil {
		return nil, err
	}

	// Size groups in registration order of their first endpoint.
	var sizes []int
	seen := make(map[int]bool)
	for _, ep := range s.eps {
		if n := ep.m.Spec.Neurons; !seen[n] {
			seen[n] = true
			sizes = append(sizes, n)
		}
	}
	if lanes > len(sizes) {
		lanes = len(sizes)
	}
	if lanes == 1 || len(opts.Chaos) > 0 {
		// One lane (or a chaos trace, which needs the whole service on one
		// kernel): replay the full trace on a single fresh clone so the
		// result is identical to a multi-lane run's semantics.
		lane, err := s.cloneService(nil)
		if err != nil {
			return nil, err
		}
		rep, _, err := lane.replayRouted(func() ([]routedQuery, error) { return items, nil }, opts)
		if err != nil {
			return nil, err
		}
		s.absorbObs([]*Service{lane})
		return rep, nil
	}

	laneOfSize := make(map[int]int, len(sizes))
	for i, n := range sizes {
		laneOfSize[n] = i % lanes
	}
	laneEps := make([]map[string]bool, lanes)
	for _, ep := range s.eps {
		l := laneOfSize[ep.m.Spec.Neurons]
		if laneEps[l] == nil {
			laneEps[l] = make(map[string]bool)
		}
		laneEps[l][ep.name] = true
	}
	laneItems := make([][]routedQuery, lanes)
	for _, it := range items {
		l := laneOfSize[s.byName[it.name].m.Spec.Neurons]
		laneItems[l] = append(laneItems[l], it)
	}

	// Phase 1, concurrent: every lane rebuilds its share of the service on
	// a fresh environment and drives its sub-trace to completion on its
	// own kernel. Lanes share no mutable state (separate kernels, meters,
	// stores, functions), so this is safe under the race detector.
	svcs := make([]*Service, lanes)
	runs := make([]*replayRun, lanes)
	errs := make([]error, lanes)
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		l := l
		wg.Add(1)
		//simlint:allow kernelgo — host-side lane fan-out: each goroutine owns one sealed lane service with its own kernel, RNGs and tracer; lanes share nothing until the deterministic merge after Wait
		go func() {
			defer wg.Done()
			keep := laneEps[l]
			svc, err := s.cloneService(func(name string) bool { return keep[name] })
			if err != nil {
				errs[l] = err
				return
			}
			svcs[l] = svc
			runs[l], errs[l] = svc.replayStart(
				func() ([]routedQuery, error) { return laneItems[l], nil }, opts)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2, sequential: close every lane's window at the same global
	// end — the latest virtual time any lane reached — so provisioned
	// capacity accrues exactly as it would on one shared kernel, idle
	// tails included. Per-lane virtual clocks merge deterministically:
	// lane order is fixed by the size-group assignment.
	var endAt time.Duration
	for _, svc := range svcs {
		if now := svc.Now(); now > endAt {
			endAt = now
		}
	}
	reps := make([]*Report, lanes)
	lats := make([][]time.Duration, lanes)
	for l := 0; l < lanes; l++ {
		rep, all, err := svcs[l].replayFinish(runs[l], opts, endAt)
		if err != nil {
			return nil, err
		}
		reps[l], lats[l] = rep, all
	}
	s.absorbObs(svcs)
	return s.mergeLaneReports(reps, lats), nil
}

// absorbObs folds the lanes' tracers, metric registries and SLO monitors
// into the receiver's, so a laned replay exposes the same observability
// surface as a shared-kernel one. Spans are appended in lane order; the
// Chrome exporter's canonical (time, rendered-event) ordering makes the
// final output independent of which lane recorded a span, which is what
// the byte-identical-trace contract rests on. Monitor series merge by
// (endpoint, window index) — lanes own disjoint endpoint sets — and the
// alert logs concatenate; the monitor's canonical alert ordering does the
// rest.
func (s *Service) absorbObs(lanes []*Service) {
	for _, lane := range lanes {
		if lane == nil {
			continue
		}
		if s.trace != nil {
			s.trace.Merge(lane.trace)
		}
		if s.metrics != nil {
			s.metrics.Merge(lane.metrics)
		}
		if s.mon != nil {
			s.mon.Absorb(lane.mon)
		}
	}
}

// cloneService rebuilds this service (optionally filtered to a subset of
// endpoints) on a fresh environment cloned from the receiver's config.
func (s *Service) cloneService(keep func(name string) bool) (*Service, error) {
	return newService(env.New(s.env.Cfg), keep, s.opts...)
}

// mergeLaneReports folds per-lane reports into one, deterministically:
// lane order is fixed by the lane assignment, endpoint order follows the
// receiver's registration order, and the cross-lane latency distribution
// is recomputed from the concatenated raw samples.
func (s *Service) mergeLaneReports(reps []*Report, lats [][]time.Duration) *Report {
	out := &Report{}
	byName := make(map[string]EndpointReport)
	var all []time.Duration
	for l, rep := range reps {
		out.Queries += rep.Queries
		out.Failed += rep.Failed
		out.Samples += rep.Samples
		if rep.Horizon > out.Horizon {
			out.Horizon = rep.Horizon
		}
		all = append(all, lats[l]...)
		for _, er := range rep.Endpoints {
			byName[er.Name] = er
		}
		addBreakdown(&out.TotalCost, rep.TotalCost)
		out.KVGBHours += rep.KVGBHours
		out.KVOps += rep.KVOps
		out.KVReplicaHours += rep.KVReplicaHours
		for shard, h := range rep.KVShardHours {
			if out.KVShardHours == nil {
				out.KVShardHours = make(map[string]float64)
			}
			out.KVShardHours[shard] += h
		}
		for shard, c := range rep.KVShardCost {
			if out.KVShardCost == nil {
				out.KVShardCost = make(map[string]float64)
			}
			out.KVShardCost[shard] += c
		}
		out.KVFailovers += rep.KVFailovers
		out.KVLostValues += rep.KVLostValues
		out.KVResends += rep.KVResends
		out.KVMoved += rep.KVMoved
		out.ColdStarts += rep.ColdStarts
		out.WarmStarts += rep.WarmStarts
		for k, v := range rep.Collectives {
			if out.Collectives == nil {
				out.Collectives = make(map[string]int64)
			}
			out.Collectives[k] += v
		}
		out.HybridSmallValues += rep.HybridSmallValues
		out.HybridBulkValues += rep.HybridBulkValues
		out.HybridBulkBytes += rep.HybridBulkBytes
		out.HybridChunks += rep.HybridChunks
		out.ChaosKills += rep.ChaosKills
		out.ChaosPartitions += rep.ChaosPartitions
		out.ChaosSkipped += rep.ChaosSkipped
	}
	out.Latency = latencyStats(all)
	for _, ep := range s.eps {
		if er, ok := byName[ep.name]; ok {
			out.Endpoints = append(out.Endpoints, er)
		}
	}
	return out
}

// addBreakdown accumulates src into dst field-wise.
func addBreakdown(dst *usage.Breakdown, src usage.Breakdown) {
	dst.Lambda += src.Lambda
	dst.SNS += src.SNS
	dst.SQS += src.SQS
	dst.S3 += src.S3
	dst.EC2 += src.EC2
	dst.KV += src.KV
	dst.KVReplica += src.KVReplica
}
