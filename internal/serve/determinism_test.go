package serve

import (
	"reflect"
	"testing"

	"fsdinference/internal/workload"
)

// TestReplaySameSeedIdenticalReports replays the same trace twice on
// identically configured fresh services and diffs the full ServiceReports:
// every field — counts, latencies, costs, per-endpoint breakdowns, the
// rendered report text — must match bit-for-bit. This is the determinism
// contract the sharded replay lanes and the planner's cached probe trials
// both stand on.
func TestReplaySameSeedIdenticalReports(t *testing.T) {
	trace := workload.Day(30*6, []int{64, 128, 256}, 6, 5)
	opts := ReplayOptions{Seed: 23}

	a, err := lanesTestService(t).Replay(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lanesTestService(t).Replay(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed replays diverge:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	if a.String() != b.String() {
		t.Fatalf("rendered reports diverge:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestReplayStreamSameSeedIdenticalReports is the streaming counterpart:
// two ReplayStream passes over the same diurnal stream must fold to
// identical reports, including the histogram-derived percentiles.
func TestReplayStreamSameSeedIdenticalReports(t *testing.T) {
	opts := ReplayOptions{Seed: 23}
	run := func() *Report {
		rep, err := lanesTestService(t).ReplayStream(
			workload.DiurnalDay(1200, []int{64, 128, 256}, 4, 5, 128), opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed streaming replays diverge:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}
