package serve

import (
	"fsdinference/internal/core"
	"fsdinference/internal/obs"
	"fsdinference/internal/obs/monitor"
)

// epMetrics caches one endpoint's registry instruments at build time so
// hot-path updates are pointer increments, never registry map lookups.
// It exists only when the service was built WithTracing; every use site
// guards on the nil.
type epMetrics struct {
	reg  *obs.Registry
	name string

	requests     *obs.Counter // resolved requests, completed + failed + shed
	failures     *obs.Counter // requests resolved with an error (incl. shed)
	shed         *obs.Counter
	rerouted     *obs.Counter // requests handed to a least-loaded sibling
	coldStarts   *obs.Counter
	warmStarts   *obs.Counter
	failedRuns   *obs.Counter
	kvFailovers  *obs.Counter // shard failovers of this endpoint's KV clusters
	kvLostValues *obs.Counter
	queueDepth   *obs.Gauge
	poolSize     *obs.Gauge // live replica-pool size
	latency      *obs.Histogram

	// runsByChannel labels run counts with the channel the run actually
	// executed on — an SLO re-plan can change it mid-replay, hence the
	// lazy per-kind resolution.
	runsByChannel map[core.ChannelKind]*obs.Counter
}

func newEpMetrics(reg *obs.Registry, name string) *epMetrics {
	return &epMetrics{
		reg:           reg,
		name:          name,
		requests:      reg.Counter("requests_total", "endpoint", name),
		failures:      reg.Counter("request_failures_total", "endpoint", name),
		shed:          reg.Counter("requests_shed_total", "endpoint", name),
		rerouted:      reg.Counter("requests_rerouted_total", "endpoint", name),
		coldStarts:    reg.Counter("cold_starts_total", "endpoint", name),
		warmStarts:    reg.Counter("warm_starts_total", "endpoint", name),
		failedRuns:    reg.Counter("run_failures_total", "endpoint", name),
		kvFailovers:   reg.Counter("kv_failovers_total", "endpoint", name),
		kvLostValues:  reg.Counter("kv_lost_values_total", "endpoint", name),
		queueDepth:    reg.Gauge("queue_depth", "endpoint", name),
		poolSize:      reg.Gauge("replica_pool_size", "endpoint", name),
		latency:       reg.Histogram("request_latency_ns", "endpoint", name),
		runsByChannel: make(map[core.ChannelKind]*obs.Counter),
	}
}

// setPoolSize is the nil-safe pool-size gauge update on scale events.
func (m *epMetrics) setPoolSize(n int) {
	if m != nil {
		m.poolSize.Set(float64(n))
	}
}

// target wires the endpoint's instruments into the SLO monitor.
func (m *epMetrics) target() monitor.Target {
	return monitor.Target{
		Endpoint:     m.name,
		Requests:     m.requests,
		Failures:     m.failures,
		Shed:         m.shed,
		Rerouted:     m.rerouted,
		ColdStarts:   m.coldStarts,
		WarmStarts:   m.warmStarts,
		KVFailovers:  m.kvFailovers,
		KVLostValues: m.kvLostValues,
		Latency:      m.latency,
		QueueDepth:   m.queueDepth,
		Replicas:     m.poolSize,
	}
}

// setQueueDepth is the nil-safe gauge update on the dispatch hot path:
// metrics off costs exactly the nil comparison.
func (m *epMetrics) setQueueDepth(n int) {
	if m != nil {
		m.queueDepth.Set(float64(n))
	}
}

func (m *epMetrics) runFor(ch core.ChannelKind) *obs.Counter {
	c := m.runsByChannel[ch]
	if c == nil {
		c = m.reg.Counter("runs_total", "endpoint", m.name, "channel", ch.String())
		m.runsByChannel[ch] = c
	}
	return c
}
