package serve

import (
	"fsdinference/internal/core"
	"fsdinference/internal/obs"
)

// epMetrics caches one endpoint's registry instruments at build time so
// hot-path updates are pointer increments, never registry map lookups.
// It exists only when the service was built WithTracing; every use site
// guards on the nil.
type epMetrics struct {
	reg  *obs.Registry
	name string

	requests   *obs.Counter // resolved requests, completed + failed + shed
	failures   *obs.Counter // requests resolved with an error (incl. shed)
	shed       *obs.Counter
	coldStarts *obs.Counter
	warmStarts *obs.Counter
	failedRuns *obs.Counter
	queueDepth *obs.Gauge
	latency    *obs.Histogram

	// runsByChannel labels run counts with the channel the run actually
	// executed on — an SLO re-plan can change it mid-replay, hence the
	// lazy per-kind resolution.
	runsByChannel map[core.ChannelKind]*obs.Counter
}

func newEpMetrics(reg *obs.Registry, name string) *epMetrics {
	return &epMetrics{
		reg:           reg,
		name:          name,
		requests:      reg.Counter("requests_total", "endpoint", name),
		failures:      reg.Counter("request_failures_total", "endpoint", name),
		shed:          reg.Counter("requests_shed_total", "endpoint", name),
		coldStarts:    reg.Counter("cold_starts_total", "endpoint", name),
		warmStarts:    reg.Counter("warm_starts_total", "endpoint", name),
		failedRuns:    reg.Counter("run_failures_total", "endpoint", name),
		queueDepth:    reg.Gauge("queue_depth", "endpoint", name),
		latency:       reg.Histogram("request_latency_ns", "endpoint", name),
		runsByChannel: make(map[core.ChannelKind]*obs.Counter),
	}
}

// setQueueDepth is the nil-safe gauge update on the dispatch hot path:
// metrics off costs exactly the nil comparison.
func (m *epMetrics) setQueueDepth(n int) {
	if m != nil {
		m.queueDepth.Set(float64(n))
	}
}

func (m *epMetrics) runFor(ch core.ChannelKind) *obs.Counter {
	c := m.runsByChannel[ch]
	if c == nil {
		c = m.reg.Counter("runs_total", "endpoint", m.name, "channel", ch.String())
		m.runsByChannel[ch] = c
	}
	return c
}
