package serve

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fsdinference/internal/cloud/usage"
	"fsdinference/internal/core"
	"fsdinference/internal/plan"
)

// ReplanEvent records one SLO-driven configuration change: the planner
// re-ran under the scheduler's observed WorkloadProfile and the best
// channel or worker count moved.
type ReplanEvent struct {
	// At is the virtual time of the change (trace-relative in replay
	// reports).
	At time.Duration
	// From/To describe the configuration swap.
	From, To               core.ChannelKind
	FromWorkers, ToWorkers int
	// QueriesPerDay is the observed daily volume the re-plan scored
	// against.
	QueriesPerDay int64
	// Reason says which drift triggered it.
	Reason string
}

// LatencyStats summarises a latency distribution with the nearest-rank
// percentiles the serving literature reports.
type LatencyStats struct {
	Count               int
	Mean, P50, P95, P99 time.Duration
	Min, Max            time.Duration
}

// latencyStats computes stats over samples (mutates the slice order).
func latencyStats(samples []time.Duration) LatencyStats {
	var ls LatencyStats
	ls.Count = len(samples)
	if ls.Count == 0 {
		return ls
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	ls.Mean = sum / time.Duration(ls.Count)
	ls.Min = samples[0]
	ls.Max = samples[ls.Count-1]
	ls.P50 = percentile(samples, 50)
	ls.P95 = percentile(samples, 95)
	ls.P99 = percentile(samples, 99)
	return ls
}

// percentile returns the nearest-rank p-th percentile of sorted samples.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// PriorityLatency is one priority class's latency distribution within a
// replay.
type PriorityLatency struct {
	Priority int
	Latency  LatencyStats
}

// EndpointReport is one endpoint's share of a replay.
type EndpointReport struct {
	Name    string
	Neurons int
	Channel core.ChannelKind
	Workers int
	// Replicas is the endpoint's warm-pool size at the end of the replay;
	// PeakReplicas the largest pool the scaling policy grew to within it.
	Replicas     int
	PeakReplicas int
	// Admission and Scaling name the scheduler policies in force.
	Admission string
	Scaling   string
	// ReplicaSeconds integrates pool size over the replay window (the
	// provisioned-capacity analogue of instance-hours); ScaleUps and
	// ScaleDowns count replicas added and reclaimed by the scaling policy.
	ReplicaSeconds float64
	ScaleUps       int
	ScaleDowns     int
	// Shed counts requests rejected by the admission policy (ErrShed),
	// Rerouted those it moved to a sibling endpoint, DeadlineMissed the
	// requests that completed after their deadline. Reselections counts
	// SLO-triggered planner re-runs; Replans lists the ones that changed
	// the configuration (channel/worker swaps), in order.
	Shed           int
	Rerouted       int
	DeadlineMissed int
	Reselections   int
	Replans        []ReplanEvent
	// Observed is the endpoint's live workload profile as of the end of
	// the replay — what an SLO re-plan would score against.
	Observed plan.WorkloadProfile
	// MaxConcurrentRuns is the largest number of engine runs observed in
	// flight on one replica (run multiplexing high-water).
	MaxConcurrentRuns int

	// Queries and Failed count requests; Samples counts their columns.
	Queries int
	Failed  int
	Samples int

	// Runs counts engine runs; the averages describe how admission
	// coalesced requests into them.
	Runs           int
	FailedRuns     int
	AvgRunSamples  float64
	AvgRunRequests float64
	MaxRunSamples  int
	ColdStarts     int // function instances launched cold
	WarmStarts     int // function instances reusing a warm pool

	// Latency is the per-request distribution (arrival to result,
	// including coalescing wait and queueing). PerPriority breaks it down
	// by priority class when more than one was submitted.
	Latency     LatencyStats
	PerPriority []PriorityLatency

	// Cost is the endpoint's ledger-reconstructed spend (§VI-F
	// predictor), summed over its runs.
	Cost usage.Breakdown
}

// Report is the measured outcome of one Service.Replay.
type Report struct {
	// Queries and Failed count the replayed requests; Samples their
	// total columns.
	Queries int
	Failed  int
	Samples int

	// Horizon is the virtual time of the last request completion,
	// relative to the replay's start.
	Horizon time.Duration

	// Latency is the per-request distribution across all endpoints.
	Latency LatencyStats

	// Endpoints reports each endpoint in registration order.
	Endpoints []EndpointReport

	// TotalCost is the exact metered spend over the replay window — the
	// simulated equivalent of the paper's AWS Cost & Usage report.
	TotalCost usage.Breakdown

	// KVGBHours and KVOps meter the provisioned in-memory stores over the
	// window: GB-hours accrue while the nodes sit idle (their only billed
	// dimension), ops are free of per-request charge.
	KVGBHours float64
	KVOps     int64

	// Cluster stats over the window: replica node-hours (the
	// availability premium, included in TotalCost.KV), the per-shard
	// node-hour breakdown, failovers triggered by fault injection,
	// values lost to lossy failovers, values the memory channel re-sent
	// from sender buffers to recover, and MOVED-style redirects paid
	// after topology changes.
	KVReplicaHours float64
	KVShardHours   map[string]float64
	KVShardCost    map[string]float64
	KVFailovers    int64
	KVLostValues   int64
	KVResends      int64
	KVMoved        int64

	// ColdStarts and WarmStarts count platform-wide function instance
	// launches during the replay.
	ColdStarts int
	WarmStarts int

	// Collectives counts the collective operations the replay's engine
	// runs executed, keyed "op/algorithm" (e.g. "barrier/tree") — nil
	// when no distributed run happened in the window.
	Collectives map[string]int64

	// Hybrid channel routing over the window: values kept inline on the
	// memory control plane versus values chunked through object storage,
	// with the bulk byte and chunk volumes.
	HybridSmallValues int64
	HybridBulkValues  int64
	HybridBulkBytes   int64
	HybridChunks      int64

	// Chaos counters: trace-embedded fault injections applied during the
	// replay (and the ones skipped because no provisioned cluster was
	// live at fire time). The failover fallout shows up in KVFailovers,
	// KVLostValues and KVResends above.
	ChaosKills      int
	ChaosPartitions int
	ChaosSkipped    int
}

// String renders the report as a deterministic fixed-order text table, so
// identical traces and seeds produce byte-identical reports.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serving report: %d queries (%d samples), %d failed, horizon %v\n",
		r.Queries, r.Samples, r.Failed, r.Horizon)
	fmt.Fprintf(&sb, "latency: %s\n", fmtLatency(r.Latency))
	for _, ep := range r.Endpoints {
		fmt.Fprintf(&sb, "endpoint %s (N=%d, %v", ep.Name, ep.Neurons, ep.Channel)
		if ep.Workers > 1 {
			fmt.Fprintf(&sb, " x%d", ep.Workers)
		}
		fmt.Fprintf(&sb, ", %d replica(s)):\n", ep.Replicas)
		fmt.Fprintf(&sb, "  %d queries (%d samples), %d failed, %d run(s)",
			ep.Queries, ep.Samples, ep.Failed, ep.Runs)
		if ep.Runs > 0 {
			fmt.Fprintf(&sb, ", avg batch %.2f req / %.1f samples, max %d samples",
				ep.AvgRunRequests, ep.AvgRunSamples, ep.MaxRunSamples)
		}
		fmt.Fprintf(&sb, "\n  starts: %d cold / %d warm\n", ep.ColdStarts, ep.WarmStarts)
		fmt.Fprintf(&sb, "  sched: %s admission, %s scaling\n", ep.Admission, ep.Scaling)
		fmt.Fprintf(&sb, "  pool: peak %d, %.3f replica-hours, %d up / %d down, max %d run(s)/replica\n",
			ep.PeakReplicas, ep.ReplicaSeconds/3600, ep.ScaleUps, ep.ScaleDowns, ep.MaxConcurrentRuns)
		if ep.Shed+ep.Rerouted+ep.DeadlineMissed+ep.Reselections > 0 {
			fmt.Fprintf(&sb, "  policy: %d shed, %d rerouted, %d deadline-missed, %d reselection(s)\n",
				ep.Shed, ep.Rerouted, ep.DeadlineMissed, ep.Reselections)
		}
		for _, ev := range ep.Replans {
			fmt.Fprintf(&sb, "  replan @%v: %v x%d -> %v x%d (%s)\n",
				ev.At.Round(time.Millisecond), ev.From, ev.FromWorkers, ev.To, ev.ToWorkers, ev.Reason)
		}
		fmt.Fprintf(&sb, "  latency: %s\n", fmtLatency(ep.Latency))
		for _, pl := range ep.PerPriority {
			fmt.Fprintf(&sb, "  latency p=%d: %s\n", pl.Priority, fmtLatency(pl.Latency))
		}
		fmt.Fprintf(&sb, "  cost (ledger): %s\n", ep.Cost.String())
	}
	fmt.Fprintf(&sb, "total metered cost: %s\n", r.TotalCost.String())
	if r.KVGBHours > 0 {
		fmt.Fprintf(&sb, "provisioned memory store: %.3f GB-hours ($%.4f), %d ops (no per-request charge)\n",
			r.KVGBHours, r.TotalCost.KV, r.KVOps)
	}
	if r.KVReplicaHours > 0 {
		fmt.Fprintf(&sb, "  replicas: %.3f node-hours ($%.4f) buying failover cover\n",
			r.KVReplicaHours, r.TotalCost.KVReplica)
	}
	if len(r.KVShardHours) > 0 {
		shards := make([]string, 0, len(r.KVShardHours))
		for s := range r.KVShardHours {
			shards = append(shards, s)
		}
		sort.Strings(shards)
		for _, s := range shards {
			fmt.Fprintf(&sb, "  shard %s: %.3f node-hours ($%.4f)\n", s, r.KVShardHours[s], r.KVShardCost[s])
		}
	}
	// One rule for all chaos-path counters: the line prints when ANY of
	// them is nonzero. Gating on failovers alone hid MOVED redirects
	// (and, in principle, losses or re-sends) from partition-only or
	// scale-churn runs that never completed a failover.
	if r.KVFailovers+r.KVLostValues+r.KVResends+r.KVMoved > 0 {
		fmt.Fprintf(&sb, "store failovers: %d, %d value(s) lost, %d re-sent, %d MOVED redirect(s)\n",
			r.KVFailovers, r.KVLostValues, r.KVResends, r.KVMoved)
	}
	if r.ChaosKills+r.ChaosPartitions+r.ChaosSkipped > 0 {
		fmt.Fprintf(&sb, "chaos: %d node kill(s), %d partition(s) injected, %d skipped\n",
			r.ChaosKills, r.ChaosPartitions, r.ChaosSkipped)
	}
	if len(r.Collectives) > 0 {
		keys := make([]string, 0, len(r.Collectives))
		for k := range r.Collectives {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("collectives:")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", k, r.Collectives[k])
		}
		sb.WriteByte('\n')
	}
	if r.HybridSmallValues+r.HybridBulkValues > 0 {
		fmt.Fprintf(&sb, "hybrid routing: %d inline value(s), %d bulk value(s) (%d chunks, %d bytes)\n",
			r.HybridSmallValues, r.HybridBulkValues, r.HybridChunks, r.HybridBulkBytes)
	}
	fmt.Fprintf(&sb, "instance starts: %d cold / %d warm\n", r.ColdStarts, r.WarmStarts)
	return sb.String()
}

func fmtLatency(ls LatencyStats) string {
	if ls.Count == 0 {
		return "n/a"
	}
	return fmt.Sprintf("p50=%v p95=%v p99=%v mean=%v max=%v",
		ls.P50.Round(time.Millisecond), ls.P95.Round(time.Millisecond),
		ls.P99.Round(time.Millisecond), ls.Mean.Round(time.Millisecond),
		ls.Max.Round(time.Millisecond))
}
