package serve

import (
	"strings"
	"testing"
)

// TestReportStringChaosCounters pins the rendering rule for the chaos
// counter line: it prints when ANY of the four counters is nonzero — a
// MOVED redirect without a completed failover must still surface — and is
// omitted only when all four are zero.
func TestReportStringChaosCounters(t *testing.T) {
	cases := []struct {
		name string
		rep  Report
		want string // "" means the line must be absent
	}{
		{"clean", Report{}, ""},
		{"failover only", Report{KVFailovers: 2},
			"store failovers: 2, 0 value(s) lost, 0 re-sent, 0 MOVED redirect(s)\n"},
		{"moved only", Report{KVMoved: 3},
			"store failovers: 0, 0 value(s) lost, 0 re-sent, 3 MOVED redirect(s)\n"},
		{"lost only", Report{KVLostValues: 1},
			"store failovers: 0, 1 value(s) lost, 0 re-sent, 0 MOVED redirect(s)\n"},
		{"resends only", Report{KVResends: 4},
			"store failovers: 0, 0 value(s) lost, 4 re-sent, 0 MOVED redirect(s)\n"},
		{"all", Report{KVFailovers: 1, KVLostValues: 2, KVResends: 3, KVMoved: 4},
			"store failovers: 1, 2 value(s) lost, 3 re-sent, 4 MOVED redirect(s)\n"},
	}
	for _, tc := range cases {
		out := tc.rep.String()
		if tc.want == "" {
			if strings.Contains(out, "store failovers:") {
				t.Errorf("%s: chaos line printed for all-zero counters:\n%s", tc.name, out)
			}
			continue
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("%s: report missing %q:\n%s", tc.name, tc.want, out)
		}
	}
}

// TestReportStringGolden pins the full rendering of an empty report, so
// accidental format drift shows up as a diff instead of silently breaking
// downstream parsing.
func TestReportStringGolden(t *testing.T) {
	const want = "serving report: 0 queries (0 samples), 0 failed, horizon 0s\n" +
		"latency: n/a\n" +
		"total metered cost: compute $0.0000, comms $0.0000 (SNS $0.0000, SQS $0.0000, S3 $0.0000), total $0.0000\n" +
		"instance starts: 0 cold / 0 warm\n"
	if got := (&Report{}).String(); got != want {
		t.Errorf("empty report drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
