package serve

import (
	"testing"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/core"
	"fsdinference/internal/workload"
)

// The planner-hysteresis regression (ROADMAP open item): a workload
// hovering at the memory break-even — its EWMA arrival rate oscillating
// ~10% either side — previously produced back-to-back ReplanEvents,
// flapping the deployment between Queue and Memory on every wiggle. With
// the default +-20% hysteresis band the endpoint holds its
// configuration; disabling the band reproduces the flapping, proving the
// trace itself crosses the plain threshold repeatedly.
func TestBreakEvenHysteresisDampsFlapping(t *testing.T) {
	if testing.Short() {
		t.Skip("replay with planner trials is a long simulation")
	}
	m := testModel(t, 256, 6)
	build := func(hysteresis float64) (*Service, *Endpoint) {
		t.Helper()
		svc, err := NewService(env.NewDefault(),
			WithEndpoint("slo", m, WithSLO(SLOOptions{
				LatencyWeight:       0, // cost objective: the break-even decides
				Channels:            []core.ChannelKind{core.Queue, core.Memory},
				Workers:             []int{2},
				ProbeBatch:          4,
				MinRuns:             1,
				BreakEvenHysteresis: hysteresis,
			})),
			WithCoalescing(4, 0),
		)
		if err != nil {
			t.Fatal(err)
		}
		return svc, svc.byName["slo"]
	}

	// Probe the break-even once; both services share model, grid and
	// seed, so their measured break-evens agree.
	_, ep := build(-1)
	be := ep.slo.decision.MemoryBreakEvenQueriesPerDay
	if be <= 0 {
		t.Fatal("initial decision measured no memory break-even")
	}

	// Oscillating arrival rate: alternating blocks whose steady rates
	// project to ~1.10x and ~0.90x the break-even — crossing the plain
	// threshold every block, never clearing the +-20% band.
	hiGap := time.Duration(float64(24*time.Hour) / (1.10 * float64(be)))
	loGap := time.Duration(float64(24*time.Hour) / (0.90 * float64(be)))
	var trace []workload.Query
	at := time.Duration(0)
	for block := 0; block < 4; block++ {
		gap := hiGap
		if block%2 == 1 {
			gap = loGap
		}
		for i := 0; i < 14; i++ {
			at += gap
			trace = append(trace, workload.Query{At: at, Neurons: 256, Samples: 4})
		}
	}

	run := func(hysteresis float64) int {
		t.Helper()
		svc, ep := build(hysteresis)
		rep, err := svc.Replay(trace, ReplayOptions{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed != 0 {
			t.Fatalf("%d failed queries", rep.Failed)
		}
		_ = ep
		return len(rep.Endpoints[0].Replans)
	}

	flappy := run(-1) // band disabled: the legacy plain-threshold trigger
	if flappy < 2 {
		t.Fatalf("without hysteresis the oscillating trace produced %d replans; want the back-to-back flapping (>= 2)", flappy)
	}
	damped := run(0) // default +-20% band
	if damped != 0 {
		t.Fatalf("with the default hysteresis band the hovering trace still produced %d replans, want 0", damped)
	}
}
