package serve

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"fsdinference/internal/cloud/env"
	"fsdinference/internal/core"
	"fsdinference/internal/obs"
	"fsdinference/internal/workload"
)

// tracedTestService builds a two-size service — a serial endpoint and a
// sharded Memory-channel endpoint with multiple workers, so traces cover
// request, phase, run, worker, op and KV tracks — with tracing on.
func tracedTestService(t *testing.T, sampleEvery int) *Service {
	t.Helper()
	svc, err := NewService(env.NewDefault(),
		WithEndpoint("s64", testModel(t, 64, 3)),
		WithEndpoint("mem128", testModel(t, 128, 3),
			WithChannel(core.Memory), WithWorkers(3),
			WithDeployOverride(func(c *core.Config) {
				c.KVNodes = 2
				c.KVReplicas = 1
			})),
		WithCoalescing(32, 150*time.Millisecond),
		WithReplicas(2),
		WithTracing(sampleEvery),
	)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestTraceByteIdenticalAcrossReplayModes is the determinism contract of
// the observability layer: the same trace at the same seed and sampling
// rate exports byte-identical Chrome JSON whether it replays on one
// shared kernel, sharded across lanes, or streamed just-in-time.
func TestTraceByteIdenticalAcrossReplayModes(t *testing.T) {
	trace := workload.Day(40*6, []int{64, 128}, 6, 9)
	opts := ReplayOptions{Seed: 17}

	export := func(name string, run func(*Service) (*Report, error)) ([]byte, []byte) {
		t.Helper()
		svc := tracedTestService(t, 3)
		rep, err := run(svc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Failed != 0 {
			t.Fatalf("%s: %d failed queries", name, rep.Failed)
		}
		var tr, met bytes.Buffer
		if err := svc.Tracer().WriteChrome(&tr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := svc.Metrics().WriteText(&met); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return tr.Bytes(), met.Bytes()
	}

	single, singleMet := export("single", func(s *Service) (*Report, error) {
		return s.Replay(trace, opts)
	})
	laned, lanedMet := export("lanes", func(s *Service) (*Report, error) {
		return s.ReplayLanes(2, trace, opts)
	})
	streamed, streamedMet := export("stream", func(s *Service) (*Report, error) {
		return s.ReplayStream(workload.Stream(trace, 7), opts)
	})

	if !bytes.Equal(single, laned) {
		t.Errorf("laned trace diverges from single-kernel (%d vs %d bytes):\n%s",
			len(laned), len(single), firstDiff(single, laned))
	}
	if !bytes.Equal(single, streamed) {
		t.Errorf("streamed trace diverges from single-kernel (%d vs %d bytes):\n%s",
			len(streamed), len(single), firstDiff(single, streamed))
	}
	if !bytes.Equal(singleMet, lanedMet) {
		t.Errorf("laned metrics diverge:\n--- single ---\n%s--- lanes ---\n%s", singleMet, lanedMet)
	}
	if !bytes.Equal(singleMet, streamedMet) {
		t.Errorf("streamed metrics diverge:\n--- single ---\n%s--- stream ---\n%s", singleMet, streamedMet)
	}

	validateChromeSchema(t, single)
}

func firstDiff(a, b []byte) string {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return "line " + strconv.Itoa(i+1) + ":\n  a: " + string(la[i]) + "\n  b: " + string(lb[i])
		}
	}
	return "one trace is a prefix of the other"
}

// validateChromeSchema checks a serving-layer export against the Chrome
// trace-event schema and the coverage the instrumentation promises:
// request/run async pairs balance, every expected track family appears,
// and no event carries an allocation-order span id.
func validateChromeSchema(t *testing.T, data []byte) {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Ph   string          `json:"ph"`
			TS   json.Number     `json:"ts"`
			PID  int             `json:"pid"`
			TID  int             `json:"tid"`
			ID   string          `json:"id"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	async := map[string]int{}
	cats := map[string]bool{}
	names := map[string]bool{}
	tracks := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				var args struct {
					Name string `json:"name"`
				}
				if err := json.Unmarshal(ev.Args, &args); err != nil {
					t.Fatalf("event %d bad thread_name args: %v", i, err)
				}
				tracks[args.Name] = true
			}
			continue
		case "X", "i":
		case "b":
			async[ev.ID]++
		case "e":
			async[ev.ID]--
		default:
			t.Fatalf("event %d unknown phase %q", i, ev.Ph)
		}
		cats[ev.Cat] = true
		names[ev.Name] = true
		if ev.PID != 1 || ev.TID < 1 {
			t.Errorf("event %d (%s) pid/tid = %d/%d", i, ev.Name, ev.PID, ev.TID)
		}
		if _, err := strconv.ParseFloat(ev.TS.String(), 64); err != nil {
			t.Errorf("event %d (%s) bad ts %q", i, ev.Name, ev.TS)
		}
		if ev.Ph == "b" && ev.Cat == "req" && !strings.HasPrefix(ev.ID, "q") {
			t.Errorf("request async id %q is not a trace-index id", ev.ID)
		}
	}
	for id, n := range async {
		if n != 0 {
			t.Errorf("unbalanced async pair %q: %+d begins", id, n)
		}
	}
	// Request phases render inside the request's async envelope (cat
	// "req"), so coverage is checked by span name there.
	for _, cat := range []string{"req", "run", "worker", "op"} {
		if !cats[cat] {
			t.Errorf("export has no %q events", cat)
		}
	}
	for _, name := range []string{"request", "coalesce", "queue", "run", "worker", "layer", "send", "recv", "load"} {
		if !names[name] {
			t.Errorf("export has no %q spans", name)
		}
	}
	wantTracks := map[string]bool{"replica": false, "worker": false}
	for tr := range tracks {
		switch {
		case strings.Contains(tr, "/w"):
			wantTracks["worker"] = true
		case strings.Contains(tr, "/r"):
			wantTracks["replica"] = true
		}
	}
	for fam, seen := range wantTracks {
		if !seen {
			t.Errorf("no %s track in export (tracks: %v)", fam, tracks)
		}
	}
}

// TestTraceKVFailoverSpans: an injected node kill surfaces as a fault
// span on the shard's KV track, covering the failover window from kill
// to replica promotion.
func TestTraceKVFailoverSpans(t *testing.T) {
	trace := workload.Day(40*6, []int{64, 128}, 6, 9)
	svc := tracedTestService(t, 1)
	rep, err := svc.Replay(trace, ReplayOptions{
		Seed:  17,
		Chaos: []ChaosEvent{{At: time.Hour, Kind: KillNode, Endpoint: "mem128", Shard: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.KVFailovers != 1 {
		t.Fatalf("expected one failover, got report:\n%s", rep)
	}
	var fault *obs.Span
	for i, sp := range svc.Tracer().Spans() {
		if sp.Kind == obs.KindFault && sp.Name == "failover" {
			fault = &svc.Tracer().Spans()[i]
		}
	}
	if fault == nil {
		t.Fatal("no failover fault span recorded")
	}
	if !strings.Contains(fault.Track, "/kv/s0") {
		t.Errorf("fault span on track %q, want a .../kv/s0 track", fault.Track)
	}
	if fault.End <= fault.Start {
		t.Errorf("failover window empty: %v..%v", fault.Start, fault.End)
	}
}

// TestTracingOffReplayUnchanged: without WithTracing the service exposes
// nil observability handles, the nil tracer still exports an empty valid
// document, and the replay result matches a traced run's report — proof
// instrumentation doesn't perturb the simulation.
func TestTracingOffReplayUnchanged(t *testing.T) {
	trace := workload.Day(20*6, []int{64, 128}, 6, 5)
	opts := ReplayOptions{Seed: 3}

	off, err := NewService(env.NewDefault(),
		WithEndpoint("s64", testModel(t, 64, 3)),
		WithEndpoint("mem128", testModel(t, 128, 3),
			WithChannel(core.Memory), WithWorkers(3),
			WithDeployOverride(func(c *core.Config) {
				c.KVNodes = 2
				c.KVReplicas = 1
			})),
		WithCoalescing(32, 150*time.Millisecond),
		WithReplicas(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if off.Tracer() != nil || off.Metrics() != nil {
		t.Fatal("tracing-off service exposes observability handles")
	}
	repOff, err := off.Replay(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := off.Tracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("nil tracer export: %q", buf.String())
	}

	repOn, err := tracedTestService(t, 1).Replay(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if repOff.String() != repOn.String() {
		t.Errorf("tracing changed the replay outcome:\n--- off ---\n%s\n--- on ---\n%s", repOff, repOn)
	}
}
